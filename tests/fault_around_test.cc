// Fault-around semantics: a demand-zero fault speculatively maps cold
// neighbours inside one aligned window and one transaction — and must do it
// without disturbing anything else. The contracts under test:
//   - around-mapped pages start with the young bit CLEAR (the reclaim clock
//     can take back a wrong guess on its first pass); the faulting page
//     itself is young;
//   - the walk never leaves the faulting page's VMA (a neighbouring region
//     with different permissions keeps its pages virtual);
//   - the walk never eats into a huge run (the window is power-of-two
//     aligned and capped at 512 pages, so it cannot straddle a 2 MiB slot);
//   - a tenant's resident limit bounds speculation: the governor's
//     FaultAroundBudget caps extra mappings at the remaining headroom.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/stats.h"
#include "src/core/addr_space.h"
#include "src/core/status.h"
#include "src/core/vm_space.h"
#include "src/pmm/buddy.h"
#include "src/pmm/phys_mem.h"
#include "src/reclaim/reclaim.h"
#include "src/sync/rcu.h"
#include "src/tlb/shootdown.h"
#include "src/verif/wf_checker.h"

namespace cortenmm {
namespace {

uint64_t Count(Counter c) { return GlobalStats().Total(c); }

AddrSpace::Options AroundOptions(uint32_t window_pages, bool huge = false) {
  AddrSpace::Options options;
  options.fault_around_pages = window_pages;
  options.huge_pages = huge;
  return options;
}

Status QueryOne(AddrSpace& space, Vaddr va) {
  RCursor cursor = space.Lock(VaRange(va, va + kPageSize));
  return cursor.Query(va);
}

// All fixed-address regions live in their own 512 GiB slot, far from the
// dynamic VA allocator's arenas.
constexpr Vaddr kTestBase = 24ull << 30;

class FaultAroundTest : public ::testing::Test {
 protected:
  void TearDown() override {
    TlbSystem::Instance().DrainAll();
    Rcu::Instance().DrainAll();
    BuddyAllocator::Instance().FlushCpuCaches();
  }
};

TEST_F(FaultAroundTest, MapsWholeWindowInOneFaultAndNeighboursStartCold) {
  VmSpace space{AroundOptions(16)};
  // 64 pages at a window-aligned fixed address: every 16-page window is
  // fully inside the region.
  constexpr uint64_t kPages = 64;
  ASSERT_TRUE(space.MmapAnonAt(kTestBase, kPages << kPageBits, Perm::RW()).ok());

  uint64_t faults_before = Count(Counter::kPageFaults);
  uint64_t around_before = Count(Counter::kFaultAroundMapped);
  // Fault page 24: window [16, 32).
  Vaddr fault_va = kTestBase + (24ull << kPageBits);
  ASSERT_TRUE(space.HandleFault(fault_va, Access::kWrite).ok());

  EXPECT_EQ(Count(Counter::kPageFaults), faults_before + 1);
  EXPECT_EQ(Count(Counter::kFaultAroundMapped), around_before + 15);
  EXPECT_EQ(space.addr_space().ResidentPagesFast(), 16u);

  PhysMem& mem = PhysMem::Instance();
  for (uint64_t p = 16; p < 32; ++p) {
    Vaddr va = kTestBase + (p << kPageBits);
    Status s = QueryOne(space.addr_space(), va);
    ASSERT_EQ(s.tag, StatusTag::kMapped) << "page " << p;
    bool young = mem.Descriptor(s.pfn).young.load(std::memory_order_relaxed);
    // Only the touched page is referenced; speculation starts cold.
    EXPECT_EQ(young, va == fault_va) << "page " << p;
  }
  // Outside the window nothing was speculated.
  EXPECT_EQ(QueryOne(space.addr_space(), kTestBase + (15ull << kPageBits)).tag,
            StatusTag::kPrivateAnon);
  EXPECT_EQ(QueryOne(space.addr_space(), kTestBase + (32ull << kPageBits)).tag,
            StatusTag::kPrivateAnon);

  WfReport report = CheckWellFormed(space.addr_space());
  EXPECT_TRUE(report.ok) << report.first_error;
}

TEST_F(FaultAroundTest, StopsAtVmaBoundary) {
  VmSpace space{AroundOptions(16)};
  // Two adjacent regions inside one window: 4 pages RW, then 12 pages R.
  // The R region's demand-zero status differs (permissions are part of the
  // status), so the walk must stop at the seam even though the VAs abut.
  ASSERT_TRUE(space.MmapAnonAt(kTestBase, 4 << kPageBits, Perm::RW()).ok());
  ASSERT_TRUE(space.MmapAnonAt(kTestBase + (4ull << kPageBits), 12 << kPageBits,
                               Perm::R()).ok());

  ASSERT_TRUE(space.HandleFault(kTestBase, Access::kWrite).ok());

  // Exactly the RW VMA's pages are resident; every R page is still virtual.
  EXPECT_EQ(space.addr_space().ResidentPagesFast(), 4u);
  for (uint64_t p = 0; p < 4; ++p) {
    EXPECT_EQ(QueryOne(space.addr_space(), kTestBase + (p << kPageBits)).tag,
              StatusTag::kMapped) << "page " << p;
  }
  for (uint64_t p = 4; p < 16; ++p) {
    EXPECT_EQ(QueryOne(space.addr_space(), kTestBase + (p << kPageBits)).tag,
              StatusTag::kPrivateAnon) << "page " << p;
  }
}

TEST_F(FaultAroundTest, StopsAtUnallocatedVa) {
  VmSpace space{AroundOptions(16)};
  // A 4-page island in the middle of a window; the rest of the window is
  // unallocated (kInvalid), which must stop the walk in both directions.
  Vaddr island = kTestBase + (4ull << kPageBits);
  ASSERT_TRUE(space.MmapAnonAt(island, 4 << kPageBits, Perm::RW()).ok());

  ASSERT_TRUE(space.HandleFault(island + (1ull << kPageBits), Access::kWrite).ok());
  EXPECT_EQ(space.addr_space().ResidentPagesFast(), 4u);
  EXPECT_EQ(QueryOne(space.addr_space(), kTestBase).tag, StatusTag::kInvalid);
  EXPECT_EQ(QueryOne(space.addr_space(), island + (4ull << kPageBits)).tag,
            StatusTag::kInvalid);
}

TEST_F(FaultAroundTest, WindowNeverEatsIntoAHugeRun) {
  VmSpace space{AroundOptions(16, /*huge=*/true)};
  // A huge-aligned region of one full 2 MiB slot plus a 16-page tail. The
  // first touch installs a level-2 leaf; the tail slot is not fully covered
  // by the VMA, so a tail fault takes the 4 KiB path with fault-around.
  constexpr uint64_t kTail = 16;
  Vaddr base = AlignUp(kTestBase, kHugePageSize);
  ASSERT_TRUE(space.MmapAnonAt(base, kHugePageSize + (kTail << kPageBits),
                               Perm::RW()).ok());

  ASSERT_TRUE(space.HandleFault(base, Access::kWrite).ok());
  Status head = QueryOne(space.addr_space(), base);
  ASSERT_EQ(head.tag, StatusTag::kMapped);
  ASSERT_EQ(head.level, 2) << "first touch should install a huge leaf";

  // Fault in the middle of the tail. Its 16-page window starts exactly at
  // the huge boundary (both are power-of-two aligned), so the downward walk
  // cannot reach the run; the whole tail maps, the huge leaf stays intact.
  Vaddr tail_fault = base + kHugePageSize + (8ull << kPageBits);
  ASSERT_TRUE(space.HandleFault(tail_fault, Access::kWrite).ok());

  EXPECT_EQ(space.addr_space().ResidentPagesFast(), (1ull << kHugeOrder) + kTail);
  Status head_after = QueryOne(space.addr_space(), base);
  ASSERT_EQ(head_after.tag, StatusTag::kMapped);
  EXPECT_EQ(head_after.level, 2) << "fault-around must not split the huge leaf";
  EXPECT_EQ(head_after.pfn, head.pfn);
  for (uint64_t p = 0; p < kTail; ++p) {
    EXPECT_EQ(QueryOne(space.addr_space(),
                       base + kHugePageSize + (p << kPageBits)).tag,
              StatusTag::kMapped) << "tail page " << p;
  }

  WfReport report = CheckWellFormed(space.addr_space());
  EXPECT_TRUE(report.ok) << report.first_error;
}

TEST_F(FaultAroundTest, TenantResidentLimitBoundsSpeculation) {
  ScopedReclaim reclaim;
  VmSpace space{AroundOptions(16)};
  constexpr uint64_t kLimit = 8;
  ASSERT_TRUE(space.MmapAnonAt(kTestBase, 64 << kPageBits, Perm::RW()).ok());
  ReclaimSystem::Instance().SetResidentLimit(&space, kLimit);

  // One fault in a fully-open window: unbounded it would map 16 pages, but
  // the governor's budget is the remaining headroom (kLimit - 1 extra).
  ASSERT_TRUE(space.HandleFault(kTestBase + (16ull << kPageBits),
                                Access::kWrite).ok());
  EXPECT_LE(space.addr_space().ResidentPagesFast(), kLimit);
  EXPECT_GT(space.addr_space().ResidentPagesFast(), 1u)
      << "under-limit tenants should still get some speculation";
}

TEST_F(FaultAroundTest, DisabledByDefaultAndForTinyWindows) {
  // 0 and 1 disable; non-power-of-two rounds down; > 512 caps at 512.
  VmSpace off{AroundOptions(0)};
  ASSERT_TRUE(off.MmapAnonAt(kTestBase, 32 << kPageBits, Perm::RW()).ok());
  ASSERT_TRUE(off.HandleFault(kTestBase + (8ull << kPageBits), Access::kWrite).ok());
  EXPECT_EQ(off.addr_space().ResidentPagesFast(), 1u);

  VmSpace one{AroundOptions(1)};
  ASSERT_TRUE(one.MmapAnonAt(kTestBase, 32 << kPageBits, Perm::RW()).ok());
  ASSERT_TRUE(one.HandleFault(kTestBase, Access::kWrite).ok());
  EXPECT_EQ(one.addr_space().ResidentPagesFast(), 1u);
}

}  // namespace
}  // namespace cortenmm
