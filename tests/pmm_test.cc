// Tests for the physical memory manager: buddy allocator (split/coalesce,
// exhaustion behaviour, per-CPU caches), slab allocator, page descriptors.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "src/common/cpu.h"
#include "src/common/stats.h"
#include "src/common/topology.h"
#include "src/pmm/buddy.h"
#include "src/pmm/page_desc.h"
#include "src/pmm/phys_mem.h"
#include "src/pmm/slab.h"

namespace cortenmm {
namespace {

TEST(PhysMemTest, FramesAreDistinctAndWritable) {
  PhysMem& mem = PhysMem::Instance();
  ASSERT_GT(mem.num_frames(), 1000u);
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  Result<Pfn> a = buddy.AllocFrame();
  Result<Pfn> b = buddy.AllocFrame();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  std::memset(mem.FrameData(*a), 0xaa, kPageSize);
  std::memset(mem.FrameData(*b), 0xbb, kPageSize);
  EXPECT_EQ(static_cast<uint8_t>(*mem.FrameData(*a)), 0xaa);
  EXPECT_EQ(static_cast<uint8_t>(*mem.FrameData(*b)), 0xbb);
  buddy.FreeFrame(*a);
  buddy.FreeFrame(*b);
}

TEST(PhysMemTest, ZeroAndCopyFrame) {
  PhysMem& mem = PhysMem::Instance();
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  Result<Pfn> src = buddy.AllocFrame();
  Result<Pfn> dst = buddy.AllocFrame();
  ASSERT_TRUE(src.ok());
  ASSERT_TRUE(dst.ok());
  std::memset(mem.FrameData(*src), 0x5c, kPageSize);
  mem.CopyFrame(*dst, *src);
  EXPECT_EQ(std::memcmp(mem.FrameData(*dst), mem.FrameData(*src), kPageSize), 0);
  mem.ZeroFrame(*dst);
  for (uint64_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(static_cast<uint8_t>(mem.FrameData(*dst)[i]), 0u);
  }
  buddy.FreeFrame(*src);
  buddy.FreeFrame(*dst);
}

TEST(BuddyTest, BlockAllocationIsAligned) {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  for (int order = 0; order <= BuddyAllocator::kMaxOrder; ++order) {
    Result<Pfn> block = buddy.AllocBlock(order);
    ASSERT_TRUE(block.ok()) << "order " << order;
    EXPECT_TRUE(IsAligned(*block, 1ull << order)) << "order " << order;
    buddy.FreeBlock(*block, order);
  }
}

TEST(BuddyTest, SplitAndCoalesceRoundTrip) {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  buddy.FlushCpuCaches();
  uint64_t free_before = buddy.FreeFrameCount();
  // Allocate an order-6 block as 64 singles, free them all; coalescing must
  // restore the free count exactly.
  std::vector<Pfn> singles;
  for (int i = 0; i < 64; ++i) {
    Result<Pfn> f = buddy.AllocBlock(0);
    ASSERT_TRUE(f.ok());
    singles.push_back(*f);
  }
  for (Pfn f : singles) {
    buddy.FreeBlock(f, 0);
  }
  // The frees parked in the per-CPU magazines, which count as allocated;
  // flushing returns them to the free lists and must restore the count
  // exactly (coalescing included).
  buddy.FlushCpuCaches();
  EXPECT_EQ(buddy.FreeFrameCount(), free_before);
}

TEST(BuddyTest, DistinctFramesUnderConcurrency) {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  constexpr int kPerThread = 2000;
  int threads = 4;
  std::vector<std::vector<Pfn>> got(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      BindThisThreadToCpu(t + 30);
      for (int i = 0; i < kPerThread; ++i) {
        Result<Pfn> f = buddy.AllocFrame();
        ASSERT_TRUE(f.ok());
        got[t].push_back(*f);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  std::set<Pfn> all;
  for (auto& v : got) {
    for (Pfn f : v) {
      EXPECT_TRUE(all.insert(f).second) << "double allocation of frame " << f;
    }
  }
  for (auto& v : got) {
    for (Pfn f : v) {
      buddy.FreeFrame(f);
    }
  }
}

TEST(BuddyTest, ZeroedFrameIsZero) {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  Result<Pfn> f = buddy.AllocFrame();
  ASSERT_TRUE(f.ok());
  std::memset(PhysMem::Instance().FrameData(*f), 0xff, kPageSize);
  buddy.FreeFrame(*f);
  Result<Pfn> z = buddy.AllocZeroedFrame();
  ASSERT_TRUE(z.ok());
  for (uint64_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(static_cast<uint8_t>(PhysMem::Instance().FrameData(*z)[i]), 0u);
  }
  buddy.FreeFrame(*z);
}

TEST(BuddyTest, DescriptorStateTracksAllocation) {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  Result<Pfn> f = buddy.AllocFrame();
  ASSERT_TRUE(f.ok());
  PageDescriptor& desc = PhysMem::Instance().Descriptor(*f);
  EXPECT_EQ(desc.type.load(), FrameType::kKernel);
  EXPECT_EQ(desc.refcount.load(), 1u);
  buddy.FlushCpuCaches();  // Guarantee the per-CPU cache has room to park.
  buddy.FreeFrame(*f);
  // An order-0 free parks the frame in the current CPU's cache: it reads as
  // kCached (not kFree) until the cache drains back to the buddy free lists.
  EXPECT_EQ(desc.type.load(), FrameType::kCached);
  buddy.FlushCpuCaches();
  EXPECT_EQ(desc.type.load(), FrameType::kFree);
}

// ---------------------------------------------------------------------------
// Magazine / depot / pre-scrub layer
// ---------------------------------------------------------------------------

uint64_t Count(Counter c) { return GlobalStats().Total(c); }

TEST(MagazineTest, SteadyStateServesFromMagazineWithoutGlobalLock) {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  buddy.FlushCpuCaches();
  // Warm the current CPU's magazine: allocate a magazine's worth, free it
  // back — every frame parks locally.
  std::vector<Pfn> warm;
  for (uint32_t i = 0; i < BuddyAllocator::kMagSlots; ++i) {
    Result<Pfn> f = buddy.AllocFrame();
    ASSERT_TRUE(f.ok());
    warm.push_back(*f);
  }
  for (Pfn f : warm) {
    buddy.FreeFrame(f);
  }

  uint64_t locks_before = Count(Counter::kBuddyLockAcquisitions);
  uint64_t hits_before = Count(Counter::kMagHits);
  constexpr int kIters = 1000;
  for (int i = 0; i < kIters; ++i) {
    Result<Pfn> f = buddy.AllocFrame();
    ASSERT_TRUE(f.ok());
    buddy.FreeFrame(*f);
  }
  // A full magazine absorbs every alloc/free pair: zero global-lock traffic.
  EXPECT_EQ(Count(Counter::kBuddyLockAcquisitions), locks_before);
  EXPECT_EQ(Count(Counter::kMagHits), hits_before + kIters);
}

TEST(MagazineTest, OverflowSpillsToDepotAndScrubProducesPrezeroedFrames) {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  PhysMem& mem = PhysMem::Instance();
  buddy.FlushCpuCaches();

  // Dirty two magazines' worth of frames, then free them all: the first
  // kMagSlots fill the local magazine, the overflow spills one full magazine
  // to the depot's dirty shelf.
  constexpr uint32_t kFrames = 2 * BuddyAllocator::kMagSlots;
  std::vector<Pfn> frames;
  for (uint32_t i = 0; i < kFrames; ++i) {
    Result<Pfn> f = buddy.AllocFrame();
    ASSERT_TRUE(f.ok());
    std::memset(mem.FrameData(*f), 0xff, kPageSize);
    frames.push_back(*f);
  }
  uint64_t flushes_before = Count(Counter::kMagFlushes);
  for (Pfn f : frames) {
    buddy.FreeFrame(f);
  }
  EXPECT_GT(Count(Counter::kMagFlushes), flushes_before);

  // The pre-scrubber zeroes the dirty magazine off the allocation path.
  uint64_t scrubbed = buddy.ScrubBatch(BuddyAllocator::kMagSlots);
  EXPECT_EQ(scrubbed, uint64_t{BuddyAllocator::kMagSlots});

  // Drain the (dirty) local magazine, then one more allocation swaps the
  // scrubbed magazine in from the depot's clean shelf: a prezero hit, and
  // the frame really is zero.
  uint64_t prezero_before = Count(Counter::kPrezeroHits);
  std::vector<Pfn> drained;
  for (uint32_t i = 0; i <= BuddyAllocator::kMagSlots; ++i) {
    Result<Pfn> f = buddy.AllocZeroedFrame();
    ASSERT_TRUE(f.ok());
    drained.push_back(*f);
    for (uint64_t b = 0; b < kPageSize; b += 512) {
      ASSERT_EQ(static_cast<uint8_t>(mem.FrameData(*f)[b]), 0u);
    }
  }
  EXPECT_GT(Count(Counter::kPrezeroHits), prezero_before);
  for (Pfn f : drained) {
    buddy.FreeFrame(f);
  }
  buddy.FlushCpuCaches();
}

TEST(MagazineTest, ScrubBatchIsBoundedAndIdle) {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  buddy.FlushCpuCaches();
  // Nothing dirty parked: the scrubber finds no work.
  EXPECT_EQ(buddy.ScrubBatch(1024), 0u);
}

TEST(MagazineTest, DrainReturnsParkedStockToFreeLists) {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  buddy.FlushCpuCaches();
  uint64_t free_baseline = buddy.FreeFrameCount();

  std::vector<Pfn> frames;
  for (uint32_t i = 0; i < BuddyAllocator::kMagSlots; ++i) {
    Result<Pfn> f = buddy.AllocFrame();
    ASSERT_TRUE(f.ok());
    frames.push_back(*f);
  }
  for (Pfn f : frames) {
    buddy.FreeFrame(f);
  }
  // Batch-boundary accounting: parked frames still read as allocated...
  EXPECT_EQ(buddy.FreeFrameCount(),
            free_baseline - BuddyAllocator::kMagSlots);
  // ...and a pressure-driven drain visibly raises the free count.
  uint64_t drains_before = Count(Counter::kMagDrains);
  buddy.DrainMagazines();
  EXPECT_EQ(buddy.FreeFrameCount(), free_baseline);
  EXPECT_GT(Count(Counter::kMagDrains), drains_before);
}

TEST(MagazineTest, DisableBypassesToGlobalLockAndReenableRestores) {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  buddy.FlushCpuCaches();
  uint64_t free_baseline = buddy.FreeFrameCount();

  buddy.SetMagazinesEnabled(false);
  // Disabling flushed everything parked; the direct path hits the lock.
  uint64_t locks_before = Count(Counter::kBuddyLockAcquisitions);
  Result<Pfn> f = buddy.AllocFrame();
  ASSERT_TRUE(f.ok());
  buddy.FreeFrame(*f);
  EXPECT_EQ(Count(Counter::kBuddyLockAcquisitions), locks_before + 2);
  EXPECT_EQ(buddy.FreeFrameCount(), free_baseline);

  buddy.SetMagazinesEnabled(true);
  EXPECT_TRUE(buddy.MagazinesEnabled());
  EXPECT_EQ(buddy.FreeFrameCount(), free_baseline);
}

// ---------------------------------------------------------------------------
// NUMA arenas
// ---------------------------------------------------------------------------

TEST(NumaTest, NodeRangesPartitionPfnSpace) {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  PhysMem& mem = PhysMem::Instance();
  Pfn expect_begin = 0;
  for (int node = 0; node < buddy.NumNodes(); ++node) {
    Pfn begin = 0;
    Pfn end = 0;
    buddy.NodePfnRange(node, &begin, &end);
    EXPECT_EQ(begin, expect_begin) << "arena " << node << " leaves a PFN gap";
    EXPECT_GT(end, begin);
    // A frame's home is derivable from its PFN alone — both endpoints of the
    // range must map back to this node.
    EXPECT_EQ(buddy.NodeOfPfn(begin), node);
    EXPECT_EQ(buddy.NodeOfPfn(end - 1), node);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, mem.num_frames());
}

// Draining node 0's arena dry must steer further allocations to the nearest
// remote arena (never fail while any node has frames), and freeing everything
// must put every frame back on its *home* node's free lists.
TEST(NumaTest, ExhaustionSpillsToNearestRemoteAndFreesReturnHome) {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  if (buddy.NumNodes() < 2) {
    GTEST_SKIP() << "single-node topology: no remote arena to spill to";
  }
  const NodeTopology& topo = NodeTopology::Instance();
  BindThisThreadToCpu(topo.FirstCpuOfNode(0));
  buddy.FlushCpuCaches();
  buddy.SetMagazinesEnabled(false);  // Every alloc/free hits the arenas directly.
  StatsDomain& stats = GlobalStats();

  const uint64_t node0_before = buddy.NodeFreeFrameCount(0);
  const uint64_t node1_before = buddy.NodeFreeFrameCount(1);
  std::vector<Pfn> held;
  held.reserve(node0_before + 64);
  while (buddy.NodeFreeFrameCount(0) > 0) {
    Result<Pfn> f = buddy.AllocFrame();
    ASSERT_TRUE(f.ok());
    held.push_back(*f);
  }

  const uint64_t spills0 = stats.Total(Counter::kNumaSpills);
  const uint64_t remote0 = stats.Total(Counter::kNumaRemoteAllocs);
  int foreign = 0;
  constexpr int kSpillAllocs = 64;
  for (int i = 0; i < kSpillAllocs; ++i) {
    Result<Pfn> f = buddy.AllocFrame();
    ASSERT_TRUE(f.ok()) << "exhausting the home node must spill, not fail";
    if (buddy.NodeOfPfn(*f) != 0) {
      ++foreign;
    }
    held.push_back(*f);
  }
  EXPECT_EQ(foreign, kSpillAllocs);
  EXPECT_GE(stats.Total(Counter::kNumaSpills) - spills0,
            static_cast<uint64_t>(kSpillAllocs));
  EXPECT_GE(stats.Total(Counter::kNumaRemoteAllocs) - remote0,
            static_cast<uint64_t>(kSpillAllocs));

  for (Pfn f : held) {
    buddy.FreeFrame(f);
  }
  // Frees route by PFN: both arenas end exactly where they started, and no
  // frame sits on a foreign free list.
  EXPECT_EQ(buddy.NodeFreeFrameCount(0), node0_before);
  EXPECT_EQ(buddy.NodeFreeFrameCount(1), node1_before);
  EXPECT_EQ(buddy.CountMisplacedFreeFrames(), 0u);
  buddy.SetMagazinesEnabled(true);
}

// Freeing from a CPU on another node must still return the frame to its home
// arena — the free routes by PFN, not by the freeing CPU.
TEST(NumaTest, FreesFromForeignCpuReturnToHomeArena) {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  if (buddy.NumNodes() < 2) {
    GTEST_SKIP() << "single-node topology: every CPU is home";
  }
  const NodeTopology& topo = NodeTopology::Instance();
  buddy.FlushCpuCaches();
  buddy.SetMagazinesEnabled(false);

  BindThisThreadToCpu(topo.FirstCpuOfNode(0));
  const uint64_t node0_before = buddy.NodeFreeFrameCount(0);
  std::vector<Pfn> held;
  for (int i = 0; i < 32; ++i) {
    Result<Pfn> f = buddy.AllocFrame();
    ASSERT_TRUE(f.ok());
    ASSERT_EQ(buddy.NodeOfPfn(*f), 0) << "home arena has frames; alloc must be local";
    held.push_back(*f);
  }

  BindThisThreadToCpu(topo.FirstCpuOfNode(1));
  for (Pfn f : held) {
    buddy.FreeFrame(f);
  }
  EXPECT_EQ(buddy.NodeFreeFrameCount(0), node0_before);
  EXPECT_EQ(buddy.CountMisplacedFreeFrames(), 0u);

  BindThisThreadToCpu(topo.FirstCpuOfNode(0));
  buddy.SetMagazinesEnabled(true);
}

// ---------------------------------------------------------------------------
// Slab
// ---------------------------------------------------------------------------

TEST(SlabTest, AllocFreeReuse) {
  SlabCache cache(48, "test-48");
  void* a = cache.Alloc();
  void* b = cache.Alloc();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  cache.Free(a);
  cache.Free(b);
  // Reuse comes from the per-CPU magazine.
  void* c = cache.Alloc();
  EXPECT_TRUE(c == a || c == b);
  cache.Free(c);
}

TEST(SlabTest, ObjectsDoNotOverlap) {
  SlabCache cache(64, "test-64");
  std::vector<void*> objs;
  for (int i = 0; i < 500; ++i) {
    void* p = cache.Alloc();
    ASSERT_NE(p, nullptr);
    std::memset(p, i & 0xff, 64);
    objs.push_back(p);
  }
  // Writing a distinct pattern into each object must not corrupt others.
  for (int i = 0; i < 500; ++i) {
    auto* bytes = static_cast<uint8_t*>(objs[i]);
    std::memset(bytes, (i * 7) & 0xff, 64);
  }
  std::set<void*> unique(objs.begin(), objs.end());
  EXPECT_EQ(unique.size(), objs.size());
  for (void* p : objs) {
    cache.Free(p);
  }
}

TEST(SlabTest, TypedSlabConstructsAndDestroys) {
  struct Probe {
    explicit Probe(int* counter) : counter_(counter) { ++*counter_; }
    ~Probe() { --*counter_; }
    int* counter_;
    char pad[40];
  };
  TypedSlab<Probe> slab("probe");
  int live = 0;
  Probe* a = slab.New(&live);
  Probe* b = slab.New(&live);
  EXPECT_EQ(live, 2);
  slab.Delete(a);
  slab.Delete(b);
  EXPECT_EQ(live, 0);
}

TEST(SlabTest, ConcurrentAllocFree) {
  SlabCache cache(32, "test-mt");
  std::vector<std::thread> workers;
  std::atomic<bool> failed{false};
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      BindThisThreadToCpu(t + 40);
      std::vector<void*> mine;
      for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 32; ++i) {
          void* p = cache.Alloc();
          if (p == nullptr) {
            failed.store(true);
            return;
          }
          *static_cast<uint64_t*>(p) = static_cast<uint64_t>(t) << 32 | i;
          mine.push_back(p);
        }
        for (void* p : mine) {
          cache.Free(p);
        }
        mine.clear();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace cortenmm
