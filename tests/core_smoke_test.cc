// End-to-end smoke tests of the CortenMM core through the simulated MMU:
// mmap / touch / munmap / mprotect / fork+COW / swap / file mappings, under
// both locking protocols and both ISAs.
#include <gtest/gtest.h>

#include <cstring>

#include "src/common/stats.h"
#include "src/core/vm_space.h"
#include "src/pmm/buddy.h"
#include "src/pmm/phys_mem.h"
#include "src/sim/corten_vm.h"
#include "src/sim/mmu.h"
#include "src/sync/rcu.h"

namespace cortenmm {
namespace {

struct SmokeParam {
  Protocol protocol;
  Arch arch;
};

class CoreSmokeTest : public ::testing::TestWithParam<SmokeParam> {
 protected:
  AddrSpace::Options MakeOptions() const {
    AddrSpace::Options options;
    options.protocol = GetParam().protocol;
    options.arch = GetParam().arch;
    return options;
  }
};

TEST_P(CoreSmokeTest, MmapTouchRead) {
  CortenVm mm(MakeOptions());
  Result<Vaddr> va = mm.MmapAnon(16 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  for (int i = 0; i < 16; ++i) {
    Vaddr addr = *va + i * kPageSize;
    ASSERT_TRUE(MmuSim::Write(mm, addr, 0x1234 + i).ok());
  }
  for (int i = 0; i < 16; ++i) {
    uint64_t value = 0;
    ASSERT_TRUE(MmuSim::Read(mm, *va + i * kPageSize, &value).ok());
    EXPECT_EQ(value, 0x1234u + i);
  }
}

TEST_P(CoreSmokeTest, DemandZero) {
  CortenVm mm(MakeOptions());
  Result<Vaddr> va = mm.MmapAnon(kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  uint64_t value = 0xdead;
  ASSERT_TRUE(MmuSim::Read(mm, *va, &value).ok());
  EXPECT_EQ(value, 0u);  // Demand-zero fill.
}

TEST_P(CoreSmokeTest, MunmapMakesRangeInvalid) {
  CortenVm mm(MakeOptions());
  Result<Vaddr> va = mm.MmapAnon(4 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::TouchRange(mm, *va, 4 * kPageSize, /*write=*/true).ok());
  ASSERT_TRUE(mm.Munmap(*va, 4 * kPageSize).ok());
  uint64_t value;
  EXPECT_EQ(MmuSim::Read(mm, *va, &value).error(), ErrCode::kFault);
}

TEST_P(CoreSmokeTest, UnmapVirtualOnly) {
  // unmap-virt microbenchmark shape: munmap of never-touched pages.
  CortenVm mm(MakeOptions());
  Result<Vaddr> va = mm.MmapAnon(4 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(mm.Munmap(*va, 4 * kPageSize).ok());
  uint64_t value;
  EXPECT_EQ(MmuSim::Read(mm, *va, &value).error(), ErrCode::kFault);
}

TEST_P(CoreSmokeTest, MprotectReadOnlyFaultsOnWrite) {
  CortenVm mm(MakeOptions());
  Result<Vaddr> va = mm.MmapAnon(2 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::TouchRange(mm, *va, 2 * kPageSize, /*write=*/true).ok());
  ASSERT_TRUE(mm.Mprotect(*va, kPageSize, Perm::R()).ok());
  EXPECT_EQ(MmuSim::Write(mm, *va, 1).error(), ErrCode::kFault);
  uint64_t value;
  EXPECT_TRUE(MmuSim::Read(mm, *va, &value).ok());                  // Still readable.
  EXPECT_TRUE(MmuSim::Write(mm, *va + kPageSize, 1).ok());          // Unprotected page.
}

TEST_P(CoreSmokeTest, ForkCopyOnWrite) {
  CortenVm parent(MakeOptions());
  Result<Vaddr> va = parent.MmapAnon(2 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::Write(parent, *va, 77).ok());

  // Fork through the facade: the child is a full MmInterface, so the MMU can
  // drive it directly (no ad-hoc adapter).
  std::unique_ptr<MmInterface> child = parent.Fork();
  ASSERT_NE(child, nullptr);

  // Child sees the parent's value through the shared COW frame.
  uint64_t value = 0;
  ASSERT_TRUE(MmuSim::Read(*child, *va, &value).ok());
  EXPECT_EQ(value, 77u);

  // Child write triggers COW; parent remains unchanged.
  ASSERT_TRUE(MmuSim::Write(*child, *va, 88).ok());
  ASSERT_TRUE(MmuSim::Read(*child, *va, &value).ok());
  EXPECT_EQ(value, 88u);
  ASSERT_TRUE(MmuSim::Read(parent, *va, &value).ok());
  EXPECT_EQ(value, 77u);

  // Parent write now reclaims its (sole-mapper) frame in place.
  ASSERT_TRUE(MmuSim::Write(parent, *va, 99).ok());
  ASSERT_TRUE(MmuSim::Read(parent, *va, &value).ok());
  EXPECT_EQ(value, 99u);
  ASSERT_TRUE(MmuSim::Read(*child, *va, &value).ok());
  EXPECT_EQ(value, 88u);
}

TEST_P(CoreSmokeTest, SwapOutAndBackIn) {
  CortenVm mm(MakeOptions());
  Result<Vaddr> va = mm.MmapAnon(4 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(MmuSim::Write(mm, *va + i * kPageSize, 1000 + i).ok());
  }
  Result<uint64_t> swapped = mm.SwapOut(*va, 4 * kPageSize);
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(*swapped, 4u);
  for (int i = 0; i < 4; ++i) {
    uint64_t value = 0;
    ASSERT_TRUE(MmuSim::Read(mm, *va + i * kPageSize, &value).ok());
    EXPECT_EQ(value, 1000u + i);
  }
}

TEST_P(CoreSmokeTest, PrivateFileMapping) {
  CortenVm mm(MakeOptions());
  SimFile* file = FileRegistry::Instance().CreateFile(8);
  Result<Vaddr> va = mm.MmapFilePrivate(file, 0, 8 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());

  uint64_t value = 0;
  ASSERT_TRUE(MmuSim::Read(mm, *va, &value).ok());
  uint64_t expected = 0;
  for (int b = 7; b >= 0; --b) {
    expected = (expected << 8) | SimFile::ContentByte(file->id(), b);
  }
  EXPECT_EQ(value, expected);

  // Private write copies; the page cache is untouched.
  ASSERT_TRUE(MmuSim::Write(mm, *va, 0xabcdef).ok());
  ASSERT_TRUE(MmuSim::Read(mm, *va, &value).ok());
  EXPECT_EQ(value, 0xabcdefu);
  Result<Pfn> cache_page = file->GetPage(0);
  ASSERT_TRUE(cache_page.ok());
  uint64_t cache_word;
  std::memcpy(&cache_word, PhysMem::Instance().FrameData(*cache_page), 8);
  EXPECT_EQ(cache_word, expected);
}

TEST_P(CoreSmokeTest, SharedMappingVisibleAcrossSpaces) {
  CortenVm a(MakeOptions());
  CortenVm b(MakeOptions());
  SimFile* segment = FileRegistry::Instance().CreateSharedAnonSegment(4);
  Result<Vaddr> va_a = a.MmapShared(segment, 0, 4 * kPageSize, Perm::RW());
  Result<Vaddr> va_b = b.MmapShared(segment, 0, 4 * kPageSize, Perm::RW());
  ASSERT_TRUE(va_a.ok());
  ASSERT_TRUE(va_b.ok());
  ASSERT_TRUE(MmuSim::Write(a, *va_a, 4242).ok());
  uint64_t value = 0;
  ASSERT_TRUE(MmuSim::Read(b, *va_b, &value).ok());
  EXPECT_EQ(value, 4242u);
}

TEST_P(CoreSmokeTest, FrameAccountingBalances) {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  uint64_t before = GlobalStats().Total(Counter::kFramesAllocated) -
                    GlobalStats().Total(Counter::kFramesFreed);
  {
    CortenVm mm(MakeOptions());
    Result<Vaddr> va = mm.MmapAnon(64 * kPageSize, Perm::RW());
    ASSERT_TRUE(va.ok());
    ASSERT_TRUE(MmuSim::TouchRange(mm, *va, 64 * kPageSize, /*write=*/true).ok());
    ASSERT_TRUE(mm.Munmap(*va, 64 * kPageSize).ok());
  }
  TlbSystem::Instance().DrainAll();
  Rcu::Instance().DrainAll();
  uint64_t after = GlobalStats().Total(Counter::kFramesAllocated) -
                   GlobalStats().Total(Counter::kFramesFreed);
  EXPECT_EQ(before, after) << "leaked " << (after - before) << " frames";
  (void)buddy;
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsAndArchs, CoreSmokeTest,
    ::testing::Values(SmokeParam{Protocol::kRw, Arch::kX86_64},
                      SmokeParam{Protocol::kAdv, Arch::kX86_64},
                      SmokeParam{Protocol::kRw, Arch::kRiscvSv48},
                      SmokeParam{Protocol::kAdv, Arch::kRiscvSv48}),
    [](const ::testing::TestParamInfo<SmokeParam>& info) {
      std::string name = info.param.protocol == Protocol::kRw ? "rw" : "adv";
      name += info.param.arch == Arch::kX86_64 ? "_x86" : "_riscv";
      return name;
    });

}  // namespace
}  // namespace cortenmm
