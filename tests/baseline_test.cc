// Functional tests of the three baseline memory managers through the same
// simulated MMU the benchmarks use, plus structural tests of the VMA tree.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/stats.h"

#include "src/baseline/linux_mm.h"
#include "src/baseline/nros_mm.h"
#include "src/baseline/radixvm_mm.h"
#include "src/baseline/vma_tree.h"
#include "src/sim/mmu.h"

namespace cortenmm {
namespace {

// ---------------------------------------------------------------------------
// Shared conformance suite over every baseline.
// ---------------------------------------------------------------------------

enum class Kind { kLinux, kRadix, kNros };

std::unique_ptr<MmInterface> Make(Kind kind) {
  switch (kind) {
    case Kind::kLinux:
      return std::make_unique<LinuxVmaMm>();
    case Kind::kRadix:
      return std::make_unique<RadixVmMm>();
    case Kind::kNros:
      return std::make_unique<NrosMm>();
  }
  return nullptr;
}

class BaselineConformanceTest : public ::testing::TestWithParam<Kind> {};

TEST_P(BaselineConformanceTest, MmapTouchReadBack) {
  auto mm = Make(GetParam());
  Result<Vaddr> va = mm->MmapAnon(16 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(MmuSim::Write(*mm, *va + i * kPageSize, 100 + i).ok());
  }
  for (int i = 0; i < 16; ++i) {
    uint64_t value = 0;
    ASSERT_TRUE(MmuSim::Read(*mm, *va + i * kPageSize, &value).ok());
    EXPECT_EQ(value, 100u + i);
  }
}

TEST_P(BaselineConformanceTest, MunmapFaults) {
  auto mm = Make(GetParam());
  Result<Vaddr> va = mm->MmapAnon(4 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::TouchRange(*mm, *va, 4 * kPageSize, true).ok());
  ASSERT_TRUE(mm->Munmap(*va, 4 * kPageSize).ok());
  uint64_t value;
  EXPECT_EQ(MmuSim::Read(*mm, *va, &value).error(), ErrCode::kFault);
}

TEST_P(BaselineConformanceTest, MprotectDeniesWrites) {
  auto mm = Make(GetParam());
  Result<Vaddr> va = mm->MmapAnon(2 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::TouchRange(*mm, *va, 2 * kPageSize, true).ok());
  ASSERT_TRUE(mm->Mprotect(*va, 2 * kPageSize, Perm::R()).ok());
  EXPECT_EQ(MmuSim::Write(*mm, *va, 9).error(), ErrCode::kFault);
  uint64_t value;
  EXPECT_TRUE(MmuSim::Read(*mm, *va, &value).ok());
}

TEST_P(BaselineConformanceTest, UnmappedAddressFaults) {
  auto mm = Make(GetParam());
  uint64_t value;
  EXPECT_EQ(MmuSim::Read(*mm, kUserVaBase + (1ull << 33), &value).error(),
            ErrCode::kFault);
}

TEST_P(BaselineConformanceTest, ReuseAfterMunmap) {
  auto mm = Make(GetParam());
  for (int round = 0; round < 50; ++round) {
    Result<Vaddr> va = mm->MmapAnon(4 * kPageSize, Perm::RW());
    ASSERT_TRUE(va.ok());
    ASSERT_TRUE(MmuSim::Write(*mm, *va, round).ok());
    ASSERT_TRUE(mm->Munmap(*va, 4 * kPageSize).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineConformanceTest,
                         ::testing::Values(Kind::kLinux, Kind::kRadix, Kind::kNros),
                         [](const ::testing::TestParamInfo<Kind>& info) {
                           switch (info.param) {
                             case Kind::kLinux:
                               return "linux";
                             case Kind::kRadix:
                               return "radixvm";
                             case Kind::kNros:
                               return "nros";
                           }
                           return "unknown";
                         });

// ---------------------------------------------------------------------------
// Linux-specific behaviour
// ---------------------------------------------------------------------------

TEST(LinuxMmTest, VmaSplitOnPartialMunmap) {
  LinuxVmaMm mm;
  Result<Vaddr> va = mm.MmapAnon(8 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  size_t before = mm.VmaCount();
  // Punch a hole in the middle: the VMA must split into two.
  ASSERT_TRUE(mm.Munmap(*va + 2 * kPageSize, 2 * kPageSize).ok());
  EXPECT_EQ(mm.VmaCount(), before + 1);
  EXPECT_TRUE(mm.CheckVmaTree());
  // Edges stay accessible, the hole faults.
  ASSERT_TRUE(MmuSim::Write(mm, *va, 1).ok());
  ASSERT_TRUE(MmuSim::Write(mm, *va + 6 * kPageSize, 1).ok());
  uint64_t value;
  EXPECT_EQ(MmuSim::Read(mm, *va + 2 * kPageSize, &value).error(), ErrCode::kFault);
}

TEST(LinuxMmTest, MprotectSplitsAndTreeStaysValid) {
  LinuxVmaMm mm;
  Result<Vaddr> va = mm.MmapAnon(16 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(mm.Mprotect(*va + 4 * kPageSize, 4 * kPageSize, Perm::R()).ok());
  EXPECT_TRUE(mm.CheckVmaTree());
  EXPECT_EQ(mm.VmaCount(), 3u);
  EXPECT_EQ(MmuSim::Write(mm, *va + 4 * kPageSize, 1).error(), ErrCode::kFault);
  EXPECT_TRUE(MmuSim::Write(mm, *va + 8 * kPageSize, 1).ok());
}

TEST(LinuxMmTest, ForkCopyOnWrite) {
  LinuxVmaMm parent;
  Result<Vaddr> va = parent.MmapAnon(2 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::Write(parent, *va, 55).ok());
  std::unique_ptr<MmInterface> child = parent.Fork();
  uint64_t value = 0;
  ASSERT_TRUE(MmuSim::Read(*child, *va, &value).ok());
  EXPECT_EQ(value, 55u);
  ASSERT_TRUE(MmuSim::Write(*child, *va, 66).ok());
  ASSERT_TRUE(MmuSim::Read(parent, *va, &value).ok());
  EXPECT_EQ(value, 55u);
  ASSERT_TRUE(MmuSim::Read(*child, *va, &value).ok());
  EXPECT_EQ(value, 66u);
}

// ---------------------------------------------------------------------------
// RadixVM-specific behaviour
// ---------------------------------------------------------------------------

TEST(RadixVmTest, PerCoreReplicasGetIndependentTables) {
  RadixVmMm mm;
  Result<Vaddr> va = mm.MmapAnon(4 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());

  BindThisThreadToCpu(0);
  ASSERT_TRUE(MmuSim::Write(mm, *va, 7).ok());
  uint64_t pt_one_core = mm.PtBytes();

  BindThisThreadToCpu(1);
  uint64_t value = 0;
  ASSERT_TRUE(MmuSim::Read(mm, *va, &value).ok());
  EXPECT_EQ(value, 7u);
  uint64_t pt_two_cores = mm.PtBytes();
  // The second core faulted the page into its own replica: more PT bytes.
  EXPECT_GT(pt_two_cores, pt_one_core);
  BindThisThreadToCpu(0);
}

// ---------------------------------------------------------------------------
// NrOS-specific behaviour
// ---------------------------------------------------------------------------

TEST(NrosTest, EagerMappingNoDemandPaging) {
  NrosMm mm;
  EXPECT_FALSE(mm.demand_paging());
  uint64_t faults_before = GlobalStats().Total(Counter::kPageFaults);
  Result<Vaddr> va = mm.MmapAnon(4 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  BindThisThreadToCpu(0);
  ASSERT_TRUE(MmuSim::TouchRange(mm, *va, 4 * kPageSize, true).ok());
  // The mapping core sees no page fault: frames were mapped eagerly.
  EXPECT_EQ(GlobalStats().Total(Counter::kPageFaults), faults_before);
}

TEST(NrosTest, LaggingReplicaCatchesUpOnFault) {
  BindThisThreadToCpu(0);
  NrosMm mm;
  Result<Vaddr> va = mm.MmapAnon(kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::Write(mm, *va, 31).ok());
  // CPU 1 uses the other replica; its first read syncs it from the log.
  BindThisThreadToCpu(1);
  uint64_t value = 0;
  ASSERT_TRUE(MmuSim::Read(mm, *va, &value).ok());
  EXPECT_EQ(value, 31u);
  BindThisThreadToCpu(0);
}

// ---------------------------------------------------------------------------
// VMA tree structure
// ---------------------------------------------------------------------------

TEST(VmaTreeTest, InsertFindEraseManyStaysBalanced) {
  VmaTree tree;
  constexpr int kN = 512;
  std::vector<Vma*> vmas;
  for (int i = 0; i < kN; ++i) {
    vmas.push_back(tree.Insert(i * 0x10000, i * 0x10000 + 0x8000, Perm::RW()));
  }
  ASSERT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    Vma* hit = tree.Find(i * 0x10000 + 0x4000);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit, vmas[i]);
    EXPECT_EQ(tree.Find(i * 0x10000 + 0x9000), nullptr);  // In the gap.
  }
  // Erase every third node; structure must stay valid.
  for (int i = 0; i < kN; i += 3) {
    tree.Erase(vmas[i]);
  }
  EXPECT_TRUE(tree.CheckInvariants());
  for (int i = 0; i < kN; ++i) {
    Vma* hit = tree.Find(i * 0x10000);
    if (i % 3 == 0) {
      EXPECT_EQ(hit, nullptr);
    } else {
      EXPECT_NE(hit, nullptr);
    }
  }
}

TEST(VmaTreeTest, SplitAndMerge) {
  VmaTree tree;
  Vma* vma = tree.Insert(0x100000, 0x200000, Perm::RW());
  Vma* tail = tree.SplitAt(vma, 0x180000);
  ASSERT_NE(tail, nullptr);
  EXPECT_EQ(vma->end, 0x180000u);
  EXPECT_EQ(tail->start, 0x180000u);
  EXPECT_EQ(tail->end, 0x200000u);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_TRUE(tree.TryMergeWithNext(vma));
  EXPECT_EQ(vma->end, 0x200000u);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(VmaTreeTest, MergeRefusesDifferentPerms) {
  VmaTree tree;
  Vma* a = tree.Insert(0x100000, 0x180000, Perm::RW());
  tree.Insert(0x180000, 0x200000, Perm::R());
  EXPECT_FALSE(tree.TryMergeWithNext(a));
  EXPECT_EQ(tree.size(), 2u);
}

TEST(VmaTreeTest, OverlapQueries) {
  VmaTree tree;
  tree.Insert(0x10000, 0x20000, Perm::RW());
  tree.Insert(0x30000, 0x40000, Perm::RW());
  tree.Insert(0x50000, 0x60000, Perm::RW());
  int count = 0;
  tree.ForEachOverlap(VaRange(0x18000, 0x52000), [&count](Vma*) { ++count; });
  EXPECT_EQ(count, 3);
  EXPECT_EQ(tree.FindFirstOverlap(VaRange(0x20000, 0x30000)), nullptr);
  EXPECT_NE(tree.FindFirstOverlap(VaRange(0x3f000, 0x41000)), nullptr);
}

}  // namespace
}  // namespace cortenmm
