// MmRing conformance: submission ordering, per-op Status fidelity against the
// equivalent synchronous sequence, ring-full backpressure, and the
// flat-combining drain's fusion/ordering rules — both at the raw MmRing level
// (scripted executor) and through every facade backend.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/ring/mm_ring.h"
#include "src/sim/bench_util.h"

namespace cortenmm {
namespace {

MmSqe MakeMunmapSqe(Vaddr va, uint64_t len, uint64_t cookie) {
  MmSqe sqe;
  sqe.op = MmOpCode::kMunmap;
  sqe.va = va;
  sqe.len = len;
  sqe.user_data = cookie;
  return sqe;
}

// --- Raw ring: drain grouping and ordering, scripted executor --------------

TEST(MmRingTest, SingleOpRoundTrip) {
  BindThisThreadToCpu(0);
  std::atomic<int> executed{0};
  MmRing ring([&](const MmSqe* sqes, MmCqe* cqes, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      executed.fetch_add(1);
      cqes[i].err = ErrCode::kOk;
      cqes[i].va = sqes[i].va;
    }
  });
  MmSqe sqe;
  sqe.op = MmOpCode::kNop;
  sqe.user_data = 42;
  ASSERT_TRUE(ring.Submit(sqe));
  EXPECT_EQ(ring.Outstanding(), 1u);
  ring.DrainBarrier();
  MmCqe cqe;
  ASSERT_TRUE(ring.Reap(&cqe));
  EXPECT_EQ(cqe.user_data, 42u);
  EXPECT_EQ(cqe.err, ErrCode::kOk);
  EXPECT_EQ(executed.load(), 1);
  EXPECT_FALSE(ring.Reap(&cqe));
  EXPECT_EQ(ring.Outstanding(), 0u);
}

TEST(MmRingTest, SameSubtreeOpsFuseIntoOneExecutorCall) {
  BindThisThreadToCpu(0);
  std::vector<size_t> group_sizes;
  MmRing ring([&](const MmSqe*, MmCqe*, size_t n) { group_sizes.push_back(n); });
  constexpr Vaddr kBase = 64ull << 30;  // One 1 GiB subtree.
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.Submit(MakeMunmapSqe(kBase + i * kPageSize, kPageSize, i)));
  }
  ring.DrainBarrier();
  ASSERT_EQ(group_sizes.size(), 1u);
  EXPECT_EQ(group_sizes[0], 8u);
  MmCqe cqe;
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.Reap(&cqe));
    EXPECT_EQ(cqe.user_data, i);  // Per-CPU FIFO completion order.
  }
}

TEST(MmRingTest, DistinctSubtreesFormDistinctGroups) {
  BindThisThreadToCpu(0);
  std::vector<size_t> group_sizes;
  MmRing ring([&](const MmSqe*, MmCqe*, size_t n) { group_sizes.push_back(n); });
  constexpr Vaddr kTreeA = 64ull << 30;
  constexpr Vaddr kTreeB = 96ull << 30;
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.Submit(MakeMunmapSqe(kTreeA + i * kPageSize, kPageSize, i)));
    ASSERT_TRUE(ring.Submit(MakeMunmapSqe(kTreeB + i * kPageSize, kPageSize, 10 + i)));
  }
  ring.DrainBarrier();
  ASSERT_EQ(group_sizes.size(), 2u);
  EXPECT_EQ(group_sizes[0], 3u);
  EXPECT_EQ(group_sizes[1], 3u);
}

TEST(MmRingTest, NonFusableOpCutsTheWaveButKeepsOrder) {
  BindThisThreadToCpu(0);
  std::vector<std::vector<uint64_t>> calls;  // user_data per executor call.
  MmRing ring([&](const MmSqe* sqes, MmCqe* cqes, size_t n) {
    std::vector<uint64_t> cookies;
    for (size_t i = 0; i < n; ++i) {
      cookies.push_back(sqes[i].user_data);
      cqes[i].err = ErrCode::kOk;
    }
    calls.push_back(std::move(cookies));
  });
  constexpr Vaddr kBase = 64ull << 30;
  ASSERT_TRUE(ring.Submit(MakeMunmapSqe(kBase, kPageSize, 0)));
  ASSERT_TRUE(ring.Submit(MakeMunmapSqe(kBase + kPageSize, kPageSize, 1)));
  MmSqe nop;  // Not fusable: must cut the wave, not be reordered around.
  nop.op = MmOpCode::kNop;
  nop.user_data = 2;
  ASSERT_TRUE(ring.Submit(nop));
  ASSERT_TRUE(ring.Submit(MakeMunmapSqe(kBase + 2 * kPageSize, kPageSize, 3)));
  ring.DrainBarrier();
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_EQ(calls[0], (std::vector<uint64_t>{0, 1}));
  EXPECT_EQ(calls[1], (std::vector<uint64_t>{2}));
  EXPECT_EQ(calls[2], (std::vector<uint64_t>{3}));
  MmCqe cqe;
  for (uint64_t expect : {0, 1, 2, 3}) {
    ASSERT_TRUE(ring.Reap(&cqe));
    EXPECT_EQ(cqe.user_data, expect);
  }
}

TEST(MmRingTest, LargeGroupsChunkAtMaxFusedOps) {
  BindThisThreadToCpu(0);
  std::vector<size_t> group_sizes;
  MmRing ring([&](const MmSqe*, MmCqe*, size_t n) { group_sizes.push_back(n); });
  constexpr Vaddr kBase = 64ull << 30;
  const uint64_t total = MmRing::kMaxFusedOps + 7;
  for (uint64_t i = 0; i < total; ++i) {
    ASSERT_TRUE(ring.Submit(MakeMunmapSqe(kBase + i * kPageSize, kPageSize, i)));
  }
  ring.DrainBarrier();
  ASSERT_EQ(group_sizes.size(), 2u);
  EXPECT_EQ(group_sizes[0], MmRing::kMaxFusedOps);
  EXPECT_EQ(group_sizes[1], 7u);
}

TEST(MmRingTest, BackpressureAtDepthUnreapedCompletions) {
  BindThisThreadToCpu(0);
  MmRing ring([](const MmSqe*, MmCqe* cqes, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      cqes[i].err = ErrCode::kOk;
    }
  });
  MmSqe nop;
  nop.op = MmOpCode::kNop;
  for (uint32_t i = 0; i < MmRing::kDepth; ++i) {
    nop.user_data = i;
    ASSERT_TRUE(ring.Submit(nop)) << i;
  }
  // At the limit: the inline drain posts completions, but with none reaped
  // the CPU still has kDepth outstanding — Submit must refuse, not drop.
  nop.user_data = MmRing::kDepth;
  EXPECT_FALSE(ring.Submit(nop));
  MmCqe cqe;
  ASSERT_TRUE(ring.Reap(&cqe));
  EXPECT_EQ(cqe.user_data, 0u);
  EXPECT_TRUE(ring.Submit(nop));  // One reap frees exactly one slot.
  ring.DrainBarrier();
  uint64_t reaped = 1;
  while (ring.Reap(&cqe)) {
    ++reaped;
  }
  EXPECT_EQ(reaped, static_cast<uint64_t>(MmRing::kDepth) + 1);
  EXPECT_EQ(cqe.user_data, MmRing::kDepth);  // The retried op completes last.
}

// Flat-combining handoff under contention: several bound threads submit and
// barrier concurrently; every thread must reap exactly its own completions in
// its own submission order, whichever thread ends up combining. (The tsan
// preset runs this to race-check the MCS handoff and SPSC index protocol.)
TEST(MmRingTest, ConcurrentSubmittersEachReapTheirOwnInOrder) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  constexpr int kOpsPerRound = 8;
  std::atomic<uint64_t> executed{0};
  MmRing ring([&](const MmSqe*, MmCqe* cqes, size_t n) {
    executed.fetch_add(n, std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) {
      cqes[i].err = ErrCode::kOk;
    }
  });
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      BindThisThreadToCpu(t);
      uint64_t next_cookie = 0;
      uint64_t expect_cookie = 0;
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kOpsPerRound; ++i) {
          // Each thread works a private subtree so cross-CPU fusion is
          // possible within a thread but never across threads' cookies.
          MmSqe sqe = MakeMunmapSqe((uint64_t(t + 1) << 40) + i * kPageSize,
                                    kPageSize, next_cookie++);
          if (!ring.Submit(sqe)) {
            failed.store(true);
            return;
          }
        }
        ring.DrainBarrier();
        MmCqe cqe;
        for (int i = 0; i < kOpsPerRound; ++i) {
          if (!ring.Reap(&cqe) || cqe.user_data != expect_cookie++) {
            failed.store(true);
            return;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(executed.load(), uint64_t(kThreads) * kRounds * kOpsPerRound);
}

// --- Facade rings: every backend, batched == synchronous -------------------

class RingFacadeTest : public ::testing::TestWithParam<MmKind> {};

MmSqe FixedMmapSqe(Vaddr va, uint64_t len, Perm perm, uint64_t cookie) {
  MmSqe sqe;
  sqe.op = MmOpCode::kMmapAnonFixed;
  sqe.va = va;
  sqe.len = len;
  sqe.perm = perm;
  sqe.user_data = cookie;
  return sqe;
}

MmSqe FaultSqe(Vaddr va, Access access, uint64_t cookie) {
  MmSqe sqe;
  sqe.op = MmOpCode::kFault;
  sqe.va = va;
  sqe.access = access;
  sqe.user_data = cookie;
  return sqe;
}

// The io_uring ordering contract + per-op Status fidelity: a same-CPU
// submission sequence completes in order with exactly the statuses the
// synchronous call sequence would produce — including the trailing SEGV.
TEST_P(RingFacadeTest, BatchedSequenceMatchesSyncStatuses) {
  BindThisThreadToCpu(0);
  std::unique_ptr<MmInterface> mm = MakeMm(GetParam());
  ASSERT_NE(mm, nullptr);
  constexpr Vaddr kBase = 72ull << 30;
  constexpr uint64_t kLen = 2 * kPageSize;

  ASSERT_TRUE(mm->Submit(FixedMmapSqe(kBase, kLen, Perm::RW(), 1)));
  ASSERT_TRUE(mm->Submit(FaultSqe(kBase, Access::kWrite, 2)));
  MmSqe prot;
  prot.op = MmOpCode::kMprotect;
  prot.va = kBase;
  prot.len = kLen;
  prot.perm = Perm::R();
  prot.user_data = 3;
  ASSERT_TRUE(mm->Submit(prot));
  ASSERT_TRUE(mm->Submit(FaultSqe(kBase, Access::kWrite, 4)));  // Read-only now.
  MmSqe unmap = MakeMunmapSqe(kBase, kLen, 5);
  ASSERT_TRUE(mm->Submit(unmap));
  ASSERT_TRUE(mm->Submit(FaultSqe(kBase, Access::kRead, 6)));  // Unmapped now.
  mm->DrainBarrier();

  struct Expect {
    uint64_t cookie;
    ErrCode err;
  };
  const Expect expects[] = {
      {1, ErrCode::kOk},    {2, ErrCode::kOk},   {3, ErrCode::kOk},
      {4, ErrCode::kFault}, {5, ErrCode::kOk},   {6, ErrCode::kFault},
  };
  for (const Expect& expect : expects) {
    MmCqe cqe;
    ASSERT_TRUE(mm->Reap(&cqe));
    EXPECT_EQ(cqe.user_data, expect.cookie);
    EXPECT_EQ(cqe.err, expect.err) << "op " << expect.cookie;
  }
  MmCqe leftover;
  EXPECT_FALSE(mm->Reap(&leftover));
}

// An address-allocating mmap rides the ring as a serial op and still returns
// its placement through the completion.
TEST_P(RingFacadeTest, AddressAllocatingMmapCompletesWithPlacement) {
  BindThisThreadToCpu(0);
  std::unique_ptr<MmInterface> mm = MakeMm(GetParam());
  MmSqe sqe;
  sqe.op = MmOpCode::kMmapAnon;
  sqe.len = 4 * kPageSize;
  sqe.perm = Perm::RW();
  sqe.user_data = 7;
  ASSERT_TRUE(mm->Submit(sqe));
  mm->DrainBarrier();
  MmCqe cqe;
  ASSERT_TRUE(mm->Reap(&cqe));
  ASSERT_EQ(cqe.err, ErrCode::kOk);
  ASSERT_NE(cqe.va, 0u);
  EXPECT_TRUE(mm->Munmap(cqe.va, 4 * kPageSize).ok());
}

// Multi-thread storm through the facade ring: per-thread disjoint regions,
// every op must come back kOk, and the space must be empty at the end.
TEST_P(RingFacadeTest, ConcurrentBatchesAllSucceed) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 10;
  std::unique_ptr<MmInterface> mm = MakeMm(GetParam());
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      BindThisThreadToCpu(t);
      const Vaddr base = (100ull + t) << 30;
      for (int round = 0; round < kRounds && !failed.load(); ++round) {
        uint64_t cookie = 0;
        for (int i = 0; i < 8; ++i) {
          Vaddr va = base + uint64_t(i) * 4 * kPageSize;
          if (!mm->Submit(FixedMmapSqe(va, 4 * kPageSize, Perm::RW(), cookie++)) ||
              !mm->Submit(FaultSqe(va, Access::kWrite, cookie++))) {
            failed.store(true);
            return;
          }
        }
        for (int i = 0; i < 8; ++i) {
          Vaddr va = base + uint64_t(i) * 4 * kPageSize;
          if (!mm->Submit(MakeMunmapSqe(va, 4 * kPageSize, cookie++))) {
            failed.store(true);
            return;
          }
        }
        mm->DrainBarrier();
        MmCqe cqe;
        for (uint64_t expect = 0; expect < cookie; ++expect) {
          if (!mm->Reap(&cqe) || cqe.user_data != expect ||
              cqe.err != ErrCode::kOk) {
            failed.store(true);
            return;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(failed.load());
}

INSTANTIATE_TEST_SUITE_P(AllManagers, RingFacadeTest,
                         ::testing::ValuesIn(ComparisonSet()),
                         [](const ::testing::TestParamInfo<MmKind>& info) {
                           std::string name = MmKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace cortenmm
