// Unit tests of the transactional interface itself (paper Figure 4): the
// Query/Map/Mark/Unmap/Protect semantics, upper-level metadata marks with
// push-down, huge-page mapping and splitting, and status enumeration.
#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/core/addr_space.h"
#include "src/pmm/buddy.h"
#include "src/pmm/phys_mem.h"
#include "src/verif/wf_checker.h"

namespace cortenmm {
namespace {

class RCursorTest : public ::testing::TestWithParam<Protocol> {
 protected:
  AddrSpace::Options MakeOptions() const {
    AddrSpace::Options options;
    options.protocol = GetParam();
    return options;
  }

  Pfn AllocAnon() {
    Result<Pfn> frame = BuddyAllocator::Instance().AllocZeroedFrame();
    EXPECT_TRUE(frame.ok());
    PhysMem::Instance().Descriptor(*frame).ResetForAlloc(FrameType::kAnon);
    return *frame;
  }
};

TEST_P(RCursorTest, QueryInvalidByDefault) {
  AddrSpace space(MakeOptions());
  RCursor cursor = space.Lock(VaRange(0x100000, 0x110000));
  EXPECT_TRUE(cursor.Query(0x100000).invalid());
  EXPECT_TRUE(cursor.Query(0x10f000).invalid());
}

TEST_P(RCursorTest, MapThenQueryRoundTrip) {
  AddrSpace space(MakeOptions());
  Pfn frame = AllocAnon();
  {
    RCursor cursor = space.Lock(VaRange(0x200000, 0x201000));
    ASSERT_TRUE(cursor.Map(0x200000, frame, Perm::RW()).ok());
    Status status = cursor.Query(0x200000);
    EXPECT_TRUE(status.mapped());
    EXPECT_EQ(status.pfn, frame);
    EXPECT_TRUE(status.perm.write());
  }
  // A fresh transaction sees the same state.
  RCursor cursor = space.Lock(VaRange(0x200000, 0x201000));
  EXPECT_TRUE(cursor.Query(0x200000).mapped());
}

TEST_P(RCursorTest, MarkCoversLargeRangeWithOneUpperLevelMark) {
  AddrSpace space(MakeOptions());
  // 8 MiB range: 4 aligned 2 MiB slots => marks land on level-2 slots and
  // allocate no leaf PT pages.
  VaRange range(1ull << 30, (1ull << 30) + (8ull << 20));
  uint64_t pt_before = space.page_table().CountPtPages();
  {
    RCursor cursor = space.Lock(range);
    ASSERT_TRUE(cursor.Mark(range, Status::PrivateAnon(Perm::RW())).ok());
  }
  uint64_t pt_after = space.page_table().CountPtPages();
  // Only the path down to one level-2 PT page (which holds 4 marked slots).
  EXPECT_LE(pt_after - pt_before, 3u);
  RCursor cursor = space.Lock(range);
  Status status = cursor.Query(range.start + (3ull << 20));
  EXPECT_EQ(status.tag, StatusTag::kPrivateAnon);
  EXPECT_TRUE(status.perm.write());
}

TEST_P(RCursorTest, MarkPushdownOnPartialOverwrite) {
  AddrSpace space(MakeOptions());
  VaRange big(1ull << 31, (1ull << 31) + (2ull << 20));  // One whole 2 MiB slot.
  {
    RCursor cursor = space.Lock(big);
    ASSERT_TRUE(cursor.Mark(big, Status::PrivateAnon(Perm::RW())).ok());
  }
  // Overwrite one page in the middle with a different status: the mark must
  // be pushed down and only that page changed.
  Vaddr victim = big.start + (1ull << 20);
  {
    RCursor cursor = space.Lock(VaRange(victim, victim + kPageSize));
    ASSERT_TRUE(cursor
                    .Mark(VaRange(victim, victim + kPageSize),
                          Status::Swapped(0, 99, Perm::RW()))
                    .ok());
  }
  RCursor cursor = space.Lock(big);
  EXPECT_EQ(cursor.Query(big.start).tag, StatusTag::kPrivateAnon);
  EXPECT_EQ(cursor.Query(victim).tag, StatusTag::kSwapped);
  EXPECT_EQ(cursor.Query(victim).page_offset, 99u);
  EXPECT_EQ(cursor.Query(victim + kPageSize).tag, StatusTag::kPrivateAnon);
  // Clean up the fake swap mark so teardown doesn't drop a bogus block ref.
  cursor.Mark(VaRange(victim, victim + kPageSize), Status::PrivateAnon(Perm::RW()));
}

TEST_P(RCursorTest, OffsetBearingMarkDecodesPerPage) {
  AddrSpace space(MakeOptions());
  VaRange range(1ull << 32, (1ull << 32) + (2ull << 20));
  RCursor cursor = space.Lock(range);
  ASSERT_TRUE(cursor.Mark(range, Status::PrivateFileMapped(7, 100, Perm::R())).ok());
  // Page i of the range maps file page 100 + i.
  Status s0 = cursor.Query(range.start);
  Status s5 = cursor.Query(range.start + 5 * kPageSize);
  EXPECT_EQ(s0.page_offset, 100u);
  EXPECT_EQ(s5.page_offset, 105u);
  EXPECT_EQ(s5.object_id, 7u);
}

TEST_P(RCursorTest, UnmapClearsMarksAndMappings) {
  AddrSpace space(MakeOptions());
  VaRange range(0x300000, 0x304000);
  Pfn frame = AllocAnon();
  {
    RCursor cursor = space.Lock(range);
    ASSERT_TRUE(cursor.Mark(range, Status::PrivateAnon(Perm::RW())).ok());
    ASSERT_TRUE(cursor.Map(0x301000, frame, Perm::RW()).ok());
    ASSERT_TRUE(cursor.Unmap(VaRange(0x300000, 0x302000)).ok());
    EXPECT_TRUE(cursor.Query(0x300000).invalid());
    EXPECT_TRUE(cursor.Query(0x301000).invalid());
    EXPECT_EQ(cursor.Query(0x302000).tag, StatusTag::kPrivateAnon);
  }
}

TEST_P(RCursorTest, ProtectRewritesMappedAndMarked) {
  AddrSpace space(MakeOptions());
  VaRange range(0x400000, 0x402000);
  Pfn frame = AllocAnon();
  RCursor cursor = space.Lock(range);
  ASSERT_TRUE(cursor.Map(0x400000, frame, Perm::RW()).ok());
  ASSERT_TRUE(
      cursor.Mark(VaRange(0x401000, 0x402000), Status::PrivateAnon(Perm::RW())).ok());
  ASSERT_TRUE(cursor.Protect(range, Perm::R()).ok());
  EXPECT_FALSE(cursor.Query(0x400000).perm.write());
  EXPECT_FALSE(cursor.Query(0x401000).perm.write());
}

TEST_P(RCursorTest, MapHugeAndQueryInterior) {
  AddrSpace space(MakeOptions());
  Result<Pfn> block = BuddyAllocator::Instance().AllocBlock(9);  // 2 MiB.
  ASSERT_TRUE(block.ok());
  for (uint64_t i = 0; i < 512; ++i) {
    PhysMem::Instance().Descriptor(*block + i).ResetForAlloc(FrameType::kAnon);
  }
  Vaddr va = 8ull << 30;  // 2 MiB aligned.
  VaRange range(va, va + (2ull << 20));
  {
    RCursor cursor = space.Lock(range);
    ASSERT_TRUE(cursor.MapHuge(va, *block, Perm::RW(), 2).ok());
    Status interior = cursor.Query(va + 37 * kPageSize);
    EXPECT_TRUE(interior.mapped());
    EXPECT_EQ(interior.pfn, *block + 37);
  }
  WfReport report = CheckWellFormed(space);
  EXPECT_TRUE(report.ok) << report.first_error;
}

TEST_P(RCursorTest, PartialUnmapSplitsHugeLeaf) {
  AddrSpace space(MakeOptions());
  Result<Pfn> block = BuddyAllocator::Instance().AllocBlock(9);
  ASSERT_TRUE(block.ok());
  for (uint64_t i = 0; i < 512; ++i) {
    PhysMem::Instance().Descriptor(*block + i).ResetForAlloc(FrameType::kAnon);
  }
  Vaddr va = 10ull << 30;
  VaRange range(va, va + (2ull << 20));
  {
    RCursor cursor = space.Lock(range);
    ASSERT_TRUE(cursor.MapHuge(va, *block, Perm::RW(), 2).ok());
    // Unmap one 4K page in the middle: the huge leaf must split.
    Vaddr hole = va + 100 * kPageSize;
    ASSERT_TRUE(cursor.Unmap(VaRange(hole, hole + kPageSize)).ok());
    EXPECT_TRUE(cursor.Query(hole).invalid());
    EXPECT_TRUE(cursor.Query(hole - kPageSize).mapped());
    EXPECT_TRUE(cursor.Query(hole + kPageSize).mapped());
    EXPECT_EQ(cursor.Query(hole + kPageSize).pfn, *block + 101);
  }
  WfReport report = CheckWellFormed(space);
  EXPECT_TRUE(report.ok) << report.first_error;
}

TEST_P(RCursorTest, ForEachStatusEnumeratesMixedState) {
  AddrSpace space(MakeOptions());
  VaRange range(0x500000, 0x506000);
  Pfn frame = AllocAnon();
  RCursor cursor = space.Lock(range);
  ASSERT_TRUE(cursor.Map(0x500000, frame, Perm::RW()).ok());
  ASSERT_TRUE(
      cursor.Mark(VaRange(0x502000, 0x504000), Status::PrivateAnon(Perm::R())).ok());
  int mapped_runs = 0;
  int marked_pages = 0;
  cursor.ForEachStatus(range, [&](VaRange run, const Status& status) {
    if (status.mapped()) {
      ++mapped_runs;
      EXPECT_EQ(run.start, 0x500000u);
    } else if (status.tag == StatusTag::kPrivateAnon) {
      marked_pages += static_cast<int>(run.num_pages());
    }
  });
  EXPECT_EQ(mapped_runs, 1);
  EXPECT_EQ(marked_pages, 2);
}

TEST_P(RCursorTest, RangeContainmentEnforced) {
  AddrSpace space(MakeOptions());
  RCursor cursor = space.Lock(VaRange(0x600000, 0x601000));
  Pfn frame = AllocAnon();
  EXPECT_EQ(cursor.Map(0x700000, frame, Perm::RW()).error(), ErrCode::kInval);
  EXPECT_EQ(cursor.Unmap(VaRange(0x600000, 0x700000)).error(), ErrCode::kInval);
  EXPECT_EQ(cursor.Mark(VaRange(0x5ff000, 0x601000), Status::PrivateAnon(Perm::R())).error(),
            ErrCode::kInval);
  BuddyAllocator::Instance().FreeFrame(frame);
}

TEST_P(RCursorTest, MarkMappedStatusRejected) {
  AddrSpace space(MakeOptions());
  RCursor cursor = space.Lock(VaRange(0x600000, 0x601000));
  EXPECT_EQ(
      cursor.Mark(VaRange(0x600000, 0x601000), Status::Mapped(1, Perm::RW())).error(),
      ErrCode::kInval);
}

TEST_P(RCursorTest, CoveringPageLevelMatchesRange) {
  AddrSpace space(MakeOptions());
  // A 4 KiB range within one leaf PT page's span locks deep; a 100 GiB range
  // must lock near the root. Both must work and stay well-formed.
  {
    RCursor small = space.Lock(VaRange(0x1000, 0x2000));
    EXPECT_TRUE(small.Query(0x1000).invalid());
  }
  {
    VaRange wide(0, 100ull << 30);
    RCursor big = space.Lock(wide);
    ASSERT_TRUE(big.Mark(VaRange(0, 1ull << 30), Status::PrivateAnon(Perm::RW())).ok());
  }
  WfReport report = CheckWellFormed(space);
  EXPECT_TRUE(report.ok) << report.first_error;
}

// A transaction that only reads (or that rolled back before mutating
// anything) gathers nothing, so its destructor must not issue a shootdown.
TEST_P(RCursorTest, ReadOnlyCursorIssuesNoShootdown) {
  AddrSpace space(MakeOptions());
  uint64_t before = GlobalStats().Total(Counter::kTlbShootdowns);
  {
    RCursor cursor = space.Lock(VaRange(0x700000, 0x710000));
    cursor.Query(0x700000);
    cursor.Query(0x70f000);
  }
  EXPECT_EQ(GlobalStats().Total(Counter::kTlbShootdowns) - before, 0u);
}

// The gather in action at the cursor level: a transaction unmapping several
// sparse pages flushes them as ONE batched shootdown, and a page between the
// gathered ranges keeps its (hypothetical) TLB entry — no bounding box.
TEST_P(RCursorTest, SparseUnmapFlushesOnceWithDiscreteRanges) {
  AddrSpace space(MakeOptions());
  VaRange range(0x800000, 0x800000 + 16 * kPageSize);
  std::vector<Vaddr> victims = {range.start, range.start + 5 * kPageSize,
                                range.start + 11 * kPageSize};
  Vaddr bystander = range.start + 8 * kPageSize;
  {
    RCursor cursor = space.Lock(range);
    for (Vaddr va : victims) {
      ASSERT_TRUE(cursor.Map(va, AllocAnon(), Perm::RW()).ok());
    }
    ASSERT_TRUE(cursor.Map(bystander, AllocAnon(), Perm::RW()).ok());
  }
  // Seed this CPU's TLB as if the MMU had cached all four translations.
  CpuId cpu = CurrentCpu();
  space.NoteCpuActive(cpu);
  Tlb& tlb = TlbSystem::Instance().CpuTlb(cpu);
  for (Vaddr va : victims) {
    tlb.Insert(space.asid(), va, 1, 1);
  }
  tlb.Insert(space.asid(), bystander, 1, 1);
  uint64_t before = GlobalStats().Total(Counter::kTlbShootdowns);
  {
    RCursor cursor = space.Lock(range);
    for (Vaddr va : victims) {
      ASSERT_TRUE(cursor.Unmap(VaRange(va, va + kPageSize)).ok());
    }
  }
  EXPECT_EQ(GlobalStats().Total(Counter::kTlbShootdowns) - before, 1u);
  for (Vaddr va : victims) {
    EXPECT_FALSE(tlb.Lookup(space.asid(), va).has_value()) << va;
  }
  EXPECT_TRUE(tlb.Lookup(space.asid(), bystander).has_value());
  // Clean up the remaining mapping.
  RCursor cursor = space.Lock(range);
  ASSERT_TRUE(cursor.Unmap(range).ok());
}

INSTANTIATE_TEST_SUITE_P(BothProtocols, RCursorTest,
                         ::testing::Values(Protocol::kRw, Protocol::kAdv),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return info.param == Protocol::kRw ? "rw" : "adv";
                         });

}  // namespace
}  // namespace cortenmm
