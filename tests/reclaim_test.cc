// Reclaim subsystem tests: watermarks, the second-chance clock, per-tenant
// resident limits with ring backpressure, fault-time throttling, THP fallback
// under pressure, SwapOut x THP under injected device faults, and background
// reclaim racing mutators while the injector fires.
//
// NOTE: these run in every preset — deliberately NOT registered under the
// `chaos` ctest label, so the tsan preset (which excludes -LE chaos) still
// exercises the reclaimer-vs-mutator races.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/cpu.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/backing.h"
#include "src/core/vm_space.h"
#include "src/fault/fault_inject.h"
#include "src/pmm/buddy.h"
#include "src/pmm/page_desc.h"
#include "src/pmm/phys_mem.h"
#include "src/reclaim/reclaim.h"
#include "src/sim/corten_vm.h"
#include "src/sync/rcu.h"
#include "src/tlb/shootdown.h"
#include "src/verif/wf_checker.h"

namespace cortenmm {
namespace {

uint64_t Count(Counter c) { return GlobalStats().Total(c); }

// Clears the `young` bit on every frame descriptor, making every resident
// exclusive-anon page immediately evictable. Tests use this instead of
// driving the clock hand through two full sweeps of the (large) test arena.
void AgeAllFrames() {
  PhysMem& mem = PhysMem::Instance();
  for (Pfn pfn = 1; pfn < mem.num_frames(); ++pfn) {
    mem.Descriptor(pfn).young.store(false, std::memory_order_relaxed);
  }
}

void Quiesce() {
  TlbSystem::Instance().DrainAll();
  Rcu::Instance().DrainAll();
  BuddyAllocator::Instance().FlushCpuCaches();
}

// Saves/restores the global watermarks and guarantees the reclaimer and the
// injector are off again at test exit, whatever the test body did.
class ReclaimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_low_ = BuddyAllocator::Instance().LowWatermark();
    saved_min_ = BuddyAllocator::Instance().MinWatermark();
  }
  void TearDown() override {
    ReclaimSystem::Instance().Stop();
    FaultInjector::Instance().DisableAll();
    BuddyAllocator::Instance().SetWatermarks(saved_low_, saved_min_);
    Quiesce();
  }

  uint64_t saved_low_ = 0;
  uint64_t saved_min_ = 0;
};

TEST_F(ReclaimTest, WatermarkDefaultsAndOverride) {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  EXPECT_EQ(buddy.LowWatermark(), buddy.TotalFrameCount() / 16);
  EXPECT_EQ(buddy.MinWatermark(), buddy.TotalFrameCount() / 64);
  EXPECT_FALSE(buddy.BelowLow());
  EXPECT_FALSE(buddy.BelowMin());

  buddy.SetWatermarks(123, 45);
  EXPECT_EQ(buddy.LowWatermark(), 123u);
  EXPECT_EQ(buddy.MinWatermark(), 45u);
}

TEST_F(ReclaimTest, StartStopLifecycleAndTenantRegistry) {
  ReclaimSystem& reclaim = ReclaimSystem::Instance();
  EXPECT_FALSE(reclaim.running());

  reclaim.Start();
  reclaim.Start();  // Idempotent.
  EXPECT_TRUE(reclaim.running());
  size_t before = reclaim.TenantCount();
  {
    VmSpace space{AddrSpace::Options{}};
    EXPECT_EQ(reclaim.TenantCount(), before + 1);
  }
  EXPECT_EQ(reclaim.TenantCount(), before);

  reclaim.Stop();
  reclaim.Stop();  // Idempotent.
  EXPECT_FALSE(reclaim.running());
  {
    // Spaces created while stopped never register.
    VmSpace space{AddrSpace::Options{}};
    EXPECT_EQ(reclaim.TenantCount(), 0u);
  }
}

TEST_F(ReclaimTest, ClockEvictsColdPagesAndTheyFaultBack) {
  ScopedReclaim reclaim;
  VmSpace space{AddrSpace::Options{}};
  constexpr uint64_t kPages = 128;
  Result<Vaddr> va = space.MmapAnon(kPages << kPageBits, Perm::RW());
  ASSERT_TRUE(va.ok());
  for (uint64_t p = 0; p < kPages; ++p) {
    ASSERT_TRUE(space.HandleFault(*va + (p << kPageBits), Access::kWrite).ok());
  }
  ASSERT_EQ(space.addr_space().ResidentPagesFast(), kPages);

  uint64_t blocks_before = SwapDevice::Instance().blocks_in_use();
  // Once cold, a targeted pass moves every page of this tenant to swap.
  AgeAllFrames();
  uint64_t evicted = ReclaimSystem::Instance().ReclaimPages(
      kPages, &space.addr_space());
  EXPECT_EQ(evicted, kPages);
  EXPECT_EQ(space.addr_space().ResidentPagesFast(), 0u);
  EXPECT_EQ(SwapDevice::Instance().blocks_in_use(), blocks_before + kPages);
  EXPECT_GE(Count(Counter::kReclaimScannedFrames), kPages);

  // Every page faults back in (slow path via the swap device) and releases
  // its block.
  for (uint64_t p = 0; p < kPages; ++p) {
    EXPECT_TRUE(space.HandleFault(*va + (p << kPageBits), Access::kRead).ok());
  }
  EXPECT_EQ(space.addr_space().ResidentPagesFast(), kPages);
  EXPECT_EQ(SwapDevice::Instance().blocks_in_use(), blocks_before);
}

TEST_F(ReclaimTest, YoungBitGivesSecondChance) {
  ScopedReclaim reclaim;
  VmSpace space{AddrSpace::Options{}};
  Result<Vaddr> va = space.MmapAnon(kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(space.HandleFault(*va, Access::kWrite).ok());

  AgeAllFrames();
  // A fault re-references the page: it must survive the next pass.
  ASSERT_TRUE(space.HandleFault(*va, Access::kRead).ok());
  // max_scan of num_frames-1 is exactly one full clock revolution: every
  // descriptor visited exactly once (the hand ranges over [1, frames-1]).
  const uint64_t kOneSweep = PhysMem::Instance().num_frames() - 1;
  uint64_t evicted = ReclaimSystem::Instance().ReclaimPages(
      1, &space.addr_space(), /*max_scan=*/kOneSweep);
  // First sweep: the page's young bit is consumed, nothing evicted yet.
  EXPECT_EQ(evicted, 0u);
  EXPECT_EQ(space.addr_space().ResidentPagesFast(), 1u);
  // Second sweep: now cold, now evicted.
  evicted = ReclaimSystem::Instance().ReclaimPages(
      1, &space.addr_space(), /*max_scan=*/kOneSweep);
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(space.addr_space().ResidentPagesFast(), 0u);
}

TEST_F(ReclaimTest, ResidentLimitDegradesFaultsNotFails) {
  ScopedReclaim reclaim;
  VmSpace space{AddrSpace::Options{}};
  constexpr uint64_t kLimit = 64;
  constexpr uint64_t kPages = 128;
  Result<Vaddr> va = space.MmapAnon(kPages << kPageBits, Perm::RW());
  ASSERT_TRUE(va.ok());
  ReclaimSystem::Instance().SetResidentLimit(&space, kLimit);
  EXPECT_EQ(ReclaimSystem::Instance().ResidentLimit(&space), kLimit);

  uint64_t limit_hits_before = Count(Counter::kReclaimLimitHits);
  for (uint64_t p = 0; p < kPages; ++p) {
    if (p > 0 && p % 16 == 0) {
      AgeAllFrames();  // Keep the tenant's own pages evictable as it grows.
    }
    // Over the limit the fault must still succeed — degraded, never kNoMem.
    EXPECT_TRUE(space.HandleFault(*va + (p << kPageBits), Access::kWrite).ok());
  }
  EXPECT_GT(Count(Counter::kReclaimLimitHits), limit_hits_before);

  // Once everything is cold, a targeted pass drives the tenant down to its
  // limit. The fault-time passes are scan-bounded, so they may only have made
  // partial progress — though with the magazine layer's LIFO frame reuse the
  // tenant's pages sit dense in the PFN space and the bounded passes often
  // hold the line at exactly kLimit by themselves.
  AgeAllFrames();
  uint64_t resident = space.addr_space().ResidentPagesFast();
  if (resident > kLimit) {
    ReclaimSystem::Instance().ReclaimPages(resident - kLimit,
                                           &space.addr_space());
  }
  EXPECT_LE(space.addr_space().ResidentPagesFast(), kLimit);
}

TEST_F(ReclaimTest, RingSubmitBouncesOverLimitTenant) {
  ScopedReclaim reclaim;
  CortenVm mm{AddrSpace::Options{}};
  constexpr uint64_t kLimit = 32;
  Result<Vaddr> va = mm.vm().MmapAnon(2 * kLimit << kPageBits, Perm::RW());
  ASSERT_TRUE(va.ok());
  ReclaimSystem::Instance().SetResidentLimit(&mm.vm(), kLimit);

  // Faults 1..kLimit stay under the limit: no bounce.
  for (uint64_t p = 0; p < kLimit; ++p) {
    ASSERT_TRUE(mm.vm().HandleFault(*va + (p << kPageBits), Access::kWrite).ok());
  }
  ASSERT_EQ(mm.vm().addr_space().ResidentPagesFast(), kLimit);

  // At the limit a resident-growing submission is refused at the frontend.
  uint64_t rejects_before = Count(Counter::kRingLimitRejects);
  MmSqe fault;
  fault.op = MmOpCode::kFault;
  fault.va = *va + (kLimit << kPageBits);
  fault.access = Access::kWrite;
  EXPECT_FALSE(mm.Submit(fault));
  EXPECT_EQ(Count(Counter::kRingLimitRejects), rejects_before + 1);

  // Non-growing ops pass through the same ring untouched.
  MmSqe nop;
  nop.op = MmOpCode::kNop;
  nop.user_data = 77;
  EXPECT_TRUE(mm.Submit(nop));
  mm.DrainBarrier();
  MmCqe cqe;
  ASSERT_TRUE(mm.Reap(&cqe));
  EXPECT_EQ(cqe.user_data, 77u);
  EXPECT_EQ(cqe.err, ErrCode::kOk);

  // The bounced fault degrades to the synchronous path and succeeds. The
  // fault-time reclaim pass is scan-bounded, so in this large arena the RSS
  // may transiently sit one page over the limit — never unboundedly.
  AgeAllFrames();
  EXPECT_TRUE(mm.vm().HandleFault(fault.va, Access::kWrite).ok());
  EXPECT_LE(mm.vm().addr_space().ResidentPagesFast(), kLimit + 1);
}

TEST_F(ReclaimTest, PressureWakesKswapdAndThrottlesFaults) {
  // Start first (default watermarks, no pressure yet): only spaces created
  // while the reclaimer runs are registered tenants.
  ReclaimConfig config;
  config.throttle_us = 50;
  ScopedReclaim reclaim(config);

  // A pool of cold evictable pages for the reclaimers to find.
  VmSpace cold{AddrSpace::Options{}};
  constexpr uint64_t kColdPages = 256;
  Result<Vaddr> cold_va = cold.MmapAnon(kColdPages << kPageBits, Perm::RW());
  ASSERT_TRUE(cold_va.ok());
  for (uint64_t p = 0; p < kColdPages; ++p) {
    ASSERT_TRUE(cold.HandleFault(*cold_va + (p << kPageBits), Access::kWrite).ok());
  }
  AgeAllFrames();

  // Now put the machine under both watermarks: free is below MIN by 16
  // frames, below LOW by 64 — the cold pool more than covers both deficits.
  uint64_t free = BuddyAllocator::Instance().FreeFrameCount();
  BuddyAllocator::Instance().SetWatermarks(free + 64, free + 16);

  uint64_t wakeups_before = Count(Counter::kReclaimWakeups);
  uint64_t evicted_before = Count(Counter::kReclaimPagesEvicted);

  // One faulting tenant: its allocations fire the pressure hook, waking
  // kswapd, which evicts the cold pool until the free count recovers.
  VmSpace space{AddrSpace::Options{}};
  Result<Vaddr> va = space.MmapAnon(4 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  for (int p = 0; p < 4; ++p) {
    EXPECT_TRUE(space.HandleFault(*va + (p << kPageBits), Access::kWrite).ok());
  }
  EXPECT_GT(Count(Counter::kReclaimWakeups), wakeups_before);

  // Background + direct reclaim restore the free count above MIN.
  for (int spin = 0; spin < 200 && BuddyAllocator::Instance().BelowMin(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(BuddyAllocator::Instance().BelowMin());
  EXPECT_GT(Count(Counter::kReclaimPagesEvicted), evicted_before);
}

TEST_F(ReclaimTest, FaultsThrottleBoundedBelowMin) {
  ReclaimConfig config;
  config.throttle_us = 50;
  config.max_throttle_rounds = 3;
  ScopedReclaim reclaim(config);

  VmSpace space{AddrSpace::Options{}};
  Result<Vaddr> va = space.MmapAnon(kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());

  // A deficit nothing can clear (there is no cold pool at all): every fault
  // runs exactly max_throttle_rounds bounded throttle rounds, then proceeds
  // anyway — degraded to slow, never blocked forever, never failed.
  uint64_t free = BuddyAllocator::Instance().FreeFrameCount();
  BuddyAllocator::Instance().SetWatermarks(free + 4096, free + 4096);
  uint64_t throttles_before = Count(Counter::kReclaimThrottles);
  EXPECT_TRUE(space.HandleFault(*va, Access::kWrite).ok());
  EXPECT_EQ(Count(Counter::kReclaimThrottles),
            throttles_before + config.max_throttle_rounds);
}

TEST_F(ReclaimTest, HugeFaultInFallsBackTo4kUnderPressure) {
  AddrSpace::Options options;
  options.huge_pages = true;
  VmSpace space{options};
  Result<Vaddr> va = space.MmapAnon(2 * kHugePageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(IsAligned(*va, kHugePageSize));

  // Below LOW (but not MIN, so no throttle sleeps): THP fault-in is off.
  uint64_t free = BuddyAllocator::Instance().FreeFrameCount();
  ReclaimConfig config;
  config.low_watermark = free + 1024;
  config.min_watermark = 1;
  ScopedReclaim reclaim(config);

  uint64_t suppressed_before = Count(Counter::kReclaimHugeSuppressed);
  ASSERT_TRUE(space.HandleFault(*va, Access::kWrite).ok());
  EXPECT_EQ(space.addr_space().ResidentPagesFast(), 1u);  // 4 KiB, not 512.
  EXPECT_GT(Count(Counter::kReclaimHugeSuppressed), suppressed_before);

  // Pressure gone: the second slot goes huge again.
  BuddyAllocator::Instance().SetWatermarks(saved_low_, saved_min_);
  ASSERT_TRUE(space.HandleFault(*va + kHugePageSize, Access::kWrite).ok());
  EXPECT_EQ(space.addr_space().ResidentPagesFast(), 1u + 512u);
}

TEST(FusedBatchTest, DeferredFreeVaFlushesAtThreshold) {
  CortenVm mm{AddrSpace::Options{}};
  // 40 single-page regions > the 16-entry deferred-FreeVa bound: the fused
  // batch must flush mid-run (closing and reopening its transaction) instead
  // of growing the deferred list without bound.
  constexpr int kRegions = 40;
  std::vector<MmSqe> sqes(kRegions);
  std::vector<MmCqe> cqes(kRegions);
  for (int i = 0; i < kRegions; ++i) {
    Result<Vaddr> va = mm.vm().MmapAnon(kPageSize, Perm::RW());
    ASSERT_TRUE(va.ok());
    ASSERT_TRUE(mm.vm().HandleFault(*va, Access::kWrite).ok());
    sqes[i].op = MmOpCode::kMunmap;
    sqes[i].va = *va;
    sqes[i].len = kPageSize;
    sqes[i].user_data = i;
    cqes[i].user_data = i;
  }
  uint64_t flushes_before = GlobalStats().Total(Counter::kFusedVaFlushes);
  mm.ExecuteBatch(sqes.data(), cqes.data(), kRegions);
  for (int i = 0; i < kRegions; ++i) {
    EXPECT_EQ(cqes[i].err, ErrCode::kOk) << "op " << i;
  }
  EXPECT_GT(GlobalStats().Total(Counter::kFusedVaFlushes), flushes_before);
  EXPECT_EQ(mm.vm().addr_space().ResidentPagesFast(), 0u);
}

#if CORTENMM_FAULTINJ

// Satellite: SwapOut of a 2 MiB huge run must split the leaf and stop
// cleanly — no stranded frames, no leaked swap blocks — when the swap-device
// write site fires mid-eviction.
TEST_F(ReclaimTest, SwapOutHugeRunRollsBackOnDeviceWriteFault) {
  Quiesce();
  uint64_t baseline_free = BuddyAllocator::Instance().FreeFrameCount();
  uint64_t blocks_before = SwapDevice::Instance().blocks_in_use();
  {
    AddrSpace::Options options;
    options.huge_pages = true;
    VmSpace space{options};
    Result<Vaddr> va = space.MmapAnon(kHugePageSize, Perm::RW());
    ASSERT_TRUE(va.ok());
    ASSERT_TRUE(space.HandleFault(*va, Access::kWrite).ok());
    ASSERT_EQ(space.addr_space().ResidentPagesFast(), 512u);

    // The 9th block write fails, exactly once, mid-eviction.
    FaultConfig config;
    config.fail_after = 8;
    config.max_injections = 1;
    FaultInjector::Instance().Enable(FaultSite::kSwapDevWrite, config);

    uint64_t splits_before = Count(Counter::kHugeSplits);
    Result<uint64_t> swapped = space.SwapOut(*va, kHugePageSize);
    FaultInjector::Instance().DisableAll();

    // Partial progress, definite result: the huge leaf was split, the first
    // 8 pages are on swap, the victim of the failed write stayed resident.
    ASSERT_TRUE(swapped.ok());
    EXPECT_EQ(*swapped, 8u);
    EXPECT_GT(Count(Counter::kHugeSplits), splits_before);
    EXPECT_EQ(space.addr_space().ResidentPagesFast(), 512u - 8u);
    EXPECT_EQ(SwapDevice::Instance().blocks_in_use(), blocks_before + 8);
    EXPECT_GE(FaultInjector::Instance().TotalInjected(), 1u);

    // The swapped pages fault back in; their blocks are released.
    for (uint64_t p = 0; p < 8; ++p) {
      EXPECT_TRUE(space.HandleFault(*va + (p << kPageBits), Access::kRead).ok());
    }
    EXPECT_EQ(space.addr_space().ResidentPagesFast(), 512u);
    EXPECT_EQ(SwapDevice::Instance().blocks_in_use(), blocks_before);

    WfReport report = CheckWellFormed(space.addr_space());
    EXPECT_TRUE(report.ok) << report.first_error;
  }
  // No frame stranded by the interrupted eviction.
  LeakReport leaks = CheckFrameLeaks(baseline_free);
  EXPECT_TRUE(leaks.ok) << "leaked " << leaks.leaked << " frames";
  EXPECT_EQ(SwapDevice::Instance().blocks_in_use(), blocks_before);
}

// The chaos axis: background + direct reclaim race mutator threads while the
// injector fires swap-device and allocator faults. Every operation must get
// a definite status and no frame may leak. Runs under the tsan preset too
// (deliberately not labelled `chaos`).
TEST_F(ReclaimTest, ReclaimRacesMutatorsUnderFaultInjection) {
  Quiesce();
  uint64_t baseline_free = BuddyAllocator::Instance().FreeFrameCount();
  {
    // Permanent pressure: LOW sits above the current free count for the whole
    // run, so kswapd continuously sweeps while the mutators fault.
    ReclaimConfig config;
    config.low_watermark = BuddyAllocator::Instance().FreeFrameCount() + 512;
    config.min_watermark = 16;
    config.bg_batch = 32;
    ScopedReclaim reclaim(config);

    FaultConfig flaky;
    flaky.prob_num = 3;
    flaky.prob_den = 100;
    FaultInjector::Instance().Enable(FaultSite::kSwapDevWrite, flaky);
    FaultInjector::Instance().Enable(FaultSite::kSwapDevRead, flaky);
    FaultConfig nomem;
    nomem.prob_num = 2;
    nomem.prob_den = 100;
    FaultInjector::Instance().Enable(FaultSite::kBuddyAllocFrame, nomem);

    AddrSpace::Options options;
    options.huge_pages = true;
    auto space = std::make_unique<VmSpace>(options);

    const int kThreads = 4;
    const int kIters = 120;
    std::atomic<uint64_t> ok_ops{0};
    std::atomic<uint64_t> indefinite{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        BindThisThreadToCpu(t);
        Rng rng(0xcafe + t);
        for (int i = 0; i < kIters; ++i) {
          uint64_t pages = 8 + rng.Below(56);
          Result<Vaddr> va = space->MmapAnon(pages << kPageBits, Perm::RW());
          if (!va.ok()) {
            continue;  // kNoMem under injection is a definite, legal answer.
          }
          for (uint64_t p = 0; p < pages; ++p) {
            VoidResult r =
                space->HandleFault(*va + (p << kPageBits), Access::kWrite);
            // Definite statuses only: success, allocator exhaustion, or a
            // failed swap-in (kAgain) — anything else is a contract breach.
            if (r.ok()) {
              ok_ops.fetch_add(1, std::memory_order_relaxed);
            } else if (r.error() != ErrCode::kNoMem &&
                       r.error() != ErrCode::kAgain) {
              indefinite.fetch_add(1, std::memory_order_relaxed);
            }
          }
          if (rng.Chance(1, 8)) {
            std::unique_ptr<VmSpace> child = space->Fork();
            if (child != nullptr) {
              (void)child->HandleFault(*va, Access::kWrite);
            }
          }
          if (rng.Chance(1, 4)) {
            AgeAllFrames();  // Keep feeding the clock cold candidates.
          }
          (void)space->Munmap(*va, pages << kPageBits);
        }
      });
    }
    for (std::thread& w : workers) {
      w.join();
    }
    FaultInjector::Instance().DisableAll();

    EXPECT_GT(ok_ops.load(), 0u);
    EXPECT_EQ(indefinite.load(), 0u);
    EXPECT_GT(FaultInjector::Instance().TotalInjected(), 0u)
        << FaultInjector::Instance().DumpJson();
    EXPECT_GT(Count(Counter::kReclaimPagesEvicted), 0u);

    WfReport report = CheckWellFormed(space->addr_space());
    EXPECT_TRUE(report.ok) << report.first_error;
    // Scope exit: the space dies first (deregistering, waiting out any
    // reclaimer pin), then ScopedReclaim stops the daemons.
  }
  BuddyAllocator::Instance().SetWatermarks(saved_low_, saved_min_);
  LeakReport leaks = CheckFrameLeaks(baseline_free);
  EXPECT_TRUE(leaks.ok) << "leaked " << leaks.leaked << " frames (baseline "
                        << leaks.baseline_free << ", now "
                        << leaks.current_free << ")";
}

#endif  // CORTENMM_FAULTINJ

}  // namespace
}  // namespace cortenmm
