// Model-checking tests (the reproduction's §5 analog): exhaustively explore
// the locking-protocol state machines and check the paper's invariants; also
// validate that the checker itself catches injected violations, and exercise
// the runtime well-formedness checker against real address spaces.
#include <gtest/gtest.h>

#include "src/core/vm_space.h"
#include "src/sim/corten_vm.h"
#include "src/sim/mmu.h"
#include "src/verif/litmus_model.h"
#include "src/verif/model.h"
#include "src/verif/tree_model.h"
#include "src/verif/wf_checker.h"

namespace cortenmm {
namespace {

// ---------------------------------------------------------------------------
// CortenMM_rw protocol model
// ---------------------------------------------------------------------------

TEST(RwModelTest, TwoThreadsDisjointLeaves) {
  // Depth-3 tree (7 pages); threads lock sibling leaves: must interleave
  // freely, no violation, no deadlock.
  RwProtocolModel model(3, {{3}, {4}});
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
  EXPECT_GT(result.states_explored, 10u);
  EXPECT_GT(result.final_states, 0u);
}

TEST(RwModelTest, TwoThreadsSameLeaf) {
  RwProtocolModel model(3, {{3}, {3}});
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
}

TEST(RwModelTest, AncestorDescendantTargets) {
  // One thread locks an inner page (covering a subtree), the other a leaf
  // within it. The protocol must serialize them.
  RwProtocolModel model(3, {{1}, {3}});
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
}

TEST(RwModelTest, RootAgainstEveryone) {
  RwProtocolModel model(3, {{0}, {3}, {6}});
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
}

TEST(RwModelTest, ThreeThreadsMixedDepths) {
  RwProtocolModel model(4, {{1}, {4}, {10}});
  ModelCheckResult result = ModelChecker::Run(model, 20'000'000);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
}

// ---------------------------------------------------------------------------
// CortenMM_adv protocol model
// ---------------------------------------------------------------------------

TEST(AdvModelTest, TwoThreadsDisjointLeaves) {
  AdvProtocolModel model(3, {{3, -1}, {4, -1}});
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
  EXPECT_GT(result.final_states, 0u);
}

TEST(AdvModelTest, AncestorDescendantTargets) {
  AdvProtocolModel model(3, {{1, -1}, {3, -1}});
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
}

TEST(AdvModelTest, ConcurrentUnmapAndLock) {
  // The Figure 7 race: thread 0 locks subtree at page 1 and unmaps its child
  // subtree rooted at page 3; thread 1 concurrently targets page 3. Thread 1
  // must either win first or see the stale mark and retry to the new covering
  // page — never operate on the freed subtree.
  AdvProtocolModel model(3, {{1, 3}, {3, -1}});
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
}

TEST(AdvModelTest, UnmapRaceWithTwoLockers) {
  AdvProtocolModel model(3, {{1, 4}, {4, -1}, {3, -1}});
  ModelCheckResult result = ModelChecker::Run(model, 50'000'000);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
}

TEST(AdvModelTest, RootTransactionWithUnmapper) {
  AdvProtocolModel model(3, {{0, -1}, {2, 6}});
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
}

// ---------------------------------------------------------------------------
// The checker must actually catch violations: a deliberately broken model.
// ---------------------------------------------------------------------------

// A "protocol" where a thread write-locks its target without touching
// ancestors and without mutual exclusion: two threads on the same page must
// trip INV2.
class BrokenModel final : public Model {
 public:
  const char* name() const override { return "broken"; }
  ModelState Initial() const override { return ModelState{0, 0}; }
  std::vector<ModelState> Successors(const ModelState& s) const override {
    std::vector<ModelState> next;
    for (int t = 0; t < 2; ++t) {
      if (s[t] < 2) {
        ModelState copy = s;
        ++copy[t];
        next.push_back(copy);
      }
    }
    return next;
  }
  bool CheckInvariants(const ModelState& s, std::string* violation) const override {
    if (s[0] == 1 && s[1] == 1) {  // Both "in CS" on the same page.
      *violation = "INV2: overlapping critical sections";
      return false;
    }
    return true;
  }
  bool IsFinal(const ModelState& s) const override { return s[0] == 2 && s[1] == 2; }
};

TEST(ModelCheckerTest, DetectsInjectedViolation) {
  BrokenModel model;
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("INV2"), std::string::npos);
}

// A model that deadlocks: two threads each grab one of two locks then wait
// for the other (classic ABBA). The checker must report the deadlock.
class AbbaModel final : public Model {
 public:
  const char* name() const override { return "abba"; }
  // State: lockA owner+1, lockB owner+1, pc0, pc1.
  ModelState Initial() const override { return ModelState{0, 0, 0, 0}; }
  std::vector<ModelState> Successors(const ModelState& s) const override {
    std::vector<ModelState> next;
    struct Want {
      int first, second;
    };
    const Want order[2] = {{0, 1}, {1, 0}};  // Thread 0: A then B; thread 1: B then A.
    for (int t = 0; t < 2; ++t) {
      int pc = s[2 + t];
      if (pc == 0 || pc == 1) {
        int lock = pc == 0 ? order[t].first : order[t].second;
        if (s[lock] == 0) {
          ModelState copy = s;
          copy[lock] = static_cast<uint8_t>(t + 1);
          ++copy[2 + t];
          next.push_back(copy);
        }
      } else if (pc == 2) {
        ModelState copy = s;
        copy[order[t].first] = 0;
        copy[order[t].second] = 0;
        ++copy[2 + t];
        next.push_back(copy);
      }
    }
    return next;
  }
  bool CheckInvariants(const ModelState&, std::string*) const override { return true; }
  bool IsFinal(const ModelState& s) const override { return s[2] == 3 && s[3] == 3; }
};

TEST(ModelCheckerTest, DetectsDeadlock) {
  AbbaModel model;
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.deadlock_state.empty());
}

// ---------------------------------------------------------------------------
// Runtime well-formedness checker (Figure 12) against real address spaces.
// ---------------------------------------------------------------------------

class WfCheckerTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(WfCheckerTest, CleanAfterMixedOperations) {
  AddrSpace::Options options;
  options.protocol = GetParam();
  CortenVm mm(options);

  Result<Vaddr> a = mm.MmapAnon(64 * kPageSize, Perm::RW());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(MmuSim::TouchRange(mm, *a, 32 * kPageSize, true).ok());
  ASSERT_TRUE(mm.Mprotect(*a, 8 * kPageSize, Perm::R()).ok());
  ASSERT_TRUE(mm.Munmap(*a + 16 * kPageSize, 16 * kPageSize).ok());

  // A large mapping that lands a mark on an upper-level slot.
  Result<Vaddr> b = mm.MmapAnon(4ull << 20, Perm::RW());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(MmuSim::Write(mm, *b + (2ull << 20), 5).ok());

  WfReport report = CheckWellFormed(mm.vm().addr_space());
  EXPECT_TRUE(report.ok) << report.first_error;
  EXPECT_GT(report.pt_pages, 0u);
  EXPECT_GT(report.present_leaves, 0u);
  EXPECT_GT(report.meta_marks, 0u);
}

TEST_P(WfCheckerTest, CleanAfterForkAndCow) {
  AddrSpace::Options options;
  options.protocol = GetParam();
  CortenVm mm(options);
  Result<Vaddr> va = mm.MmapAnon(16 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::TouchRange(mm, *va, 16 * kPageSize, true).ok());
  std::unique_ptr<VmSpace> child = mm.vm().Fork();
  WfReport parent_report = CheckWellFormed(mm.vm().addr_space());
  EXPECT_TRUE(parent_report.ok) << parent_report.first_error;
  WfReport child_report = CheckWellFormed(child->addr_space());
  EXPECT_TRUE(child_report.ok) << child_report.first_error;
}

INSTANTIATE_TEST_SUITE_P(BothProtocols, WfCheckerTest,
                         ::testing::Values(Protocol::kRw, Protocol::kAdv),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return info.param == Protocol::kRw ? "rw" : "adv";
                         });

// ---------------------------------------------------------------------------
// TSO store-buffer engine (MemProgModel)
// ---------------------------------------------------------------------------
// The litmus suite (litmus_test.cc, ctest label `litmus`) checks the
// production-primitive models; the tests here pin the SEMANTICS of the
// interpreter itself: what drains the buffer, the FIFO drain order, store
// forwarding, and that kTSO explores a superset of the kSC state space.

TEST(TsoEngineTest, RunRecordsTheMemoryModel) {
  auto model = MakeMpLitmus();
  model->SetMemModel(MemModel::kSC);
  EXPECT_EQ(ModelChecker::Run(*model).mem_model, MemModel::kSC);
  model->SetMemModel(MemModel::kTSO);
  EXPECT_EQ(ModelChecker::Run(*model).mem_model, MemModel::kTSO);
  EXPECT_STREQ(MemModelName(MemModel::kSC), "sc");
  EXPECT_STREQ(MemModelName(MemModel::kTSO), "tso");
}

// The expected-outcome table for the classic litmus shapes. SB's forbidden
// outcome is reachable under kTSO and ONLY kTSO; adding the fence — or using
// MP / LB shapes — forbids it under both. This is the definition of TSO.
TEST(TsoEngineTest, ClassicLitmusExpectedOutcomeTable) {
  struct Row {
    std::unique_ptr<MemProgModel> model;
    bool ok_under_sc;
    bool ok_under_tso;
  };
  Row rows[] = {
      {MakeSbLitmus(/*fenced=*/false), true, false},
      {MakeSbLitmus(/*fenced=*/true), true, true},
      {MakeMpLitmus(), true, true},
      {MakeLbLitmus(), true, true},
  };
  for (Row& row : rows) {
    row.model->SetMemModel(MemModel::kSC);
    EXPECT_EQ(ModelChecker::Run(*row.model).ok, row.ok_under_sc) << row.model->name();
    row.model->SetMemModel(MemModel::kTSO);
    EXPECT_EQ(ModelChecker::Run(*row.model).ok, row.ok_under_tso) << row.model->name();
  }
}

// An RMW in place of the first SB store must forbid the weak outcome: x86
// LOCK-prefixed instructions drain the store buffer.
TEST(TsoEngineTest, RmwDrainsTheBuffer) {
  const int x = 0, y = 1;
  MemProgModel::ThreadScript t0, t1;
  t0.code = {Instr::Exchange(1, x, 1, MO::kAcqRel), Instr::Load(0, y, MO::kAcquire)};
  t1.code = {Instr::Exchange(1, y, 1, MO::kAcqRel), Instr::Load(0, x, MO::kAcquire)};
  MemProgModel model("sb-via-rmw", 2, 2, {t0, t1});
  model.SetInvariant([](const MemProgModel::View& v, std::string* why) {
    if (v.AllDone() && v.Reg(0, 0) == 0 && v.Reg(1, 0) == 0) {
      *why = "weak outcome survived an RMW";
      return false;
    }
    return true;
  });
  model.SetMemModel(MemModel::kTSO);
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation;
}

// A seq_cst store compiles to mov+mfence: it commits the whole buffer too.
TEST(TsoEngineTest, SeqCstStoreDrainsTheBuffer) {
  const int x = 0, y = 1;
  MemProgModel::ThreadScript t0, t1;
  t0.code = {Instr::Store(x, 1, MO::kSeqCst), Instr::Load(0, y, MO::kAcquire)};
  t1.code = {Instr::Store(y, 1, MO::kSeqCst), Instr::Load(0, x, MO::kAcquire)};
  MemProgModel model("sb-via-seqcst-store", 2, 1, {t0, t1});
  model.SetInvariant([](const MemProgModel::View& v, std::string* why) {
    if (v.AllDone() && v.Reg(0, 0) == 0 && v.Reg(1, 0) == 0) {
      *why = "weak outcome survived seq_cst stores";
      return false;
    }
    return true;
  });
  model.SetMemModel(MemModel::kTSO);
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation;
}

// The buffer drains in FIFO order: an observer that sees the SECOND store
// must also see the first. (A write-combining / reordering buffer would let
// b=1 commit before a=1 and break message passing everywhere.)
TEST(TsoEngineTest, FlushCommitsInFifoOrder) {
  const int a = 0, b = 1;
  MemProgModel::ThreadScript writer, observer;
  writer.code = {Instr::Store(a, 1, MO::kRelaxed), Instr::Store(b, 1, MO::kRelaxed)};
  observer.code = {Instr::Load(0, b, MO::kRelaxed), Instr::Load(1, a, MO::kRelaxed)};
  MemProgModel model("fifo-drain", 2, 2, {writer, observer});
  model.SetInvariant([](const MemProgModel::View& v, std::string* why) {
    if (v.Done(1) && v.Reg(1, 0) == 1 && v.Reg(1, 1) == 0) {
      *why = "second store committed before the first";
      return false;
    }
    return true;
  });
  model.SetMemModel(MemModel::kTSO);
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation;
}

// A thread reads its OWN buffered store (store forwarding) even though the
// value has not committed to shared memory yet.
TEST(TsoEngineTest, LoadsForwardFromOwnBuffer) {
  const int x = 0;
  MemProgModel::ThreadScript t0;
  t0.code = {Instr::Store(x, 7, MO::kRelaxed), Instr::Load(0, x, MO::kRelaxed)};
  MemProgModel model("store-forwarding", 1, 1, {t0});
  model.SetInvariant([](const MemProgModel::View& v, std::string* why) {
    if (v.Done(0) && v.Reg(0, 0) != 7) {
      *why = "load missed the thread's own buffered store";
      return false;
    }
    return true;
  });
  model.SetMemModel(MemModel::kTSO);
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation;
}

// More stores than the buffer holds: the store step is disabled at capacity,
// flush steps are always enabled, so the program still terminates with every
// store committed — capacity never deadlocks or drops a store.
TEST(TsoEngineTest, BufferCapacityThrottlesWithoutDeadlock) {
  static_assert(MemProgModel::kStoreBufferCap == 4, "script writes cap+2 vars");
  MemProgModel::ThreadScript t0;
  for (int v = 0; v < 6; ++v) {
    t0.code.push_back(Instr::Store(v, 1, MO::kRelaxed));
  }
  MemProgModel model("buffer-capacity", 6, 1, {t0});
  model.SetInvariant([](const MemProgModel::View& v, std::string* why) {
    if (!v.AllDone()) {
      return true;
    }
    for (int var = 0; var < 6; ++var) {
      if (v.Mem(var) != 1) {
        *why = "store dropped at buffer capacity";
        return false;
      }
    }
    return true;
  });
  model.SetMemModel(MemModel::kTSO);
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
  EXPECT_GT(result.final_states, 0u);
}

// The flush step is genuinely nondeterministic and the state layout is shared
// between modes, so kTSO explores a strict superset of the kSC state space on
// any program with a plain store — monotonicity pins that the store-buffer
// mode never LOSES coverage.
TEST(TsoEngineTest, TsoExploresSupersetOfScStates) {
  std::unique_ptr<MemProgModel> models[] = {
      MakeSbLitmus(/*fenced=*/true),
      MakeMpLitmus(),
      MakeLbLitmus(),
      MakeSeqCountLitmus(SeqCountVariant::kAsWritten),
      MakeRingPublishLitmus(RingVariant::kAsWritten),
      MakePrezeroLitmus(PrezeroVariant::kAsWritten),
  };
  for (auto& model : models) {
    MemModelComparison cmp = CompareMemModels(*model, 20'000'000);
    ASSERT_TRUE(cmp.sc.ok) << model->name() << ": " << cmp.sc.violation;
    ASSERT_TRUE(cmp.tso.ok) << model->name() << ": " << cmp.tso.violation;
    EXPECT_GT(cmp.tso.states_explored, cmp.sc.states_explored) << model->name();
    EXPECT_EQ(cmp.tso_only_states,
              cmp.tso.states_explored - cmp.sc.states_explored)
        << model->name();
  }
}

}  // namespace
}  // namespace cortenmm
