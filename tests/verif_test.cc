// Model-checking tests (the reproduction's §5 analog): exhaustively explore
// the locking-protocol state machines and check the paper's invariants; also
// validate that the checker itself catches injected violations, and exercise
// the runtime well-formedness checker against real address spaces.
#include <gtest/gtest.h>

#include "src/core/vm_space.h"
#include "src/sim/corten_vm.h"
#include "src/sim/mmu.h"
#include "src/verif/model.h"
#include "src/verif/tree_model.h"
#include "src/verif/wf_checker.h"

namespace cortenmm {
namespace {

// ---------------------------------------------------------------------------
// CortenMM_rw protocol model
// ---------------------------------------------------------------------------

TEST(RwModelTest, TwoThreadsDisjointLeaves) {
  // Depth-3 tree (7 pages); threads lock sibling leaves: must interleave
  // freely, no violation, no deadlock.
  RwProtocolModel model(3, {{3}, {4}});
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
  EXPECT_GT(result.states_explored, 10u);
  EXPECT_GT(result.final_states, 0u);
}

TEST(RwModelTest, TwoThreadsSameLeaf) {
  RwProtocolModel model(3, {{3}, {3}});
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
}

TEST(RwModelTest, AncestorDescendantTargets) {
  // One thread locks an inner page (covering a subtree), the other a leaf
  // within it. The protocol must serialize them.
  RwProtocolModel model(3, {{1}, {3}});
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
}

TEST(RwModelTest, RootAgainstEveryone) {
  RwProtocolModel model(3, {{0}, {3}, {6}});
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
}

TEST(RwModelTest, ThreeThreadsMixedDepths) {
  RwProtocolModel model(4, {{1}, {4}, {10}});
  ModelCheckResult result = ModelChecker::Run(model, 20'000'000);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
}

// ---------------------------------------------------------------------------
// CortenMM_adv protocol model
// ---------------------------------------------------------------------------

TEST(AdvModelTest, TwoThreadsDisjointLeaves) {
  AdvProtocolModel model(3, {{3, -1}, {4, -1}});
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
  EXPECT_GT(result.final_states, 0u);
}

TEST(AdvModelTest, AncestorDescendantTargets) {
  AdvProtocolModel model(3, {{1, -1}, {3, -1}});
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
}

TEST(AdvModelTest, ConcurrentUnmapAndLock) {
  // The Figure 7 race: thread 0 locks subtree at page 1 and unmaps its child
  // subtree rooted at page 3; thread 1 concurrently targets page 3. Thread 1
  // must either win first or see the stale mark and retry to the new covering
  // page — never operate on the freed subtree.
  AdvProtocolModel model(3, {{1, 3}, {3, -1}});
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
}

TEST(AdvModelTest, UnmapRaceWithTwoLockers) {
  AdvProtocolModel model(3, {{1, 4}, {4, -1}, {3, -1}});
  ModelCheckResult result = ModelChecker::Run(model, 50'000'000);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
}

TEST(AdvModelTest, RootTransactionWithUnmapper) {
  AdvProtocolModel model(3, {{0, -1}, {2, 6}});
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_TRUE(result.ok) << result.violation << result.deadlock_state;
}

// ---------------------------------------------------------------------------
// The checker must actually catch violations: a deliberately broken model.
// ---------------------------------------------------------------------------

// A "protocol" where a thread write-locks its target without touching
// ancestors and without mutual exclusion: two threads on the same page must
// trip INV2.
class BrokenModel final : public Model {
 public:
  const char* name() const override { return "broken"; }
  ModelState Initial() const override { return ModelState{0, 0}; }
  std::vector<ModelState> Successors(const ModelState& s) const override {
    std::vector<ModelState> next;
    for (int t = 0; t < 2; ++t) {
      if (s[t] < 2) {
        ModelState copy = s;
        ++copy[t];
        next.push_back(copy);
      }
    }
    return next;
  }
  bool CheckInvariants(const ModelState& s, std::string* violation) const override {
    if (s[0] == 1 && s[1] == 1) {  // Both "in CS" on the same page.
      *violation = "INV2: overlapping critical sections";
      return false;
    }
    return true;
  }
  bool IsFinal(const ModelState& s) const override { return s[0] == 2 && s[1] == 2; }
};

TEST(ModelCheckerTest, DetectsInjectedViolation) {
  BrokenModel model;
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("INV2"), std::string::npos);
}

// A model that deadlocks: two threads each grab one of two locks then wait
// for the other (classic ABBA). The checker must report the deadlock.
class AbbaModel final : public Model {
 public:
  const char* name() const override { return "abba"; }
  // State: lockA owner+1, lockB owner+1, pc0, pc1.
  ModelState Initial() const override { return ModelState{0, 0, 0, 0}; }
  std::vector<ModelState> Successors(const ModelState& s) const override {
    std::vector<ModelState> next;
    struct Want {
      int first, second;
    };
    const Want order[2] = {{0, 1}, {1, 0}};  // Thread 0: A then B; thread 1: B then A.
    for (int t = 0; t < 2; ++t) {
      int pc = s[2 + t];
      if (pc == 0 || pc == 1) {
        int lock = pc == 0 ? order[t].first : order[t].second;
        if (s[lock] == 0) {
          ModelState copy = s;
          copy[lock] = static_cast<uint8_t>(t + 1);
          ++copy[2 + t];
          next.push_back(copy);
        }
      } else if (pc == 2) {
        ModelState copy = s;
        copy[order[t].first] = 0;
        copy[order[t].second] = 0;
        ++copy[2 + t];
        next.push_back(copy);
      }
    }
    return next;
  }
  bool CheckInvariants(const ModelState&, std::string*) const override { return true; }
  bool IsFinal(const ModelState& s) const override { return s[2] == 3 && s[3] == 3; }
};

TEST(ModelCheckerTest, DetectsDeadlock) {
  AbbaModel model;
  ModelCheckResult result = ModelChecker::Run(model);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.deadlock_state.empty());
}

// ---------------------------------------------------------------------------
// Runtime well-formedness checker (Figure 12) against real address spaces.
// ---------------------------------------------------------------------------

class WfCheckerTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(WfCheckerTest, CleanAfterMixedOperations) {
  AddrSpace::Options options;
  options.protocol = GetParam();
  CortenVm mm(options);

  Result<Vaddr> a = mm.MmapAnon(64 * kPageSize, Perm::RW());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(MmuSim::TouchRange(mm, *a, 32 * kPageSize, true).ok());
  ASSERT_TRUE(mm.Mprotect(*a, 8 * kPageSize, Perm::R()).ok());
  ASSERT_TRUE(mm.Munmap(*a + 16 * kPageSize, 16 * kPageSize).ok());

  // A large mapping that lands a mark on an upper-level slot.
  Result<Vaddr> b = mm.MmapAnon(4ull << 20, Perm::RW());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(MmuSim::Write(mm, *b + (2ull << 20), 5).ok());

  WfReport report = CheckWellFormed(mm.vm().addr_space());
  EXPECT_TRUE(report.ok) << report.first_error;
  EXPECT_GT(report.pt_pages, 0u);
  EXPECT_GT(report.present_leaves, 0u);
  EXPECT_GT(report.meta_marks, 0u);
}

TEST_P(WfCheckerTest, CleanAfterForkAndCow) {
  AddrSpace::Options options;
  options.protocol = GetParam();
  CortenVm mm(options);
  Result<Vaddr> va = mm.MmapAnon(16 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::TouchRange(mm, *va, 16 * kPageSize, true).ok());
  std::unique_ptr<VmSpace> child = mm.vm().Fork();
  WfReport parent_report = CheckWellFormed(mm.vm().addr_space());
  EXPECT_TRUE(parent_report.ok) << parent_report.first_error;
  WfReport child_report = CheckWellFormed(child->addr_space());
  EXPECT_TRUE(child_report.ok) << child_report.first_error;
}

INSTANTIATE_TEST_SUITE_P(BothProtocols, WfCheckerTest,
                         ::testing::Values(Protocol::kRw, Protocol::kAdv),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return info.param == Protocol::kRw ? "rw" : "adv";
                         });

}  // namespace
}  // namespace cortenmm
