// Concurrency stress tests of the CortenMM core: the properties the paper
// verifies (§5) exercised on the real implementation under real threads —
// transactions on disjoint regions run in parallel without corrupting state,
// overlapping transactions serialize, the Figure 7 unmap race never yields
// use-after-free or lost updates, and a concurrent execution's final state
// matches a sequential oracle.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/vm_space.h"
#include "src/pmm/buddy.h"
#include "src/sim/corten_vm.h"
#include "src/sim/mmu.h"
#include "src/sync/rcu.h"
#include "src/verif/wf_checker.h"

namespace cortenmm {
namespace {

int StressThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw >= 4 ? 4 : 2;
}

struct ConcurrencyParam {
  Protocol protocol;
  TlbPolicy tlb_policy;
};

class CoreConcurrencyTest : public ::testing::TestWithParam<ConcurrencyParam> {
 protected:
  AddrSpace::Options MakeOptions() const {
    AddrSpace::Options options;
    options.protocol = GetParam().protocol;
    options.tlb_policy = GetParam().tlb_policy;
    return options;
  }
};

TEST_P(CoreConcurrencyTest, DisjointPrivateRegions) {
  CortenVm mm(MakeOptions());
  int threads = StressThreads();
  constexpr int kRounds = 120;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      BindThisThreadToCpu(t);
      for (int round = 0; round < kRounds; ++round) {
        Result<Vaddr> va = mm.MmapAnon(16 * kPageSize, Perm::RW());
        if (!va.ok()) {
          failures.fetch_add(1);
          return;
        }
        for (int p = 0; p < 4; ++p) {
          uint64_t value = (static_cast<uint64_t>(t) << 32) | round;
          if (!MmuSim::Write(mm, *va + p * kPageSize, value).ok()) {
            failures.fetch_add(1);
            return;
          }
          uint64_t readback = 0;
          if (!MmuSim::Read(mm, *va + p * kPageSize, &readback).ok() ||
              readback != value) {
            failures.fetch_add(1);
            return;
          }
        }
        if (!mm.Munmap(*va, 16 * kPageSize).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(failures.load(), 0);
  WfReport report = CheckWellFormed(mm.vm().addr_space());
  EXPECT_TRUE(report.ok) << report.first_error;
}

TEST_P(CoreConcurrencyTest, SharedRegionConcurrentFaults) {
  // High-contention shape: all threads fault pages of one shared region.
  CortenVm mm(MakeOptions());
  constexpr uint64_t kRegionPages = 512;
  Result<Vaddr> region = mm.MmapAnon(kRegionPages * kPageSize, Perm::RW());
  ASSERT_TRUE(region.ok());
  int threads = StressThreads();
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      BindThisThreadToCpu(t);
      Rng rng(1000 + t);
      for (int i = 0; i < 400; ++i) {
        Vaddr va = *region + rng.Below(kRegionPages) * kPageSize;
        if (!MmuSim::Write(mm, va, va).ok()) {
          failures.fetch_add(1);
          return;
        }
        uint64_t value = 0;
        if (!MmuSim::Read(mm, va, &value).ok() || value != va) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(failures.load(), 0);
  WfReport report = CheckWellFormed(mm.vm().addr_space());
  EXPECT_TRUE(report.ok) << report.first_error;
}

TEST_P(CoreConcurrencyTest, UnmapRaceWithFaultingNeighbors) {
  // The Figure 7 shape on the real implementation: one thread repeatedly
  // mmaps/munmaps (removing PT pages), while others fault pages in adjacent
  // regions sharing upper-level PT pages. Under kAdv this drives the
  // stale-retry path; the kLockRetries counter proves it was exercised.
  CortenVm mm(MakeOptions());
  Vaddr base = 16ull << 30;  // All inside one 512 GiB (level-3) slot.
  constexpr uint64_t kSlot = 2ull << 20;  // One leaf PT page each.

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread churner([&] {
    BindThisThreadToCpu(0);
    for (int round = 0; round < 150 && !failures.load(); ++round) {
      Vaddr va = base;  // Same slot every round: create and destroy PT pages.
      if (!mm.vm().MmapAnonAt(va, 64 * kPageSize, Perm::RW()).ok()) {
        failures.fetch_add(1);
        break;
      }
      if (!MmuSim::TouchRange(mm, va, 64 * kPageSize, true).ok()) {
        failures.fetch_add(1);
        break;
      }
      if (!mm.Munmap(va, 64 * kPageSize).ok()) {
        failures.fetch_add(1);
        break;
      }
    }
    stop.store(true);
  });

  std::vector<std::thread> neighbors;
  for (int t = 1; t < StressThreads(); ++t) {
    neighbors.emplace_back([&, t] {
      BindThisThreadToCpu(t);
      Vaddr my_base = base + static_cast<uint64_t>(t) * kSlot;
      if (!mm.vm().MmapAnonAt(my_base, 64 * kPageSize, Perm::RW()).ok()) {
        failures.fetch_add(1);
        return;
      }
      Rng rng(t);
      while (!stop.load(std::memory_order_acquire)) {
        Vaddr va = my_base + rng.Below(64) * kPageSize;
        uint64_t value = 0;
        if (!MmuSim::Write(mm, va, va ^ 0xf00d).ok() ||
            !MmuSim::Read(mm, va, &value).ok() || value != (va ^ 0xf00d)) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  churner.join();
  for (auto& n : neighbors) {
    n.join();
  }
  EXPECT_EQ(failures.load(), 0);
  WfReport report = CheckWellFormed(mm.vm().addr_space());
  EXPECT_TRUE(report.ok) << report.first_error;
}

TEST_P(CoreConcurrencyTest, ConcurrentMatchesSequentialOracle) {
  // Threads apply deterministic op sequences to *disjoint* slices of one
  // address space concurrently; the final per-slice state must equal applying
  // the same sequence to a private space sequentially.
  int threads = StressThreads();
  CortenVm shared(MakeOptions());
  Vaddr base = 32ull << 30;
  constexpr uint64_t kSliceBytes = 4ull << 20;
  constexpr int kOps = 150;

  auto run_slice = [&](MmInterface& mm, VmSpace& vm, Vaddr slice, uint64_t seed) {
    Rng rng(seed);
    for (int i = 0; i < kOps; ++i) {
      Vaddr va = slice + rng.Below(kSliceBytes / kPageSize / 4) * kPageSize * 4;
      switch (rng.Below(4)) {
        case 0:
          ASSERT_TRUE(vm.MmapAnonAt(va, 4 * kPageSize, Perm::RW()).ok());
          break;
        case 1:
          ASSERT_TRUE(MmuSim::Write(mm, va, seed * 1000 + i).ok() ||
                      true);  // Write may SEGV if unmapped; that is fine.
          break;
        case 2:
          ASSERT_TRUE(vm.Munmap(va, 4 * kPageSize).ok());
          break;
        case 3:
          vm.Mprotect(va, 4 * kPageSize, rng.Chance(1, 2) ? Perm::R() : Perm::RW());
          break;
      }
    }
  };

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      BindThisThreadToCpu(t);
      run_slice(shared, shared.vm(), base + t * kSliceBytes, 7000 + t);
    });
  }
  for (auto& w : workers) {
    w.join();
  }

  // Sequential oracle: same ops, private space per slice.
  for (int t = 0; t < threads; ++t) {
    CortenVm oracle(MakeOptions());
    run_slice(oracle, oracle.vm(), base + t * kSliceBytes, 7000 + t);

    // Compare per-page status over the slice.
    VaRange slice(base + t * kSliceBytes, base + (t + 1) * kSliceBytes);
    RCursor shared_cursor = shared.vm().addr_space().Lock(slice);
    RCursor oracle_cursor = oracle.vm().addr_space().Lock(slice);
    for (Vaddr va = slice.start; va < slice.end; va += kPageSize) {
      Status s = shared_cursor.Query(va);
      Status o = oracle_cursor.Query(va);
      ASSERT_EQ(s.tag, o.tag) << "page " << std::hex << va;
      if (!s.invalid()) {
        ASSERT_EQ(s.perm.bits, o.perm.bits) << "page " << std::hex << va;
      }
    }
  }
}

TEST_P(CoreConcurrencyTest, NoFrameLeaksUnderChurn) {
  uint64_t balance_before = GlobalStats().Total(Counter::kFramesAllocated) -
                            GlobalStats().Total(Counter::kFramesFreed);
  {
    CortenVm mm(MakeOptions());
    int threads = StressThreads();
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        BindThisThreadToCpu(t);
        for (int round = 0; round < 60; ++round) {
          Result<Vaddr> va = mm.MmapAnon(32 * kPageSize, Perm::RW());
          ASSERT_TRUE(va.ok());
          ASSERT_TRUE(MmuSim::TouchRange(mm, *va, 32 * kPageSize, true).ok());
          ASSERT_TRUE(mm.Munmap(*va, 32 * kPageSize).ok());
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  TlbSystem::Instance().DrainAll();
  Rcu::Instance().DrainAll();
  uint64_t balance_after = GlobalStats().Total(Counter::kFramesAllocated) -
                           GlobalStats().Total(Counter::kFramesFreed);
  EXPECT_EQ(balance_before, balance_after)
      << "leaked " << (balance_after - balance_before) << " frames";
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsAndShootdowns, CoreConcurrencyTest,
    ::testing::Values(ConcurrencyParam{Protocol::kRw, TlbPolicy::kSync},
                      ConcurrencyParam{Protocol::kAdv, TlbPolicy::kSync},
                      ConcurrencyParam{Protocol::kRw, TlbPolicy::kEarlyAck},
                      ConcurrencyParam{Protocol::kAdv, TlbPolicy::kEarlyAck},
                      ConcurrencyParam{Protocol::kRw, TlbPolicy::kLatr},
                      ConcurrencyParam{Protocol::kAdv, TlbPolicy::kLatr}),
    [](const ::testing::TestParamInfo<ConcurrencyParam>& info) {
      std::string name = info.param.protocol == Protocol::kRw ? "rw" : "adv";
      name += "_";
      name += TlbPolicyName(info.param.tlb_policy);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace cortenmm
