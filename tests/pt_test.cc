// Tests for the page-table substrate: bit-exact PTE codecs for both ISAs,
// walks, enumeration, huge leaves, and the index arithmetic everything else
// rests on.
#include <gtest/gtest.h>

#include "src/pmm/buddy.h"
#include "src/pt/page_table.h"

namespace cortenmm {
namespace {

// ---------------------------------------------------------------------------
// Index arithmetic
// ---------------------------------------------------------------------------

TEST(PtIndexTest, SpansAndIndices) {
  EXPECT_EQ(PtEntrySpan(1), 4096u);
  EXPECT_EQ(PtEntrySpan(2), 2ull << 20);   // 2 MiB
  EXPECT_EQ(PtEntrySpan(3), 1ull << 30);   // 1 GiB
  EXPECT_EQ(PtEntrySpan(4), 512ull << 30); // 512 GiB
  EXPECT_EQ(PtPageSpan(1), 2ull << 20);
  EXPECT_EQ(PtPageSpan(4), kVaLimit);

  Vaddr va = (3ull << 39) | (5ull << 30) | (7ull << 21) | (9ull << 12) | 0x123;
  EXPECT_EQ(PtIndex(va, 4), 3u);
  EXPECT_EQ(PtIndex(va, 3), 5u);
  EXPECT_EQ(PtIndex(va, 2), 7u);
  EXPECT_EQ(PtIndex(va, 1), 9u);
}

// ---------------------------------------------------------------------------
// x86-64 codec: bit-exact against the SDM layout.
// ---------------------------------------------------------------------------

TEST(X86PteTest, LeafEncoding) {
  Pte pte = MakeLeafPte(Arch::kX86_64, 0x1234, Perm::RW(), 1);
  // P | RW | US, frame address at bits 12..51, NX (no exec in RW()).
  EXPECT_EQ(pte.raw & 0x1u, 1u);                       // P
  EXPECT_EQ(pte.raw & 0x2u, 2u);                       // RW
  EXPECT_EQ(pte.raw & 0x4u, 4u);                       // US
  EXPECT_EQ((pte.raw >> 12) & 0xfffffffffull, 0x1234u);  // Address.
  EXPECT_EQ(pte.raw >> 63, 1u);                        // NX set (not executable).
  EXPECT_TRUE(PteIsPresent(Arch::kX86_64, pte));
  EXPECT_TRUE(PteIsLeaf(Arch::kX86_64, pte, 1));
  EXPECT_EQ(PtePfn(Arch::kX86_64, pte), 0x1234u);
  Perm perm = PtePerm(Arch::kX86_64, pte);
  EXPECT_TRUE(perm.read());
  EXPECT_TRUE(perm.write());
  EXPECT_FALSE(perm.exec());
  EXPECT_TRUE(perm.user());
}

TEST(X86PteTest, HugeBitMarksLevel2Leaf) {
  Pte huge = MakeLeafPte(Arch::kX86_64, 0x200, Perm::RW(), 2);
  EXPECT_EQ((huge.raw >> 7) & 1u, 1u);  // PS bit.
  EXPECT_TRUE(PteIsLeaf(Arch::kX86_64, huge, 2));
  Pte table = MakeTablePte(Arch::kX86_64, 0x200);
  EXPECT_FALSE(PteIsLeaf(Arch::kX86_64, table, 2));
  EXPECT_TRUE(PteIsLeaf(Arch::kX86_64, table, 1));  // Level 1 is always leaf.
}

TEST(X86PteTest, CowSoftBit) {
  Pte pte = MakeLeafPte(Arch::kX86_64, 1, Perm::R().With(Perm::kCow), 1);
  EXPECT_EQ((pte.raw >> 9) & 1u, 1u);  // Software bit 9.
  EXPECT_TRUE(PtePerm(Arch::kX86_64, pte).cow());
  EXPECT_FALSE(PtePerm(Arch::kX86_64, pte).write());
}

TEST(X86PteTest, AccessDirtyBits) {
  Pte pte = MakeLeafPte(Arch::kX86_64, 1, Perm::RW(), 1);
  EXPECT_FALSE(PteAccessed(Arch::kX86_64, pte));
  Pte read_touched = PteWithAccessDirty(Arch::kX86_64, pte, /*write=*/false);
  EXPECT_TRUE(PteAccessed(Arch::kX86_64, read_touched));
  EXPECT_FALSE(PteDirty(Arch::kX86_64, read_touched));
  Pte write_touched = PteWithAccessDirty(Arch::kX86_64, pte, /*write=*/true);
  EXPECT_TRUE(PteDirty(Arch::kX86_64, write_touched));
  EXPECT_EQ((write_touched.raw >> 5) & 1u, 1u);  // A bit position.
  EXPECT_EQ((write_touched.raw >> 6) & 1u, 1u);  // D bit position.
}

// ---------------------------------------------------------------------------
// RISC-V Sv48 codec
// ---------------------------------------------------------------------------

TEST(RiscvPteTest, LeafEncoding) {
  Pte pte = MakeLeafPte(Arch::kRiscvSv48, 0x1234, Perm::RW(), 1);
  EXPECT_EQ(pte.raw & 0x1u, 1u);               // V
  EXPECT_EQ((pte.raw >> 1) & 1u, 1u);          // R
  EXPECT_EQ((pte.raw >> 2) & 1u, 1u);          // W
  EXPECT_EQ((pte.raw >> 3) & 1u, 0u);          // X clear
  EXPECT_EQ((pte.raw >> 4) & 1u, 1u);          // U
  EXPECT_EQ((pte.raw >> 10) & 0xfffffffffffull, 0x1234u);  // PPN.
  EXPECT_TRUE(PteIsLeaf(Arch::kRiscvSv48, pte, 3));  // RWX set => leaf at any level.
  EXPECT_EQ(PtePfn(Arch::kRiscvSv48, pte), 0x1234u);
}

TEST(RiscvPteTest, TablePointerHasNoRwx) {
  Pte table = MakeTablePte(Arch::kRiscvSv48, 0x42);
  EXPECT_TRUE(PteIsPresent(Arch::kRiscvSv48, table));
  EXPECT_FALSE(PteIsLeaf(Arch::kRiscvSv48, table, 2));
  EXPECT_EQ(PtePfn(Arch::kRiscvSv48, table), 0x42u);
  EXPECT_EQ(table.raw & 0xeu, 0u);  // R/W/X all clear.
}

TEST(RiscvPteTest, RswCowBit) {
  Pte pte = MakeLeafPte(Arch::kRiscvSv48, 1, Perm::R().With(Perm::kCow), 1);
  EXPECT_EQ((pte.raw >> 8) & 1u, 1u);  // RSW bit 0.
  EXPECT_TRUE(PtePerm(Arch::kRiscvSv48, pte).cow());
}

TEST(RiscvPteTest, ReadPermIsExplicit) {
  // Unlike x86, RISC-V pages can be present but unreadable... our Perm::R()
  // always sets read; verify a write-only-ish encoding round-trips exactly.
  Perm wo(Perm::kWrite | Perm::kUser);
  Pte pte = MakeLeafPte(Arch::kRiscvSv48, 1, wo, 1);
  Perm decoded = PtePerm(Arch::kRiscvSv48, pte);
  EXPECT_FALSE(decoded.read());
  EXPECT_TRUE(decoded.write());
}

// ---------------------------------------------------------------------------
// PageTable structure
// ---------------------------------------------------------------------------

class PageTableTest : public ::testing::TestWithParam<Arch> {};

TEST_P(PageTableTest, WalkAfterManualInsert) {
  PageTable pt(GetParam());
  Vaddr va = 0x7f12345000ull;
  // Build the path by hand.
  Pfn page = pt.root();
  for (int level = kPtLevels; level > 1; --level) {
    Result<Pfn> child = pt.AllocPtPage(level - 1);
    ASSERT_TRUE(child.ok());
    pt.StoreEntry(page, PtIndex(va, level), MakeTablePte(GetParam(), *child));
    page = *child;
  }
  pt.StoreEntry(page, PtIndex(va, 1), MakeLeafPte(GetParam(), 0xabc, Perm::RW(), 1));

  PageTable::WalkResult hit = pt.Walk(va);
  EXPECT_TRUE(hit.present);
  EXPECT_EQ(hit.level, 1);
  EXPECT_EQ(PtePfn(GetParam(), hit.pte), 0xabcu);

  PageTable::WalkResult miss = pt.Walk(va + PtEntrySpan(2));
  EXPECT_FALSE(miss.present);
}

TEST_P(PageTableTest, ForEachLeafVisitsRangeOnly) {
  PageTable pt(GetParam());
  // Map three leaves: two inside the query range, one outside.
  auto map_at = [&](Vaddr va, Pfn pfn) {
    Pfn page = pt.root();
    for (int level = kPtLevels; level > 1; --level) {
      Pte pte = pt.LoadEntry(page, PtIndex(va, level));
      if (!PteIsPresent(GetParam(), pte)) {
        Result<Pfn> child = pt.AllocPtPage(level - 1);
        ASSERT_TRUE(child.ok());
        pt.StoreEntry(page, PtIndex(va, level), MakeTablePte(GetParam(), *child));
        pte = pt.LoadEntry(page, PtIndex(va, level));
      }
      page = PtePfn(GetParam(), pte);
    }
    pt.StoreEntry(page, PtIndex(va, 1), MakeLeafPte(GetParam(), pfn, Perm::RW(), 1));
  };
  map_at(0x10000000, 1);
  map_at(0x10001000, 2);
  map_at(0x10005000, 3);

  std::vector<Vaddr> seen;
  pt.ForEachLeaf(VaRange(0x10000000, 0x10002000),
                 [&seen](Vaddr va, Pte, int) { seen.push_back(va); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 0x10000000u);
  EXPECT_EQ(seen[1], 0x10001000u);
}

TEST_P(PageTableTest, CountPtPages) {
  PageTable pt(GetParam());
  EXPECT_EQ(pt.CountPtPages(), 1u);  // Root only.
  Result<Pfn> child = pt.AllocPtPage(kPtLevels - 1);
  ASSERT_TRUE(child.ok());
  pt.StoreEntry(pt.root(), 0, MakeTablePte(GetParam(), *child));
  EXPECT_EQ(pt.CountPtPages(), 2u);
}

TEST_P(PageTableTest, CasEntryDetectsRaces) {
  PageTable pt(GetParam());
  Pte original = pt.LoadEntry(pt.root(), 5);
  Pte desired = MakeTablePte(GetParam(), 0x77);
  EXPECT_TRUE(pt.CasEntry(pt.root(), 5, original, desired));
  // Second CAS with the stale expected value must fail.
  EXPECT_FALSE(pt.CasEntry(pt.root(), 5, original, kNullPte));
  EXPECT_EQ(pt.LoadEntry(pt.root(), 5), desired);
}

INSTANTIATE_TEST_SUITE_P(BothArchs, PageTableTest,
                         ::testing::Values(Arch::kX86_64, Arch::kRiscvSv48),
                         [](const ::testing::TestParamInfo<Arch>& info) {
                           return info.param == Arch::kX86_64 ? "x86" : "riscv";
                         });

}  // namespace
}  // namespace cortenmm
