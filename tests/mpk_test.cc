// Intel MPK (protection keys) tests — the Table 5 "Intel MPK" porting row
// exercised end-to-end: pkey_mprotect tags pages, the per-space PKRU gates
// access in the simulated MMU, and updating PKRU flips permissions without
// touching a single PTE (the whole point of MPK).
#include <gtest/gtest.h>

#include "src/core/vm_space.h"
#include "src/pt/pte.h"
#include "src/sim/corten_vm.h"
#include "src/sim/mmu.h"

namespace cortenmm {
namespace {

AddrSpace::Options X86Adv() {
  AddrSpace::Options options;
  options.protocol = Protocol::kAdv;
  options.arch = Arch::kX86_64;
  return options;
}

TEST(MpkCodecTest, KeyBitsRoundTripInBits59To62) {
  Pte pte = MakeLeafPte(Arch::kX86_64, 0x123, Perm::RW(), 1);
  EXPECT_EQ(PtePkey(Arch::kX86_64, pte), 0);
  Pte tagged = PteWithPkey(Arch::kX86_64, pte, 11);
  EXPECT_EQ(PtePkey(Arch::kX86_64, tagged), 11);
  EXPECT_EQ((tagged.raw >> 59) & 0xf, 11u);  // SDM: bits 62:59.
  // Key bits do not disturb the rest of the entry.
  EXPECT_EQ(PtePfn(Arch::kX86_64, tagged), 0x123u);
  EXPECT_TRUE(PtePerm(Arch::kX86_64, tagged).write());
  // Re-tagging replaces the key.
  EXPECT_EQ(PtePkey(Arch::kX86_64, PteWithPkey(Arch::kX86_64, tagged, 3)), 3);
}

TEST(MpkCodecTest, RiscvHasNoKeys) {
  Pte pte = MakeLeafPte(Arch::kRiscvSv48, 1, Perm::RW(), 1);
  EXPECT_EQ(PtePkey(Arch::kRiscvSv48, PteWithPkey(Arch::kRiscvSv48, pte, 5)), 0);
}

TEST(MpkTest, AccessDisableBlocksReadsAndWrites) {
  CortenVm mm(X86Adv());
  Result<Vaddr> va = mm.MmapAnon(4 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::TouchRange(mm, *va, 4 * kPageSize, true).ok());
  ASSERT_TRUE(mm.PkeyMprotect(*va, 4 * kPageSize, 5).ok());

  // Key 5 access-disabled: both reads and writes fault.
  mm.vm().addr_space().set_pkru(AddrSpace::PkruAccessDisable(5));
  uint64_t value;
  EXPECT_EQ(MmuSim::Read(mm, *va, &value).error(), ErrCode::kFault);
  EXPECT_EQ(MmuSim::Write(mm, *va, 1).error(), ErrCode::kFault);

  // Flip PKRU back: access restored with zero page-table changes.
  mm.vm().addr_space().set_pkru(0);
  EXPECT_TRUE(MmuSim::Read(mm, *va, &value).ok());
}

TEST(MpkTest, WriteDisableAllowsReads) {
  CortenVm mm(X86Adv());
  Result<Vaddr> va = mm.MmapAnon(kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::Write(mm, *va, 77).ok());
  ASSERT_TRUE(mm.PkeyMprotect(*va, kPageSize, 2).ok());

  mm.vm().addr_space().set_pkru(AddrSpace::PkruWriteDisable(2));
  uint64_t value = 0;
  EXPECT_TRUE(MmuSim::Read(mm, *va, &value).ok());
  EXPECT_EQ(value, 77u);
  EXPECT_EQ(MmuSim::Write(mm, *va, 1).error(), ErrCode::kFault);
}

TEST(MpkTest, KeysAreIndependent) {
  CortenVm mm(X86Adv());
  Result<Vaddr> a = mm.MmapAnon(kPageSize, Perm::RW());
  Result<Vaddr> b = mm.MmapAnon(kPageSize, Perm::RW());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(MmuSim::Write(mm, *a, 1).ok());
  ASSERT_TRUE(MmuSim::Write(mm, *b, 2).ok());
  ASSERT_TRUE(mm.PkeyMprotect(*a, kPageSize, 1).ok());
  ASSERT_TRUE(mm.PkeyMprotect(*b, kPageSize, 2).ok());

  mm.vm().addr_space().set_pkru(AddrSpace::PkruAccessDisable(1));
  uint64_t value;
  EXPECT_EQ(MmuSim::Read(mm, *a, &value).error(), ErrCode::kFault);
  EXPECT_TRUE(MmuSim::Read(mm, *b, &value).ok());  // Key 2 unaffected.
}

TEST(MpkTest, RejectsBadArgs) {
  CortenVm mm(X86Adv());
  Result<Vaddr> va = mm.MmapAnon(kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(mm.PkeyMprotect(*va, kPageSize, 16).error(), ErrCode::kInval);
  EXPECT_EQ(mm.PkeyMprotect(*va, kPageSize, -1).error(), ErrCode::kInval);

  AddrSpace::Options riscv = X86Adv();
  riscv.arch = Arch::kRiscvSv48;
  CortenVm rv(riscv);
  Result<Vaddr> rva = rv.MmapAnon(kPageSize, Perm::RW());
  ASSERT_TRUE(rva.ok());
  EXPECT_EQ(rv.PkeyMprotect(*rva, kPageSize, 1).error(), ErrCode::kInval);
}

}  // namespace
}  // namespace cortenmm
