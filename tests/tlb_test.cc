// Tests for the TLB substrate: lookup/insert/invalidate semantics, ASID
// isolation, huge-page entries, and the three shootdown policies including
// LATR's deferred frame reclamation.
#include <gtest/gtest.h>

#include "src/pmm/buddy.h"
#include "src/pmm/phys_mem.h"
#include "src/pt/pte.h"
#include "src/tlb/shootdown.h"
#include "src/tlb/tlb.h"

namespace cortenmm {
namespace {

uint64_t LeafRaw(Pfn pfn) { return MakeLeafPte(Arch::kX86_64, pfn, Perm::RW(), 1).raw; }

TEST(TlbTest, InsertLookupHit) {
  Tlb tlb;
  tlb.Insert(1, 0x1000, LeafRaw(7), 1);
  auto hit = tlb.Lookup(1, 0x1000);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(PtePfn(Arch::kX86_64, Pte(hit->pte_raw)), 7u);
  EXPECT_FALSE(tlb.Lookup(1, 0x2000).has_value());
}

TEST(TlbTest, AsidIsolation) {
  Tlb tlb;
  tlb.Insert(1, 0x1000, LeafRaw(7), 1);
  EXPECT_FALSE(tlb.Lookup(2, 0x1000).has_value());
  tlb.InvalidateAsid(1);
  EXPECT_FALSE(tlb.Lookup(1, 0x1000).has_value());
}

TEST(TlbTest, RangeInvalidation) {
  Tlb tlb;
  for (int i = 0; i < 8; ++i) {
    tlb.Insert(1, 0x10000 + i * kPageSize, LeafRaw(i + 1), 1);
  }
  tlb.InvalidateRange(1, VaRange(0x10000 + 2 * kPageSize, 0x10000 + 5 * kPageSize));
  for (int i = 0; i < 8; ++i) {
    bool expect_hit = i < 2 || i >= 5;
    EXPECT_EQ(tlb.Lookup(1, 0x10000 + i * kPageSize).has_value(), expect_hit) << i;
  }
}

TEST(TlbTest, HugePageEntryCoversWholeSpan) {
  Tlb tlb;
  Vaddr base = 4ull << 20;  // 2 MiB aligned.
  tlb.Insert(1, base, MakeLeafPte(Arch::kX86_64, 0x200, Perm::RW(), 2).raw, 2);
  auto hit = tlb.Lookup(1, base + 123 * kPageSize);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->level, 2);
  // A range invalidation intersecting the huge span kills it.
  tlb.InvalidateRange(1, VaRange(base + (1ull << 20), base + (1ull << 20) + kPageSize));
  EXPECT_FALSE(tlb.Lookup(1, base).has_value());
}

TEST(TlbTest, ReplacementEvictsLru) {
  Tlb tlb;
  // Fill one set: addresses mapping to the same set differ by kSets pages.
  Vaddr stride = Tlb::kSets * kPageSize;
  for (int i = 0; i < Tlb::kWays; ++i) {
    tlb.Insert(1, i * stride, LeafRaw(i + 1), 1);
  }
  tlb.Lookup(1, 0);  // Touch way 0 so it is most recent.
  tlb.Insert(1, Tlb::kWays * stride, LeafRaw(99), 1);  // Forces an eviction.
  EXPECT_TRUE(tlb.Lookup(1, 0).has_value());  // Recently-used entry survives.
  int present = 0;
  for (int i = 0; i <= Tlb::kWays; ++i) {
    if (tlb.Lookup(1, i * stride).has_value()) {
      ++present;
    }
  }
  EXPECT_EQ(present, Tlb::kWays);
}

// ---------------------------------------------------------------------------
// Shootdown policies
// ---------------------------------------------------------------------------

class ShootdownTest : public ::testing::Test {
 protected:
  void SeedTlbs(Asid asid, Vaddr va, const std::vector<CpuId>& cpus) {
    for (CpuId cpu : cpus) {
      TlbSystem::Instance().CpuTlb(cpu).Insert(asid, va, LeafRaw(5), 1);
      mask_.Set(cpu);
    }
  }
  CpuMask mask_;
};

TEST_F(ShootdownTest, SyncInvalidatesAllTargets) {
  Asid asid = 900;
  Vaddr va = 0x40000000;
  SeedTlbs(asid, va, {2, 3, 4});
  TlbSystem::Instance().Shootdown(asid, VaRange(va, va + kPageSize), mask_,
                                  TlbPolicy::kSync, {}, nullptr);
  for (CpuId cpu : {2, 3, 4}) {
    EXPECT_FALSE(TlbSystem::Instance().CpuTlb(cpu).Lookup(asid, va).has_value()) << cpu;
  }
}

TEST_F(ShootdownTest, EarlyAckInvalidatesAllTargets) {
  Asid asid = 901;
  Vaddr va = 0x40100000;
  SeedTlbs(asid, va, {2, 3});
  TlbSystem::Instance().Shootdown(asid, VaRange(va, va + kPageSize), mask_,
                                  TlbPolicy::kEarlyAck, {}, nullptr);
  for (CpuId cpu : {2, 3}) {
    EXPECT_FALSE(TlbSystem::Instance().CpuTlb(cpu).Lookup(asid, va).has_value()) << cpu;
  }
}

TEST_F(ShootdownTest, LatrDefersRemoteFlushAndFrameFree) {
  BindThisThreadToCpu(0);
  Asid asid = 902;
  Vaddr va = 0x40200000;
  SeedTlbs(asid, va, {0, 5});

  Result<Pfn> frame = BuddyAllocator::Instance().AllocFrame();
  ASSERT_TRUE(frame.ok());
  static std::atomic<int> freed;
  freed.store(0);
  FrameFreer freer = [](Pfn pfn) {
    freed.fetch_add(1);
    BuddyAllocator::Instance().FreeFrame(pfn);
  };

  TlbSystem::Instance().Shootdown(asid, VaRange(va, va + kPageSize), mask_,
                                  TlbPolicy::kLatr, {*frame}, freer);
  // Local TLB flushed immediately; remote entry still live; frame not freed.
  EXPECT_FALSE(TlbSystem::Instance().CpuTlb(0).Lookup(asid, va).has_value());
  EXPECT_TRUE(TlbSystem::Instance().CpuTlb(5).Lookup(asid, va).has_value());
  EXPECT_EQ(freed.load(), 0);
  EXPECT_GE(TlbSystem::Instance().pending_latr_entries(), 1u);

  // CPU 5 ticks (timer interrupt): it flushes its own TLB, which completes the
  // shootdown and releases the frame.
  TlbSystem::Instance().Tick(5);
  EXPECT_FALSE(TlbSystem::Instance().CpuTlb(5).Lookup(asid, va).has_value());
  EXPECT_EQ(freed.load(), 1);
}

TEST_F(ShootdownTest, LatrLocalOnlyFreesImmediately) {
  BindThisThreadToCpu(0);
  Asid asid = 903;
  Vaddr va = 0x40300000;
  CpuMask self_only;
  self_only.Set(0);
  TlbSystem::Instance().CpuTlb(0).Insert(asid, va, LeafRaw(5), 1);

  Result<Pfn> frame = BuddyAllocator::Instance().AllocFrame();
  ASSERT_TRUE(frame.ok());
  static std::atomic<int> freed;
  freed.store(0);
  FrameFreer freer = [](Pfn pfn) {
    freed.fetch_add(1);
    BuddyAllocator::Instance().FreeFrame(pfn);
  };
  TlbSystem::Instance().Shootdown(asid, VaRange(va, va + kPageSize), self_only,
                                  TlbPolicy::kLatr, {*frame}, freer);
  EXPECT_EQ(freed.load(), 1);  // No remote targets: nothing to defer.
}

}  // namespace
}  // namespace cortenmm
