// Tests for the TLB substrate: lookup/insert/invalidate semantics, ASID
// isolation, huge-page entries, and the three shootdown policies including
// LATR's deferred frame reclamation.
#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/pmm/buddy.h"
#include "src/pmm/phys_mem.h"
#include "src/pt/pte.h"
#include "src/tlb/gather.h"
#include "src/tlb/shootdown.h"
#include "src/tlb/tlb.h"

namespace cortenmm {
namespace {

uint64_t LeafRaw(Pfn pfn) { return MakeLeafPte(Arch::kX86_64, pfn, Perm::RW(), 1).raw; }

TEST(TlbTest, InsertLookupHit) {
  Tlb tlb;
  tlb.Insert(1, 0x1000, LeafRaw(7), 1);
  auto hit = tlb.Lookup(1, 0x1000);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(PtePfn(Arch::kX86_64, Pte(hit->pte_raw)), 7u);
  EXPECT_FALSE(tlb.Lookup(1, 0x2000).has_value());
}

TEST(TlbTest, AsidIsolation) {
  Tlb tlb;
  tlb.Insert(1, 0x1000, LeafRaw(7), 1);
  EXPECT_FALSE(tlb.Lookup(2, 0x1000).has_value());
  tlb.InvalidateAsid(1);
  EXPECT_FALSE(tlb.Lookup(1, 0x1000).has_value());
}

TEST(TlbTest, RangeInvalidation) {
  Tlb tlb;
  for (int i = 0; i < 8; ++i) {
    tlb.Insert(1, 0x10000 + i * kPageSize, LeafRaw(i + 1), 1);
  }
  tlb.InvalidateRange(1, VaRange(0x10000 + 2 * kPageSize, 0x10000 + 5 * kPageSize));
  for (int i = 0; i < 8; ++i) {
    bool expect_hit = i < 2 || i >= 5;
    EXPECT_EQ(tlb.Lookup(1, 0x10000 + i * kPageSize).has_value(), expect_hit) << i;
  }
}

TEST(TlbTest, HugePageEntryCoversWholeSpan) {
  Tlb tlb;
  Vaddr base = 4ull << 20;  // 2 MiB aligned.
  tlb.Insert(1, base, MakeLeafPte(Arch::kX86_64, 0x200, Perm::RW(), 2).raw, 2);
  auto hit = tlb.Lookup(1, base + 123 * kPageSize);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->level, 2);
  // A range invalidation intersecting the huge span kills it.
  tlb.InvalidateRange(1, VaRange(base + (1ull << 20), base + (1ull << 20) + kPageSize));
  EXPECT_FALSE(tlb.Lookup(1, base).has_value());
}

TEST(TlbTest, ReplacementEvictsLru) {
  Tlb tlb;
  // Fill one set: addresses mapping to the same set differ by kSets pages.
  Vaddr stride = Tlb::kSets * kPageSize;
  for (int i = 0; i < Tlb::kWays; ++i) {
    tlb.Insert(1, i * stride, LeafRaw(i + 1), 1);
  }
  tlb.Lookup(1, 0);  // Touch way 0 so it is most recent.
  tlb.Insert(1, Tlb::kWays * stride, LeafRaw(99), 1);  // Forces an eviction.
  EXPECT_TRUE(tlb.Lookup(1, 0).has_value());  // Recently-used entry survives.
  int present = 0;
  for (int i = 0; i <= Tlb::kWays; ++i) {
    if (tlb.Lookup(1, i * stride).has_value()) {
      ++present;
    }
  }
  EXPECT_EQ(present, Tlb::kWays);
}

// ---------------------------------------------------------------------------
// Shootdown policies
// ---------------------------------------------------------------------------

class ShootdownTest : public ::testing::Test {
 protected:
  void SeedTlbs(Asid asid, Vaddr va, const std::vector<CpuId>& cpus) {
    for (CpuId cpu : cpus) {
      TlbSystem::Instance().CpuTlb(cpu).Insert(asid, va, LeafRaw(5), 1);
      mask_.Set(cpu);
    }
  }
  CpuMask mask_;
};

TEST_F(ShootdownTest, SyncInvalidatesAllTargets) {
  Asid asid = 900;
  Vaddr va = 0x40000000;
  SeedTlbs(asid, va, {2, 3, 4});
  TlbSystem::Instance().Shootdown(asid, VaRange(va, va + kPageSize), mask_,
                                  TlbPolicy::kSync, {}, nullptr);
  for (CpuId cpu : {2, 3, 4}) {
    EXPECT_FALSE(TlbSystem::Instance().CpuTlb(cpu).Lookup(asid, va).has_value()) << cpu;
  }
}

TEST_F(ShootdownTest, EarlyAckInvalidatesAllTargets) {
  Asid asid = 901;
  Vaddr va = 0x40100000;
  SeedTlbs(asid, va, {2, 3});
  TlbSystem::Instance().Shootdown(asid, VaRange(va, va + kPageSize), mask_,
                                  TlbPolicy::kEarlyAck, {}, nullptr);
  for (CpuId cpu : {2, 3}) {
    EXPECT_FALSE(TlbSystem::Instance().CpuTlb(cpu).Lookup(asid, va).has_value()) << cpu;
  }
}

TEST_F(ShootdownTest, LatrDefersRemoteFlushAndFrameFree) {
  BindThisThreadToCpu(0);
  Asid asid = 902;
  Vaddr va = 0x40200000;
  SeedTlbs(asid, va, {0, 5});

  Result<Pfn> frame = BuddyAllocator::Instance().AllocFrame();
  ASSERT_TRUE(frame.ok());
  static std::atomic<int> freed;
  freed.store(0);
  RunFreer freer = [](PageRun run) {
    freed.fetch_add(1);
    BuddyAllocator::Instance().FreeFrame(run.pfn);
  };

  TlbSystem::Instance().Shootdown(asid, VaRange(va, va + kPageSize), mask_,
                                  TlbPolicy::kLatr, {PageRun(*frame, 0)}, freer);
  // Local TLB flushed immediately; remote entry still live; frame not freed.
  EXPECT_FALSE(TlbSystem::Instance().CpuTlb(0).Lookup(asid, va).has_value());
  EXPECT_TRUE(TlbSystem::Instance().CpuTlb(5).Lookup(asid, va).has_value());
  EXPECT_EQ(freed.load(), 0);
  EXPECT_GE(TlbSystem::Instance().pending_latr_entries(), 1u);

  // CPU 5 ticks (timer interrupt): it flushes its own TLB, which completes the
  // shootdown and releases the frame.
  TlbSystem::Instance().Tick(5);
  EXPECT_FALSE(TlbSystem::Instance().CpuTlb(5).Lookup(asid, va).has_value());
  EXPECT_EQ(freed.load(), 1);
}

TEST_F(ShootdownTest, LatrLocalOnlyFreesImmediately) {
  BindThisThreadToCpu(0);
  Asid asid = 903;
  Vaddr va = 0x40300000;
  CpuMask self_only;
  self_only.Set(0);
  TlbSystem::Instance().CpuTlb(0).Insert(asid, va, LeafRaw(5), 1);

  Result<Pfn> frame = BuddyAllocator::Instance().AllocFrame();
  ASSERT_TRUE(frame.ok());
  static std::atomic<int> freed;
  freed.store(0);
  RunFreer freer = [](PageRun run) {
    freed.fetch_add(1);
    BuddyAllocator::Instance().FreeFrame(run.pfn);
  };
  TlbSystem::Instance().Shootdown(asid, VaRange(va, va + kPageSize), self_only,
                                  TlbPolicy::kLatr, {PageRun(*frame, 0)}, freer);
  EXPECT_EQ(freed.load(), 1);  // No remote targets: nothing to defer.
}

// ---------------------------------------------------------------------------
// TlbGather: coalescing, fallback, batched submission
// ---------------------------------------------------------------------------

// Counters are process-global and cumulative across tests, so every assertion
// below is on a before/after delta.
uint64_t CounterNow(Counter c) { return GlobalStats().Total(c); }

TEST(TlbGatherTest, AdjacentRangesMerge) {
  TlbGather gather;
  Vaddr base = 0x50000000;
  uint64_t coalesced = CounterNow(Counter::kTlbRangesCoalesced);
  gather.AddRange(VaRange(base, base + kPageSize));
  gather.AddRange(VaRange(base + kPageSize, base + 2 * kPageSize));
  ASSERT_EQ(gather.range_count(), 1u);
  EXPECT_EQ(gather.ranges()[0], VaRange(base, base + 2 * kPageSize));
  EXPECT_EQ(CounterNow(Counter::kTlbRangesCoalesced) - coalesced, 1u);
}

TEST(TlbGatherTest, OverlappingRangesMerge) {
  TlbGather gather;
  Vaddr base = 0x50100000;
  gather.AddRange(VaRange(base, base + 3 * kPageSize));
  gather.AddRange(VaRange(base + kPageSize, base + 5 * kPageSize));
  ASSERT_EQ(gather.range_count(), 1u);
  EXPECT_EQ(gather.ranges()[0], VaRange(base, base + 5 * kPageSize));
}

TEST(TlbGatherTest, BridgingRangeAbsorbsBothNeighbors) {
  TlbGather gather;
  Vaddr base = 0x50200000;
  gather.AddRange(VaRange(base, base + kPageSize));
  gather.AddRange(VaRange(base + 2 * kPageSize, base + 3 * kPageSize));
  ASSERT_EQ(gather.range_count(), 2u);
  uint64_t coalesced = CounterNow(Counter::kTlbRangesCoalesced);
  // The middle page abuts both: all three collapse into one range.
  gather.AddRange(VaRange(base + kPageSize, base + 2 * kPageSize));
  ASSERT_EQ(gather.range_count(), 1u);
  EXPECT_EQ(gather.ranges()[0], VaRange(base, base + 3 * kPageSize));
  EXPECT_EQ(CounterNow(Counter::kTlbRangesCoalesced) - coalesced, 2u);
}

TEST(TlbGatherTest, RangesStaySortedAndDisjoint) {
  TlbGather gather;
  Vaddr base = 0x50300000;
  // Out-of-order, disjoint (one guard page between each pair).
  for (int i : {5, 1, 3}) {
    Vaddr va = base + i * 2 * kPageSize;
    gather.AddRange(VaRange(va, va + kPageSize));
  }
  ASSERT_EQ(gather.range_count(), 3u);
  for (size_t i = 1; i < gather.range_count(); ++i) {
    EXPECT_GT(gather.ranges()[i].start, gather.ranges()[i - 1].end);
  }
}

TEST(TlbGatherTest, FallbackTriggersOnlyPastMaxRanges) {
  TlbGather gather;
  Vaddr base = 0x50400000;
  uint64_t fallbacks = CounterNow(Counter::kTlbFullFlushFallbacks);
  uint64_t gathered = CounterNow(Counter::kTlbRangesGathered);
  // Exactly kMaxRanges distinct ranges must stay precise (the ablation's
  // 16-ranges-per-transaction workload depends on this).
  for (size_t i = 0; i < TlbGather::kMaxRanges; ++i) {
    Vaddr va = base + i * 2 * kPageSize;
    gather.AddRange(VaRange(va, va + kPageSize));
  }
  EXPECT_EQ(gather.range_count(), TlbGather::kMaxRanges);
  EXPECT_FALSE(gather.full_flush());
  EXPECT_EQ(CounterNow(Counter::kTlbFullFlushFallbacks) - fallbacks, 0u);
  // One more distinct range tips it into full-ASID mode.
  Vaddr extra = base + 100 * kPageSize;
  gather.AddRange(VaRange(extra, extra + kPageSize));
  EXPECT_TRUE(gather.full_flush());
  EXPECT_EQ(gather.range_count(), 0u);
  EXPECT_FALSE(gather.empty());
  EXPECT_EQ(CounterNow(Counter::kTlbFullFlushFallbacks) - fallbacks, 1u);
  // Later ranges are still counted as gathered but change nothing.
  gather.AddRange(VaRange(base, base + kPageSize));
  EXPECT_TRUE(gather.full_flush());
  EXPECT_EQ(CounterNow(Counter::kTlbRangesGathered) - gathered,
            TlbGather::kMaxRanges + 2);
}

TEST(TlbGatherTest, CoalescedRangesDoNotTriggerFallback) {
  TlbGather gather;
  Vaddr base = 0x50500000;
  // 64 adjacent pages collapse into one range: no fallback however many.
  for (int i = 0; i < 64; ++i) {
    gather.AddRange(VaRange(base + i * kPageSize, base + (i + 1) * kPageSize));
  }
  EXPECT_EQ(gather.range_count(), 1u);
  EXPECT_FALSE(gather.full_flush());
}

class GatherFlushTest : public ShootdownTest {};

TEST_F(GatherFlushTest, EmptyGatherFlushesNothing) {
  TlbGather gather;
  uint64_t shootdowns = CounterNow(Counter::kTlbShootdowns);
  mask_.Set(2);
  gather.Flush(950, mask_, TlbPolicy::kEarlyAck, nullptr);
  EXPECT_EQ(CounterNow(Counter::kTlbShootdowns) - shootdowns, 0u);
}

TEST_F(GatherFlushTest, MultiRangeBatchIsOneShootdownCoveringAllRanges) {
  Asid asid = 951;
  Vaddr base = 0x60000000;
  std::vector<Vaddr> vas = {base, base + 4 * kPageSize, base + 9 * kPageSize};
  Vaddr untouched = base + 6 * kPageSize;  // Between gathered ranges.
  for (Vaddr va : vas) {
    SeedTlbs(asid, va, {2, 3});
  }
  SeedTlbs(asid, untouched, {2, 3});
  TlbGather gather;
  for (Vaddr va : vas) {
    gather.AddRange(VaRange(va, va + kPageSize));
  }
  uint64_t shootdowns = CounterNow(Counter::kTlbShootdowns);
  gather.Flush(asid, mask_, TlbPolicy::kEarlyAck, nullptr);
  EXPECT_EQ(CounterNow(Counter::kTlbShootdowns) - shootdowns, 1u);
  for (CpuId cpu : {2, 3}) {
    for (Vaddr va : vas) {
      EXPECT_FALSE(TlbSystem::Instance().CpuTlb(cpu).Lookup(asid, va).has_value())
          << "cpu " << cpu << " va " << va;
    }
    // Discrete ranges, not a bounding box: the page in between survives.
    EXPECT_TRUE(TlbSystem::Instance().CpuTlb(cpu).Lookup(asid, untouched).has_value())
        << cpu;
  }
  EXPECT_TRUE(gather.empty());  // Flush resets the gather.
}

TEST_F(GatherFlushTest, FullFlushFallbackNukesWholeAsid) {
  Asid asid = 952;
  Vaddr base = 0x61000000;
  SeedTlbs(asid, base + 200 * kPageSize, {2});  // Outside every gathered range.
  TlbGather gather;
  for (size_t i = 0; i <= TlbGather::kMaxRanges; ++i) {
    Vaddr va = base + i * 2 * kPageSize;
    gather.AddRange(VaRange(va, va + kPageSize));
  }
  ASSERT_TRUE(gather.full_flush());
  gather.Flush(asid, mask_, TlbPolicy::kEarlyAck, nullptr);
  EXPECT_FALSE(
      TlbSystem::Instance().CpuTlb(2).Lookup(asid, base + 200 * kPageSize).has_value());
}

TEST_F(GatherFlushTest, FrameOnlyGatherFreesWithoutShootdown) {
  BindThisThreadToCpu(0);
  Result<Pfn> frame = BuddyAllocator::Instance().AllocFrame();
  ASSERT_TRUE(frame.ok());
  static std::atomic<int> freed;
  freed.store(0);
  RunFreer freer = [](PageRun run) {
    freed.fetch_add(1);
    BuddyAllocator::Instance().FreeFrame(run.pfn);
  };
  TlbGather gather;
  gather.AddFrame(*frame);
  mask_.Set(0);
  uint64_t shootdowns = CounterNow(Counter::kTlbShootdowns);
  gather.Flush(953, mask_, TlbPolicy::kSync, freer);
  EXPECT_EQ(CounterNow(Counter::kTlbShootdowns) - shootdowns, 0u);
  EXPECT_EQ(freed.load(), 1);
}

TEST_F(GatherFlushTest, LatrBatchIsOneEntryAndDefersFrames) {
  BindThisThreadToCpu(0);
  Asid asid = 954;
  Vaddr va_a = 0x62000000;
  Vaddr va_b = va_a + 8 * kPageSize;
  SeedTlbs(asid, va_a, {0, 6});
  SeedTlbs(asid, va_b, {0, 6});
  Result<Pfn> frame = BuddyAllocator::Instance().AllocFrame();
  ASSERT_TRUE(frame.ok());
  static std::atomic<int> freed;
  freed.store(0);
  RunFreer freer = [](PageRun run) {
    freed.fetch_add(1);
    BuddyAllocator::Instance().FreeFrame(run.pfn);
  };
  TlbGather gather;
  gather.AddRange(VaRange(va_a, va_a + kPageSize));
  gather.AddRange(VaRange(va_b, va_b + kPageSize));
  gather.AddFrame(*frame);
  uint64_t pending = TlbSystem::Instance().pending_latr_entries();
  gather.Flush(asid, mask_, TlbPolicy::kLatr, freer);
  // One deferred entry for the two-range batch; frame held until the ack.
  EXPECT_EQ(TlbSystem::Instance().pending_latr_entries() - pending, 1u);
  EXPECT_EQ(freed.load(), 0);
  TlbSystem::Instance().Tick(6);
  for (Vaddr va : {va_a, va_b}) {
    EXPECT_FALSE(TlbSystem::Instance().CpuTlb(6).Lookup(asid, va).has_value()) << va;
  }
  EXPECT_EQ(freed.load(), 1);
}

// Regression for the LATR re-flush bug: a target that already acked an entry
// must not invalidate again (or re-count kTlbLazyFlushes) while the entry
// waits for its other targets. Lazy flushes must total exactly
// targets x entries no matter how often the targets tick.
TEST_F(ShootdownTest, LatrLazyFlushesExactlyTargetsTimesEntries) {
  BindThisThreadToCpu(0);
  Asid asid = 955;
  Vaddr va_a = 0x63000000;
  Vaddr va_b = va_a + 16 * kPageSize;
  SeedTlbs(asid, va_a, {6, 7});
  SeedTlbs(asid, va_b, {6, 7});
  uint64_t lazy = GlobalStats().Total(Counter::kTlbLazyFlushes);
  uint64_t pending = TlbSystem::Instance().pending_latr_entries();
  TlbSystem::Instance().Shootdown(asid, VaRange(va_a, va_a + kPageSize), mask_,
                                  TlbPolicy::kLatr, {}, nullptr);
  TlbSystem::Instance().Shootdown(asid, VaRange(va_b, va_b + kPageSize), mask_,
                                  TlbPolicy::kLatr, {}, nullptr);
  // CPU 6 ticks repeatedly while CPU 7 lags: without the acked_mask check it
  // would re-flush both still-pending entries on every tick.
  TlbSystem::Instance().Tick(6);
  TlbSystem::Instance().Tick(6);
  TlbSystem::Instance().Tick(6);
  TlbSystem::Instance().Tick(7);
  // Late ticks after completion change nothing either.
  TlbSystem::Instance().Tick(6);
  TlbSystem::Instance().Tick(7);
  EXPECT_EQ(GlobalStats().Total(Counter::kTlbLazyFlushes) - lazy,
            2u * 2u);  // 2 targets x 2 entries.
  EXPECT_EQ(TlbSystem::Instance().pending_latr_entries(), pending);
}

}  // namespace
}  // namespace cortenmm
