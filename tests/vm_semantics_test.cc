// Advanced memory-semantics tests (paper Table 2): reverse mapping, shared
// anonymous segments across fork, swap block sharing, file write-back
// visibility, huge-page lifecycles, and on-demand paging edge cases.
#include <gtest/gtest.h>

#include <cstring>

#include "src/common/stats.h"
#include "src/core/vm_space.h"
#include "src/pmm/buddy.h"
#include "src/pmm/phys_mem.h"
#include "src/sim/corten_vm.h"
#include "src/sim/mmu.h"

namespace cortenmm {
namespace {

AddrSpace::Options AdvOptions() {
  AddrSpace::Options options;
  options.protocol = Protocol::kAdv;
  return options;
}

// ---------------------------------------------------------------------------
// Reverse mapping
// ---------------------------------------------------------------------------

TEST(ReverseMappingTest, AnonFrameRecordsOwnerSpaceAndVa) {
  CortenVm mm(AdvOptions());
  Result<Vaddr> va = mm.MmapAnon(kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::Write(mm, *va, 5).ok());

  // Find the frame via the page table, then check the descriptor's rmap.
  RCursor cursor = mm.vm().addr_space().Lock(VaRange(*va, *va + kPageSize));
  Status status = cursor.Query(*va);
  ASSERT_TRUE(status.mapped());
  PageDescriptor& desc = PhysMem::Instance().Descriptor(status.pfn);
  SpinGuard guard(desc.rmap_lock);
  EXPECT_EQ(desc.owner, &mm.vm().addr_space());
  EXPECT_EQ(desc.owner_key, *va);
  EXPECT_EQ(desc.type.load(), FrameType::kAnon);
}

TEST(ReverseMappingTest, FilePagesRecordFileAndIndex) {
  SimFile* file = FileRegistry::Instance().CreateFile(4);
  Result<Pfn> page = file->GetPage(2);
  ASSERT_TRUE(page.ok());
  PageDescriptor& desc = PhysMem::Instance().Descriptor(*page);
  SpinGuard guard(desc.rmap_lock);
  EXPECT_EQ(desc.owner, file);
  EXPECT_EQ(desc.owner_key, 2u);
  EXPECT_EQ(desc.type.load(), FrameType::kFileCache);
}

TEST(ReverseMappingTest, FileTracksMappingsForRmapWalks) {
  CortenVm a(AdvOptions());
  CortenVm b(AdvOptions());
  SimFile* file = FileRegistry::Instance().CreateFile(16);
  Result<Vaddr> va_a = a.MmapFilePrivate(file, 0, 16 * kPageSize, Perm::R());
  Result<Vaddr> va_b = b.MmapFilePrivate(file, 4, 8 * kPageSize, Perm::R());
  ASSERT_TRUE(va_a.ok());
  ASSERT_TRUE(va_b.ok());

  // Page 6 is covered by both mappings; page 1 only by the first.
  EXPECT_EQ(file->MappingsOf(6).size(), 2u);
  EXPECT_EQ(file->MappingsOf(1).size(), 1u);
  // The rmap entries identify the exact (space, va) pairs.
  std::vector<FileMapping> hits = file->MappingsOf(6);
  bool saw_a = false;
  bool saw_b = false;
  for (const FileMapping& m : hits) {
    saw_a |= m.space == &a.vm().addr_space();
    saw_b |= m.space == &b.vm().addr_space();
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);

  // Rmap entries go away with the mapping.
  file->RemoveMappings(&a.vm().addr_space(), *va_a);
  EXPECT_EQ(file->MappingsOf(6).size(), 1u);
}

// ---------------------------------------------------------------------------
// Shared anonymous segments
// ---------------------------------------------------------------------------

TEST(SharedAnonTest, SurvivesForkAndStaysCoherent) {
  CortenVm parent(AdvOptions());
  SimFile* segment = FileRegistry::Instance().CreateSharedAnonSegment(4);
  Result<Vaddr> va = parent.MmapShared(segment, 0, 4 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::Write(parent, *va, 111).ok());

  // Fork through the facade: the child is itself a full MmInterface.
  std::unique_ptr<MmInterface> child = parent.Fork();
  ASSERT_NE(child, nullptr);

  // Shared mapping: the child's write must be visible to the parent (no COW).
  ASSERT_TRUE(MmuSim::Write(*child, *va, 222).ok());
  uint64_t value = 0;
  ASSERT_TRUE(MmuSim::Read(parent, *va, &value).ok());
  EXPECT_EQ(value, 222u);
}

TEST(SharedAnonTest, MprotectAfterForkBreaksSharingCorrectly) {
  // Regression: a *read-only* private page shared by fork must still carry
  // the COW mark, or mprotect(RW)+write in one space corrupts the other.
  CortenVm parent(AdvOptions());
  Result<Vaddr> va = parent.MmapAnon(kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::Write(parent, *va, 1234).ok());
  ASSERT_TRUE(parent.Mprotect(*va, kPageSize, Perm::R()).ok());  // Now read-only.

  std::unique_ptr<VmSpace> child_vm = parent.vm().Fork();
  // Child re-enables writes and scribbles; the parent's view must not change.
  ASSERT_TRUE(child_vm->Mprotect(*va, kPageSize, Perm::RW()).ok());
  RCursor cursor = child_vm->addr_space().Lock(VaRange(*va, *va + kPageSize));
  Status status = cursor.Query(*va);
  ASSERT_TRUE(status.mapped());
  EXPECT_TRUE(status.perm.cow()) << "read-only private page lost its COW mark in fork";
}

// ---------------------------------------------------------------------------
// Swap semantics
// ---------------------------------------------------------------------------

TEST(SwapTest, ForkSharesSwapBlocks) {
  CortenVm parent(AdvOptions());
  Result<Vaddr> va = parent.MmapAnon(2 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::Write(parent, *va, 4242).ok());
  ASSERT_TRUE(MmuSim::Write(parent, *va + kPageSize, 4343).ok());
  Result<uint64_t> swapped = parent.SwapOut(*va, 2 * kPageSize);
  ASSERT_TRUE(swapped.ok());
  ASSERT_EQ(*swapped, 2u);

  uint64_t blocks_before = SwapDevice::Instance().blocks_in_use();
  std::unique_ptr<MmInterface> child = parent.Fork();
  ASSERT_NE(child, nullptr);
  // Fork shares the swapped pages via block refcounts: no new blocks.
  EXPECT_EQ(SwapDevice::Instance().blocks_in_use(), blocks_before);

  // Both sides can fault their copy back in independently.
  ASSERT_TRUE(parent.HandleFault(*va, Access::kRead).ok());
  ASSERT_TRUE(child->HandleFault(*va, Access::kRead).ok());
  uint64_t value = 0;
  ASSERT_TRUE(MmuSim::Read(parent, *va, &value).ok());
  EXPECT_EQ(value, 4242u);
}

TEST(SwapTest, MunmapReleasesBlocks) {
  CortenVm mm(AdvOptions());
  Result<Vaddr> va = mm.MmapAnon(4 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::TouchRange(mm, *va, 4 * kPageSize, true).ok());
  ASSERT_TRUE(mm.SwapOut(*va, 4 * kPageSize).ok());
  uint64_t used = SwapDevice::Instance().blocks_in_use();
  ASSERT_TRUE(mm.Munmap(*va, 4 * kPageSize).ok());
  EXPECT_EQ(SwapDevice::Instance().blocks_in_use(), used - 4);
}

TEST(SwapTest, SwapSkipsSharedCowPages) {
  CortenVm parent(AdvOptions());
  Result<Vaddr> va = parent.MmapAnon(kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::Write(parent, *va, 9).ok());
  std::unique_ptr<MmInterface> child = parent.Fork();
  // The page is mapcount 2 (COW-shared): SwapOut must leave it alone.
  Result<uint64_t> swapped = parent.SwapOut(*va, kPageSize);
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(*swapped, 0u);
}

// ---------------------------------------------------------------------------
// File mappings
// ---------------------------------------------------------------------------

TEST(FileMappingTest, SharedFileWritesHitThePageCache) {
  CortenVm mm(AdvOptions());
  SimFile* file = FileRegistry::Instance().CreateFile(4);
  Result<Vaddr> va = mm.MmapShared(file, 0, 4 * kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::Write(mm, *va, 0x5eed).ok());
  ASSERT_TRUE(mm.Msync(*va, 4 * kPageSize).ok());

  // The cache frame *is* the file: a second mapping observes the write.
  CortenVm other(AdvOptions());
  Result<Vaddr> va2 = other.MmapShared(file, 0, 4 * kPageSize, Perm::R());
  ASSERT_TRUE(va2.ok());
  uint64_t value = 0;
  ASSERT_TRUE(MmuSim::Read(other, *va2, &value).ok());
  EXPECT_EQ(value, 0x5eedu);
}

TEST(FileMappingTest, PrivateMapUnaffectedByLaterCacheWrites) {
  CortenVm reader(AdvOptions());
  CortenVm writer(AdvOptions());
  SimFile* file = FileRegistry::Instance().CreateFile(2);
  Result<Vaddr> rva = reader.MmapFilePrivate(file, 0, kPageSize, Perm::RW());
  ASSERT_TRUE(rva.ok());
  // Private write: breaks to a private copy immediately.
  ASSERT_TRUE(MmuSim::Write(reader, *rva, 0x1111).ok());

  Result<Vaddr> wva = writer.MmapShared(file, 0, kPageSize, Perm::RW());
  ASSERT_TRUE(wva.ok());
  ASSERT_TRUE(MmuSim::Write(writer, *wva, 0x2222).ok());

  uint64_t value = 0;
  ASSERT_TRUE(MmuSim::Read(reader, *rva, &value).ok());
  EXPECT_EQ(value, 0x1111u);  // Still the private copy.
}

TEST(FileMappingTest, OffsetMappingsReadTheRightPages) {
  CortenVm mm(AdvOptions());
  SimFile* file = FileRegistry::Instance().CreateFile(64);
  // Map pages [32, 40).
  Result<Vaddr> va = mm.MmapFilePrivate(file, 32, 8 * kPageSize, Perm::R());
  ASSERT_TRUE(va.ok());
  for (int i = 0; i < 8; ++i) {
    uint64_t value = 0;
    ASSERT_TRUE(MmuSim::Read(mm, *va + i * kPageSize, &value).ok());
    uint64_t expected = 0;
    uint64_t file_offset = static_cast<uint64_t>(32 + i) * kPageSize;
    for (int byte = 7; byte >= 0; --byte) {
      expected = (expected << 8) | SimFile::ContentByte(file->id(), file_offset + byte);
    }
    EXPECT_EQ(value, expected) << "page " << i;
  }
}

// ---------------------------------------------------------------------------
// On-demand paging edge cases
// ---------------------------------------------------------------------------

TEST(OnDemandTest, ReadBeforeWriteZeroFills) {
  CortenVm mm(AdvOptions());
  Result<Vaddr> va = mm.MmapAnon(kPageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  uint64_t faults = GlobalStats().Total(Counter::kDemandZeroFills);
  uint64_t value = 0xffff;
  ASSERT_TRUE(MmuSim::Read(mm, *va, &value).ok());
  EXPECT_EQ(value, 0u);
  EXPECT_EQ(GlobalStats().Total(Counter::kDemandZeroFills), faults + 1);
  // The second access takes no fault.
  ASSERT_TRUE(MmuSim::Write(mm, *va, 3).ok());
  EXPECT_EQ(GlobalStats().Total(Counter::kDemandZeroFills), faults + 1);
}

TEST(OnDemandTest, ExecFaultOnNoExecPage) {
  CortenVm mm(AdvOptions());
  Result<Vaddr> va = mm.MmapAnon(kPageSize, Perm::RW());  // rw-, no exec.
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::Write(mm, *va, 1).ok());
  EXPECT_EQ(MmuSim::Access(mm, *va, Access::kExec).error(), ErrCode::kFault);
}

TEST(OnDemandTest, HugeRegionMarksStayCoarseUntilTouched) {
  CortenVm mm(AdvOptions());
  uint64_t pt_before = GlobalStats().Total(Counter::kPtPagesAllocated) -
                       GlobalStats().Total(Counter::kPtPagesFreed);
  // 1 GiB mapping: should cost O(1) PT pages until pages are touched.
  Result<Vaddr> va = mm.MmapAnon(1ull << 30, Perm::RW());
  ASSERT_TRUE(va.ok());
  uint64_t pt_after_mmap = GlobalStats().Total(Counter::kPtPagesAllocated) -
                           GlobalStats().Total(Counter::kPtPagesFreed);
  EXPECT_LE(pt_after_mmap - pt_before, 8u);
  ASSERT_TRUE(MmuSim::Write(mm, *va + (512ull << 20), 1).ok());
  ASSERT_TRUE(mm.Munmap(*va, 1ull << 30).ok());
}

}  // namespace
}  // namespace cortenmm
