// Facade conformance: every manager the evaluation compares is driven purely
// through MmInterface — no downcasts — and capability gaps surface as
// kUnsupported (Fork: nullptr) rather than as missing methods. This pins the
// contract the benches rely on.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/backing.h"
#include "src/sim/bench_util.h"

namespace cortenmm {
namespace {

constexpr uint64_t kLen = 4 * kPageSize;

bool SupportsExtendedOps(MmKind kind) {
  return kind == MmKind::kCortenAdv || kind == MmKind::kCortenRw;
}

bool SupportsFork(MmKind kind) {
  return SupportsExtendedOps(kind) || kind == MmKind::kLinux;
}

class FacadeConformanceTest : public ::testing::TestWithParam<MmKind> {};

TEST_P(FacadeConformanceTest, CoreOpsWorkThroughTheFacade) {
  std::unique_ptr<MmInterface> mm = MakeMm(GetParam());
  ASSERT_NE(mm, nullptr);
  EXPECT_NE(std::string(mm->name()), "");

  Result<Vaddr> va = mm->MmapAnon(kLen, Perm::RW());
  ASSERT_TRUE(va.ok());
  if (mm->demand_paging()) {
    for (uint64_t off = 0; off < kLen; off += kPageSize) {
      EXPECT_TRUE(mm->HandleFault(*va + off, Access::kWrite).ok());
    }
  }
  EXPECT_TRUE(mm->Mprotect(*va, kLen, Perm::R()).ok());
  EXPECT_TRUE(mm->Munmap(*va, kLen).ok());
}

TEST_P(FacadeConformanceTest, FileMappingsSupportedOrGated) {
  std::unique_ptr<MmInterface> mm = MakeMm(GetParam());
  SimFile* file = FileRegistry::Instance().CreateFile(4);

  Result<Vaddr> priv = mm->MmapFilePrivate(file, 0, kLen, Perm::RW());
  Result<Vaddr> shared = mm->MmapShared(file, 0, kLen, Perm::RW());
  if (SupportsExtendedOps(GetParam())) {
    ASSERT_TRUE(priv.ok());
    ASSERT_TRUE(shared.ok());
    EXPECT_TRUE(mm->Msync(*shared, kLen).ok());
    EXPECT_TRUE(mm->Munmap(*priv, kLen).ok());
    EXPECT_TRUE(mm->Munmap(*shared, kLen).ok());
  } else {
    ASSERT_FALSE(priv.ok());
    EXPECT_EQ(priv.error(), ErrCode::kUnsupported);
    ASSERT_FALSE(shared.ok());
    EXPECT_EQ(shared.error(), ErrCode::kUnsupported);
    Result<Vaddr> va = mm->MmapAnon(kLen, Perm::RW());
    ASSERT_TRUE(va.ok());
    VoidResult msync = mm->Msync(*va, kLen);
    ASSERT_FALSE(msync.ok());
    EXPECT_EQ(msync.error(), ErrCode::kUnsupported);
  }
}

TEST_P(FacadeConformanceTest, PkeyAndSwapSupportedOrGated) {
  std::unique_ptr<MmInterface> mm = MakeMm(GetParam());
  Result<Vaddr> va = mm->MmapAnon(kLen, Perm::RW());
  ASSERT_TRUE(va.ok());

  VoidResult pkey = mm->PkeyMprotect(*va, kLen, 1);
  if (SupportsExtendedOps(GetParam())) {
    EXPECT_TRUE(pkey.ok());
    // Make the pages resident so there is something to evict.
    for (uint64_t off = 0; off < kLen; off += kPageSize) {
      ASSERT_TRUE(mm->HandleFault(*va + off, Access::kWrite).ok());
    }
    Result<uint64_t> swapped = mm->SwapOut(*va, kLen);
    ASSERT_TRUE(swapped.ok());
    EXPECT_GE(*swapped, 1u);
  } else {
    ASSERT_FALSE(pkey.ok());
    EXPECT_EQ(pkey.error(), ErrCode::kUnsupported);
    Result<uint64_t> swapped = mm->SwapOut(*va, kLen);
    ASSERT_FALSE(swapped.ok());
    EXPECT_EQ(swapped.error(), ErrCode::kUnsupported);
  }
  EXPECT_TRUE(mm->Munmap(*va, kLen).ok());
}

TEST_P(FacadeConformanceTest, ForkSupportedOrNull) {
  std::unique_ptr<MmInterface> mm = MakeMm(GetParam());
  Result<Vaddr> va = mm->MmapAnon(kLen, Perm::RW());
  ASSERT_TRUE(va.ok());
  if (mm->demand_paging()) {
    ASSERT_TRUE(mm->HandleFault(*va, Access::kWrite).ok());
  }

  std::unique_ptr<MmInterface> child = mm->Fork();
  if (SupportsFork(GetParam())) {
    ASSERT_NE(child, nullptr);
    EXPECT_NE(child->asid(), mm->asid());
    // The child is a full manager: its inherited mapping faults and unmaps
    // through the same facade.
    EXPECT_TRUE(child->HandleFault(*va, Access::kWrite).ok());
    EXPECT_TRUE(child->Munmap(*va, kLen).ok());
    Result<Vaddr> child_va = child->MmapAnon(kLen, Perm::RW());
    EXPECT_TRUE(child_va.ok());
  } else {
    EXPECT_EQ(child, nullptr);
  }
  EXPECT_TRUE(mm->Munmap(*va, kLen).ok());
}

INSTANTIATE_TEST_SUITE_P(AllManagers, FacadeConformanceTest,
                         ::testing::ValuesIn(ComparisonSet()),
                         [](const ::testing::TestParamInfo<MmKind>& info) {
                           std::string name = MmKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace cortenmm
