// Facade conformance: every manager the evaluation compares is driven purely
// through MmInterface — no downcasts — and capability gaps surface as
// kUnsupported (Fork: nullptr) rather than as missing methods. This pins the
// contract the benches rely on.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/backing.h"
#include "src/fault/fault_inject.h"
#include "src/sim/bench_util.h"

namespace cortenmm {
namespace {

constexpr uint64_t kLen = 4 * kPageSize;

bool SupportsExtendedOps(MmKind kind) {
  return kind == MmKind::kCortenAdv || kind == MmKind::kCortenRw;
}

bool SupportsFork(MmKind kind) {
  return SupportsExtendedOps(kind) || kind == MmKind::kLinux;
}

class FacadeConformanceTest : public ::testing::TestWithParam<MmKind> {};

TEST_P(FacadeConformanceTest, CoreOpsWorkThroughTheFacade) {
  std::unique_ptr<MmInterface> mm = MakeMm(GetParam());
  ASSERT_NE(mm, nullptr);
  EXPECT_NE(std::string(mm->name()), "");

  Result<Vaddr> va = mm->MmapAnon(kLen, Perm::RW());
  ASSERT_TRUE(va.ok());
  if (mm->demand_paging()) {
    for (uint64_t off = 0; off < kLen; off += kPageSize) {
      EXPECT_TRUE(mm->HandleFault(*va + off, Access::kWrite).ok());
    }
  }
  EXPECT_TRUE(mm->Mprotect(*va, kLen, Perm::R()).ok());
  EXPECT_TRUE(mm->Munmap(*va, kLen).ok());
}

TEST_P(FacadeConformanceTest, FileMappingsSupportedOrGated) {
  std::unique_ptr<MmInterface> mm = MakeMm(GetParam());
  SimFile* file = FileRegistry::Instance().CreateFile(4);

  Result<Vaddr> priv = mm->MmapFilePrivate(file, 0, kLen, Perm::RW());
  Result<Vaddr> shared = mm->MmapShared(file, 0, kLen, Perm::RW());
  if (SupportsExtendedOps(GetParam())) {
    ASSERT_TRUE(priv.ok());
    ASSERT_TRUE(shared.ok());
    EXPECT_TRUE(mm->Msync(*shared, kLen).ok());
    EXPECT_TRUE(mm->Munmap(*priv, kLen).ok());
    EXPECT_TRUE(mm->Munmap(*shared, kLen).ok());
  } else {
    ASSERT_FALSE(priv.ok());
    EXPECT_EQ(priv.error(), ErrCode::kUnsupported);
    ASSERT_FALSE(shared.ok());
    EXPECT_EQ(shared.error(), ErrCode::kUnsupported);
    Result<Vaddr> va = mm->MmapAnon(kLen, Perm::RW());
    ASSERT_TRUE(va.ok());
    VoidResult msync = mm->Msync(*va, kLen);
    ASSERT_FALSE(msync.ok());
    EXPECT_EQ(msync.error(), ErrCode::kUnsupported);
  }
}

TEST_P(FacadeConformanceTest, PkeyAndSwapSupportedOrGated) {
  std::unique_ptr<MmInterface> mm = MakeMm(GetParam());
  Result<Vaddr> va = mm->MmapAnon(kLen, Perm::RW());
  ASSERT_TRUE(va.ok());

  VoidResult pkey = mm->PkeyMprotect(*va, kLen, 1);
  if (SupportsExtendedOps(GetParam())) {
    EXPECT_TRUE(pkey.ok());
    // Make the pages resident so there is something to evict.
    for (uint64_t off = 0; off < kLen; off += kPageSize) {
      ASSERT_TRUE(mm->HandleFault(*va + off, Access::kWrite).ok());
    }
    Result<uint64_t> swapped = mm->SwapOut(*va, kLen);
    ASSERT_TRUE(swapped.ok());
    EXPECT_GE(*swapped, 1u);
  } else {
    ASSERT_FALSE(pkey.ok());
    EXPECT_EQ(pkey.error(), ErrCode::kUnsupported);
    Result<uint64_t> swapped = mm->SwapOut(*va, kLen);
    ASSERT_FALSE(swapped.ok());
    EXPECT_EQ(swapped.error(), ErrCode::kUnsupported);
  }
  EXPECT_TRUE(mm->Munmap(*va, kLen).ok());
}

TEST_P(FacadeConformanceTest, ForkSupportedOrNull) {
  std::unique_ptr<MmInterface> mm = MakeMm(GetParam());
  Result<Vaddr> va = mm->MmapAnon(kLen, Perm::RW());
  ASSERT_TRUE(va.ok());
  if (mm->demand_paging()) {
    ASSERT_TRUE(mm->HandleFault(*va, Access::kWrite).ok());
  }

  std::unique_ptr<MmInterface> child = mm->Fork();
  if (SupportsFork(GetParam())) {
    ASSERT_NE(child, nullptr);
    EXPECT_NE(child->asid(), mm->asid());
    // The child is a full manager: its inherited mapping faults and unmaps
    // through the same facade.
    EXPECT_TRUE(child->HandleFault(*va, Access::kWrite).ok());
    EXPECT_TRUE(child->Munmap(*va, kLen).ok());
    Result<Vaddr> child_va = child->MmapAnon(kLen, Perm::RW());
    EXPECT_TRUE(child_va.ok());
  } else {
    EXPECT_EQ(child, nullptr);
  }
  EXPECT_TRUE(mm->Munmap(*va, kLen).ok());
}

TEST_P(FacadeConformanceTest, FixedPlacementMapsAtTheRequestedAddress) {
  std::unique_ptr<MmInterface> mm = MakeMm(GetParam());
  constexpr Vaddr kFixedVa = 80ull << 30;

  Result<Vaddr> va = mm->MmapAnon(MmapArgs::At(kFixedVa, kLen, Perm::RW()));
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(*va, kFixedVa);
  EXPECT_TRUE(mm->HandleFault(kFixedVa, Access::kWrite).ok());

  // MAP_FIXED replacement: mapping over the live region succeeds and the
  // result is a fresh mapping at the same address.
  Result<Vaddr> again = mm->MmapAnon(MmapArgs::At(kFixedVa, kLen, Perm::RW()));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, kFixedVa);
  EXPECT_TRUE(mm->HandleFault(kFixedVa, Access::kWrite).ok());
  EXPECT_TRUE(mm->Munmap(kFixedVa, kLen).ok());
}

// The HandleFault error-code contract (pinned in mm_interface.h): kOk when
// the VA lies in a mapping whose permissions allow the access, kFault both
// for VAs outside any mapping and for permission violations — never a third
// code, and identically across all four managers.
TEST_P(FacadeConformanceTest, FaultErrCodeContract) {
  std::unique_ptr<MmInterface> mm = MakeMm(GetParam());
  Result<Vaddr> va = mm->MmapAnon(kLen, Perm::RW());
  ASSERT_TRUE(va.ok());

  // Resolvable faults on an RW mapping: kOk for read and write.
  EXPECT_TRUE(mm->HandleFault(*va, Access::kWrite).ok());
  EXPECT_TRUE(mm->HandleFault(*va + kPageSize, Access::kRead).ok());
  // Exec on a mapping without exec permission: kFault, even though present.
  VoidResult exec = mm->HandleFault(*va, Access::kExec);
  ASSERT_FALSE(exec.ok());
  EXPECT_EQ(exec.error(), ErrCode::kFault);

  // After dropping to read-only: reads stay kOk, writes become kFault.
  ASSERT_TRUE(mm->Mprotect(*va, kLen, Perm::R()).ok());
  EXPECT_TRUE(mm->HandleFault(*va, Access::kRead).ok());
  VoidResult write = mm->HandleFault(*va, Access::kWrite);
  ASSERT_FALSE(write.ok());
  EXPECT_EQ(write.error(), ErrCode::kFault);

  // A VA no mapping has ever covered.
  constexpr Vaddr kNowhere = 300ull << 30;
  VoidResult unmapped = mm->HandleFault(kNowhere, Access::kRead);
  ASSERT_FALSE(unmapped.ok());
  EXPECT_EQ(unmapped.error(), ErrCode::kFault);

  // After munmap the region is outside-any-mapping again.
  ASSERT_TRUE(mm->Munmap(*va, kLen).ok());
  VoidResult stale = mm->HandleFault(*va, Access::kRead);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error(), ErrCode::kFault);
}

#if CORTENMM_FAULTINJ

// Disarms the injector even when an EXPECT fails mid-test.
struct ScopedInjection {
  ~ScopedInjection() {
    FaultInjector::Instance().DisableAll();
    FaultInjector::Instance().ResetCounters();
  }
};

// The OOM contract every manager must honor through the facade: when the
// frame allocator refuses, an operation reports kNoMem (never crashes, never
// asserts), prior mappings are untouched, and the manager recovers fully once
// memory returns.
TEST_P(FacadeConformanceTest, NoMemSurfacesAsErrorNotCrash) {
  std::unique_ptr<MmInterface> mm = MakeMm(GetParam());
  ASSERT_NE(mm, nullptr);

  // Region A: established while memory is plentiful; must survive untouched.
  Result<Vaddr> a = mm->MmapAnon(kLen, Perm::RW());
  ASSERT_TRUE(a.ok());
  if (mm->demand_paging()) {
    for (uint64_t off = 0; off < kLen; off += kPageSize) {
      ASSERT_TRUE(mm->HandleFault(*a + off, Access::kWrite).ok());
    }
  }

  ScopedInjection disarm_on_exit;
  FaultConfig always;
  always.fail_after = 0;  // Every frame allocation fails.
  FaultInjector::Instance().Enable(FaultSite::kBuddyAllocFrame, always);
  FaultInjector::Instance().Enable(FaultSite::kBuddyAllocBlock, always);

  // Every facade op must come back ok or kNoMem — which one depends on
  // whether the manager's metadata path needed a fresh PT page, so only the
  // error-code discipline is pinned, not the split.
  auto ok_or_nomem = [](const VoidResult& r) {
    return r.ok() || r.error() == ErrCode::kNoMem;
  };
  Result<Vaddr> b = mm->MmapAnon(kLen, Perm::RW());
  EXPECT_TRUE(b.ok() || b.error() == ErrCode::kNoMem);
  bool b_faulted_in = true;
  if (b.ok() && mm->demand_paging()) {
    for (uint64_t off = 0; off < kLen; off += kPageSize) {
      VoidResult fault = mm->HandleFault(*b + off, Access::kWrite);
      EXPECT_TRUE(ok_or_nomem(fault));
      b_faulted_in = b_faulted_in && fault.ok();
    }
    // With every allocation failing, an anon fault cannot produce a frame.
    EXPECT_FALSE(b_faulted_in);
  }
  EXPECT_TRUE(ok_or_nomem(mm->Mprotect(*a, kLen, Perm::R())));
  EXPECT_TRUE(ok_or_nomem(mm->Mprotect(*a, kLen, Perm::RW())));
  // fork() needs a fresh page-table root, which cannot be had: every manager
  // must hand back nullptr, not a half-cloned child.
  EXPECT_EQ(mm->Fork(), nullptr);

  FaultInjector::Instance().DisableAll();

  // Recovery: region A is still fully usable, and whatever B's state is, the
  // manager completes the faults now that memory is back.
  if (mm->demand_paging()) {
    EXPECT_TRUE(mm->HandleFault(*a, Access::kWrite).ok());
  }
  if (b.ok()) {
    if (mm->demand_paging()) {
      for (uint64_t off = 0; off < kLen; off += kPageSize) {
        EXPECT_TRUE(mm->HandleFault(*b + off, Access::kWrite).ok());
      }
    }
    EXPECT_TRUE(mm->Munmap(*b, kLen).ok());
  }
  EXPECT_TRUE(mm->Munmap(*a, kLen).ok());
}

#endif  // CORTENMM_FAULTINJ

INSTANTIATE_TEST_SUITE_P(AllManagers, FacadeConformanceTest,
                         ::testing::ValuesIn(ComparisonSet()),
                         [](const ::testing::TestParamInfo<MmKind>& info) {
                           std::string name = MmKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace cortenmm
