// Unit tests for the common substrate: SmallVec (hand-rolled inline-storage
// vector used on the transaction hot path), VaRange arithmetic, Perm bits,
// Result, the deterministic RNG, and the page-index math everything trusts.
#include <gtest/gtest.h>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/small_vec.h"
#include "src/common/types.h"
#include "src/tlb/shootdown.h"

namespace cortenmm {
namespace {

// ---------------------------------------------------------------------------
// SmallVec
// ---------------------------------------------------------------------------

TEST(SmallVecTest, StaysInlineUpToN) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 4; ++i) {
    v.push_back(i);
  }
  EXPECT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(v[i], i);
  }
}

TEST(SmallVecTest, SpillsToHeapAndKeepsContents) {
  SmallVec<uint64_t, 4> v;
  for (uint64_t i = 0; i < 100; ++i) {
    v.push_back(i * 7);
  }
  ASSERT_EQ(v.size(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(v[i], i * 7);
  }
}

TEST(SmallVecTest, MoveWhileInline) {
  SmallVec<int, 8> a;
  a.push_back(1);
  a.push_back(2);
  SmallVec<int, 8> b(std::move(a));
  EXPECT_EQ(a.size(), 0u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[1], 2);
}

TEST(SmallVecTest, MoveWhileSpilled) {
  SmallVec<int, 2> a;
  for (int i = 0; i < 50; ++i) {
    a.push_back(i);
  }
  SmallVec<int, 2> b(std::move(a));
  EXPECT_EQ(a.size(), 0u);
  ASSERT_EQ(b.size(), 50u);
  EXPECT_EQ(b[49], 49);
  // The moved-from vector is reusable.
  a.push_back(7);
  EXPECT_EQ(a.size(), 1u);
}

TEST(SmallVecTest, MoveAssignReplacesContents) {
  SmallVec<int, 2> a;
  a.push_back(1);
  SmallVec<int, 2> b;
  for (int i = 0; i < 20; ++i) {
    b.push_back(i);
  }
  a = std::move(b);
  ASSERT_EQ(a.size(), 20u);
  EXPECT_EQ(a[19], 19);
}

TEST(SmallVecTest, EraseAtShiftsTail) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 6; ++i) {
    v.push_back(i);
  }
  v.erase_at(2);
  ASSERT_EQ(v.size(), 5u);
  int expected[] = {0, 1, 3, 4, 5};
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(v[i], expected[i]);
  }
  v.erase_at(4);  // Last element.
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.back(), 4);
}

TEST(SmallVecTest, IterationAndClear) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 10; ++i) {
    v.push_back(1);
  }
  int sum = 0;
  for (int x : v) {
    sum += x;
  }
  EXPECT_EQ(sum, 10);
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(5);  // Capacity survives clear.
  EXPECT_EQ(v.back(), 5);
}

// ---------------------------------------------------------------------------
// VaRange / index math
// ---------------------------------------------------------------------------

TEST(VaRangeTest, ContainsOverlapsIntersect) {
  VaRange a(0x1000, 0x5000);
  EXPECT_TRUE(a.Contains(0x1000));
  EXPECT_FALSE(a.Contains(0x5000));  // Half-open.
  EXPECT_TRUE(a.Contains(VaRange(0x2000, 0x3000)));
  EXPECT_FALSE(a.Contains(VaRange(0x4000, 0x6000)));

  EXPECT_TRUE(a.Overlaps(VaRange(0x4fff, 0x6000)));
  EXPECT_FALSE(a.Overlaps(VaRange(0x5000, 0x6000)));  // Touching != overlap.

  VaRange inter = a.Intersect(VaRange(0x3000, 0x9000));
  EXPECT_EQ(inter, VaRange(0x3000, 0x5000));
  EXPECT_TRUE(a.Intersect(VaRange(0x8000, 0x9000)).empty());
}

TEST(VaRangeTest, PageMath) {
  EXPECT_TRUE(VaRange(0x1000, 0x3000).IsPageAligned());
  EXPECT_FALSE(VaRange(0x1001, 0x3000).IsPageAligned());
  EXPECT_EQ(VaRange(0x1000, 0x5000).num_pages(), 4u);
  EXPECT_EQ(AlignDown(0x1fff, kPageSize), 0x1000u);
  EXPECT_EQ(AlignUp(0x1001, kPageSize), 0x2000u);
  EXPECT_EQ(AlignUp(0x1000, kPageSize), 0x1000u);
}

// ---------------------------------------------------------------------------
// Perm
// ---------------------------------------------------------------------------

TEST(PermTest, WithWithoutAreNonDestructive) {
  Perm rw = Perm::RW();
  Perm cow = rw.With(Perm::kCow).Without(Perm::kWrite);
  EXPECT_TRUE(rw.write());
  EXPECT_FALSE(rw.cow());
  EXPECT_TRUE(cow.cow());
  EXPECT_FALSE(cow.write());
  EXPECT_TRUE(cow.read());
  EXPECT_EQ(cow.With(Perm::kWrite).Without(Perm::kCow), Perm::RW());
}

// ---------------------------------------------------------------------------
// Result
// ---------------------------------------------------------------------------

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(0), 42);

  Result<int> err = ErrCode::kNoMem;
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), ErrCode::kNoMem);
  EXPECT_EQ(err.value_or(-1), -1);

  VoidResult vok;
  EXPECT_TRUE(vok.ok());
  VoidResult verr(ErrCode::kFault);
  EXPECT_EQ(verr.error(), ErrCode::kFault);
  EXPECT_STREQ(ErrCodeName(ErrCode::kFault), "FAULT");
}

// ---------------------------------------------------------------------------
// Rng determinism
// ---------------------------------------------------------------------------

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(124);
  bool diverged = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i) {
    diverged |= a2.Next() != c.Next();
  }
  EXPECT_TRUE(diverged);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
    uint64_t r = rng.Range(100, 110);
    EXPECT_GE(r, 100u);
    EXPECT_LT(r, 110u);
  }
}

// ---------------------------------------------------------------------------
// CpuMask
// ---------------------------------------------------------------------------

TEST(CpuMaskTest, SetTestAndEnumerate) {
  CpuMask mask;
  EXPECT_FALSE(mask.Test(0));
  mask.Set(0);
  mask.Set(63);
  mask.Set(64);   // Crosses the word boundary.
  mask.Set(511);  // Last valid CPU.
  EXPECT_TRUE(mask.Test(0));
  EXPECT_TRUE(mask.Test(63));
  EXPECT_TRUE(mask.Test(64));
  EXPECT_TRUE(mask.Test(511));
  EXPECT_FALSE(mask.Test(1));
  std::vector<CpuId> cpus = mask.ToVector();
  ASSERT_EQ(cpus.size(), 4u);
  EXPECT_EQ(cpus[0], 0);
  EXPECT_EQ(cpus[1], 63);
  EXPECT_EQ(cpus[2], 64);
  EXPECT_EQ(cpus[3], 511);
}

}  // namespace
}  // namespace cortenmm
