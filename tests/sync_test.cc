// Unit and stress tests for the synchronization substrate: MCS lock, CNA
// lock, phase-fair rwlock, BRAVO bias layer, epoch RCU, seqcount.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

#include "src/common/cpu.h"
#include "src/common/stats.h"
#include "src/common/topology.h"
#include "src/sync/bravo.h"
#include "src/sync/cna_lock.h"
#include "src/sync/mcs_lock.h"
#include "src/sync/pfq_rwlock.h"
#include "src/sync/rcu.h"
#include "src/sync/seqlock.h"
#include "src/sync/spinlock.h"

namespace cortenmm {
namespace {

int StressThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw >= 4 ? 4 : 2;
}

// ---------------------------------------------------------------------------
// MCS lock
// ---------------------------------------------------------------------------

TEST(McsLockTest, UncontendedLockUnlock) {
  McsLock lock;
  McsNode node;
  lock.Lock(&node);
  EXPECT_TRUE(lock.IsLockedHint());
  lock.Unlock(&node);
  EXPECT_FALSE(lock.IsLockedHint());
}

TEST(McsLockTest, TryLockFailsWhenHeld) {
  McsLock lock;
  McsNode a;
  McsNode b;
  lock.Lock(&a);
  EXPECT_FALSE(lock.TryLock(&b));
  lock.Unlock(&a);
  EXPECT_TRUE(lock.TryLock(&b));
  lock.Unlock(&b);
}

TEST(McsLockTest, MutualExclusionStress) {
  McsLock lock;
  int64_t counter = 0;
  constexpr int kIters = 20000;
  int threads = StressThreads();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&lock, &counter] {
      for (int i = 0; i < kIters; ++i) {
        McsNode node;
        lock.Lock(&node);
        // Non-atomic increment: torn only if mutual exclusion is broken.
        counter = counter + 1;
        lock.Unlock(&node);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, static_cast<int64_t>(kIters) * threads);
}

TEST(McsLockTest, FifoHandoffUnderNesting) {
  // One thread holds many locks at once via distinct nodes (the RCursor
  // pattern): nodes must be independent.
  constexpr int kLocks = 64;
  std::vector<McsLock> locks(kLocks);
  std::deque<McsNode> nodes;
  for (int i = 0; i < kLocks; ++i) {
    nodes.emplace_back();
    locks[i].Lock(&nodes.back());
  }
  for (int i = kLocks - 1; i >= 0; --i) {
    locks[i].Unlock(&nodes[i]);
  }
  for (int i = 0; i < kLocks; ++i) {
    EXPECT_FALSE(locks[i].IsLockedHint());
  }
}

// ---------------------------------------------------------------------------
// CNA lock
// ---------------------------------------------------------------------------

TEST(CnaLockTest, UncontendedLockUnlock) {
  CnaLock lock;
  CnaNode* node = CnaNodePool::Get();
  lock.Lock(node);
  EXPECT_TRUE(lock.IsLockedHint());
  lock.Unlock(node);
  EXPECT_FALSE(lock.IsLockedHint());
  CnaNodePool::Put(node);
}

TEST(CnaLockTest, TryLockFailsWhenHeld) {
  CnaLock lock;
  CnaNode* a = CnaNodePool::Get();
  CnaNode* b = CnaNodePool::Get();
  lock.Lock(a);
  EXPECT_FALSE(lock.TryLock(b));
  lock.Unlock(a);
  EXPECT_TRUE(lock.TryLock(b));
  lock.Unlock(b);
  CnaNodePool::Put(a);
  CnaNodePool::Put(b);
}

TEST(CnaLockTest, NestedHoldsUseDistinctPoolNodes) {
  // One thread holds many locks at once via distinct pool nodes (the RCursor
  // subtree-lock pattern): nodes must be independent.
  constexpr int kLocks = 64;
  std::vector<CnaLock> locks(kLocks);
  std::vector<CnaNode*> nodes(kLocks);
  for (int i = 0; i < kLocks; ++i) {
    nodes[i] = CnaNodePool::Get();
    locks[i].Lock(nodes[i]);
  }
  for (int i = kLocks - 1; i >= 0; --i) {
    locks[i].Unlock(nodes[i]);
    CnaNodePool::Put(nodes[i]);
  }
  for (int i = 0; i < kLocks; ++i) {
    EXPECT_FALSE(locks[i].IsLockedHint());
  }
}

TEST(CnaLockTest, CrossNodeMutualExclusionStress) {
  // Two workers per NUMA node hammer one lock: exercises the secondary-queue
  // detach (remote waiters skipped), the batched same-node handoff, and the
  // kBatchBound flush — while the non-atomic counter proves exclusion held.
  //
  // Whether a queue ever *forms* depends on the host: on a single hardware
  // thread each worker can run its whole loop inside one scheduler quantum
  // and every acquisition is uncontended. The critical section spins ~200ns
  // (like the bench's contention mix) so a preemption mid-hold seeds a
  // self-sustaining queue, and the batched-handoff expectation retries the
  // whole round rather than asserting on one scheduling accident. Mutual
  // exclusion is asserted on every round unconditionally.
  const NodeTopology& topo = NodeTopology::Instance();
  const int per_node = 2;
  const int threads = per_node * topo.nodes();
  constexpr int kIters = 20000;
  const uint64_t batched_before =
      GlobalStats().Total(Counter::kCnaBatchedHandoffs);
  constexpr int kAttempts = 3;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    CnaLock lock;
    int64_t counter = 0;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&lock, &counter, t, per_node] {
        BindThisThreadToCpu(
            NodeTopology::Instance().FirstCpuOfNode(t / per_node) +
            t % per_node);
        for (int i = 0; i < kIters; ++i) {
          CnaNode* node = CnaNodePool::Get();
          lock.Lock(node);
          // Non-atomic increment: torn only if mutual exclusion is broken.
          counter = counter + 1;
          auto hold_until = std::chrono::steady_clock::now() +
                            std::chrono::nanoseconds(200);
          while (std::chrono::steady_clock::now() < hold_until) {
          }
          lock.Unlock(node);
          CnaNodePool::Put(node);
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }
    ASSERT_EQ(counter, static_cast<int64_t>(kIters) * threads);
    if (topo.nodes() < 2 ||
        GlobalStats().Total(Counter::kCnaBatchedHandoffs) > batched_before) {
      break;
    }
  }
  if (topo.nodes() >= 2) {
    // With two same-node waiters racing two remote ones over 60k+ handoffs
    // per attempt, the unlocker finds a local successor past a parked remote
    // at least once.
    EXPECT_GT(GlobalStats().Total(Counter::kCnaBatchedHandoffs),
              batched_before);
  }
}

TEST(CnaLockTest, ParkedWaitersWakeAcrossLongHolds) {
  // Holds long enough that every waiter exhausts its spin phase and parks in
  // spin.wait(): exercises the fenced park/wake protocol end to end (the
  // production side of the cna-handoff litmus).
  CnaLock lock;
  constexpr int kRounds = 50;
  const int threads = StressThreads();
  std::atomic<int> acquisitions{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        CnaNode* node = CnaNodePool::Get();
        lock.Lock(node);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        acquisitions.fetch_add(1, std::memory_order_relaxed);
        lock.Unlock(node);
        CnaNodePool::Put(node);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(acquisitions.load(), kRounds * threads);
}

// ---------------------------------------------------------------------------
// Phase-fair rwlock
// ---------------------------------------------------------------------------

TEST(PfqRwLockTest, ReadersShare) {
  PfqRwLock lock;
  lock.ReadLock();
  lock.ReadLock();  // A second reader must not block.
  lock.ReadUnlock();
  lock.ReadUnlock();
}

TEST(PfqRwLockTest, WriterExcludesReadersStress) {
  PfqRwLock lock;
  int64_t shared_value = 0;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> torn_reads{0};
  constexpr int kWrites = 10000;

  std::thread writer([&] {
    for (int i = 0; i < kWrites; ++i) {
      lock.WriteLock();
      shared_value = shared_value + 1;  // Interim odd state below.
      shared_value = shared_value + 1;
      lock.WriteUnlock();
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < StressThreads() - 1; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        lock.ReadLock();
        if (shared_value % 2 != 0) {
          torn_reads.fetch_add(1);
        }
        lock.ReadUnlock();
      }
    });
  }
  writer.join();
  for (auto& r : readers) {
    r.join();
  }
  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(shared_value, 2 * kWrites);
}

// ---------------------------------------------------------------------------
// BRAVO
// ---------------------------------------------------------------------------

TEST(BravoTest, FastPathReadThenWriterRevokes) {
  BravoRwLock lock;
  EXPECT_TRUE(lock.read_biased());
  auto cookie = lock.ReadLock();
  EXPECT_EQ(cookie, BravoRwLock::ReadCookie::kFastPath);
  lock.ReadUnlock(cookie);

  lock.WriteLock();  // Revokes the bias.
  EXPECT_FALSE(lock.read_biased());
  lock.WriteUnlock();

  // Immediately after revocation readers take the underlying lock.
  auto cookie2 = lock.ReadLock();
  EXPECT_EQ(cookie2, BravoRwLock::ReadCookie::kUnderlying);
  lock.ReadUnlock(cookie2);
}

// Hammers the revocation window specifically: the writer re-arms the bias
// before every WriteLock so each iteration runs the full revoke-then-scan
// protocol against readers racing the rbias re-check. This is the production
// counterpart of the MakeBravoRevokeLitmus model (src/verif/litmus_model.cc)
// and of the StoreLoad fence in BravoRwLock::WriteLock — without the fence,
// tsan (and, rarely, a bare x86 run) can observe a fast-path reader inside
// the write critical section here.
TEST(BravoTest, RevocationFenceExcludesRacingFastPathReaders) {
  BravoRwLock lock;
  std::atomic<bool> stop{false};
  std::atomic<int> writer_in_cs{0};
  std::atomic<int64_t> overlaps{0};
  std::thread writer([&] {
    for (int i = 0; i < 2000; ++i) {
      lock.rearm_bias_for_testing();  // Force the revocation path every time.
      lock.WriteLock();
      writer_in_cs.store(1, std::memory_order_seq_cst);
      writer_in_cs.store(0, std::memory_order_seq_cst);
      lock.WriteUnlock();
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < StressThreads() - 1; ++t) {
    readers.emplace_back([&, t] {
      BindThisThreadToCpu(t + 8);  // Spread BRAVO table slots.
      while (!stop.load(std::memory_order_acquire)) {
        auto cookie = lock.ReadLock();
        if (cookie == BravoRwLock::ReadCookie::kFastPath &&
            writer_in_cs.load(std::memory_order_seq_cst) != 0) {
          overlaps.fetch_add(1);
        }
        lock.ReadUnlock(cookie);
      }
    });
  }
  writer.join();
  for (auto& r : readers) {
    r.join();
  }
  EXPECT_EQ(overlaps.load(), 0);
}

TEST(BravoTest, WriterExcludesFastPathReadersStress) {
  BravoRwLock lock;
  int64_t shared_value = 0;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> torn{0};
  std::thread writer([&] {
    for (int i = 0; i < 5000; ++i) {
      lock.WriteLock();
      shared_value = shared_value + 1;
      shared_value = shared_value + 1;
      lock.WriteUnlock();
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < StressThreads() - 1; ++t) {
    readers.emplace_back([&, t] {
      BindThisThreadToCpu(t + 8);  // Spread BRAVO table slots.
      while (!stop.load(std::memory_order_acquire)) {
        auto cookie = lock.ReadLock();
        if (shared_value % 2 != 0) {
          torn.fetch_add(1);
        }
        lock.ReadUnlock(cookie);
      }
    });
  }
  writer.join();
  for (auto& r : readers) {
    r.join();
  }
  EXPECT_EQ(torn.load(), 0);
}

// ---------------------------------------------------------------------------
// RCU
// ---------------------------------------------------------------------------

TEST(RcuTest, SynchronizeWaitsForReader) {
  Rcu& rcu = Rcu::Instance();
  std::atomic<bool> reader_in{false};
  std::atomic<bool> reader_release{false};
  std::atomic<bool> sync_done{false};

  std::thread reader([&] {
    BindThisThreadToCpu(20);
    rcu.ReadLock();
    reader_in.store(true);
    while (!reader_release.load()) {
      std::this_thread::yield();
    }
    rcu.ReadUnlock();
  });
  while (!reader_in.load()) {
    std::this_thread::yield();
  }
  std::thread syncer([&] {
    BindThisThreadToCpu(21);
    rcu.Synchronize();
    sync_done.store(true);
  });
  // The grace period must not elapse while the reader is inside.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(sync_done.load());
  reader_release.store(true);
  syncer.join();
  reader.join();
  EXPECT_TRUE(sync_done.load());
}

TEST(RcuTest, RetireDefersUntilGracePeriod) {
  Rcu& rcu = Rcu::Instance();
  rcu.DrainAll();
  static std::atomic<int> freed;
  freed.store(0);
  auto deleter = [](void* p) {
    freed.fetch_add(1);
    delete static_cast<int*>(p);
  };

  rcu.ReadLock();
  rcu.Retire(new int(1), deleter);
  // Can't be freed yet: we are inside a read-side critical section that
  // started before the retirement.
  rcu.ReadUnlock();
  rcu.DrainAll();
  EXPECT_EQ(freed.load(), 1);
}

TEST(RcuTest, NestedReadSections) {
  Rcu& rcu = Rcu::Instance();
  rcu.ReadLock();
  rcu.ReadLock();
  EXPECT_TRUE(rcu.InReadSection());
  rcu.ReadUnlock();
  EXPECT_TRUE(rcu.InReadSection());
  rcu.ReadUnlock();
  EXPECT_FALSE(rcu.InReadSection());
}

TEST(RcuTest, ManyRetirementsAllFreed) {
  Rcu& rcu = Rcu::Instance();
  rcu.DrainAll();
  static std::atomic<int> live;
  live.store(0);
  auto deleter = [](void* p) {
    live.fetch_sub(1);
    delete static_cast<int*>(p);
  };
  for (int i = 0; i < 500; ++i) {
    live.fetch_add(1);
    rcu.Retire(new int(i), deleter);
  }
  rcu.DrainAll();
  EXPECT_EQ(live.load(), 0);
  EXPECT_EQ(rcu.PendingCount(), 0u);
}

// ---------------------------------------------------------------------------
// SeqCount
// ---------------------------------------------------------------------------

TEST(SeqCountTest, ValidatesAcrossWrite) {
  SeqCount seq;
  uint32_t snap = seq.ReadBegin();
  EXPECT_TRUE(seq.ReadValidate(snap));
  seq.WriteBegin();
  seq.WriteEnd();
  EXPECT_FALSE(seq.ReadValidate(snap));
  EXPECT_TRUE(seq.ChangedSince(snap));
}

}  // namespace
}  // namespace cortenmm
