// Property-based tests: randomized operation sequences checked against simple
// oracles, parameterized (TEST_P) over protocol x arch x seed.
//
//   P-A  MM-vs-oracle: a random mmap/munmap/mprotect/touch/swap sequence on a
//        CortenMM space must leave exactly the pages the oracle says, with
//        exactly the contents the oracle says, and a well-formed page table.
//   P-B  Buddy integrity: random alloc/free of random orders never hands out
//        overlapping blocks and restores the free count.
//   P-C  VA allocator: allocations never overlap, frees are reusable.
//   P-D  Model checker: randomized thread/target configurations all satisfy
//        the protocol invariants.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/rng.h"
#include "src/core/vm_space.h"
#include "src/pmm/buddy.h"
#include "src/sim/corten_vm.h"
#include "src/sim/mmu.h"
#include "src/verif/tree_model.h"
#include "src/verif/wf_checker.h"

namespace cortenmm {
namespace {

// ---------------------------------------------------------------------------
// P-A: randomized MM operations vs. an oracle
// ---------------------------------------------------------------------------

struct FuzzParam {
  Protocol protocol;
  Arch arch;
  uint64_t seed;
};

class MmFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(MmFuzzTest, RandomOpsMatchOracle) {
  AddrSpace::Options options;
  options.protocol = GetParam().protocol;
  options.arch = GetParam().arch;
  CortenVm mm(options);
  Rng rng(GetParam().seed);

  // The oracle: per-page expected state. Absent = unmapped; value pair is
  // (expected word, writable).
  struct PageState {
    uint64_t value = 0;
    bool touched = false;  // False: would demand-zero on read.
    bool writable = true;
  };
  std::map<Vaddr, PageState> oracle;  // Key: page VA. Present = mmapped.

  constexpr Vaddr kBase = 40ull << 30;
  constexpr uint64_t kArenaPages = 512;
  constexpr int kOps = 600;

  auto page_at = [&](uint64_t index) { return kBase + index * kPageSize; };

  for (int op = 0; op < kOps; ++op) {
    uint64_t start = rng.Below(kArenaPages);
    uint64_t len = 1 + rng.Below(8);
    if (start + len > kArenaPages) {
      len = kArenaPages - start;
    }
    Vaddr va = page_at(start);
    switch (rng.Below(6)) {
      case 0: {  // mmap (fixed, replaces)
        ASSERT_TRUE(mm.MmapAnon(MmapArgs::At(va, len * kPageSize, Perm::RW())).ok());
        for (uint64_t p = 0; p < len; ++p) {
          oracle[va + p * kPageSize] = PageState{};
        }
        break;
      }
      case 1: {  // munmap
        ASSERT_TRUE(mm.Munmap(va, len * kPageSize).ok());
        for (uint64_t p = 0; p < len; ++p) {
          oracle.erase(va + p * kPageSize);
        }
        break;
      }
      case 2: {  // write touch
        for (uint64_t p = 0; p < len; ++p) {
          Vaddr page = va + p * kPageSize;
          auto it = oracle.find(page);
          uint64_t value = rng.Next();
          VoidResult r = MmuSim::Write(mm, page, value);
          if (it != oracle.end() && it->second.writable) {
            ASSERT_TRUE(r.ok()) << "write to mapped+writable page failed";
            it->second.value = value;
            it->second.touched = true;
          } else {
            ASSERT_FALSE(r.ok()) << "write to unmapped/read-only page succeeded";
          }
        }
        break;
      }
      case 3: {  // read touch
        for (uint64_t p = 0; p < len; ++p) {
          Vaddr page = va + p * kPageSize;
          auto it = oracle.find(page);
          uint64_t value = 0;
          VoidResult r = MmuSim::Read(mm, page, &value);
          if (it != oracle.end()) {
            ASSERT_TRUE(r.ok());
            ASSERT_EQ(value, it->second.touched ? it->second.value : 0)
                << "page " << std::hex << page;
          } else {
            ASSERT_FALSE(r.ok());
          }
        }
        break;
      }
      case 4: {  // mprotect toggle
        bool writable = rng.Chance(1, 2);
        ASSERT_TRUE(
            mm.Mprotect(va, len * kPageSize, writable ? Perm::RW() : Perm::R()).ok());
        for (uint64_t p = 0; p < len; ++p) {
          auto it = oracle.find(va + p * kPageSize);
          if (it != oracle.end()) {
            it->second.writable = writable;
          }
        }
        break;
      }
      case 5: {  // swap out (contents must survive)
        Result<uint64_t> swapped = mm.SwapOut(va, len * kPageSize);
        ASSERT_TRUE(swapped.ok());
        break;
      }
    }
  }

  // Final sweep: every oracle page reads back exactly; every non-oracle page
  // in the arena faults.
  for (uint64_t p = 0; p < kArenaPages; ++p) {
    Vaddr page = page_at(p);
    auto it = oracle.find(page);
    uint64_t value = 0;
    VoidResult r = MmuSim::Read(mm, page, &value);
    if (it != oracle.end()) {
      ASSERT_TRUE(r.ok()) << "page " << std::hex << page;
      ASSERT_EQ(value, it->second.touched ? it->second.value : 0)
          << "page " << std::hex << page;
    } else {
      ASSERT_FALSE(r.ok()) << "page " << std::hex << page;
    }
  }
  WfReport report = CheckWellFormed(mm.vm().addr_space());
  EXPECT_TRUE(report.ok) << report.first_error;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, MmFuzzTest,
    ::testing::Values(FuzzParam{Protocol::kRw, Arch::kX86_64, 1},
                      FuzzParam{Protocol::kAdv, Arch::kX86_64, 1},
                      FuzzParam{Protocol::kRw, Arch::kRiscvSv48, 2},
                      FuzzParam{Protocol::kAdv, Arch::kRiscvSv48, 2},
                      FuzzParam{Protocol::kAdv, Arch::kX86_64, 3},
                      FuzzParam{Protocol::kAdv, Arch::kX86_64, 4},
                      FuzzParam{Protocol::kRw, Arch::kX86_64, 5},
                      FuzzParam{Protocol::kAdv, Arch::kX86_64, 6}),
    [](const ::testing::TestParamInfo<FuzzParam>& info) {
      std::string name = info.param.protocol == Protocol::kRw ? "rw" : "adv";
      name += info.param.arch == Arch::kX86_64 ? "_x86_" : "_riscv_";
      name += std::to_string(info.param.seed);
      return name;
    });

// ---------------------------------------------------------------------------
// P-B: buddy allocator integrity under random order churn
// ---------------------------------------------------------------------------

class BuddyFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BuddyFuzzTest, RandomOrderChurnNeverOverlaps) {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  Rng rng(GetParam());
  struct Block {
    Pfn pfn;
    int order;
  };
  std::vector<Block> live;
  std::set<Pfn> owned;  // Every frame of every live block.

  for (int op = 0; op < 400; ++op) {
    if (live.empty() || rng.Chance(3, 5)) {
      int order = static_cast<int>(rng.Below(6));
      Result<Pfn> block = buddy.AllocBlock(order);
      ASSERT_TRUE(block.ok());
      EXPECT_TRUE(IsAligned(*block, 1ull << order));
      for (uint64_t f = 0; f < (1ull << order); ++f) {
        ASSERT_TRUE(owned.insert(*block + f).second)
            << "frame " << (*block + f) << " double-allocated";
      }
      live.push_back(Block{*block, order});
    } else {
      size_t victim = rng.Below(live.size());
      Block block = live[victim];
      live[victim] = live.back();
      live.pop_back();
      for (uint64_t f = 0; f < (1ull << block.order); ++f) {
        owned.erase(block.pfn + f);
      }
      buddy.FreeBlock(block.pfn, block.order);
    }
  }
  for (const Block& block : live) {
    buddy.FreeBlock(block.pfn, block.order);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyFuzzTest, ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// P-C: VA allocator never hands out overlapping ranges
// ---------------------------------------------------------------------------

class VaAllocFuzzTest : public ::testing::TestWithParam<bool> {};

TEST_P(VaAllocFuzzTest, NoOverlapAndReuse) {
  VaAllocator alloc(/*per_core=*/GetParam());
  Rng rng(77);
  struct Run {
    Vaddr va;
    uint64_t len;
  };
  std::vector<Run> live;
  for (int op = 0; op < 500; ++op) {
    if (live.empty() || rng.Chance(2, 3)) {
      uint64_t len = (1 + rng.Below(64)) * kPageSize;
      Result<Vaddr> va = alloc.Alloc(len);
      ASSERT_TRUE(va.ok());
      for (const Run& run : live) {
        EXPECT_FALSE(VaRange(*va, *va + len).Overlaps(VaRange(run.va, run.va + run.len)))
            << "allocator returned overlapping ranges";
      }
      live.push_back(Run{*va, len});
    } else {
      size_t victim = rng.Below(live.size());
      alloc.Free(live[victim].va, live[victim].len);
      live[victim] = live.back();
      live.pop_back();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, VaAllocFuzzTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "per_core" : "shared";
                         });

// ---------------------------------------------------------------------------
// P-D: randomized model-checking configurations
// ---------------------------------------------------------------------------

class ModelFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModelFuzzTest, RandomConfigsSatisfyInvariants) {
  Rng rng(GetParam());
  // Random 2-thread configurations on a depth-3 tree (7 pages).
  for (int round = 0; round < 6; ++round) {
    int t0 = static_cast<int>(rng.Below(7));
    int t1 = static_cast<int>(rng.Below(7));
    {
      RwProtocolModel model(3, {{t0}, {t1}});
      ModelCheckResult result = ModelChecker::Run(model, 5'000'000);
      EXPECT_TRUE(result.ok) << "rw targets " << t0 << "," << t1 << ": "
                             << result.violation << result.deadlock_state;
    }
    {
      AdvProtocolModel model(3, {{t0, -1}, {t1, -1}});
      ModelCheckResult result = ModelChecker::Run(model, 5'000'000);
      EXPECT_TRUE(result.ok) << "adv targets " << t0 << "," << t1 << ": "
                             << result.violation << result.deadlock_state;
    }
    // Unmapper variant when a child of t0 exists.
    ModelTree tree{3};
    if (!tree.IsLeaf(t0)) {
      int child = ModelTree::LeftChild(t0) + static_cast<int>(rng.Below(2));
      AdvProtocolModel model(3, {{t0, child}, {t1, -1}});
      ModelCheckResult result = ModelChecker::Run(model, 5'000'000);
      EXPECT_TRUE(result.ok) << "adv unmap " << t0 << "->" << child << " vs " << t1
                             << ": " << result.violation << result.deadlock_state;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelFuzzTest, ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace cortenmm
