// Chaos-mode invariant testing: multi-threaded mmap/fault/mprotect/munmap/fork
// traffic while the fault injector forces allocator exhaustion, shootdown
// stragglers, and lock-acquisition stalls. The MM must degrade gracefully —
// operations may fail with kNoMem, but nothing may crash, the page table must
// stay well-formed, and every frame allocated during the run must be either
// mapped or back in the buddy allocator when the spaces are destroyed.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/cpu.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/topology.h"
#include "src/core/vm_space.h"
#include "src/fault/fault_inject.h"
#include "src/pmm/buddy.h"
#include "src/sim/corten_vm.h"
#include "src/sync/rcu.h"
#include "src/tlb/shootdown.h"
#include "src/verif/wf_checker.h"

namespace cortenmm {
namespace {

#if CORTENMM_FAULTINJ

enum class ChaosSchedule {
  kNoMem,        // 2% of buddy allocations fail.
  kNoMemBurst,   // Allocations 201..264 (site-globally) fail, then recover.
  kStraggler,    // 10% of shootdown targets stall before invalidating.
  kLockStall,    // 10% of lock acquisitions stall in their widest race window.
  kMagRefill,    // 5% of magazine refills fail mid-fault; 20% of pre-scrub
                 // batches abort. Faults must roll back to kNoMem cleanly and
                 // fall back to inline zeroing, with zero frame leaks.
  kMixed,        // Everything at once, lighter.
};

const char* ScheduleName(ChaosSchedule schedule) {
  switch (schedule) {
    case ChaosSchedule::kNoMem:
      return "NoMem";
    case ChaosSchedule::kNoMemBurst:
      return "NoMemBurst";
    case ChaosSchedule::kStraggler:
      return "Straggler";
    case ChaosSchedule::kLockStall:
      return "LockStall";
    case ChaosSchedule::kMagRefill:
      return "MagRefill";
    case ChaosSchedule::kMixed:
      return "Mixed";
  }
  return "Unknown";
}

bool InjectsNoMem(ChaosSchedule schedule) {
  return schedule == ChaosSchedule::kNoMem || schedule == ChaosSchedule::kNoMemBurst ||
         schedule == ChaosSchedule::kMagRefill || schedule == ChaosSchedule::kMixed;
}

void ArmSchedule(ChaosSchedule schedule) {
  FaultInjector& inj = FaultInjector::Instance();
  FaultConfig nomem;
  nomem.prob_num = 2;
  nomem.prob_den = 100;
  FaultConfig stall;
  stall.prob_num = 10;
  stall.prob_den = 100;
  stall.stall_spins = 200;
  switch (schedule) {
    case ChaosSchedule::kNoMem:
      inj.Enable(FaultSite::kBuddyAllocFrame, nomem);
      inj.Enable(FaultSite::kBuddyAllocBlock, nomem);
      break;
    case ChaosSchedule::kNoMemBurst: {
      FaultConfig burst;
      burst.fail_after = 200;
      burst.max_injections = 64;
      inj.Enable(FaultSite::kBuddyAllocFrame, burst);
      break;
    }
    case ChaosSchedule::kStraggler:
      inj.Enable(FaultSite::kShootdownStraggler, stall);
      break;
    case ChaosSchedule::kLockStall:
      inj.Enable(FaultSite::kAdvLockStall, stall);
      inj.Enable(FaultSite::kRwLockStall, stall);
      break;
    case ChaosSchedule::kMagRefill: {
      FaultConfig refill;
      refill.prob_num = 5;
      refill.prob_den = 100;
      FaultConfig scrub;
      scrub.prob_num = 20;
      scrub.prob_den = 100;
      inj.Enable(FaultSite::kMagazineRefill, refill);
      inj.Enable(FaultSite::kPreScrub, scrub);
      break;
    }
    case ChaosSchedule::kMixed: {
      FaultConfig light_nomem = nomem;
      light_nomem.prob_num = 1;
      FaultConfig light_stall = stall;
      light_stall.prob_num = 5;
      light_stall.stall_spins = 100;
      inj.Enable(FaultSite::kBuddyAllocFrame, light_nomem);
      inj.Enable(FaultSite::kBuddyAllocBlock, light_nomem);
      inj.Enable(FaultSite::kMagazineRefill, light_nomem);
      inj.Enable(FaultSite::kShootdownStraggler, light_stall);
      inj.Enable(FaultSite::kAdvLockStall, light_stall);
      inj.Enable(FaultSite::kRwLockStall, light_stall);
      break;
    }
  }
}

struct ChaosParam {
  Protocol protocol;
  ChaosSchedule schedule;
  // Gathered shootdowns must hold the invariants under every TLB policy —
  // LATR in particular, where a batch's dead frames sit in a deferred entry
  // until the last lazy ack (exactly the window the leak checker watches).
  TlbPolicy tlb_policy = TlbPolicy::kEarlyAck;
  // Huge axis: the space faults in 2 MiB leaves where it can, so every
  // schedule also exercises order-9 allocation failure (fallback ladder),
  // boundary splits under munmap/mprotect, and huge-run reclamation.
  bool huge = false;
  // Fault-around axis: speculative neighbour mapping inside the fault
  // transaction, so refill failures also hit mid-speculation (the primary
  // fault already committed; the walk must simply end, leaking nothing).
  uint32_t fault_around = 0;
  // NUMA axis: workers stripe across the topology's nodes instead of packing
  // node 0, so allocation, rollback, and deferred reclamation all cross node
  // boundaries while faults are injected. The leak gate then also proves no
  // frame ended up on a foreign arena's free list (misplaced_home).
  bool numa = false;
};

class ChaosTest : public ::testing::TestWithParam<ChaosParam> {
 protected:
  void TearDown() override {
    FaultInjector::Instance().DisableAll();
    FaultInjector::Instance().ResetCounters();
  }
};

int ChaosThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw >= 4 ? 4 : 2;
}

// One worker's traffic: mmap a small region, fault it in, occasionally
// reprotect or fork, then unmap. Every operation is allowed to fail with
// kNoMem (that is the point); what is not allowed is a crash or a lost frame.
void ChaosWorker(VmSpace* space, int tid, CpuId cpu, int iters,
                 std::atomic<uint64_t>* successes) {
  BindThisThreadToCpu(cpu);
  FaultInjector::SeedThread(0x5eedull ^ static_cast<uint64_t>(tid));
  Rng rng(0xc4a05ull + static_cast<uint64_t>(tid));
  for (int i = 0; i < iters; ++i) {
    if (i % 16 == 0) {
      // Pre-scrub whatever spilled to the depot, injector permitting —
      // under the MagRefill schedule this aborts 20% of the time and the
      // frames must simply stay dirty.
      BuddyAllocator::Instance().ScrubBatch(64);
    }
    uint64_t pages = rng.Range(4, 17);  // 16 KiB .. 64 KiB.
    uint64_t len = pages << kPageBits;
    Result<Vaddr> va = space->MmapAnon(len, Perm::RW());
    if (!va.ok()) {
      continue;  // kNoMem: survived, try again.
    }
    successes->fetch_add(1, std::memory_order_relaxed);
    for (uint64_t p = 0; p < pages; ++p) {
      // kNoMem or kFault are acceptable; the page simply stays virtual.
      (void)space->HandleFault(*va + (p << kPageBits), Access::kWrite);
    }
    if (rng.Chance(1, 4)) {
      (void)space->Mprotect(*va, len, Perm::R());
      (void)space->Mprotect(*va, len, Perm::RW());
    }
    if (rng.Chance(1, 32)) {
      std::unique_ptr<VmSpace> child = space->Fork();
      if (child != nullptr) {
        // The child inherits the region COW; touch one page, then drop it.
        (void)child->HandleFault(*va, Access::kWrite);
      }
    }
    // Unmap in two halves half the time so boundary splits get exercised.
    if (pages >= 2 && rng.Chance(1, 2)) {
      uint64_t half = (pages / 2) << kPageBits;
      (void)space->Munmap(*va, half);
      (void)space->Munmap(*va + half, len - half);
    } else {
      (void)space->Munmap(*va, len);
    }
    // With the huge policy on, add 2 MiB traffic every few iterations: a
    // huge-aligned region faulted in as level-2 leaves, partially unmapped
    // (forcing a split), occasionally forked COW, then torn down.
    if (space->addr_space().options().huge_pages && rng.Chance(1, 8)) {
      Result<Vaddr> hva = space->MmapAnon(kHugePageSize, Perm::RW());
      if (hva.ok()) {
        successes->fetch_add(1, std::memory_order_relaxed);
        (void)space->HandleFault(*hva, Access::kWrite);
        (void)space->HandleFault(*hva + kHugePageSize / 2, Access::kRead);
        if (rng.Chance(1, 4)) {
          std::unique_ptr<VmSpace> child = space->Fork();
          if (child != nullptr) {
            (void)child->HandleFault(*hva, Access::kWrite);
          }
        }
        if (rng.Chance(1, 2)) {
          // Partial unmap splits the huge leaf; the rest dies separately.
          (void)space->Munmap(*hva, kHugePageSize / 4);
          (void)space->Munmap(*hva + kHugePageSize / 4,
                              kHugePageSize - kHugePageSize / 4);
        } else {
          (void)space->Munmap(*hva, kHugePageSize);
        }
      }
    }
  }
}

TEST_P(ChaosTest, InvariantsHoldUnderFaultInjection) {
  // Quiesce and snapshot the allocator before anything is created.
  TlbSystem::Instance().DrainAll();
  Rcu::Instance().DrainAll();
  BuddyAllocator::Instance().FlushCpuCaches();
  uint64_t baseline_free = BuddyAllocator::Instance().FreeFrameCount();

  {
    AddrSpace::Options options;
    options.protocol = GetParam().protocol;
    options.tlb_policy = GetParam().tlb_policy;
    options.huge_pages = GetParam().huge;
    options.fault_around_pages = GetParam().fault_around;
    auto space = std::make_unique<VmSpace>(options);

    ArmSchedule(GetParam().schedule);
    int threads = ChaosThreads();
    constexpr int kIters = 300;
    std::atomic<uint64_t> successes{0};
    const NodeTopology& topo = NodeTopology::Instance();
    const uint64_t local_before = GlobalStats().Total(Counter::kNumaLocalAllocs);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      // The numa axis stripes workers round-robin across nodes; the default
      // packs node 0 (the historical flat binding).
      CpuId cpu = GetParam().numa
                      ? topo.FirstCpuOfNode(t % topo.nodes()) + t / topo.nodes()
                      : static_cast<CpuId>(t);
      workers.emplace_back(ChaosWorker, space.get(), t, cpu, kIters, &successes);
    }
    for (std::thread& w : workers) {
      w.join();
    }
    FaultInjector::Instance().DisableAll();

    // The run must have made progress and (for kNoMem schedules) actually
    // exercised the failure paths.
    EXPECT_GT(successes.load(), 0u);
    if (InjectsNoMem(GetParam().schedule)) {
      EXPECT_GT(FaultInjector::Instance().TotalInjected(), 0u)
          << FaultInjector::Instance().DumpJson();
    }
    if (GetParam().numa && topo.nodes() >= 2) {
      // Striped workers must have routed allocations through the NUMA router
      // on more than one node — otherwise this axis tested nothing.
      EXPECT_GT(GlobalStats().Total(Counter::kNumaLocalAllocs), local_before);
    }

    // Quiesced structural check: the tree survived the chaos intact.
    WfReport report = CheckWellFormed(space->addr_space());
    EXPECT_TRUE(report.ok) << report.first_error;
  }

  // Every frame allocated during the run was either freed by an unmap or by
  // the space's destruction; a botched rollback shows up as a shortfall here.
  // misplaced_home (folded into leaks.ok) additionally proves every freed
  // frame went back to its home node's arena — the cross-node leak the numa
  // axis exists to catch.
  LeakReport leaks = CheckFrameLeaks(baseline_free);
  EXPECT_TRUE(leaks.ok) << "leaked " << leaks.leaked << " frames (baseline "
                        << leaks.baseline_free << ", now " << leaks.current_free
                        << "), " << leaks.misplaced_home
                        << " free frames on a foreign node's arena";
}

// Ring chaos: batches drain through the flat combiner while the injector
// forces allocator exhaustion and lock stalls mid-drain. The contract under
// fire: every submitted op reaps exactly one completion, in per-CPU
// submission order, with a definite Status (kOk or a real error — never a
// lost completion); and when the facade dies, no frame leaks.
class RingChaosTest : public ::testing::TestWithParam<Protocol> {
 protected:
  void TearDown() override {
    FaultInjector::Instance().DisableAll();
    FaultInjector::Instance().ResetCounters();
  }
};

TEST_P(RingChaosTest, EveryRingOpGetsADefiniteStatusUnderInjection) {
  TlbSystem::Instance().DrainAll();
  Rcu::Instance().DrainAll();
  BuddyAllocator::Instance().FlushCpuCaches();
  uint64_t baseline_free = BuddyAllocator::Instance().FreeFrameCount();

  {
    AddrSpace::Options options;
    options.protocol = GetParam();
    CortenVm mm(options);

    ArmSchedule(ChaosSchedule::kMixed);
    int threads = ChaosThreads();
    constexpr int kRounds = 60;
    std::atomic<uint64_t> completed_ok{0};
    std::atomic<bool> contract_broken{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        BindThisThreadToCpu(t);
        FaultInjector::SeedThread(0x5eedull ^ static_cast<uint64_t>(t));
        Rng rng(0xc4a05ull + static_cast<uint64_t>(t));
        const Vaddr base = (200ull + static_cast<uint64_t>(t)) << 30;
        for (int round = 0; round < kRounds; ++round) {
          uint64_t cookie = 0;
          auto submit = [&](MmSqe sqe) {
            sqe.user_data = cookie;
            if (mm.Submit(sqe)) {
              ++cookie;
            }
          };
          uint64_t regions = rng.Range(2, 7);
          for (uint64_t i = 0; i < regions; ++i) {
            Vaddr va = base + i * 8 * kPageSize;
            MmSqe map;
            map.op = MmOpCode::kMmapAnonFixed;
            map.va = va;
            map.len = 4 * kPageSize;
            map.perm = Perm::RW();
            submit(map);
            MmSqe fault;
            fault.op = MmOpCode::kFault;
            fault.va = va + (rng.Below(4) << kPageBits);
            fault.access = Access::kWrite;
            submit(fault);
            if (rng.Chance(1, 3)) {
              MmSqe prot;
              prot.op = MmOpCode::kMprotect;
              prot.va = va;
              prot.len = 4 * kPageSize;
              prot.perm = Perm::R();
              submit(prot);
            }
            MmSqe unmap;
            unmap.op = MmOpCode::kMunmap;
            unmap.va = va;
            unmap.len = 4 * kPageSize;
            submit(unmap);
          }
          mm.DrainBarrier();
          // Every accepted op must complete — in order, exactly once.
          MmCqe cqe;
          for (uint64_t expect = 0; expect < cookie; ++expect) {
            if (!mm.Reap(&cqe) || cqe.user_data != expect) {
              contract_broken.store(true);
              return;
            }
            if (cqe.err == ErrCode::kOk) {
              completed_ok.fetch_add(1, std::memory_order_relaxed);
            }
          }
          if (mm.Reap(&cqe)) {  // No phantom completions either.
            contract_broken.store(true);
            return;
          }
        }
      });
    }
    for (std::thread& w : workers) {
      w.join();
    }
    FaultInjector::Instance().DisableAll();

    EXPECT_FALSE(contract_broken.load());
    EXPECT_GT(completed_ok.load(), 0u);
    EXPECT_GT(FaultInjector::Instance().TotalInjected(), 0u)
        << FaultInjector::Instance().DumpJson();

    WfReport report = CheckWellFormed(mm.vm().addr_space());
    EXPECT_TRUE(report.ok) << report.first_error;
  }

  LeakReport leaks = CheckFrameLeaks(baseline_free);
  EXPECT_TRUE(leaks.ok) << "leaked " << leaks.leaked << " frames (baseline "
                        << leaks.baseline_free << ", now " << leaks.current_free << ")";
}

INSTANTIATE_TEST_SUITE_P(Protocols, RingChaosTest,
                         ::testing::Values(Protocol::kAdv, Protocol::kRw),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return info.param == Protocol::kAdv ? "cortenmm_adv"
                                                               : "cortenmm_rw";
                         });

INSTANTIATE_TEST_SUITE_P(
    Protocols, ChaosTest,
    ::testing::Values(ChaosParam{Protocol::kAdv, ChaosSchedule::kNoMem},
                      ChaosParam{Protocol::kAdv, ChaosSchedule::kNoMemBurst},
                      ChaosParam{Protocol::kAdv, ChaosSchedule::kStraggler},
                      ChaosParam{Protocol::kAdv, ChaosSchedule::kLockStall},
                      ChaosParam{Protocol::kAdv, ChaosSchedule::kMixed},
                      ChaosParam{Protocol::kRw, ChaosSchedule::kNoMem},
                      ChaosParam{Protocol::kRw, ChaosSchedule::kStraggler},
                      ChaosParam{Protocol::kRw, ChaosSchedule::kLockStall},
                      ChaosParam{Protocol::kRw, ChaosSchedule::kMixed},
                      // Straggler chaos under the remaining TLB policies, so
                      // the gather + deferred reclamation path is stressed
                      // under all three (kEarlyAck is the default above).
                      ChaosParam{Protocol::kAdv, ChaosSchedule::kStraggler,
                                 TlbPolicy::kSync},
                      ChaosParam{Protocol::kAdv, ChaosSchedule::kStraggler,
                                 TlbPolicy::kLatr},
                      ChaosParam{Protocol::kRw, ChaosSchedule::kStraggler,
                                 TlbPolicy::kLatr},
                      ChaosParam{Protocol::kAdv, ChaosSchedule::kMixed,
                                 TlbPolicy::kLatr},
                      // Huge axis: order-9 fault-in + fallback + splits under
                      // each failure family, both protocols.
                      ChaosParam{Protocol::kAdv, ChaosSchedule::kNoMem,
                                 TlbPolicy::kEarlyAck, /*huge=*/true},
                      ChaosParam{Protocol::kAdv, ChaosSchedule::kMixed,
                                 TlbPolicy::kLatr, /*huge=*/true},
                      ChaosParam{Protocol::kRw, ChaosSchedule::kNoMem,
                                 TlbPolicy::kEarlyAck, /*huge=*/true},
                      ChaosParam{Protocol::kRw, ChaosSchedule::kStraggler,
                                 TlbPolicy::kSync, /*huge=*/true},
                      // Magazine-refill / pre-scrub failures, with and
                      // without fault-around speculation in the window.
                      ChaosParam{Protocol::kAdv, ChaosSchedule::kMagRefill},
                      ChaosParam{Protocol::kRw, ChaosSchedule::kMagRefill},
                      ChaosParam{Protocol::kAdv, ChaosSchedule::kMagRefill,
                                 TlbPolicy::kEarlyAck, /*huge=*/false,
                                 /*fault_around=*/16},
                      ChaosParam{Protocol::kAdv, ChaosSchedule::kMixed,
                                 TlbPolicy::kEarlyAck, /*huge=*/false,
                                 /*fault_around=*/16},
                      // NUMA axis: striped workers, so rollbacks and deferred
                      // frees cross node boundaries under each failure family
                      // and the misplaced_home gate has something to bite on.
                      ChaosParam{Protocol::kAdv, ChaosSchedule::kNoMem,
                                 TlbPolicy::kEarlyAck, /*huge=*/false,
                                 /*fault_around=*/0, /*numa=*/true},
                      ChaosParam{Protocol::kRw, ChaosSchedule::kNoMem,
                                 TlbPolicy::kEarlyAck, /*huge=*/false,
                                 /*fault_around=*/0, /*numa=*/true},
                      ChaosParam{Protocol::kAdv, ChaosSchedule::kMagRefill,
                                 TlbPolicy::kEarlyAck, /*huge=*/false,
                                 /*fault_around=*/0, /*numa=*/true},
                      ChaosParam{Protocol::kAdv, ChaosSchedule::kMixed,
                                 TlbPolicy::kLatr, /*huge=*/true,
                                 /*fault_around=*/0, /*numa=*/true}),
    [](const ::testing::TestParamInfo<ChaosParam>& info) {
      std::string name = std::string(ProtocolName(info.param.protocol)) + "_" +
                         ScheduleName(info.param.schedule) + "_" +
                         TlbPolicyName(info.param.tlb_policy) +
                         (info.param.huge ? "_Huge" : "") +
                         (info.param.fault_around != 0 ? "_Around" : "") +
                         (info.param.numa ? "_Numa" : "");
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

#else  // !CORTENMM_FAULTINJ

TEST(ChaosTest, CompiledOut) {
  GTEST_SKIP() << "built with -DCORTENMM_FAULTINJ=OFF";
}

#endif  // CORTENMM_FAULTINJ

}  // namespace
}  // namespace cortenmm
