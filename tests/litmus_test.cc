// Weak-memory litmus suite (ctest label: litmus): explores the bounded
// models of the production primitive pairs under MemModel::kSC and
// MemModel::kTSO. The kAsWritten models mirror src/sync, src/ring, src/tlb
// and src/pmm annotation-for-annotation and must pass under both models; the
// broken variants pin the counterexamples the checker finds when an ordering
// ingredient is removed. BravoRevoke.NoFence is the regression for the
// TSO-reachable production bug this suite caught (src/sync/bravo.cc missing
// the StoreLoad fence between bias revocation and the reader-table scan).
#include <gtest/gtest.h>

#include <cstdio>

#include "src/common/stats.h"
#include "src/verif/litmus_model.h"
#include "src/verif/model.h"

namespace cortenmm {
namespace {

constexpr uint64_t kMaxStates = 50'000'000;

// One line per model so a failing CI run shows the state-space shape at a
// glance: states explored under each memory model and how many interleavings
// only the store buffer can reach.
void PrintSummary(const MemProgModel& model, const MemModelComparison& cmp) {
  std::printf("[litmus] %s: sc_states=%llu tso_states=%llu tso_only=%llu\n",
              model.name(),
              static_cast<unsigned long long>(cmp.sc.states_explored),
              static_cast<unsigned long long>(cmp.tso.states_explored),
              static_cast<unsigned long long>(cmp.tso_only_states));
}

ModelCheckResult RunUnder(MemProgModel& model, MemModel mem_model) {
  model.SetMemModel(mem_model);
  ModelCheckResult result = ModelChecker::Run(model, kMaxStates);
  std::printf("[litmus] %s/%s: states=%llu ok=%d %s\n", model.name(),
              MemModelName(mem_model),
              static_cast<unsigned long long>(result.states_explored),
              result.ok ? 1 : 0, result.ok ? "" : result.violation.c_str());
  return result;
}

// --- Classic sanity: the TSO semantics itself --------------------------------

TEST(ClassicLitmusTest, StoreBufferingReachableUnderTsoOnly) {
  auto model = MakeSbLitmus(/*fenced=*/false);
  EXPECT_TRUE(RunUnder(*model, MemModel::kSC).ok)
      << "SB r1==r2==0 must be unreachable under SC";
  ModelCheckResult tso = RunUnder(*model, MemModel::kTSO);
  EXPECT_FALSE(tso.ok) << "SB r1==r2==0 must be reachable under TSO";
  EXPECT_NE(tso.violation.find("SB outcome"), std::string::npos) << tso.violation;
}

TEST(ClassicLitmusTest, StoreBufferingForbiddenWithFence) {
  auto model = MakeSbLitmus(/*fenced=*/true);
  EXPECT_TRUE(RunUnder(*model, MemModel::kSC).ok);
  EXPECT_TRUE(RunUnder(*model, MemModel::kTSO).ok)
      << "the seq_cst fence must drain the buffer before the load";
}

TEST(ClassicLitmusTest, MessagePassingForbiddenUnderBoth) {
  auto model = MakeMpLitmus();
  EXPECT_TRUE(RunUnder(*model, MemModel::kSC).ok);
  EXPECT_TRUE(RunUnder(*model, MemModel::kTSO).ok)
      << "the FIFO buffer must commit data before flag";
}

TEST(ClassicLitmusTest, LoadBufferingForbiddenUnderBoth) {
  auto model = MakeLbLitmus();
  EXPECT_TRUE(RunUnder(*model, MemModel::kSC).ok);
  EXPECT_TRUE(RunUnder(*model, MemModel::kTSO).ok)
      << "TSO never delays a load past a later store";
}

TEST(ClassicLitmusTest, TsoOnlyStatesCountedAndReported) {
  GlobalStats().Reset();
  auto model = MakeSbLitmus(/*fenced=*/true);
  MemModelComparison cmp = CompareMemModels(*model, kMaxStates);
  PrintSummary(*model, cmp);
  ASSERT_TRUE(cmp.sc.ok) << cmp.sc.violation;
  ASSERT_TRUE(cmp.tso.ok) << cmp.tso.violation;
  // Even fenced, the pre-fence buffered store is a state SC cannot reach.
  EXPECT_GT(cmp.tso_only_states, 0u);
  EXPECT_GE(cmp.tso.states_explored, cmp.sc.states_explored);
  EXPECT_GE(GlobalStats().Total(Counter::kLitmusTsoOnlyStates), cmp.tso_only_states);
}

// --- Production primitives, as written: must pass under TSO ------------------

class AsWrittenLitmusTest : public ::testing::Test {
 protected:
  void ExpectPassesBothModels(MemProgModel& model) {
    MemModelComparison cmp = CompareMemModels(model, kMaxStates);
    PrintSummary(model, cmp);
    EXPECT_TRUE(cmp.sc.ok) << model.name() << " under SC: " << cmp.sc.violation
                           << cmp.sc.deadlock_state;
    EXPECT_TRUE(cmp.tso.ok) << model.name() << " under TSO: " << cmp.tso.violation
                            << cmp.tso.deadlock_state;
    // The store buffer only ever ADDS interleavings.
    EXPECT_GE(cmp.tso.states_explored, cmp.sc.states_explored) << model.name();
    EXPECT_GT(cmp.sc.final_states, 0u) << model.name();
    EXPECT_GT(cmp.tso.final_states, 0u) << model.name();
  }
};

TEST_F(AsWrittenLitmusTest, SeqCountPublish) {
  auto model = MakeSeqCountLitmus(SeqCountVariant::kAsWritten);
  ExpectPassesBothModels(*model);
}

TEST_F(AsWrittenLitmusTest, McsHandoff) {
  auto model = MakeMcsHandoffLitmus(McsVariant::kAsWritten);
  ExpectPassesBothModels(*model);
}

TEST_F(AsWrittenLitmusTest, LatrGatherTick) {
  auto model = MakeLatrLitmus(LatrVariant::kAsWritten);
  ExpectPassesBothModels(*model);
}

TEST_F(AsWrittenLitmusTest, RingPublish) {
  auto model = MakeRingPublishLitmus(RingVariant::kAsWritten);
  ExpectPassesBothModels(*model);
}

TEST_F(AsWrittenLitmusTest, PrezeroPublish) {
  auto model = MakePrezeroLitmus(PrezeroVariant::kAsWritten);
  ExpectPassesBothModels(*model);
}

TEST_F(AsWrittenLitmusTest, BravoRevokeFenced) {
  auto model = MakeBravoRevokeLitmus(BravoVariant::kFenced);
  ExpectPassesBothModels(*model);
}

TEST_F(AsWrittenLitmusTest, CnaHandoffFenced) {
  auto model = MakeCnaHandoffLitmus(CnaVariant::kFenced);
  ExpectPassesBothModels(*model);
}

// --- Broken variants: the checker's teeth ------------------------------------
//
// Each demoted variant must be caught. All but Bravo are SC-reachable (the
// missing ingredient is atomicity or program order, not the store buffer);
// Bravo's is the TSO-only one.

TEST(BrokenVariantLitmusTest, SeqCountNonAtomicWriterIncrementTornRead) {
  auto model = MakeSeqCountLitmus(SeqCountVariant::kNonAtomicWriterIncrement);
  ModelCheckResult sc = RunUnder(*model, MemModel::kSC);
  EXPECT_FALSE(sc.ok) << "two load;add;store writers must produce a validated torn read";
  EXPECT_NE(sc.violation.find("torn"), std::string::npos) << sc.violation;
  EXPECT_FALSE(RunUnder(*model, MemModel::kTSO).ok);
}

TEST(BrokenVariantLitmusTest, McsNonAtomicTailSwapMutualExclusionLost) {
  auto model = MakeMcsHandoffLitmus(McsVariant::kNonAtomicTailSwap);
  ModelCheckResult sc = RunUnder(*model, MemModel::kSC);
  EXPECT_FALSE(sc.ok) << "load-then-store tail acquisition must admit both threads";
  EXPECT_FALSE(RunUnder(*model, MemModel::kTSO).ok);
}

TEST(BrokenVariantLitmusTest, LatrWithoutHasAckedReinvalidates) {
  auto model = MakeLatrLitmus(LatrVariant::kNoHasAckedCheck);
  ModelCheckResult sc = RunUnder(*model, MemModel::kSC);
  EXPECT_FALSE(sc.ok) << "a second tick must not flush an already-acked entry";
  EXPECT_NE(sc.violation.find("re-invalidated"), std::string::npos) << sc.violation;
  EXPECT_FALSE(RunUnder(*model, MemModel::kTSO).ok);
}

TEST(BrokenVariantLitmusTest, RingTailBeforeSlotTearsTheSqe) {
  auto model = MakeRingPublishLitmus(RingVariant::kTailBeforeSlot);
  EXPECT_FALSE(RunUnder(*model, MemModel::kSC).ok)
      << "advancing sq_tail before the slot write must expose a torn SQE";
  EXPECT_FALSE(RunUnder(*model, MemModel::kTSO).ok);
}

TEST(BrokenVariantLitmusTest, PrezeroFlagBeforeZeroHandsOutDirtyFrame) {
  auto model = MakePrezeroLitmus(PrezeroVariant::kFlagBeforeZero);
  EXPECT_FALSE(RunUnder(*model, MemModel::kSC).ok)
      << "raising `zeroed` before scrubbing must expose a dirty byte";
  EXPECT_FALSE(RunUnder(*model, MemModel::kTSO).ok);
}

// The production bug this PR fixes: without the StoreLoad fence, BRAVO's
// revocation is correct under SC but broken under TSO — exactly the class of
// bug the store-buffer mode exists to find.
TEST(BrokenVariantLitmusTest, BravoRevokeWithoutFenceFailsOnlyUnderTso) {
  auto model = MakeBravoRevokeLitmus(BravoVariant::kNoFence);
  EXPECT_TRUE(RunUnder(*model, MemModel::kSC).ok)
      << "the unfenced revocation is SC-correct — SC exploration must miss it";
  ModelCheckResult tso = RunUnder(*model, MemModel::kTSO);
  EXPECT_FALSE(tso.ok)
      << "the buffered rbias store must let a reader into the write section";
  EXPECT_NE(tso.violation.find("fast-path reader"), std::string::npos)
      << tso.violation;
}

// CNA's park/wake skip-notify is store-buffering on both sides: without the
// seq_cst fences the wakeup is lost only under TSO, never under SC — the same
// TSO-only class as the BRAVO revocation above.
TEST(BrokenVariantLitmusTest, CnaHandoffWithoutFenceFailsOnlyUnderTso) {
  auto model = MakeCnaHandoffLitmus(CnaVariant::kNoFence);
  EXPECT_TRUE(RunUnder(*model, MemModel::kSC).ok)
      << "the unfenced park/wake is SC-correct — SC exploration must miss it";
  ModelCheckResult tso = RunUnder(*model, MemModel::kTSO);
  EXPECT_FALSE(tso.ok)
      << "buffered parked/grant stores must let the notify be skipped";
  EXPECT_NE(tso.violation.find("lost wakeup"), std::string::npos)
      << tso.violation;
}

}  // namespace
}  // namespace cortenmm
