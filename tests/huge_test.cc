// End-to-end transparent-huge-page lifecycle tests at the VmSpace layer: a
// 2 MiB-aligned anonymous region faults in as one level-2 leaf, partial
// munmap splits it without disturbing bystander pages, fork COW-protects and
// then splits on first write, SwapOut forces a split down to the evicted
// base page, and ResidentPages stays exact through every transition. The
// Linux-VMA baseline's THP knob gets the same treatment so the fig13/fig14
// comparisons stay apples-to-apples.
#include <gtest/gtest.h>

#include <memory>

#include "src/baseline/linux_mm.h"
#include "src/common/stats.h"
#include "src/core/vm_space.h"
#include "src/fault/fault_inject.h"
#include "src/pmm/buddy.h"
#include "src/pmm/phys_mem.h"
#include "src/sim/corten_vm.h"
#include "src/sim/mmu.h"
#include "src/verif/wf_checker.h"

namespace cortenmm {
namespace {

AddrSpace::Options HugeOptions(Protocol protocol) {
  AddrSpace::Options options;
  options.protocol = protocol;
  options.huge_pages = true;
  return options;
}

uint64_t CounterNow(Counter c) { return GlobalStats().Total(c); }

class HugePageTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(HugePageTest, MmapAnonAlignsHugeRegions) {
  CortenVm mm(HugeOptions(GetParam()));
  Result<Vaddr> va = mm.MmapAnon(4 * kHugePageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  EXPECT_TRUE(IsAligned(*va, kHugePageSize));
  // Small regions keep base-page alignment; no need to burn 2 MiB slots.
  Result<Vaddr> small = mm.MmapAnon(4 * kPageSize, Perm::RW());
  ASSERT_TRUE(small.ok());
  EXPECT_TRUE(IsAligned(*small, kPageSize));
}

TEST_P(HugePageTest, FaultInstallsOneHugeLeaf) {
  CortenVm mm(HugeOptions(GetParam()));
  Result<Vaddr> va = mm.MmapAnon(kHugePageSize, Perm::RW());
  ASSERT_TRUE(va.ok());

  uint64_t faults = CounterNow(Counter::kPageFaults);
  uint64_t huge_faults = CounterNow(Counter::kHugeFaults);
  ASSERT_TRUE(MmuSim::TouchRange(mm, *va, kHugePageSize, /*write=*/true).ok());
  // One fault covered all 512 pages; every later touch hit the leaf.
  EXPECT_EQ(CounterNow(Counter::kPageFaults) - faults, 1u);
  EXPECT_EQ(CounterNow(Counter::kHugeFaults) - huge_faults, 1u);

  // The leaf reports level 2 and a naturally-aligned run.
  RCursor cursor = mm.vm().addr_space().Lock(VaRange(*va, *va + kHugePageSize));
  Status status = cursor.Query(*va + 5 * kPageSize);
  ASSERT_TRUE(status.mapped());
  EXPECT_EQ(status.level, 2);
  EXPECT_EQ(status.pfn % (1ull << kHugeOrder), 5u);
}

TEST_P(HugePageTest, ResidentPagesWeighsLeafLevel) {
  CortenVm mm(HugeOptions(GetParam()));
  Result<Vaddr> va = mm.MmapAnon(kHugePageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(mm.vm().ResidentPages(), 0u);
  ASSERT_TRUE(MmuSim::Write(mm, *va, 1).ok());
  EXPECT_EQ(mm.vm().ResidentPages(), 1ull << kHugeOrder);
}

TEST_P(HugePageTest, PartialMunmapSplitsAndBystandersSurvive) {
  CortenVm mm(HugeOptions(GetParam()));
  Result<Vaddr> va = mm.MmapAnon(kHugePageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  // Stamp every 64th page with a distinct value.
  for (uint64_t p = 0; p < (1ull << kHugeOrder); p += 64) {
    ASSERT_TRUE(MmuSim::Write(mm, *va + (p << kPageBits), 0xbeef00 + p).ok());
  }

  uint64_t splits = CounterNow(Counter::kHugeSplits);
  constexpr uint64_t kCutPages = 64;  // 256 KiB off the front.
  ASSERT_TRUE(mm.Munmap(*va, kCutPages << kPageBits).ok());
  EXPECT_GE(CounterNow(Counter::kHugeSplits) - splits, 1u);
  EXPECT_EQ(mm.vm().ResidentPages(), (1ull << kHugeOrder) - kCutPages);

  // Bystanders: still mapped (now via level-1 leaves), values intact.
  for (uint64_t p = kCutPages; p < (1ull << kHugeOrder); p += 64) {
    uint64_t value = 0;
    ASSERT_TRUE(MmuSim::Read(mm, *va + (p << kPageBits), &value).ok()) << p;
    EXPECT_EQ(value, 0xbeef00 + p) << p;
  }
  // The unmapped prefix faults as SEGV-free demand-zero (still inside the
  // original region? No — it was unmapped, so a touch must fault-fail).
  uint64_t probe = 0;
  EXPECT_FALSE(MmuSim::Read(mm, *va, &probe).ok());

  WfReport report = CheckWellFormed(mm.vm().addr_space());
  EXPECT_TRUE(report.ok) << report.first_error;
}

TEST_P(HugePageTest, ForkCowSplitsOnFirstWrite) {
  CortenVm mm(HugeOptions(GetParam()));
  Result<Vaddr> va = mm.MmapAnon(kHugePageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::Write(mm, *va, 41).ok());
  ASSERT_TRUE(MmuSim::Write(mm, *va + 7 * kPageSize, 43).ok());

  std::unique_ptr<VmSpace> child_vm = mm.vm().Fork();
  ASSERT_NE(child_vm, nullptr);
  CortenVm child(std::move(child_vm));

  // Child write to one base page: the huge COW leaf splits, one frame copies.
  ASSERT_TRUE(MmuSim::Write(child, *va, 141).ok());
  uint64_t value = 0;
  ASSERT_TRUE(MmuSim::Read(child, *va, &value).ok());
  EXPECT_EQ(value, 141u);
  // Parent unchanged, including the page adjacent to the copied one.
  ASSERT_TRUE(MmuSim::Read(mm, *va, &value).ok());
  EXPECT_EQ(value, 41u);
  ASSERT_TRUE(MmuSim::Read(mm, *va + 7 * kPageSize, &value).ok());
  EXPECT_EQ(value, 43u);
  // The still-shared page reads through in the child.
  ASSERT_TRUE(MmuSim::Read(child, *va + 7 * kPageSize, &value).ok());
  EXPECT_EQ(value, 43u);

  WfReport parent_report = CheckWellFormed(mm.vm().addr_space());
  EXPECT_TRUE(parent_report.ok) << parent_report.first_error;
  WfReport child_report = CheckWellFormed(child.vm().addr_space());
  EXPECT_TRUE(child_report.ok) << child_report.first_error;
}

TEST_P(HugePageTest, SwapOutForcesSplitAndSwapInRestores) {
  CortenVm mm(HugeOptions(GetParam()));
  Result<Vaddr> va = mm.MmapAnon(kHugePageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::Write(mm, *va + 3 * kPageSize, 0xabc).ok());

  uint64_t splits = CounterNow(Counter::kHugeSplits);
  Result<uint64_t> evicted = mm.vm().SwapOut(*va + 3 * kPageSize, kPageSize);
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ(*evicted, 1u);
  EXPECT_GE(CounterNow(Counter::kHugeSplits) - splits, 1u);
  EXPECT_EQ(mm.vm().ResidentPages(), (1ull << kHugeOrder) - 1);

  // Touch swaps the page back in with its contents.
  uint64_t value = 0;
  ASSERT_TRUE(MmuSim::Read(mm, *va + 3 * kPageSize, &value).ok());
  EXPECT_EQ(value, 0xabcu);
  EXPECT_EQ(mm.vm().ResidentPages(), 1ull << kHugeOrder);
}

#if CORTENMM_FAULTINJ
TEST_P(HugePageTest, AllocFailureFallsBackTo4K) {
  CortenVm mm(HugeOptions(GetParam()));
  Result<Vaddr> va = mm.MmapAnon(kHugePageSize, Perm::RW());
  ASSERT_TRUE(va.ok());

  FaultConfig always;
  always.prob_num = 100;
  always.prob_den = 100;
  FaultInjector::Instance().Enable(FaultSite::kBuddyAllocBlock, always);
  uint64_t fallbacks = CounterNow(Counter::kHugeFallbacks);
  VoidResult wrote = MmuSim::Write(mm, *va, 7);
  FaultInjector::Instance().DisableAll();
  FaultInjector::Instance().ResetCounters();

  ASSERT_TRUE(wrote.ok());
  EXPECT_GE(CounterNow(Counter::kHugeFallbacks) - fallbacks, 1u);
  // The fault resolved at 4 KiB: exactly one base page is resident.
  EXPECT_EQ(mm.vm().ResidentPages(), 1u);
  RCursor cursor = mm.vm().addr_space().Lock(VaRange(*va, *va + kPageSize));
  Status status = cursor.Query(*va);
  ASSERT_TRUE(status.mapped());
  EXPECT_EQ(status.level, 1);
}
#endif  // CORTENMM_FAULTINJ

INSTANTIATE_TEST_SUITE_P(Protocols, HugePageTest,
                         ::testing::Values(Protocol::kAdv, Protocol::kRw),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           std::string name = ProtocolName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Linux-VMA baseline THP knob
// ---------------------------------------------------------------------------

TEST(LinuxHugeTest, FaultInstallsHugeLeafAndPartialMunmapSplits) {
  LinuxVmaMm::Options options;
  options.huge = true;
  LinuxVmaMm mm(options);

  Result<Vaddr> va = mm.MmapAnon(kHugePageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  uint64_t faults = CounterNow(Counter::kPageFaults);
  uint64_t huge_faults = CounterNow(Counter::kHugeFaults);
  ASSERT_TRUE(MmuSim::TouchRange(mm, *va, kHugePageSize, /*write=*/true).ok());
  EXPECT_EQ(CounterNow(Counter::kPageFaults) - faults, 1u);
  EXPECT_EQ(CounterNow(Counter::kHugeFaults) - huge_faults, 1u);

  ASSERT_TRUE(MmuSim::Write(mm, *va + 100 * kPageSize, 0x5151).ok());
  uint64_t splits = CounterNow(Counter::kHugeSplits);
  ASSERT_TRUE(mm.Munmap(*va, 16 * kPageSize).ok());
  EXPECT_GE(CounterNow(Counter::kHugeSplits) - splits, 1u);
  // Bystander survives the split with its value.
  uint64_t value = 0;
  ASSERT_TRUE(MmuSim::Read(mm, *va + 100 * kPageSize, &value).ok());
  EXPECT_EQ(value, 0x5151u);
  uint64_t probe = 0;
  EXPECT_FALSE(MmuSim::Read(mm, *va, &probe).ok());
}

TEST(LinuxHugeTest, ForkSplitsHugeLeavesAndCowWorks) {
  LinuxVmaMm::Options options;
  options.huge = true;
  auto mm = std::make_unique<LinuxVmaMm>(options);

  Result<Vaddr> va = mm->MmapAnon(kHugePageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(MmuSim::Write(*mm, *va, 99).ok());

  uint64_t splits = CounterNow(Counter::kHugeSplits);
  std::unique_ptr<MmInterface> child = mm->Fork();
  ASSERT_NE(child, nullptr);
  // Pre-THP fork: the huge leaf split so the COW demotion stays 4 KiB.
  EXPECT_GE(CounterNow(Counter::kHugeSplits) - splits, 1u);

  ASSERT_TRUE(MmuSim::Write(*child, *va, 199).ok());
  uint64_t value = 0;
  ASSERT_TRUE(MmuSim::Read(*child, *va, &value).ok());
  EXPECT_EQ(value, 199u);
  ASSERT_TRUE(MmuSim::Read(*mm, *va, &value).ok());
  EXPECT_EQ(value, 99u);
}

TEST(LinuxHugeTest, HugeOffStays4K) {
  LinuxVmaMm mm;  // Default options: huge off.
  Result<Vaddr> va = mm.MmapAnon(kHugePageSize, Perm::RW());
  ASSERT_TRUE(va.ok());
  uint64_t huge_faults = CounterNow(Counter::kHugeFaults);
  uint64_t faults = CounterNow(Counter::kPageFaults);
  ASSERT_TRUE(MmuSim::TouchRange(mm, *va, kHugePageSize, /*write=*/true).ok());
  EXPECT_EQ(CounterNow(Counter::kHugeFaults) - huge_faults, 0u);
  EXPECT_EQ(CounterNow(Counter::kPageFaults) - faults, 1ull << kHugeOrder);
}

}  // namespace
}  // namespace cortenmm
