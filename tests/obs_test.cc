// Unit tests of the observability layer: histogram bucketing and merging,
// percentile math, trace-ring wraparound accounting, name tables, and the
// telemetry-off no-op surface.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/stats.h"
#include "src/obs/telemetry.h"

namespace cortenmm {
namespace {

#if CORTENMM_TELEMETRY

TEST(LatencyHistogramTest, BucketBoundaries) {
  // Log-linear buckets: values below kLatencySubBuckets are exact, above
  // that each power-of-two octave splits into kLatencySubBuckets linear
  // sub-buckets (12.5% relative resolution).
  EXPECT_EQ(LatencyHistogram::BucketFor(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketFor(1), 1);
  EXPECT_EQ(LatencyHistogram::BucketFor(7), 7);
  EXPECT_EQ(LatencyHistogram::BucketFor(8), 8);
  EXPECT_EQ(LatencyHistogram::BucketFor(15), 15);
  // [16, 18) share the first sub-bucket of the 2^4 octave.
  EXPECT_EQ(LatencyHistogram::BucketFor(16), 16);
  EXPECT_EQ(LatencyHistogram::BucketFor(17), 16);
  EXPECT_EQ(LatencyHistogram::BucketFor(18), 17);
  // The 2^9 octave ends at bucket 63; 1024 starts a new octave.
  EXPECT_EQ(LatencyHistogram::BucketFor(1023), 63);
  EXPECT_EQ(LatencyHistogram::BucketFor(1024), 64);
  EXPECT_EQ(LatencyHistogram::BucketFor(1151), 64);
  EXPECT_EQ(LatencyHistogram::BucketFor(1152), 65);
  // The top bucket absorbs everything beyond 2^47.
  EXPECT_EQ(LatencyHistogram::BucketFor(~0ull), LatencyHistogram::kBuckets - 1);
  EXPECT_EQ(LatencyHistogram::BucketLowerBound(10), 10u);
  EXPECT_EQ(LatencyHistogram::BucketLowerBound(64), 1024u);
  EXPECT_EQ(LatencyHistogram::BucketLowerBound(65), 1152u);
  // Round-trip: every bucket's lower bound maps back to that bucket.
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    EXPECT_EQ(LatencyHistogram::BucketFor(LatencyHistogram::BucketLowerBound(b)), b);
  }
}

TEST(LatencyHistogramTest, RecordAccumulates) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(5);
  h.Record(5);
  h.Record(1000);
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_EQ(h.SumNanos(), 1010u);
  EXPECT_EQ(h.MaxNanos(), 1000u);
  EXPECT_EQ(h.BucketCount(LatencyHistogram::BucketFor(5)), 2u);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.MaxNanos(), 0u);
}

TEST(LatencyHistogramTest, SnapshotMergesMultipleHistograms) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(10);
  a.Record(100);
  b.Record(10);
  b.Record(5000);

  HistogramSnapshot merged;
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.TotalCount(), 4u);
  EXPECT_EQ(merged.sum_ns, 10u + 100u + 10u + 5000u);
  EXPECT_EQ(merged.max_ns, 5000u);
  EXPECT_EQ(merged.counts[LatencyHistogram::BucketFor(10)], 2u);
}

TEST(LatencyHistogramTest, PercentileMath) {
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(0.5), 0u);  // Empty histogram.

  // 100 samples in the [64, 128) bucket: every percentile interpolates
  // within that bucket, so the result is bounded by it.
  for (int i = 0; i < 100; ++i) {
    h.Record(64);
  }
  uint64_t p50 = h.Percentile(0.5);
  EXPECT_GE(p50, 64u);
  EXPECT_LT(p50, 128u);
  EXPECT_LE(h.Percentile(0.10), p50);
  EXPECT_LE(p50, h.Percentile(0.99));

  // Add one huge outlier: p50 stays in the small bucket, the max percentile
  // (rank 101 of 101) lands in the outlier's bucket.
  h.Record(1u << 20);
  EXPECT_LT(h.Percentile(0.5), 128u);
  EXPECT_GE(h.Percentile(1.0), 1u << 20);
}

TEST(LatencyHistogramTest, PercentileInterpolatesWithinBucket) {
  LatencyHistogram h;
  // Two buckets: 10 samples in [4,8), 10 in [8,16).
  for (int i = 0; i < 10; ++i) {
    h.Record(4);
    h.Record(8);
  }
  // p25 must land in the first bucket, p75 in the second.
  EXPECT_LT(h.Percentile(0.25), 8u);
  EXPECT_GE(h.Percentile(0.75), 8u);
  EXPECT_LT(h.Percentile(0.75), 16u);
}

TEST(TraceRingTest, RecordsAndMergesSorted) {
  // A TraceRing embeds every CPU's ring (several MB) — heap-allocate it, as
  // Telemetry::Instance() does.
  auto ring_storage = std::make_unique<TraceRing>();
  TraceRing& ring = *ring_storage;
  ring.Record(TraceKind::kAcquireEnd, 1, 2);
  ring.Record(TraceKind::kShootdown, 3, 4);
  EXPECT_EQ(ring.Recorded(), 2u);
  EXPECT_EQ(ring.Dropped(), 0u);

  std::vector<TraceEvent> events = ring.MergeSorted();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LE(events[0].ns, events[1].ns);
  EXPECT_EQ(events[0].kind, TraceKind::kAcquireEnd);
  EXPECT_EQ(events[0].arg0, 1u);
  EXPECT_EQ(events[1].kind, TraceKind::kShootdown);
  EXPECT_EQ(events[1].arg1, 4u);

  ring.Reset();
  EXPECT_EQ(ring.Recorded(), 0u);
  EXPECT_TRUE(ring.MergeSorted().empty());
}

TEST(TraceRingTest, WraparoundOverwritesOldestAndCountsDrops) {
  auto ring_storage = std::make_unique<TraceRing>();
  TraceRing& ring = *ring_storage;
  // All events land on this thread's CPU slot, so overflowing kCapacity
  // overwrites the oldest events of that slot.
  const uint64_t total = TraceRing::kCapacity + 100;
  for (uint64_t i = 0; i < total; ++i) {
    ring.Record(TraceKind::kAcquireRetry, i, 0);
  }
  EXPECT_EQ(ring.Recorded(), total);
  EXPECT_EQ(ring.Dropped(), 100u);

  std::vector<TraceEvent> events = ring.MergeSorted();
  EXPECT_EQ(events.size(), TraceRing::kCapacity);
  // The survivors are the newest kCapacity events: 100 .. total-1.
  uint64_t min_arg = ~0ull;
  for (const TraceEvent& e : events) {
    min_arg = std::min(min_arg, e.arg0);
  }
  EXPECT_EQ(min_arg, 100u);
}

TEST(TraceRingTest, CapacityIsConfigurable) {
  auto ring_storage = std::make_unique<TraceRing>();
  TraceRing& ring = *ring_storage;
  EXPECT_EQ(ring.Capacity(), TraceRing::kCapacity);

  // Shrink: a quiescent resize frees the buffers; the next Record allocates
  // at the new size, and overflow is measured against it.
  constexpr uint64_t kSmall = 256;
  ring.SetCapacity(kSmall);
  EXPECT_EQ(ring.Capacity(), kSmall);
  const uint64_t total = kSmall + 100;
  for (uint64_t i = 0; i < total; ++i) {
    ring.Record(TraceKind::kAcquireRetry, i, 0);
  }
  EXPECT_EQ(ring.Recorded(), total);
  EXPECT_EQ(ring.Dropped(), 100u);
  EXPECT_EQ(ring.MergeSorted().size(), kSmall);

  // Grow: the same event count now fits with zero drops.
  ring.SetCapacity(2 * total);
  for (uint64_t i = 0; i < total; ++i) {
    ring.Record(TraceKind::kAcquireRetry, i, 0);
  }
  EXPECT_EQ(ring.Dropped(), 0u);
  EXPECT_EQ(ring.MergeSorted().size(), total);

  // Values are clamped to at least one slot.
  ring.SetCapacity(0);
  EXPECT_GE(ring.Capacity(), 1u);
}

TEST(TelemetryTest, RecordAndMergeAcrossThreads) {
  Telemetry& t = Telemetry::Instance();
  t.Reset();
  t.RecordOp(MmOp::kMmap, 100);
  std::thread other([&] { t.RecordOp(MmOp::kMmap, 300); });
  other.join();

  HistogramSnapshot merged = t.MergedOp(MmOp::kMmap);
  EXPECT_EQ(merged.TotalCount(), 2u);
  EXPECT_EQ(merged.sum_ns, 400u);

  t.RecordPhase(LockPhase::kMcsAcquire, 50);
  EXPECT_EQ(t.MergedPhase(LockPhase::kMcsAcquire).TotalCount(), 1u);

  t.Reset();
  EXPECT_EQ(t.MergedOp(MmOp::kMmap).TotalCount(), 0u);
  EXPECT_EQ(t.MergedPhase(LockPhase::kMcsAcquire).TotalCount(), 0u);
}

TEST(TelemetryTest, DumpJsonContainsRecordedSections) {
  Telemetry& t = Telemetry::Instance();
  t.Reset();
  t.RecordOp(MmOp::kMunmap, 123);
  t.RecordPhase(LockPhase::kShootdownWait, 77);
  t.Trace(TraceKind::kShootdown, 8, 2);

  std::string json = t.DumpJson("unit");
  EXPECT_NE(json.find("\"label\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"munmap\""), std::string::npos);
  EXPECT_NE(json.find("\"shootdown_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"p50_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":1"), std::string::npos);
  // Empty histograms are omitted.
  EXPECT_EQ(json.find("\"fork\""), std::string::npos);
  t.Reset();
}

TEST(TelemetryTest, ScopedTimersRecordOncePerOutermostEntry) {
  Telemetry& t = Telemetry::Instance();
  t.Reset();
  {
    ScopedOpTimer outer(MmOp::kMmap);
    // Nested facade delegation (MmapAnon -> fixed-placement helper) must not
    // double-count the entry.
    ScopedOpTimer inner(MmOp::kMmap);
  }
  EXPECT_EQ(t.MergedOp(MmOp::kMmap).TotalCount(), 1u);
  {
    ScopedPhaseTimer phase(LockPhase::kRwDescent);
  }
  EXPECT_EQ(t.MergedPhase(LockPhase::kRwDescent).TotalCount(), 1u);
  t.Reset();
}

TEST(TelemetryClockTest, MonotonicNonZeroProgress) {
  uint64_t a = TelemetryNowNanos();
  uint64_t b = TelemetryNowNanos();
  EXPECT_LE(a, b);
}

#else  // !CORTENMM_TELEMETRY

TEST(TelemetryDisabledTest, EverythingIsANoOp) {
  Telemetry& t = Telemetry::Instance();
  t.RecordOp(MmOp::kMmap, 100);
  t.RecordPhase(LockPhase::kMcsAcquire, 50);
  t.Trace(TraceKind::kAcquireEnd, 1, 2);
  EXPECT_EQ(t.MergedOp(MmOp::kMmap).TotalCount(), 0u);
  EXPECT_EQ(t.MergedPhase(LockPhase::kMcsAcquire).TotalCount(), 0u);
  EXPECT_EQ(t.trace().Recorded(), 0u);
  EXPECT_EQ(t.DumpJson("x"), "{}");
  {
    ScopedOpTimer op(MmOp::kMmap);
    ScopedPhaseTimer phase(LockPhase::kRwDescent);
  }
  EXPECT_EQ(t.MergedOp(MmOp::kMmap).TotalCount(), 0u);
}

#endif  // CORTENMM_TELEMETRY

TEST(NameTableTest, EveryMmOpHasAName) {
  for (int i = 0; i < static_cast<int>(MmOp::kCount); ++i) {
    const char* name = MmOpName(static_cast<MmOp>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u) << "MmOp " << i;
  }
}

TEST(NameTableTest, EveryLockPhaseHasAName) {
  for (int i = 0; i < static_cast<int>(LockPhase::kCount); ++i) {
    const char* name = LockPhaseName(static_cast<LockPhase>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u) << "LockPhase " << i;
  }
}

TEST(NameTableTest, EveryTraceKindHasAName) {
  for (int i = 0; i < static_cast<int>(TraceKind::kCount); ++i) {
    const char* name = TraceKindName(static_cast<TraceKind>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u) << "TraceKind " << i;
  }
}

TEST(NameTableTest, EveryCounterHasADistinctName) {
  std::vector<std::string> seen;
  for (int i = 0; i < static_cast<int>(Counter::kCount); ++i) {
    const char* name = CounterName(static_cast<Counter>(i));
    ASSERT_NE(name, nullptr);
    std::string s(name);
    EXPECT_GT(s.size(), 0u) << "Counter " << i;
    for (const std::string& prev : seen) {
      EXPECT_NE(prev, s) << "duplicate counter name at " << i;
    }
    seen.push_back(s);
  }
}

TEST(StatsDomainTest, TotalSumsEverySlot) {
  StatsDomain stats;
  stats.Add(Counter::kPageFaults, 3);
  std::thread other([&] { stats.Add(Counter::kPageFaults, 4); });
  other.join();
  EXPECT_EQ(stats.Total(Counter::kPageFaults), 7u);
  std::string report = stats.Report();
  EXPECT_NE(report.find(CounterName(Counter::kPageFaults)), std::string::npos);
  stats.Reset();
  EXPECT_EQ(stats.Total(Counter::kPageFaults), 0u);
}

}  // namespace
}  // namespace cortenmm
