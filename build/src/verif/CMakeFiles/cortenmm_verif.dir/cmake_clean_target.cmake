file(REMOVE_RECURSE
  "libcortenmm_verif.a"
)
