file(REMOVE_RECURSE
  "CMakeFiles/cortenmm_verif.dir/model.cc.o"
  "CMakeFiles/cortenmm_verif.dir/model.cc.o.d"
  "CMakeFiles/cortenmm_verif.dir/tree_model.cc.o"
  "CMakeFiles/cortenmm_verif.dir/tree_model.cc.o.d"
  "CMakeFiles/cortenmm_verif.dir/wf_checker.cc.o"
  "CMakeFiles/cortenmm_verif.dir/wf_checker.cc.o.d"
  "libcortenmm_verif.a"
  "libcortenmm_verif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortenmm_verif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
