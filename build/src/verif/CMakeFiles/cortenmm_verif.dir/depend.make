# Empty dependencies file for cortenmm_verif.
# This may be replaced when dependencies are built.
