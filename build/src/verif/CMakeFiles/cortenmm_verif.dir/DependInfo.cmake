
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verif/model.cc" "src/verif/CMakeFiles/cortenmm_verif.dir/model.cc.o" "gcc" "src/verif/CMakeFiles/cortenmm_verif.dir/model.cc.o.d"
  "/root/repo/src/verif/tree_model.cc" "src/verif/CMakeFiles/cortenmm_verif.dir/tree_model.cc.o" "gcc" "src/verif/CMakeFiles/cortenmm_verif.dir/tree_model.cc.o.d"
  "/root/repo/src/verif/wf_checker.cc" "src/verif/CMakeFiles/cortenmm_verif.dir/wf_checker.cc.o" "gcc" "src/verif/CMakeFiles/cortenmm_verif.dir/wf_checker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cortenmm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/cortenmm_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/pmm/CMakeFiles/cortenmm_pmm.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/cortenmm_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/cortenmm_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cortenmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
