# Empty dependencies file for cortenmm_sim.
# This may be replaced when dependencies are built.
