file(REMOVE_RECURSE
  "libcortenmm_sim.a"
)
