file(REMOVE_RECURSE
  "CMakeFiles/cortenmm_sim.dir/mmu.cc.o"
  "CMakeFiles/cortenmm_sim.dir/mmu.cc.o.d"
  "libcortenmm_sim.a"
  "libcortenmm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortenmm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
