file(REMOVE_RECURSE
  "CMakeFiles/cortenmm_workloads.dir/bench_util.cc.o"
  "CMakeFiles/cortenmm_workloads.dir/bench_util.cc.o.d"
  "CMakeFiles/cortenmm_workloads.dir/workloads.cc.o"
  "CMakeFiles/cortenmm_workloads.dir/workloads.cc.o.d"
  "libcortenmm_workloads.a"
  "libcortenmm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortenmm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
