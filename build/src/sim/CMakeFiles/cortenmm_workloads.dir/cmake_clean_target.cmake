file(REMOVE_RECURSE
  "libcortenmm_workloads.a"
)
