# Empty compiler generated dependencies file for cortenmm_workloads.
# This may be replaced when dependencies are built.
