file(REMOVE_RECURSE
  "CMakeFiles/cortenmm_core.dir/addr_space.cc.o"
  "CMakeFiles/cortenmm_core.dir/addr_space.cc.o.d"
  "CMakeFiles/cortenmm_core.dir/backing.cc.o"
  "CMakeFiles/cortenmm_core.dir/backing.cc.o.d"
  "CMakeFiles/cortenmm_core.dir/rcursor.cc.o"
  "CMakeFiles/cortenmm_core.dir/rcursor.cc.o.d"
  "CMakeFiles/cortenmm_core.dir/va_alloc.cc.o"
  "CMakeFiles/cortenmm_core.dir/va_alloc.cc.o.d"
  "CMakeFiles/cortenmm_core.dir/vm_space.cc.o"
  "CMakeFiles/cortenmm_core.dir/vm_space.cc.o.d"
  "libcortenmm_core.a"
  "libcortenmm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortenmm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
