file(REMOVE_RECURSE
  "libcortenmm_core.a"
)
