# Empty compiler generated dependencies file for cortenmm_core.
# This may be replaced when dependencies are built.
