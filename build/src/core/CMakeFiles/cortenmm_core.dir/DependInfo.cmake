
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/addr_space.cc" "src/core/CMakeFiles/cortenmm_core.dir/addr_space.cc.o" "gcc" "src/core/CMakeFiles/cortenmm_core.dir/addr_space.cc.o.d"
  "/root/repo/src/core/backing.cc" "src/core/CMakeFiles/cortenmm_core.dir/backing.cc.o" "gcc" "src/core/CMakeFiles/cortenmm_core.dir/backing.cc.o.d"
  "/root/repo/src/core/rcursor.cc" "src/core/CMakeFiles/cortenmm_core.dir/rcursor.cc.o" "gcc" "src/core/CMakeFiles/cortenmm_core.dir/rcursor.cc.o.d"
  "/root/repo/src/core/va_alloc.cc" "src/core/CMakeFiles/cortenmm_core.dir/va_alloc.cc.o" "gcc" "src/core/CMakeFiles/cortenmm_core.dir/va_alloc.cc.o.d"
  "/root/repo/src/core/vm_space.cc" "src/core/CMakeFiles/cortenmm_core.dir/vm_space.cc.o" "gcc" "src/core/CMakeFiles/cortenmm_core.dir/vm_space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cortenmm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pmm/CMakeFiles/cortenmm_pmm.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/cortenmm_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/cortenmm_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/cortenmm_tlb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
