file(REMOVE_RECURSE
  "CMakeFiles/cortenmm_pt.dir/page_table.cc.o"
  "CMakeFiles/cortenmm_pt.dir/page_table.cc.o.d"
  "libcortenmm_pt.a"
  "libcortenmm_pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortenmm_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
