# Empty dependencies file for cortenmm_pt.
# This may be replaced when dependencies are built.
