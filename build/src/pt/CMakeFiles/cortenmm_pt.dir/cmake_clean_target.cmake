file(REMOVE_RECURSE
  "libcortenmm_pt.a"
)
