file(REMOVE_RECURSE
  "CMakeFiles/cortenmm_pmm.dir/buddy.cc.o"
  "CMakeFiles/cortenmm_pmm.dir/buddy.cc.o.d"
  "CMakeFiles/cortenmm_pmm.dir/phys_mem.cc.o"
  "CMakeFiles/cortenmm_pmm.dir/phys_mem.cc.o.d"
  "CMakeFiles/cortenmm_pmm.dir/slab.cc.o"
  "CMakeFiles/cortenmm_pmm.dir/slab.cc.o.d"
  "libcortenmm_pmm.a"
  "libcortenmm_pmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortenmm_pmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
