# Empty compiler generated dependencies file for cortenmm_pmm.
# This may be replaced when dependencies are built.
