file(REMOVE_RECURSE
  "libcortenmm_pmm.a"
)
