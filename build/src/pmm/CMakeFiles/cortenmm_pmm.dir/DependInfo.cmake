
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmm/buddy.cc" "src/pmm/CMakeFiles/cortenmm_pmm.dir/buddy.cc.o" "gcc" "src/pmm/CMakeFiles/cortenmm_pmm.dir/buddy.cc.o.d"
  "/root/repo/src/pmm/phys_mem.cc" "src/pmm/CMakeFiles/cortenmm_pmm.dir/phys_mem.cc.o" "gcc" "src/pmm/CMakeFiles/cortenmm_pmm.dir/phys_mem.cc.o.d"
  "/root/repo/src/pmm/slab.cc" "src/pmm/CMakeFiles/cortenmm_pmm.dir/slab.cc.o" "gcc" "src/pmm/CMakeFiles/cortenmm_pmm.dir/slab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cortenmm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/cortenmm_sync.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
