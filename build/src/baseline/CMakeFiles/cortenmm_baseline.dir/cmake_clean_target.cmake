file(REMOVE_RECURSE
  "libcortenmm_baseline.a"
)
