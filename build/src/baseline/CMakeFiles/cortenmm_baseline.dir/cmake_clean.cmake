file(REMOVE_RECURSE
  "CMakeFiles/cortenmm_baseline.dir/linux_mm.cc.o"
  "CMakeFiles/cortenmm_baseline.dir/linux_mm.cc.o.d"
  "CMakeFiles/cortenmm_baseline.dir/nros_mm.cc.o"
  "CMakeFiles/cortenmm_baseline.dir/nros_mm.cc.o.d"
  "CMakeFiles/cortenmm_baseline.dir/radixvm_mm.cc.o"
  "CMakeFiles/cortenmm_baseline.dir/radixvm_mm.cc.o.d"
  "CMakeFiles/cortenmm_baseline.dir/vma_tree.cc.o"
  "CMakeFiles/cortenmm_baseline.dir/vma_tree.cc.o.d"
  "libcortenmm_baseline.a"
  "libcortenmm_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortenmm_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
