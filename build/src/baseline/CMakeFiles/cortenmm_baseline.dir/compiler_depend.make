# Empty compiler generated dependencies file for cortenmm_baseline.
# This may be replaced when dependencies are built.
