file(REMOVE_RECURSE
  "libcortenmm_sync.a"
)
