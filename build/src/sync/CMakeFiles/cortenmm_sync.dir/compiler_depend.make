# Empty compiler generated dependencies file for cortenmm_sync.
# This may be replaced when dependencies are built.
