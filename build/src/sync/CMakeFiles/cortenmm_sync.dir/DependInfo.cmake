
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/bravo.cc" "src/sync/CMakeFiles/cortenmm_sync.dir/bravo.cc.o" "gcc" "src/sync/CMakeFiles/cortenmm_sync.dir/bravo.cc.o.d"
  "/root/repo/src/sync/mcs_pool.cc" "src/sync/CMakeFiles/cortenmm_sync.dir/mcs_pool.cc.o" "gcc" "src/sync/CMakeFiles/cortenmm_sync.dir/mcs_pool.cc.o.d"
  "/root/repo/src/sync/rcu.cc" "src/sync/CMakeFiles/cortenmm_sync.dir/rcu.cc.o" "gcc" "src/sync/CMakeFiles/cortenmm_sync.dir/rcu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cortenmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
