file(REMOVE_RECURSE
  "CMakeFiles/cortenmm_sync.dir/bravo.cc.o"
  "CMakeFiles/cortenmm_sync.dir/bravo.cc.o.d"
  "CMakeFiles/cortenmm_sync.dir/mcs_pool.cc.o"
  "CMakeFiles/cortenmm_sync.dir/mcs_pool.cc.o.d"
  "CMakeFiles/cortenmm_sync.dir/rcu.cc.o"
  "CMakeFiles/cortenmm_sync.dir/rcu.cc.o.d"
  "libcortenmm_sync.a"
  "libcortenmm_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortenmm_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
