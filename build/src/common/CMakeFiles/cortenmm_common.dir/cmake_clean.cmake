file(REMOVE_RECURSE
  "CMakeFiles/cortenmm_common.dir/cpu.cc.o"
  "CMakeFiles/cortenmm_common.dir/cpu.cc.o.d"
  "CMakeFiles/cortenmm_common.dir/result.cc.o"
  "CMakeFiles/cortenmm_common.dir/result.cc.o.d"
  "CMakeFiles/cortenmm_common.dir/stats.cc.o"
  "CMakeFiles/cortenmm_common.dir/stats.cc.o.d"
  "libcortenmm_common.a"
  "libcortenmm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortenmm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
