# Empty compiler generated dependencies file for cortenmm_common.
# This may be replaced when dependencies are built.
