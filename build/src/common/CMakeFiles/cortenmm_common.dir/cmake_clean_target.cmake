file(REMOVE_RECURSE
  "libcortenmm_common.a"
)
