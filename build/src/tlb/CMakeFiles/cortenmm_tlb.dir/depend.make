# Empty dependencies file for cortenmm_tlb.
# This may be replaced when dependencies are built.
