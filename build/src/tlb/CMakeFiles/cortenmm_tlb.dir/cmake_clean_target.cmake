file(REMOVE_RECURSE
  "libcortenmm_tlb.a"
)
