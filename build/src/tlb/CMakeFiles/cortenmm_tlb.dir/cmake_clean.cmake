file(REMOVE_RECURSE
  "CMakeFiles/cortenmm_tlb.dir/shootdown.cc.o"
  "CMakeFiles/cortenmm_tlb.dir/shootdown.cc.o.d"
  "CMakeFiles/cortenmm_tlb.dir/tlb.cc.o"
  "CMakeFiles/cortenmm_tlb.dir/tlb.cc.o.d"
  "libcortenmm_tlb.a"
  "libcortenmm_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortenmm_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
