
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlb/shootdown.cc" "src/tlb/CMakeFiles/cortenmm_tlb.dir/shootdown.cc.o" "gcc" "src/tlb/CMakeFiles/cortenmm_tlb.dir/shootdown.cc.o.d"
  "/root/repo/src/tlb/tlb.cc" "src/tlb/CMakeFiles/cortenmm_tlb.dir/tlb.cc.o" "gcc" "src/tlb/CMakeFiles/cortenmm_tlb.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cortenmm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/cortenmm_sync.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
