# Empty compiler generated dependencies file for prefork_server.
# This may be replaced when dependencies are built.
