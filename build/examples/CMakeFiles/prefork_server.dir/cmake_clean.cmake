file(REMOVE_RECURSE
  "CMakeFiles/prefork_server.dir/prefork_server.cpp.o"
  "CMakeFiles/prefork_server.dir/prefork_server.cpp.o.d"
  "prefork_server"
  "prefork_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefork_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
