# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/verif_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/pmm_test[1]_include.cmake")
include("/root/repo/build/tests/pt_test[1]_include.cmake")
include("/root/repo/build/tests/tlb_test[1]_include.cmake")
include("/root/repo/build/tests/rcursor_test[1]_include.cmake")
include("/root/repo/build/tests/core_concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/vm_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/mpk_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
