# Empty dependencies file for pmm_test.
# This may be replaced when dependencies are built.
