file(REMOVE_RECURSE
  "CMakeFiles/pmm_test.dir/pmm_test.cc.o"
  "CMakeFiles/pmm_test.dir/pmm_test.cc.o.d"
  "pmm_test"
  "pmm_test.pdb"
  "pmm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
