# Empty dependencies file for rcursor_test.
# This may be replaced when dependencies are built.
