file(REMOVE_RECURSE
  "CMakeFiles/rcursor_test.dir/rcursor_test.cc.o"
  "CMakeFiles/rcursor_test.dir/rcursor_test.cc.o.d"
  "rcursor_test"
  "rcursor_test.pdb"
  "rcursor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcursor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
