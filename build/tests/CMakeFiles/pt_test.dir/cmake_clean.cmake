file(REMOVE_RECURSE
  "CMakeFiles/pt_test.dir/pt_test.cc.o"
  "CMakeFiles/pt_test.dir/pt_test.cc.o.d"
  "pt_test"
  "pt_test.pdb"
  "pt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
