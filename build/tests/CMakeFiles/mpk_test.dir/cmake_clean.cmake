file(REMOVE_RECURSE
  "CMakeFiles/mpk_test.dir/mpk_test.cc.o"
  "CMakeFiles/mpk_test.dir/mpk_test.cc.o.d"
  "mpk_test"
  "mpk_test.pdb"
  "mpk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
