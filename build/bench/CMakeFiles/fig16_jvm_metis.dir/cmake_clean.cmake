file(REMOVE_RECURSE
  "CMakeFiles/fig16_jvm_metis.dir/fig16_jvm_metis.cc.o"
  "CMakeFiles/fig16_jvm_metis.dir/fig16_jvm_metis.cc.o.d"
  "fig16_jvm_metis"
  "fig16_jvm_metis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_jvm_metis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
