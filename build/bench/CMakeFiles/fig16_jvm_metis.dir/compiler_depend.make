# Empty compiler generated dependencies file for fig16_jvm_metis.
# This may be replaced when dependencies are built.
