file(REMOVE_RECURSE
  "CMakeFiles/table05_portability.dir/table05_portability.cc.o"
  "CMakeFiles/table05_portability.dir/table05_portability.cc.o.d"
  "table05_portability"
  "table05_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
