# Empty dependencies file for table05_portability.
# This may be replaced when dependencies are built.
