file(REMOVE_RECURSE
  "CMakeFiles/fig14_multithread.dir/fig14_multithread.cc.o"
  "CMakeFiles/fig14_multithread.dir/fig14_multithread.cc.o.d"
  "fig14_multithread"
  "fig14_multithread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_multithread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
