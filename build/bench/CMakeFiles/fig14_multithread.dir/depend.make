# Empty dependencies file for fig14_multithread.
# This may be replaced when dependencies are built.
