file(REMOVE_RECURSE
  "CMakeFiles/micro_ops_gbench.dir/micro_ops_gbench.cc.o"
  "CMakeFiles/micro_ops_gbench.dir/micro_ops_gbench.cc.o.d"
  "micro_ops_gbench"
  "micro_ops_gbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ops_gbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
