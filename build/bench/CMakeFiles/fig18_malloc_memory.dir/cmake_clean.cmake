file(REMOVE_RECURSE
  "CMakeFiles/fig18_malloc_memory.dir/fig18_malloc_memory.cc.o"
  "CMakeFiles/fig18_malloc_memory.dir/fig18_malloc_memory.cc.o.d"
  "fig18_malloc_memory"
  "fig18_malloc_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_malloc_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
