# Empty compiler generated dependencies file for fig18_malloc_memory.
# This may be replaced when dependencies are built.
