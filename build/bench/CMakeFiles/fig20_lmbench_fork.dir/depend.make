# Empty dependencies file for fig20_lmbench_fork.
# This may be replaced when dependencies are built.
