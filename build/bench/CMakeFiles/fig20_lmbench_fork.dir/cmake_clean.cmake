file(REMOVE_RECURSE
  "CMakeFiles/fig20_lmbench_fork.dir/fig20_lmbench_fork.cc.o"
  "CMakeFiles/fig20_lmbench_fork.dir/fig20_lmbench_fork.cc.o.d"
  "fig20_lmbench_fork"
  "fig20_lmbench_fork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_lmbench_fork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
