file(REMOVE_RECURSE
  "CMakeFiles/fig19_riscv.dir/fig19_riscv.cc.o"
  "CMakeFiles/fig19_riscv.dir/fig19_riscv.cc.o.d"
  "fig19_riscv"
  "fig19_riscv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_riscv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
