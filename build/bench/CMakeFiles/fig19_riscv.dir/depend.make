# Empty dependencies file for fig19_riscv.
# This may be replaced when dependencies are built.
