file(REMOVE_RECURSE
  "CMakeFiles/fig22_memory_overhead.dir/fig22_memory_overhead.cc.o"
  "CMakeFiles/fig22_memory_overhead.dir/fig22_memory_overhead.cc.o.d"
  "fig22_memory_overhead"
  "fig22_memory_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_memory_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
