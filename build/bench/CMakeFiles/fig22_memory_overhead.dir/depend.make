# Empty dependencies file for fig22_memory_overhead.
# This may be replaced when dependencies are built.
