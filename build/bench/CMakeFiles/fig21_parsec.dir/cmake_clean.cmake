file(REMOVE_RECURSE
  "CMakeFiles/fig21_parsec.dir/fig21_parsec.cc.o"
  "CMakeFiles/fig21_parsec.dir/fig21_parsec.cc.o.d"
  "fig21_parsec"
  "fig21_parsec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_parsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
