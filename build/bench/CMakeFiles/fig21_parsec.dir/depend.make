# Empty dependencies file for fig21_parsec.
# This may be replaced when dependencies are built.
