# Empty dependencies file for fig17_dedup_psearchy.
# This may be replaced when dependencies are built.
