file(REMOVE_RECURSE
  "CMakeFiles/fig17_dedup_psearchy.dir/fig17_dedup_psearchy.cc.o"
  "CMakeFiles/fig17_dedup_psearchy.dir/fig17_dedup_psearchy.cc.o.d"
  "fig17_dedup_psearchy"
  "fig17_dedup_psearchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_dedup_psearchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
