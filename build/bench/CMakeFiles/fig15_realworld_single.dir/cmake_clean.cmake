file(REMOVE_RECURSE
  "CMakeFiles/fig15_realworld_single.dir/fig15_realworld_single.cc.o"
  "CMakeFiles/fig15_realworld_single.dir/fig15_realworld_single.cc.o.d"
  "fig15_realworld_single"
  "fig15_realworld_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_realworld_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
