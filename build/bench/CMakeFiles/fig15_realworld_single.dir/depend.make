# Empty dependencies file for fig15_realworld_single.
# This may be replaced when dependencies are built.
