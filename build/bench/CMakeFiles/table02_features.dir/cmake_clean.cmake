file(REMOVE_RECURSE
  "CMakeFiles/table02_features.dir/table02_features.cc.o"
  "CMakeFiles/table02_features.dir/table02_features.cc.o.d"
  "table02_features"
  "table02_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
