# Empty dependencies file for table02_features.
# This may be replaced when dependencies are built.
