# Empty dependencies file for table04_verification.
# This may be replaced when dependencies are built.
