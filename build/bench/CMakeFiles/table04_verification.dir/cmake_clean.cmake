file(REMOVE_RECURSE
  "CMakeFiles/table04_verification.dir/table04_verification.cc.o"
  "CMakeFiles/table04_verification.dir/table04_verification.cc.o.d"
  "table04_verification"
  "table04_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
