file(REMOVE_RECURSE
  "CMakeFiles/fig13_single_thread.dir/fig13_single_thread.cc.o"
  "CMakeFiles/fig13_single_thread.dir/fig13_single_thread.cc.o.d"
  "fig13_single_thread"
  "fig13_single_thread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_single_thread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
