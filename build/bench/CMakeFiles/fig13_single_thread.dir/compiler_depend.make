# Empty compiler generated dependencies file for fig13_single_thread.
# This may be replaced when dependencies are built.
