// Figure 18: memory usage of tcmalloc vs the default allocator (ptmalloc) on
// dedup and psearchy. Paper shape: tcmalloc's throughput win (Figure 17)
// costs ~2x the OS memory footprint because freed spans are retained.
#include <cstdio>

#include "src/sim/workloads.h"

int main() {
  using namespace cortenmm;
  PrintHeader("Figure 18 — allocator memory usage (tcmalloc vs ptmalloc)",
              "Fig. 18",
              "tcmalloc retains freed spans: ~2x (or more) the peak OS memory "
              "of ptmalloc on the same trace.");
  int threads = SweepThreads().back() / 2 > 0 ? SweepThreads().back() / 2 : 1;
  std::printf("workload          allocator   peak OS memory (MiB)\n");
  for (auto [name, fn] :
       {std::pair<const char*, TraceResult (*)(MmKind, AllocModel, int, int)>{
            "dedup", &RunDedup},
        {"psearchy", &RunPsearchy}}) {
    double ptmalloc_peak = 0;
    for (AllocModel model : {AllocModel::kPtmalloc, AllocModel::kTcmalloc}) {
      TraceResult r = fn(MmKind::kCortenAdv, model, threads, 100);
      double mib = static_cast<double>(r.peak_os_bytes) / (1 << 20);
      if (model == AllocModel::kPtmalloc) {
        ptmalloc_peak = mib;
        std::printf("%-16s %-10s %10.1f\n", name, AllocModelName(model), mib);
      } else {
        std::printf("%-16s %-10s %10.1f   (%.1fx ptmalloc)\n", name,
                    AllocModelName(model), mib,
                    ptmalloc_peak > 0 ? mib / ptmalloc_peak : 0);
      }
    }
  }
  return 0;
}
