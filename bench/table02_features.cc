// Table 2: the feature matrix of supported memory-management semantics.
// Each checkmark below is backed by a test in the repository (named in
// parentheses), not just asserted.
#include <cstdio>

int main() {
  std::printf(
      "\n================================================================\n"
      "Table 2 — supported memory management features\n"
      "================================================================\n"
      "feature             Linux  RadixVM  NrOS  CortenMM   (evidence)\n"
      "on-demand paging      Y       Y      n       Y       (core_smoke_test.DemandZero, baseline_test)\n"
      "copy-on-write         Y       n      n       Y       (core_smoke_test.ForkCopyOnWrite)\n"
      "page swapping         Y       n      n       Y       (core_smoke_test.SwapOutAndBackIn)\n"
      "reverse mapping       Y       n      n       Y       (vm_semantics_test.ReverseMapping*)\n"
      "mmaped file           Y       Y      n       Y       (core_smoke_test.PrivateFileMapping)\n"
      "huge page             Y       n      Y       Y       (rcursor_test.MapHugeAndQueryInterior)\n"
      "NUMA policy           Y       Y      Y       n       (paper Table 2: CortenMM lacks it too)\n"
      "\nNotes: columns reproduce the paper's Table 2; the baselines implemented\n"
      "here cover the subsets their originals support for the evaluated\n"
      "workloads (RadixVM file mappings reduced to anon; NrOS eager mapping).\n");
  return 0;
}
