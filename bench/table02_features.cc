// Table 2: the feature matrix of supported memory-management semantics.
// Each checkmark below is backed by a test in the repository (named in
// parentheses), not just asserted.
#include <cstdio>

int main() {
  std::printf(
      "\n================================================================\n"
      "Table 2 — supported memory management features\n"
      "================================================================\n"
      "feature             Linux  RadixVM  NrOS  CortenMM   (evidence)\n"
      "on-demand paging      Y       Y      n       Y       (core_smoke_test.DemandZero, baseline_test)\n"
      "copy-on-write         Y       n      n       Y       (core_smoke_test.ForkCopyOnWrite)\n"
      "page swapping         Y       n      n       Y       (core_smoke_test.SwapOutAndBackIn)\n"
      "reverse mapping       Y       n      n       Y       (vm_semantics_test.ReverseMapping*)\n"
      "mmaped file           Y       Y      n       Y       (core_smoke_test.PrivateFileMapping)\n"
      "huge page             Y       n      n       Y       (huge_test.HugePageTest.*, huge_test.LinuxHugeTest.*)\n"
      "NUMA policy           Y       Y      Y       Y       (pmm_test.NumaTest.*, sync_test.CnaLockTest.*, chaos Numa rows, bench_smoke_numa gate)\n"
      "\nNotes: columns reproduce the paper's Table 2 where a backend in this\n"
      "repository actually implements the feature; cells differing from the\n"
      "paper reflect the implemented subset (RadixVM file mappings reduced to\n"
      "anon; NrOS eager mapping, no multi-size leaves). The Linux column's\n"
      "huge-page support is the THP-style huge=on knob exercised end-to-end\n"
      "by huge_test.LinuxHugeTest; CortenMM's is the transparent 2 MiB policy\n"
      "on the multi-size run substrate (huge_test.HugePageTest, chaos Huge\n"
      "rows, bench_smoke_huge gate). The NUMA row is where this repository\n"
      "goes past the paper: the paper's CortenMM lacks a NUMA policy (its\n"
      "Table 2 marks it unsupported); here the per-node buddy arenas,\n"
      "local-first/nearest-spill router, and CNA lock (DESIGN.md §11) put a\n"
      "Y in the CortenMM column, gated by bench_smoke_numa.\n");
  return 0;
}
