// Ablation: NUMA topology (DESIGN.md §11). Three phases, each gating one
// promise the per-node memory layout makes:
//
//   * locality — 2 worker threads per node, each pinned to its home node,
//     cycle mmap → write-touch → munmap. Every frame (data and PT pages)
//     routes through the per-node arenas; the gate is a >=90% local-
//     allocation ratio (numa_local / (numa_local + numa_remote)).
//   * cna vs mcs — the same cross-socket contention (2 threads per node,
//     one shared lock, a critical section that pays the interconnect cost
//     whenever the lock migrates between nodes) run against the flat MCS
//     lock and the CNA lock. Gates: CNA acquisition p50 <= MCS p50 (timing,
//     disabled under sanitizers) and nonzero cna_batched_handoffs /
//     cna_secondary_enqueues (the batching actually engaged).
//   * spill + home return — node 0's arena is drained dry from a node-0
//     thread; further allocations must spill to the nearest remote arena
//     (never fail), and freeing everything must restore every per-node free
//     count exactly, with zero misplaced frames and zero leaks.
//
// With CORTENMM_NODES=1 the topology is degenerate: the locality ratio is
// trivially 100% and the CNA/spill gates are skipped (there is no remote
// node to batch against or spill to) — the binary still exercises both lock
// paths and the leak check. Nonzero exit on any gate failure;
// BENCH_numa.json carries the numbers.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/backoff.h"
#include "src/common/cpu.h"
#include "src/common/stats.h"
#include "src/common/topology.h"
#include "src/core/addr_space.h"
#include "src/obs/telemetry.h"
#include "src/pmm/buddy.h"
#include "src/sim/bench_util.h"
#include "src/sim/corten_vm.h"
#include "src/sim/mmu.h"
#include "src/sync/cna_lock.h"
#include "src/sync/mcs_lock.h"
#include "src/tlb/shootdown.h"
#include "src/verif/wf_checker.h"

// Timing gates compare two live wall-clock measurements; the sanitizers
// distort those beyond use (same rationale as ablation_faultpath.cc). The
// functional gates (locality ratio, batching counters, spill correctness,
// leak check) still fail the run.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define NUMA_TIMING_GATES 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define NUMA_TIMING_GATES 0
#else
#define NUMA_TIMING_GATES 1
#endif
#else
#define NUMA_TIMING_GATES 1
#endif

namespace cortenmm {
namespace {

constexpr int kThreadsPerNode = 2;
constexpr uint64_t kPagesPerRegion = 256;  // 1 MiB per thread per cycle.
constexpr int kLocalityCycles = 4;
constexpr int kLockIters = 20000;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t Percentile(std::vector<uint64_t>& samples, double p) {
  if (samples.empty()) {
    return 0;
  }
  size_t idx = static_cast<size_t>(p * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(), samples.begin() + idx, samples.end());
  return samples[idx];
}

// Binds the calling worker to the |slot|-th CPU of its assigned node.
void BindWorker(int worker, int* out_node) {
  const NodeTopology& topo = NodeTopology::Instance();
  int node = worker / kThreadsPerNode % topo.nodes();
  BindThisThreadToCpu(topo.FirstCpuOfNode(node) + worker % kThreadsPerNode);
  *out_node = node;
}

// --- Phase A: allocation locality -------------------------------------------

struct LocalityResult {
  uint64_t local = 0;
  uint64_t remote = 0;
  double ratio = 0.0;
};

LocalityResult RunLocality(TelemetrySink& sink) {
  const StatsDomain& stats = GlobalStats();
  const uint64_t local0 = stats.Total(Counter::kNumaLocalAllocs);
  const uint64_t remote0 = stats.Total(Counter::kNumaRemoteAllocs);

  const int threads = kThreadsPerNode * NodeTopology::Instance().nodes();
  AddrSpace::Options options;
  options.protocol = Protocol::kAdv;
  std::vector<std::unique_ptr<CortenVm>> vms;
  for (int t = 0; t < threads; ++t) {
    vms.push_back(std::make_unique<CortenVm>(options));
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&vms, t] {
      int node;
      BindWorker(t, &node);
      CortenVm& mm = *vms[t];
      mm.NoteCpuActive(CurrentCpu());
      for (int c = 0; c < kLocalityCycles; ++c) {
        Result<Vaddr> va = mm.MmapAnon(kPagesPerRegion << kPageBits, Perm::RW());
        if (!va.ok()) {
          std::abort();
        }
        if (!MmuSim::TouchRange(mm, *va, kPagesPerRegion << kPageBits,
                                /*write=*/true)
                 .ok()) {
          std::abort();
        }
        if (!mm.Munmap(*va, kPagesPerRegion << kPageBits).ok()) {
          std::abort();
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  vms.clear();
  TlbSystem::Instance().DrainAll();

  LocalityResult result;
  result.local = stats.Total(Counter::kNumaLocalAllocs) - local0;
  result.remote = stats.Total(Counter::kNumaRemoteAllocs) - remote0;
  uint64_t total = result.local + result.remote;
  result.ratio = total == 0 ? 0.0
                            : static_cast<double>(result.local) /
                                  static_cast<double>(total);
  sink.Snapshot("locality");
  return result;
}

// --- Phase B: CNA vs flat MCS under cross-socket contention ------------------

// Shared contention state. |prev_node| models the physical home of the lock's
// protected cache lines: a holder whose node differs from the previous
// holder's pays the interconnect transfer (the same cost matrix the software
// MMU charges on remote data, scaled from matrix units to wall-clock
// nanoseconds so the queue actually forms). Written only inside the critical
// section.
struct ContendedCounter {
  int prev_node = -1;
  int64_t value = 0;
  // Handoffs that crossed nodes — the simulated interconnect transfers. THE
  // number CNA exists to shrink, and (unlike wall-clock percentiles) immune
  // to host scheduling: it gates on any machine, single-core CI included.
  int64_t migrations = 0;
};

// Base critical-section work and the per-cost-unit migration charge. Long
// enough that all workers queue up behind the holder (the regime CNA is for);
// the migration charge dwarfs the base so handoff ORDER dominates throughput:
// flat MCS pays the transfer on nearly every FIFO handoff, CNA amortizes it
// across a same-node batch.
constexpr uint64_t kCsBaseNs = 200;
constexpr uint64_t kNsPerCostUnit = 40;

void SpinForNs(uint64_t ns) {
  uint64_t t0 = NowNs();
  while (NowNs() - t0 < ns) {
    CpuRelax();
  }
}

// Runs the critical section; returns true when the handoff stayed on the
// previous holder's node (the "same-node" acquisitions the p50 gate is over —
// a CNA batch keeps these cheap, FIFO MCS makes them wait behind whatever
// migrations its arrival order happened to schedule).
bool CriticalSection(ContendedCounter& state, int my_node) {
  bool same_node = state.prev_node == my_node;
  if (state.prev_node >= 0 && !same_node) {
    const NodeTopology& topo = NodeTopology::Instance();
    state.migrations = state.migrations + 1;
    SpinForNs(kNsPerCostUnit *
              topo.RemotePenaltySpins(state.prev_node, my_node));
  }
  SpinForNs(kCsBaseNs);
  state.prev_node = my_node;
  state.value = state.value + 1;  // Non-atomic: torn only if exclusion broke.
  return same_node;
}

struct WorkerSamples {
  std::vector<uint64_t> all;
  std::vector<uint64_t> same_node;
};

// Runs |threads| pinned workers hammering one lock. Waits for every worker at
// a start barrier first — without it the short run is over before the last
// thread spawns and the "contention" measures an empty queue.
template <typename LockFn>
void RunContention(int threads, ContendedCounter* state_out,
                   WorkerSamples* pooled, LockFn&& acquire_release) {
  ContendedCounter state;
  std::atomic<int> ready{0};
  std::vector<WorkerSamples> samples(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      int node;
      BindWorker(t, &node);
      samples[t].all.reserve(kLockIters);
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (ready.load(std::memory_order_acquire) < threads) {
        CpuRelax();
      }
      for (int i = 0; i < kLockIters; ++i) {
        acquire_release(state, node, &samples[t]);
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  for (WorkerSamples& s : samples) {
    pooled->all.insert(pooled->all.end(), s.all.begin(), s.all.end());
    pooled->same_node.insert(pooled->same_node.end(), s.same_node.begin(),
                             s.same_node.end());
  }
  *state_out = state;
}

struct LockResult {
  uint64_t p50_ns = 0;       // All acquisitions.
  uint64_t p99_ns = 0;
  uint64_t same_p50_ns = 0;  // Same-node handoffs only (the gated number).
  uint64_t same_count = 0;
  int64_t counter = 0;
  int64_t migrations = 0;    // Cross-node handoffs (simulated transfers).
};

LockResult Summarize(WorkerSamples& samples, const ContendedCounter& state) {
  LockResult result;
  result.counter = state.value;
  result.migrations = state.migrations;
  result.p50_ns = Percentile(samples.all, 0.5);
  result.p99_ns = Percentile(samples.all, 0.99);
  result.same_p50_ns = Percentile(samples.same_node, 0.5);
  result.same_count = samples.same_node.size();
  return result;
}

LockResult RunMcsContention(int threads) {
  McsLock lock;
  WorkerSamples samples;
  ContendedCounter state;
  RunContention(
      threads, &state, &samples,
      [&lock](ContendedCounter& state, int node, WorkerSamples* out) {
        McsNode qnode;
        uint64_t t0 = NowNs();
        lock.Lock(&qnode);
        uint64_t wait = NowNs() - t0;
        bool same = CriticalSection(state, node);
        lock.Unlock(&qnode);
        out->all.push_back(wait);
        if (same) {
          out->same_node.push_back(wait);
        }
      });
  return Summarize(samples, state);
}

LockResult RunCnaContention(int threads) {
  CnaLock lock;
  WorkerSamples samples;
  ContendedCounter state;
  RunContention(
      threads, &state, &samples,
      [&lock](ContendedCounter& state, int node, WorkerSamples* out) {
        CnaNode* qnode = CnaNodePool::Get();
        uint64_t t0 = NowNs();
        lock.Lock(qnode);
        uint64_t wait = NowNs() - t0;
        bool same = CriticalSection(state, node);
        lock.Unlock(qnode);
        CnaNodePool::Put(qnode);
        out->all.push_back(wait);
        if (same) {
          out->same_node.push_back(wait);
        }
      });
  return Summarize(samples, state);
}

// --- Phase C: spill + home return --------------------------------------------

struct SpillResult {
  bool ran = false;
  bool alloc_failed = false;
  uint64_t drained = 0;
  uint64_t spills = 0;
  uint64_t remote_allocs = 0;
  uint64_t foreign_frames = 0;   // Spilled frames that (correctly) live off-node.
  uint64_t node0_free_after = 0;
  uint64_t node0_free_before = 0;
  uint64_t misplaced = 0;
};

SpillResult RunSpill() {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  SpillResult result;
  if (buddy.NumNodes() < 2) {
    return result;  // Degenerate topology: nothing to spill to.
  }
  result.ran = true;
  // Exact accounting needs every frame on the free lists, not parked in a
  // per-CPU magazine.
  buddy.SetMagazinesEnabled(false);
  buddy.FlushCpuCaches();
  result.node0_free_before = buddy.NodeFreeFrameCount(0);

  std::thread worker([&buddy, &result] {
    BindThisThreadToCpu(NodeTopology::Instance().FirstCpuOfNode(0));
    const StatsDomain& stats = GlobalStats();
    std::vector<Pfn> held;
    held.reserve(result.node0_free_before + 64);
    // Drain the home arena dry...
    while (buddy.NodeFreeFrameCount(0) > 0) {
      Result<Pfn> f = buddy.AllocFrame();
      if (!f.ok()) {
        result.alloc_failed = true;
        break;
      }
      held.push_back(*f);
    }
    result.drained = held.size();
    // ...then keep allocating: every further frame must spill, successfully.
    const uint64_t spills0 = stats.Total(Counter::kNumaSpills);
    const uint64_t remote0 = stats.Total(Counter::kNumaRemoteAllocs);
    for (int i = 0; i < 64; ++i) {
      Result<Pfn> f = buddy.AllocFrame();
      if (!f.ok()) {
        result.alloc_failed = true;
        break;
      }
      if (buddy.NodeOfPfn(*f) != 0) {
        ++result.foreign_frames;
      }
      held.push_back(*f);
    }
    result.spills = stats.Total(Counter::kNumaSpills) - spills0;
    result.remote_allocs = stats.Total(Counter::kNumaRemoteAllocs) - remote0;
    // Free everything: RouteFree dispatches on the PFN, so every frame must
    // land back on its home arena regardless of which CPU frees it.
    for (Pfn f : held) {
      buddy.FreeFrame(f);
    }
  });
  worker.join();

  result.node0_free_after = buddy.NodeFreeFrameCount(0);
  result.misplaced = buddy.CountMisplacedFreeFrames();
  buddy.SetMagazinesEnabled(true);
  return result;
}

}  // namespace
}  // namespace cortenmm

int main(int argc, char** argv) {
  using namespace cortenmm;
  for (int i = 1; i < argc; ++i) {
    (void)argv[i];  // --smoke: the workload is already smoke-sized.
  }

  BuildConfig::Set("protocol", "adv");
  BuildConfig::Set("page_size_policy", "numa-ablation");
  TelemetrySink sink("numa");

  const NodeTopology& topo = NodeTopology::Instance();
  const int threads = kThreadsPerNode * topo.nodes();

  PrintHeader("Ablation — NUMA topology (per-node arenas, CNA lock)",
              "per-node buddy arenas + CNA-style compact NUMA-aware lock "
              "(DESIGN.md §11)",
              ">=90% local allocations pinned; CNA p50 <= flat MCS under "
              "cross-socket contention; spills succeed and frees return home.");
  std::printf("topology: %d node(s), %d CPUs per node, %d workers\n\n",
              topo.nodes(), topo.cpus_per_node(), threads);

  const uint64_t baseline_free = BuddyAllocator::Instance().FreeFrameCount();
  bool gate_ok = true;

  // --- Phase A: locality ----------------------------------------------------
  LocalityResult locality = RunLocality(sink);
  std::printf("%-24s %12s %12s %10s\n", "locality:", "local", "remote", "ratio");
  std::printf("%-24s %12llu %12llu %9.1f%%\n", "pinned workload",
              static_cast<unsigned long long>(locality.local),
              static_cast<unsigned long long>(locality.remote),
              100.0 * locality.ratio);
  if (locality.ratio < 0.90) {
    std::printf("  FAIL: local-allocation ratio %.1f%% below the 90%% gate\n",
                100.0 * locality.ratio);
    gate_ok = false;
  }

  // --- Phase B: CNA vs MCS --------------------------------------------------
  // Two live timing measurements: retry the pair to absorb scheduler noise
  // (same rationale as ablation_faultpath.cc), gate on the best pair.
  const StatsDomain& stats = GlobalStats();
  constexpr int kAttempts = 3;
  LockResult mcs;
  LockResult cna;
  uint64_t batched = 0;
  uint64_t sec_enq = 0;
  // The wall-clock percentile gate needs every worker on its own hardware
  // thread; on a smaller host (single-core CI) the scheduler time-slices the
  // "contention" and the percentiles measure quantum boundaries, not lock
  // behavior. The migration-count gate below holds either way.
  const bool wallclock_meaningful =
      std::thread::hardware_concurrency() >= static_cast<unsigned>(threads);
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    const uint64_t batched0 = stats.Total(Counter::kCnaBatchedHandoffs);
    const uint64_t sec0 = stats.Total(Counter::kCnaSecondaryEnqueues);
    mcs = RunMcsContention(threads);
    cna = RunCnaContention(threads);
    batched = stats.Total(Counter::kCnaBatchedHandoffs) - batched0;
    sec_enq = stats.Total(Counter::kCnaSecondaryEnqueues) - sec0;
#if NUMA_TIMING_GATES
    bool fast_enough = !wallclock_meaningful ||
                       (cna.same_p50_ns <= mcs.same_p50_ns &&
                        cna.same_count > 0 && mcs.same_count > 0);
#else
    bool fast_enough = true;
#endif
    bool fewer_crossings =
        topo.nodes() < 2 || cna.migrations < mcs.migrations;
    if (fast_enough && fewer_crossings && (topo.nodes() < 2 || batched > 0)) {
      break;
    }
    if (attempt + 1 < kAttempts) {
      std::printf("attempt %d noisy (same-node p50 mcs/cna %llu/%llu, "
                  "migrations %lld/%lld, batched %llu); remeasuring\n",
                  attempt + 1, static_cast<unsigned long long>(mcs.same_p50_ns),
                  static_cast<unsigned long long>(cna.same_p50_ns),
                  static_cast<long long>(mcs.migrations),
                  static_cast<long long>(cna.migrations),
                  static_cast<unsigned long long>(batched));
    }
  }
  sink.Snapshot("contention");

  std::printf("\n%-24s %12s %12s %14s %12s %12s\n", "lock:", "p50_ns",
              "p99_ns", "same_p50_ns", "migrations", "counter");
  std::printf("%-24s %12llu %12llu %14llu %12lld %12lld\n", "mcs (flat)",
              static_cast<unsigned long long>(mcs.p50_ns),
              static_cast<unsigned long long>(mcs.p99_ns),
              static_cast<unsigned long long>(mcs.same_p50_ns),
              static_cast<long long>(mcs.migrations),
              static_cast<long long>(mcs.counter));
  std::printf("%-24s %12llu %12llu %14llu %12lld %12lld\n", "cna",
              static_cast<unsigned long long>(cna.p50_ns),
              static_cast<unsigned long long>(cna.p99_ns),
              static_cast<unsigned long long>(cna.same_p50_ns),
              static_cast<long long>(cna.migrations),
              static_cast<long long>(cna.counter));
  std::printf("cna batched handoffs: %llu, secondary enqueues: %llu, "
              "same-node acquisitions mcs/cna: %llu/%llu\n",
              static_cast<unsigned long long>(batched),
              static_cast<unsigned long long>(sec_enq),
              static_cast<unsigned long long>(mcs.same_count),
              static_cast<unsigned long long>(cna.same_count));

  const int64_t expected = static_cast<int64_t>(kLockIters) * threads;
  if (mcs.counter != expected || cna.counter != expected) {
    std::printf("  FAIL: lost increments (mcs %lld, cna %lld, expected %lld) — "
                "mutual exclusion broke\n",
                static_cast<long long>(mcs.counter),
                static_cast<long long>(cna.counter),
                static_cast<long long>(expected));
    gate_ok = false;
  }
#if NUMA_TIMING_GATES
  if (wallclock_meaningful) {
    if (cna.same_count == 0 || mcs.same_count == 0 ||
        cna.same_p50_ns > mcs.same_p50_ns) {
      std::printf("  FAIL: CNA same-node p50 %lluns not below flat MCS %lluns "
                  "under cross-socket contention\n",
                  static_cast<unsigned long long>(cna.same_p50_ns),
                  static_cast<unsigned long long>(mcs.same_p50_ns));
      gate_ok = false;
    }
  } else {
    std::printf("timing gate (CNA same-node p50 <= MCS) informational only: "
                "host has %u hardware threads for %d workers\n",
                std::thread::hardware_concurrency(), threads);
  }
#else
  std::printf("timing gate (CNA same-node p50 <= MCS) informational only "
              "under sanitizers\n");
#endif
  if (topo.nodes() >= 2 && cna.migrations >= mcs.migrations) {
    std::printf("  FAIL: CNA crossed nodes %lld times, flat MCS %lld — the "
                "NUMA-aware handoff must reduce interconnect transfers\n",
                static_cast<long long>(cna.migrations),
                static_cast<long long>(mcs.migrations));
    gate_ok = false;
  }
  if (topo.nodes() >= 2 && batched == 0) {
    std::printf("  FAIL: zero batched handoffs — the CNA secondary queue "
                "never engaged\n");
    gate_ok = false;
  }

  // --- Phase C: spill + home return -----------------------------------------
  SpillResult spill = RunSpill();
  if (!spill.ran) {
    std::printf("\nspill phase skipped (single-node topology)\n");
  } else {
    std::printf("\nspill: drained %llu node-0 frames, then 64 spilled "
                "(%llu foreign, %llu spill events, %llu remote allocs)\n",
                static_cast<unsigned long long>(spill.drained),
                static_cast<unsigned long long>(spill.foreign_frames),
                static_cast<unsigned long long>(spill.spills),
                static_cast<unsigned long long>(spill.remote_allocs));
    if (spill.alloc_failed) {
      std::printf("  FAIL: an allocation failed while remote arenas had "
                  "free frames\n");
      gate_ok = false;
    }
    if (spill.foreign_frames != 64 || spill.remote_allocs < 64) {
      std::printf("  FAIL: expected 64 off-node frames after draining node 0 "
                  "(got %llu foreign, %llu remote allocs)\n",
                  static_cast<unsigned long long>(spill.foreign_frames),
                  static_cast<unsigned long long>(spill.remote_allocs));
      gate_ok = false;
    }
    if (spill.node0_free_after != spill.node0_free_before) {
      std::printf("  FAIL: node 0 free count %llu != %llu before the drain — "
                  "frees did not return home\n",
                  static_cast<unsigned long long>(spill.node0_free_after),
                  static_cast<unsigned long long>(spill.node0_free_before));
      gate_ok = false;
    }
    if (spill.misplaced != 0) {
      std::printf("  FAIL: %llu free frames chained on a foreign arena\n",
                  static_cast<unsigned long long>(spill.misplaced));
      gate_ok = false;
    }
  }
  sink.Snapshot("spill");

  // --- Leak gate ------------------------------------------------------------
  BuddyAllocator::Instance().DrainMagazines();
  LeakReport leaks = CheckFrameLeaks(baseline_free);
  if (!leaks.ok) {
    std::printf("  FAIL: leaked %lld frames (baseline %llu, now %llu, "
                "stranded cached %llu, stranded anon %llu, misplaced %llu)\n",
                static_cast<long long>(leaks.leaked),
                static_cast<unsigned long long>(leaks.baseline_free),
                static_cast<unsigned long long>(leaks.current_free),
                static_cast<unsigned long long>(leaks.stranded_cached),
                static_cast<unsigned long long>(leaks.stranded_anon),
                static_cast<unsigned long long>(leaks.misplaced_home));
    gate_ok = false;
  } else {
    std::printf("frame leaks after drain: 0 (misplaced: 0)\n");
  }

  PrintTraceDropRate();
  std::string json_path = sink.Write();
  std::printf("\ntelemetry: %s\n", json_path.c_str());
  return gate_ok ? 0 : 1;
}
