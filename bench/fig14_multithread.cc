// Figure 14: multithreaded throughput of the five microbenchmarks, each in a
// low-contention (private regions) and a high-contention (shared region)
// variant, across all systems.
//
// Paper shape: low contention — CortenMM_adv scales almost linearly; Linux
// flat on mmap/unmap (writer side of mmap_lock) and sub-linear on PF (VMA
// locks); CortenMM_rw below adv (reader-lock traffic vs RCU). High contention
// — adv stops scaling past the shared covering PT page but stays far above
// Linux on unmap; RadixVM competitive on PF (per-core page tables).
#include <cstdio>
#include <string>

#include "src/obs/telemetry.h"
#include "src/sim/workloads.h"

namespace cortenmm {
namespace {

void RunPanel(Micro micro, Contention contention, TelemetrySink* sink) {
  std::vector<int> sweep = SweepThreads();
  std::printf("\n--- %s (%s contention) --- threads:", MicroName(micro),
              contention == Contention::kLow ? "low" : "high");
  for (int t : sweep) {
    std::printf(" %8d", t);
  }
  std::printf("  [ops/s]\n");
  const char* contention_name = contention == Contention::kLow ? "low" : "high";
  for (MmKind kind : ComparisonSet()) {
    if (!MicroSupported(micro, kind)) {
      std::printf("%-16s    (no demand paging: skipped)\n", MmKindName(kind));
      continue;
    }
    // One telemetry snapshot per (micro, contention, system) row: reset
    // before the sweep so the histograms attribute to this system only.
    Telemetry::Instance().Reset();
    std::vector<double> row;
    for (int threads : sweep) {
      row.push_back(RunMicro(micro, kind, threads, contention));
    }
    PrintRow(MmKindName(kind), row);
    sink->Snapshot(std::string(MicroName(micro)) + "/" + contention_name + "/" +
                   MmKindName(kind));
  }
}

}  // namespace
}  // namespace cortenmm

int main() {
  using namespace cortenmm;
  PrintHeader("Figure 14 — multithreaded microbenchmarks",
              "Fig. 14, all five Table 3 workloads x {low, high} contention",
              "Low: adv scales, Linux mmap/unmap flat (mmap_lock), rw below adv. "
              "High: adv saturates at the shared covering PT page but beats "
              "Linux; RadixVM strong on PF.");
  TelemetrySink sink("fig14_multithread");
  for (Micro micro : {Micro::kMmap, Micro::kMmapPf, Micro::kUnmapVirt, Micro::kUnmap,
                      Micro::kPf}) {
    RunPanel(micro, Contention::kLow, &sink);
    RunPanel(micro, Contention::kHigh, &sink);
  }
  return 0;
}
