// Figure 14: multithreaded throughput of the five microbenchmarks, each in a
// low-contention (private regions) and a high-contention (shared region)
// variant, across all systems.
//
// Paper shape: low contention — CortenMM_adv scales almost linearly; Linux
// flat on mmap/unmap (writer side of mmap_lock) and sub-linear on PF (VMA
// locks); CortenMM_rw below adv (reader-lock traffic vs RCU). High contention
// — adv stops scaling past the shared covering PT page but stays far above
// Linux on unmap; RadixVM competitive on PF (per-core page tables).
#include <cstdio>
#include <string>

#include "src/common/stats.h"
#include "src/common/topology.h"
#include "src/obs/telemetry.h"
#include "src/sim/workloads.h"

namespace cortenmm {
namespace {

void RunPanel(Micro micro, Contention contention, TelemetrySink* sink) {
  std::vector<int> sweep = SweepThreads();
  std::printf("\n--- %s (%s contention) --- threads:", MicroName(micro),
              contention == Contention::kLow ? "low" : "high");
  for (int t : sweep) {
    std::printf(" %8d", t);
  }
  std::printf("  [ops/s]\n");
  const char* contention_name = contention == Contention::kLow ? "low" : "high";
  for (MmKind kind : ComparisonSet()) {
    if (!MicroSupported(micro, kind)) {
      std::printf("%-16s    (no demand paging: skipped)\n", MmKindName(kind));
      continue;
    }
    // One telemetry snapshot per (micro, contention, system) row: reset
    // before the sweep so the histograms attribute to this system only.
    Telemetry::Instance().Reset();
    std::vector<double> row;
    for (int threads : sweep) {
      row.push_back(RunMicro(micro, kind, threads, contention));
    }
    PrintRow(MmKindName(kind), row);
    sink->Snapshot(std::string(MicroName(micro)) + "/" + contention_name + "/" +
                   MmKindName(kind));
  }
}

// NUMA placement axis: the high-contention mmap-PF panel re-run with workers
// pinned to one node vs striped across nodes. Same-node keeps every frame
// allocation local; striped makes the shared covering PT page (and its
// subtree lock) a cross-socket object, so the gap between the two rows is
// the interconnect cost the flat machine never showed. The local-allocation
// ratio per row comes from the numa_* counters.
void RunPlacementPanel(TelemetrySink* sink) {
  const NodeTopology& topo = NodeTopology::Instance();
  std::printf("\n--- NUMA placement axis (mmap-PF, high contention, %d nodes) ---\n",
              topo.nodes());
  if (topo.nodes() < 2) {
    std::printf("single-node topology: placements coincide; set "
                "CORTENMM_NODES>=2 for the cross-socket rows\n");
    return;
  }
  std::vector<int> sweep = SweepThreads();
  std::printf("%-28s threads:", "");
  for (int t : sweep) {
    std::printf(" %8d", t);
  }
  std::printf("  [ops/s]\n");
  StatsDomain& stats = GlobalStats();
  for (MmKind kind : {MmKind::kCortenAdv, MmKind::kLinux}) {
    for (Placement placement : {Placement::kSameNode, Placement::kStriped}) {
      Telemetry::Instance().Reset();
      const uint64_t local0 = stats.Total(Counter::kNumaLocalAllocs);
      const uint64_t remote0 = stats.Total(Counter::kNumaRemoteAllocs);
      std::vector<double> row;
      for (int threads : sweep) {
        row.push_back(RunMicro(Micro::kMmapPf, kind, threads, Contention::kHigh,
                               Arch::kX86_64, placement));
      }
      const uint64_t local = stats.Total(Counter::kNumaLocalAllocs) - local0;
      const uint64_t remote = stats.Total(Counter::kNumaRemoteAllocs) - remote0;
      const double ratio =
          local + remote > 0 ? 100.0 * static_cast<double>(local) /
                                   static_cast<double>(local + remote)
                             : 100.0;
      PrintRow(std::string(MmKindName(kind)) + "/" + PlacementName(placement), row);
      std::printf("%-28s local allocs %.1f%% (%llu local, %llu remote)\n", "",
                  ratio, static_cast<unsigned long long>(local),
                  static_cast<unsigned long long>(remote));
      sink->Snapshot(std::string("placement/") + MmKindName(kind) + "/" +
                     PlacementName(placement));
    }
  }
}

}  // namespace
}  // namespace cortenmm

int main() {
  using namespace cortenmm;
  PrintHeader("Figure 14 — multithreaded microbenchmarks",
              "Fig. 14, all five Table 3 workloads x {low, high} contention",
              "Low: adv scales, Linux mmap/unmap flat (mmap_lock), rw below adv. "
              "High: adv saturates at the shared covering PT page but beats "
              "Linux; RadixVM strong on PF.");
  TelemetrySink sink("fig14_multithread");
  for (Micro micro : {Micro::kMmap, Micro::kMmapPf, Micro::kUnmapVirt, Micro::kUnmap,
                      Micro::kPf}) {
    RunPanel(micro, Contention::kLow, &sink);
    RunPanel(micro, Contention::kHigh, &sink);
  }
  RunPlacementPanel(&sink);
  return 0;
}
