// Figure 15: single-threaded real-world application performance normalized to
// Linux. Paper shape: CortenMM neither helps much nor hurts at one thread —
// all bars hover around 1.0x (the wins come from scalability, Figure 16/17).
#include <cstdio>

#include "src/sim/workloads.h"

int main() {
  using namespace cortenmm;
  PrintHeader("Figure 15 — single-threaded real-world applications",
              "Fig. 15 (normalized to Linux; higher is better)",
              "All systems ~1.0x at one thread: CortenMM does not penalize "
              "single-threaded applications.");

  struct App {
    const char* name;
    double (*run)(MmKind);
  };
  auto run_metis = [](MmKind kind) { return RunMetis(kind, 1, 4).throughput(); };
  auto run_dedup = [](MmKind kind) {
    return RunDedup(kind, AllocModel::kPtmalloc, 1).throughput();
  };
  auto run_psearchy = [](MmKind kind) {
    return RunPsearchy(kind, AllocModel::kPtmalloc, 1).throughput();
  };
  auto run_blackscholes = [](MmKind kind) {
    return RunParsecLike(kind, "blackscholes", 1).throughput();
  };
  auto run_canneal = [](MmKind kind) {
    return RunParsecLike(kind, "canneal", 1).throughput();
  };
  const App apps[] = {
      {"metis", +run_metis},         {"dedup", +run_dedup},
      {"psearchy", +run_psearchy},   {"blackscholes", +run_blackscholes},
      {"canneal", +run_canneal},
  };

  std::printf("%-16s %12s %12s %12s\n", "app", "adv/Linux", "rw/Linux", "Linux");
  for (const App& app : apps) {
    double linux_score = app.run(MmKind::kLinux);
    double adv_score = app.run(MmKind::kCortenAdv);
    double rw_score = app.run(MmKind::kCortenRw);
    std::printf("%-16s %11.2fx %11.2fx %12.3g\n", app.name,
                linux_score > 0 ? adv_score / linux_score : 0,
                linux_score > 0 ? rw_score / linux_score : 0, linux_score);
  }
  return 0;
}
