// Figure 1 (motivation): multicore throughput of (a) mmap+access (page
// faults) and (b) munmap of mapped pages, for CortenMM vs RadixVM vs NrOS vs
// the Linux-style baseline.
//
// Paper shape: CortenMM_adv scales near-linearly; RadixVM scales but trails;
// NrOS and Linux stay flat/degrade because mutations serialize (log/mmap_lock).
#include <cstdio>

#include "src/sim/workloads.h"

namespace cortenmm {
namespace {

void RunPanel(Micro micro, const char* title) {
  std::vector<int> sweep = SweepThreads();
  std::printf("\n(%s) threads:", title);
  for (int t : sweep) {
    std::printf(" %9d", t);
  }
  std::printf("   [ops/s]\n");
  for (MmKind kind :
       {MmKind::kCortenAdv, MmKind::kCortenRw, MmKind::kLinux, MmKind::kRadixVm,
        MmKind::kNros}) {
    if (!MicroSupported(micro, kind)) {
      std::printf("%-16s %s\n", MmKindName(kind), "   (no demand paging: skipped)");
      continue;
    }
    std::vector<double> row;
    for (int threads : sweep) {
      row.push_back(RunMicro(micro, kind, threads, Contention::kLow));
    }
    PrintRow(MmKindName(kind), row);
  }
}

}  // namespace
}  // namespace cortenmm

int main() {
  using namespace cortenmm;
  PrintHeader("Figure 1 — motivation: MM scalability",
              "Fig. 1(a) mmap+page-fault, Fig. 1(b) munmap, low contention",
              "CortenMM-adv scales with threads; Linux/NrOS flat or degrading; "
              "RadixVM in between. Absolute numbers differ (simulated MMU).");
  RunPanel(Micro::kMmapPf, "a: mmap + access");
  RunPanel(Micro::kUnmap, "b: munmap of mapped pages");
  return 0;
}
