// Figure 16: JVM thread creation (latency, lower is better) and metis
// (throughput, higher is better), with kernel/user time breakdowns and the
// CortenMM_adv ablations (adv_base = no per-core VA allocator + plain
// shootdown; adv_+vpa = per-core VA allocator only).
//
// Paper shape: JVM thread creation — CortenMM ~32% faster than Linux at high
// thread counts (Linux bottlenecked in the page-fault handler on thread-stack
// faults); metis — CortenMM_adv up to 26x Linux (15x for rw); the two
// optimizations contribute little on metis (mmap/munmap are rare there);
// kernel-time share grows with threads on Linux, stays modest on CortenMM.
#include <cstdio>

#include "src/sim/workloads.h"

namespace cortenmm {
namespace {

void JvmPanel() {
  std::vector<int> sweep = SweepThreads();
  std::printf("\n--- JVM thread creation (total latency; lower is better) ---\n");
  std::printf("%-16s", "threads:");
  for (int t : sweep) {
    std::printf(" %9d", t);
  }
  std::printf("   [ms | kernel%%]\n");
  for (MmKind kind : {MmKind::kCortenAdv, MmKind::kCortenRw, MmKind::kLinux}) {
    std::printf("%-16s", MmKindName(kind));
    for (int threads : sweep) {
      TraceResult r = RunJvmThreadCreation(kind, threads);
      std::printf(" %6.2f|%2.0f%%", r.seconds * 1e3,
                  r.seconds > 0 ? 100 * r.kernel_seconds / (r.seconds * threads) : 0);
    }
    std::printf("\n");
  }
}

void MetisPanel() {
  std::vector<int> sweep = SweepThreads();
  std::printf("\n--- metis map-reduce (pages/s; higher is better) ---\n");
  std::printf("%-16s", "threads:");
  for (int t : sweep) {
    std::printf(" %9d", t);
  }
  std::printf("   [pages/s | kernel%%]\n");
  std::vector<MmKind> kinds = {MmKind::kCortenAdv, MmKind::kCortenRw, MmKind::kLinux,
                               MmKind::kRadixVm, MmKind::kCortenAdvVpa,
                               MmKind::kCortenAdvBase};
  for (MmKind kind : kinds) {
    std::printf("%-16s", MmKindName(kind));
    for (int threads : sweep) {
      TraceResult r = RunMetis(kind, threads);
      std::printf(" %7.3g|%2.0f%%", r.throughput(),
                  r.seconds > 0 ? 100 * r.kernel_seconds / (r.seconds * threads) : 0);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace cortenmm

int main() {
  using namespace cortenmm;
  PrintHeader("Figure 16 — JVM thread creation & metis (+ breakdowns, ablations)",
              "Fig. 16",
              "JVM: CortenMM below Linux latency as threads grow. metis: adv "
              "highest, rw next, Linux lowest; adv_base/adv_+vpa close to adv "
              "(mmap/munmap rare in metis); Linux kernel-time share grows.");
  JvmPanel();
  MetisPanel();
  return 0;
}
