// Ablation: the asynchronous submission rings (DESIGN.md §7). The same
// fixed-address mmap/fault/munmap storm is driven two ways against CortenMM:
//
//  * direct  — one synchronous facade call per operation. Every munmap of a
//    resident region pays its own cursor transaction and its own TlbGather
//    flush, so shootdown batches scale with the operation count.
//  * batched — the operations are enqueued as MmSqe descriptors on each
//    CPU's submission ring and forced through with DrainBarrier. The flat
//    combiner fuses each ring's batch (one 1 GiB subtree per thread) into a
//    single RCursor transaction, so ALL the batch's unmaps leave through ONE
//    gathered flush.
//
// The counter-based comparison is the gate: batched must issue at least 2x
// fewer kTlbShootdowns per 1000 operations than direct (the binary exits
// nonzero otherwise), and its throughput is printed alongside so regressions
// in the combiner show up as ops/s, not just counters. Snapshot labels carry
// ops_per_sec and sd_per_1k, so BENCH_async.json is self-contained.
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/cpu.h"
#include "src/common/stats.h"
#include "src/obs/telemetry.h"
#include "src/sim/bench_util.h"
#include "src/sim/corten_vm.h"

namespace cortenmm {
namespace {

// Per batch: kRegions fixed-placement regions, each mapped, faulted resident,
// and unmapped — 3 ops per region, 24 ops per batch, under the ring's
// kMaxFusedOps so a whole batch fuses into one transaction.
constexpr int kRegions = 8;
constexpr uint64_t kRegionPages = 4;
constexpr uint64_t kRegionBytes = kRegionPages * kPageSize;
constexpr int kOpsPerBatch = kRegions * 3;

struct StormResult {
  double ops_per_sec = 0.0;
  uint64_t shootdowns = 0;
  uint64_t ops = 0;
  double PerThousandOps() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(shootdowns) * 1000.0 / static_cast<double>(ops);
  }
};

// One thread's round, synchronous flavor.
void DirectRound(CortenVm& mm, Vaddr base) {
  for (int i = 0; i < kRegions; ++i) {
    Vaddr va = base + static_cast<uint64_t>(i) * 2 * kRegionBytes;
    Result<Vaddr> mapped = mm.MmapAnon(MmapArgs::At(va, kRegionBytes, Perm::RW()));
    assert(mapped.ok());
    (void)mapped;
    VoidResult faulted = mm.HandleFault(va, Access::kWrite);
    assert(faulted.ok());
    (void)faulted;
    VoidResult unmapped = mm.Munmap(va, kRegionBytes);
    assert(unmapped.ok());
    (void)unmapped;
  }
}

// The identical round through the ring: submit the whole batch, barrier,
// reap every completion (they must all be kOk and arrive in order).
void BatchedRound(CortenVm& mm, Vaddr base) {
  uint64_t cookie = 0;
  auto submit = [&](MmSqe sqe) {
    sqe.user_data = cookie++;
    bool queued = mm.Submit(sqe);
    assert(queued);
    (void)queued;
  };
  for (int i = 0; i < kRegions; ++i) {
    Vaddr va = base + static_cast<uint64_t>(i) * 2 * kRegionBytes;
    MmSqe map;
    map.op = MmOpCode::kMmapAnonFixed;
    map.va = va;
    map.len = kRegionBytes;
    map.perm = Perm::RW();
    submit(map);
    MmSqe fault;
    fault.op = MmOpCode::kFault;
    fault.va = va;
    fault.access = Access::kWrite;
    submit(fault);
    MmSqe unmap;
    unmap.op = MmOpCode::kMunmap;
    unmap.va = va;
    unmap.len = kRegionBytes;
    submit(unmap);
  }
  mm.DrainBarrier();
  MmCqe cqe;
  for (uint64_t expect = 0; expect < cookie; ++expect) {
    bool reaped = mm.Reap(&cqe);
    assert(reaped && cqe.user_data == expect && cqe.err == ErrCode::kOk);
    (void)reaped;
  }
}

StormResult RunStorm(bool batched, int threads, int rounds) {
  AddrSpace::Options options;
  options.protocol = Protocol::kAdv;
  CortenVm mm(options);

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  uint64_t before = GlobalStats().Total(Counter::kTlbShootdowns);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      BindThisThreadToCpu(t);
      mm.NoteCpuActive(static_cast<CpuId>(t));
      // Private 1 GiB lock subtree per thread: batches fuse without
      // cross-thread serialization beyond the combiner handoff itself.
      const Vaddr base = (50ull + static_cast<uint64_t>(t)) << 30;
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int round = 0; round < rounds; ++round) {
        if (batched) {
          BatchedRound(mm, base);
        } else {
          DirectRound(mm, base);
        }
      }
    });
  }
  while (ready.load() != threads) {
  }
  auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) {
    w.join();
  }
  auto t1 = std::chrono::steady_clock::now();

  StormResult result;
  result.ops = static_cast<uint64_t>(threads) * rounds * kOpsPerBatch;
  result.shootdowns = GlobalStats().Total(Counter::kTlbShootdowns) - before;
  double seconds = std::chrono::duration<double>(t1 - t0).count();
  result.ops_per_sec = seconds > 0 ? static_cast<double>(result.ops) / seconds : 0.0;
  return result;
}

std::string SnapshotLabel(const char* mode, int threads, const StormResult& r) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "storm/t%d/%s ops_per_sec=%.0f sd_per_1k=%.2f",
                threads, mode, r.ops_per_sec, r.PerThousandOps());
  return buf;
}

}  // namespace
}  // namespace cortenmm

int main(int argc, char** argv) {
  using namespace cortenmm;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  TelemetrySink sink("async");

  PrintHeader("Ablation — asynchronous submission rings (DESIGN.md §7)",
              "per-CPU rings + flat-combining transaction fusion (ROADMAP item 4)",
              "batched needs >=2x fewer shootdowns per 1k ops than direct; "
              "throughput should not regress.");
  std::vector<int> sweep = smoke ? std::vector<int>{2} : SweepThreads();
  const int rounds = smoke ? 40 : 400;

  std::printf("%-10s %14s %14s %12s %12s %10s\n", "threads", "direct ops/s",
              "batched ops/s", "direct/1k", "batched/1k", "reduction");
  bool gate_ok = true;
  for (int threads : sweep) {
    StormResult direct = RunStorm(/*batched=*/false, threads, rounds);
    sink.Snapshot(SnapshotLabel("direct", threads, direct));
    StormResult batched = RunStorm(/*batched=*/true, threads, rounds);
    sink.Snapshot(SnapshotLabel("batched", threads, batched));

    double reduction = batched.shootdowns == 0
                           ? 0.0
                           : direct.PerThousandOps() / batched.PerThousandOps();
    std::printf("%-10d %14.0f %14.0f %12.1f %12.1f %9.1fx\n", threads,
                direct.ops_per_sec, batched.ops_per_sec, direct.PerThousandOps(),
                batched.PerThousandOps(), reduction);
    // Shootdowns need a second active CPU to exist at all; the single-thread
    // row is throughput-only.
    if (threads >= 2 && reduction < 2.0) {
      std::printf("  FAIL: t=%d shootdowns-per-1k reduction %.1fx is below the 2x gate\n",
                  threads, reduction);
      gate_ok = false;
    }
  }

  PrintTraceDropRate();
  std::string json_path = sink.Write();
  std::printf("\ntelemetry: %s\n", json_path.c_str());
  return gate_ok ? 0 : 1;
}
