// Table 4 analog: the cost and coverage of this repository's correctness
// machinery. The paper reports Verus spec/proof/impl line counts and a <20 s
// verification time; our substitute is exhaustive model checking of the same
// specifications (DESIGN.md), so we report the state spaces explored, the
// invariants checked, and the wall time for the full portfolio.
#include <cstdio>

#include "src/verif/model.h"
#include "src/verif/tree_model.h"

namespace cortenmm {
namespace {

void Check(const char* scenario, const Model& model) {
  ModelCheckResult result = ModelChecker::Run(model, 200'000'000);
  std::string verdict = result.ok ? "PASS" : "FAIL: " + result.violation;
  std::printf("%-44s %10llu %11llu %6.2fs  %s\n", scenario,
              static_cast<unsigned long long>(result.states_explored),
              static_cast<unsigned long long>(result.transitions), result.seconds,
              verdict.c_str());
}

}  // namespace
}  // namespace cortenmm

int main() {
  using namespace cortenmm;
  std::printf(
      "\n================================================================\n"
      "Table 4 analog — correctness-checking effort and cost\n"
      "================================================================\n"
      "Paper: Verus proofs, 4868 spec / 4279 proof / 1769 impl LoC,\n"
      "       ~8 person-months, <20 s to verify.\n"
      "Here:  exhaustive model checking of the same Atomic-Tree-Spec-level\n"
      "       properties (P1 mutual exclusion, non-overlap, stale safety,\n"
      "       deadlock freedom) on bounded instances, plus the runtime\n"
      "       well-formedness checker (P2, Fig. 12) wired into the tests.\n\n"
      "%-44s %10s %11s %8s\n",
      "scenario", "states", "transitions", "time");

  Check("rw: 2 threads, sibling leaves", RwProtocolModel(3, {{3}, {4}}));
  Check("rw: 2 threads, same leaf", RwProtocolModel(3, {{3}, {3}}));
  Check("rw: ancestor vs descendant", RwProtocolModel(3, {{1}, {3}}));
  Check("rw: 3 threads incl. root", RwProtocolModel(3, {{0}, {3}, {6}}));
  Check("rw: 3 threads, depth-4 tree", RwProtocolModel(4, {{1}, {4}, {10}}));
  Check("adv: 2 threads, sibling leaves", AdvProtocolModel(3, {{3, -1}, {4, -1}}));
  Check("adv: ancestor vs descendant", AdvProtocolModel(3, {{1, -1}, {3, -1}}));
  Check("adv: unmap race (Fig. 7)", AdvProtocolModel(3, {{1, 3}, {3, -1}}));
  Check("adv: unmap race, 3 threads", AdvProtocolModel(3, {{1, 4}, {4, -1}, {3, -1}}));
  Check("adv: root txn vs unmapper", AdvProtocolModel(3, {{0, -1}, {2, 6}}));
  return 0;
}
