// Google-benchmark microbenchmarks of the raw transactional interface: the
// cost of AddrSpace::Lock under both protocols at several covering depths,
// and of the individual RCursor basic operations. These are the
// lowest-level numbers behind Figures 13/14 and useful for regression
// tracking of the locking protocols themselves.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "src/core/addr_space.h"
#include "src/obs/telemetry.h"
#include "src/pmm/buddy.h"
#include "src/pmm/phys_mem.h"
#include "src/sim/bench_util.h"

namespace cortenmm {
namespace {

AddrSpace::Options OptionsFor(Protocol protocol) {
  AddrSpace::Options options;
  options.protocol = protocol;
  return options;
}

// Lock+unlock of a 4 KiB range (covering page = a leaf PT page).
void BM_LockSmallRange(benchmark::State& state) {
  Protocol protocol = state.range(0) == 0 ? Protocol::kRw : Protocol::kAdv;
  AddrSpace space(OptionsFor(protocol));
  VaRange range(1ull << 30, (1ull << 30) + kPageSize);
  {
    // Materialize the path once so the steady state is measured.
    RCursor cursor = space.Lock(range);
    cursor.Mark(range, Status::PrivateAnon(Perm::RW()));
  }
  for (auto _ : state) {
    RCursor cursor = space.Lock(range);
    benchmark::DoNotOptimize(&cursor);
  }
  state.SetLabel(protocol == Protocol::kRw ? "rw" : "adv");
}
BENCHMARK(BM_LockSmallRange)->Arg(0)->Arg(1);

// Lock+unlock of a 1 GiB range (covering page near the root).
void BM_LockWideRange(benchmark::State& state) {
  Protocol protocol = state.range(0) == 0 ? Protocol::kRw : Protocol::kAdv;
  AddrSpace space(OptionsFor(protocol));
  VaRange range(1ull << 31, (1ull << 31) + (1ull << 30));
  for (auto _ : state) {
    RCursor cursor = space.Lock(range);
    benchmark::DoNotOptimize(&cursor);
  }
  state.SetLabel(protocol == Protocol::kRw ? "rw" : "adv");
}
BENCHMARK(BM_LockWideRange)->Arg(0)->Arg(1);

// Query of a mapped page through the covering page.
void BM_Query(benchmark::State& state) {
  Protocol protocol = state.range(0) == 0 ? Protocol::kRw : Protocol::kAdv;
  AddrSpace space(OptionsFor(protocol));
  Vaddr va = 1ull << 30;
  Result<Pfn> frame = BuddyAllocator::Instance().AllocZeroedFrame();
  {
    RCursor cursor = space.Lock(VaRange(va, va + kPageSize));
    cursor.Map(va, *frame, Perm::RW());
  }
  RCursor cursor = space.Lock(VaRange(va, va + kPageSize));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cursor.Query(va));
  }
  state.SetLabel(protocol == Protocol::kRw ? "rw" : "adv");
}
BENCHMARK(BM_Query)->Arg(0)->Arg(1);

// Map+Unmap of one page inside a held transaction (pure op cost, no locking).
void BM_MapUnmapOp(benchmark::State& state) {
  Protocol protocol = state.range(0) == 0 ? Protocol::kRw : Protocol::kAdv;
  AddrSpace space(OptionsFor(protocol));
  Vaddr va = 2ull << 30;
  Result<Pfn> frame = BuddyAllocator::Instance().AllocZeroedFrame();
  PhysMem::Instance().Descriptor(*frame).ResetForAlloc(FrameType::kAnon);
  RCursor cursor = space.Lock(VaRange(va, va + kPageSize));
  for (auto _ : state) {
    cursor.Map(va, *frame, Perm::RW());
    AddFrameRef(*frame);  // Keep the frame alive across the unmap's deref.
    cursor.Unmap(VaRange(va, va + kPageSize));
  }
  state.SetLabel(protocol == Protocol::kRw ? "rw" : "adv");
}
BENCHMARK(BM_MapUnmapOp)->Arg(0)->Arg(1);

// Mark of a 2 MiB aligned range: one upper-level metadata write.
void BM_MarkLargeRange(benchmark::State& state) {
  Protocol protocol = state.range(0) == 0 ? Protocol::kRw : Protocol::kAdv;
  AddrSpace space(OptionsFor(protocol));
  Vaddr va = 4ull << 30;
  VaRange range(va, va + (2ull << 20));
  RCursor cursor = space.Lock(range);
  for (auto _ : state) {
    cursor.Mark(range, Status::PrivateAnon(Perm::RW()));
  }
  state.SetLabel(protocol == Protocol::kRw ? "rw" : "adv");
}
BENCHMARK(BM_MarkLargeRange)->Arg(0)->Arg(1);

// Contended lock acquisition: threads hammer the same leaf-covering range.
void BM_ContendedLock(benchmark::State& state) {
  static AddrSpace* space = nullptr;
  if (state.thread_index() == 0) {
    space = new AddrSpace(OptionsFor(state.range(0) == 0 ? Protocol::kRw : Protocol::kAdv));
  }
  VaRange range(8ull << 30, (8ull << 30) + kPageSize);
  for (auto _ : state) {
    RCursor cursor = space->Lock(range);
    benchmark::DoNotOptimize(&cursor);
  }
  if (state.thread_index() == 0) {
    delete space;
    space = nullptr;
  }
}
BENCHMARK(BM_ContendedLock)->Arg(0)->Arg(1)->Threads(1)->Threads(2)->Threads(4);

// Full MM entry-point cost through the uniform MmInterface facade, one
// instance per comparison system. Arg = MmKind of ComparisonSet() (0..4).
void BM_FacadeMmapMunmap(benchmark::State& state) {
  MmKind kind = static_cast<MmKind>(state.range(0));
  std::unique_ptr<MmInterface> mm = MakeMm(kind);
  constexpr uint64_t kLen = 16 * kPageSize;
  for (auto _ : state) {
    Result<Vaddr> va = mm->MmapAnon(kLen, Perm::RW());
    mm->Munmap(*va, kLen);
  }
  state.SetLabel(MmKindName(kind));
}
BENCHMARK(BM_FacadeMmapMunmap)->DenseRange(0, 4);

// Drives every comparison system through the facade and snapshots the
// telemetry histograms per system, so the emitted JSON carries p50/p99 for
// each MM op and each lock-protocol phase per manager. Runs after the
// google-benchmark suite so its timings are unaffected.
void EmitTelemetrySnapshots() {
  TelemetrySink sink("micro_ops");
  constexpr int kIters = 512;
  constexpr uint64_t kLen = 16 * kPageSize;
  for (MmKind kind : ComparisonSet()) {
    std::unique_ptr<MmInterface> mm = MakeMm(kind);
    Telemetry::Instance().Reset();
    for (int i = 0; i < kIters; ++i) {
      Result<Vaddr> va = mm->MmapAnon(kLen, Perm::RW());
      if (!va.ok()) {
        continue;
      }
      if (mm->demand_paging()) {
        for (uint64_t off = 0; off < kLen; off += kPageSize) {
          mm->HandleFault(*va + off, Access::kWrite);
        }
      }
      mm->Mprotect(*va, kLen, Perm::R());
      mm->Munmap(*va, kLen);
    }
    sink.Snapshot(std::string("facade_ops/") + MmKindName(kind));
  }
}

}  // namespace
}  // namespace cortenmm

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  cortenmm::EmitTelemetrySnapshots();
  return 0;
}
