// Figure 17: dedup and psearchy under the two allocator models.
//
// Paper shape: with ptmalloc (memory returned to the OS eagerly) Linux stops
// scaling early — dedup munmaps constantly and serializes on mmap_lock —
// while CortenMM keeps scaling (2.69x at 64 threads in the paper); with
// tcmalloc (memory retained) the OS is mostly out of the loop and Linux
// catches up. psearchy: CortenMM ~2x Linux with ptmalloc.
#include <cstdio>

#include "src/sim/workloads.h"

namespace cortenmm {
namespace {

using TraceFn = TraceResult (*)(MmKind, AllocModel, int, int);

void Panel(const char* title, TraceFn fn, int per_thread) {
  std::vector<int> sweep = SweepThreads();
  for (AllocModel model : {AllocModel::kPtmalloc, AllocModel::kTcmalloc}) {
    std::printf("\n--- %s / %s --- threads:", title, AllocModelName(model));
    for (int t : sweep) {
      std::printf(" %8d", t);
    }
    std::printf("  [items/s | kernel%%]\n");
    for (MmKind kind : {MmKind::kCortenAdv, MmKind::kCortenRw, MmKind::kLinux}) {
      std::printf("%-16s", MmKindName(kind));
      for (int threads : sweep) {
        TraceResult r = fn(kind, model, threads, per_thread);
        std::printf(" %6.3g|%2.0f%%", r.throughput(),
                    r.seconds > 0 ? 100 * r.kernel_seconds / (r.seconds * threads) : 0);
      }
      std::printf("\n");
    }
  }
}

}  // namespace
}  // namespace cortenmm

int main() {
  using namespace cortenmm;
  PrintHeader("Figure 17 — dedup & psearchy under allocator models",
              "Fig. 17",
              "ptmalloc: Linux flat (mmap_lock contention on munmap), CortenMM "
              "scales; tcmalloc: gap narrows (OS rarely involved).");
  Panel("dedup", &RunDedup, 100);
  Panel("psearchy", &RunPsearchy, 60);
  return 0;
}
