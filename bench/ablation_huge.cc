// Ablation: transparent huge pages end-to-end. A 64 MiB 2 MiB-aligned
// anonymous region is touched page by page with the huge policy off (every
// touch demand-fills one 4 KiB frame) and on (the first touch of each 2 MiB
// slot installs one level-2 leaf). Three effects are measured:
//
//   * fault count — 16384 4 KiB demand fills collapse into 32 huge faults,
//     so the reduction is ~512x; >=8x is the regression gate.
//   * gathered shootdown ranges — unmapping the region gathers one range per
//     cleared leaf before coalescing: 32 with huge leaves vs 16384 without.
//     The gate requires strictly fewer.
//   * simulated-TLB miss rate on a steady-state second pass — one TLB entry
//     covers 512 base pages, so the huge run must miss less.
//
// The binary exits nonzero when a gate fails, so the bench-smoke ctest
// target doubles as a regression gate (BENCH_huge.json carries the numbers).
#include <cassert>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/stats.h"
#include "src/core/addr_space.h"
#include "src/obs/telemetry.h"
#include "src/sim/bench_util.h"
#include "src/sim/corten_vm.h"
#include "src/sim/mmu.h"
#include "src/tlb/shootdown.h"
#include "src/tlb/tlb.h"

namespace cortenmm {
namespace {

constexpr uint64_t kRegionBytes = 64ull << 20;  // 64 MiB = 32 huge slots.

struct HugeTouchResult {
  uint64_t faults = 0;        // kPageFaults during the first (faulting) pass.
  uint64_t ranges = 0;        // kTlbRangesGathered during the munmap.
  uint64_t shootdowns = 0;    // kTlbShootdowns during the munmap.
  uint64_t huge_faults = 0;   // 2 MiB leaves installed.
  uint64_t fallbacks = 0;     // Huge attempts that fell back to 4 KiB.
  double tlb_miss_rate = 0.0;  // Steady-state second pass.
};

HugeTouchResult RunHugeTouch(bool huge) {
  AddrSpace::Options options;
  options.protocol = Protocol::kAdv;
  options.huge_pages = huge;
  HugeTouchResult result;
  {
    CortenVm mm(options);
    mm.NoteCpuActive(CurrentCpu());

    Result<Vaddr> va = mm.MmapAnon(kRegionBytes, Perm::RW());
    assert(va.ok());

    uint64_t faults_before = GlobalStats().Total(Counter::kPageFaults);
    uint64_t huge_before = GlobalStats().Total(Counter::kHugeFaults);
    uint64_t fallback_before = GlobalStats().Total(Counter::kHugeFallbacks);
    VoidResult touched = MmuSim::TouchRange(mm, *va, kRegionBytes, /*write=*/true);
    assert(touched.ok());
    (void)touched;
    result.faults = GlobalStats().Total(Counter::kPageFaults) - faults_before;
    result.huge_faults = GlobalStats().Total(Counter::kHugeFaults) - huge_before;
    result.fallbacks =
        GlobalStats().Total(Counter::kHugeFallbacks) - fallback_before;

    // Steady state: everything is resident, so the second pass measures pure
    // translation behaviour — how far 2 MiB entries stretch the TLB.
    Tlb& tlb = TlbSystem::Instance().CpuTlb(CurrentCpu());
    uint64_t lookups_before = tlb.lookups();
    uint64_t hits_before = tlb.hits();
    touched = MmuSim::TouchRange(mm, *va, kRegionBytes, /*write=*/false);
    assert(touched.ok());
    uint64_t lookups = tlb.lookups() - lookups_before;
    uint64_t hits = tlb.hits() - hits_before;
    result.tlb_miss_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(lookups - hits) / static_cast<double>(lookups);

    uint64_t ranges_before = GlobalStats().Total(Counter::kTlbRangesGathered);
    uint64_t shootdowns_before = GlobalStats().Total(Counter::kTlbShootdowns);
    VoidResult unmapped = mm.Munmap(*va, kRegionBytes);
    assert(unmapped.ok());
    (void)unmapped;
    result.ranges =
        GlobalStats().Total(Counter::kTlbRangesGathered) - ranges_before;
    result.shootdowns =
        GlobalStats().Total(Counter::kTlbShootdowns) - shootdowns_before;
  }
  TlbSystem::Instance().DrainAll();
  return result;
}

}  // namespace
}  // namespace cortenmm

int main(int argc, char** argv) {
  using namespace cortenmm;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  (void)smoke;  // The workload is deterministic and fast; smoke runs it whole.

  BuildConfig::Set("protocol", "adv");
  BuildConfig::Set("page_size_policy", "thp-ablation");
  TelemetrySink sink("huge");

  PrintHeader("Ablation — transparent huge pages (multi-size page runs)",
              "THP policy on the multi-size substrate (DESIGN.md §4)",
              ">=8x fewer faults and fewer gathered ranges with huge=on.");
  std::printf("%-8s %12s %12s %12s %12s %12s %10s\n", "policy:", "faults",
              "huge_faults", "fallbacks", "ranges", "shootdowns", "tlb_miss");

  HugeTouchResult off = RunHugeTouch(/*huge=*/false);
  sink.Snapshot("touch64M/4k");
  HugeTouchResult on = RunHugeTouch(/*huge=*/true);
  sink.Snapshot("touch64M/thp");

  for (const auto& [label, r] :
       {std::pair<const char*, const HugeTouchResult&>{"4k", off},
        std::pair<const char*, const HugeTouchResult&>{"thp", on}}) {
    std::printf("%-8s %12llu %12llu %12llu %12llu %12llu %9.2f%%\n", label,
                static_cast<unsigned long long>(r.faults),
                static_cast<unsigned long long>(r.huge_faults),
                static_cast<unsigned long long>(r.fallbacks),
                static_cast<unsigned long long>(r.ranges),
                static_cast<unsigned long long>(r.shootdowns),
                r.tlb_miss_rate * 100.0);
  }

  bool gate_ok = true;
  double fault_reduction =
      on.faults == 0 ? 0.0
                     : static_cast<double>(off.faults) / static_cast<double>(on.faults);
  std::printf("\nfault reduction: %.1fx (gate: >=8x)\n", fault_reduction);
  if (fault_reduction < 8.0) {
    std::printf("  FAIL: fault reduction %.1fx is below the 8x gate\n",
                fault_reduction);
    gate_ok = false;
  }
  if (on.ranges >= off.ranges) {
    std::printf("  FAIL: huge=on gathered %llu ranges, not fewer than %llu\n",
                static_cast<unsigned long long>(on.ranges),
                static_cast<unsigned long long>(off.ranges));
    gate_ok = false;
  }
  if (on.tlb_miss_rate > off.tlb_miss_rate) {
    std::printf("  note: huge=on TLB miss rate %.2f%% above 4k %.2f%%\n",
                on.tlb_miss_rate * 100.0, off.tlb_miss_rate * 100.0);
  }

  PrintTraceDropRate();
  std::string json_path = sink.Write();
  std::printf("\ntelemetry: %s\n", json_path.c_str());
  return gate_ok ? 0 : 1;
}
