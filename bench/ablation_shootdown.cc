// Ablation: the TLB shootdown strategies of §4.5 — synchronous IPI-style,
// early-acknowledgement [Amit et al.], and LATR-style lazy — on the workload
// that exercises them hardest (multithreaded munmap of mapped pages, plus the
// mixed map/unmap churn where lazy reclamation pays off).
//
// Expected shape: sync <= early-ack <= latr on unmap throughput once more
// than one CPU is active, because sync serializes a round trip per target
// CPU, early-ack overlaps the flushes, and latr defers them to the targets'
// ticks entirely.
#include <cstdio>

#include "src/sim/corten_vm.h"
#include "src/sim/mmu.h"
#include "src/sim/workloads.h"

namespace cortenmm {
namespace {

double RunUnmapChurn(TlbPolicy policy, int threads) {
  AddrSpace::Options options;
  options.protocol = Protocol::kAdv;
  options.tlb_policy = policy;
  CortenVm mm(options);

  constexpr int kRegions = 256;
  constexpr uint64_t kRegionBytes = 16 * 1024;
  std::vector<std::vector<Vaddr>> regions(threads);

  PhasedSpec spec;
  spec.threads = threads;
  spec.rounds = 3;
  spec.ops_per_round = kRegions;
  spec.setup = [&](int t, int) {
    for (int i = 0; i < kRegions; ++i) {
      Result<Vaddr> va = mm.MmapAnon(kRegionBytes, Perm::RW());
      assert(va.ok());
      MmuSim::TouchRange(mm, *va, kRegionBytes, /*write=*/true);
      regions[t].push_back(*va);
    }
  };
  spec.timed_op = [&](int t, int, int op) {
    // Unmap + immediately touch a neighbour: keeps every CPU active so the
    // shootdown strategies actually differ (idle CPUs never tick).
    mm.Munmap(regions[t][op], kRegionBytes);
    if (op + 1 < kRegions) {
      uint64_t value = 0;
      MmuSim::Read(mm, regions[t][op + 1], &value);
    }
  };
  spec.teardown = [&](int t, int) { regions[t].clear(); };
  return RunPhased(spec);
}

}  // namespace
}  // namespace cortenmm

int main() {
  using namespace cortenmm;
  PrintHeader("Ablation — TLB shootdown strategies (paper §4.5)",
              "design-choice ablation (DESIGN.md §4); feeds the Fig. 16 adv_base rows",
              "latr >= early-ack >= sync once multiple CPUs are active.");
  std::vector<int> sweep = SweepThreads();
  std::printf("%-16s", "threads:");
  for (int t : sweep) {
    std::printf(" %9d", t);
  }
  std::printf("   [unmap+touch ops/s]\n");
  for (TlbPolicy policy : {TlbPolicy::kSync, TlbPolicy::kEarlyAck, TlbPolicy::kLatr}) {
    std::vector<double> row;
    for (int threads : sweep) {
      row.push_back(RunUnmapChurn(policy, threads));
    }
    PrintRow(TlbPolicyName(policy), row);
  }
  return 0;
}
