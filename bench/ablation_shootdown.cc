// Ablation: the TLB shootdown strategies of §4.5 — synchronous IPI-style,
// early-acknowledgement [Amit et al.], and LATR-style lazy — on the workload
// that exercises them hardest (multithreaded munmap of mapped pages, plus the
// mixed map/unmap churn where lazy reclamation pays off).
//
// Expected shape: sync <= early-ack <= latr on unmap throughput once more
// than one CPU is active, because sync serializes a round trip per target
// CPU, early-ack overlaps the flushes, and latr defers them to the targets'
// ticks entirely.
//
// Second part: the mmu_gather ablation. A transaction that unmaps N sparse
// pages used to issue one shootdown per page (unbatched) or flush the whole
// bounding box; with the gather it submits all N discrete ranges as ONE
// batch. The counter-based comparison below is deterministic — batched must
// issue N× fewer kTlbShootdowns than unbatched at N ranges per transaction —
// and the binary exits nonzero if the reduction falls under 4×, so the
// bench-smoke ctest target doubles as a regression gate.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/stats.h"
#include "src/core/addr_space.h"
#include "src/obs/telemetry.h"
#include "src/pmm/buddy.h"
#include "src/pmm/phys_mem.h"
#include "src/sim/corten_vm.h"
#include "src/sim/mmu.h"
#include "src/sim/workloads.h"
#include "src/tlb/gather.h"

namespace cortenmm {
namespace {

double RunUnmapChurn(TlbPolicy policy, int threads) {
  AddrSpace::Options options;
  options.protocol = Protocol::kAdv;
  options.tlb_policy = policy;
  CortenVm mm(options);

  constexpr int kRegions = 256;
  constexpr uint64_t kRegionBytes = 16 * 1024;
  std::vector<std::vector<Vaddr>> regions(threads);

  PhasedSpec spec;
  spec.threads = threads;
  spec.rounds = 3;
  spec.ops_per_round = kRegions;
  spec.setup = [&](int t, int) {
    for (int i = 0; i < kRegions; ++i) {
      Result<Vaddr> va = mm.MmapAnon(kRegionBytes, Perm::RW());
      assert(va.ok());
      MmuSim::TouchRange(mm, *va, kRegionBytes, /*write=*/true);
      regions[t].push_back(*va);
    }
  };
  spec.timed_op = [&](int t, int, int op) {
    // Unmap + immediately touch a neighbour: keeps every CPU active so the
    // shootdown strategies actually differ (idle CPUs never tick).
    mm.Munmap(regions[t][op], kRegionBytes);
    if (op + 1 < kRegions) {
      uint64_t value = 0;
      MmuSim::Read(mm, regions[t][op + 1], &value);
    }
  };
  spec.teardown = [&](int t, int) { regions[t].clear(); };
  return RunPhased(spec);
}

// ---------------------------------------------------------------------------
// Gather ablation: batched vs. unbatched sparse unmap
// ---------------------------------------------------------------------------

struct SparseResult {
  uint64_t shootdowns = 0;  // kTlbShootdowns delta across every unmap pass.
  double unmap_seconds = 0.0;
  int passes = 0;
};

// Unmaps kMaxRanges single pages spaced 2 MiB apart, |reps| times. Batched:
// one transaction covering the span, so the gather submits all 16 discrete
// ranges as one ShootdownBatch. Unbatched: one single-page transaction per
// victim, the pre-gather behaviour. Only the counter delta differs between
// the two — the pages unmapped and the frames freed are identical.
SparseResult RunSparseUnmap(TlbPolicy policy, bool batched, int reps) {
  AddrSpace::Options options;
  options.protocol = Protocol::kAdv;
  options.tlb_policy = policy;
  AddrSpace space(options);
  space.NoteCpuActive(CurrentCpu());

  // Exactly kMaxRanges victims: the largest batch that stays precise (the
  // full-ASID fallback triggers only on the 17th distinct range).
  constexpr int kPages = static_cast<int>(TlbGather::kMaxRanges);
  constexpr uint64_t kStride = 2ull << 20;  // 2 MiB spacing: nothing coalesces.
  const Vaddr base = 1ull << 32;
  const VaRange span(base, base + static_cast<uint64_t>(kPages) * kStride);

  SparseResult result;
  result.passes = reps;
  for (int rep = 0; rep < reps; ++rep) {
    {
      RCursor cursor = space.Lock(span);
      for (int i = 0; i < kPages; ++i) {
        Result<Pfn> frame = BuddyAllocator::Instance().AllocZeroedFrame();
        assert(frame.ok());
        PhysMem::Instance().Descriptor(*frame).ResetForAlloc(FrameType::kAnon);
        VoidResult mapped =
            cursor.Map(base + static_cast<uint64_t>(i) * kStride, *frame, Perm::RW());
        assert(mapped.ok());
        (void)mapped;
      }
    }
    uint64_t before = GlobalStats().Total(Counter::kTlbShootdowns);
    auto t0 = std::chrono::steady_clock::now();
    if (batched) {
      RCursor cursor = space.Lock(span);
      for (int i = 0; i < kPages; ++i) {
        Vaddr va = base + static_cast<uint64_t>(i) * kStride;
        VoidResult r = cursor.Unmap(VaRange(va, va + kPageSize));
        assert(r.ok());
        (void)r;
      }
    } else {
      for (int i = 0; i < kPages; ++i) {
        Vaddr va = base + static_cast<uint64_t>(i) * kStride;
        RCursor cursor = space.Lock(VaRange(va, va + kPageSize));
        VoidResult r = cursor.Unmap(VaRange(va, va + kPageSize));
        assert(r.ok());
        (void)r;
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    result.unmap_seconds += std::chrono::duration<double>(t1 - t0).count();
    result.shootdowns += GlobalStats().Total(Counter::kTlbShootdowns) - before;
  }
  // Under kLatr the batches' dead frames sit in deferred entries; drain them
  // so consecutive runs do not accumulate pending reclamation.
  TlbSystem::Instance().DrainAll();
  return result;
}

}  // namespace
}  // namespace cortenmm

int main(int argc, char** argv) {
  using namespace cortenmm;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  TelemetrySink sink("shootdown");

  PrintHeader("Ablation — TLB shootdown strategies (paper §4.5)",
              "design-choice ablation (DESIGN.md §4); feeds the Fig. 16 adv_base rows",
              "latr >= early-ack >= sync once multiple CPUs are active.");
  std::vector<int> sweep = smoke ? std::vector<int>{2} : SweepThreads();
  std::printf("%-16s", "threads:");
  for (int t : sweep) {
    std::printf(" %9d", t);
  }
  std::printf("   [unmap+touch ops/s]\n");
  for (TlbPolicy policy : {TlbPolicy::kSync, TlbPolicy::kEarlyAck, TlbPolicy::kLatr}) {
    std::vector<double> row;
    for (int threads : sweep) {
      row.push_back(RunUnmapChurn(policy, threads));
    }
    PrintRow(TlbPolicyName(policy), row);
    sink.Snapshot(std::string("churn/") + TlbPolicyName(policy));
  }

  PrintHeader("Ablation — multi-range shootdown gather (mmu_gather)",
              "gather batching (DESIGN.md, \"Multi-range shootdown gather\")",
              "batched issues ~16x fewer shootdowns than unbatched; >=4x is the gate.");
  const int reps = smoke ? 4 : 64;
  std::printf("%-16s %12s %12s %12s   [16 sparse pages/pass, %d passes]\n", "policy:",
              "batched", "unbatched", "reduction", reps);
  bool gate_ok = true;
  for (TlbPolicy policy : {TlbPolicy::kSync, TlbPolicy::kEarlyAck, TlbPolicy::kLatr}) {
    SparseResult with_gather = RunSparseUnmap(policy, /*batched=*/true, reps);
    sink.Snapshot(std::string("sparse_unmap/") + TlbPolicyName(policy) + "/batched");
    SparseResult without = RunSparseUnmap(policy, /*batched=*/false, reps);
    sink.Snapshot(std::string("sparse_unmap/") + TlbPolicyName(policy) + "/unbatched");
    double reduction = with_gather.shootdowns == 0
                           ? 0.0
                           : static_cast<double>(without.shootdowns) /
                                 static_cast<double>(with_gather.shootdowns);
    std::printf("%-16s %12llu %12llu %11.1fx\n", TlbPolicyName(policy),
                static_cast<unsigned long long>(with_gather.shootdowns),
                static_cast<unsigned long long>(without.shootdowns), reduction);
    if (reduction < 4.0) {
      std::printf("  FAIL: %s reduction %.1fx is below the 4x gate\n",
                  TlbPolicyName(policy), reduction);
      gate_ok = false;
    }
  }

  PrintTraceDropRate();
  std::string json_path = sink.Write();
  std::printf("\ntelemetry: %s\n", json_path.c_str());
  return gate_ok ? 0 : 1;
}
