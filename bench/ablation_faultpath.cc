// Ablation: the anonymous-fault fast path (DESIGN.md §9). T worker threads,
// each bound to its own CPU and owning its own VmSpace, cycle through
// mmap → write-touch every page → munmap on a private 2 MiB region. The
// munmap parks the freed frames in that CPU's magazines (spilling whole
// magazines to the depot), the scrubber pass zeroes the parked frames, and
// the next cycle's demand-zero faults consume them back — the steady state
// the magazine layer is built for. Three configurations are measured after
// identical warmup:
//
//   * mag=off — every frame allocation/free takes the global buddy lock and
//     every demand-zero fill memsets inline: the pre-magazine baseline.
//   * mag=on — per-CPU magazines + depot + pre-scrub. Gates: ZERO global
//     buddy-lock acquisitions across the whole measured phase (faults,
//     frees, and PT-page churn included), fault p50 at least 1.5x better
//     than mag=off, and nonzero mag_hits / prezero_hits (the fast path
//     actually ran allocation-free and zero-fill-free).
//   * mag=on + fault-around=16 under the reclaim governor — each demand-zero
//     fault maps up to 15 not-present neighbours in the same transaction.
//     Gates: >=4x fewer faults than mag=on and nonzero fault_around_mapped.
//
// The run ends with a magazine drain + leak check: every parked frame must
// flush back to the free lists (zero frame leaks), so the caches can never
// strand memory. Nonzero exit on any gate failure; BENCH_faultpath.json
// carries the numbers.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/cpu.h"
#include "src/common/stats.h"
#include "src/core/addr_space.h"
#include "src/obs/telemetry.h"
#include "src/pmm/buddy.h"
#include "src/reclaim/reclaim.h"
#include "src/sim/bench_util.h"
#include "src/sim/corten_vm.h"
#include "src/sim/mmu.h"
#include "src/tlb/shootdown.h"
#include "src/verif/wf_checker.h"

// The p50-speedup gate compares wall-clock timings, which the sanitizers
// distort beyond use: tsan intercepts every atomic and memory access, so the
// lock path and the magazine path cost nearly the same (~1.1x measured, vs
// ~1.8-2.5x native). Under a sanitizer the timing gate becomes informational;
// the functional gates (zero buddy-lock acquisitions, magazine/prezero hits,
// fault-around counts, frame-leak check) still fail the run.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define FAULTPATH_TIMING_GATES 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define FAULTPATH_TIMING_GATES 0
#else
#define FAULTPATH_TIMING_GATES 1
#endif
#else
#define FAULTPATH_TIMING_GATES 1
#endif

namespace cortenmm {
namespace {

constexpr int kThreads = 4;
constexpr uint64_t kPagesPerRegion = 512;  // 2 MiB per thread per cycle.
constexpr int kWarmupCycles = 2;
constexpr int kMeasuredCycles = 4;
// Frames parked per CPU before warmup. The steady state has every thread
// alternating a 512-frame alloc burst with a 512-frame free burst; if the
// parked stock equals exactly one aligned burst's demand, the depot
// occasionally bottoms out (alloc side) — one stray global-lock acquisition
// that flakes the zero-lock gate. 1280 per CPU lands the stock with >3000
// frames of headroom on both sides: above one full burst plus in-flight page
// tables and RCU-deferred frees (kThreads * 512 = 2048 + slack), and below
// the parked-capacity cap (kThreads * 64 magazine slots + 128 depot
// magazines * 64 = 8448), so neither the empty-depot refill nor the
// full-depot flush can take the global lock mid-measurement.
constexpr uint64_t kPrechargeFrames = 1280;

struct PhaseResult {
  uint64_t faults = 0;
  uint64_t buddy_locks = 0;
  uint64_t mag_hits = 0;
  uint64_t prezero_hits = 0;
  uint64_t around_mapped = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
};

// Runs |cycles| mmap/touch/munmap cycles on each of |vms| from its own
// pinned thread. |scrub| emulates the pre-scrub daemon's work inside the
// loop (between cycles, never on the fault path) so the steady state is
// deterministic rather than racing a background thread.
void RunCycles(std::vector<std::unique_ptr<CortenVm>>& vms, int cycles, bool scrub) {
  std::vector<std::thread> threads;
  for (int t = 0; t < static_cast<int>(vms.size()); ++t) {
    threads.emplace_back([&vms, t, cycles, scrub] {
      BindThisThreadToCpu(t);
      CortenVm& mm = *vms[t];
      mm.NoteCpuActive(CurrentCpu());
      for (int c = 0; c < cycles; ++c) {
        Result<Vaddr> va = mm.MmapAnon(kPagesPerRegion << kPageBits, Perm::RW());
        if (!va.ok()) {
          std::abort();
        }
        if (!MmuSim::TouchRange(mm, *va, kPagesPerRegion << kPageBits,
                                /*write=*/true)
                 .ok()) {
          std::abort();
        }
        if (!mm.Munmap(*va, kPagesPerRegion << kPageBits).ok()) {
          std::abort();
        }
        if (scrub) {
          BuddyAllocator::Instance().ScrubBatch(kPagesPerRegion);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
}

PhaseResult RunMode(TelemetrySink& sink, const char* label,
                    const AddrSpace::Options& options, bool magazines, bool scrub) {
  BuddyAllocator::Instance().SetMagazinesEnabled(magazines);
  if (magazines) {
    // Park the pre-charge stock (see kPrechargeFrames) on each CPU's
    // magazines and the shared depot before any timing starts.
    std::vector<std::thread> chargers;
    for (int t = 0; t < kThreads; ++t) {
      chargers.emplace_back([t] {
        BindThisThreadToCpu(t);
        std::vector<Pfn> frames;
        frames.reserve(kPrechargeFrames);
        for (uint64_t i = 0; i < kPrechargeFrames; ++i) {
          Result<Pfn> f = BuddyAllocator::Instance().AllocFrame();
          if (f.ok()) {
            frames.push_back(*f);
          }
        }
        for (Pfn f : frames) {
          BuddyAllocator::Instance().FreeFrame(f);
        }
      });
    }
    for (std::thread& thread : chargers) {
      thread.join();
    }
  }
  std::vector<std::unique_ptr<CortenVm>> vms;
  for (int t = 0; t < kThreads; ++t) {
    vms.push_back(std::make_unique<CortenVm>(options));
  }
  RunCycles(vms, kWarmupCycles, scrub);

  // Snapshot resets both the latency histograms AND the global counters, so
  // the baseline counter reads must come after it (not before, or the deltas
  // below wrap negative).
  sink.Snapshot(std::string(label) + "/warmup");
  const StatsDomain& stats = GlobalStats();
  uint64_t faults0 = stats.Total(Counter::kPageFaults);
  uint64_t locks0 = stats.Total(Counter::kBuddyLockAcquisitions);
  uint64_t hits0 = stats.Total(Counter::kMagHits);
  uint64_t prezero0 = stats.Total(Counter::kPrezeroHits);
  uint64_t around0 = stats.Total(Counter::kFaultAroundMapped);

  RunCycles(vms, kMeasuredCycles, scrub);

  PhaseResult result;
  result.faults = stats.Total(Counter::kPageFaults) - faults0;
  result.buddy_locks = stats.Total(Counter::kBuddyLockAcquisitions) - locks0;
  result.mag_hits = stats.Total(Counter::kMagHits) - hits0;
  result.prezero_hits = stats.Total(Counter::kPrezeroHits) - prezero0;
  result.around_mapped = stats.Total(Counter::kFaultAroundMapped) - around0;
  HistogramSnapshot faults = Telemetry::Instance().MergedOp(MmOp::kFault);
  result.p50_ns = faults.Percentile(0.5);
  result.p99_ns = faults.Percentile(0.99);
  vms.clear();  // Destroy the spaces (and free their frames) inside the mode.
  TlbSystem::Instance().DrainAll();
  sink.Snapshot(label);
  return result;
}

}  // namespace
}  // namespace cortenmm

int main(int argc, char** argv) {
  using namespace cortenmm;
  for (int i = 1; i < argc; ++i) {
    (void)argv[i];  // --smoke: the workload is already smoke-sized.
  }

  BuildConfig::Set("protocol", "adv");
  BuildConfig::Set("page_size_policy", "faultpath-ablation");
  TelemetrySink sink("faultpath");

  PrintHeader("Ablation — fault fast path (magazines, pre-scrub, fault-around)",
              "per-CPU frame magazines + depot batching (DESIGN.md §9)",
              "0 buddy-lock acquisitions and >=1.5x fault p50 in steady state.");

  const uint64_t baseline_free = BuddyAllocator::Instance().FreeFrameCount();

  AddrSpace::Options options;
  options.protocol = Protocol::kAdv;

  // The timing gates compare two live measurements on whatever machine CI
  // gives us; a single scheduler hiccup in either phase can flip the verdict.
  // Measure the off/on pair up to kAttempts times and gate on the best pair —
  // retries absorb noise, they cannot manufacture a speedup that is not there.
  constexpr int kAttempts = 3;
  PhaseResult off;
  PhaseResult on;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    std::string suffix = attempt == 0 ? "" : "_r" + std::to_string(attempt + 1);
    off = RunMode(sink, ("mag_off" + suffix).c_str(), options,
                  /*magazines=*/false, /*scrub=*/false);
    on = RunMode(sink, ("mag_on" + suffix).c_str(), options,
                 /*magazines=*/true, /*scrub=*/true);
    bool locks_clean = on.buddy_locks == 0;
#if CORTENMM_TELEMETRY && FAULTPATH_TIMING_GATES
    bool fast_enough =
        on.p50_ns != 0 && static_cast<double>(off.p50_ns) >=
                              1.5 * static_cast<double>(on.p50_ns);
#else
    bool fast_enough = true;
#endif
    if (locks_clean && fast_enough) {
      break;
    }
    if (attempt + 1 < kAttempts) {
      std::printf("attempt %d noisy (buddy_lk=%llu, p50 off/on %llu/%llu); "
                  "remeasuring\n",
                  attempt + 1, static_cast<unsigned long long>(on.buddy_locks),
                  static_cast<unsigned long long>(off.p50_ns),
                  static_cast<unsigned long long>(on.p50_ns));
    }
  }

  // Fault-around runs under the real reclaim governor (which admits the
  // speculation through FaultAroundBudget) with the pre-scrub daemon live.
  PhaseResult around;
  {
    AddrSpace::Options fa_options = options;
    fa_options.fault_around_pages = 16;
    ScopedReclaim reclaim;
    around = RunMode(sink, "mag_on_fault_around", fa_options, /*magazines=*/true,
                     /*scrub=*/false);
  }

  std::printf("%-20s %10s %10s %10s %10s %10s %12s %10s\n", "mode:", "faults",
              "p50_ns", "p99_ns", "buddy_lk", "mag_hits", "prezero", "around");
  for (const auto& [label, r] :
       {std::pair<const char*, const PhaseResult&>{"mag_off", off},
        std::pair<const char*, const PhaseResult&>{"mag_on", on},
        std::pair<const char*, const PhaseResult&>{"mag_on+fault_around", around}}) {
    std::printf("%-20s %10llu %10llu %10llu %10llu %10llu %12llu %10llu\n", label,
                static_cast<unsigned long long>(r.faults),
                static_cast<unsigned long long>(r.p50_ns),
                static_cast<unsigned long long>(r.p99_ns),
                static_cast<unsigned long long>(r.buddy_locks),
                static_cast<unsigned long long>(r.mag_hits),
                static_cast<unsigned long long>(r.prezero_hits),
                static_cast<unsigned long long>(r.around_mapped));
  }

  bool gate_ok = true;

  if (on.buddy_locks != 0) {
    std::printf("  FAIL: %llu global buddy-lock acquisitions in the magazine "
                "steady state (gate: 0)\n",
                static_cast<unsigned long long>(on.buddy_locks));
    gate_ok = false;
  }
#if CORTENMM_TELEMETRY && FAULTPATH_TIMING_GATES
  double speedup = on.p50_ns == 0
                       ? 0.0
                       : static_cast<double>(off.p50_ns) / static_cast<double>(on.p50_ns);
  std::printf("\nfault p50 speedup (mag on vs off): %.2fx (gate: >=1.5x)\n", speedup);
  if (speedup < 1.5) {
    std::printf("  FAIL: p50 speedup %.2fx is below the 1.5x gate\n", speedup);
    gate_ok = false;
  }
#elif CORTENMM_TELEMETRY
  double speedup = on.p50_ns == 0
                       ? 0.0
                       : static_cast<double>(off.p50_ns) / static_cast<double>(on.p50_ns);
  std::printf("\nfault p50 speedup (mag on vs off): %.2fx — informational only "
              "(timing gate disabled under sanitizers)\n", speedup);
#else
  std::printf("\nfault p50 gate skipped: telemetry compiled out\n");
#endif
  if (on.mag_hits == 0) {
    std::printf("  FAIL: zero magazine hits — the fast path never ran\n");
    gate_ok = false;
  }
  if (on.prezero_hits == 0) {
    std::printf("  FAIL: zero prezero hits — every fault zeroed inline\n");
    gate_ok = false;
  }
  if (around.faults * 4 > on.faults) {
    std::printf("  FAIL: fault-around left %llu faults, not >=4x fewer than %llu\n",
                static_cast<unsigned long long>(around.faults),
                static_cast<unsigned long long>(on.faults));
    gate_ok = false;
  }
  if (around.around_mapped == 0) {
    std::printf("  FAIL: fault-around mapped zero neighbour pages\n");
    gate_ok = false;
  }

  // Drain + shutdown leak gate: nothing may stay stranded in a magazine or
  // depot shelf once the caches are flushed.
  BuddyAllocator::Instance().DrainMagazines();
  LeakReport leaks = CheckFrameLeaks(baseline_free);
  if (!leaks.ok) {
    std::printf("  FAIL: leaked %lld frames after magazine drain (baseline %llu, "
                "now %llu, stranded cached %llu, stranded anon %llu)\n",
                static_cast<long long>(leaks.leaked),
                static_cast<unsigned long long>(leaks.baseline_free),
                static_cast<unsigned long long>(leaks.current_free),
                static_cast<unsigned long long>(leaks.stranded_cached),
                static_cast<unsigned long long>(leaks.stranded_anon));
    gate_ok = false;
  } else {
    std::printf("frame leaks after drain + scrub shutdown: 0\n");
  }

  PrintTraceDropRate();
  std::string json_path = sink.Write();
  std::printf("\ntelemetry: %s\n", json_path.c_str());
  return gate_ok ? 0 : 1;
}
