// Figure 20: the LMbench-style address-space-enumeration benchmarks — fork,
// fork+exec, and shell — CortenMM vs Linux.
//
// Paper shape: fork is CortenMM's worst case (it must walk the page table to
// enumerate the address space where Linux walks its VMA list): ~18% slower.
// fork+exec flips in CortenMM's favour (~23% faster: the exec'd child's
// page-fault storm dominates), and shell is a wash.
//
// Both systems are driven through the MmInterface facade — Fork() is a
// first-class facade operation, so no per-system adapters are needed.
#include <cassert>
#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/bench_util.h"
#include "src/sim/mmu.h"

namespace cortenmm {
namespace {

// The "parent process" image: a moderately populated address space (text,
// heap, stacks), sparse like a real dummy process.
void PopulateParent(MmInterface& mm, std::vector<std::pair<Vaddr, uint64_t>>* regions) {
  struct Region {
    uint64_t bytes;
    uint64_t touch_bytes;
  };
  const Region layout[] = {
      {512 * 1024, 256 * 1024},  // text
      {256 * 1024, 128 * 1024},  // data/heap
      {1ull << 20, 64 * 1024},   // stack (sparse)
      {128 * 1024, 128 * 1024},  // libs
  };
  for (const Region& region : layout) {
    Result<Vaddr> va = mm.MmapAnon(region.bytes, Perm::RW());
    assert(va.ok());
    MmuSim::TouchRange(mm, *va, region.touch_bytes, /*write=*/true);
    regions->push_back({*va, region.bytes});
  }
}

// One "exec": tear down the child's mappings and build a fresh small image.
void ExecInto(MmInterface& child, const std::vector<std::pair<Vaddr, uint64_t>>& regions) {
  for (auto [va, bytes] : regions) {
    child.Munmap(va, bytes);
  }
  Result<Vaddr> text = child.MmapAnon(256 * 1024, Perm::RWX());
  assert(text.ok());
  MmuSim::TouchRange(child, *text, 128 * 1024, /*write=*/true);
}

struct Timings {
  double fork_us;
  double fork_exec_us;
  double shell_us;
};

Timings MeasureVia(MmKind kind, int iters) {
  std::unique_ptr<MmInterface> parent_owner = MakeMm(kind);
  MmInterface& parent = *parent_owner;
  std::vector<std::pair<Vaddr, uint64_t>> regions;
  PopulateParent(parent, &regions);
  Timings timings{};

  auto time_us = [&](auto&& body) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      body();
    }
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
  };

  timings.fork_us = time_us([&] { auto child = parent.Fork(); });
  timings.fork_exec_us = time_us([&] {
    auto child = parent.Fork();
    ExecInto(*child, regions);
  });
  timings.shell_us = time_us([&] {
    auto child = parent.Fork();       // sh
    ExecInto(*child, regions);        // exec sh
    auto grandchild = child->Fork();  // sh -c echo: fork again...
    ExecInto(*grandchild, regions);   // ...exec echo...
    Result<Vaddr> out = grandchild->MmapAnon(64 * 1024, Perm::RW());  // echo buffers
    assert(out.ok());
    (void)out;
  });
  return timings;
}

}  // namespace
}  // namespace cortenmm

int main() {
  using namespace cortenmm;
  PrintHeader("Figure 20 — LMbench fork / fork+exec / shell",
              "Fig. 20 (latency, lower is better)",
              "fork: CortenMM slower than Linux (page-table walk vs VMA list); "
              "fork+exec: CortenMM faster (fault handling dominates); shell: "
              "comparable.");
  constexpr int kIters = 12;
  Timings corten = MeasureVia(MmKind::kCortenAdv, kIters);
  Timings linux_mm = MeasureVia(MmKind::kLinux, kIters);
  std::printf("%-16s %12s %12s %12s   [us/op]\n", "system", "fork", "fork+exec", "shell");
  std::printf("%-16s %12.1f %12.1f %12.1f\n", "CortenMM-adv", corten.fork_us,
              corten.fork_exec_us, corten.shell_us);
  std::printf("%-16s %12.1f %12.1f %12.1f\n", "Linux", linux_mm.fork_us,
              linux_mm.fork_exec_us, linux_mm.shell_us);
  std::printf("\nCortenMM vs Linux: fork %+.0f%%, fork+exec %+.0f%%, shell %+.0f%% "
              "(paper: +17.7%%, -23.0%%, ~0%%; positive = slower)\n",
              (corten.fork_us / linux_mm.fork_us - 1) * 100,
              (corten.fork_exec_us / linux_mm.fork_exec_us - 1) * 100,
              (corten.shell_us / linux_mm.shell_us - 1) * 100);
  return 0;
}
