// Figure 20: the LMbench-style address-space-enumeration benchmarks — fork,
// fork+exec, and shell — CortenMM vs Linux.
//
// Paper shape: fork is CortenMM's worst case (it must walk the page table to
// enumerate the address space where Linux walks its VMA list): ~18% slower.
// fork+exec flips in CortenMM's favour (~23% faster: the exec'd child's
// page-fault storm dominates), and shell is a wash.
#include <cstdio>
#include <memory>

#include "src/baseline/linux_mm.h"
#include "src/sim/mmu.h"
#include "src/sim/workloads.h"

namespace cortenmm {
namespace {

// The "parent process" image: a moderately populated address space (text,
// heap, stacks), sparse like a real dummy process.
template <typename Mm>
void PopulateParent(Mm& mm, std::vector<std::pair<Vaddr, uint64_t>>* regions) {
  struct Region {
    uint64_t bytes;
    uint64_t touch_bytes;
  };
  const Region layout[] = {
      {512 * 1024, 256 * 1024},  // text
      {256 * 1024, 128 * 1024},  // data/heap
      {1ull << 20, 64 * 1024},   // stack (sparse)
      {128 * 1024, 128 * 1024},  // libs
  };
  for (const Region& region : layout) {
    Result<Vaddr> va = mm.MmapAnon(region.bytes, Perm::RW());
    assert(va.ok());
    MmuSim::TouchRange(mm, *va, region.touch_bytes, /*write=*/true);
    regions->push_back({*va, region.bytes});
  }
}

// One "exec": tear down the child's mappings and build a fresh small image.
template <typename Child>
void ExecInto(Child& child, const std::vector<std::pair<Vaddr, uint64_t>>& regions) {
  for (auto [va, bytes] : regions) {
    child.Munmap(va, bytes);
  }
  Result<Vaddr> text = child.MmapAnon(256 * 1024, Perm::RWX());
  assert(text.ok());
  MmuSim::TouchRange(child, *text, 128 * 1024, /*write=*/true);
}

struct Timings {
  double fork_us;
  double fork_exec_us;
  double shell_us;
};

template <typename Mm>
Timings MeasureVia(int iters) {
  Mm parent;
  std::vector<std::pair<Vaddr, uint64_t>> regions;
  PopulateParent(parent, &regions);
  Timings timings{};

  auto time_us = [&](auto&& body) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      body();
    }
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
  };

  timings.fork_us = time_us([&] { auto child = parent.Fork(); });
  timings.fork_exec_us = time_us([&] {
    auto child = parent.Fork();
    ExecInto(*child, regions);
  });
  timings.shell_us = time_us([&] {
    auto child = parent.Fork();       // sh
    ExecInto(*child, regions);        // exec sh
    auto grandchild = child->Fork();  // sh -c echo: fork again...
    ExecInto(*grandchild, regions);   // ...exec echo...
    Result<Vaddr> out = grandchild->MmapAnon(64 * 1024, Perm::RW());  // echo buffers
    assert(out.ok());
    (void)out;
  });
  return timings;
}

// CortenMM needs a tiny adapter: Fork() lives on VmSpace.
class CortenProc {
 public:
  CortenProc() : vm_(std::make_unique<VmSpace>(Options())), facade_(vm_.get()) {}
  explicit CortenProc(std::unique_ptr<VmSpace> vm)
      : vm_(std::move(vm)), facade_(vm_.get()) {}

  Result<Vaddr> MmapAnon(uint64_t len, Perm perm) { return vm_->MmapAnon(len, perm); }
  VoidResult Munmap(Vaddr va, uint64_t len) { return vm_->Munmap(va, len); }
  std::unique_ptr<CortenProc> Fork() {
    return std::unique_ptr<CortenProc>(new CortenProc(vm_->Fork()));
  }
  operator MmInterface&() { return facade_; }

 private:
  static AddrSpace::Options Options() {
    AddrSpace::Options options;
    options.protocol = Protocol::kAdv;
    return options;
  }
  struct Facade final : MmInterface {
    explicit Facade(VmSpace* vm) : vm(vm) {}
    VmSpace* vm;
    const char* name() const override { return "corten-proc"; }
    Asid asid() const override { return vm->asid(); }
    PageTable& PageTableFor(CpuId) override { return vm->addr_space().page_table(); }
    void NoteCpuActive(CpuId cpu) override { vm->addr_space().NoteCpuActive(cpu); }
    Result<Vaddr> MmapAnon(uint64_t l, Perm p) override { return vm->MmapAnon(l, p); }
    VoidResult MmapAnonAt(Vaddr v, uint64_t l, Perm p) override {
      return vm->MmapAnonAt(v, l, p);
    }
    VoidResult Munmap(Vaddr v, uint64_t l) override { return vm->Munmap(v, l); }
    VoidResult Mprotect(Vaddr v, uint64_t l, Perm p) override {
      return vm->Mprotect(v, l, p);
    }
    VoidResult HandleFault(Vaddr v, Access a) override { return vm->HandleFault(v, a); }
  };

  std::unique_ptr<VmSpace> vm_;
  Facade facade_;
};

}  // namespace
}  // namespace cortenmm

int main() {
  using namespace cortenmm;
  PrintHeader("Figure 20 — LMbench fork / fork+exec / shell",
              "Fig. 20 (latency, lower is better)",
              "fork: CortenMM slower than Linux (page-table walk vs VMA list); "
              "fork+exec: CortenMM faster (fault handling dominates); shell: "
              "comparable.");
  constexpr int kIters = 12;
  Timings corten = MeasureVia<CortenProc>(kIters);
  Timings linux_mm = MeasureVia<LinuxVmaMm>(kIters);
  std::printf("%-16s %12s %12s %12s   [us/op]\n", "system", "fork", "fork+exec", "shell");
  std::printf("%-16s %12.1f %12.1f %12.1f\n", "CortenMM-adv", corten.fork_us,
              corten.fork_exec_us, corten.shell_us);
  std::printf("%-16s %12.1f %12.1f %12.1f\n", "Linux", linux_mm.fork_us,
              linux_mm.fork_exec_us, linux_mm.shell_us);
  std::printf("\nCortenMM vs Linux: fork %+.0f%%, fork+exec %+.0f%%, shell %+.0f%% "
              "(paper: +17.7%%, -23.0%%, ~0%%; positive = slower)\n",
              (corten.fork_us / linux_mm.fork_us - 1) * 100,
              (corten.fork_exec_us / linux_mm.fork_exec_us - 1) * 100,
              (corten.shell_us / linux_mm.shell_us - 1) * 100);
  return 0;
}
