// Figure 19: the portability check — the five microbenchmarks under the
// RISC-V Sv48 PTE codec, single-threaded and multithreaded, CortenMM vs the
// Linux-style baseline. Paper shape: the performance relationships observed
// on x86-64 (Figure 13) carry over unchanged, because only the PTE codec
// differs (Table 5's ~250 LoC).
#include <cstdio>

#include "src/sim/workloads.h"

namespace cortenmm {
namespace {

void Panel(int threads) {
  const Micro micros[] = {Micro::kMmap, Micro::kMmapPf, Micro::kUnmapVirt, Micro::kUnmap,
                          Micro::kPf};
  std::printf("\n--- %d thread(s), RISC-V Sv48 ---\n%-16s", threads, "system");
  for (Micro micro : micros) {
    std::printf(" %10s", MicroName(micro));
  }
  std::printf("   [ops/s]\n");
  for (MmKind kind : {MmKind::kCortenAdv, MmKind::kCortenRw, MmKind::kLinux}) {
    std::vector<double> row;
    for (Micro micro : micros) {
      row.push_back(RunMicro(micro, kind, threads, Contention::kLow, Arch::kRiscvSv48));
    }
    PrintRow(MmKindName(kind), row);
  }
}

}  // namespace
}  // namespace cortenmm

int main() {
  using namespace cortenmm;
  PrintHeader("Figure 19 — microbenchmarks in a RISC-V (Sv48) configuration",
              "Fig. 19",
              "Same ordering as the x86-64 results of Fig. 13: the port only "
              "swaps the PTE codec.");
  Panel(1);
  Panel(SweepThreads().back());
  return 0;
}
