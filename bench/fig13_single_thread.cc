// Figure 13: single-threaded throughput of the five Table 3 microbenchmarks
// across all systems, with CortenMM's improvement over Linux printed below,
// exactly like the figure's annotation row.
//
// Paper shape: CortenMM_adv beats Linux on mmap-PF / PF / unmap-virt / unmap
// (+7.8%..+46.8%) and loses slightly on plain mmap (-3.1%, PT pages are
// allocated eagerly where Linux only creates a VMA). CortenMM_rw is between
// Linux and CortenMM_adv.
#include <cstdio>

#include "src/sim/workloads.h"

int main() {
  using namespace cortenmm;
  PrintHeader("Figure 13 — single-threaded microbenchmarks",
              "Fig. 13 / Table 3",
              "adv > Linux on mmap-PF/PF/unmap-virt/unmap; adv slightly < Linux "
              "on mmap; rw between Linux and adv.");

  const Micro micros[] = {Micro::kMmap, Micro::kMmapPf, Micro::kUnmapVirt, Micro::kUnmap,
                          Micro::kPf};
  std::printf("%-16s", "system");
  for (Micro micro : micros) {
    std::printf(" %10s", MicroName(micro));
  }
  std::printf("   [ops/s]\n");

  double linux_row[5] = {};
  double adv_row[5] = {};
  for (MmKind kind : ComparisonSet()) {
    std::vector<double> row;
    int i = 0;
    for (Micro micro : micros) {
      double value = MicroSupported(micro, kind)
                         ? RunMicro(micro, kind, /*threads=*/1, Contention::kLow)
                         : 0;
      row.push_back(value);
      if (kind == MmKind::kLinux) {
        linux_row[i] = value;
      }
      if (kind == MmKind::kCortenAdv) {
        adv_row[i] = value;
      }
      ++i;
    }
    PrintRow(MmKindName(kind), row);
  }

  std::printf("\nCortenMM-adv improvement over Linux (paper: -3.1%%, +46.8%%, "
              "+37%%-ish, +7.8%%-ish, +20%%-ish):\n%-16s", "");
  for (int i = 0; i < 5; ++i) {
    if (linux_row[i] > 0) {
      std::printf(" %+9.1f%%", (adv_row[i] / linux_row[i] - 1) * 100);
    } else {
      std::printf(" %10s", "n/a");
    }
  }
  std::printf("\n");
  return 0;
}
