// Table 5: lines of code needed to support another ISA / MMU feature. The
// RISC-V number is *measured from this repository* by counting the RISC-V
// codec plus every RISC-V dispatch site; the paper's Linux numbers are shown
// for comparison. MPK/TDX rows report the paper's numbers (those hardware
// features have no equivalent surface in the simulated MMU yet; the codec
// layer shows exactly where they would land — see DESIGN.md §5).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

// Counts non-blank, non-comment-only lines of a file.
int CountLoc(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return -1;
  }
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) {
      continue;
    }
    if (line.compare(first, 2, "//") == 0) {
      continue;
    }
    ++lines;
  }
  return lines;
}

// Counts lines mentioning |token| in a file (the per-arch dispatch sites).
int CountMentions(const std::string& path, const std::string& token) {
  std::ifstream in(path);
  if (!in) {
    return 0;
  }
  int hits = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(token) != std::string::npos) {
      ++hits;
    }
  }
  return hits;
}

}  // namespace

int main() {
  std::string root = CORTENMM_SOURCE_DIR;
  int codec = CountLoc(root + "/src/pt/pte_riscv.h");
  int dispatch = 0;
  for (const char* file : {"/src/pt/pte.h", "/src/pt/arch.h", "/src/pt/page_table.cc"}) {
    dispatch += CountMentions(root + file, "Riscv");
  }
  int riscv_total = (codec > 0 ? codec : 0) + dispatch;

  // MPK: count the lines mentioning the feature across the MM sources.
  int mpk = 0;
  for (const char* file :
       {"/src/pt/pte_x86.h", "/src/pt/pte.h", "/src/core/rcursor.cc",
        "/src/core/addr_space.h", "/src/core/vm_space.cc", "/src/core/vm_space.h",
        "/src/sim/mmu.cc", "/src/sim/mm_interface.h"}) {
    mpk += CountMentions(root + file, "Pkey") + CountMentions(root + file, "PKRU") +
           CountMentions(root + file, "pkru");
  }

  std::printf(
      "\n================================================================\n"
      "Table 5 — porting cost in lines of code (MM only)\n"
      "================================================================\n"
      "Paper: CortenMM RISC-V 252, Intel MPK 82, Intel TDX 368;\n"
      "       Linux    RISC-V 699, Intel MPK 273, Intel TDX 471.\n\n"
      "feature      this repo (measured)            paper CortenMM  paper Linux\n");
  std::printf("RISC-V       %4d  (codec %d + %d dispatch sites)   %8d %12d\n",
              riscv_total, codec, dispatch, 252, 699);
  std::printf("Intel MPK    %4d  (PTE key bits + PKRU checks)      %8d %12d\n", mpk,
              82, 273);
  std::printf("Intel TDX    %4s  (not reproduced: no TEE in sim)   %8d %12d\n", "-",
              368, 471);
  std::printf(
      "\nShape check: the whole RISC-V port is one PTE codec header plus its\n"
      "dispatch sites — well under the paper's 252-LoC budget and far below\n"
      "Linux's 699 (which must adapt the VMA layer too).\n");
  return 0;
}
