// Figure 22: memory overhead of each MM on the metis trace — page tables
// (filled bars) plus other MM metadata (empty bars) — and CortenMM's
// theoretical worst case with every per-PTE metadata array fully populated.
//
// Paper shape: CortenMM ~= Linux (eliminating the VMA layer costs nothing);
// the fully-populated-metadata bound doubles CortenMM's overhead but stays
// small relative to the workload; RadixVM blows up with core count because it
// replicates the page table per core.
#include <cstdio>
#include <thread>

#include "src/sim/mmu.h"
#include "src/sim/workloads.h"

namespace cortenmm {
namespace {

// Re-runs the metis allocation pattern and samples overhead before teardown.
void MeasureKind(MmKind kind, int threads) {
  std::unique_ptr<MmInterface> mm = MakeMm(kind);
  constexpr uint64_t kChunkBytes = 8ull << 20;
  constexpr int kChunks = 4;
  // Map phase: each core writes its own chunks.
  std::vector<Vaddr> all_chunks(static_cast<size_t>(threads) * kChunks);
  RunParallel(threads, [&](int t) {
    for (int c = 0; c < kChunks; ++c) {
      Result<Vaddr> chunk = mm->MmapAnon(kChunkBytes, Perm::RW());
      assert(chunk.ok());
      MmuSim::TouchRange(*mm, *chunk, kChunkBytes, /*write=*/true);
      all_chunks[static_cast<size_t>(t) * kChunks + c] = *chunk;
    }
  });
  // Reduce phase: every core reads every chunk — this is what makes RadixVM
  // replicate the page table per core (its Figure 22 blow-up).
  RunParallel(threads, [&](int t) {
    for (Vaddr chunk : all_chunks) {
      for (Vaddr page = chunk; page < chunk + kChunkBytes; page += 64 * kPageSize) {
        uint64_t value = 0;
        MmuSim::Read(*mm, page, &value);
      }
    }
  });
  uint64_t workload_bytes = static_cast<uint64_t>(threads) * kChunks * kChunkBytes;
  double pt_mib = static_cast<double>(mm->PtBytes()) / (1 << 20);
  double meta_mib = static_cast<double>(mm->MetaBytes()) / (1 << 20);
  double overhead_pct =
      100.0 * (mm->PtBytes() + mm->MetaBytes()) / static_cast<double>(workload_bytes);
  std::printf("%-16s %10.2f %10.2f %9.2f%%", MmKindName(kind), pt_mib, meta_mib,
              overhead_pct);
  if (kind == MmKind::kCortenAdv || kind == MmKind::kCortenRw) {
    // Worst case: every PT page carries a fully-populated 4 KiB metadata
    // array — exactly doubling the PT footprint (paper: "within 2%").
    double bound_pct = 100.0 * (2.0 * mm->PtBytes()) / static_cast<double>(workload_bytes);
    std::printf("   (worst-case metadata bound: %.2f%%)", bound_pct);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace cortenmm

int main() {
  using namespace cortenmm;
  PrintHeader("Figure 22 — memory overhead on the metis trace",
              "Fig. 22 (page tables + other MM metadata; lower is better)",
              "CortenMM ~= Linux; CortenMM worst case ~2x its own PT bytes but "
              "still ~2% of the workload; RadixVM multiplies PT bytes by the "
              "cores touching the mapping.");
  int threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 2) {
    threads = 2;
  }
  if (threads > 8) {
    threads = 8;
  }
  std::printf("(metis trace, %d threads; workload = %d MiB of touched pages)\n\n",
              threads, threads * 4 * 8);
  std::printf("%-16s %10s %10s %10s\n", "system", "PT [MiB]", "meta[MiB]", "overhead");
  for (MmKind kind : {MmKind::kCortenAdv, MmKind::kCortenRw, MmKind::kLinux,
                      MmKind::kRadixVm, MmKind::kNros}) {
    MeasureKind(kind, threads);
  }
  return 0;
}
