// Figure 21: 8-threaded performance of the PARSEC workloads that do *not*
// stress memory management, normalized to Linux. Paper shape: all bars ~1.0x —
// eliminating the software-level abstraction costs nothing on MM-light apps.
#include <cstdio>

#include "src/sim/workloads.h"

int main() {
  using namespace cortenmm;
  PrintHeader("Figure 21 — PARSEC-like workloads (8 threads, normalized to Linux)",
              "Fig. 21 (higher is better)",
              "All apps ~1.0x: CortenMM adds no overhead to MM-light workloads.");
  int threads = 8;
  std::printf("%-16s %12s %12s %14s\n", "app", "adv/Linux", "rw/Linux",
              "Linux [acc/s]");
  for (const std::string& app : ParsecApps()) {
    double linux_score = RunParsecLike(MmKind::kLinux, app, threads).throughput();
    double adv_score = RunParsecLike(MmKind::kCortenAdv, app, threads).throughput();
    double rw_score = RunParsecLike(MmKind::kCortenRw, app, threads).throughput();
    std::printf("%-16s %11.2fx %11.2fx %14.3g\n", app.c_str(),
                linux_score > 0 ? adv_score / linux_score : 0,
                linux_score > 0 ? rw_score / linux_score : 0, linux_score);
  }
  return 0;
}
