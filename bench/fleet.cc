// Fleet chaos workload: survive memory pressure (DESIGN.md §8).
//
// A multi-tenant fleet at 2x overcommit: N worker threads each own a parent
// tenant whose working set, summed across the fleet, is twice simulated
// physical memory. Every worker then runs hundreds of fork/exec/exit child
// lifecycles with Zipf-skewed page touching, so cold parent pages are
// continuously evicted by the background reclaimers while hot pages fault
// back in. Half the tenants carry a resident-set limit at half their working
// set; their touches go through the submission ring, where over-limit
// submissions bounce (kRingLimitRejects) and degrade to the synchronous
// fault path.
//
// Gates (nonzero exit on failure):
//  * >= 1000 completed fork/exec/exit lifecycles across the fleet.
//  * No kNoMem ever surfaces to an unlimited tenant: reclaim + the fault
//    retry loop must absorb the pressure (faults degrade to slow, not dead).
//  * reclaim_pages_evicted and reclaim_wakeups are both nonzero — the run
//    actually exercised background reclaim, it did not just fit in RAM.
//  * Zero frame leaks once the fleet is destroyed (CheckFrameLeaks).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/cpu.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/vm_space.h"
#include "src/obs/telemetry.h"
#include "src/pmm/buddy.h"
#include "src/pmm/phys_mem.h"
#include "src/reclaim/reclaim.h"
#include "src/sim/bench_util.h"
#include "src/sim/corten_vm.h"
#include "src/sync/rcu.h"
#include "src/tlb/shootdown.h"
#include "src/verif/wf_checker.h"

namespace cortenmm {
namespace {

// Zipf(s) over [0, n): CDF table + binary search. Ranks map to pages through
// a multiplicative scatter so the hot set is spread across the region rather
// than packed at its start (packed hot pages would all share pt leaves and
// understate lock/TLB traffic).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s, uint64_t seed) : rng_(seed), n_(n), cdf_(n) {
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (double& c : cdf_) {
      c /= sum;
    }
  }

  // A page index in [0, n), rank-1 being the hottest.
  uint64_t NextPage() {
    double u = static_cast<double>(rng_.Next() >> 11) * 0x1.0p-53;
    uint64_t rank =
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin();
    return (rank * 0x9e3779b1ull) % n_;
  }

 private:
  Rng rng_;
  uint64_t n_;
  std::vector<double> cdf_;
};

struct FleetScale {
  size_t phys_bytes;
  int workers;
  uint64_t ws_pages;        // Parent working set, pages, per tenant.
  int lifecycles_per_worker;
  int parent_touches;       // Zipf touches on the parent per lifecycle.
  int child_touches;        // Zipf touches in the forked child.
  uint64_t exec_pages;      // Fresh image the "exec" builds.
};

FleetScale SmokeScale() {
  // 4 tenants x 16 MiB over 32 MiB of phys = 2x overcommit.
  return {32ull << 20, 4, 4096, 256, 32, 16, 16};
}

FleetScale FullScale() {
  // 8 tenants x 16 MiB over 64 MiB of phys = 2x overcommit.
  return {64ull << 20, 8, 4096, 256, 64, 32, 32};
}

struct WorkerStats {
  uint64_t lifecycles = 0;
  uint64_t touches = 0;
  uint64_t nomem_unlimited = 0;  // Gate: must stay zero.
  uint64_t nomem_limited = 0;    // Reported only.
  uint64_t fork_failures = 0;
  uint64_t ring_submissions = 0;
  uint64_t ring_completions = 0;
  uint64_t ring_fallbacks = 0;   // Submit bounced -> synchronous fault.
};

// Notes one fault status: kNoMem against the right bucket; everything else
// must be kOk (the VA is inside a mapped RW region by construction).
void NoteFaultStatus(const VoidResult& r, bool limited, WorkerStats* stats) {
  ++stats->touches;
  if (r.ok()) {
    return;
  }
  if (r.error() == ErrCode::kNoMem) {
    if (limited) {
      ++stats->nomem_limited;
    } else {
      ++stats->nomem_unlimited;
    }
  }
}

// Drains every ready completion; ring kNoMem degrades to the synchronous
// fault path (which runs the governor's direct-reclaim retry loop).
void ReapAll(CortenVm& mm, bool limited, WorkerStats* stats) {
  MmCqe cqe;
  while (mm.Reap(&cqe)) {
    ++stats->ring_completions;
    if (cqe.err == ErrCode::kNoMem) {
      NoteFaultStatus(mm.vm().HandleFault(Vaddr{cqe.user_data}, Access::kWrite),
                      limited, stats);
    } else {
      ++stats->touches;
    }
  }
}

// One touch: limited tenants go through the submission ring (exercising the
// over-limit bounce), unlimited tenants fault synchronously.
void Touch(CortenVm& mm, Vaddr va, bool limited, WorkerStats* stats) {
  if (!limited) {
    NoteFaultStatus(mm.vm().HandleFault(va, Access::kWrite), limited, stats);
    return;
  }
  MmSqe sqe;
  sqe.op = MmOpCode::kFault;
  sqe.va = va;
  sqe.access = Access::kWrite;
  sqe.user_data = va;
  if (mm.Submit(sqe)) {
    ++stats->ring_submissions;
  } else {
    // Backpressure — over the resident limit (or a full ring). Degrade to
    // the slow path, which reclaims this tenant's own cold pages first.
    ++stats->ring_fallbacks;
    NoteFaultStatus(mm.vm().HandleFault(va, Access::kWrite), limited, stats);
  }
  ReapAll(mm, limited, stats);
}

void Worker(int id, const FleetScale& scale, WorkerStats* stats) {
  BindThisThreadToCpu(id);
  const bool limited = (id % 2) == 1;

  AddrSpace::Options options;
  options.huge_pages = (id % 4) == 0;  // Some tenants bring THP pressure.
  CortenVm mm(options);

  const uint64_t ws_bytes = scale.ws_pages << kPageBits;
  Result<Vaddr> base = mm.vm().MmapAnon(ws_bytes, Perm::RW());
  if (!base.ok()) {
    ++stats->nomem_unlimited;  // mmap itself must never fail at this scale.
    return;
  }
  if (limited) {
    ReclaimSystem::Instance().SetResidentLimit(&mm.vm(), scale.ws_pages / 2);
  }

  // Warm the full working set once: this is what pushes the fleet to 2x
  // overcommit and forces the reclaimers to start evicting.
  for (uint64_t page = 0; page < scale.ws_pages; ++page) {
    Touch(mm, *base + (page << kPageBits), limited, stats);
  }

  ZipfSampler zipf(scale.ws_pages, 0.99, 0xf1ee7ull + id);
  for (int cycle = 0; cycle < scale.lifecycles_per_worker; ++cycle) {
    // Parent activity: skewed re-touching keeps the hot set resident.
    for (int i = 0; i < scale.parent_touches; ++i) {
      Touch(mm, *base + (zipf.NextPage() << kPageBits), limited, stats);
    }
    if (limited) {
      mm.DrainBarrier();
      ReapAll(mm, limited, stats);
    }

    // fork: COW child of the full parent image. Under pressure the clone may
    // see kNoMem; direct reclaim plus retry must absorb it.
    std::unique_ptr<MmInterface> child;
    for (int attempt = 0; attempt < 8 && child == nullptr; ++attempt) {
      child = mm.Fork();
      if (child == nullptr) {
        ReclaimSystem::Instance().ReclaimPages(64);
      }
    }
    if (child == nullptr) {
      ++stats->fork_failures;
      if (!limited) {
        ++stats->nomem_unlimited;
      }
      continue;
    }

    // Child touches break COW sharing; statuses follow the parent's bucket
    // (the child of a limited tenant is itself unlimited, so gate it).
    for (int i = 0; i < scale.child_touches; ++i) {
      Vaddr va = *base + (zipf.NextPage() << kPageBits);
      NoteFaultStatus(child->HandleFault(va, Access::kWrite), /*limited=*/false,
                      stats);
    }

    // exec: drop the inherited image, build and touch a fresh one.
    (void)child->Munmap(*base, ws_bytes);
    Result<Vaddr> image =
        child->MmapAnon(scale.exec_pages << kPageBits, Perm::RWX());
    if (image.ok()) {
      for (uint64_t page = 0; page < scale.exec_pages; ++page) {
        NoteFaultStatus(child->HandleFault(*image + (page << kPageBits),
                                           Access::kWrite),
                        /*limited=*/false, stats);
      }
    } else if (image.error() == ErrCode::kNoMem) {
      ++stats->nomem_unlimited;
    }

    // exit: the child dies here; its frames must flow back to the buddy.
    child.reset();
    ++stats->lifecycles;
  }

  if (limited) {
    mm.DrainBarrier();
    ReapAll(mm, limited, stats);
  }
}

int Run(bool smoke) {
  const FleetScale scale = smoke ? SmokeScale() : FullScale();
  PhysMem::Configure(scale.phys_bytes);
  PhysMem::Instance().Prewarm();

  PrintHeader("fleet", "DESIGN.md §8 (reclaim)",
              "fleet at 2x overcommit completes; faults degrade, never die");

  // Quiesce and snapshot the allocator before any tenant exists.
  TlbSystem::Instance().DrainAll();
  Rcu::Instance().DrainAll();
  BuddyAllocator::Instance().FlushCpuCaches();
  const uint64_t baseline_free = BuddyAllocator::Instance().FreeFrameCount();

  TelemetrySink sink("fleet");
  std::vector<WorkerStats> stats(scale.workers);
  {
    ReclaimConfig config;
    config.bg_batch = 128;
    config.throttle_us = 100;
    ScopedReclaim reclaim(config);

    std::vector<std::thread> workers;
    for (int t = 0; t < scale.workers; ++t) {
      workers.emplace_back(Worker, t, scale, &stats[t]);
    }
    for (std::thread& w : workers) {
      w.join();
    }
  }  // Reclaim stops here: daemons joined, tenant registry emptied.

  WorkerStats total;
  for (const WorkerStats& s : stats) {
    total.lifecycles += s.lifecycles;
    total.touches += s.touches;
    total.nomem_unlimited += s.nomem_unlimited;
    total.nomem_limited += s.nomem_limited;
    total.fork_failures += s.fork_failures;
    total.ring_submissions += s.ring_submissions;
    total.ring_completions += s.ring_completions;
    total.ring_fallbacks += s.ring_fallbacks;
  }

  const uint64_t evicted = GlobalStats().Total(Counter::kReclaimPagesEvicted);
  const uint64_t wakeups = GlobalStats().Total(Counter::kReclaimWakeups);
  const uint64_t direct = GlobalStats().Total(Counter::kReclaimDirectRuns);
  const uint64_t throttles = GlobalStats().Total(Counter::kReclaimThrottles);
  const uint64_t limit_hits = GlobalStats().Total(Counter::kReclaimLimitHits);
  const uint64_t ring_rejects = GlobalStats().Total(Counter::kRingLimitRejects);
  const uint64_t huge_suppressed =
      GlobalStats().Total(Counter::kReclaimHugeSuppressed);

  std::printf("%-24s %12llu\n", "lifecycles",
              static_cast<unsigned long long>(total.lifecycles));
  std::printf("%-24s %12llu\n", "touches",
              static_cast<unsigned long long>(total.touches));
  std::printf("%-24s %12llu\n", "pages evicted",
              static_cast<unsigned long long>(evicted));
  std::printf("%-24s %12llu\n", "kswapd wakeups",
              static_cast<unsigned long long>(wakeups));
  std::printf("%-24s %12llu\n", "direct reclaims",
              static_cast<unsigned long long>(direct));
  std::printf("%-24s %12llu\n", "fault throttles",
              static_cast<unsigned long long>(throttles));
  std::printf("%-24s %12llu\n", "limit hits",
              static_cast<unsigned long long>(limit_hits));
  std::printf("%-24s %12llu\n", "ring limit rejects",
              static_cast<unsigned long long>(ring_rejects));
  std::printf("%-24s %12llu\n", "thp suppressed",
              static_cast<unsigned long long>(huge_suppressed));
  std::printf("%-24s %12llu\n", "ring fallbacks",
              static_cast<unsigned long long>(total.ring_fallbacks));
  std::printf("%-24s %12llu\n", "fork failures",
              static_cast<unsigned long long>(total.fork_failures));
  std::printf("%-24s %12llu\n", "kNoMem (limited)",
              static_cast<unsigned long long>(total.nomem_limited));
  PrintTraceDropRate();

  bool gate_ok = true;
  if (total.lifecycles < 1000) {
    std::printf("FAIL: only %llu lifecycles completed (gate: >= 1000)\n",
                static_cast<unsigned long long>(total.lifecycles));
    gate_ok = false;
  }
  if (total.nomem_unlimited != 0) {
    std::printf("FAIL: %llu kNoMem surfaced to tenants under their limit\n",
                static_cast<unsigned long long>(total.nomem_unlimited));
    gate_ok = false;
  }
  if (total.ring_completions != total.ring_submissions) {
    std::printf("FAIL: %llu ring submissions but %llu completions\n",
                static_cast<unsigned long long>(total.ring_submissions),
                static_cast<unsigned long long>(total.ring_completions));
    gate_ok = false;
  }
  if (evicted == 0) {
    std::printf("FAIL: reclaim_pages_evicted is zero — no pressure exercised\n");
    gate_ok = false;
  }
  if (wakeups == 0) {
    std::printf("FAIL: reclaim_wakeups is zero — kswapd never woke\n");
    gate_ok = false;
  }

  // Every frame any tenant ever held must be back in the buddy.
  LeakReport leaks = CheckFrameLeaks(baseline_free);
  if (!leaks.ok) {
    std::printf("FAIL: leaked %lld frames (baseline %llu, now %llu, "
                "stranded cached %llu anon %llu)\n",
                static_cast<long long>(leaks.leaked),
                static_cast<unsigned long long>(leaks.baseline_free),
                static_cast<unsigned long long>(leaks.current_free),
                static_cast<unsigned long long>(leaks.stranded_cached),
                static_cast<unsigned long long>(leaks.stranded_anon));
    gate_ok = false;
  }

  sink.Snapshot("fleet");
  std::string json_path = sink.Write();
  std::printf("\ntelemetry: %s\n", json_path.c_str());
  return gate_ok ? 0 : 1;
}

}  // namespace
}  // namespace cortenmm

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  return cortenmm::Run(smoke);
}
