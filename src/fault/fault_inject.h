// Deterministic fault injection for the MM's hardest-to-reach paths.
//
// Named injection sites cover the three failure families the chaos suite
// drives: allocator exhaustion (buddy / slab return kNoMem), TLB shootdown
// stragglers (a target CPU acks late), and lock-acquisition stalls (widening
// the race windows between a protocol's traversal and its lock acquisition).
//
// Determinism contract: whether a given *check* injects depends only on the
// calling thread's injection RNG stream (seed it with SeedThread) and the
// site's schedule counters. Probabilistic schedules draw from the per-thread
// stream; "fail after N" schedules count checks site-globally, so they are
// deterministic for single-threaded repro runs and merely bounded ("at most
// max_injections, starting no earlier than check N+1") under concurrency.
//
// Mirrors the telemetry design: `-DCORTENMM_FAULTINJ=OFF` compiles every
// probe to a constant, so release hot paths carry no branch for sites that
// were never armed.
#ifndef SRC_FAULT_FAULT_INJECT_H_
#define SRC_FAULT_FAULT_INJECT_H_

#include <atomic>
#include <cstdint>
#include <string>

#ifndef CORTENMM_FAULTINJ
#define CORTENMM_FAULTINJ 1
#endif

namespace cortenmm {

enum class FaultSite : int {
  kBuddyAllocBlock = 0,   // BuddyAllocator::AllocBlock (multi-frame blocks).
  kBuddyAllocFrame,       // AllocFrame / AllocZeroedFrame (covers PT pages).
  kSlabAlloc,             // SlabCache::Alloc returns nullptr.
  kShootdownStraggler,    // A shootdown target CPU delays before invalidating.
  kAdvLockStall,          // kAdv: between RCU traversal and the MCS acquire.
  kRwLockStall,           // kRw: inside the read-unlock -> write-lock upgrade.
  kSwapDevWrite,          // SwapDevice::WriteNewBlock fails (device full /
                          // write error) — mid-eviction rollback coverage.
  kSwapDevRead,           // SwapDevice::ReadBlock fails (transient IO error)
                          // — swap-in fault paths must surface it cleanly.
  kMagazineRefill,        // Per-CPU magazine refill (depot or buddy) fails —
                          // the fault path must roll back cleanly to kNoMem.
  kPreScrub,              // A pre-scrub batch aborts; the frames stay dirty
                          // and faults must fall back to inline zeroing.
  kSiteCount,
};

const char* FaultSiteName(FaultSite site);

struct FaultConfig {
  // Probabilistic schedule: each check fails with probability num/den, drawn
  // from the calling thread's injection RNG. num == 0 disables this mode.
  uint32_t prob_num = 0;
  uint32_t prob_den = 100;
  // Counted schedule: the site's checks 1..fail_after succeed, every later
  // check injects (until max_injections). kNoCountedSchedule disables it.
  static constexpr uint64_t kNoCountedSchedule = ~0ull;
  uint64_t fail_after = kNoCountedSchedule;
  // Stop injecting at this site after this many injections (0 = unlimited).
  uint64_t max_injections = 0;
  // Stall sites only: injected delay per hit, in CpuRelax() spins.
  uint32_t stall_spins = 0;
};

#if CORTENMM_FAULTINJ

class FaultInjector {
 public:
  static FaultInjector& Instance();

  // Arms |site| with |config|. Thread-safe against concurrent checks; counters
  // for the site are reset so schedules restart from zero.
  void Enable(FaultSite site, const FaultConfig& config);
  void Disable(FaultSite site);
  // Disarms every site (counters survive so a finished run can report them).
  void DisableAll();
  void ResetCounters();

  // Reseeds the calling thread's injection RNG stream.
  static void SeedThread(uint64_t seed);

  // kNoMem sites: true if this check must fail. Fast path is one relaxed
  // atomic load when nothing is armed anywhere.
  bool ShouldFail(FaultSite site) {
    if (!any_enabled_.load(std::memory_order_relaxed)) {
      return false;
    }
    return ShouldFailSlow(site);
  }

  // Stall sites: spins in place for the configured delay when the site is
  // armed and the schedule fires.
  void MaybeStall(FaultSite site) {
    if (!any_enabled_.load(std::memory_order_relaxed)) {
      return;
    }
    MaybeStallSlow(site);
  }

  // Rollback accounting. A path that saw an injected failure and returned the
  // address space to its pre-op state calls NoteRolledBack(); one that
  // absorbed the failure without needing any unwind (e.g. a fallback covering
  // page) calls NoteSurvived(). Both attribute to the calling thread's most
  // recently injected site.
  static void NoteSurvived();
  static void NoteRolledBack();

  uint64_t Checked(FaultSite site) const;
  uint64_t Injected(FaultSite site) const;
  uint64_t Survived(FaultSite site) const;
  uint64_t RolledBack(FaultSite site) const;
  // Total injections across all sites (chaos tests assert coverage with this).
  uint64_t TotalInjected() const;

  // {"site":{"checked":N,"injected":N,"survived":N,"rolled_back":N},...} for
  // every site with at least one check; "{}" when none.
  std::string DumpJson() const;

 private:
  struct SiteState {
    std::atomic<bool> enabled{false};
    std::atomic<uint32_t> prob_num{0};
    std::atomic<uint32_t> prob_den{100};
    std::atomic<uint64_t> fail_after{FaultConfig::kNoCountedSchedule};
    std::atomic<uint64_t> max_injections{0};
    std::atomic<uint32_t> stall_spins{0};

    std::atomic<uint64_t> checked{0};
    std::atomic<uint64_t> injected{0};
    std::atomic<uint64_t> survived{0};
    std::atomic<uint64_t> rolled_back{0};
  };

  bool ShouldFailSlow(FaultSite site);
  void MaybeStallSlow(FaultSite site);
  bool ScheduleFires(SiteState& state);

  std::atomic<bool> any_enabled_{false};
  SiteState sites_[static_cast<int>(FaultSite::kSiteCount)];
};

#else  // !CORTENMM_FAULTINJ

// Stub: every probe folds to a constant; the optimizer erases the call sites.
class FaultInjector {
 public:
  static FaultInjector& Instance() {
    static FaultInjector stub;
    return stub;
  }
  void Enable(FaultSite, const FaultConfig&) {}
  void Disable(FaultSite) {}
  void DisableAll() {}
  void ResetCounters() {}
  static void SeedThread(uint64_t) {}
  bool ShouldFail(FaultSite) { return false; }
  void MaybeStall(FaultSite) {}
  static void NoteSurvived() {}
  static void NoteRolledBack() {}
  uint64_t Checked(FaultSite) const { return 0; }
  uint64_t Injected(FaultSite) const { return 0; }
  uint64_t Survived(FaultSite) const { return 0; }
  uint64_t RolledBack(FaultSite) const { return 0; }
  uint64_t TotalInjected() const { return 0; }
  std::string DumpJson() const { return "{}"; }
};

#endif  // CORTENMM_FAULTINJ

}  // namespace cortenmm

#endif  // SRC_FAULT_FAULT_INJECT_H_
