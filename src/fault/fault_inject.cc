#include "src/fault/fault_inject.h"

#include <sstream>

#include "src/common/backoff.h"
#include "src/common/rng.h"

namespace cortenmm {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kBuddyAllocBlock:
      return "buddy_alloc_block";
    case FaultSite::kBuddyAllocFrame:
      return "buddy_alloc_frame";
    case FaultSite::kSlabAlloc:
      return "slab_alloc";
    case FaultSite::kShootdownStraggler:
      return "shootdown_straggler";
    case FaultSite::kAdvLockStall:
      return "adv_lock_stall";
    case FaultSite::kRwLockStall:
      return "rw_lock_stall";
    case FaultSite::kSwapDevWrite:
      return "swap_dev_write";
    case FaultSite::kSwapDevRead:
      return "swap_dev_read";
    case FaultSite::kMagazineRefill:
      return "magazine_refill";
    case FaultSite::kPreScrub:
      return "prescrub";
    case FaultSite::kSiteCount:
      break;
  }
  return "unknown";
}

#if CORTENMM_FAULTINJ

namespace {

// Per-thread injection RNG. Lazily seeded from a process-wide counter so
// unseeded threads still get distinct deterministic streams; tests that need
// exact repro call SeedThread explicitly.
struct ThreadFaultState {
  Rng rng;
  // The site of the last injection this thread observed, for attributing
  // NoteSurvived / NoteRolledBack without threading a token through every
  // Result<> return path.
  int last_injected_site = -1;

  ThreadFaultState() : rng(NextThreadSeed()) {}

  static uint64_t NextThreadSeed() {
    static std::atomic<uint64_t> counter{0};
    uint64_t state = 0xfa017ull ^ counter.fetch_add(1, std::memory_order_relaxed);
    return SplitMix64(state);
  }
};

ThreadFaultState& TlsState() {
  thread_local ThreadFaultState state;
  return state;
}

}  // namespace

FaultInjector& FaultInjector::Instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Enable(FaultSite site, const FaultConfig& config) {
  SiteState& state = sites_[static_cast<int>(site)];
  state.prob_num.store(config.prob_num, std::memory_order_relaxed);
  state.prob_den.store(config.prob_den == 0 ? 1 : config.prob_den,
                       std::memory_order_relaxed);
  state.fail_after.store(config.fail_after, std::memory_order_relaxed);
  state.max_injections.store(config.max_injections, std::memory_order_relaxed);
  state.stall_spins.store(config.stall_spins, std::memory_order_relaxed);
  state.checked.store(0, std::memory_order_relaxed);
  state.injected.store(0, std::memory_order_relaxed);
  state.survived.store(0, std::memory_order_relaxed);
  state.rolled_back.store(0, std::memory_order_relaxed);
  state.enabled.store(true, std::memory_order_release);
  any_enabled_.store(true, std::memory_order_release);
}

void FaultInjector::Disable(FaultSite site) {
  sites_[static_cast<int>(site)].enabled.store(false, std::memory_order_release);
  for (const SiteState& state : sites_) {
    if (state.enabled.load(std::memory_order_acquire)) {
      return;
    }
  }
  any_enabled_.store(false, std::memory_order_release);
}

void FaultInjector::DisableAll() {
  for (SiteState& state : sites_) {
    state.enabled.store(false, std::memory_order_release);
  }
  any_enabled_.store(false, std::memory_order_release);
}

void FaultInjector::ResetCounters() {
  for (SiteState& state : sites_) {
    state.checked.store(0, std::memory_order_relaxed);
    state.injected.store(0, std::memory_order_relaxed);
    state.survived.store(0, std::memory_order_relaxed);
    state.rolled_back.store(0, std::memory_order_relaxed);
  }
}

void FaultInjector::SeedThread(uint64_t seed) {
  TlsState().rng = Rng(seed);
  TlsState().last_injected_site = -1;
}

bool FaultInjector::ScheduleFires(SiteState& state) {
  uint64_t check = state.checked.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t cap = state.max_injections.load(std::memory_order_relaxed);
  if (cap != 0 && state.injected.load(std::memory_order_relaxed) >= cap) {
    return false;
  }
  uint64_t after = state.fail_after.load(std::memory_order_relaxed);
  if (after != FaultConfig::kNoCountedSchedule && check > after) {
    return true;
  }
  uint32_t num = state.prob_num.load(std::memory_order_relaxed);
  if (num != 0 &&
      TlsState().rng.Chance(num, state.prob_den.load(std::memory_order_relaxed))) {
    return true;
  }
  return false;
}

bool FaultInjector::ShouldFailSlow(FaultSite site) {
  SiteState& state = sites_[static_cast<int>(site)];
  if (!state.enabled.load(std::memory_order_acquire)) {
    return false;
  }
  if (!ScheduleFires(state)) {
    return false;
  }
  state.injected.fetch_add(1, std::memory_order_relaxed);
  TlsState().last_injected_site = static_cast<int>(site);
  return true;
}

void FaultInjector::MaybeStallSlow(FaultSite site) {
  SiteState& state = sites_[static_cast<int>(site)];
  if (!state.enabled.load(std::memory_order_acquire)) {
    return;
  }
  if (!ScheduleFires(state)) {
    return;
  }
  state.injected.fetch_add(1, std::memory_order_relaxed);
  // A stall has nothing to roll back; it survives by construction.
  state.survived.fetch_add(1, std::memory_order_relaxed);
  uint32_t spins = state.stall_spins.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < spins; ++i) {
    CpuRelax();
  }
}

void FaultInjector::NoteSurvived() {
  int site = TlsState().last_injected_site;
  if (site < 0) {
    return;
  }
  Instance().sites_[site].survived.fetch_add(1, std::memory_order_relaxed);
  TlsState().last_injected_site = -1;
}

void FaultInjector::NoteRolledBack() {
  int site = TlsState().last_injected_site;
  if (site < 0) {
    return;
  }
  Instance().sites_[site].rolled_back.fetch_add(1, std::memory_order_relaxed);
  TlsState().last_injected_site = -1;
}

uint64_t FaultInjector::Checked(FaultSite site) const {
  return sites_[static_cast<int>(site)].checked.load(std::memory_order_relaxed);
}
uint64_t FaultInjector::Injected(FaultSite site) const {
  return sites_[static_cast<int>(site)].injected.load(std::memory_order_relaxed);
}
uint64_t FaultInjector::Survived(FaultSite site) const {
  return sites_[static_cast<int>(site)].survived.load(std::memory_order_relaxed);
}
uint64_t FaultInjector::RolledBack(FaultSite site) const {
  return sites_[static_cast<int>(site)].rolled_back.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::TotalInjected() const {
  uint64_t total = 0;
  for (const SiteState& state : sites_) {
    total += state.injected.load(std::memory_order_relaxed);
  }
  return total;
}

std::string FaultInjector::DumpJson() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (int i = 0; i < static_cast<int>(FaultSite::kSiteCount); ++i) {
    const SiteState& state = sites_[i];
    uint64_t checked = state.checked.load(std::memory_order_relaxed);
    if (checked == 0) {
      continue;
    }
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\"" << FaultSiteName(static_cast<FaultSite>(i)) << "\":{"
       << "\"checked\":" << checked
       << ",\"injected\":" << state.injected.load(std::memory_order_relaxed)
       << ",\"survived\":" << state.survived.load(std::memory_order_relaxed)
       << ",\"rolled_back\":" << state.rolled_back.load(std::memory_order_relaxed)
       << "}";
  }
  os << "}";
  return os.str();
}

#endif  // CORTENMM_FAULTINJ

}  // namespace cortenmm
