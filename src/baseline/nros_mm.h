// NrOS-style baseline (Bhardwaj et al., OSDI'21): node replication. Mutating
// operations are appended to a shared operation log and applied to per-node
// replicas; within a replica a coarse reader-writer lock serializes
// application against reads. NrOS has no demand paging (paper Table 2):
// mmap maps frames eagerly, so "mmap-PF" for NrOS is just mmap.
//
// The result, as in the paper's Figures 1/13/14: reads scale within a
// replica, but every mutation serializes on the log plus the replica lock —
// "performance comparable to Linux".
#ifndef SRC_BASELINE_NROS_MM_H_
#define SRC_BASELINE_NROS_MM_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/core/va_alloc.h"
#include "src/pt/page_table.h"
#include "src/sim/mm_interface.h"
#include "src/sync/pfq_rwlock.h"
#include "src/sync/spinlock.h"
#include "src/tlb/shootdown.h"

namespace cortenmm {

class NrosMm final : public MmInterface {
 public:
  struct Options {
    Arch arch = Arch::kX86_64;
    TlbPolicy tlb_policy = TlbPolicy::kSync;
    int replicas = 2;  // One per simulated NUMA node.
  };

  explicit NrosMm(const Options& options);
  NrosMm() : NrosMm(Options{}) {}
  ~NrosMm() override;

  const char* name() const override { return "nros"; }
  Asid asid() const override { return asid_; }
  PageTable& PageTableFor(CpuId cpu) override;
  void NoteCpuActive(CpuId cpu) override {
    if (!active_cpus_.Test(cpu)) {
      active_cpus_.Set(cpu);
    }
  }

  bool demand_paging() const override { return false; }

  // Eager: allocates and maps all frames at mmap time (logged operation).
  using MmInterface::MmapAnon;
  Result<Vaddr> MmapAnon(const MmapArgs& args) override;
  VoidResult Munmap(Vaddr va, uint64_t len) override;
  VoidResult Mprotect(Vaddr va, uint64_t len, Perm perm) override;
  // A fault means the local replica lags the log (or SEGV): sync and retry.
  VoidResult HandleFault(Vaddr va, Access access) override;

  uint64_t PtBytes() override;

 private:
  // Fixed placement: eagerly backs [va, va+len) and appends one log op.
  VoidResult MmapAnonFixed(Vaddr va, uint64_t len, Perm perm);

  enum class OpKind : uint8_t { kMap, kUnmap, kProtect };
  struct LogOp {
    OpKind kind;
    VaRange range;
    Perm perm;
    std::vector<Pfn> frames;  // kMap: one frame per page, allocated upfront.
  };

  struct Replica {
    PfqRwLock lock;
    std::unique_ptr<PageTable> pt;
    uint64_t applied = 0;  // Log index up to which this replica is current.
  };

  int ReplicaIndexFor(CpuId cpu) const { return cpu % options_.replicas; }

  // Appends |op| to the log and applies the log to the caller's replica.
  void Append(LogOp op, CpuId cpu);
  // Brings |replica| up to the log tail. Caller holds replica.lock (write).
  void ApplyPendingLocked(Replica& replica);
  void ApplyOp(Replica& replica, const LogOp& op);
  // Acquire the replica write lock, catch up, release.
  void SyncReplica(int index);

  Options options_;
  Asid asid_;
  VaAllocator va_alloc_;
  CpuMask active_cpus_;

  SpinLock log_lock_;
  std::vector<LogOp> log_;
  std::atomic<uint64_t> log_tail_{0};

  std::unique_ptr<Replica[]> replicas_;
};

}  // namespace cortenmm

#endif  // SRC_BASELINE_NROS_MM_H_
