#include "src/baseline/nros_mm.h"

#include <cassert>

#include "src/common/stats.h"
#include "src/fault/fault_inject.h"
#include "src/obs/telemetry.h"
#include "src/core/addr_space.h"  // DropRunRef
#include "src/pmm/buddy.h"
#include "src/pmm/phys_mem.h"
#include "src/pt/pte.h"
#include "src/tlb/gather.h"

namespace cortenmm {
namespace {

std::atomic<uint16_t> g_next_nros_asid{0xc000};

}  // namespace

NrosMm::NrosMm(const Options& options)
    : options_(options),
      asid_(g_next_nros_asid.fetch_add(1, std::memory_order_relaxed)),
      va_alloc_(/*per_core=*/false),
      replicas_(new Replica[options.replicas]) {
  for (int i = 0; i < options_.replicas; ++i) {
    replicas_[i].pt = std::make_unique<PageTable>(options_.arch);
  }
}

NrosMm::~NrosMm() {
  Munmap(kUserVaBase, kUserVaCeiling - kUserVaBase);
  TlbSystem::Instance().DrainAll();
  for (CpuId cpu : active_cpus_.ToVector()) {
    TlbSystem::Instance().CpuTlb(cpu).InvalidateAsid(asid_);
  }
}

PageTable& NrosMm::PageTableFor(CpuId cpu) {
  return *replicas_[ReplicaIndexFor(cpu)].pt;
}

void NrosMm::ApplyOp(Replica& replica, const LogOp& op) {
  PageTable& pt = *replica.pt;
  switch (op.kind) {
    case OpKind::kMap: {
      size_t frame_index = 0;
      for (Vaddr va = op.range.start; va < op.range.end; va += kPageSize, ++frame_index) {
        Pfn page = pt.root();
        bool path_ok = true;
        for (int level = kPtLevels; level > 1; --level) {
          uint64_t index = PtIndex(va, level);
          Pte pte = pt.LoadEntry(page, index);
          if (!PteIsPresent(pt.arch(), pte)) {
            Result<Pfn> child = pt.AllocPtPage(level - 1);
            if (!child.ok()) {
              // OOM while growing this replica: leave the page uninstalled.
              // The frame stays owned by the log record (munmap frees it from
              // there), so nothing leaks; accesses through this replica take
              // a fault until a later replay succeeds.
              FaultInjector::NoteSurvived();
              path_ok = false;
              break;
            }
            pt.StoreEntry(page, index, MakeTablePte(pt.arch(), *child));
            pte = pt.LoadEntry(page, index);
          }
          page = PtePfn(pt.arch(), pte);
        }
        if (!path_ok) {
          continue;
        }
        pt.StoreEntry(page, PtIndex(va, 1),
                      MakeLeafPte(pt.arch(), op.frames[frame_index], op.perm, 1));
      }
      break;
    }
    case OpKind::kUnmap: {
      pt.ForEachLeaf(op.range, [&pt](Vaddr va, Pte, int) {
        PageTable::WalkResult walk = pt.Walk(va);
        if (walk.present) {
          pt.StoreEntry(walk.pt_page, walk.index, kNullPte);
        }
      });
      break;
    }
    case OpKind::kProtect: {
      std::vector<std::pair<Vaddr, Pfn>> leaves;
      pt.ForEachLeaf(op.range, [&](Vaddr va, Pte pte, int) {
        leaves.emplace_back(va, PtePfn(pt.arch(), pte));
      });
      for (const auto& [va, pfn] : leaves) {
        PageTable::WalkResult walk = pt.Walk(va);
        if (walk.present) {
          pt.StoreEntry(walk.pt_page, walk.index, MakeLeafPte(pt.arch(), pfn, op.perm, 1));
        }
      }
      break;
    }
  }
}

void NrosMm::ApplyPendingLocked(Replica& replica) {
  uint64_t tail = log_tail_.load(std::memory_order_acquire);
  while (replica.applied < tail) {
    // Copy the op out: the vector may be reallocated by a concurrent append.
    LogOp op;
    {
      SpinGuard guard(log_lock_);
      op = log_[replica.applied];
    }
    ApplyOp(replica, op);
    ++replica.applied;
  }
}

void NrosMm::SyncReplica(int index) {
  Replica& replica = replicas_[index];
  if (replica.applied >= log_tail_.load(std::memory_order_acquire)) {
    return;
  }
  replica.lock.WriteLock();
  ApplyPendingLocked(replica);
  replica.lock.WriteUnlock();
}

void NrosMm::Append(LogOp op, CpuId cpu) {
  {
    SpinGuard guard(log_lock_);
    log_.push_back(std::move(op));
    log_tail_.store(log_.size(), std::memory_order_release);
  }
  // Flat-combining degenerate: the mutator applies its own replica now; other
  // replicas catch up on their next read miss — but never lag unboundedly.
  SyncReplica(ReplicaIndexFor(cpu));
  uint64_t tail = log_tail_.load(std::memory_order_acquire);
  for (int i = 0; i < options_.replicas; ++i) {
    if (tail - replicas_[i].applied > 32) {
      SyncReplica(i);
    }
  }
}

Result<Vaddr> NrosMm::MmapAnon(const MmapArgs& args) {
  ScopedOpTimer telemetry_timer(MmOp::kMmap);
  if (args.len == 0) {
    return ErrCode::kInval;
  }
  uint64_t len = AlignUp(args.len, kPageSize);
  if (args.fixed) {
    VoidResult r = MmapAnonFixed(args.va, len, args.perm);
    if (!r.ok()) {
      return r.error();
    }
    return args.va;
  }
  Result<Vaddr> va = va_alloc_.Alloc(len);
  if (!va.ok()) {
    return va;
  }
  VoidResult r = MmapAnonFixed(*va, len, args.perm);
  if (!r.ok()) {
    va_alloc_.Free(*va, len);
    return r.error();
  }
  return va;
}

VoidResult NrosMm::MmapAnonFixed(Vaddr va, uint64_t len, Perm perm) {
  if (!IsAligned(va, kPageSize) || len == 0) {
    return ErrCode::kInval;
  }
  len = AlignUp(len, kPageSize);
  // Eager backing: no demand paging in NrOS (paper Table 2).
  LogOp op;
  op.kind = OpKind::kMap;
  op.range = VaRange(va, va + len);
  op.perm = perm;
  op.frames.reserve(len >> kPageBits);
  for (uint64_t i = 0; i < (len >> kPageBits); ++i) {
    Result<Pfn> frame = BuddyAllocator::Instance().AllocZeroedFrame();
    if (!frame.ok()) {
      for (Pfn pfn : op.frames) {
        BuddyAllocator::Instance().FreeFrame(pfn);
      }
      return frame.error();
    }
    PhysMem::Instance().Descriptor(*frame).ResetForAlloc(FrameType::kAnon);
    op.frames.push_back(*frame);
  }
  Append(std::move(op), CurrentCpu());
  return VoidResult();
}

VoidResult NrosMm::Munmap(Vaddr va, uint64_t len) {
  ScopedOpTimer telemetry_timer(MmOp::kMunmap);
  if (!IsAligned(va, kPageSize) || len == 0) {
    return ErrCode::kInval;
  }
  len = AlignUp(len, kPageSize);
  VaRange range(va, va + len);

  // Collect the frames this unmap kills from the log's map records.
  std::vector<Pfn> dead_frames;
  {
    SpinGuard guard(log_lock_);
    for (LogOp& past : log_) {
      if (past.kind != OpKind::kMap || past.frames.empty() || !past.range.Overlaps(range)) {
        continue;
      }
      uint64_t first = past.range.start >> kPageBits;
      size_t keep = 0;
      for (size_t i = 0; i < past.frames.size(); ++i) {
        Vaddr page_va = (first + i) << kPageBits;
        if (past.frames[i] != kInvalidPfn && range.Contains(page_va)) {
          dead_frames.push_back(past.frames[i]);
          past.frames[i] = kInvalidPfn;
        }
      }
      (void)keep;
    }
  }

  LogOp op;
  op.kind = OpKind::kUnmap;
  op.range = range;
  Append(std::move(op), CurrentCpu());

  // Strict teardown: make every replica current before freeing frames.
  for (int i = 0; i < options_.replicas; ++i) {
    SyncReplica(i);
  }
  TlbGather gather;
  gather.AddRange(range);
  for (Pfn pfn : dead_frames) {
    gather.AddFrame(pfn);
  }
  gather.Flush(asid_, active_cpus_, options_.tlb_policy, &DropRunRef);
  va_alloc_.Free(va, len);
  return VoidResult();
}

VoidResult NrosMm::Mprotect(Vaddr va, uint64_t len, Perm perm) {
  ScopedOpTimer telemetry_timer(MmOp::kMprotect);
  if (!IsAligned(va, kPageSize) || len == 0) {
    return ErrCode::kInval;
  }
  len = AlignUp(len, kPageSize);
  VaRange range(va, va + len);
  LogOp op;
  op.kind = OpKind::kProtect;
  op.range = range;
  op.perm = perm;
  Append(std::move(op), CurrentCpu());
  for (int i = 0; i < options_.replicas; ++i) {
    SyncReplica(i);
  }
  TlbGather gather;
  gather.AddRange(range);
  gather.Flush(asid_, active_cpus_, options_.tlb_policy, nullptr);
  return VoidResult();
}

VoidResult NrosMm::HandleFault(Vaddr va, Access access) {
  ScopedOpTimer telemetry_timer(MmOp::kFault);
  CountEvent(Counter::kPageFaults);
  CpuId cpu = CurrentCpu();
  NoteCpuActive(cpu);
  int index = ReplicaIndexFor(cpu);
  Replica& replica = replicas_[index];
  if (replica.applied < log_tail_.load(std::memory_order_acquire)) {
    SyncReplica(index);
  }
  // HandleFault contract: the fault resolves (kOk) only if the now-current
  // replica actually maps the page with sufficient permissions; a never-mapped
  // VA or a permission violation is a SEGV even when the replica was stale.
  replica.lock.ReadLock();
  PageTable::WalkResult walk = replica.pt->Walk(AlignDown(va, kPageSize));
  bool resolved = walk.present && PermAllowsAccess(PtePerm(replica.pt->arch(), walk.pte), access);
  replica.lock.ReadUnlock();
  return resolved ? VoidResult() : VoidResult(ErrCode::kFault);
}

uint64_t NrosMm::PtBytes() {
  uint64_t bytes = 0;
  for (int i = 0; i < options_.replicas; ++i) {
    bytes += replicas_[i].pt->CountPtPages() * kPageSize;
  }
  return bytes;
}

}  // namespace cortenmm
