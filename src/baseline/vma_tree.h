// The software-level abstraction CortenMM eliminates: a balanced tree of
// virtual memory areas, as in Linux (paper §2.2). Implemented as an AVL tree
// keyed by start address with interval queries, VMA split/merge, and the
// per-VMA locks + sequence counts the Linux baseline's locking rules
// (paper Table 1 / Figure 2) require.
//
// The tree itself is *not* internally synchronized: callers hold mmap_lock
// per the Linux rules (reads under the reader side, structural changes under
// the writer side).
#ifndef SRC_BASELINE_VMA_TREE_H_
#define SRC_BASELINE_VMA_TREE_H_

#include <cstdint>
#include <functional>

#include "src/common/types.h"
#include "src/sync/pfq_rwlock.h"
#include "src/sync/seqlock.h"

namespace cortenmm {

struct Vma {
  Vaddr start = 0;
  Vaddr end = 0;
  Perm perm;

  // Per-VMA lock + sequence count (Linux's vma_lock / vm_lock_seq).
  PfqRwLock lock;
  SeqCount seq;

  // AVL linkage.
  Vma* left = nullptr;
  Vma* right = nullptr;
  int height = 1;

  uint64_t size() const { return end - start; }
  bool Contains(Vaddr va) const { return va >= start && va < end; }
  bool Overlaps(VaRange range) const { return start < range.end && range.start < end; }
};

class VmaTree {
 public:
  VmaTree() = default;
  ~VmaTree();
  VmaTree(const VmaTree&) = delete;
  VmaTree& operator=(const VmaTree&) = delete;

  // Inserts a new VMA covering [start, end). The range must not overlap any
  // existing VMA (callers unmap first). Returns the node.
  Vma* Insert(Vaddr start, Vaddr end, Perm perm);

  // Removes and frees the node.
  void Erase(Vma* vma);

  // The VMA containing |va|, or nullptr.
  Vma* Find(Vaddr va) const;

  // First VMA overlapping |range| (lowest start), or nullptr.
  Vma* FindFirstOverlap(VaRange range) const;

  // Visits every VMA overlapping |range| in ascending order. The visitor must
  // not mutate the tree.
  void ForEachOverlap(VaRange range, const std::function<void(Vma*)>& visit) const;

  // Splits |vma| at |at| (start < at < end); |vma| keeps [start, at) and the
  // returned node holds [at, end).
  Vma* SplitAt(Vma* vma, Vaddr at);

  // Merges |vma| with its successor if adjacent with equal permissions.
  // Returns true if a merge happened (the successor node is freed).
  bool TryMergeWithNext(Vma* vma);

  // Successor by start address (nullptr if last).
  Vma* Next(const Vma* vma) const;

  size_t size() const { return count_; }

  // Structural sanity check (tests): AVL balance + ordered, disjoint VMAs.
  bool CheckInvariants() const;

 private:
  static int HeightOf(const Vma* node) { return node == nullptr ? 0 : node->height; }
  static void Update(Vma* node);
  static Vma* RotateLeft(Vma* node);
  static Vma* RotateRight(Vma* node);
  static Vma* Rebalance(Vma* node);
  static Vma* InsertInto(Vma* node, Vma* fresh);
  static Vma* EraseFrom(Vma* node, Vaddr start, Vma** erased);
  static Vma* DetachMin(Vma* node, Vma** min_out);
  void FreeAll(Vma* node);

  Vma* root_ = nullptr;
  size_t count_ = 0;
};

}  // namespace cortenmm

#endif  // SRC_BASELINE_VMA_TREE_H_
