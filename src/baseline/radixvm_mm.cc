#include "src/baseline/radixvm_mm.h"

#include <cassert>
#include <utility>

#include "src/common/stats.h"
#include "src/fault/fault_inject.h"
#include "src/obs/telemetry.h"
#include "src/core/addr_space.h"  // DropRunRef
#include "src/pmm/buddy.h"
#include "src/pmm/phys_mem.h"
#include "src/tlb/gather.h"

namespace cortenmm {
namespace {

std::atomic<uint16_t> g_next_radix_asid{0x8000};

}  // namespace

// Leaf: 512 PageInfo slots guarded by one lock (one lock per 2 MiB of VA —
// the same granularity as RadixVM's per-node locking).
struct RadixVmMm::RadixLeaf {
  SpinLock lock;
  PageInfo pages[kRadixFanout];
};

struct RadixVmMm::RadixNode {
  SpinLock lock;
  std::atomic<void*> children[kRadixFanout] = {};  // RadixNode* or RadixLeaf*.
};

RadixVmMm::RadixVmMm(const Options& options)
    : options_(options),
      asid_(g_next_radix_asid.fetch_add(1, std::memory_order_relaxed)),
      va_alloc_(/*per_core=*/true),  // RadixVM allocates VA per-core too.
      radix_root_(new RadixNode),
      replicas_(new Replica[options.max_cores]) {
  radix_nodes_.fetch_add(1, std::memory_order_relaxed);
}

RadixVmMm::~RadixVmMm() {
  Munmap(kUserVaBase, kUserVaCeiling - kUserVaBase);
  TlbSystem::Instance().DrainAll();
  for (CpuId cpu : active_cpus_.ToVector()) {
    TlbSystem::Instance().CpuTlb(cpu).InvalidateAsid(asid_);
  }
  // Free the radix tree.
  std::function<void(RadixNode*, int)> free_node = [&](RadixNode* node, int level) {
    for (int i = 0; i < kRadixFanout; ++i) {
      void* child = node->children[i].load(std::memory_order_relaxed);
      if (child == nullptr) {
        continue;
      }
      if (level == 2) {
        delete static_cast<RadixLeaf*>(child);
      } else {
        free_node(static_cast<RadixNode*>(child), level - 1);
      }
    }
    delete node;
  };
  free_node(radix_root_, kRadixLevels);
}

PageTable* RadixVmMm::ReplicaFor(CpuId cpu) {
  int index = cpu % options_.max_cores;
  Replica& replica = replicas_[index];
  PageTable* pt = replica.pt.get();
  if (pt == nullptr) {
    SpinGuard guard(replica_create_lock_);
    if (replica.pt == nullptr) {
      // Fallible: under memory pressure the replica simply does not come up
      // yet and the faulting access reports kNoMem; a later fault retries.
      Result<PageTable> created = PageTable::Create(options_.arch);
      if (!created.ok()) {
        return nullptr;
      }
      replica.pt = std::make_unique<PageTable>(std::move(*created));
    }
    pt = replica.pt.get();
  }
  return pt;
}

RadixVmMm::PageInfo* RadixVmMm::LookupOrCreate(uint64_t page_index, bool create) {
  RadixNode* node = radix_root_;
  for (int level = kRadixLevels; level > 2; --level) {
    int slot = (page_index >> (kRadixBits * (level - 1))) & (kRadixFanout - 1);
    void* child = node->children[slot].load(std::memory_order_acquire);
    if (child == nullptr) {
      if (!create) {
        return nullptr;
      }
      SpinGuard guard(node->lock);
      child = node->children[slot].load(std::memory_order_acquire);
      if (child == nullptr) {
        child = new RadixNode;
        radix_nodes_.fetch_add(1, std::memory_order_relaxed);
        node->children[slot].store(child, std::memory_order_release);
      }
    }
    node = static_cast<RadixNode*>(child);
  }
  int slot = (page_index >> kRadixBits) & (kRadixFanout - 1);
  void* leaf = node->children[slot].load(std::memory_order_acquire);
  if (leaf == nullptr) {
    if (!create) {
      return nullptr;
    }
    SpinGuard guard(node->lock);
    leaf = node->children[slot].load(std::memory_order_acquire);
    if (leaf == nullptr) {
      leaf = new RadixLeaf;
      radix_nodes_.fetch_add(1, std::memory_order_relaxed);
      node->children[slot].store(leaf, std::memory_order_release);
    }
  }
  return &static_cast<RadixLeaf*>(leaf)->pages[page_index & (kRadixFanout - 1)];
}

void RadixVmMm::ForRange(VaRange range, bool create,
                         const std::function<void(Vaddr, PageInfo&, SpinLock&)>& fn) {
  if (create) {
    // Creation is only used by mmap, whose ranges are bounded; per-page
    // creation matches RadixVM's per-page metadata cost.
    for (Vaddr va = range.start; va < range.end; va += kPageSize) {
      uint64_t page_index = va >> kPageBits;
      PageInfo* info = LookupOrCreate(page_index, /*create=*/true);
      auto* leaf = reinterpret_cast<RadixLeaf*>(
          reinterpret_cast<char*>(info - (page_index & (kRadixFanout - 1))) -
          offsetof(RadixLeaf, pages));
      fn(va, *info, leaf->lock);
    }
    return;
  }
  // Read-only walk: skip absent subtrees so huge sparse ranges stay cheap.
  uint64_t first_page = range.start >> kPageBits;
  uint64_t last_page = (range.end - 1) >> kPageBits;
  std::function<void(RadixNode*, int, uint64_t)> walk = [&](RadixNode* node, int level,
                                                            uint64_t base) {
    uint64_t child_pages = 1ull << (kRadixBits * (level - 1));
    for (int i = 0; i < kRadixFanout; ++i) {
      uint64_t child_base = base + static_cast<uint64_t>(i) * child_pages;
      if (child_base > last_page || child_base + child_pages <= first_page) {
        continue;
      }
      void* child = node->children[i].load(std::memory_order_acquire);
      if (child == nullptr) {
        continue;
      }
      if (level > 2) {
        walk(static_cast<RadixNode*>(child), level - 1, child_base);
        continue;
      }
      auto* leaf = static_cast<RadixLeaf*>(child);
      uint64_t lo = child_base < first_page ? first_page - child_base : 0;
      uint64_t hi = child_base + kRadixFanout - 1 > last_page
                        ? last_page - child_base
                        : static_cast<uint64_t>(kRadixFanout - 1);
      for (uint64_t j = lo; j <= hi; ++j) {
        fn((child_base + j) << kPageBits, leaf->pages[j], leaf->lock);
      }
    }
  };
  walk(radix_root_, kRadixLevels, 0);
}

void RadixVmMm::InstallInReplica(int replica_index, Vaddr va, Pfn pfn, Perm perm) {
  Replica& replica = replicas_[replica_index];
  PageTable* pt = replica.pt.get();
  if (pt == nullptr) {
    return;  // Replica never came up (OOM); nothing to install into.
  }
  SpinGuard guard(replica.lock);
  Pfn page = pt->root();
  for (int level = kPtLevels; level > 1; --level) {
    uint64_t index = PtIndex(va, level);
    Pte pte = pt->LoadEntry(page, index);
    if (!PteIsPresent(pt->arch(), pte)) {
      Result<Pfn> child = pt->AllocPtPage(level - 1);
      if (!child.ok()) {
        // OOM mid-descent: the page is simply absent from this replica. The
        // radix tree stays authoritative (no frame is lost) and the next
        // fault on this core retries the install.
        FaultInjector::NoteSurvived();
        return;
      }
      pt->StoreEntry(page, index, MakeTablePte(pt->arch(), *child));
      pte = pt->LoadEntry(page, index);
    }
    page = PtePfn(pt->arch(), pte);
  }
  pt->StoreEntry(page, PtIndex(va, 1), MakeLeafPte(pt->arch(), pfn, perm, 1));
}

void RadixVmMm::RemoveFromReplica(int replica_index, Vaddr va) {
  Replica& replica = replicas_[replica_index];
  PageTable* pt = replica.pt.get();
  if (pt == nullptr) {
    return;
  }
  SpinGuard guard(replica.lock);
  PageTable::WalkResult walk = pt->Walk(va);
  if (walk.present) {
    pt->StoreEntry(walk.pt_page, walk.index, kNullPte);
  }
}

Result<Vaddr> RadixVmMm::MmapAnon(const MmapArgs& args) {
  ScopedOpTimer telemetry_timer(MmOp::kMmap);
  if (args.len == 0) {
    return ErrCode::kInval;
  }
  uint64_t len = AlignUp(args.len, kPageSize);
  if (args.fixed) {
    VoidResult r = MmapAnonFixed(args.va, len, args.perm);
    if (!r.ok()) {
      return r.error();
    }
    return args.va;
  }
  Result<Vaddr> va = va_alloc_.Alloc(len);
  if (!va.ok()) {
    return va;
  }
  VoidResult r = MmapAnonFixed(*va, len, args.perm);
  if (!r.ok()) {
    va_alloc_.Free(*va, len);
    return r.error();
  }
  return va;
}

VoidResult RadixVmMm::MmapAnonFixed(Vaddr va, uint64_t len, Perm perm) {
  if (!IsAligned(va, kPageSize) || len == 0) {
    return ErrCode::kInval;
  }
  VaRange range(va, va + AlignUp(len, kPageSize));
  ForRange(range, /*create=*/true, [&](Vaddr, PageInfo& info, SpinLock& lock) {
    SpinGuard guard(lock);
    info.state = PageInfo::State::kVirtual;
    info.perm = perm;
  });
  return VoidResult();
}

VoidResult RadixVmMm::Munmap(Vaddr va, uint64_t len) {
  ScopedOpTimer telemetry_timer(MmOp::kMunmap);
  if (!IsAligned(va, kPageSize) || len == 0) {
    return ErrCode::kInval;
  }
  VaRange range(va, va + AlignUp(len, kPageSize));
  std::vector<Pfn> dead_frames;
  ForRange(range, /*create=*/false, [&](Vaddr page_va, PageInfo& info, SpinLock& lock) {
    SpinGuard guard(lock);
    if (info.state == PageInfo::State::kMapped) {
      // Targeted removal: only replicas that actually mapped the page.
      for (int r = 0; r < options_.max_cores && r < 64; ++r) {
        if (info.mapped_cores & (1ull << r)) {
          RemoveFromReplica(r, page_va);
        }
      }
      dead_frames.push_back(info.pfn);
    }
    info = PageInfo{};
  });
  TlbGather gather;
  gather.AddRange(range);
  for (Pfn pfn : dead_frames) {
    gather.AddFrame(pfn);
  }
  gather.Flush(asid_, active_cpus_, options_.tlb_policy, &DropRunRef);
  va_alloc_.Free(va, AlignUp(len, kPageSize));
  return VoidResult();
}

VoidResult RadixVmMm::Mprotect(Vaddr va, uint64_t len, Perm perm) {
  ScopedOpTimer telemetry_timer(MmOp::kMprotect);
  if (!IsAligned(va, kPageSize) || len == 0) {
    return ErrCode::kInval;
  }
  VaRange range(va, va + AlignUp(len, kPageSize));
  ForRange(range, /*create=*/false, [&](Vaddr page_va, PageInfo& info, SpinLock& lock) {
    SpinGuard guard(lock);
    if (info.state == PageInfo::State::kUnmapped) {
      return;
    }
    info.perm = perm;
    if (info.state == PageInfo::State::kMapped) {
      for (int r = 0; r < options_.max_cores && r < 64; ++r) {
        if (info.mapped_cores & (1ull << r)) {
          InstallInReplica(r, page_va, info.pfn, perm);
        }
      }
    }
  });
  TlbGather gather;
  gather.AddRange(range);
  gather.Flush(asid_, active_cpus_, options_.tlb_policy, nullptr);
  return VoidResult();
}

VoidResult RadixVmMm::HandleFault(Vaddr va, Access access) {
  ScopedOpTimer telemetry_timer(MmOp::kFault);
  CountEvent(Counter::kPageFaults);
  CpuId cpu = CurrentCpu();
  NoteCpuActive(cpu);
  int replica_index = cpu % options_.max_cores;
  if (ReplicaFor(cpu) == nullptr) {  // Ensure the replica exists.
    return ErrCode::kNoMem;
  }

  Vaddr page_va = AlignDown(va, kPageSize);
  PageInfo* info = LookupOrCreate(page_va >> kPageBits, /*create=*/false);
  if (info == nullptr) {
    return ErrCode::kFault;
  }
  auto* leaf = reinterpret_cast<RadixLeaf*>(
      reinterpret_cast<char*>(info - ((page_va >> kPageBits) & (kRadixFanout - 1))) -
      offsetof(RadixLeaf, pages));
  SpinGuard guard(leaf->lock);
  switch (info->state) {
    case PageInfo::State::kUnmapped:
      return ErrCode::kFault;
    case PageInfo::State::kVirtual: {
      if (!PermAllowsAccess(info->perm, access)) {
        return ErrCode::kFault;
      }
      Result<Pfn> frame = BuddyAllocator::Instance().AllocZeroedFrame();
      if (!frame.ok()) {
        return frame.error();
      }
      PhysMem::Instance().Descriptor(*frame).ResetForAlloc(FrameType::kAnon);
      CountEvent(Counter::kDemandZeroFills);
      info->state = PageInfo::State::kMapped;
      info->pfn = *frame;
      info->mapped_cores = 1ull << replica_index;
      InstallInReplica(replica_index, page_va, *frame, info->perm);
      return VoidResult();
    }
    case PageInfo::State::kMapped: {
      if (!PermAllowsAccess(info->perm, access)) {
        return ErrCode::kFault;
      }
      // Mapped globally but missing in this core's replica: fill it locally.
      info->mapped_cores |= 1ull << replica_index;
      InstallInReplica(replica_index, page_va, info->pfn, info->perm);
      return VoidResult();
    }
  }
  return ErrCode::kFault;
}

uint64_t RadixVmMm::PtBytes() {
  uint64_t bytes = 0;
  for (int r = 0; r < options_.max_cores; ++r) {
    if (replicas_[r].pt != nullptr) {
      bytes += replicas_[r].pt->CountPtPages() * kPageSize;
    }
  }
  return bytes;
}

uint64_t RadixVmMm::MetaBytes() {
  uint64_t nodes = radix_nodes_.load(std::memory_order_relaxed);
  // Interior nodes and leaves have the same order of size; count both.
  return nodes * sizeof(RadixNode);
}

}  // namespace cortenmm
