// The Linux-style baseline: the classic two-level-abstraction design the
// paper analyzes in §2.2 — a VMA tree (software level) synchronized with the
// hardware page table by the locking rules of Table 1 / Figure 2:
//
//   * mmap_lock (rw) protects the whole address space; mmap/munmap/mprotect
//     take the writer side, page faults the reader side.
//   * per-VMA locks + sequence counts guard individual VMAs.
//   * a coarse page_table_lock protects PT pages above level 2; per-PT-page
//     locks protect levels 2 and 1.
//
// This reproduces the contention structure the paper measures against: mmap
// and munmap serialize on the writer side of mmap_lock; concurrent page
// faults scale only until the mmap_lock reader count and the VMA locks start
// bouncing (paper §6.3, "extra synchronization for the VMA layer").
#ifndef SRC_BASELINE_LINUX_MM_H_
#define SRC_BASELINE_LINUX_MM_H_

#include <memory>
#include <vector>

#include "src/baseline/vma_tree.h"
#include "src/core/va_alloc.h"
#include "src/pt/page_table.h"
#include "src/sim/mm_interface.h"
#include "src/common/cpu.h"
#include "src/sync/spinlock.h"
#include "src/tlb/shootdown.h"

namespace cortenmm {

class LinuxVmaMm final : public MmInterface {
 public:
  struct Options {
    Arch arch = Arch::kX86_64;
    TlbPolicy tlb_policy = TlbPolicy::kSync;
    // THP-style knob (transparent_hugepage=always analog): anonymous faults
    // install a 2 MiB leaf when the VMA covers the aligned slot, falling back
    // to 4 KiB when the order-9 allocation fails. Like pre-THP-aware Linux,
    // fork and partial munmap/mprotect split huge leaves back to base pages.
    bool huge = false;
  };

  // Aborts loudly if the page-table root cannot be allocated; use Create for
  // the propagating path.
  explicit LinuxVmaMm(const Options& options);
  LinuxVmaMm() : LinuxVmaMm(Options{}) {}
  // Adopts a pre-created page table (the fallible construction path).
  LinuxVmaMm(const Options& options, PageTable pt);
  // Fallible construction: returns kNoMem instead of aborting.
  static Result<std::unique_ptr<LinuxVmaMm>> Create(const Options& options);
  ~LinuxVmaMm() override;

  const char* name() const override { return "linux-vma"; }
  Asid asid() const override { return asid_; }
  PageTable& PageTableFor(CpuId) override { return pt_; }
  void NoteCpuActive(CpuId cpu) override {
    if (!active_cpus_.Test(cpu)) {
      active_cpus_.Set(cpu);
    }
  }

  using MmInterface::MmapAnon;
  Result<Vaddr> MmapAnon(const MmapArgs& args) override;
  VoidResult Munmap(Vaddr va, uint64_t len) override;
  VoidResult Mprotect(Vaddr va, uint64_t len, Perm perm) override;
  VoidResult HandleFault(Vaddr va, Access access) override;

  uint64_t PtBytes() override { return pt_.CountPtPages() * kPageSize; }
  // The VMA tree is the software-level abstraction's metadata cost.
  uint64_t MetaBytes() override;

  // fork() for the LMbench comparison (Figure 20): duplicates the VMA tree
  // (the cheap part Linux is good at) and COW-copies the page table within
  // each VMA's range only.
  std::unique_ptr<MmInterface> Fork() override;

  size_t VmaCount();

  // Test support: validates the VMA tree structure.
  bool CheckVmaTree();

 private:
  // MAP_FIXED placement: replaces whatever overlaps [va, va+len).
  VoidResult MmapAnonFixed(Vaddr va, uint64_t len, Perm perm);
  // Page-table plumbing (caller holds the locks per Table 1). Returns the PT
  // page holding the slot at |target_level| (default: the level-1 leaf
  // table), or kNoMem when an intermediate PT page cannot be allocated; no
  // partial state needs undoing (already-linked intermediate tables are empty
  // and harmless). A huge leaf encountered above |target_level| is split in
  // place under that page's lock — semantically invisible, so safe from the
  // fault path.
  Result<Pfn> EnsurePtPath(Vaddr va, int target_level = 1);
  // Splits the level-2 huge leaf at (pt_page, index) into a level-1 table of
  // base leaves with identical permissions. Caller holds the lock covering
  // the slot. Returns the new level-1 table, or kNoMem with the leaf intact.
  Result<Pfn> SplitHugeLeafLocked(Pfn pt_page, uint64_t index);
  // Splits every huge leaf intersecting |range| (only the partially-covered
  // ones when |only_partial|). Splits are observationally invisible, so a
  // kNoMem after some splits leaves the space semantically unchanged and the
  // caller can surface the error with nothing to undo. Caller holds the
  // mmap_lock writer side.
  VoidResult SplitCoveredHugeLeaves(VaRange range, bool only_partial);
  // After SplitCoveredHugeLeaves(range, only_partial=true), every leaf that
  // intersects |range| is fully covered by it: level-1 leaves become order-0
  // dead runs, level-2 leaves order-9 runs.
  void UnmapPtRange(VaRange range, std::vector<PageRun>* dead_runs);
  // THP fault path: tries to resolve an anon fault by installing a 2 MiB
  // leaf over [huge_base, huge_base + 2 MiB) (the VMA must cover it).
  // Returns true if the fault is resolved (leaf installed, or another thread
  // already installed one); false means "take the 4 KiB path" — the slot
  // holds a level-1 table, or the order-9 allocation failed (counted as
  // huge_fallbacks).
  bool TryHugeDemandFault(Vaddr huge_base, Perm perm);
  void FreeEmptyTables(VaRange range);
  // Removes all VMAs overlapping |range| (splitting edges) and clears the
  // covered PTEs. Caller holds the mmap_lock writer side.
  void DoMunmapLocked(VaRange range);

  // The per-fault bookkeeping real Linux performs besides the mapping itself:
  // memory-cgroup charging and LRU insertion via per-CPU pagevecs that drain
  // under the global lru_lock. Both are part of why the Linux anon-fault path
  // is heavier than a bare PTE install, and both contend under load.
  void ChargeAndLruAdd(Pfn pfn);
  void UnchargeAndLruDel(uint64_t pages);

  Options options_;
  Asid asid_;
  PageTable pt_;
  VaAllocator va_alloc_;
  CpuMask active_cpus_;

  PfqRwLock mmap_lock_;
  VmaTree vmas_;             // Guarded by mmap_lock_.
  SpinLock page_table_lock_;  // Coarse lock for PT pages above level 2.

  std::atomic<uint64_t> memcg_charged_{0};  // mem_cgroup page counter.
  SpinLock lru_lock_;
  std::vector<Pfn> lru_list_;  // Guarded by lru_lock_.
  struct Pagevec {
    SpinLock lock;
    std::vector<Pfn> pages;
  };
  CacheAligned<Pagevec> pagevecs_[kMaxCpus];
};

}  // namespace cortenmm

#endif  // SRC_BASELINE_LINUX_MM_H_
