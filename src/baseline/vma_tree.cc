#include "src/baseline/vma_tree.h"

#include <cassert>

#include "src/common/stats.h"
#include "src/pmm/slab.h"

namespace cortenmm {
namespace {

TypedSlab<Vma>& VmaSlab() {
  static TypedSlab<Vma> slab("vma");
  return slab;
}

}  // namespace

VmaTree::~VmaTree() { FreeAll(root_); }

void VmaTree::FreeAll(Vma* node) {
  if (node == nullptr) {
    return;
  }
  FreeAll(node->left);
  FreeAll(node->right);
  VmaSlab().Delete(node);
}

void VmaTree::Update(Vma* node) {
  int lh = HeightOf(node->left);
  int rh = HeightOf(node->right);
  node->height = (lh > rh ? lh : rh) + 1;
}

Vma* VmaTree::RotateLeft(Vma* node) {
  Vma* pivot = node->right;
  node->right = pivot->left;
  pivot->left = node;
  Update(node);
  Update(pivot);
  return pivot;
}

Vma* VmaTree::RotateRight(Vma* node) {
  Vma* pivot = node->left;
  node->left = pivot->right;
  pivot->right = node;
  Update(node);
  Update(pivot);
  return pivot;
}

Vma* VmaTree::Rebalance(Vma* node) {
  Update(node);
  int balance = HeightOf(node->left) - HeightOf(node->right);
  if (balance > 1) {
    if (HeightOf(node->left->left) < HeightOf(node->left->right)) {
      node->left = RotateLeft(node->left);
    }
    return RotateRight(node);
  }
  if (balance < -1) {
    if (HeightOf(node->right->right) < HeightOf(node->right->left)) {
      node->right = RotateRight(node->right);
    }
    return RotateLeft(node);
  }
  return node;
}

Vma* VmaTree::InsertInto(Vma* node, Vma* fresh) {
  if (node == nullptr) {
    return fresh;
  }
  if (fresh->start < node->start) {
    node->left = InsertInto(node->left, fresh);
  } else {
    node->right = InsertInto(node->right, fresh);
  }
  return Rebalance(node);
}

Vma* VmaTree::Insert(Vaddr start, Vaddr end, Perm perm) {
  assert(start < end);
  Vma* fresh = VmaSlab().New();
  assert(fresh != nullptr);
  fresh->start = start;
  fresh->end = end;
  fresh->perm = perm;
  fresh->left = fresh->right = nullptr;
  fresh->height = 1;
  root_ = InsertInto(root_, fresh);
  ++count_;
  return fresh;
}

Vma* VmaTree::DetachMin(Vma* node, Vma** min_out) {
  if (node->left == nullptr) {
    *min_out = node;
    return node->right;
  }
  node->left = DetachMin(node->left, min_out);
  return Rebalance(node);
}

Vma* VmaTree::EraseFrom(Vma* node, Vaddr start, Vma** erased) {
  if (node == nullptr) {
    return nullptr;
  }
  if (start < node->start) {
    node->left = EraseFrom(node->left, start, erased);
  } else if (start > node->start) {
    node->right = EraseFrom(node->right, start, erased);
  } else {
    *erased = node;
    if (node->left == nullptr) {
      return node->right;
    }
    if (node->right == nullptr) {
      return node->left;
    }
    // Splice the successor node into this position (pointers to nodes held by
    // callers must stay valid, so values are never copied between nodes).
    Vma* successor = nullptr;
    Vma* new_right = DetachMin(node->right, &successor);
    successor->left = node->left;
    successor->right = new_right;
    return Rebalance(successor);
  }
  return Rebalance(node);
}

void VmaTree::Erase(Vma* vma) {
  Vma* erased = nullptr;
  root_ = EraseFrom(root_, vma->start, &erased);
  assert(erased == vma);
  VmaSlab().Delete(erased);
  --count_;
}

Vma* VmaTree::Find(Vaddr va) const {
  Vma* node = root_;
  Vma* best = nullptr;
  while (node != nullptr) {
    if (va < node->start) {
      node = node->left;
    } else {
      best = node;  // start <= va; candidate.
      node = node->right;
    }
  }
  return best != nullptr && best->Contains(va) ? best : nullptr;
}

Vma* VmaTree::FindFirstOverlap(VaRange range) const {
  Vma* node = root_;
  Vma* best = nullptr;
  while (node != nullptr) {
    if (node->Overlaps(range)) {
      best = node;          // Keep searching left for an earlier overlap.
      node = node->left;
    } else if (range.start < node->start) {
      node = node->left;
    } else {
      node = node->right;
    }
  }
  return best;
}

void VmaTree::ForEachOverlap(VaRange range, const std::function<void(Vma*)>& visit) const {
  Vma* vma = FindFirstOverlap(range);
  while (vma != nullptr && vma->start < range.end) {
    if (vma->Overlaps(range)) {
      visit(vma);
    }
    vma = Next(vma);
  }
}

Vma* VmaTree::Next(const Vma* vma) const {
  // No parent pointers: search from the root for the smallest start > vma's.
  Vma* node = root_;
  Vma* best = nullptr;
  while (node != nullptr) {
    if (node->start > vma->start) {
      best = node;
      node = node->left;
    } else {
      node = node->right;
    }
  }
  return best;
}

Vma* VmaTree::SplitAt(Vma* vma, Vaddr at) {
  assert(at > vma->start && at < vma->end);
  CountEvent(Counter::kVmaSplits);
  Vaddr old_end = vma->end;
  vma->seq.WriteBegin();
  vma->end = at;
  vma->seq.WriteEnd();
  return Insert(at, old_end, vma->perm);
}

bool VmaTree::TryMergeWithNext(Vma* vma) {
  Vma* next = Next(vma);
  if (next == nullptr || next->start != vma->end || !(next->perm == vma->perm)) {
    return false;
  }
  CountEvent(Counter::kVmaMerges);
  vma->seq.WriteBegin();
  vma->end = next->end;
  vma->seq.WriteEnd();
  Erase(next);
  return true;
}

bool VmaTree::CheckInvariants() const {
  // In-order walk: strictly increasing, non-overlapping, AVL-balanced.
  bool ok = true;
  Vaddr prev_end = 0;
  std::function<int(const Vma*)> walk = [&](const Vma* node) -> int {
    if (node == nullptr) {
      return 0;
    }
    int lh = walk(node->left);
    if (node->start < prev_end || node->start >= node->end) {
      ok = false;
    }
    prev_end = node->end;
    int rh = walk(node->right);
    if (node->height != (lh > rh ? lh : rh) + 1 || lh - rh > 1 || rh - lh > 1) {
      ok = false;
    }
    return node->height;
  };
  walk(root_);
  return ok;
}

}  // namespace cortenmm
