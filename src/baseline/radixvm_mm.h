// RadixVM-style baseline (Clements et al., EuroSys'13): mapping metadata in a
// radix tree over page numbers (no interval tree, no mmap_lock) plus
// *per-core page tables*. Page faults touch only the faulting core's replica,
// so concurrent faults on disjoint pages share no cache lines — at the price
// of replicating the page table on every core that touches a mapping, the
// memory blow-up Figure 22 shows.
#ifndef SRC_BASELINE_RADIXVM_MM_H_
#define SRC_BASELINE_RADIXVM_MM_H_

#include <array>
#include <atomic>
#include <memory>

#include "src/core/va_alloc.h"
#include "src/pt/page_table.h"
#include "src/sim/mm_interface.h"
#include "src/sync/spinlock.h"
#include "src/tlb/shootdown.h"

namespace cortenmm {

class RadixVmMm final : public MmInterface {
 public:
  struct Options {
    Arch arch = Arch::kX86_64;
    TlbPolicy tlb_policy = TlbPolicy::kSync;
    int max_cores = 64;  // Replicas are created lazily up to this bound.
  };

  explicit RadixVmMm(const Options& options);
  RadixVmMm() : RadixVmMm(Options{}) {}
  ~RadixVmMm() override;

  const char* name() const override { return "radixvm"; }
  Asid asid() const override { return asid_; }
  PageTable& PageTableFor(CpuId cpu) override { return *ReplicaFor(cpu); }
  void NoteCpuActive(CpuId cpu) override {
    if (!active_cpus_.Test(cpu)) {
      active_cpus_.Set(cpu);
    }
  }

  using MmInterface::MmapAnon;
  Result<Vaddr> MmapAnon(const MmapArgs& args) override;
  VoidResult Munmap(Vaddr va, uint64_t len) override;
  VoidResult Mprotect(Vaddr va, uint64_t len, Perm perm) override;
  VoidResult HandleFault(Vaddr va, Access access) override;

  // Sums *all* replicas: the RadixVM overhead bar in Figure 22.
  uint64_t PtBytes() override;
  uint64_t MetaBytes() override;

 private:
  // Fixed placement: marks [va, va+len) virtually allocated.
  VoidResult MmapAnonFixed(Vaddr va, uint64_t len, Perm perm);

  // Per-virtual-page metadata held in the radix tree.
  struct PageInfo {
    enum class State : uint8_t { kUnmapped = 0, kVirtual, kMapped };
    State state = State::kUnmapped;
    Perm perm;
    Pfn pfn = kInvalidPfn;
    uint64_t mapped_cores = 0;  // Bitmask of replicas holding a PTE (<=64).
  };

  // A fixed-depth radix tree over the 36-bit page index (9 bits per level),
  // with a spin lock per interior node — disjoint regions never contend.
  struct RadixNode;
  struct RadixLeaf;

  static constexpr int kRadixBits = 9;
  static constexpr int kRadixFanout = 1 << kRadixBits;
  static constexpr int kRadixLevels = 4;  // 4 x 9 = 36 bits of page index.

  PageInfo* LookupOrCreate(uint64_t page_index, bool create);
  void ForRange(VaRange range, bool create,
                const std::function<void(Vaddr, PageInfo&, SpinLock&)>& fn);

  PageTable* ReplicaFor(CpuId cpu);
  // Installs / removes a PTE in one replica (guarded by the replica lock).
  void InstallInReplica(int replica, Vaddr va, Pfn pfn, Perm perm);
  void RemoveFromReplica(int replica, Vaddr va);

  Options options_;
  Asid asid_;
  VaAllocator va_alloc_;
  CpuMask active_cpus_;

  RadixNode* radix_root_;
  std::atomic<uint64_t> radix_nodes_{0};

  struct Replica {
    SpinLock lock;
    std::unique_ptr<PageTable> pt;
  };
  std::unique_ptr<Replica[]> replicas_;
  SpinLock replica_create_lock_;
};

}  // namespace cortenmm

#endif  // SRC_BASELINE_RADIXVM_MM_H_
