#include "src/baseline/linux_mm.h"

#include <cassert>
#include <utility>

#include "src/common/stats.h"
#include "src/fault/fault_inject.h"
#include "src/obs/telemetry.h"
#include "src/core/addr_space.h"  // DropRunRef / AddFrameRef
#include "src/pmm/buddy.h"
#include "src/pmm/phys_mem.h"
#include "src/tlb/gather.h"

namespace cortenmm {
namespace {

std::atomic<uint16_t> g_next_linux_asid{0x4000};  // Disjoint from CortenMM ASIDs.

}  // namespace

LinuxVmaMm::LinuxVmaMm(const Options& options)
    : options_(options),
      asid_(g_next_linux_asid.fetch_add(1, std::memory_order_relaxed)),
      pt_(options.arch),
      va_alloc_(/*per_core=*/false) {}  // Linux: one VA arena per mm.

LinuxVmaMm::LinuxVmaMm(const Options& options, PageTable pt)
    : options_(options),
      asid_(g_next_linux_asid.fetch_add(1, std::memory_order_relaxed)),
      pt_(std::move(pt)),
      va_alloc_(/*per_core=*/false) {}

Result<std::unique_ptr<LinuxVmaMm>> LinuxVmaMm::Create(const Options& options) {
  Result<PageTable> pt = PageTable::Create(options.arch);
  if (!pt.ok()) {
    return pt.error();
  }
  return std::unique_ptr<LinuxVmaMm>(new LinuxVmaMm(options, std::move(*pt)));
}

LinuxVmaMm::~LinuxVmaMm() {
  mmap_lock_.WriteLock();
  DoMunmapLocked(VaRange(0, kVaLimit));
  mmap_lock_.WriteUnlock();
  TlbSystem::Instance().DrainAll();
  for (CpuId cpu : active_cpus_.ToVector()) {
    TlbSystem::Instance().CpuTlb(cpu).InvalidateAsid(asid_);
  }
}

// ---------------------------------------------------------------------------
// Page-table plumbing (locking per Table 1: coarse lock above level 2,
// per-PT-page locks at level 2 for installing level-1 tables and leaves).
// ---------------------------------------------------------------------------

Result<Pfn> LinuxVmaMm::EnsurePtPath(Vaddr va, int target_level) {
  Pfn page = pt_.root();
  for (int level = kPtLevels; level > target_level; --level) {
    uint64_t index = PtIndex(va, level);
    Pte pte = pt_.LoadEntry(page, index);
    if (PteIsPresent(pt_.arch(), pte) && PteIsLeaf(pt_.arch(), pte, level)) {
      // A huge leaf blocks the descent (e.g. the 4 KiB fault path racing a
      // concurrent THP install). Split it in place under the slot's lock.
      assert(level == 2);
      CnaNode* node = CnaNodePool::Get();
      PageDescriptor& desc = PhysMem::Instance().Descriptor(page);
      desc.cna.Lock(node);
      pte = pt_.LoadEntry(page, index);
      if (PteIsPresent(pt_.arch(), pte) && PteIsLeaf(pt_.arch(), pte, level)) {
        Result<Pfn> split = SplitHugeLeafLocked(page, index);
        if (!split.ok()) {
          desc.cna.Unlock(node);
          CnaNodePool::Put(node);
          return split;
        }
        pte = pt_.LoadEntry(page, index);
      }
      desc.cna.Unlock(node);
      CnaNodePool::Put(node);
    }
    if (!PteIsPresent(pt_.arch(), pte)) {
      // Rule 5: hold the lock of the target page table while inserting.
      if (level > 2) {
        SpinGuard guard(page_table_lock_);
        pte = pt_.LoadEntry(page, index);
        if (!PteIsPresent(pt_.arch(), pte)) {
          Result<Pfn> child = pt_.AllocPtPage(level - 1);
          if (!child.ok()) {
            return child;
          }
          pt_.StoreEntry(page, index, MakeTablePte(pt_.arch(), *child));
          pte = pt_.LoadEntry(page, index);
        }
      } else {
        CnaNode* node = CnaNodePool::Get();
        PageDescriptor& desc = PhysMem::Instance().Descriptor(page);
        desc.cna.Lock(node);
        pte = pt_.LoadEntry(page, index);
        if (!PteIsPresent(pt_.arch(), pte)) {
          Result<Pfn> child = pt_.AllocPtPage(level - 1);
          if (!child.ok()) {
            desc.cna.Unlock(node);
            CnaNodePool::Put(node);
            return child;
          }
          pt_.StoreEntry(page, index, MakeTablePte(pt_.arch(), *child));
          pte = pt_.LoadEntry(page, index);
        }
        desc.cna.Unlock(node);
        CnaNodePool::Put(node);
      }
    }
    page = PtePfn(pt_.arch(), pte);
  }
  return page;
}

Result<Pfn> LinuxVmaMm::SplitHugeLeafLocked(Pfn pt_page, uint64_t index) {
  Pte leaf = pt_.LoadEntry(pt_page, index);
  Pfn head = PtePfn(pt_.arch(), leaf);
  Perm perm = PtePerm(pt_.arch(), leaf);
  Result<Pfn> child = pt_.AllocPtPage(1);
  if (!child.ok()) {
    return child;
  }
  // Per-frame mapcounts were taken at install time, so the split only
  // rewrites translations: same frames, same permissions, finer granularity.
  for (uint64_t i = 0; i < kPtesPerPage; ++i) {
    pt_.StoreEntry(*child, i, MakeLeafPte(pt_.arch(), head + i, perm, 1));
  }
  pt_.StoreEntry(pt_page, index, MakeTablePte(pt_.arch(), *child));
  CountEvent(Counter::kHugeSplits);
  return child;
}

VoidResult LinuxVmaMm::SplitCoveredHugeLeaves(VaRange range, bool only_partial) {
  std::vector<Vaddr> to_split;
  pt_.ForEachLeaf(range, [&](Vaddr va, Pte, int level) {
    if (level < 2) {
      return;
    }
    VaRange span(va, va + PtEntrySpan(level));
    if (!only_partial || !range.Contains(span)) {
      to_split.push_back(va);
    }
  });
  for (Vaddr va : to_split) {
    PageTable::WalkResult walk = pt_.Walk(va);
    if (!walk.present || walk.level != 2) {
      continue;
    }
    CnaNode* node = CnaNodePool::Get();
    PageDescriptor& desc = PhysMem::Instance().Descriptor(walk.pt_page);
    desc.cna.Lock(node);
    // Re-check under the lock: a racing splitter may have beaten us here.
    Result<Pfn> split =
        PteIsLeaf(pt_.arch(), pt_.LoadEntry(walk.pt_page, walk.index), 2)
            ? SplitHugeLeafLocked(walk.pt_page, walk.index)
            : Result<Pfn>(walk.pt_page);
    desc.cna.Unlock(node);
    CnaNodePool::Put(node);
    if (!split.ok()) {
      return split.error();
    }
  }
  return VoidResult();
}

void LinuxVmaMm::UnmapPtRange(VaRange range, std::vector<PageRun>* dead_runs) {
  struct LeafRec {
    Vaddr va;
    Pte pte;
    int level;
  };
  std::vector<LeafRec> leaves;
  pt_.ForEachLeaf(range, [&](Vaddr va, Pte pte, int level) {
    leaves.push_back(LeafRec{va, pte, level});
  });
  for (const LeafRec& leaf : leaves) {
    assert(leaf.level <= 2);
    // Partially-covered huge leaves were split by the caller's
    // SplitCoveredHugeLeaves pass, so every leaf here dies whole.
    assert(range.Contains(VaRange(leaf.va, leaf.va + PtEntrySpan(leaf.level))));
    PageTable::WalkResult walk = pt_.Walk(leaf.va);
    if (!walk.present) {
      continue;
    }
    pt_.StoreEntry(walk.pt_page, walk.index, kNullPte);
    Pfn pfn = PtePfn(pt_.arch(), leaf.pte);
    uint64_t frames = leaf.level == 2 ? (1ull << kHugeOrder) : 1;
    for (uint64_t f = 0; f < frames; ++f) {
      PhysMem::Instance().Descriptor(pfn + f).mapcount.fetch_sub(
          1, std::memory_order_acq_rel);
    }
    dead_runs->push_back(
        PageRun(pfn, leaf.level == 2 ? static_cast<uint8_t>(kHugeOrder) : 0));
  }
}

void LinuxVmaMm::FreeEmptyTables(VaRange range) {
  // Rule 7: freeing a page table requires the mmap_lock writer side (held by
  // callers) and the entry already cleared. Walk top-down and prune child
  // tables that are fully covered by |range| and empty.
  std::function<bool(Pfn, int, Vaddr)> prune = [&](Pfn page, int level,
                                                   Vaddr base) -> bool {
    bool empty = true;
    uint64_t span = PtEntrySpan(level);
    // Only slots intersecting |range| are candidates; slots outside it make
    // the page non-empty without being visited (free_pgtables walks the
    // unmapped range only, not the whole tree).
    uint64_t first = range.start > base ? (range.start - base) / span : 0;
    uint64_t last =
        range.end < base + PtPageSpan(level) ? (range.end - 1 - base) / span
                                             : kPtesPerPage - 1;
    if (first > 0 || last < kPtesPerPage - 1) {
      // Conservatively treat the unscanned remainder as occupied.
      empty = false;
    }
    for (uint64_t i = first; i <= last; ++i) {
      Pte pte = pt_.LoadEntry(page, i);
      if (!PteIsPresent(pt_.arch(), pte)) {
        continue;
      }
      Vaddr entry_va = base + i * span;
      VaRange entry_range(entry_va, entry_va + span);
      if (!PteIsLeaf(pt_.arch(), pte, level) && range.Contains(entry_range)) {
        if (prune(PtePfn(pt_.arch(), pte), level - 1, entry_va)) {
          pt_.StoreEntry(page, i, kNullPte);
          PageTable::FreePtPage(PtePfn(pt_.arch(), pte));
          continue;
        }
      } else if (!PteIsLeaf(pt_.arch(), pte, level) && entry_range.Overlaps(range)) {
        // Partially-covered subtree: recurse to free fully-covered children.
        prune(PtePfn(pt_.arch(), pte), level - 1, entry_va);
      }
      empty = false;
    }
    return empty;
  };
  prune(pt_.root(), kPtLevels, 0);
}

void LinuxVmaMm::ChargeAndLruAdd(Pfn pfn) {
  // mem_cgroup_charge analog: hierarchical page counter.
  memcg_charged_.fetch_add(1, std::memory_order_relaxed);
  // lru_cache_add analog: per-CPU pagevec, drained under the global lru_lock
  // every PAGEVEC_SIZE (15) pages.
  Pagevec& vec = pagevecs_[CurrentCpu()].value;
  SpinGuard guard(vec.lock);
  vec.pages.push_back(pfn);
  if (vec.pages.size() >= 15) {
    SpinGuard lru_guard(lru_lock_);
    lru_list_.insert(lru_list_.end(), vec.pages.begin(), vec.pages.end());
    vec.pages.clear();
  }
}

void LinuxVmaMm::UnchargeAndLruDel(uint64_t pages) {
  if (pages == 0) {
    return;
  }
  memcg_charged_.fetch_sub(pages, std::memory_order_relaxed);
  // release_pages analog: batch-remove from the LRU under lru_lock.
  SpinGuard guard(lru_lock_);
  uint64_t keep = lru_list_.size() > pages ? lru_list_.size() - pages : 0;
  lru_list_.resize(keep);
}

// ---------------------------------------------------------------------------
// mmap / munmap / mprotect: writer side of mmap_lock (Figure 2).
// ---------------------------------------------------------------------------

Result<Vaddr> LinuxVmaMm::MmapAnon(const MmapArgs& args) {
  ScopedOpTimer telemetry_timer(MmOp::kMmap);
  if (args.len == 0) {
    return ErrCode::kInval;
  }
  uint64_t len = AlignUp(args.len, kPageSize);
  if (args.fixed) {
    VoidResult r = MmapAnonFixed(args.va, len, args.perm);
    if (!r.ok()) {
      return r.error();
    }
    return args.va;
  }
  Result<Vaddr> va = va_alloc_.Alloc(len);
  if (!va.ok()) {
    return va;
  }
  VoidResult r = MmapAnonFixed(*va, len, args.perm);
  if (!r.ok()) {
    va_alloc_.Free(*va, len);
    return r.error();
  }
  return va;
}

VoidResult LinuxVmaMm::MmapAnonFixed(Vaddr va, uint64_t len, Perm perm) {
  if (!IsAligned(va, kPageSize) || len == 0) {
    return ErrCode::kInval;
  }
  len = AlignUp(len, kPageSize);
  VaRange range(va, va + len);
  mmap_lock_.WriteLock();
  if (vmas_.FindFirstOverlap(range) != nullptr) {
    // MAP_FIXED: replace. A huge leaf straddling the boundary must split
    // first; a failed split leaves the space semantically unchanged.
    VoidResult split = SplitCoveredHugeLeaves(range, /*only_partial=*/true);
    if (!split.ok()) {
      mmap_lock_.WriteUnlock();
      return split;
    }
    DoMunmapLocked(range);
  }
  Vma* vma = vmas_.Insert(range.start, range.end, perm);
  // expand(vma): merge with adjacent equal-permission neighbors.
  vmas_.TryMergeWithNext(vma);
  mmap_lock_.WriteUnlock();
  return VoidResult();
}

void LinuxVmaMm::DoMunmapLocked(VaRange range) {
  // Pass 1 (Figure 2, munmap): write-lock and mark every overlapping VMA.
  std::vector<Vma*> victims;
  vmas_.ForEachOverlap(range, [&victims](Vma* vma) { victims.push_back(vma); });
  for (Vma* vma : victims) {
    vma->lock.WriteLock();
    vma->seq.WriteBegin();  // WRITE_ONCE(vma.vm_lock_seq)
    vma->seq.WriteEnd();
    vma->lock.WriteUnlock();
  }
  // Split edge VMAs so erasures are exact.
  for (Vma*& vma : victims) {
    if (vma->start < range.start) {
      Vma* tail = vmas_.SplitAt(vma, range.start);
      vma = tail;  // The part inside the range.
    }
    if (vma->end > range.end) {
      vmas_.SplitAt(vma, range.end);
    }
    vmas_.Erase(vma);
  }
  // unmap_vmas() + free_page_tables(), batched mmu_gather-style: the ranges
  // and dead runs accumulate and flush as one shootdown. A whole huge leaf
  // contributes one order-9 run, not 512 records.
  std::vector<PageRun> dead_runs;
  UnmapPtRange(range, &dead_runs);
  uint64_t dead_frames = 0;
  for (const PageRun& run : dead_runs) {
    dead_frames += run.num_frames();
  }
  UnchargeAndLruDel(dead_frames);
  FreeEmptyTables(range);
  TlbGather gather;
  gather.AddRange(range);
  for (const PageRun& run : dead_runs) {
    gather.AddRun(run);
  }
  gather.Flush(asid_, active_cpus_, options_.tlb_policy, &DropRunRef);
}

VoidResult LinuxVmaMm::Munmap(Vaddr va, uint64_t len) {
  ScopedOpTimer telemetry_timer(MmOp::kMunmap);
  if (!IsAligned(va, kPageSize) || len == 0) {
    return ErrCode::kInval;
  }
  len = AlignUp(len, kPageSize);
  VaRange range(va, va + len);
  mmap_lock_.WriteLock();
  // Boundary huge leaves split before anything is torn down, so a kNoMem
  // here (fault injection) aborts the munmap with the space intact.
  VoidResult split = SplitCoveredHugeLeaves(range, /*only_partial=*/true);
  if (!split.ok()) {
    mmap_lock_.WriteUnlock();
    FaultInjector::NoteRolledBack();
    return split;
  }
  DoMunmapLocked(range);
  mmap_lock_.WriteUnlock();
  va_alloc_.Free(va, len);
  return VoidResult();
}

VoidResult LinuxVmaMm::Mprotect(Vaddr va, uint64_t len, Perm perm) {
  ScopedOpTimer telemetry_timer(MmOp::kMprotect);
  if (!IsAligned(va, kPageSize) || len == 0) {
    return ErrCode::kInval;
  }
  len = AlignUp(len, kPageSize);
  VaRange range(va, va + len);
  mmap_lock_.WriteLock();
  // Huge leaves straddling the range boundary get the new permissions only
  // on the covered part: split them first (fully-covered leaves are
  // rewritten in place at level 2).
  VoidResult split = SplitCoveredHugeLeaves(range, /*only_partial=*/true);
  if (!split.ok()) {
    mmap_lock_.WriteUnlock();
    FaultInjector::NoteRolledBack();
    return split;
  }
  std::vector<Vma*> affected;
  vmas_.ForEachOverlap(range, [&affected](Vma* vma) { affected.push_back(vma); });
  for (Vma*& vma : affected) {
    if (vma->start < range.start) {
      vma = vmas_.SplitAt(vma, range.start);
    }
    if (vma->end > range.end) {
      vmas_.SplitAt(vma, range.end);
    }
    vma->lock.WriteLock();
    vma->seq.WriteBegin();
    vma->perm = perm;
    vma->seq.WriteEnd();
    vma->lock.WriteUnlock();
  }
  // Rewrite present PTEs in the range, each at its own leaf level.
  std::vector<Vaddr> present;
  pt_.ForEachLeaf(range, [&](Vaddr lva, Pte, int) { present.push_back(lva); });
  for (Vaddr lva : present) {
    PageTable::WalkResult walk = pt_.Walk(lva);
    if (walk.present) {
      Pte old = walk.pte;
      Perm updated = perm;
      if (PtePerm(pt_.arch(), old).cow()) {
        updated = updated.With(Perm::kCow).Without(Perm::kWrite);
      }
      pt_.StoreEntry(walk.pt_page, walk.index,
                     MakeLeafPte(pt_.arch(), PtePfn(pt_.arch(), old), updated,
                                 walk.level));
    }
  }
  TlbGather gather;
  gather.AddRange(range);
  gather.Flush(asid_, active_cpus_, options_.tlb_policy, nullptr);
  mmap_lock_.WriteUnlock();
  return VoidResult();
}

// ---------------------------------------------------------------------------
// Page fault: reader side of mmap_lock + per-VMA read lock (Figure 2).
// ---------------------------------------------------------------------------

VoidResult LinuxVmaMm::HandleFault(Vaddr va, Access access) {
  ScopedOpTimer telemetry_timer(MmOp::kFault);
  CountEvent(Counter::kPageFaults);
  NoteCpuActive(CurrentCpu());
  mmap_lock_.ReadLock();
  Vma* vma = vmas_.Find(va);
  if (vma == nullptr) {
    mmap_lock_.ReadUnlock();
    return ErrCode::kFault;
  }
  vma->lock.ReadLock();
  Perm perm = vma->perm;
  bool want_write = access == Access::kWrite;

  Vaddr page_va = AlignDown(va, kPageSize);
  PageTable::WalkResult walk = pt_.Walk(page_va);
  VoidResult result = VoidResult();
  if (walk.present) {
    Perm pte_perm = PtePerm(pt_.arch(), walk.pte);
    if (want_write && pte_perm.cow()) {
      // COW resolution under the level-2 PT page lock. The path to a present
      // leaf necessarily exists, so EnsurePtPath only walks here — but the
      // fallible signature is honored anyway.
      CountEvent(Counter::kCowFaults);
      Result<Pfn> leaf_table = EnsurePtPath(page_va);
      if (!leaf_table.ok()) {
        result = leaf_table.error();
      } else {
        CnaNode* node = CnaNodePool::Get();
        PageDescriptor& table_desc = PhysMem::Instance().Descriptor(*leaf_table);
        table_desc.cna.Lock(node);
        walk = pt_.Walk(page_va);
        if (walk.present && PtePerm(pt_.arch(), walk.pte).cow()) {
          Pfn old_pfn = PtePfn(pt_.arch(), walk.pte);
          PageDescriptor& old_desc = PhysMem::Instance().Descriptor(old_pfn);
          Perm p = perm.Without(Perm::kCow).With(Perm::kWrite);
          if (old_desc.mapcount.load(std::memory_order_acquire) == 1) {
            pt_.StoreEntry(walk.pt_page, walk.index,
                           MakeLeafPte(pt_.arch(), old_pfn, p, 1));
          } else {
            Result<Pfn> copy = BuddyAllocator::Instance().AllocFrame();
            if (!copy.ok()) {
              result = copy.error();
            } else {
              PhysMem::Instance().Descriptor(*copy).ResetForAlloc(FrameType::kAnon);
              PhysMem::Instance().CopyFrame(*copy, old_pfn);
              PhysMem::Instance().Descriptor(*copy).mapcount.store(
                  1, std::memory_order_relaxed);
              pt_.StoreEntry(walk.pt_page, walk.index,
                             MakeLeafPte(pt_.arch(), *copy, p, 1));
              old_desc.mapcount.fetch_sub(1, std::memory_order_acq_rel);
              TlbGather gather;
              gather.AddRange(VaRange(page_va, page_va + kPageSize));
              gather.AddFrame(old_pfn);
              gather.Flush(asid_, active_cpus_, options_.tlb_policy, &DropRunRef);
            }
          }
        }
        table_desc.cna.Unlock(node);
        CnaNodePool::Put(node);
      }
    } else if (!PermAllowsAccess(pte_perm, access)) {
      result = ErrCode::kFault;
    }
  } else if (!PermAllowsAccess(perm, access)) {
    result = ErrCode::kFault;
  } else if (options_.huge && AlignDown(va, kHugePageSize) >= vma->start &&
             AlignDown(va, kHugePageSize) + kHugePageSize <= vma->end &&
             TryHugeDemandFault(AlignDown(va, kHugePageSize), perm)) {
    // THP install resolved the fault (or found a huge leaf already there).
  } else {
    // Demand-zero fill under the leaf table's lock (Table 1 rule 5). A failed
    // path allocation surfaces as kNoMem with nothing installed.
    Result<Pfn> leaf_table = EnsurePtPath(page_va);
    if (!leaf_table.ok()) {
      result = leaf_table.error();
    } else {
      CnaNode* node = CnaNodePool::Get();
      PageDescriptor& table_desc = PhysMem::Instance().Descriptor(*leaf_table);
      table_desc.cna.Lock(node);
      Pte pte = pt_.LoadEntry(*leaf_table, PtIndex(page_va, 1));
      if (!PteIsPresent(pt_.arch(), pte)) {
        Result<Pfn> frame = BuddyAllocator::Instance().AllocZeroedFrame();
        if (!frame.ok()) {
          result = frame.error();
        } else {
          PageDescriptor& frame_desc = PhysMem::Instance().Descriptor(*frame);
          frame_desc.ResetForAlloc(FrameType::kAnon);
          frame_desc.mapcount.store(1, std::memory_order_relaxed);
          {
            // Anonymous reverse-map setup (page_add_new_anon_rmap analog).
            SpinGuard rmap_guard(frame_desc.rmap_lock);
            frame_desc.owner = this;
            frame_desc.owner_key = page_va;
          }
          pt_.StoreEntry(*leaf_table, PtIndex(page_va, 1),
                         MakeLeafPte(pt_.arch(), *frame, perm, 1));
          ChargeAndLruAdd(*frame);
          CountEvent(Counter::kDemandZeroFills);
        }
      }
      table_desc.cna.Unlock(node);
      CnaNodePool::Put(node);
    }
  }

  vma->lock.ReadUnlock();
  mmap_lock_.ReadUnlock();
  return result;
}

bool LinuxVmaMm::TryHugeDemandFault(Vaddr huge_base, Perm perm) {
  Result<Pfn> table = EnsurePtPath(huge_base, /*target_level=*/2);
  if (!table.ok()) {
    return false;  // The 4 KiB path retries and surfaces the error.
  }
  CnaNode* node = CnaNodePool::Get();
  PageDescriptor& table_desc = PhysMem::Instance().Descriptor(*table);
  table_desc.cna.Lock(node);
  uint64_t index = PtIndex(huge_base, 2);
  Pte pte = pt_.LoadEntry(*table, index);
  if (PteIsPresent(pt_.arch(), pte)) {
    bool resolved = PteIsLeaf(pt_.arch(), pte, 2);
    table_desc.cna.Unlock(node);
    CnaNodePool::Put(node);
    // A racing huge install resolved the fault; a level-1 table under the
    // slot means mixed occupancy — take the 4 KiB path.
    return resolved;
  }
  Result<Pfn> run = BuddyAllocator::Instance().AllocHugeRun();
  if (!run.ok()) {
    table_desc.cna.Unlock(node);
    CnaNodePool::Put(node);
    CountEvent(Counter::kHugeFallbacks);
    FaultInjector::NoteSurvived();
    return false;  // Fallback ladder: 4 KiB demand fill.
  }
  PhysMem& mem = PhysMem::Instance();
  for (uint64_t f = 0; f < (1ull << kHugeOrder); ++f) {
    PageDescriptor& desc = mem.Descriptor(*run + f);
    desc.ResetForAlloc(FrameType::kAnon);
    desc.mapcount.store(1, std::memory_order_relaxed);
    mem.ZeroFrame(*run + f);
  }
  {
    // Rmap for the compound head (page_add_new_anon_rmap on the head page).
    PageDescriptor& head_desc = mem.Descriptor(*run);
    SpinGuard rmap_guard(head_desc.rmap_lock);
    head_desc.owner = this;
    head_desc.owner_key = huge_base;
  }
  pt_.StoreEntry(*table, index, MakeLeafPte(pt_.arch(), *run, perm, 2));
  table_desc.cna.Unlock(node);
  CnaNodePool::Put(node);
  // The compound page is one LRU entry but 512 memcg pages.
  ChargeAndLruAdd(*run);
  memcg_charged_.fetch_add((1ull << kHugeOrder) - 1, std::memory_order_relaxed);
  CountEvent(Counter::kHugeFaults);
  CountEvent(Counter::kDemandZeroFills, 1ull << kHugeOrder);
  return true;
}

// ---------------------------------------------------------------------------
// fork
// ---------------------------------------------------------------------------

std::unique_ptr<MmInterface> LinuxVmaMm::Fork() {
  ScopedOpTimer telemetry_timer(MmOp::kFork);
  Result<std::unique_ptr<LinuxVmaMm>> created = Create(options_);
  if (!created.ok()) {
    FaultInjector::NoteSurvived();
    return nullptr;
  }
  std::unique_ptr<LinuxVmaMm> child = std::move(*created);
  mmap_lock_.WriteLock();
  // Pre-THP-aware fork: split every huge leaf to base pages first so the
  // per-leaf COW demotion below stays 4 KiB-only (real Linux did exactly
  // this until copy_huge_pmd landed). Splits are observationally invisible,
  // so a kNoMem here aborts the fork with the parent unchanged.
  VoidResult split =
      SplitCoveredHugeLeaves(VaRange(0, kVaLimit), /*only_partial=*/false);
  if (!split.ok()) {
    mmap_lock_.WriteUnlock();
    child.reset();
    FaultInjector::NoteRolledBack();
    return nullptr;
  }
  // Duplicate the VMA tree (the cheap enumeration Linux is good at, Fig. 20),
  // then COW-copy page-table contents within each VMA only.
  std::vector<Vma*> all;
  vmas_.ForEachOverlap(VaRange(0, kVaLimit), [&all](Vma* vma) { all.push_back(vma); });
  // Parent-side flush for the leaves demoted to COW. Gathered per leaf:
  // adjacent pages coalesce, and a fork touching more than kMaxRanges
  // distinct spots degrades to one full-ASID flush — never more than one
  // shootdown either way, where this used to flush VaRange(0, kVaLimit)
  // unconditionally (even for a one-page parent).
  TlbGather gather;
  for (Vma* vma : all) {
    child->vmas_.Insert(vma->start, vma->end, vma->perm);
    VaRange range(vma->start, vma->end);
    std::vector<std::pair<Vaddr, Pte>> leaves;
    pt_.ForEachLeaf(range, [&leaves](Vaddr lva, Pte pte, int) {
      leaves.emplace_back(lva, pte);
    });
    for (const auto& [lva, pte] : leaves) {
      Pfn pfn = PtePfn(pt_.arch(), pte);
      Perm perm = PtePerm(pt_.arch(), pte);
      // All private pages take the COW mark, including currently read-only
      // ones (mprotect(RW)+write after fork must break the sharing).
      Perm cow = perm.With(Perm::kCow).Without(Perm::kWrite);
      // The child's PT path is built *before* any reference is taken for this
      // leaf, so an OOM here aborts the fork with nothing to undo for the
      // current page; the child's destructor returns the references already
      // taken for earlier pages. Parent pages that gained COW protection are
      // semantically unchanged (the copy simply never happens).
      Result<Pfn> child_table = child->EnsurePtPath(lva);
      if (!child_table.ok()) {
        // The gather already covers exactly the leaves demoted so far.
        gather.Flush(asid_, active_cpus_, options_.tlb_policy, nullptr);
        mmap_lock_.WriteUnlock();
        child.reset();
        FaultInjector::NoteRolledBack();
        return nullptr;
      }
      PageTable::WalkResult walk = pt_.Walk(lva);
      pt_.StoreEntry(walk.pt_page, walk.index, MakeLeafPte(pt_.arch(), pfn, cow, 1));
      AddFrameRef(pfn);
      PhysMem::Instance().Descriptor(pfn).mapcount.fetch_add(1, std::memory_order_acq_rel);
      child->pt_.StoreEntry(*child_table, PtIndex(lva, 1),
                            MakeLeafPte(pt_.arch(), pfn, cow, 1));
      gather.AddRange(VaRange(lva, lva + kPageSize));
    }
  }
  gather.Flush(asid_, active_cpus_, options_.tlb_policy, nullptr);
  mmap_lock_.WriteUnlock();
  return child;
}

uint64_t LinuxVmaMm::MetaBytes() {
  mmap_lock_.ReadLock();
  uint64_t bytes = vmas_.size() * sizeof(Vma);
  mmap_lock_.ReadUnlock();
  return bytes;
}

size_t LinuxVmaMm::VmaCount() {
  mmap_lock_.ReadLock();
  size_t n = vmas_.size();
  mmap_lock_.ReadUnlock();
  return n;
}

bool LinuxVmaMm::CheckVmaTree() {
  mmap_lock_.ReadLock();
  bool ok = vmas_.CheckInvariants();
  mmap_lock_.ReadUnlock();
  return ok;
}

}  // namespace cortenmm
