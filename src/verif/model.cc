#include "src/verif/model.h"

#include <chrono>
#include <unordered_set>

namespace cortenmm {
namespace {

uint64_t HashState(const ModelState& state) {
  // FNV-1a 64-bit.
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint8_t b : state) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string Describe(const ModelState& state) {
  std::string out = "[";
  for (size_t i = 0; i < state.size(); ++i) {
    if (i != 0) {
      out += ' ';
    }
    out += std::to_string(static_cast<int>(state[i]));
  }
  out += ']';
  return out;
}

}  // namespace

ModelCheckResult ModelChecker::Run(const Model& model, uint64_t max_states) {
  auto start = std::chrono::steady_clock::now();
  ModelCheckResult result;

  // Visited set stores full states bucketed by hash (collision-safe).
  std::unordered_set<uint64_t> visited_hashes;
  std::vector<ModelState> collision_pool;

  struct Frame {
    ModelState state;
    int depth;
  };
  std::vector<Frame> stack;

  auto visit = [&](const ModelState& state) -> bool {
    uint64_t h = HashState(state);
    if (visited_hashes.insert(h).second) {
      return true;  // Fresh hash: definitely unvisited.
    }
    // Hash seen before: fall back to exact containment via the pool.
    for (const ModelState& seen : collision_pool) {
      if (seen == state) {
        return false;
      }
    }
    collision_pool.push_back(state);
    return true;
  };

  ModelState initial = model.Initial();
  visit(initial);
  stack.push_back(Frame{std::move(initial), 0});

  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    ++result.states_explored;
    if (frame.depth > result.max_depth) {
      result.max_depth = frame.depth;
    }

    std::string violation;
    if (!model.CheckInvariants(frame.state, &violation)) {
      result.violation = violation + " in state " + Describe(frame.state);
      result.ok = false;
      result.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      return result;
    }

    if (max_states != 0 && result.states_explored > max_states) {
      result.violation = "state-space bound exceeded (increase max_states)";
      result.ok = false;
      result.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      return result;
    }

    std::vector<ModelState> next = model.Successors(frame.state);
    if (next.empty()) {
      if (model.IsFinal(frame.state)) {
        ++result.final_states;
      } else {
        result.deadlock_state = Describe(frame.state);
        result.ok = false;
        result.seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        return result;
      }
      continue;
    }
    for (ModelState& successor : next) {
      ++result.transitions;
      if (visit(successor)) {
        stack.push_back(Frame{std::move(successor), frame.depth + 1});
      }
    }
  }

  result.ok = true;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

}  // namespace cortenmm
