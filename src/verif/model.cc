#include "src/verif/model.h"

#include <chrono>
#include <unordered_set>

#include "src/common/stats.h"

namespace cortenmm {

const char* MemModelName(MemModel model) {
  switch (model) {
    case MemModel::kSC:
      return "sc";
    case MemModel::kTSO:
      return "tso";
  }
  return "unknown";
}

namespace {

uint64_t HashState(const ModelState& state) {
  // FNV-1a 64-bit.
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint8_t b : state) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string Describe(const ModelState& state) {
  std::string out = "[";
  for (size_t i = 0; i < state.size(); ++i) {
    if (i != 0) {
      out += ' ';
    }
    out += std::to_string(static_cast<int>(state[i]));
  }
  out += ']';
  return out;
}

}  // namespace

ModelCheckResult ModelChecker::Run(const Model& model, uint64_t max_states) {
  auto start = std::chrono::steady_clock::now();
  ModelCheckResult result;
  result.mem_model = model.mem_model();

  // Stamps the elapsed time and feeds the run into the checker-stats counters
  // (telemetry: states and transitions accumulate across every Run call).
  auto finish = [&]() -> ModelCheckResult {
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    CountEvent(Counter::kModelStatesExplored, result.states_explored);
    CountEvent(Counter::kModelTransitions, result.transitions);
    return result;
  };

  // Exact visited set over full states (FNV-hashed buckets). Exactness
  // matters twice over: a hash-only set could silently skip a distinct state
  // on collision (missed violations), while treating "hash seen" as "maybe
  // new" re-explores every re-reached state and degenerates quadratically on
  // the diamond-heavy litmus state graphs.
  struct StateHash {
    size_t operator()(const ModelState& state) const {
      return static_cast<size_t>(HashState(state));
    }
  };
  std::unordered_set<ModelState, StateHash> visited;

  struct Frame {
    ModelState state;
    int depth;
  };
  std::vector<Frame> stack;

  auto visit = [&](const ModelState& state) -> bool {
    return visited.insert(state).second;
  };

  ModelState initial = model.Initial();
  visit(initial);
  stack.push_back(Frame{std::move(initial), 0});

  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    ++result.states_explored;
    if (frame.depth > result.max_depth) {
      result.max_depth = frame.depth;
    }

    std::string violation;
    if (!model.CheckInvariants(frame.state, &violation)) {
      result.violation = violation + " in state " + Describe(frame.state);
      result.ok = false;
      return finish();
    }

    if (max_states != 0 && result.states_explored > max_states) {
      result.violation = "state-space bound exceeded (increase max_states)";
      result.ok = false;
      return finish();
    }

    std::vector<ModelState> next = model.Successors(frame.state);
    if (next.empty()) {
      if (model.IsFinal(frame.state)) {
        ++result.final_states;
      } else {
        result.deadlock_state = Describe(frame.state);
        result.ok = false;
        return finish();
      }
      continue;
    }
    for (ModelState& successor : next) {
      ++result.transitions;
      if (visit(successor)) {
        stack.push_back(Frame{std::move(successor), frame.depth + 1});
      }
    }
  }

  result.ok = true;
  return finish();
}

}  // namespace cortenmm
