// Explicit-state model checking — the reproduction's substitute for the
// paper's Verus proofs (§5). Where the paper proves the Atomic Tree Spec
// refines the Atomic Spec for unbounded executions, we *machine-check the same
// specifications* on bounded instances: every interleaving of every thread's
// protocol steps is explored exhaustively, and the paper's invariants
// (mutual exclusion of overlapping transactions, the non-overlap property of
// write-locked covering pages, deadlock freedom) are checked in every
// reachable state. See DESIGN.md §1 for why this substitution is made.
#ifndef SRC_VERIF_MODEL_H_
#define SRC_VERIF_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cortenmm {

// A model state is a flat byte vector; the concrete model defines the layout.
using ModelState = std::vector<uint8_t>;

class Model {
 public:
  virtual ~Model() = default;

  virtual const char* name() const = 0;
  virtual ModelState Initial() const = 0;

  // All states reachable in one atomic step. An empty result with IsFinal()
  // false is a deadlock.
  virtual std::vector<ModelState> Successors(const ModelState& state) const = 0;

  // Safety invariants; on violation, fill |violation| and return false.
  virtual bool CheckInvariants(const ModelState& state, std::string* violation) const = 0;

  // True when every thread has completed its script.
  virtual bool IsFinal(const ModelState& state) const = 0;
};

struct ModelCheckResult {
  bool ok = false;
  uint64_t states_explored = 0;
  uint64_t transitions = 0;
  uint64_t final_states = 0;
  int max_depth = 0;
  double seconds = 0;
  std::string violation;       // First invariant violation found (if any).
  std::string deadlock_state;  // Description of a deadlocked state (if any).
};

class ModelChecker {
 public:
  // Exhaustive DFS with a hashed visited set. |max_states| bounds the search
  // (0 = unlimited); hitting the bound reports ok=false with a note.
  static ModelCheckResult Run(const Model& model, uint64_t max_states = 0);
};

}  // namespace cortenmm

#endif  // SRC_VERIF_MODEL_H_
