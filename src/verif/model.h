// Explicit-state model checking — the reproduction's substitute for the
// paper's Verus proofs (§5). Where the paper proves the Atomic Tree Spec
// refines the Atomic Spec for unbounded executions, we *machine-check the same
// specifications* on bounded instances: every interleaving of every thread's
// protocol steps is explored exhaustively, and the paper's invariants
// (mutual exclusion of overlapping transactions, the non-overlap property of
// write-locked covering pages, deadlock freedom) are checked in every
// reachable state. See DESIGN.md §1 for why this substitution is made.
#ifndef SRC_VERIF_MODEL_H_
#define SRC_VERIF_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cortenmm {

// A model state is a flat byte vector; the concrete model defines the layout.
using ModelState = std::vector<uint8_t>;

// Execution semantics a model's Successors() are generated under.
//
//   kSC  — sequential consistency: every store is globally visible the moment
//          it executes (the pre-PR-9 semantics; the tree-protocol models are
//          SC by construction because their steps are lock-protected).
//   kTSO — x86 total store order: each model thread owns a FIFO store buffer;
//          stores enter the buffer, loads forward from their own buffer before
//          reading shared memory, and buffered stores drain to memory via
//          nondeterministic flush steps (fences and RMWs drain eagerly, like
//          MFENCE / LOCK-prefixed instructions). The one relaxation this adds
//          over kSC is store->load reordering — exactly the one x86 exhibits.
//
// kTSO state spaces are supersets of kSC's for the same program (every SC
// execution is a TSO execution that flushes each store immediately), which
// tests/verif_test.cc pins as a monotonicity property.
enum class MemModel : uint8_t {
  kSC = 0,
  kTSO = 1,
};

const char* MemModelName(MemModel model);

class Model {
 public:
  virtual ~Model() = default;

  virtual const char* name() const = 0;

  // The memory model this model's Successors() encode. The base Model is SC:
  // whole-step atomicity gives every store immediate global visibility. Only
  // models that explicitly simulate store buffers (MemProgModel in
  // litmus_model.h) report kTSO.
  virtual MemModel mem_model() const { return MemModel::kSC; }

  virtual ModelState Initial() const = 0;

  // All states reachable in one atomic step. An empty result with IsFinal()
  // false is a deadlock.
  virtual std::vector<ModelState> Successors(const ModelState& state) const = 0;

  // Safety invariants; on violation, fill |violation| and return false.
  virtual bool CheckInvariants(const ModelState& state, std::string* violation) const = 0;

  // True when every thread has completed its script.
  virtual bool IsFinal(const ModelState& state) const = 0;
};

struct ModelCheckResult {
  bool ok = false;
  MemModel mem_model = MemModel::kSC;  // Semantics the run explored under.
  uint64_t states_explored = 0;
  uint64_t transitions = 0;
  uint64_t final_states = 0;
  int max_depth = 0;
  double seconds = 0;
  std::string violation;       // First invariant violation found (if any).
  std::string deadlock_state;  // Description of a deadlocked state (if any).
};

class ModelChecker {
 public:
  // Exhaustive DFS with a hashed visited set. |max_states| bounds the search
  // (0 = unlimited); hitting the bound reports ok=false with a note.
  static ModelCheckResult Run(const Model& model, uint64_t max_states = 0);
};

}  // namespace cortenmm

#endif  // SRC_VERIF_MODEL_H_
