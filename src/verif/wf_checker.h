// Runtime page-table well-formedness checker — the executable rendering of
// the paper's Figure 12 invariant (P2, §5.2): for any present PTE, it is
// either a leaf or points to a valid PT page one level down; plus the
// repository's additional structural invariants (descriptor levels agree,
// metadata marks only occupy absent slots, present_ptes counts match, no
// stale page is reachable).
//
// Property tests call this after every operation batch; it requires a
// quiesced address space (or the caller holding a whole-space transaction).
#ifndef SRC_VERIF_WF_CHECKER_H_
#define SRC_VERIF_WF_CHECKER_H_

#include <string>

#include "src/core/addr_space.h"

namespace cortenmm {

struct WfReport {
  bool ok = true;
  std::string first_error;
  uint64_t pt_pages = 0;
  uint64_t present_leaves = 0;
  uint64_t huge_leaves = 0;  // Present leaves at level >= 2.
  uint64_t meta_marks = 0;

  void Fail(const std::string& error) {
    if (ok) {
      ok = false;
      first_error = error;
    }
  }
};

// Walks the entire page table of |space| and validates the invariants.
WfReport CheckWellFormed(AddrSpace& space);

// Frame-leak check for chaos runs. The caller snapshots
// BuddyAllocator::Instance().FreeFrameCount() (after FlushCpuCaches) before
// the run; once every address space created during the run is destroyed,
// CheckFrameLeaks drains the deferred-reclamation machinery (per-CPU buddy
// caches, LATR shootdown buffers, RCU callbacks) and compares. A shortfall
// means a frame allocated during the run was neither mapped nor returned —
// exactly the leak a botched OOM rollback would cause.
struct LeakReport {
  bool ok = true;
  uint64_t baseline_free = 0;
  uint64_t current_free = 0;
  int64_t leaked = 0;  // baseline - current; negative would mean a double free.
  // Frames still typed kCached after FlushCpuCaches drained every per-CPU
  // buddy cache: each one was parked in a cache but never made it back to a
  // free list (or was handed out without ResetForAlloc) — a typing leak even
  // when the free count balances.
  uint64_t stranded_cached = 0;
  // Anonymous frames with refcount zero after the drains: dead but never
  // returned to the buddy. A partially-freed huge run (some frames of an
  // order-9 block released, the rest forgotten) shows up here even when the
  // aggregate free count happens to balance.
  uint64_t stranded_anon = 0;
  // Free frames sitting on a free list of an arena that is not their home
  // node (by PFN range) after the drains. The NUMA router frees structurally
  // — RouteFree dispatches on NodeOfPfn — so any misplaced frame means a
  // free bypassed the router and corrupted node locality.
  uint64_t misplaced_home = 0;
};

LeakReport CheckFrameLeaks(uint64_t baseline_free_frames);

}  // namespace cortenmm

#endif  // SRC_VERIF_WF_CHECKER_H_
