// Bounded-instance state machines for the two locking protocols — the models
// the checker explores, mirroring the paper's Atomic Tree Spec (§5.1):
//
//   * the page table is a complete binary tree of PT pages;
//   * each core runs a transaction targeting one PT page (its covering page);
//   * CortenMM_rw: hand-over-hand read locks on the ancestors, a write lock
//     on the covering page, a critical-section step, reverse release;
//   * CortenMM_adv: a lock-free "traverse" step records the covering
//     candidate, an MCS-style mutex acquires it, the stale check retries,
//     a preorder DFS locks every present descendant, the critical section
//     optionally *removes* a subtree (stale + unlink, as in unmap), reverse
//     release.
//
// Invariants checked in every reachable state (paper P1 / Figure 11):
//   INV1 (lock soundness)  — a write-locked page has no readers; one writer.
//   INV2 (non-overlap)     — two write-locked covering pages are never in an
//                            ancestor-descendant (or equal) relation.
//   INV3 (mutual exclusion)— while a core is in its critical section on
//                            covering page C, no other core holds any lock
//                            inside C's subtree.
//   INV4 (stale safety)    — no core is ever in its critical section on a
//                            stale or unlinked covering page (Figure 7 race).
// Deadlock freedom is checked by the explorer itself (every non-final state
// must have a successor).
#ifndef SRC_VERIF_TREE_MODEL_H_
#define SRC_VERIF_TREE_MODEL_H_

#include <vector>

#include "src/verif/model.h"

namespace cortenmm {

// Complete binary tree helpers; node 0 is the root.
struct ModelTree {
  int depth;  // Number of levels; total nodes = 2^depth - 1.

  int NodeCount() const { return (1 << depth) - 1; }
  static int Parent(int node) { return (node - 1) / 2; }
  static int LeftChild(int node) { return 2 * node + 1; }
  bool IsLeaf(int node) const { return LeftChild(node) >= NodeCount(); }
  bool IsAncestorOrSelf(int a, int b) const {  // a ancestor-or-self of b?
    while (b >= 0) {
      if (a == b) {
        return true;
      }
      if (b == 0) {
        break;
      }
      b = Parent(b);
    }
    return false;
  }
  // Ancestors of |node| from the root down, excluding |node| itself.
  std::vector<int> AncestorsTopDown(int node) const;
  // Preorder walk of the subtree rooted at |node|, excluding |node|.
  std::vector<int> DescendantsPreorder(int node) const;
  // Post-order walk (children first), excluding |node|.
  std::vector<int> DescendantsPostorder(int node) const;
};

// --- CortenMM_rw model -------------------------------------------------------

class RwProtocolModel final : public Model {
 public:
  struct ThreadSpec {
    int target;  // The covering page this transaction locks.
  };

  RwProtocolModel(int tree_depth, std::vector<ThreadSpec> threads);

  const char* name() const override { return "cortenmm-rw locking protocol"; }
  ModelState Initial() const override;
  std::vector<ModelState> Successors(const ModelState& state) const override;
  bool CheckInvariants(const ModelState& state, std::string* violation) const override;
  bool IsFinal(const ModelState& state) const override;

 private:
  // State layout:
  //   pages:   [readers(u8), writer(u8: 0=none, t+1=thread t)] x nodes
  //   threads: [pc(u8)] x threads
  // pc: 0..path-1 = read-locking ancestor i; path = write-locking target;
  //     path+1 = in critical section;
  //     path+2..2*path+2 = releasing (write first, then read locks in
  //     reverse); 2*path+3.. => done  (encoded per-thread since path lengths
  //     differ).
  struct Layout;
  int ReadersAt(const ModelState& s, int page) const;
  int WriterAt(const ModelState& s, int page) const;

  ModelTree tree_;
  std::vector<ThreadSpec> threads_;
  std::vector<std::vector<int>> paths_;  // Ancestors top-down per thread.
};

// --- CortenMM_adv model ------------------------------------------------------

class AdvProtocolModel final : public Model {
 public:
  struct ThreadSpec {
    int target;        // Covering page of the transaction.
    int remove_child;  // -1, or a child subtree root to unmap inside the CS.
  };

  AdvProtocolModel(int tree_depth, std::vector<ThreadSpec> threads);

  const char* name() const override { return "cortenmm-adv locking protocol"; }
  ModelState Initial() const override;
  std::vector<ModelState> Successors(const ModelState& state) const override;
  bool CheckInvariants(const ModelState& state, std::string* violation) const override;
  bool IsFinal(const ModelState& state) const override;

 private:
  // State layout:
  //   pages:   [owner(u8: 0=none,t+1), flags(u8: bit0 present, bit1 stale)]
  //            x nodes
  //   threads: [phase(u8), candidate(u8), held bitmask (u16 LE), progress(u8)]
  // phases: 0 traverse, 1 lock-candidate, 2 stale-check, 3 dfs, 4 cs,
  //         5 removing (unmapper only), 6 releasing, 7 done.
  enum Phase : uint8_t {
    kTraverse = 0,
    kLockCandidate,
    kStaleCheck,
    kDfs,
    kCs,
    kRemoving,
    kReleasing,
    kDone,
  };

  int PageBase(int page) const { return page * 2; }
  int ThreadBase(int thread) const { return tree_.NodeCount() * 2 + thread * 5; }

  bool Present(const ModelState& s, int page) const { return s[PageBase(page) + 1] & 1; }
  bool Stale(const ModelState& s, int page) const { return s[PageBase(page) + 1] & 2; }
  int Owner(const ModelState& s, int page) const { return s[PageBase(page)]; }
  bool Holds(const ModelState& s, int thread, int page) const {
    uint16_t mask = static_cast<uint16_t>(s[ThreadBase(thread) + 2] |
                                          (s[ThreadBase(thread) + 3] << 8));
    return (mask >> page) & 1;
  }
  void SetHold(ModelState& s, int thread, int page, bool held) const;

  // The covering page for |target| in the current (possibly pruned) tree:
  // the deepest present page on the root->target path.
  int CoveringOf(const ModelState& s, int target) const;

  ModelTree tree_;
  std::vector<ThreadSpec> threads_;
};

}  // namespace cortenmm

#endif  // SRC_VERIF_TREE_MODEL_H_
