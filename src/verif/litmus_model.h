// Litmus-style memory-program models: bounded programs over a handful of
// shared byte variables whose interleavings the model checker explores under
// MemModel::kSC or MemModel::kTSO (model.h). This is the weak-memory leg of
// the verification story (ROADMAP item "weak-memory-model checking of the
// sync substrate"), following the intermediate-memory-model approach of
// Podkopaev et al. and the Arc-under-weak-memory methodology of Jacobs &
// Fasse (PAPERS.md): encode each production primitive pair as a small bounded
// program whose atomic annotations MIRROR the real code, explore it under a
// store-buffer semantics, and fix production ordering where the checker
// reaches an invariant violation.
//
// TSO semantics (MemProgModel::Successors under kTSO):
//   * every store enters the executing thread's bounded FIFO store buffer;
//   * loads forward from the own buffer (newest entry for the variable)
//     before falling back to shared memory;
//   * a per-thread nondeterministic FLUSH step commits the oldest buffered
//     store to shared memory — the explorer interleaves flushes with all
//     other steps, so every drain schedule is explored;
//   * RMW steps (exchange / fetch_add / fetch_or / CAS) and seq_cst fences or
//     stores drain the whole buffer eagerly, mirroring x86 LOCK-prefixed
//     instructions and MFENCE;
//   * acquire/release annotations compile to plain accesses on x86, so under
//     kTSO they do not add ordering beyond the FIFO buffer — the models carry
//     them anyway because they must mirror the production source, and because
//     they ARE load-bearing against compiler reordering and non-TSO hardware
//     (see DESIGN.md §10's annotation mapping table).
//
// The net effect: kTSO adds exactly the store->load reordering x86 permits.
// The SB litmus (two threads each storing then loading the other's flag) must
// reach r1 == r2 == 0 under kTSO and must not under kSC; MP and LB stay
// forbidden under both — tests/litmus_test.cc pins this expected-outcome
// table to validate the semantics itself.
#ifndef SRC_VERIF_LITMUS_MODEL_H_
#define SRC_VERIF_LITMUS_MODEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/verif/model.h"

namespace cortenmm {

// Memory-order annotation carried by every memory instruction. The names
// match std::memory_order; the TSO interpreter maps them to x86 semantics
// (kSeqCst store/fence => drain; everything else => plain access).
enum class MO : uint8_t {
  kRelaxed = 0,
  kAcquire,
  kRelease,
  kAcqRel,
  kSeqCst,
};

// One instruction of a model thread. Build scripts with the static factories;
// |target| fields are absolute instruction indices within the thread.
struct Instr {
  enum class Kind : uint8_t {
    kLoad,      // reg = read(var)
    kStore,     // write(var, imm)
    kStoreReg,  // write(var, regs[reg])
    kExchange,  // reg = atomically {old = var; var = imm; old}
    kFetchAdd,  // reg = atomically {old = var; var = old + imm (wrap); old}
    kFetchOr,   // reg = atomically {old = var; var = old | imm; old}
    kCas,       // reg = atomically {var == imm ? (var = imm2; 1) : 0}
    kFence,     // std::atomic_thread_fence(order)
    kSetReg,    // reg = imm
    kAddReg,    // reg = reg + imm (wrap)
    kBranchEq,  // if (reg == imm) goto target
    kBranchNe,  // if (reg != imm) goto target
    kGoto,      // goto target
  };

  Kind kind;
  uint8_t var = 0;
  uint8_t reg = 0;
  uint8_t imm = 0;
  uint8_t imm2 = 0;    // CAS desired value.
  uint8_t target = 0;  // Branch destination (instruction index).
  MO order = MO::kSeqCst;

  static Instr Load(int reg, int var, MO order);
  static Instr Store(int var, int imm, MO order);
  static Instr StoreReg(int var, int reg, MO order);
  static Instr Exchange(int reg, int var, int imm, MO order);
  static Instr FetchAdd(int reg, int var, int imm, MO order);
  static Instr FetchOr(int reg, int var, int imm, MO order);
  static Instr Cas(int reg, int var, int expected, int desired, MO order);
  static Instr Fence(MO order);
  static Instr SetReg(int reg, int imm);
  static Instr AddReg(int reg, int imm);
  static Instr BranchEq(int reg, int imm, int target);
  static Instr BranchNe(int reg, int imm, int target);
  static Instr Goto(int target);
};

// A bounded multi-threaded program over shared byte variables, explorable by
// ModelChecker under either memory model. Thread scripts run to completion;
// a thread whose pc reached the end of its script but whose store buffer is
// still non-empty keeps offering flush steps, so buffered stores always
// commit and IsFinal() implies quiescent memory.
class MemProgModel final : public Model {
 public:
  // Per-thread FIFO store-buffer capacity under kTSO. A store step with a
  // full buffer is simply disabled until a flush frees a slot (flushes are
  // always enabled while the buffer is non-empty, so this never deadlocks).
  static constexpr int kStoreBufferCap = 4;

  struct ThreadScript {
    std::vector<Instr> code;
  };

  // Read-only decoded view of a state, handed to invariants.
  class View {
   public:
    View(const MemProgModel& model, const ModelState& state)
        : model_(model), state_(state) {}

    // Committed shared memory (store buffers NOT applied).
    uint8_t Mem(int var) const;
    uint8_t Reg(int thread, int reg) const;
    int Pc(int thread) const;
    // Thread finished its script (its buffer may still hold stores).
    bool Done(int thread) const;
    // Buffered (uncommitted) stores of |thread|.
    int Buffered(int thread) const;
    // Every thread done AND every buffer drained: the quiescent final state.
    bool AllDone() const;

   private:
    const MemProgModel& model_;
    const ModelState& state_;
  };

  // Safety invariant evaluated on EVERY reachable state. Return false and
  // fill |why| to report a violation. Litmus "forbidden outcome" checks guard
  // on View::AllDone(); protocol invariants (mutual exclusion) inspect Pc().
  using Invariant = std::function<bool(const View&, std::string* why)>;

  MemProgModel(std::string name, int num_vars, int num_regs,
               std::vector<ThreadScript> threads);

  void SetInitialMem(int var, uint8_t value);
  void SetInvariant(Invariant invariant) { invariant_ = std::move(invariant); }
  void SetMemModel(MemModel model) { mem_model_ = model; }

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Model interface.
  const char* name() const override { return name_.c_str(); }
  MemModel mem_model() const override { return mem_model_; }
  ModelState Initial() const override;
  std::vector<ModelState> Successors(const ModelState& state) const override;
  bool CheckInvariants(const ModelState& state, std::string* violation) const override;
  bool IsFinal(const ModelState& state) const override;

 private:
  friend class View;

  // State layout: [mem[0..num_vars)] then per thread
  //   [pc, regs[0..num_regs), buf_count, (var, val) x kStoreBufferCap].
  int ThreadBase(int thread) const;
  int StateSize() const;

  // Executes the instruction at |pc| of |thread| on a copy of |state| and
  // appends the resulting state(s) to |out|. Returns false when the step is
  // currently disabled (store with a full buffer under kTSO).
  bool Step(const ModelState& state, int thread, std::vector<ModelState>* out) const;

  // Drains the oldest buffered store of |thread|.
  ModelState FlushOne(const ModelState& state, int thread) const;
  void DrainAllLocked(ModelState& state, int thread) const;

  uint8_t LoadValue(const ModelState& state, int thread, int var) const;

  std::string name_;
  int num_vars_;
  int num_regs_;
  std::vector<ThreadScript> threads_;
  std::vector<uint8_t> initial_mem_;
  Invariant invariant_;
  MemModel mem_model_ = MemModel::kSC;
};

// Runs |model| under kSC then kTSO (restoring the model's configured memory
// model afterwards) and reports both results plus the number of TSO-only
// states — the store-buffer interleavings SC cannot reach — which also feeds
// the kLitmusTsoOnlyStates telemetry counter. TSO exploring a superset of SC
// states is a structural guarantee (tests pin it); |tso_only_states| is
// meaningful when both runs complete without a violation.
struct MemModelComparison {
  ModelCheckResult sc;
  ModelCheckResult tso;
  uint64_t tso_only_states = 0;
};
MemModelComparison CompareMemModels(MemProgModel& model, uint64_t max_states = 0);

// --- Production-primitive litmus models -------------------------------------
//
// Each factory returns a bounded model whose scripts mirror one production
// primitive pair, annotation for annotation (the comments in the .cc map each
// instruction to its source line). The kAsWritten variants must pass under
// kTSO; the broken variants encode the counterexamples the checker finds when
// an ordering ingredient is removed, and stay as regressions.

// Classic sanity litmus validating the TSO semantics itself.
// SB: Tx {x=1; r=y}  Ty {y=1; r=x}. |fenced| inserts a seq_cst fence between
// the store and the load (production analog: RCU's seq_cst reader publication
// in src/sync/rcu.cc). Invariant forbids the r1==r2==0 outcome, so the run
// FAILS exactly when the outcome is reachable: unfenced kTSO.
std::unique_ptr<MemProgModel> MakeSbLitmus(bool fenced);
// MP: message passing (data then flag release; flag acquire then data).
// Forbidden: flag observed, data stale. Unreachable under SC and TSO.
std::unique_ptr<MemProgModel> MakeMpLitmus();
// LB: load buffering (r=x; y=1 || r=y; x=1). Forbidden: both loads 1.
// Unreachable under SC and TSO (loads are never delayed past later stores).
std::unique_ptr<MemProgModel> MakeLbLitmus();

// SeqCount writer vs reader (src/sync/seqlock.h + the Linux-baseline per-VMA
// speculative fault protocol): writer brackets two data stores with acq_rel
// fetch_add increments; reader runs the PR-3 one-load fast path (acquire
// load, odd-spin) then ReadValidate (acquire fence + relaxed re-load).
// Invariant: a validated snapshot never observes torn data.
enum class SeqCountVariant {
  kAsWritten,  // Mirrors production: passes under kSC and kTSO.
  // Writer "increments" with a non-atomic load;add;store instead of the
  // production fetch_add, and a second writer races: both writers read the
  // same sequence, publish overlapping odd/even values, and a reader
  // validates a torn snapshot. The counterexample that pins WHY
  // WriteBegin/WriteEnd are RMWs (reachable already under kSC).
  kNonAtomicWriterIncrement,
};
std::unique_ptr<MemProgModel> MakeSeqCountLitmus(SeqCountVariant variant);

// MCS lock handoff (src/sync/mcs_lock.h): two threads acquire, run a
// non-atomic read-modify-write critical section on a shared counter, release
// with the next-pointer handoff. Invariants: the critical sections never
// overlap and no increment is lost (counter == 2 in every final state).
enum class McsVariant {
  kAsWritten,  // tail exchange / next release / locked acquire-spin: passes.
  // Acquisition demoted from the atomic tail exchange to a non-atomic
  // load-then-store of tail: both threads read tail == null and both enter
  // the critical section. The counterexample that pins WHY Lock() must swap
  // the tail with one RMW (reachable already under kSC).
  kNonAtomicTailSwap,
};
std::unique_ptr<MemProgModel> MakeMcsHandoffLitmus(McsVariant variant);

// TlbGather publish vs LATR tick (src/tlb/shootdown.cc): the initiator fills
// a LatrEntry (payload + remaining) and publishes it into its per-CPU buffer
// under the buffer spinlock; each of two targets ticks twice, flushing the
// entry exactly once (HasAcked skip on the second pass), acking via
// fetch_or on acked_mask then fetch_sub on remaining; the last acker frees
// the dead frames outside the lock. Invariants: a target never reads a torn
// entry, never flushes twice (no re-invalidation), and the frames are freed
// only after BOTH targets acked.
enum class LatrVariant {
  kAsWritten,  // Mirrors production: passes under kSC and kTSO.
  // Tick skips the HasAcked check (the pre-PR-3 re-flush bug): the second
  // pass re-invalidates an already-acked entry, double-acks, and frees the
  // frames while a target's flush is still outstanding.
  kNoHasAckedCheck,
};
std::unique_ptr<MemProgModel> MakeLatrLitmus(LatrVariant variant);

// MmRing producer vs flat-combining consumer (src/ring/mm_ring.cc): the
// owner CPU copies the SQE into the ring slot with plain stores, then
// publishes sq_tail with a release store; the combiner acquires sq_tail and
// reads the slot. Invariant: an advanced tail implies a fully-written slot.
enum class RingVariant {
  kAsWritten,  // slot stores sequenced before the sq_tail release: passes.
  // Publication order inverted (tail advanced before the slot is written):
  // the combiner drains a garbage SQE (reachable already under kSC).
  kTailBeforeSlot,
};
std::unique_ptr<MemProgModel> MakeRingPublishLitmus(RingVariant variant);

// Buddy-magazine pre-zero handoff (src/pmm/buddy.cc ScrubBatch vs
// AllocZeroedFrame): the scrubber zeroes every frame byte then sets the head
// descriptor's `zeroed` flag with a release store; the consumer's hit path
// acquire-loads the flag and skips the inline memset. Invariant: a consumer
// that skipped the memset holds all-zero bytes.
enum class PrezeroVariant {
  kAsWritten,  // zero stores sequenced before the flag release: passes.
  // Scrubber raises the flag BEFORE zeroing: the consumer skips the memset
  // on a still-dirty frame (reachable already under kSC).
  kFlagBeforeZero,
};
std::unique_ptr<MemProgModel> MakePrezeroLitmus(PrezeroVariant variant);

// BRAVO bias revocation (src/sync/bravo.cc): reader checks rbias, publishes
// in the visible-readers table with a CAS, re-checks rbias; writer revokes
// rbias then scans the table for lingering readers. Invariant: a fast-path
// reader and the writer are never inside their critical sections together.
enum class BravoVariant {
  // Mirrors the FIXED production code: seq_cst fence between the rbias=false
  // store and the table scan. Passes under kSC and kTSO.
  kFenced,
  // The pre-PR-9 production code: rbias=false was a release store with no
  // fence, so under TSO the writer's scan loads complete while the store
  // sits in its buffer — a reader re-checks rbias, still sees the stale
  // `true`, and takes the fast path inside the write critical section. This
  // is THE TSO-reachable production violation this PR fixes; the variant
  // stays as the regression (must fail under kTSO, pass under kSC).
  kNoFence,
};
std::unique_ptr<MemProgModel> MakeBravoRevokeLitmus(BravoVariant variant);

// CNA lock park/wake handoff (src/sync/cna_lock.cc): a waiter that exhausted
// its spin phase stores parked=1 and re-checks spin before sleeping in
// spin.wait(); the granter stores the grant into spin and then loads parked,
// skipping the notify when it reads 0 (the futex-style optimization that
// avoids a syscall-analog wake on every handoff). Invariant: no lost wakeup —
// the granter never finishes having skipped the notify while the waiter is
// asleep with no wake token it could ever observe.
enum class CnaVariant {
  // Mirrors production: seq_cst fences between each side's store and load
  // (cna_lock.cc Lock park loop / Grant). Passes under kSC and kTSO.
  kFenced,
  // Both fences dropped: waiter stores parked then loads spin, granter
  // stores spin then loads parked — a store-buffering shape on BOTH sides,
  // so under TSO both stores sit in their buffers while both loads read 0.
  // The granter skips the notify, the waiter commits to sleep, and nobody
  // ever wakes it. The counterexample that pins WHY the park/wake protocol
  // needs StoreLoad fences (must fail under kTSO, pass under kSC).
  kNoFence,
};
std::unique_ptr<MemProgModel> MakeCnaHandoffLitmus(CnaVariant variant);

}  // namespace cortenmm

#endif  // SRC_VERIF_LITMUS_MODEL_H_
