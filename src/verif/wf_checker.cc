#include "src/verif/wf_checker.h"

#include <string>

#include "src/pmm/buddy.h"
#include "src/pmm/page_desc.h"
#include "src/pmm/phys_mem.h"
#include "src/sync/rcu.h"
#include "src/tlb/shootdown.h"

namespace cortenmm {
namespace {

void CheckPtPage(AddrSpace& space, Pfn page, int level, WfReport* report) {
  PhysMem& mem = PhysMem::Instance();
  PageTable& pt = space.page_table();
  ++report->pt_pages;

  PageDescriptor& desc = mem.Descriptor(page);
  if (desc.type.load(std::memory_order_relaxed) != FrameType::kPageTable) {
    report->Fail("PT page " + std::to_string(page) + " descriptor type is not kPageTable");
    return;
  }
  if (desc.pt_level != level) {
    report->Fail("PT page " + std::to_string(page) + " level mismatch: descriptor says " +
                 std::to_string(desc.pt_level) + ", tree position says " +
                 std::to_string(level));
  }
  if (desc.stale.load(std::memory_order_relaxed)) {
    report->Fail("stale PT page " + std::to_string(page) + " still reachable");
  }

  PteMetaArray* meta = desc.meta.load(std::memory_order_acquire);
  uint16_t present_count = 0;
  for (uint64_t i = 0; i < kPtesPerPage; ++i) {
    Pte pte = pt.LoadEntry(page, i);
    bool present = PteIsPresent(pt.arch(), pte);
    bool marked = meta != nullptr && !meta->entries[i].empty();
    if (present) {
      ++present_count;
      // I2: a mark never coexists with a present PTE in the same slot.
      if (marked) {
        report->Fail("slot " + std::to_string(i) + " of PT page " + std::to_string(page) +
                     " is both present and marked");
      }
      if (PteIsLeaf(pt.arch(), pte, level)) {
        ++report->present_leaves;
        Pfn frame = PtePfn(pt.arch(), pte);
        uint64_t frames = PtEntrySpan(level) >> kPageBits;
        if (!mem.ValidPfn(frame) || !mem.ValidPfn(frame + frames - 1)) {
          report->Fail("leaf PTE points outside physical memory");
        } else if (frames > 1) {
          // Multi-size invariants: a level-N leaf maps a naturally-aligned
          // 2^order run of live frames, each individually mapcounted.
          ++report->huge_leaves;
          if (!IsAligned(frame, frames)) {
            report->Fail("huge leaf at level " + std::to_string(level) +
                         " maps pfn " + std::to_string(frame) +
                         " which is not aligned to its run size");
          }
          for (uint64_t f = 0; f < frames; ++f) {
            PageDescriptor& fd = mem.Descriptor(frame + f);
            FrameType type = fd.type.load(std::memory_order_relaxed);
            if (type == FrameType::kFree || type == FrameType::kCached) {
              report->Fail("huge leaf maps frame " + std::to_string(frame + f) +
                           " which is typed free/cached");
              break;
            }
            if (fd.mapcount.load(std::memory_order_relaxed) == 0) {
              report->Fail("huge leaf maps frame " + std::to_string(frame + f) +
                           " with zero mapcount");
              break;
            }
          }
        }
      } else {
        // Figure 12: "pte points to a valid page ... child level relation".
        Pfn child = PtePfn(pt.arch(), pte);
        if (!mem.ValidPfn(child)) {
          report->Fail("table PTE points outside physical memory");
          continue;
        }
        if (level <= 1) {
          report->Fail("level-1 PTE claims to be a table pointer");
          continue;
        }
        CheckPtPage(space, child, level - 1, report);
      }
    } else if (marked) {
      ++report->meta_marks;
      StatusTag tag = static_cast<StatusTag>(meta->entries[i].tag);
      if (tag == StatusTag::kMapped) {
        report->Fail("metadata mark encodes kMapped, which only the MMU may encode");
      }
    }
  }
  uint16_t counted = desc.present_ptes.load(std::memory_order_relaxed);
  if (counted != present_count) {
    report->Fail("present_ptes of PT page " + std::to_string(page) + " is " +
                 std::to_string(counted) + " but " + std::to_string(present_count) +
                 " slots are present");
  }
}

}  // namespace

WfReport CheckWellFormed(AddrSpace& space) {
  WfReport report;
  CheckPtPage(space, space.page_table().root(), kPtLevels, &report);
  return report;
}

LeakReport CheckFrameLeaks(uint64_t baseline_free_frames) {
  // Reclamation is deferred in three places; drain all of them so every frame
  // that is *going* to come back has come back before we compare.
  TlbSystem::Instance().DrainAll();
  Rcu::Instance().DrainAll();
  BuddyAllocator::Instance().FlushCpuCaches();
  LeakReport report;
  report.baseline_free = baseline_free_frames;
  report.current_free = BuddyAllocator::Instance().FreeFrameCount();
  report.leaked = static_cast<int64_t>(baseline_free_frames) -
                  static_cast<int64_t>(report.current_free);
  // With the caches drained, no frame may still read as kCached: FreeFrame
  // types a parked frame kCached and FreeBlockLocked retypes it kFree when it
  // reaches a free list, so a survivor fell out of that state machine.
  PhysMem& mem = PhysMem::Instance();
  for (Pfn pfn = 0; pfn < mem.num_frames(); ++pfn) {
    PageDescriptor& desc = mem.Descriptor(pfn);
    FrameType type = desc.type.load(std::memory_order_relaxed);
    if (type == FrameType::kCached) {
      ++report.stranded_cached;
    } else if (type == FrameType::kAnon &&
               desc.refcount.load(std::memory_order_relaxed) == 0) {
      // A dead anon frame that never reached the buddy — the signature of a
      // huge run freed piecemeal with some frames dropped on the floor.
      ++report.stranded_anon;
    }
  }
  // NUMA home invariant: every free frame must sit on its home node's arena
  // (frees route by PFN, so a misplaced frame means a routing bypass).
  report.misplaced_home =
      BuddyAllocator::Instance().CountMisplacedFreeFrames();
  report.ok = report.leaked == 0 && report.stranded_cached == 0 &&
              report.stranded_anon == 0 && report.misplaced_home == 0;
  return report;
}

}  // namespace cortenmm
