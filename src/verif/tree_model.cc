#include "src/verif/tree_model.h"

#include <cassert>

namespace cortenmm {

// ---------------------------------------------------------------------------
// ModelTree
// ---------------------------------------------------------------------------

std::vector<int> ModelTree::AncestorsTopDown(int node) const {
  std::vector<int> up;
  while (node != 0) {
    node = Parent(node);
    up.push_back(node);
  }
  return std::vector<int>(up.rbegin(), up.rend());
}

std::vector<int> ModelTree::DescendantsPreorder(int node) const {
  std::vector<int> result;
  std::vector<int> dfs;
  if (!IsLeaf(node)) {
    dfs.push_back(LeftChild(node) + 1);
    dfs.push_back(LeftChild(node));
  }
  while (!dfs.empty()) {
    int cur = dfs.back();
    dfs.pop_back();
    result.push_back(cur);
    if (!IsLeaf(cur)) {
      dfs.push_back(LeftChild(cur) + 1);
      dfs.push_back(LeftChild(cur));
    }
  }
  return result;
}

std::vector<int> ModelTree::DescendantsPostorder(int node) const {
  std::vector<int> pre = DescendantsPreorder(node);
  // For subtree removal semantics, children-before-parents suffices; the
  // reverse preorder visits every child before its parent.
  return std::vector<int>(pre.rbegin(), pre.rend());
}

// ---------------------------------------------------------------------------
// RwProtocolModel
// ---------------------------------------------------------------------------

RwProtocolModel::RwProtocolModel(int tree_depth, std::vector<ThreadSpec> threads)
    : tree_{tree_depth}, threads_(std::move(threads)) {
  for (const ThreadSpec& spec : threads_) {
    assert(spec.target >= 0 && spec.target < tree_.NodeCount());
    paths_.push_back(tree_.AncestorsTopDown(spec.target));
  }
}

// Layout: nodes * 2 bytes (readers, writer-owner), then 1 pc byte per thread.
int RwProtocolModel::ReadersAt(const ModelState& s, int page) const { return s[page * 2]; }
int RwProtocolModel::WriterAt(const ModelState& s, int page) const { return s[page * 2 + 1]; }

ModelState RwProtocolModel::Initial() const {
  return ModelState(tree_.NodeCount() * 2 + threads_.size(), 0);
}

std::vector<ModelState> RwProtocolModel::Successors(const ModelState& state) const {
  std::vector<ModelState> next;
  int pc_base = tree_.NodeCount() * 2;
  for (size_t t = 0; t < threads_.size(); ++t) {
    int pc = state[pc_base + t];
    const std::vector<int>& path = paths_[t];
    int path_len = static_cast<int>(path.size());
    int target = threads_[t].target;
    int done_pc = 2 * path_len + 3;
    if (pc >= done_pc) {
      continue;
    }
    ModelState s = state;
    if (pc < path_len) {
      // Acquire the read lock on ancestor path[pc] (blocked while a writer
      // holds it).
      int page = path[pc];
      if (WriterAt(state, page) != 0) {
        continue;
      }
      ++s[page * 2];
    } else if (pc == path_len) {
      // Acquire the write lock on the covering page.
      if (ReadersAt(state, target) != 0 || WriterAt(state, target) != 0) {
        continue;
      }
      s[target * 2 + 1] = static_cast<uint8_t>(t + 1);
    } else if (pc == path_len + 1) {
      // Critical-section step: the transaction's basic operations.
    } else if (pc == path_len + 2) {
      // Release the write lock.
      s[target * 2 + 1] = 0;
    } else {
      // Release read locks in reverse acquisition order.
      int j = pc - (path_len + 3);
      int page = path[path_len - 1 - j];
      --s[page * 2];
    }
    s[pc_base + t] = static_cast<uint8_t>(pc + 1);
    next.push_back(std::move(s));
  }
  return next;
}

bool RwProtocolModel::CheckInvariants(const ModelState& state, std::string* violation) const {
  int pc_base = tree_.NodeCount() * 2;
  // INV1: a write-locked page has no readers; writer ids are sane.
  for (int page = 0; page < tree_.NodeCount(); ++page) {
    if (WriterAt(state, page) != 0 && ReadersAt(state, page) != 0) {
      *violation = "INV1: page " + std::to_string(page) + " write-locked with readers";
      return false;
    }
  }
  // Collect per-thread held read locks and write lock from pc.
  for (size_t t = 0; t < threads_.size(); ++t) {
    int pc_t = state[pc_base + t];
    int len_t = static_cast<int>(paths_[t].size());
    bool t_writes = pc_t > len_t && pc_t <= len_t + 2;
    if (!t_writes) {
      continue;
    }
    int target_t = threads_[t].target;
    for (size_t u = 0; u < threads_.size(); ++u) {
      if (u == t) {
        continue;
      }
      int pc_u = state[pc_base + u];
      int len_u = static_cast<int>(paths_[u].size());
      // INV2: no two write-locked covering pages in ancestor/descendant/equal.
      bool u_writes = pc_u > len_u && pc_u <= len_u + 2;
      if (u_writes) {
        int target_u = threads_[u].target;
        if (tree_.IsAncestorOrSelf(target_t, target_u) ||
            tree_.IsAncestorOrSelf(target_u, target_t)) {
          *violation = "INV2: overlapping write locks on " + std::to_string(target_t) +
                       " and " + std::to_string(target_u);
          return false;
        }
      }
      // INV3: no lock of u strictly inside t's write-locked subtree.
      // Held read locks of u: path_u[0 .. r) where r depends on pc.
      int held_reads;
      if (pc_u <= len_u) {
        held_reads = pc_u;
      } else if (pc_u <= len_u + 3) {
        held_reads = len_u;  // All of them (CS / releasing write).
      } else {
        held_reads = len_u - (pc_u - (len_u + 3));  // Releasing.
      }
      for (int i = 0; i < held_reads; ++i) {
        int page = paths_[u][i];
        if (page != target_t && tree_.IsAncestorOrSelf(target_t, page)) {
          *violation = "INV3: thread holds a lock inside another CS subtree";
          return false;
        }
      }
      bool u_holds_write = pc_u > len_u && pc_u <= len_u + 2;
      if (u_holds_write) {
        int target_u = threads_[u].target;
        if (target_u != target_t && tree_.IsAncestorOrSelf(target_t, target_u)) {
          *violation = "INV3: write lock inside another CS subtree";
          return false;
        }
      }
    }
  }
  return true;
}

bool RwProtocolModel::IsFinal(const ModelState& state) const {
  int pc_base = tree_.NodeCount() * 2;
  for (size_t t = 0; t < threads_.size(); ++t) {
    if (state[pc_base + t] < 2 * paths_[t].size() + 3) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// AdvProtocolModel
// ---------------------------------------------------------------------------

AdvProtocolModel::AdvProtocolModel(int tree_depth, std::vector<ThreadSpec> threads)
    : tree_{tree_depth}, threads_(std::move(threads)) {
  assert(tree_.NodeCount() <= 15);  // Held bitmask is 16 bits.
  for (const ThreadSpec& spec : threads_) {
    assert(spec.target >= 0 && spec.target < tree_.NodeCount());
    if (spec.remove_child >= 0) {
      assert(spec.remove_child != spec.target &&
             tree_.IsAncestorOrSelf(spec.target, spec.remove_child));
    }
  }
}

void AdvProtocolModel::SetHold(ModelState& s, int thread, int page, bool held) const {
  uint16_t mask = static_cast<uint16_t>(s[ThreadBase(thread) + 2] |
                                        (s[ThreadBase(thread) + 3] << 8));
  if (held) {
    mask = static_cast<uint16_t>(mask | (1u << page));
  } else {
    mask = static_cast<uint16_t>(mask & ~(1u << page));
  }
  s[ThreadBase(thread) + 2] = static_cast<uint8_t>(mask & 0xff);
  s[ThreadBase(thread) + 3] = static_cast<uint8_t>(mask >> 8);
}

int AdvProtocolModel::CoveringOf(const ModelState& s, int target) const {
  // Deepest present page on the root -> target path (the lock-free traversal
  // result; root is never removed).
  int covering = 0;
  for (int page : tree_.AncestorsTopDown(target)) {
    if (!Present(s, page)) {
      return covering;
    }
    covering = page;
  }
  if (Present(s, target)) {
    covering = target;
  }
  return covering;
}

ModelState AdvProtocolModel::Initial() const {
  ModelState s(tree_.NodeCount() * 2 + threads_.size() * 5, 0);
  for (int page = 0; page < tree_.NodeCount(); ++page) {
    s[PageBase(page) + 1] = 1;  // present, not stale
  }
  for (size_t t = 0; t < threads_.size(); ++t) {
    s[ThreadBase(t)] = kTraverse;
  }
  return s;
}

std::vector<ModelState> AdvProtocolModel::Successors(const ModelState& state) const {
  std::vector<ModelState> next;
  for (size_t t = 0; t < threads_.size(); ++t) {
    int base = ThreadBase(t);
    Phase phase = static_cast<Phase>(state[base]);
    int candidate = state[base + 1];
    ModelState s = state;
    switch (phase) {
      case kTraverse: {
        // Lock-free RCU traversal: read the covering page of the target.
        s[base + 1] = static_cast<uint8_t>(CoveringOf(state, threads_[t].target));
        s[base] = kLockCandidate;
        break;
      }
      case kLockCandidate: {
        if (Owner(state, candidate) != 0) {
          continue;  // Mutex held elsewhere; blocked.
        }
        s[PageBase(candidate)] = static_cast<uint8_t>(t + 1);
        SetHold(s, t, candidate, true);
        s[base] = kStaleCheck;
        break;
      }
      case kStaleCheck: {
        if (Stale(state, candidate)) {
          // Raced with an unmap: release and retry (Figure 6 L10-13).
          s[PageBase(candidate)] = 0;
          SetHold(s, t, candidate, false);
          s[base] = kTraverse;
        } else {
          s[base] = kDfs;
        }
        break;
      }
      case kDfs: {
        // Lock the next present, not-yet-held descendant in preorder.
        int next_page = -1;
        for (int page : tree_.DescendantsPreorder(candidate)) {
          if (Present(state, page) && !Holds(state, t, page)) {
            next_page = page;
            break;
          }
        }
        if (next_page < 0) {
          s[base] = kCs;
          break;
        }
        if (Owner(state, next_page) != 0) {
          continue;  // Blocked on a descendant's mutex.
        }
        s[PageBase(next_page)] = static_cast<uint8_t>(t + 1);
        SetHold(s, t, next_page, true);
        break;
      }
      case kCs: {
        // The transaction's basic operations happen here, atomically.
        s[base] = threads_[t].remove_child >= 0 ? kRemoving : kReleasing;
        break;
      }
      case kRemoving: {
        // Unmap the designated subtree: children before parents; for each
        // page: mark stale, unlink, unlock (retire-to-RCU is implicit — the
        // page's lock word survives, which is what the stale check relies on).
        int victim = -1;
        std::vector<int> order = tree_.DescendantsPostorder(threads_[t].remove_child);
        order.push_back(threads_[t].remove_child);
        for (int page : order) {
          if (Present(state, page)) {
            victim = page;
            break;
          }
        }
        if (victim < 0) {
          s[base] = kReleasing;
          break;
        }
        s[PageBase(victim) + 1] = 2;  // stale, not present
        s[PageBase(victim)] = 0;      // unlock
        SetHold(s, t, victim, false);
        break;
      }
      case kReleasing: {
        // Release children before the covering page.
        int victim = -1;
        for (int page : tree_.DescendantsPostorder(candidate)) {
          if (Holds(state, t, page)) {
            victim = page;
            break;
          }
        }
        if (victim < 0 && Holds(state, t, candidate)) {
          victim = candidate;
        }
        if (victim < 0) {
          s[base] = kDone;
          break;
        }
        s[PageBase(victim)] = 0;
        SetHold(s, t, victim, false);
        break;
      }
      case kDone:
        continue;
    }
    next.push_back(std::move(s));
  }
  return next;
}

bool AdvProtocolModel::CheckInvariants(const ModelState& state,
                                       std::string* violation) const {
  for (size_t t = 0; t < threads_.size(); ++t) {
    Phase phase = static_cast<Phase>(state[ThreadBase(t)]);
    if (phase != kCs && phase != kRemoving) {
      continue;
    }
    int covering = state[ThreadBase(t) + 1];
    // INV4: the critical section never runs on a stale/unlinked covering page.
    if (Stale(state, covering) || !Present(state, covering)) {
      *violation = "INV4: critical section on stale covering page " +
                   std::to_string(covering);
      return false;
    }
    for (size_t u = 0; u < threads_.size(); ++u) {
      if (u == t) {
        continue;
      }
      Phase phase_u = static_cast<Phase>(state[ThreadBase(u)]);
      // INV2: two critical sections never overlap in the tree.
      if (phase_u == kCs || phase_u == kRemoving) {
        int covering_u = state[ThreadBase(u) + 1];
        if (tree_.IsAncestorOrSelf(covering, covering_u) ||
            tree_.IsAncestorOrSelf(covering_u, covering)) {
          *violation = "INV2: overlapping critical sections on " +
                       std::to_string(covering) + " and " + std::to_string(covering_u);
          return false;
        }
      }
      // INV3: no other thread holds a *present* page inside our subtree.
      for (int page = 0; page < tree_.NodeCount(); ++page) {
        if (Holds(state, u, page) && Present(state, page) &&
            tree_.IsAncestorOrSelf(covering, page)) {
          *violation = "INV3: thread holds present page " + std::to_string(page) +
                       " inside an active CS subtree";
          return false;
        }
      }
    }
  }
  // INV1: owners and holds agree.
  for (int page = 0; page < tree_.NodeCount(); ++page) {
    int owner = Owner(state, page);
    for (size_t t = 0; t < threads_.size(); ++t) {
      bool holds = Holds(state, t, page);
      if (holds && owner != static_cast<int>(t + 1)) {
        *violation = "INV1: hold/ownership mismatch on page " + std::to_string(page);
        return false;
      }
    }
  }
  return true;
}

bool AdvProtocolModel::IsFinal(const ModelState& state) const {
  for (size_t t = 0; t < threads_.size(); ++t) {
    if (static_cast<Phase>(state[ThreadBase(t)]) != kDone) {
      return false;
    }
  }
  return true;
}

}  // namespace cortenmm
