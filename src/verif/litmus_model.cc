#include "src/verif/litmus_model.h"

#include <cassert>

#include "src/common/stats.h"

namespace cortenmm {

// --- Instr factories ---------------------------------------------------------

Instr Instr::Load(int reg, int var, MO order) {
  Instr i{Kind::kLoad};
  i.reg = static_cast<uint8_t>(reg);
  i.var = static_cast<uint8_t>(var);
  i.order = order;
  return i;
}

Instr Instr::Store(int var, int imm, MO order) {
  Instr i{Kind::kStore};
  i.var = static_cast<uint8_t>(var);
  i.imm = static_cast<uint8_t>(imm);
  i.order = order;
  return i;
}

Instr Instr::StoreReg(int var, int reg, MO order) {
  Instr i{Kind::kStoreReg};
  i.var = static_cast<uint8_t>(var);
  i.reg = static_cast<uint8_t>(reg);
  i.order = order;
  return i;
}

Instr Instr::Exchange(int reg, int var, int imm, MO order) {
  Instr i{Kind::kExchange};
  i.reg = static_cast<uint8_t>(reg);
  i.var = static_cast<uint8_t>(var);
  i.imm = static_cast<uint8_t>(imm);
  i.order = order;
  return i;
}

Instr Instr::FetchAdd(int reg, int var, int imm, MO order) {
  Instr i{Kind::kFetchAdd};
  i.reg = static_cast<uint8_t>(reg);
  i.var = static_cast<uint8_t>(var);
  i.imm = static_cast<uint8_t>(imm);
  i.order = order;
  return i;
}

Instr Instr::FetchOr(int reg, int var, int imm, MO order) {
  Instr i{Kind::kFetchOr};
  i.reg = static_cast<uint8_t>(reg);
  i.var = static_cast<uint8_t>(var);
  i.imm = static_cast<uint8_t>(imm);
  i.order = order;
  return i;
}

Instr Instr::Cas(int reg, int var, int expected, int desired, MO order) {
  Instr i{Kind::kCas};
  i.reg = static_cast<uint8_t>(reg);
  i.var = static_cast<uint8_t>(var);
  i.imm = static_cast<uint8_t>(expected);
  i.imm2 = static_cast<uint8_t>(desired);
  i.order = order;
  return i;
}

Instr Instr::Fence(MO order) {
  Instr i{Kind::kFence};
  i.order = order;
  return i;
}

Instr Instr::SetReg(int reg, int imm) {
  Instr i{Kind::kSetReg};
  i.reg = static_cast<uint8_t>(reg);
  i.imm = static_cast<uint8_t>(imm);
  return i;
}

Instr Instr::AddReg(int reg, int imm) {
  Instr i{Kind::kAddReg};
  i.reg = static_cast<uint8_t>(reg);
  i.imm = static_cast<uint8_t>(imm);
  return i;
}

Instr Instr::BranchEq(int reg, int imm, int target) {
  Instr i{Kind::kBranchEq};
  i.reg = static_cast<uint8_t>(reg);
  i.imm = static_cast<uint8_t>(imm);
  i.target = static_cast<uint8_t>(target);
  return i;
}

Instr Instr::BranchNe(int reg, int imm, int target) {
  Instr i{Kind::kBranchNe};
  i.reg = static_cast<uint8_t>(reg);
  i.imm = static_cast<uint8_t>(imm);
  i.target = static_cast<uint8_t>(target);
  return i;
}

Instr Instr::Goto(int target) {
  Instr i{Kind::kGoto};
  i.target = static_cast<uint8_t>(target);
  return i;
}

// --- View --------------------------------------------------------------------

uint8_t MemProgModel::View::Mem(int var) const { return state_[var]; }

uint8_t MemProgModel::View::Reg(int thread, int reg) const {
  return state_[model_.ThreadBase(thread) + 1 + reg];
}

int MemProgModel::View::Pc(int thread) const {
  return state_[model_.ThreadBase(thread)];
}

bool MemProgModel::View::Done(int thread) const {
  return Pc(thread) == static_cast<int>(model_.threads_[thread].code.size());
}

int MemProgModel::View::Buffered(int thread) const {
  return state_[model_.ThreadBase(thread) + 1 + model_.num_regs_];
}

bool MemProgModel::View::AllDone() const {
  for (int t = 0; t < model_.num_threads(); ++t) {
    if (!Done(t) || Buffered(t) != 0) {
      return false;
    }
  }
  return true;
}

// --- MemProgModel ------------------------------------------------------------

MemProgModel::MemProgModel(std::string name, int num_vars, int num_regs,
                           std::vector<ThreadScript> threads)
    : name_(std::move(name)),
      num_vars_(num_vars),
      num_regs_(num_regs),
      threads_(std::move(threads)),
      initial_mem_(num_vars, 0) {
  assert(num_vars_ > 0 && num_vars_ <= 16);
  assert(num_regs_ > 0 && num_regs_ <= 8);
  assert(!threads_.empty() && threads_.size() <= 4);
  for (const ThreadScript& script : threads_) {
    assert(script.code.size() < 250);
    (void)script;
  }
}

void MemProgModel::SetInitialMem(int var, uint8_t value) { initial_mem_[var] = value; }

int MemProgModel::ThreadBase(int thread) const {
  // pc + regs + buf_count + (var, val) per buffer slot.
  int per_thread = 1 + num_regs_ + 1 + 2 * kStoreBufferCap;
  return num_vars_ + thread * per_thread;
}

int MemProgModel::StateSize() const {
  return ThreadBase(static_cast<int>(threads_.size()));
}

ModelState MemProgModel::Initial() const {
  ModelState state(StateSize(), 0);
  for (int v = 0; v < num_vars_; ++v) {
    state[v] = initial_mem_[v];
  }
  return state;
}

uint8_t MemProgModel::LoadValue(const ModelState& state, int thread, int var) const {
  if (mem_model_ == MemModel::kTSO) {
    // Store forwarding: the newest buffered store to |var| wins.
    int base = ThreadBase(thread);
    int count = state[base + 1 + num_regs_];
    for (int k = count - 1; k >= 0; --k) {
      int slot = base + 2 + num_regs_ + 2 * k;
      if (state[slot] == var) {
        return state[slot + 1];
      }
    }
  }
  return state[var];
}

void MemProgModel::DrainAllLocked(ModelState& state, int thread) const {
  int base = ThreadBase(thread);
  int count = state[base + 1 + num_regs_];
  for (int k = 0; k < count; ++k) {
    int slot = base + 2 + num_regs_ + 2 * k;
    state[state[slot]] = state[slot + 1];
    state[slot] = 0;
    state[slot + 1] = 0;
  }
  state[base + 1 + num_regs_] = 0;
}

ModelState MemProgModel::FlushOne(const ModelState& state, int thread) const {
  ModelState next = state;
  int base = ThreadBase(thread);
  int count = next[base + 1 + num_regs_];
  assert(count > 0);
  int oldest = base + 2 + num_regs_;
  next[next[oldest]] = next[oldest + 1];  // Commit the FIFO head.
  // Shift the remaining entries down.
  for (int k = 1; k < count; ++k) {
    next[oldest + 2 * (k - 1)] = next[oldest + 2 * k];
    next[oldest + 2 * (k - 1) + 1] = next[oldest + 2 * k + 1];
  }
  next[oldest + 2 * (count - 1)] = 0;
  next[oldest + 2 * (count - 1) + 1] = 0;
  next[base + 1 + num_regs_] = static_cast<uint8_t>(count - 1);
  return next;
}

bool MemProgModel::Step(const ModelState& state, int thread,
                        std::vector<ModelState>* out) const {
  int base = ThreadBase(thread);
  int pc = state[base];
  const Instr& instr = threads_[thread].code[pc];
  const bool tso = mem_model_ == MemModel::kTSO;

  ModelState next = state;
  uint8_t* regs = &next[base + 1];
  uint8_t& buf_count = next[base + 1 + num_regs_];
  auto buffer_store = [&](uint8_t var, uint8_t value) -> bool {
    if (instr.order == MO::kSeqCst) {
      // x86 mov + mfence: commit everything including this store.
      DrainAllLocked(next, thread);
      next[var] = value;
      return true;
    }
    if (buf_count >= kStoreBufferCap) {
      return false;  // Step disabled until a flush frees a slot.
    }
    int slot = base + 2 + num_regs_ + 2 * buf_count;
    next[slot] = var;
    next[slot + 1] = value;
    ++buf_count;
    return true;
  };
  auto direct_store = [&](uint8_t var, uint8_t value) -> bool {
    if (!tso) {
      next[var] = value;
      return true;
    }
    return buffer_store(var, value);
  };
  // RMWs are LOCK-prefixed on x86: the buffer drains, then the operation hits
  // shared memory atomically — regardless of the source annotation.
  auto rmw_prologue = [&]() {
    if (tso) {
      DrainAllLocked(next, thread);
    }
  };

  switch (instr.kind) {
    case Instr::Kind::kLoad:
      regs[instr.reg] = LoadValue(state, thread, instr.var);
      next[base] = static_cast<uint8_t>(pc + 1);
      break;
    case Instr::Kind::kStore:
      if (!direct_store(instr.var, instr.imm)) {
        return false;
      }
      next[base] = static_cast<uint8_t>(pc + 1);
      break;
    case Instr::Kind::kStoreReg:
      if (!direct_store(instr.var, regs[instr.reg])) {
        return false;
      }
      next[base] = static_cast<uint8_t>(pc + 1);
      break;
    case Instr::Kind::kExchange:
      rmw_prologue();
      regs[instr.reg] = next[instr.var];
      next[instr.var] = instr.imm;
      next[base] = static_cast<uint8_t>(pc + 1);
      break;
    case Instr::Kind::kFetchAdd:
      rmw_prologue();
      regs[instr.reg] = next[instr.var];
      next[instr.var] = static_cast<uint8_t>(next[instr.var] + instr.imm);
      next[base] = static_cast<uint8_t>(pc + 1);
      break;
    case Instr::Kind::kFetchOr:
      rmw_prologue();
      regs[instr.reg] = next[instr.var];
      next[instr.var] = static_cast<uint8_t>(next[instr.var] | instr.imm);
      next[base] = static_cast<uint8_t>(pc + 1);
      break;
    case Instr::Kind::kCas:
      // LOCK CMPXCHG drains on failure too.
      rmw_prologue();
      if (next[instr.var] == instr.imm) {
        next[instr.var] = instr.imm2;
        regs[instr.reg] = 1;
      } else {
        regs[instr.reg] = 0;
      }
      next[base] = static_cast<uint8_t>(pc + 1);
      break;
    case Instr::Kind::kFence:
      // Only the seq_cst fence is an MFENCE on x86; acquire/release fences
      // compile to nothing under TSO (they constrain the compiler, which the
      // model has no analog of — DESIGN.md §10 discusses the gap).
      if (tso && instr.order == MO::kSeqCst) {
        DrainAllLocked(next, thread);
      }
      next[base] = static_cast<uint8_t>(pc + 1);
      break;
    case Instr::Kind::kSetReg:
      regs[instr.reg] = instr.imm;
      next[base] = static_cast<uint8_t>(pc + 1);
      break;
    case Instr::Kind::kAddReg:
      regs[instr.reg] = static_cast<uint8_t>(regs[instr.reg] + instr.imm);
      next[base] = static_cast<uint8_t>(pc + 1);
      break;
    case Instr::Kind::kBranchEq:
      next[base] = regs[instr.reg] == instr.imm ? instr.target
                                                : static_cast<uint8_t>(pc + 1);
      break;
    case Instr::Kind::kBranchNe:
      next[base] = regs[instr.reg] != instr.imm ? instr.target
                                                : static_cast<uint8_t>(pc + 1);
      break;
    case Instr::Kind::kGoto:
      next[base] = instr.target;
      break;
  }
  out->push_back(std::move(next));
  return true;
}

std::vector<ModelState> MemProgModel::Successors(const ModelState& state) const {
  std::vector<ModelState> out;
  for (int t = 0; t < num_threads(); ++t) {
    int base = ThreadBase(t);
    if (static_cast<size_t>(state[base]) < threads_[t].code.size()) {
      Step(state, t, &out);
    }
    // The nondeterministic flush: the explorer interleaves every possible
    // drain point of every thread's FIFO head with all other steps.
    if (mem_model_ == MemModel::kTSO && state[base + 1 + num_regs_] > 0) {
      out.push_back(FlushOne(state, t));
    }
  }
  return out;
}

bool MemProgModel::CheckInvariants(const ModelState& state, std::string* violation) const {
  if (!invariant_) {
    return true;
  }
  View view(*this, state);
  std::string why;
  if (!invariant_(view, &why)) {
    *violation = name_ + ": " + why;
    return false;
  }
  return true;
}

bool MemProgModel::IsFinal(const ModelState& state) const {
  View view(*this, state);
  return view.AllDone();
}

// --- Memory-model comparison -------------------------------------------------

MemModelComparison CompareMemModels(MemProgModel& model, uint64_t max_states) {
  MemModel configured = model.mem_model();
  MemModelComparison cmp;
  model.SetMemModel(MemModel::kSC);
  cmp.sc = ModelChecker::Run(model, max_states);
  model.SetMemModel(MemModel::kTSO);
  cmp.tso = ModelChecker::Run(model, max_states);
  model.SetMemModel(configured);
  if (cmp.sc.ok && cmp.tso.ok && cmp.tso.states_explored >= cmp.sc.states_explored) {
    cmp.tso_only_states = cmp.tso.states_explored - cmp.sc.states_explored;
    CountEvent(Counter::kLitmusTsoOnlyStates, cmp.tso_only_states);
  }
  return cmp;
}

// --- Classic sanity litmus ---------------------------------------------------

std::unique_ptr<MemProgModel> MakeSbLitmus(bool fenced) {
  // vars: x=0, y=1. Annotations deliberately release/acquire (not seq_cst) to
  // demonstrate that they alone do NOT forbid store->load reordering; only
  // the fence (or an RMW) does. Production analog of the fenced form: RCU
  // reader publication (src/sync/rcu.cc ReadLock seq_cst store) and the fixed
  // BRAVO revocation (src/sync/bravo.cc).
  const int x = 0, y = 1;
  MemProgModel::ThreadScript t0, t1;
  t0.code.push_back(Instr::Store(x, 1, MO::kRelease));
  t1.code.push_back(Instr::Store(y, 1, MO::kRelease));
  if (fenced) {
    t0.code.push_back(Instr::Fence(MO::kSeqCst));
    t1.code.push_back(Instr::Fence(MO::kSeqCst));
  }
  t0.code.push_back(Instr::Load(0, y, MO::kAcquire));
  t1.code.push_back(Instr::Load(0, x, MO::kAcquire));
  auto model = std::make_unique<MemProgModel>(
      fenced ? "litmus-sb-fenced" : "litmus-sb", 2, 1,
      std::vector<MemProgModel::ThreadScript>{t0, t1});
  model->SetInvariant([](const MemProgModel::View& v, std::string* why) {
    if (v.AllDone() && v.Reg(0, 0) == 0 && v.Reg(1, 0) == 0) {
      *why = "SB outcome r1==r2==0 reached (both stores still buffered)";
      return false;
    }
    return true;
  });
  return model;
}

std::unique_ptr<MemProgModel> MakeMpLitmus() {
  const int data = 0, flag = 1;
  MemProgModel::ThreadScript t0, t1;
  t0.code.push_back(Instr::Store(data, 1, MO::kRelaxed));
  t0.code.push_back(Instr::Store(flag, 1, MO::kRelease));
  t1.code.push_back(Instr::Load(0, flag, MO::kAcquire));
  t1.code.push_back(Instr::Load(1, data, MO::kRelaxed));
  auto model = std::make_unique<MemProgModel>(
      "litmus-mp", 2, 2, std::vector<MemProgModel::ThreadScript>{t0, t1});
  model->SetInvariant([](const MemProgModel::View& v, std::string* why) {
    if (v.AllDone() && v.Reg(1, 0) == 1 && v.Reg(1, 1) == 0) {
      *why = "MP outcome flag==1, data==0 reached";
      return false;
    }
    return true;
  });
  return model;
}

std::unique_ptr<MemProgModel> MakeLbLitmus() {
  const int x = 0, y = 1;
  MemProgModel::ThreadScript t0, t1;
  t0.code.push_back(Instr::Load(0, x, MO::kRelaxed));
  t0.code.push_back(Instr::Store(y, 1, MO::kRelaxed));
  t1.code.push_back(Instr::Load(0, y, MO::kRelaxed));
  t1.code.push_back(Instr::Store(x, 1, MO::kRelaxed));
  auto model = std::make_unique<MemProgModel>(
      "litmus-lb", 2, 1, std::vector<MemProgModel::ThreadScript>{t0, t1});
  model->SetInvariant([](const MemProgModel::View& v, std::string* why) {
    if (v.AllDone() && v.Reg(0, 0) == 1 && v.Reg(1, 0) == 1) {
      *why = "LB outcome r1==r2==1 reached";
      return false;
    }
    return true;
  });
  return model;
}

// --- SeqCount ---------------------------------------------------------------

namespace {

// The reader script mirrors SeqCount::ReadBegin's one-load fast path
// (seqlock.h ReadBegin) followed by two protected
// reads and ReadValidate (seqlock.h ReadValidate: acquire fence + relaxed re-load).
// Sequence values stay <= 4, so "odd" is the explicit set {1, 3}.
MemProgModel::ThreadScript SeqCountReader(int seq, int d1, int d2) {
  MemProgModel::ThreadScript reader;
  reader.code = {
      Instr::Load(0, seq, MO::kAcquire),   // 0: ReadBegin first load.
      Instr::BranchEq(0, 1, 0),            // 1: odd -> writer active, retry.
      Instr::BranchEq(0, 3, 0),            // 2
      Instr::Load(1, d1, MO::kRelaxed),    // 3: read section.
      Instr::Load(2, d2, MO::kRelaxed),    // 4
      Instr::Fence(MO::kAcquire),          // 5: ReadValidate fence.
      Instr::Load(3, seq, MO::kRelaxed),   // 6: ReadValidate re-load.
  };
  return reader;
}

}  // namespace

std::unique_ptr<MemProgModel> MakeSeqCountLitmus(SeqCountVariant variant) {
  const int seq = 0, d1 = 1, d2 = 2;
  std::vector<MemProgModel::ThreadScript> threads;

  if (variant == SeqCountVariant::kAsWritten) {
    MemProgModel::ThreadScript writer;
    writer.code = {
        Instr::FetchAdd(0, seq, 1, MO::kAcqRel),  // WriteBegin (seqlock.h WriteBegin).
        Instr::Store(d1, 1, MO::kRelaxed),        // Protected field writes.
        Instr::Store(d2, 1, MO::kRelaxed),
        Instr::FetchAdd(0, seq, 1, MO::kAcqRel),  // WriteEnd (seqlock.h WriteEnd).
    };
    threads.push_back(writer);
  } else {
    // Two writers whose "increments" are non-atomic load; add; store — the
    // demotion the litmus pins as unsafe. Writer k publishes (k, k).
    for (int value = 1; value <= 2; ++value) {
      MemProgModel::ThreadScript writer;
      writer.code = {
          Instr::Load(0, seq, MO::kRelaxed),
          Instr::AddReg(0, 1),
          Instr::StoreReg(seq, 0, MO::kRelaxed),  // "WriteBegin" demoted.
          Instr::Store(d1, value, MO::kRelaxed),
          Instr::Store(d2, value, MO::kRelaxed),
          Instr::AddReg(0, 1),
          Instr::StoreReg(seq, 0, MO::kRelease),  // "WriteEnd" demoted.
      };
      threads.push_back(writer);
    }
  }
  threads.push_back(SeqCountReader(seq, d1, d2));
  const int reader = static_cast<int>(threads.size()) - 1;

  auto model = std::make_unique<MemProgModel>(
      variant == SeqCountVariant::kAsWritten ? "seqcount-publish"
                                             : "seqcount-nonatomic-increment",
      3, 4, std::move(threads));
  model->SetInvariant([reader](const MemProgModel::View& v, std::string* why) {
    if (!v.Done(reader)) {
      return true;
    }
    uint8_t snap = v.Reg(reader, 0), r1 = v.Reg(reader, 1), r2 = v.Reg(reader, 2),
            revalidate = v.Reg(reader, 3);
    if (snap != revalidate || (snap & 1) != 0) {
      return true;  // Snapshot invalidated (or never even): reader retries.
    }
    if (r1 != r2) {
      *why = "validated read section observed torn data";
      return false;
    }
    return true;
  });
  return model;
}

// --- MCS handoff -------------------------------------------------------------

std::unique_ptr<MemProgModel> MakeMcsHandoffLitmus(McsVariant variant) {
  // vars: tail, next[1], next[2], locked[1], locked[2], data. Thread t
  // (0-based) models queue node id t+1; with two threads the predecessor /
  // successor can only be the other node, so pointer chasing reduces to
  // immediate indices.
  const int tail = 0, data = 5;
  auto next_of = [](int id) { return id; };        // next[1]=1, next[2]=2.
  auto locked_of = [](int id) { return id + 2; };  // locked[1]=3, locked[2]=4.

  std::vector<MemProgModel::ThreadScript> threads;
  int cs_begin = 0, cs_end = 0;
  for (int id = 1; id <= 2; ++id) {
    int other = 3 - id;
    MemProgModel::ThreadScript t;
    if (variant == McsVariant::kAsWritten) {
      t.code = {
          Instr::Store(next_of(id), 0, MO::kRelaxed),    //  0: node->next = null (mcs_lock.h Lock).
          Instr::Store(locked_of(id), 1, MO::kRelaxed),  //  1: node->locked = true (mcs_lock.h Lock).
          Instr::Exchange(0, tail, id, MO::kAcqRel),     //  2: tail.exchange (mcs_lock.h Lock).
          Instr::BranchEq(0, 0, 7),                      //  3: uncontended -> CS.
          Instr::Store(next_of(other), id, MO::kRelease),//  4: prev->next = node (mcs_lock.h Lock).
          Instr::Load(1, locked_of(id), MO::kAcquire),   //  5: spin on own node (mcs_lock.h Lock).
          Instr::BranchEq(1, 1, 5),                      //  6
          Instr::Load(2, data, MO::kRelaxed),            //  7: CS: non-atomic increment —
          Instr::AddReg(2, 1),                           //  8: the lock is the only protection.
          Instr::StoreReg(data, 2, MO::kRelaxed),        //  9
          Instr::Load(1, next_of(id), MO::kAcquire),     // 10: Unlock (mcs_lock.h Unlock).
          Instr::BranchNe(1, 0, 15),                     // 11: successor linked -> handoff.
          Instr::Cas(1, tail, id, 0, MO::kAcqRel),       // 12: no waiter? (mcs_lock.h Unlock).
          Instr::BranchEq(1, 1, 16),                     // 13: released.
          Instr::Goto(10),                               // 14: enqueuer mid-link: wait.
          Instr::Store(locked_of(other), 0, MO::kRelease),  // 15: handoff (mcs_lock.h Unlock).
      };
      cs_begin = 7;
      cs_end = 9;
    } else {
      // kNonAtomicTailSwap: acquisition demoted to load-tail-then-store-tail.
      t.code = {
          Instr::Store(next_of(id), 0, MO::kRelaxed),    //  0
          Instr::Store(locked_of(id), 1, MO::kRelaxed),  //  1
          Instr::Load(0, tail, MO::kAcquire),            //  2: BROKEN: read...
          Instr::Store(tail, id, MO::kRelaxed),          //  3: ...then write.
          Instr::BranchEq(0, 0, 8),                      //  4
          Instr::Store(next_of(other), id, MO::kRelease),//  5
          Instr::Load(1, locked_of(id), MO::kAcquire),   //  6
          Instr::BranchEq(1, 1, 6),                      //  7
          Instr::Load(2, data, MO::kRelaxed),            //  8: CS.
          Instr::AddReg(2, 1),                           //  9
          Instr::StoreReg(data, 2, MO::kRelaxed),        // 10
          Instr::Load(1, next_of(id), MO::kAcquire),     // 11
          Instr::BranchNe(1, 0, 16),                     // 12
          Instr::Cas(1, tail, id, 0, MO::kAcqRel),       // 13
          Instr::BranchEq(1, 1, 17),                     // 14
          Instr::Goto(11),                               // 15
          Instr::Store(locked_of(other), 0, MO::kRelease),  // 16
      };
      cs_begin = 8;
      cs_end = 10;
    }
    threads.push_back(std::move(t));
  }

  auto model = std::make_unique<MemProgModel>(
      variant == McsVariant::kAsWritten ? "mcs-handoff" : "mcs-nonatomic-tail-swap",
      6, 3, std::move(threads));
  model->SetInvariant([cs_begin, cs_end, data](const MemProgModel::View& v,
                                               std::string* why) {
    bool t0_in_cs = v.Pc(0) >= cs_begin && v.Pc(0) <= cs_end;
    bool t1_in_cs = v.Pc(1) >= cs_begin && v.Pc(1) <= cs_end;
    if (t0_in_cs && t1_in_cs) {
      *why = "both threads inside the MCS critical section";
      return false;
    }
    if (v.AllDone() && v.Mem(data) != 2) {
      *why = "lost update: final counter != 2";
      return false;
    }
    return true;
  });
  return model;
}

// --- LATR gather publish vs tick ---------------------------------------------

std::unique_ptr<MemProgModel> MakeLatrLitmus(LatrVariant variant) {
  // vars: the initiator's per-CPU buffer spinlock, the entry-present flag
  // (entries vector non-empty), the entry payload (ranges/runs), the
  // acked_mask word, the remaining count, and the frames-freed flag.
  const int lock = 0, published = 1, payload = 2, acked = 3, remaining = 4, freed = 5;

  MemProgModel::ThreadScript initiator;
  initiator.code = {
      Instr::Store(payload, 1, MO::kRelaxed),    // Entry fields (shootdown.cc Gather publish).
      Instr::Store(remaining, 2, MO::kRelaxed),  // remaining.store (shootdown.cc Gather publish).
      Instr::Exchange(0, lock, 1, MO::kAcquire), // SpinLock::Lock (spinlock.h Lock).
      Instr::BranchEq(0, 1, 2),
      Instr::Store(published, 1, MO::kRelaxed),  // entries.push_back.
      Instr::Store(lock, 0, MO::kRelease),       // SpinGuard unlock (spinlock.h Unlock).
  };

  // Each target runs Tick twice; the second pass must hit the HasAcked skip
  // (shootdown.cc Tick) instead of re-invalidating. Registers: r0 lock temp,
  // r1 mask snapshot, r2 payload read, r3 flush count, r4 remaining-old.
  auto target_script = [&](int bit) {
    MemProgModel::ThreadScript t;
    for (int pass = 0; pass < 2; ++pass) {
      int s = static_cast<int>(t.code.size());
      if (variant == LatrVariant::kAsWritten) {
        t.code.push_back(Instr::SetReg(4, 0));                      // s+0
        t.code.push_back(Instr::Exchange(0, lock, 1, MO::kAcquire)); // s+1: Tick lock (shootdown.cc Tick).
        t.code.push_back(Instr::BranchEq(0, 1, s + 1));             // s+2
        t.code.push_back(Instr::Load(1, published, MO::kRelaxed));  // s+3: scan entries.
        t.code.push_back(Instr::BranchEq(1, 1, s + 7));             // s+4
        t.code.push_back(Instr::Store(lock, 0, MO::kRelease));      // s+5: empty: unlock,
        t.code.push_back(Instr::Goto(s + 1));                       // s+6: retry.
        t.code.push_back(Instr::Load(1, acked, MO::kAcquire));      // s+7: HasAcked (shootdown.cc HasAcked).
        t.code.push_back(Instr::BranchEq(1, bit, s + 14));          // s+8: own bit -> skip.
        t.code.push_back(Instr::BranchEq(1, 3, s + 14));            // s+9
        t.code.push_back(Instr::Load(2, payload, MO::kRelaxed));    // s+10: flush reads ranges.
        t.code.push_back(Instr::AddReg(3, 1));                      // s+11: count the invalidation.
        t.code.push_back(Instr::FetchOr(1, acked, bit, MO::kAcqRel)); // s+12: TryAck (shootdown.cc TryAck).
        t.code.push_back(Instr::FetchAdd(4, remaining, 255, MO::kAcqRel)); // s+13: fetch_sub(1) (shootdown.cc TryAck).
        t.code.push_back(Instr::Store(lock, 0, MO::kRelease));      // s+14: unlock.
        t.code.push_back(Instr::BranchNe(4, 1, s + 17));            // s+15: last ack?
        t.code.push_back(Instr::Store(freed, 1, MO::kRelaxed));     // s+16: FinishEntry (outside lock).
      } else {
        // kNoHasAckedCheck: flush unconditionally — the pre-PR-3 re-flush bug.
        t.code.push_back(Instr::SetReg(4, 0));                      // s+0
        t.code.push_back(Instr::Exchange(0, lock, 1, MO::kAcquire)); // s+1
        t.code.push_back(Instr::BranchEq(0, 1, s + 1));             // s+2
        t.code.push_back(Instr::Load(1, published, MO::kRelaxed));  // s+3
        t.code.push_back(Instr::BranchEq(1, 1, s + 7));             // s+4
        t.code.push_back(Instr::Store(lock, 0, MO::kRelease));      // s+5
        t.code.push_back(Instr::Goto(s + 1));                       // s+6
        t.code.push_back(Instr::Load(2, payload, MO::kRelaxed));    // s+7
        t.code.push_back(Instr::AddReg(3, 1));                      // s+8
        t.code.push_back(Instr::FetchOr(1, acked, bit, MO::kAcqRel)); // s+9
        t.code.push_back(Instr::FetchAdd(4, remaining, 255, MO::kAcqRel)); // s+10
        t.code.push_back(Instr::Store(lock, 0, MO::kRelease));      // s+11
        t.code.push_back(Instr::BranchNe(4, 1, s + 14));            // s+12
        t.code.push_back(Instr::Store(freed, 1, MO::kRelaxed));     // s+13
      }
    }
    return t;
  };

  std::vector<MemProgModel::ThreadScript> threads{initiator, target_script(1),
                                                  target_script(2)};
  auto model = std::make_unique<MemProgModel>(
      variant == LatrVariant::kAsWritten ? "latr-gather-tick" : "latr-no-hasacked",
      6, 5, std::move(threads));
  model->SetInvariant([acked, freed](const MemProgModel::View& v, std::string* why) {
    for (int t = 1; t <= 2; ++t) {
      uint8_t flushes = v.Reg(t, 3);
      if (flushes > 1) {
        *why = "target re-invalidated an already-acked entry";
        return false;
      }
      if (flushes >= 1 && v.Reg(t, 2) != 1) {
        *why = "target flushed a torn (unpublished) entry";
        return false;
      }
    }
    if (v.Mem(freed) == 1 && v.Mem(acked) != 3) {
      *why = "frames freed before every target acked its flush";
      return false;
    }
    return true;
  });
  return model;
}

// --- MmRing publish ----------------------------------------------------------

std::unique_ptr<MemProgModel> MakeRingPublishLitmus(RingVariant variant) {
  const int slot = 0, sq_tail = 1;
  MemProgModel::ThreadScript owner, combiner;
  if (variant == RingVariant::kAsWritten) {
    owner.code = {
        Instr::Store(slot, 1, MO::kRelaxed),    // pc.sq[tail % kDepth] = sqe (mm_ring.cc Submit).
        Instr::Store(sq_tail, 1, MO::kRelease), // sq_tail.store(release) (mm_ring.cc Submit).
    };
  } else {
    owner.code = {
        Instr::Store(sq_tail, 1, MO::kRelease),  // BROKEN: tail first.
        Instr::Store(slot, 1, MO::kRelaxed),
    };
  }
  combiner.code = {
      Instr::Load(0, sq_tail, MO::kAcquire),  // tail = sq_tail.load(acquire) (mm_ring.cc CombineOnce).
      Instr::BranchEq(0, 0, 3),               // Nothing pending.
      Instr::Load(1, slot, MO::kRelaxed),     // q.ops.push_back(pc.sq[...]) (mm_ring.cc CombineOnce).
  };
  auto model = std::make_unique<MemProgModel>(
      variant == RingVariant::kAsWritten ? "ring-publish" : "ring-tail-before-slot",
      2, 2, std::vector<MemProgModel::ThreadScript>{owner, combiner});
  model->SetInvariant([](const MemProgModel::View& v, std::string* why) {
    if (v.Done(1) && v.Reg(1, 0) == 1 && v.Reg(1, 1) != 1) {
      *why = "combiner drained a half-written SQE";
      return false;
    }
    return true;
  });
  return model;
}

// --- Buddy-magazine pre-zero publish -----------------------------------------

std::unique_ptr<MemProgModel> MakePrezeroLitmus(PrezeroVariant variant) {
  const int d1 = 0, d2 = 1, flag = 2;  // Two frame bytes + the zeroed flag.
  MemProgModel::ThreadScript scrubber, consumer;
  if (variant == PrezeroVariant::kAsWritten) {
    scrubber.code = {
        Instr::Store(d1, 0, MO::kRelaxed),   // mem.ZeroFrame(...) (buddy.cc ScrubBatch).
        Instr::Store(d2, 0, MO::kRelaxed),
        Instr::Store(flag, 1, MO::kRelease), // zeroed.store(true, release) (buddy.cc ScrubBatch).
    };
  } else {
    scrubber.code = {
        Instr::Store(flag, 1, MO::kRelease),  // BROKEN: flag before the zeroing.
        Instr::Store(d1, 0, MO::kRelaxed),
        Instr::Store(d2, 0, MO::kRelaxed),
    };
  }
  consumer.code = {
      Instr::Load(0, flag, MO::kAcquire),  // zeroed.load(acquire) (buddy.cc AllocRaw).
      Instr::BranchEq(0, 0, 5),            // Miss: inline memset fallback.
      Instr::Load(1, d1, MO::kRelaxed),    // Hit: trust the scrubbed bytes.
      Instr::Load(2, d2, MO::kRelaxed),
      Instr::Goto(9),
      Instr::Store(d1, 0, MO::kRelaxed),   // Inline memset (buddy.cc inline zero path).
      Instr::Store(d2, 0, MO::kRelaxed),
      Instr::SetReg(1, 0),
      Instr::SetReg(2, 0),
  };
  auto model = std::make_unique<MemProgModel>(
      variant == PrezeroVariant::kAsWritten ? "prezero-publish" : "prezero-flag-first",
      3, 3, std::vector<MemProgModel::ThreadScript>{scrubber, consumer});
  model->SetInitialMem(d1, 1);  // Frames start dirty.
  model->SetInitialMem(d2, 1);
  model->SetInvariant([](const MemProgModel::View& v, std::string* why) {
    if (v.Done(1) && (v.Reg(1, 1) != 0 || v.Reg(1, 2) != 0)) {
      *why = "AllocZeroedFrame handed out a dirty byte";
      return false;
    }
    return true;
  });
  return model;
}

// --- BRAVO bias revocation ---------------------------------------------------

std::unique_ptr<MemProgModel> MakeBravoRevokeLitmus(BravoVariant variant) {
  const int rbias = 0, slot = 1;

  // Reader: bravo.cc ReadLock fast path. In CS at pc 6..7.
  MemProgModel::ThreadScript reader;
  reader.code = {
      Instr::Load(0, rbias, MO::kAcquire),    // 0: rbias check (bravo.cc ReadLock).
      Instr::BranchEq(0, 0, 10),              // 1: bias off -> underlying path.
      Instr::Cas(1, slot, 0, 1, MO::kAcqRel), // 2: publish in the table (bravo.cc ReadLock).
      Instr::BranchEq(1, 0, 10),              // 3: slot taken -> underlying path.
      Instr::Load(2, rbias, MO::kAcquire),    // 4: re-check (bravo.cc ReadLock).
      Instr::BranchEq(2, 0, 9),               // 5: revoked -> back out.
      Instr::SetReg(0, 2),                    // 6: === fast-path read section ===
      Instr::Store(slot, 0, MO::kRelease),    // 7: ReadUnlock (bravo.cc ReadUnlock).
      Instr::Goto(10),                        // 8
      Instr::Store(slot, 0, MO::kRelease),    // 9: clear after losing the race.
  };
  const int reader_cs_begin = 6, reader_cs_end = 7;

  // Writer: bravo.cc WriteLock revocation (it already holds the underlying
  // phase-fair lock; only the bias protocol is modeled). In CS from the
  // penultimate instruction on.
  MemProgModel::ThreadScript writer;
  writer.code.push_back(Instr::Load(0, rbias, MO::kAcquire));  // bravo.cc WriteLock.
  const int writer_scan = variant == BravoVariant::kFenced ? 4 : 3;
  const int writer_cs = writer_scan + 2;
  writer.code.push_back(Instr::BranchEq(0, 0, writer_cs));     // Bias already off.
  writer.code.push_back(Instr::Store(rbias, 0, MO::kRelease)); // Revoke (bravo.cc WriteLock).
  if (variant == BravoVariant::kFenced) {
    // THE FIX: the StoreLoad fence between the revocation store and the scan
    // loads (bravo.cc, added by this PR). Without it, x86 runs the scan
    // against memory while rbias=false waits in the store buffer.
    writer.code.push_back(Instr::Fence(MO::kSeqCst));
  }
  writer.code.push_back(Instr::Load(1, slot, MO::kAcquire));   // Scan (bravo.cc WriteLock).
  writer.code.push_back(Instr::BranchNe(1, 0, writer_scan));   // Spin until clear.
  writer.code.push_back(Instr::SetReg(0, 3));                  // === write section ===

  auto model = std::make_unique<MemProgModel>(
      variant == BravoVariant::kFenced ? "bravo-revoke-fenced" : "bravo-revoke-nofence",
      2, 3, std::vector<MemProgModel::ThreadScript>{reader, writer});
  model->SetInitialMem(rbias, 1);
  model->SetInvariant([reader_cs_begin, reader_cs_end, writer_cs](
                          const MemProgModel::View& v, std::string* why) {
    bool reader_in = v.Pc(0) >= reader_cs_begin && v.Pc(0) <= reader_cs_end;
    bool writer_in = v.Pc(1) >= writer_cs;
    if (reader_in && writer_in) {
      *why = "fast-path reader inside the write critical section";
      return false;
    }
    return true;
  });
  return model;
}

// --- CNA park/wake handoff ---------------------------------------------------

std::unique_ptr<MemProgModel> MakeCnaHandoffLitmus(CnaVariant variant) {
  const bool fenced = variant == CnaVariant::kFenced;
  const int spin = 0, parked = 1, wake = 2;

  // Waiter: cna_lock.cc Lock(), the park loop after the spin phase expires.
  // spin.wait(0) is modeled as a loop on a separate `wake` token: a real
  // futex sleeper is only released by a FUTEX_WAKE, and the kernel-side
  // recheck of the futex word is the acquire load at the recheck pc — once
  // that read 0 and the thread blocks, only the notify can release it.
  MemProgModel::ThreadScript waiter;
  waiter.code.push_back(Instr::Store(parked, 1, MO::kRelease));  // parked.store(1) (Lock).
  if (fenced) {
    // THE FENCE: StoreLoad between the parked store and the spin recheck
    // (cna_lock.cc Lock). Without it the recheck runs against memory while
    // parked=1 waits in the store buffer.
    waiter.code.push_back(Instr::Fence(MO::kSeqCst));
  }
  const int sleep_begin = fenced ? 4 : 3;
  const int sleep_end = sleep_begin + 1;
  const int awake = sleep_end + 1;
  waiter.code.push_back(Instr::Load(0, spin, MO::kAcquire));   // recheck before wait (Lock).
  waiter.code.push_back(Instr::BranchNe(0, 0, awake));         // grant visible -> no sleep.
  waiter.code.push_back(Instr::Load(1, wake, MO::kAcquire));   // spin.wait(0): asleep...
  waiter.code.push_back(Instr::BranchEq(1, 0, sleep_begin));   // ...until a wake is posted.
  waiter.code.push_back(Instr::SetReg(2, 1));                  // === lock acquired ===

  // Granter: cna_lock.cc Grant() — the unlocker half of the handoff.
  MemProgModel::ThreadScript granter;
  granter.code.push_back(Instr::Store(spin, 1, MO::kRelease));  // spin.store(grant) (Grant).
  if (fenced) {
    // THE FENCE: StoreLoad between the grant store and the parked check
    // (cna_lock.cc Grant) — the granter half of the same SB shape.
    granter.code.push_back(Instr::Fence(MO::kSeqCst));
  }
  const int done = fenced ? 5 : 4;
  granter.code.push_back(Instr::Load(0, parked, MO::kAcquire)); // parked.load() (Grant).
  granter.code.push_back(Instr::BranchEq(0, 0, done));          // reads 0 -> skip the notify.
  granter.code.push_back(Instr::Store(wake, 1, MO::kRelease));  // spin.notify_one() (Grant).
  granter.code.push_back(Instr::SetReg(1, 1));                  // === handoff complete ===

  auto model = std::make_unique<MemProgModel>(
      fenced ? "cna-handoff-fenced" : "cna-handoff-nofence",
      3, 3, std::vector<MemProgModel::ThreadScript>{waiter, granter});
  model->SetInvariant([sleep_begin, sleep_end, wake](
                          const MemProgModel::View& v, std::string* why) {
    // Lost wakeup: the granter finished via the skip branch (its parked load
    // returned 0, reg0 == 0) while the waiter sits in the sleep loop with no
    // wake token in memory. Nothing can ever store `wake` again — the skip
    // branch bypassed the only store — so this state is a permanent sleep.
    bool granter_skipped = v.Done(1) && v.Reg(1, 0) == 0;
    bool waiter_asleep = v.Pc(0) >= sleep_begin && v.Pc(0) <= sleep_end;
    if (granter_skipped && waiter_asleep && v.Mem(wake) == 0) {
      *why = "lost wakeup: granter skipped the notify while the waiter sleeps";
      return false;
    }
    return true;
  });
  return model;
}

}  // namespace cortenmm
