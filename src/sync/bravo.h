// BRAVO reader bias (Dice & Kogan, ATC'19) layered over the phase-fair lock.
// Readers of a read-biased lock publish themselves in a global visible-readers
// table and skip the underlying lock entirely; a writer revokes the bias, scans
// the table until no reader of this lock remains visible, and inhibits
// re-biasing for a period proportional to the revocation cost.
//
// CortenMM_rw's per-PT-page lock is exactly this combination ("BRAVO-pfqlock",
// paper §4.5): page-table read traversals of disjoint transactions then scale
// without bouncing the lock cache line.
#ifndef SRC_SYNC_BRAVO_H_
#define SRC_SYNC_BRAVO_H_

#include <atomic>
#include <cstdint>

#include "src/sync/pfq_rwlock.h"

namespace cortenmm {

class BravoRwLock;

// Global visible-readers table shared by all BRAVO locks.
class BravoTable {
 public:
  static constexpr int kSlots = 4096;

  static BravoTable& Instance();

  // The slot a given (lock, thread) pair publishes in.
  std::atomic<const BravoRwLock*>& SlotFor(const BravoRwLock* lock);
  std::atomic<const BravoRwLock*>& SlotAt(int i) { return slots_[i]; }

 private:
  std::atomic<const BravoRwLock*> slots_[kSlots] = {};
};

class BravoRwLock {
 public:
  // Opaque cookie a reader carries from ReadLock to ReadUnlock. It records
  // whether the fast path (visible-readers table) or the underlying phase-fair
  // lock was taken.
  enum class ReadCookie : uint8_t { kUnderlying = 0, kFastPath = 1 };

  BravoRwLock() = default;
  BravoRwLock(const BravoRwLock&) = delete;
  BravoRwLock& operator=(const BravoRwLock&) = delete;

  ReadCookie ReadLock();
  void ReadUnlock(ReadCookie cookie);
  void WriteLock();
  void WriteUnlock();

  bool read_biased() const { return rbias_.load(std::memory_order_relaxed); }

  // Test hook: re-arm the bias and clear the inhibition window so the next
  // WriteLock exercises the full revocation protocol. Stress tests use this
  // to hammer the revoke-then-scan path (see BravoTest in sync_test.cc).
  void rearm_bias_for_testing() {
    inhibit_until_ns_.store(0, std::memory_order_relaxed);
    rbias_.store(true, std::memory_order_release);
  }

 private:
  PfqRwLock underlying_;
  std::atomic<bool> rbias_{true};
  // Re-biasing is inhibited until this steady_clock nanosecond timestamp —
  // N x the last revocation's duration, as in the BRAVO paper.
  std::atomic<uint64_t> inhibit_until_ns_{0};
};

}  // namespace cortenmm

#endif  // SRC_SYNC_BRAVO_H_
