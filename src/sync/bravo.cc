#include "src/sync/bravo.h"

#include <chrono>
#include <thread>

#include "src/common/backoff.h"
#include "src/common/cpu.h"
#include "src/common/stats.h"
#include "src/obs/telemetry.h"

namespace cortenmm {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

BravoTable& BravoTable::Instance() {
  static BravoTable table;
  return table;
}

std::atomic<const BravoRwLock*>& BravoTable::SlotFor(const BravoRwLock* lock) {
  // Mix the lock address and the CPU id so concurrent readers of the same lock
  // land in different slots while a given (lock, thread) pair is stable.
  uint64_t h = reinterpret_cast<uint64_t>(lock) >> 4;
  h ^= static_cast<uint64_t>(CurrentCpu()) * 0x9e3779b97f4a7c15ull;
  h ^= h >> 29;
  return slots_[h % kSlots];
}

BravoRwLock::ReadCookie BravoRwLock::ReadLock() {
  if (rbias_.load(std::memory_order_acquire)) {
    std::atomic<const BravoRwLock*>& slot = BravoTable::Instance().SlotFor(this);
    const BravoRwLock* expected = nullptr;
    if (slot.compare_exchange_strong(expected, this, std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
      // Re-check the bias: a writer may have revoked it between the load and
      // the publish; if so, fall back (the writer's scan will see us clear).
      if (rbias_.load(std::memory_order_acquire)) {
        return ReadCookie::kFastPath;
      }
      slot.store(nullptr, std::memory_order_release);
    }
  }
  underlying_.ReadLock();
  // Consider re-arming the bias once the inhibition window has passed.
  if (!rbias_.load(std::memory_order_relaxed) &&
      NowNanos() >= inhibit_until_ns_.load(std::memory_order_relaxed)) {
    rbias_.store(true, std::memory_order_release);
  }
  return ReadCookie::kUnderlying;
}

void BravoRwLock::ReadUnlock(ReadCookie cookie) {
  if (cookie == ReadCookie::kFastPath) {
    std::atomic<const BravoRwLock*>& slot = BravoTable::Instance().SlotFor(this);
    slot.store(nullptr, std::memory_order_release);
    return;
  }
  underlying_.ReadUnlock();
}

void BravoRwLock::WriteLock() {
  underlying_.WriteLock();
  if (rbias_.load(std::memory_order_acquire)) {
    // Revoke: no new fast-path readers can start (they re-check rbias); wait
    // for published ones to drain.
    rbias_.store(false, std::memory_order_release);
    // StoreLoad fence: the revocation store must be visible to every reader
    // BEFORE the slot scan below reads anything. Without it this is the SB
    // litmus shape — on x86-TSO the scan loads may complete while rbias=false
    // still sits in this core's store buffer, so a reader can CAS its slot
    // after the scan passed it, re-check rbias, read the stale `true`, and
    // run its fast path inside our write critical section. Found by the
    // model checker (MakeBravoRevokeLitmus in src/verif/litmus_model.cc;
    // litmus_test.cc keeps BravoVariant::kNoFence as the regression).
    std::atomic_thread_fence(std::memory_order_seq_cst);
    uint64_t scan_start = NowNanos();
    BravoTable& table = BravoTable::Instance();
    SpinBackoff backoff;
    for (int i = 0; i < BravoTable::kSlots; ++i) {
      while (table.SlotAt(i).load(std::memory_order_acquire) == this) {
        backoff.Spin();
      }
    }
    // Inhibit re-biasing for N x the revocation cost (N = 9, as in the BRAVO
    // paper), so write-heavy phases amortize the table scan away.
    uint64_t scan_end = NowNanos();
    inhibit_until_ns_.store(scan_end + 9 * (scan_end - scan_start + 1),
                            std::memory_order_relaxed);
    CountEvent(Counter::kBravoSlowdowns);
    Telemetry::Instance().RecordPhase(LockPhase::kBravoRevocation,
                                      scan_end - scan_start);
    Telemetry::Instance().Trace(TraceKind::kBravoRevoke, scan_end - scan_start);
  }
}

void BravoRwLock::WriteUnlock() { underlying_.WriteUnlock(); }

}  // namespace cortenmm
