#include "src/sync/rcu.h"

#include <cassert>

#include "src/common/backoff.h"
#include "src/common/stats.h"
#include "src/obs/telemetry.h"

namespace cortenmm {
namespace {

thread_local int tls_read_depth = 0;

}  // namespace

Rcu& Rcu::Instance() {
  static Rcu rcu;
  return rcu;
}

void Rcu::ReadLock() {
  if (tls_read_depth++ == 0) {
    uint64_t e = epoch_.load(std::memory_order_acquire);
    reader_epoch_[CurrentCpu()].value.store(e, std::memory_order_seq_cst);
    // Re-read the epoch: if it moved while we were publishing, republish the
    // newer value so Synchronize() never waits on us spuriously... the stale
    // (smaller) value is the conservative one, so keeping it is also correct.
  }
}

void Rcu::ReadUnlock() {
  assert(tls_read_depth > 0);
  if (--tls_read_depth == 0) {
    reader_epoch_[CurrentCpu()].value.store(kInactive, std::memory_order_release);
  }
}

bool Rcu::InReadSection() const { return tls_read_depth > 0; }

uint64_t Rcu::MinActiveEpoch() const {
  uint64_t min_epoch = ~0ull;
  int n = OnlineCpuCount();
  for (int cpu = 0; cpu < n && cpu < kMaxCpus; ++cpu) {
    uint64_t e = reader_epoch_[cpu].value.load(std::memory_order_seq_cst);
    if (e != kInactive && e < min_epoch) {
      min_epoch = e;
    }
  }
  return min_epoch;
}

void Rcu::Synchronize() {
  ScopedPhaseTimer telemetry_timer(LockPhase::kRcuSynchronize);
  uint64_t target = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  SpinBackoff backoff;
  while (MinActiveEpoch() < target) {
    backoff.Spin();
  }
}

void Rcu::Retire(void* obj, void (*deleter)(void*)) {
  int cpu = CurrentCpu();
  uint64_t e = epoch_.load(std::memory_order_acquire);
  bool drain = false;
  {
    RetireList& list = retired_[cpu].value;
    SpinGuard guard(list.lock);
    list.items.push_back(Retired{obj, deleter, e});
    drain = list.items.size() >= kDrainThreshold;
  }
  CountEvent(Counter::kRcuRetired);
  if (drain) {
    // Advance the epoch so the just-retired batch can eventually clear.
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    DrainCpu(cpu, MinActiveEpoch());
  }
}

void Rcu::DrainCpu(int cpu, uint64_t min_active) {
  std::vector<Retired> ready;
  {
    RetireList& list = retired_[cpu].value;
    SpinGuard guard(list.lock);
    size_t keep = 0;
    for (size_t i = 0; i < list.items.size(); ++i) {
      // Safe once every active reader started strictly after the retirement
      // epoch: such readers can no longer reach the unlinked object.
      if (list.items[i].epoch < min_active) {
        ready.push_back(list.items[i]);
      } else {
        list.items[keep++] = list.items[i];
      }
    }
    list.items.resize(keep);
  }
  for (const Retired& r : ready) {
    r.deleter(r.obj);
    CountEvent(Counter::kRcuFreed);
  }
}

void Rcu::DrainAll() {
  // One full grace period makes everything retired before this call ready.
  Synchronize();
  uint64_t min_active = MinActiveEpoch();
  int n = OnlineCpuCount();
  for (int cpu = 0; cpu < n && cpu < kMaxCpus; ++cpu) {
    DrainCpu(cpu, min_active);
  }
}

size_t Rcu::PendingCount() {
  size_t total = 0;
  int n = OnlineCpuCount();
  for (int cpu = 0; cpu < n && cpu < kMaxCpus; ++cpu) {
    RetireList& list = retired_[cpu].value;
    SpinGuard guard(list.lock);
    total += list.items.size();
  }
  return total;
}

}  // namespace cortenmm
