// Sequence counter for optimistic read validation. The Linux-baseline MM uses
// this to reproduce per-VMA speculative page-fault handling (vm_lock_seq in
// the paper's Figure 2).
//
// Weak-memory audit (PR 9): TSO-safe as written, model-checked by
// MakeSeqCountLitmus (src/verif/litmus_model.cc). The reader side is
// loads-only and the writer's WriteBegin/WriteEnd are RMWs, which drain the
// x86 store buffer — so a validated snapshot (same even sequence before and
// after) can never span a writer's buffered data stores. The fetch_add
// increments are load-bearing twice over: demoting them to load;add;store
// lets two writers interleave and a reader validate torn data (the
// SeqCountVariant::kNonAtomicWriterIncrement litmus regression, reachable
// already under SC).
#ifndef SRC_SYNC_SEQLOCK_H_
#define SRC_SYNC_SEQLOCK_H_

#include <atomic>
#include <cstdint>

#include "src/common/backoff.h"
#include "src/obs/telemetry.h"

namespace cortenmm {

class SeqCount {
 public:
  // Reader side: snapshot before reading protected fields. The common case
  // (no writer) is one acquire load; waiting out a writer spins with bounded
  // backoff — the host may have far fewer hardware threads than simulated
  // CPUs, so a raw busy-wait could monopolize the writer's core — and the
  // wait is recorded into the lock-phase telemetry.
  uint32_t ReadBegin() const {
    uint32_t seq = seq_.load(std::memory_order_acquire);
    if ((seq & 1) == 0) {
      return seq;
    }
    ScopedPhaseTimer wait_timer(LockPhase::kSeqlockWait);
    SpinBackoff backoff;
    do {
      backoff.Spin();
      seq = seq_.load(std::memory_order_acquire);
    } while (seq & 1);
    return seq;
  }

  // Returns true if the read section observed a consistent snapshot.
  bool ReadValidate(uint32_t snapshot) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return seq_.load(std::memory_order_relaxed) == snapshot;
  }

  // Fast check whether the sequence advanced past a snapshot (writer seen).
  bool ChangedSince(uint32_t snapshot) const {
    return seq_.load(std::memory_order_acquire) != snapshot;
  }

  void WriteBegin() { seq_.fetch_add(1, std::memory_order_acq_rel); }
  void WriteEnd() { seq_.fetch_add(1, std::memory_order_acq_rel); }

  uint32_t raw() const { return seq_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint32_t> seq_{0};
};

}  // namespace cortenmm

#endif  // SRC_SYNC_SEQLOCK_H_
