#include "src/sync/cna_lock.h"

#include <memory>
#include <mutex>
#include <vector>

#include "src/common/backoff.h"
#include "src/common/stats.h"
#include "src/common/topology.h"

namespace cortenmm {

namespace {
// Spin iterations before a waiter parks in spin.wait(). Short: the point of
// the park path is to exist (and be model-checked); the spin phase only
// absorbs sub-microsecond handoffs.
constexpr int kSpinsBeforePark = 256;
}  // namespace

void CnaLock::Lock(CnaNode* node) {
  node->next.store(nullptr, std::memory_order_relaxed);
  node->spin.store(0, std::memory_order_relaxed);
  node->sec_tail.store(nullptr, std::memory_order_relaxed);
  node->parked.store(0, std::memory_order_relaxed);
  node->numa_node = CurrentNode();
  CnaNode* prev = tail_.exchange(node, std::memory_order_acq_rel);
  if (prev == nullptr) {
    // Uncontended: we hold the lock with an empty secondary queue.
    node->spin.store(kGrantNoSec, std::memory_order_relaxed);
    return;
  }
  prev->next.store(node, std::memory_order_release);
  SpinBackoff backoff;
  for (int i = 0; i < kSpinsBeforePark; ++i) {
    if (node->spin.load(std::memory_order_acquire) != 0) {
      return;
    }
    backoff.Spin();
  }
  // Park. The parked store must be visible BEFORE the spin recheck executes
  // (StoreLoad) or the granter's skip-notify races us to sleep: granter
  // stores spin then loads parked, we store parked then load spin — the SB
  // shape where TSO lets both loads read 0 and the wakeup is lost. The
  // cna-handoff litmus pins this fence (CnaVariant::kNoFence fails kTSO).
  for (;;) {
    node->parked.store(1, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (node->spin.load(std::memory_order_acquire) != 0) {
      node->parked.store(0, std::memory_order_relaxed);
      return;
    }
    node->spin.wait(0, std::memory_order_acquire);
    if (node->spin.load(std::memory_order_acquire) != 0) {
      node->parked.store(0, std::memory_order_relaxed);
      return;
    }
    // Spurious wake (stale notify from a recycled node): park again.
  }
}

bool CnaLock::TryLock(CnaNode* node) {
  node->next.store(nullptr, std::memory_order_relaxed);
  node->sec_tail.store(nullptr, std::memory_order_relaxed);
  node->parked.store(0, std::memory_order_relaxed);
  node->numa_node = CurrentNode();
  node->spin.store(kGrantNoSec, std::memory_order_relaxed);
  CnaNode* expected = nullptr;
  return tail_.compare_exchange_strong(expected, node, std::memory_order_acq_rel,
                                       std::memory_order_relaxed);
}

void CnaLock::Grant(CnaNode* succ, uintptr_t value) {
  succ->spin.store(value, std::memory_order_release);
  // StoreLoad between the grant and the parked check — the granter half of
  // the SB shape documented in Lock(). |succ| stays valid afterwards because
  // pool nodes are immortal.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (succ->parked.load(std::memory_order_acquire) != 0) {
    succ->spin.notify_one();
  }
}

CnaNode* CnaLock::WaitForNext(CnaNode* node) {
  CnaNode* next;
  SpinBackoff backoff;
  while ((next = node->next.load(std::memory_order_acquire)) == nullptr) {
    backoff.Spin();
  }
  return next;
}

CnaNode* CnaLock::FindLocalSuccessor(CnaNode* from, int my_node,
                                     CnaNode** skipped_first,
                                     CnaNode** skipped_last,
                                     uint64_t* skipped_count) {
  *skipped_first = nullptr;
  *skipped_last = nullptr;
  *skipped_count = 0;
  CnaNode* cur = from;
  CnaNode* last_remote = nullptr;
  uint64_t count = 0;
  while (cur != nullptr) {
    if (cur->numa_node == my_node) {
      if (last_remote != nullptr) {
        *skipped_first = from;
        *skipped_last = last_remote;
        *skipped_count = count;
      }
      return cur;
    }
    last_remote = cur;
    ++count;
    // A null next here may just mean the enqueuer has not linked yet; treat
    // it as end-of-queue — the handoff falls back to the direct successor,
    // which is always correct, just not node-optimal.
    cur = cur->next.load(std::memory_order_acquire);
  }
  return nullptr;
}

void CnaLock::Unlock(CnaNode* node) {
  // Our own spin value carries the secondary queue we inherited (if any).
  CnaNode* sec_head = SecHead(node->spin.load(std::memory_order_relaxed));
  CnaNode* succ = node->next.load(std::memory_order_acquire);
  if (succ == nullptr) {
    if (sec_head == nullptr) {
      batch_ = 0;
      CnaNode* expected = node;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        return;  // No waiter anywhere.
      }
      succ = WaitForNext(node);
    } else {
      // Main queue drained but remote waiters are parked on the secondary:
      // re-install them as the main queue by swinging the tail to their end.
      CnaNode* sec_tail = sec_head->sec_tail.load(std::memory_order_relaxed);
      batch_ = 0;
      CnaNode* expected = node;
      if (tail_.compare_exchange_strong(expected, sec_tail,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        CountEvent(Counter::kCnaSecondaryFlushes);
        Grant(sec_head, kGrantNoSec);
        return;
      }
      // An enqueue beat the CAS; splice the secondary in front of it below.
      succ = WaitForNext(node);
    }
  }

  if (sec_head != nullptr && batch_ >= kBatchBound) {
    // Fairness bound hit: the parked remotes go FIRST, ahead of the main
    // queue, so a remote node is delayed by at most kBatchBound handoffs.
    CnaNode* sec_tail = sec_head->sec_tail.load(std::memory_order_relaxed);
    sec_tail->next.store(succ, std::memory_order_relaxed);
    batch_ = 0;
    CountEvent(Counter::kCnaSecondaryFlushes);
    Grant(sec_head, kGrantNoSec);
    return;
  }

  CnaNode* skipped_first = nullptr;
  CnaNode* skipped_last = nullptr;
  uint64_t skipped_count = 0;
  CnaNode* local = FindLocalSuccessor(succ, node->numa_node, &skipped_first,
                                      &skipped_last, &skipped_count);
  if (local == nullptr) {
    // No same-node waiter visible. Hand off to the oldest waiter overall:
    // the secondary queue (strictly older than the main queue) first.
    batch_ = 0;
    if (sec_head != nullptr) {
      CnaNode* sec_tail = sec_head->sec_tail.load(std::memory_order_relaxed);
      sec_tail->next.store(succ, std::memory_order_relaxed);
      CountEvent(Counter::kCnaSecondaryFlushes);
      Grant(sec_head, kGrantNoSec);
    } else {
      Grant(succ, kGrantNoSec);
    }
    return;
  }

  if (skipped_first != nullptr) {
    // Detach the remote prefix from the main queue onto the secondary queue
    // (they keep their relative order; sec_tail tracks the append point).
    skipped_last->next.store(nullptr, std::memory_order_relaxed);
    CountEvent(Counter::kCnaSecondaryEnqueues, skipped_count);
    if (sec_head == nullptr) {
      sec_head = skipped_first;
      sec_head->sec_tail.store(skipped_last, std::memory_order_relaxed);
    } else {
      CnaNode* sec_tail = sec_head->sec_tail.load(std::memory_order_relaxed);
      sec_tail->next.store(skipped_first, std::memory_order_relaxed);
      sec_head->sec_tail.store(skipped_last, std::memory_order_relaxed);
    }
  }

  if (sec_head != nullptr) {
    // Same-node handoff past parked remote waiters: the CNA win.
    ++batch_;
    CountEvent(Counter::kCnaBatchedHandoffs);
    Grant(local, reinterpret_cast<uintptr_t>(sec_head));
  } else {
    Grant(local, kGrantNoSec);
  }
}

// --- CnaNodePool -------------------------------------------------------------

namespace {

constexpr size_t kCnaChunkNodes = 64;

// Chunks are allocated once and intentionally never freed (see the header:
// the post-grant parked check may touch a node after its owner released it,
// so node storage must outlive every thread). A thread's unused nodes move
// to this global free list at thread exit instead of leaking.
std::mutex g_cna_orphan_mu;
std::vector<CnaNode*> g_cna_orphans;

// Owns every chunk ever allocated. Heap-allocated and never destroyed (so
// node addresses stay valid through static destruction), but reachable from
// this static pointer so LeakSanitizer does not flag the chunks.
std::vector<std::unique_ptr<CnaNode[]>>& CnaChunkRegistry() {
  static auto* chunks = new std::vector<std::unique_ptr<CnaNode[]>>();
  return *chunks;
}

struct CnaPool {
  std::vector<CnaNode*> free_nodes;
  ~CnaPool() {
    std::lock_guard<std::mutex> guard(g_cna_orphan_mu);
    g_cna_orphans.insert(g_cna_orphans.end(), free_nodes.begin(),
                         free_nodes.end());
  }
};

thread_local CnaPool tls_cna_pool;

}  // namespace

// Note: nodes must be returned on the thread that obtained them (an RCursor
// is used by a single thread, so this holds throughout the repository).
CnaNode* CnaNodePool::Get() {
  CnaPool& pool = tls_cna_pool;
  if (pool.free_nodes.empty()) {
    {
      std::lock_guard<std::mutex> guard(g_cna_orphan_mu);
      if (g_cna_orphans.size() >= kCnaChunkNodes) {
        pool.free_nodes.assign(g_cna_orphans.end() - kCnaChunkNodes,
                               g_cna_orphans.end());
        g_cna_orphans.resize(g_cna_orphans.size() - kCnaChunkNodes);
      }
    }
    if (pool.free_nodes.empty()) {
      CnaNode* chunk;
      {
        std::lock_guard<std::mutex> guard(g_cna_orphan_mu);
        CnaChunkRegistry().push_back(std::make_unique<CnaNode[]>(kCnaChunkNodes));
        chunk = CnaChunkRegistry().back().get();
      }
      pool.free_nodes.reserve(kCnaChunkNodes);
      for (size_t i = 0; i < kCnaChunkNodes; ++i) {
        pool.free_nodes.push_back(&chunk[i]);
      }
    }
  }
  CnaNode* node = pool.free_nodes.back();
  pool.free_nodes.pop_back();
  return node;
}

void CnaNodePool::Put(CnaNode* node) { tls_cna_pool.free_nodes.push_back(node); }

}  // namespace cortenmm
