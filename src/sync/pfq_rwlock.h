// Phase-fair reader-writer lock (PF-T of Brandenburg & Anderson, "Spin-Based
// Reader-Writer Synchronization for Multiprocessor Real-Time Systems").
// CortenMM_rw stores one of these per PT page (paper §4.5: "BRAVO-pfqlock").
//
// Phase fairness: reader and writer phases alternate, so neither side starves;
// an arriving reader only waits for *one* writer phase, an arriving writer for
// at most one reader phase plus earlier writers.
#ifndef SRC_SYNC_PFQ_RWLOCK_H_
#define SRC_SYNC_PFQ_RWLOCK_H_

#include <atomic>
#include <cstdint>

#include "src/common/backoff.h"

namespace cortenmm {

class PfqRwLock {
 public:
  PfqRwLock() = default;
  PfqRwLock(const PfqRwLock&) = delete;
  PfqRwLock& operator=(const PfqRwLock&) = delete;

  void ReadLock() {
    // Announce the reader; the low bits carry the current writer phase.
    uint32_t w = rin_.fetch_add(kReaderInc, std::memory_order_acq_rel) & kWriterBits;
    // Wait only while the *same* writer phase is still present.
    SpinBackoff backoff;
    while (w != 0 && w == (rin_.load(std::memory_order_acquire) & kWriterBits)) {
      backoff.Spin();
    }
  }

  void ReadUnlock() { rout_.fetch_add(kReaderInc, std::memory_order_acq_rel); }

  void WriteLock() {
    // Writer-writer mutual exclusion via tickets.
    uint32_t ticket = win_.fetch_add(1, std::memory_order_acq_rel);
    SpinBackoff backoff;
    while (wout_.load(std::memory_order_acquire) != ticket) {
      backoff.Spin();
    }
    // Block new readers: publish presence + phase id in rin's low bits.
    uint32_t w = kWriterPresent | (ticket & kPhaseId);
    uint32_t readers = rin_.fetch_add(w, std::memory_order_acq_rel) & ~kWriterBits;
    // Wait for readers that arrived before us to drain.
    backoff.Reset();
    while ((rout_.load(std::memory_order_acquire) & ~kWriterBits) != readers) {
      backoff.Spin();
    }
  }

  void WriteUnlock() {
    // Clear the writer bits in rin, releasing blocked readers, then pass the
    // writer baton.
    rin_.fetch_and(~kWriterBits, std::memory_order_acq_rel);
    wout_.fetch_add(1, std::memory_order_acq_rel);
  }

  // Best-effort: true if a writer currently holds or waits for the lock.
  bool HasWriterHint() const {
    return (rin_.load(std::memory_order_relaxed) & kWriterBits) != 0;
  }

 private:
  static constexpr uint32_t kPhaseId = 0x1;
  static constexpr uint32_t kWriterPresent = 0x2;
  static constexpr uint32_t kWriterBits = kPhaseId | kWriterPresent;
  static constexpr uint32_t kReaderInc = 0x4;

  std::atomic<uint32_t> rin_{0};
  std::atomic<uint32_t> rout_{0};
  std::atomic<uint32_t> win_{0};
  std::atomic<uint32_t> wout_{0};
};

}  // namespace cortenmm

#endif  // SRC_SYNC_PFQ_RWLOCK_H_
