// MCS queue lock (Mellor-Crummey & Scott, TOCS'91). CortenMM_adv uses this as
// the mutually-exclusive per-PT-page spin lock (paper §4.5): each waiter spins
// on its own queue node, so contended acquisition generates no global cache
// traffic and hand-off is FIFO-fair.
//
// The caller owns the queue node and must keep it alive (and at a stable
// address) from Lock() until Unlock(). RCursor keeps one node per locked PT
// page in a std::deque, whose elements never move.
//
// Weak-memory audit (PR 9): TSO-safe as written, model-checked by
// MakeMcsHandoffLitmus (src/verif/litmus_model.cc). Every cross-thread
// ordering edge runs through an RMW (the tail exchange, the unlock CAS) or a
// spin that only exits once the releasing store is committed, so the store
// buffer cannot reorder anything observable. The tail exchange being a single
// RMW is the load-bearing ingredient: the McsVariant::kNonAtomicTailSwap
// litmus regression demotes it to a load-then-store and both threads enter
// the critical section (already under SC).
#ifndef SRC_SYNC_MCS_LOCK_H_
#define SRC_SYNC_MCS_LOCK_H_

#include <atomic>
#include <cassert>

#include "src/common/backoff.h"

namespace cortenmm {

struct McsNode {
  std::atomic<McsNode*> next{nullptr};
  std::atomic<bool> locked{false};
};

class McsLock {
 public:
  McsLock() = default;
  McsLock(const McsLock&) = delete;
  McsLock& operator=(const McsLock&) = delete;

  void Lock(McsNode* node) {
    node->next.store(nullptr, std::memory_order_relaxed);
    node->locked.store(true, std::memory_order_relaxed);
    McsNode* prev = tail_.exchange(node, std::memory_order_acq_rel);
    if (prev == nullptr) {
      return;  // Uncontended.
    }
    prev->next.store(node, std::memory_order_release);
    SpinBackoff backoff;
    while (node->locked.load(std::memory_order_acquire)) {
      backoff.Spin();
    }
  }

  bool TryLock(McsNode* node) {
    node->next.store(nullptr, std::memory_order_relaxed);
    node->locked.store(false, std::memory_order_relaxed);
    McsNode* expected = nullptr;
    return tail_.compare_exchange_strong(expected, node, std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }

  void Unlock(McsNode* node) {
    McsNode* successor = node->next.load(std::memory_order_acquire);
    if (successor == nullptr) {
      McsNode* expected = node;
      if (tail_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        return;  // No waiter.
      }
      // A waiter is in the middle of enqueueing; wait for the link.
      SpinBackoff backoff;
      while ((successor = node->next.load(std::memory_order_acquire)) == nullptr) {
        backoff.Spin();
      }
    }
    successor->locked.store(false, std::memory_order_release);
  }

  bool IsLockedHint() const { return tail_.load(std::memory_order_relaxed) != nullptr; }

 private:
  std::atomic<McsNode*> tail_{nullptr};
};

// A per-thread pool of MCS queue nodes with stable addresses. An RCursor may
// hold one node per locked PT page; pooling avoids a heap allocation per
// transaction while keeping node addresses stable across cursor moves (the
// pool owns the storage, the cursor only holds pointers).
class McsNodePool {
 public:
  static McsNode* Get();
  static void Put(McsNode* node);
};

}  // namespace cortenmm

#endif  // SRC_SYNC_MCS_LOCK_H_
