// Compact NUMA-aware queue lock (Dice & Kogan, EuroSys'19), the CNA upgrade
// of the MCS lock CortenMM_adv uses for its per-PT-page subtree locks and the
// ring flat-combining drain. Like MCS, each waiter spins on its own queue
// node; unlike MCS, the unlocker prefers handing off to the first waiter from
// its OWN NUMA node, detaching the remote waiters it skips onto a *secondary
// queue* that stays parked while the lock circulates within the node (the
// cache line holding the lock state never crosses the socket interconnect).
// A bounded batch count (kBatchBound consecutive same-node handoffs) flushes
// the secondary queue back to the front of the main queue, so remote waiters
// are delayed but never starved.
//
// Node ownership: nodes MUST come from CnaNodePool (immortal storage). The
// unlocker touches the successor's node *after* the grant store — the
// StoreLoad-fenced `parked` check that makes the futex-style skip-notify
// optimization safe — so a node on a stack frame that pops when Lock()
// returns would be a use-after-free. Pool chunks are never deallocated; a
// straggling post-grant touch lands on valid (possibly recycled) memory,
// where the worst outcome is a spurious wakeup the waiter's recheck absorbs.
//
// Weak-memory audit: the queue handoff edges are the same RMW/spin shapes as
// MCS (TSO-safe, see mcs_lock.h). The NEW ordering obligation is the park/
// wake protocol: the waiter stores `parked=1` then loads `spin`; the granter
// stores `spin=grant` then loads `parked` (skipping the notify when it reads
// 0). That is a store-buffering (SB) shape on BOTH sides — without the
// seq_cst fences, TSO lets both loads read 0 and the wakeup is lost while
// the waiter sleeps. Model-checked by MakeCnaHandoffLitmus
// (src/verif/litmus_model.cc); CnaVariant::kNoFence keeps the TSO
// counterexample as the regression.
#ifndef SRC_SYNC_CNA_LOCK_H_
#define SRC_SYNC_CNA_LOCK_H_

#include <atomic>
#include <cstdint>

#include "src/common/cpu.h"

namespace cortenmm {

struct CnaNode {
  std::atomic<CnaNode*> next{nullptr};
  // 0 = waiting. kGrantNoSec = lock granted, empty secondary queue. Any
  // other value = lock granted, value is the inherited secondary-queue head.
  std::atomic<uintptr_t> spin{0};
  // Tail of the secondary queue; meaningful only on a secondary head, and
  // only read/written by the current lock holder.
  std::atomic<CnaNode*> sec_tail{nullptr};
  // Set (with a StoreLoad fence) before the waiter blocks in spin.wait();
  // the granter only notifies when it reads 1.
  std::atomic<uint32_t> parked{0};
  // Home NUMA node, captured at enqueue time.
  int numa_node = -1;
};

class CnaLock {
 public:
  // Consecutive same-node handoffs allowed before the secondary queue is
  // force-flushed (long-term fairness bound; Dice & Kogan use a probabilistic
  // 1/256 flush, a deterministic bound model-checks and tests better).
  static constexpr uint32_t kBatchBound = 32;

  CnaLock() = default;
  CnaLock(const CnaLock&) = delete;
  CnaLock& operator=(const CnaLock&) = delete;

  void Lock(CnaNode* node);
  bool TryLock(CnaNode* node);
  void Unlock(CnaNode* node);

  bool IsLockedHint() const {
    return tail_.load(std::memory_order_relaxed) != nullptr;
  }

 private:
  static constexpr uintptr_t kGrantNoSec = 1;

  static CnaNode* SecHead(uintptr_t spin_value) {
    return spin_value > kGrantNoSec ? reinterpret_cast<CnaNode*>(spin_value)
                                    : nullptr;
  }

  // Hands the lock to |succ|, encoding the secondary queue head in the spin
  // value, then runs the fenced skip-notify protocol.
  void Grant(CnaNode* succ, uintptr_t value);
  // A successor is mid-enqueue (tail swung, link not yet stored): wait.
  CnaNode* WaitForNext(CnaNode* node);
  // First waiter on |my_node| reachable from |from|; the skipped remote
  // prefix (if any) is returned via |skipped_first|/|skipped_last|.
  static CnaNode* FindLocalSuccessor(CnaNode* from, int my_node,
                                     CnaNode** skipped_first,
                                     CnaNode** skipped_last,
                                     uint64_t* skipped_count);

  std::atomic<CnaNode*> tail_{nullptr};
  // Holder-owned (plain field): every write happens between acquiring and
  // releasing the lock, and the grant's release store / the next holder's
  // acquire load order it.
  uint32_t batch_ = 0;
};

// A pool of CNA queue nodes with stable, IMMORTAL addresses (chunks are
// allocated once and never freed; a thread's unused nodes migrate to a global
// free list at thread exit). Required by the post-grant parked check above.
class CnaNodePool {
 public:
  static CnaNode* Get();
  static void Put(CnaNode* node);
};

}  // namespace cortenmm

#endif  // SRC_SYNC_CNA_LOCK_H_
