// Test-and-test-and-set spin lock with bounded backoff. Used for cold-path
// structures (buddy free lists, file registries); the page-table hot path
// uses the MCS and phase-fair locks instead (paper §4.5 "Locks").
#ifndef SRC_SYNC_SPINLOCK_H_
#define SRC_SYNC_SPINLOCK_H_

#include <atomic>

#include "src/common/backoff.h"

namespace cortenmm {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Lock() {
    SpinBackoff backoff;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      while (locked_.load(std::memory_order_relaxed)) {
        backoff.Spin();
      }
    }
  }

  bool TryLock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void Unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

// RAII guard.
class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinGuard() { lock_.Unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace cortenmm

#endif  // SRC_SYNC_SPINLOCK_H_
