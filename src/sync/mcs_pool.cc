#include <memory>
#include <vector>

#include "src/sync/mcs_lock.h"

namespace cortenmm {
namespace {

constexpr size_t kChunkNodes = 64;

struct Pool {
  std::vector<McsNode*> free_nodes;
  std::vector<std::unique_ptr<McsNode[]>> chunks;
};

thread_local Pool tls_pool;

}  // namespace

// Note: nodes must be returned on the thread that obtained them (an RCursor
// is used by a single thread, so this holds throughout the repository).
McsNode* McsNodePool::Get() {
  Pool& pool = tls_pool;
  if (pool.free_nodes.empty()) {
    pool.chunks.push_back(std::make_unique<McsNode[]>(kChunkNodes));
    McsNode* chunk = pool.chunks.back().get();
    pool.free_nodes.reserve(pool.free_nodes.size() + kChunkNodes);
    for (size_t i = 0; i < kChunkNodes; ++i) {
      pool.free_nodes.push_back(&chunk[i]);
    }
  }
  McsNode* node = pool.free_nodes.back();
  pool.free_nodes.pop_back();
  return node;
}

void McsNodePool::Put(McsNode* node) { tls_pool.free_nodes.push_back(node); }

}  // namespace cortenmm
