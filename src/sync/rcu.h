// Epoch-based RCU with deferred reclamation. CortenMM_adv wraps its lock-free
// page-table traversal in a read-side critical section and retires unmapped PT
// pages to the "RCU monitor" (paper §4.1, Figure 7); a retired page is freed
// only once no reader that could still reach it remains.
//
// This is a quiescent-epoch scheme analogous to the paper's "simple
// preemption-based RCU": entering a read-side section publishes the thread's
// start epoch; Synchronize() advances the global epoch and waits until every
// active reader started at or after it.
#ifndef SRC_SYNC_RCU_H_
#define SRC_SYNC_RCU_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/cpu.h"
#include "src/sync/spinlock.h"

namespace cortenmm {

class Rcu {
 public:
  static Rcu& Instance();

  // Read-side critical section. Nestable; only the outermost pair publishes.
  void ReadLock();
  void ReadUnlock();
  bool InReadSection() const;

  uint64_t CurrentEpoch() const { return epoch_.load(std::memory_order_acquire); }

  // Classic grace-period wait: returns once every read-side critical section
  // that was in flight at the time of the call has ended.
  void Synchronize();

  // Defers `deleter(obj)` until no read-side critical section that may have
  // observed `obj` remains. Reclamation is amortized: every kDrainThreshold
  // retirements on a CPU trigger a drain of that CPU's retired list.
  void Retire(void* obj, void (*deleter)(void*));

  // Frees every retired object whose grace period has elapsed. Called
  // automatically from Retire; exposed for tests and for quiescing between
  // benchmark phases.
  void DrainAll();

  // Test support: number of objects retired but not yet freed.
  size_t PendingCount();

 private:
  static constexpr int kDrainThreshold = 64;
  static constexpr uint64_t kInactive = 0;

  struct Retired {
    void* obj;
    void (*deleter)(void*);
    uint64_t epoch;  // Global epoch at retirement time.
  };

  struct RetireList {
    SpinLock lock;
    std::vector<Retired> items;
  };

  // The earliest epoch any active reader started in, or ~0 if none active.
  uint64_t MinActiveEpoch() const;

  void DrainCpu(int cpu, uint64_t min_active);

  std::atomic<uint64_t> epoch_{1};
  // Per-CPU reader state: 0 when quiescent, else the reader's start epoch.
  CacheAligned<std::atomic<uint64_t>> reader_epoch_[kMaxCpus];
  CacheAligned<RetireList> retired_[kMaxCpus];
};

// RAII read-side section.
class RcuReadGuard {
 public:
  RcuReadGuard() { Rcu::Instance().ReadLock(); }
  ~RcuReadGuard() { Rcu::Instance().ReadUnlock(); }
  RcuReadGuard(const RcuReadGuard&) = delete;
  RcuReadGuard& operator=(const RcuReadGuard&) = delete;
};

}  // namespace cortenmm

#endif  // SRC_SYNC_RCU_H_
