// Target ISA selection for the MMU format. All supported ISAs use a 4-level
// radix-tree page table with 512 entries per level — the uniformity CortenMM's
// single-level-abstraction design rests on (§3.2, §4.4). The per-arch code is
// confined to the PTE codec in pte_x86.h / pte_riscv.h; everything above it is
// arch-neutral, mirroring how the paper hides ISA differences behind Rust
// traits (Figure 9) and how Table 5 counts the per-ISA porting cost.
#ifndef SRC_PT_ARCH_H_
#define SRC_PT_ARCH_H_

namespace cortenmm {

enum class Arch {
  kX86_64,
  kRiscvSv48,
};

const char* ArchName(Arch arch);

}  // namespace cortenmm

#endif  // SRC_PT_ARCH_H_
