// Bit-exact RISC-V Sv48 PTE encoding. See the RISC-V privileged spec §4.4/4.5.
// The two RSW software bits (8-9) are available; bit 8 carries the
// copy-on-write mark. A present entry with none of R/W/X set is a pointer to
// the next level; any of R/W/X makes it a leaf (possibly a superpage).
#ifndef SRC_PT_PTE_RISCV_H_
#define SRC_PT_PTE_RISCV_H_

#include <cstdint>

#include "src/common/types.h"

namespace cortenmm {

struct RiscvPte {
  static constexpr uint64_t kValid = 1ull << 0;
  static constexpr uint64_t kRead = 1ull << 1;
  static constexpr uint64_t kWrite = 1ull << 2;
  static constexpr uint64_t kExec = 1ull << 3;
  static constexpr uint64_t kUser = 1ull << 4;
  static constexpr uint64_t kGlobal = 1ull << 5;
  static constexpr uint64_t kAccessed = 1ull << 6;
  static constexpr uint64_t kDirty = 1ull << 7;
  static constexpr uint64_t kSoftCow = 1ull << 8;  // RSW bit 0.
  static constexpr int kPpnShift = 10;
  static constexpr uint64_t kPpnMask = ((1ull << 44) - 1) << kPpnShift;  // PPN[3:0].

  static uint64_t MakeTable(Pfn child) {
    // V set, R/W/X clear: next-level pointer.
    return (child << kPpnShift) | kValid;
  }

  static uint64_t MakeLeaf(Pfn pfn, Perm perm, int level) {
    (void)level;  // Superpage-ness is positional in Sv48 (leaf above level 1).
    uint64_t raw = (pfn << kPpnShift) | kValid;
    if (perm.read()) {
      raw |= kRead;
    }
    if (perm.write()) {
      raw |= kWrite;
    }
    if (perm.exec()) {
      raw |= kExec;
    }
    if (perm.user()) {
      raw |= kUser;
    }
    if (perm.cow()) {
      raw |= kSoftCow;
    }
    return raw;
  }

  static bool IsPresent(uint64_t raw) { return (raw & kValid) != 0; }

  static bool IsLeaf(uint64_t raw, int level) {
    (void)level;
    return (raw & (kRead | kWrite | kExec)) != 0;
  }

  static Pfn PfnOf(uint64_t raw) { return (raw & kPpnMask) >> kPpnShift; }

  static Perm PermOf(uint64_t raw) {
    uint8_t bits = 0;
    if (raw & kRead) {
      bits |= Perm::kRead;
    }
    if (raw & kWrite) {
      bits |= Perm::kWrite;
    }
    if (raw & kExec) {
      bits |= Perm::kExec;
    }
    if (raw & kUser) {
      bits |= Perm::kUser;
    }
    if (raw & kSoftCow) {
      bits |= Perm::kCow;
    }
    return Perm(bits);
  }

  static bool Accessed(uint64_t raw) { return (raw & kAccessed) != 0; }
  static bool Dirty(uint64_t raw) { return (raw & kDirty) != 0; }
  static uint64_t WithAccessDirty(uint64_t raw, bool write) {
    return raw | kAccessed | (write ? kDirty : 0);
  }
};

}  // namespace cortenmm

#endif  // SRC_PT_PTE_RISCV_H_
