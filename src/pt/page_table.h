// The hardware page table substrate: PT pages are real frames in the
// simulated physical memory whose 512 uint64 slots are accessed atomically
// (the MMU reads them concurrently with kernel updates, exactly as on real
// hardware). This layer is mechanism only; all locking policy lives in the
// memory managers built on top (CortenMM core and the baselines).
#ifndef SRC_PT_PAGE_TABLE_H_
#define SRC_PT_PAGE_TABLE_H_

#include <atomic>
#include <functional>

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/pt/pte.h"

namespace cortenmm {

class PageTable {
 public:
  // Fallible factory: allocating the root PT page can exhaust physical
  // memory, so fallible paths (fork, replica creation, MakeMm) construct
  // through Create and propagate kNoMem.
  static Result<PageTable> Create(Arch arch);

  // Allocating constructor for call sites that cannot propagate (member
  // initializers, stack-constructed spaces in tests/benches): aborts with a
  // diagnostic on kNoMem — loud, never undefined behavior.
  explicit PageTable(Arch arch);
  // Rootless table: root() is kInvalidPfn and destruction is a no-op. Exists
  // as the moved-from state and so Result<PageTable> can default-construct.
  PageTable() = default;
  ~PageTable();
  PageTable(PageTable&& other) noexcept : arch_(other.arch_), root_(other.root_) {
    other.root_ = kInvalidPfn;
  }
  PageTable& operator=(PageTable&& other) noexcept {
    if (this != &other) {
      this->~PageTable();
      arch_ = other.arch_;
      root_ = other.root_;
      other.root_ = kInvalidPfn;
    }
    return *this;
  }
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  Arch arch() const { return arch_; }
  Pfn root() const { return root_; }

  // --- Raw slot access (atomic; PT pages are shared with the software MMU) --
  Pte LoadEntry(Pfn pt_page, uint64_t index) const;
  void StoreEntry(Pfn pt_page, uint64_t index, Pte pte);
  // Returns true and stores |desired| iff the slot still holds |expected|.
  bool CasEntry(Pfn pt_page, uint64_t index, Pte expected, Pte desired);

  // --- PT page lifecycle ----------------------------------------------------
  // Allocates a zeroed PT page for the given level and tags its descriptor.
  Result<Pfn> AllocPtPage(int level);
  // Frees a PT page (and its metadata array if allocated). The caller must
  // guarantee no walker can still reach it (CortenMM_adv defers through RCU).
  static void FreePtPage(Pfn pt_page);

  // --- Software page walk ----------------------------------------------------
  struct WalkResult {
    bool present = false;  // A leaf mapping covers the address.
    Pte pte;               // The leaf PTE (valid if present).
    int level = 0;         // Level of the leaf (1 = 4K, 2 = 2M, 3 = 1G).
    Pfn pt_page = 0;       // PT page holding the leaf slot.
    uint64_t index = 0;    // Slot index within pt_page.
  };
  // Translates |va| by walking from the root, as the hardware would. Lock-free;
  // concurrent updates may race, in which case the caller (the simulated MMU)
  // simply faults and retries, like real hardware.
  WalkResult Walk(Vaddr va) const;

  // --- Enumeration ------------------------------------------------------------
  // Visits every present *leaf* entry whose span intersects |range|, passing
  // (va, pte, level). Traversal is read-only and lock-free; callers needing a
  // stable view must hold their protocol's locks.
  void ForEachLeaf(VaRange range,
                   const std::function<void(Vaddr, Pte, int)>& visit) const;

  // Visits every PT page in the subtree rooted at |pt_page| (which has
  // |level|), parents after children (post-order), passing (pfn, level).
  void ForEachPtPagePostOrder(Pfn pt_page, int level,
                              const std::function<void(Pfn, int)>& visit) const;

  // Total PT pages reachable from the root (for memory-overhead accounting).
  uint64_t CountPtPages() const;

 private:
  void ForEachLeafIn(Pfn pt_page, int level, Vaddr page_va_base, VaRange range,
                     const std::function<void(Vaddr, Pte, int)>& visit) const;

  Arch arch_ = Arch::kX86_64;
  Pfn root_ = kInvalidPfn;
};

// Index of the slot in the level-|level| PT page covering |va| (re-exported
// from types.h for discoverability next to the page table).
using cortenmm::PtIndex;

}  // namespace cortenmm

#endif  // SRC_PT_PAGE_TABLE_H_
