// Bit-exact x86-64 (IA-32e 4-level paging) PTE encoding. See Intel SDM
// Vol. 3A §4.5. Software-available bits: 9-11 and 52-58; we use bit 9 for the
// copy-on-write mark, exactly the paper's "first unused bit as copy-on-write"
// (Figure 8).
#ifndef SRC_PT_PTE_X86_H_
#define SRC_PT_PTE_X86_H_

#include <cstdint>

#include "src/common/types.h"

namespace cortenmm {

struct X86Pte {
  static constexpr uint64_t kPresent = 1ull << 0;
  static constexpr uint64_t kWrite = 1ull << 1;
  static constexpr uint64_t kUser = 1ull << 2;
  static constexpr uint64_t kAccessed = 1ull << 5;
  static constexpr uint64_t kDirty = 1ull << 6;
  static constexpr uint64_t kHuge = 1ull << 7;  // PS: 2M/1G leaf at levels 2/3.
  static constexpr uint64_t kGlobal = 1ull << 8;
  static constexpr uint64_t kSoftCow = 1ull << 9;  // Software-available.
  static constexpr uint64_t kNx = 1ull << 63;
  static constexpr uint64_t kAddrMask = 0x000ffffffffff000ull;  // Bits 12..51.
  // Intel MPK: the protection key occupies bits 62:59 of leaf entries.
  static constexpr int kPkeyShift = 59;
  static constexpr uint64_t kPkeyMask = 0xfull << kPkeyShift;

  static uint64_t MakeTable(Pfn child) {
    // Non-leaf entries are maximally permissive; leaves enforce permissions.
    return (child << kPageBits) | kPresent | kWrite | kUser;
  }

  static uint64_t MakeLeaf(Pfn pfn, Perm perm, int level) {
    uint64_t raw = (pfn << kPageBits) | kPresent;
    if (perm.write()) {
      raw |= kWrite;
    }
    if (perm.user()) {
      raw |= kUser;
    }
    if (!perm.exec()) {
      raw |= kNx;
    }
    if (perm.cow()) {
      raw |= kSoftCow;
    }
    if (level > 1) {
      raw |= kHuge;
    }
    return raw;
  }

  static bool IsPresent(uint64_t raw) { return (raw & kPresent) != 0; }

  static bool IsLeaf(uint64_t raw, int level) {
    return level == 1 || (raw & kHuge) != 0;
  }

  static Pfn PfnOf(uint64_t raw) { return (raw & kAddrMask) >> kPageBits; }

  static Perm PermOf(uint64_t raw) {
    uint8_t bits = Perm::kRead;  // x86: present implies readable.
    if (raw & kWrite) {
      bits |= Perm::kWrite;
    }
    if (!(raw & kNx)) {
      bits |= Perm::kExec;
    }
    if (raw & kUser) {
      bits |= Perm::kUser;
    }
    if (raw & kSoftCow) {
      bits |= Perm::kCow;
    }
    return Perm(bits);
  }

  static uint64_t WithPkey(uint64_t raw, int pkey) {
    return (raw & ~kPkeyMask) | (static_cast<uint64_t>(pkey & 0xf) << kPkeyShift);
  }
  static int PkeyOf(uint64_t raw) { return static_cast<int>((raw & kPkeyMask) >> kPkeyShift); }

  static bool Accessed(uint64_t raw) { return (raw & kAccessed) != 0; }
  static bool Dirty(uint64_t raw) { return (raw & kDirty) != 0; }
  static uint64_t WithAccessDirty(uint64_t raw, bool write) {
    return raw | kAccessed | (write ? kDirty : 0);
  }
};

}  // namespace cortenmm

#endif  // SRC_PT_PTE_X86_H_
