#include "src/pt/page_table.h"

#include <cassert>
#include <utility>

#include "src/common/stats.h"
#include "src/pmm/buddy.h"
#include "src/pmm/page_desc.h"
#include "src/pmm/phys_mem.h"

namespace cortenmm {
namespace {

std::atomic<uint64_t>* SlotPtr(Pfn pt_page, uint64_t index) {
  assert(index < kPtesPerPage);
  auto* slots =
      reinterpret_cast<std::atomic<uint64_t>*>(PhysMem::Instance().FrameData(pt_page));
  static_assert(sizeof(std::atomic<uint64_t>) == sizeof(uint64_t));
  return &slots[index];
}

}  // namespace

const char* ArchName(Arch arch) {
  switch (arch) {
    case Arch::kX86_64:
      return "x86-64";
    case Arch::kRiscvSv48:
      return "riscv-sv48";
  }
  return "unknown";
}

Result<PageTable> PageTable::Create(Arch arch) {
  PageTable pt;
  pt.arch_ = arch;
  Result<Pfn> root = pt.AllocPtPage(kPtLevels);
  if (!root.ok()) {
    return root.error();
  }
  pt.root_ = *root;
  return pt;
}

PageTable::PageTable(Arch arch) : arch_(arch) {
  // *Create(...) aborts loudly on kNoMem (Result's always-fatal accessor).
  *this = std::move(*Create(arch));
}

PageTable::~PageTable() {
  if (root_ == kInvalidPfn) {
    return;  // Rootless (moved-from or failed Create staging value).
  }
  // Free the whole radix tree. Data frames are the owner's responsibility;
  // only PT pages (and their metadata arrays) are released here.
  ForEachPtPagePostOrder(root_, kPtLevels, [](Pfn pfn, int level) {
    (void)level;
    FreePtPage(pfn);
  });
}

Pte PageTable::LoadEntry(Pfn pt_page, uint64_t index) const {
  return Pte(SlotPtr(pt_page, index)->load(std::memory_order_acquire));
}

void PageTable::StoreEntry(Pfn pt_page, uint64_t index, Pte pte) {
  SlotPtr(pt_page, index)->store(pte.raw, std::memory_order_release);
}

bool PageTable::CasEntry(Pfn pt_page, uint64_t index, Pte expected, Pte desired) {
  uint64_t exp = expected.raw;
  return SlotPtr(pt_page, index)
      ->compare_exchange_strong(exp, desired.raw, std::memory_order_acq_rel,
                                std::memory_order_acquire);
}

Result<Pfn> PageTable::AllocPtPage(int level) {
  assert(level >= 1 && level <= kPtLevels);
  Result<Pfn> frame = BuddyAllocator::Instance().AllocZeroedFrame();
  if (!frame.ok()) {
    return frame;
  }
  PageDescriptor& desc = PhysMem::Instance().Descriptor(*frame);
  desc.type.store(FrameType::kPageTable, std::memory_order_relaxed);
  desc.pt_level = static_cast<uint8_t>(level);
  CountEvent(Counter::kPtPagesAllocated);
  return frame;
}

void PageTable::FreePtPage(Pfn pt_page) {
  PageDescriptor& desc = PhysMem::Instance().Descriptor(pt_page);
  if (PteMetaArray* meta = desc.meta.exchange(nullptr, std::memory_order_acq_rel)) {
    delete meta;
  }
  CountEvent(Counter::kPtPagesFreed);
  BuddyAllocator::Instance().FreeFrame(pt_page);
}

PageTable::WalkResult PageTable::Walk(Vaddr va) const {
  WalkResult result;
  Pfn page = root_;
  for (int level = kPtLevels; level >= 1; --level) {
    uint64_t index = PtIndex(va, level);
    Pte pte = LoadEntry(page, index);
    if (!PteIsPresent(arch_, pte)) {
      result.present = false;
      result.level = level;
      result.pt_page = page;
      result.index = index;
      return result;
    }
    if (PteIsLeaf(arch_, pte, level)) {
      result.present = true;
      result.pte = pte;
      result.level = level;
      result.pt_page = page;
      result.index = index;
      return result;
    }
    page = PtePfn(arch_, pte);
  }
  return result;  // Unreachable: level 1 entries are always leaves.
}

void PageTable::ForEachLeafIn(Pfn pt_page, int level, Vaddr page_va_base, VaRange range,
                              const std::function<void(Vaddr, Pte, int)>& visit) const {
  uint64_t entry_span = PtEntrySpan(level);
  uint64_t first = range.start > page_va_base ? (range.start - page_va_base) / entry_span : 0;
  Vaddr page_va_end = page_va_base + PtPageSpan(level);
  uint64_t last = kPtesPerPage - 1;
  if (range.end < page_va_end) {
    last = (range.end - 1 - page_va_base) / entry_span;
  }
  for (uint64_t i = first; i <= last; ++i) {
    Pte pte = LoadEntry(pt_page, i);
    if (!PteIsPresent(arch_, pte)) {
      continue;
    }
    Vaddr entry_va = page_va_base + i * entry_span;
    if (PteIsLeaf(arch_, pte, level)) {
      visit(entry_va, pte, level);
    } else {
      ForEachLeafIn(PtePfn(arch_, pte), level - 1, entry_va, range, visit);
    }
  }
}

void PageTable::ForEachLeaf(VaRange range,
                            const std::function<void(Vaddr, Pte, int)>& visit) const {
  if (range.empty()) {
    return;
  }
  ForEachLeafIn(root_, kPtLevels, 0, range, visit);
}

void PageTable::ForEachPtPagePostOrder(
    Pfn pt_page, int level, const std::function<void(Pfn, int)>& visit) const {
  if (level > 1) {
    for (uint64_t i = 0; i < kPtesPerPage; ++i) {
      Pte pte = LoadEntry(pt_page, i);
      if (PteIsPresent(arch_, pte) && !PteIsLeaf(arch_, pte, level)) {
        ForEachPtPagePostOrder(PtePfn(arch_, pte), level - 1, visit);
      }
    }
  }
  visit(pt_page, level);
}

uint64_t PageTable::CountPtPages() const {
  uint64_t count = 0;
  ForEachPtPagePostOrder(root_, kPtLevels, [&count](Pfn, int) { ++count; });
  return count;
}

}  // namespace cortenmm
