// Arch-neutral PTE view. A Pte is a raw 64-bit word whose interpretation is
// delegated to the per-ISA codec (pte_x86.h / pte_riscv.h). This is the C++
// analog of the paper's PageTableEntryTrait (Figure 9): all code above this
// header is identical across ISAs.
#ifndef SRC_PT_PTE_H_
#define SRC_PT_PTE_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/pt/arch.h"
#include "src/pt/pte_riscv.h"
#include "src/pt/pte_x86.h"

namespace cortenmm {

struct Pte {
  uint64_t raw = 0;

  constexpr Pte() = default;
  constexpr explicit Pte(uint64_t r) : raw(r) {}

  friend constexpr bool operator==(const Pte&, const Pte&) = default;
};

inline constexpr Pte kNullPte{};

// A PTE pointing to the next-level PT page |child|.
inline Pte MakeTablePte(Arch arch, Pfn child) {
  switch (arch) {
    case Arch::kX86_64:
      return Pte(X86Pte::MakeTable(child));
    case Arch::kRiscvSv48:
      return Pte(RiscvPte::MakeTable(child));
  }
  return kNullPte;
}

// A leaf PTE mapping a (possibly huge) page at the given level.
inline Pte MakeLeafPte(Arch arch, Pfn pfn, Perm perm, int level) {
  switch (arch) {
    case Arch::kX86_64:
      return Pte(X86Pte::MakeLeaf(pfn, perm, level));
    case Arch::kRiscvSv48:
      return Pte(RiscvPte::MakeLeaf(pfn, perm, level));
  }
  return kNullPte;
}

// "Similar to pte_present in Linux" (paper Figure 9).
inline bool PteIsPresent(Arch arch, Pte pte) {
  switch (arch) {
    case Arch::kX86_64:
      return X86Pte::IsPresent(pte.raw);
    case Arch::kRiscvSv48:
      return RiscvPte::IsPresent(pte.raw);
  }
  return false;
}

inline bool PteIsLeaf(Arch arch, Pte pte, int level) {
  switch (arch) {
    case Arch::kX86_64:
      return X86Pte::IsLeaf(pte.raw, level);
    case Arch::kRiscvSv48:
      return RiscvPte::IsLeaf(pte.raw, level);
  }
  return false;
}

inline Pfn PtePfn(Arch arch, Pte pte) {
  switch (arch) {
    case Arch::kX86_64:
      return X86Pte::PfnOf(pte.raw);
    case Arch::kRiscvSv48:
      return RiscvPte::PfnOf(pte.raw);
  }
  return kInvalidPfn;
}

inline Perm PtePerm(Arch arch, Pte pte) {
  switch (arch) {
    case Arch::kX86_64:
      return X86Pte::PermOf(pte.raw);
    case Arch::kRiscvSv48:
      return RiscvPte::PermOf(pte.raw);
  }
  return Perm();
}

inline bool PteAccessed(Arch arch, Pte pte) {
  switch (arch) {
    case Arch::kX86_64:
      return X86Pte::Accessed(pte.raw);
    case Arch::kRiscvSv48:
      return RiscvPte::Accessed(pte.raw);
  }
  return false;
}

inline bool PteDirty(Arch arch, Pte pte) {
  switch (arch) {
    case Arch::kX86_64:
      return X86Pte::Dirty(pte.raw);
    case Arch::kRiscvSv48:
      return RiscvPte::Dirty(pte.raw);
  }
  return false;
}

// Intel MPK (x86-64 only): protection key of a leaf PTE. Other ISAs have no
// equivalent field; their codec reports key 0 (no restriction).
inline Pte PteWithPkey(Arch arch, Pte pte, int pkey) {
  if (arch == Arch::kX86_64) {
    return Pte(X86Pte::WithPkey(pte.raw, pkey));
  }
  return pte;
}

inline int PtePkey(Arch arch, Pte pte) {
  return arch == Arch::kX86_64 ? X86Pte::PkeyOf(pte.raw) : 0;
}

// The update the hardware page walker would perform on an access.
inline Pte PteWithAccessDirty(Arch arch, Pte pte, bool write) {
  switch (arch) {
    case Arch::kX86_64:
      return Pte(X86Pte::WithAccessDirty(pte.raw, write));
    case Arch::kRiscvSv48:
      return Pte(RiscvPte::WithAccessDirty(pte.raw, write));
  }
  return pte;
}

}  // namespace cortenmm

#endif  // SRC_PT_PTE_H_
