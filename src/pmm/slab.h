// Slab allocator for fixed-size kernel objects (VMA nodes, file mappings, NR
// log entries), following the Linux design the paper's implementation reuses
// (§4.5 "Physical memory management"). Slabs are single buddy frames carved
// into equal objects with an in-frame freelist; a per-CPU magazine amortizes
// list locking.
#ifndef SRC_PMM_SLAB_H_
#define SRC_PMM_SLAB_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "src/common/cpu.h"
#include "src/common/types.h"
#include "src/sync/spinlock.h"

namespace cortenmm {

class SlabCache {
 public:
  // object_size must be >= sizeof(void*) and <= kPageSize / 2.
  explicit SlabCache(size_t object_size, const char* name);
  ~SlabCache();
  SlabCache(const SlabCache&) = delete;
  SlabCache& operator=(const SlabCache&) = delete;

  void* Alloc();
  void Free(void* obj);

  size_t object_size() const { return object_size_; }
  // Frames currently backing this cache (for memory-overhead accounting).
  size_t slab_frames() const { return slab_frames_; }
  const char* name() const { return name_; }

 private:
  struct FreeObject {
    FreeObject* next;
  };
  struct Magazine {
    SpinLock lock;
    std::vector<void*> objects;
  };

  static constexpr size_t kMagazineMax = 32;
  static constexpr size_t kMagazineBatch = 16;

  // Carves a new slab frame into objects on the global freelist. Caller holds
  // lock_. Returns false if physical memory is exhausted.
  bool GrowLocked();

  const char* name_;
  size_t object_size_;
  size_t objects_per_slab_;

  SpinLock lock_;
  FreeObject* free_list_ = nullptr;
  std::vector<Pfn> slabs_;
  size_t slab_frames_ = 0;

  CacheAligned<Magazine> magazines_[kMaxCpus];
};

// Typed convenience wrapper: a SlabCache for T with construct/destroy.
template <typename T>
class TypedSlab {
 public:
  explicit TypedSlab(const char* name) : cache_(sizeof(T), name) {}

  template <typename... Args>
  T* New(Args&&... args) {
    void* raw = cache_.Alloc();
    if (raw == nullptr) {
      return nullptr;
    }
    return new (raw) T(static_cast<Args&&>(args)...);
  }

  void Delete(T* obj) {
    if (obj != nullptr) {
      obj->~T();
      cache_.Free(obj);
    }
  }

  size_t slab_frames() const { return cache_.slab_frames(); }

 private:
  SlabCache cache_;
};

}  // namespace cortenmm

#endif  // SRC_PMM_SLAB_H_
