// Simulated physical memory: a demand-zero anonymous mapping carved into
// 4 KiB frames, plus the page-descriptor array (the `struct page` analog the
// paper borrows from Linux, §4.5). Frame contents are real memory, so page
// tables built in them are bit-exact and the software MMU can walk them.
#ifndef SRC_PMM_PHYS_MEM_H_
#define SRC_PMM_PHYS_MEM_H_

#include <cstddef>
#include <cstdint>

#include "src/common/types.h"

namespace cortenmm {

struct PageDescriptor;

class PhysMem {
 public:
  // Must be called before Instance() to override the default arena size
  // (env CORTENMM_PHYS_MB, default 1024 MiB). No-op afterwards.
  static void Configure(size_t bytes);

  static PhysMem& Instance();

  size_t bytes() const { return bytes_; }
  size_t num_frames() const { return num_frames_; }

  std::byte* FrameData(Pfn pfn) {
    return arena_ + (pfn << kPageBits);
  }
  const std::byte* FrameData(Pfn pfn) const { return arena_ + (pfn << kPageBits); }

  PageDescriptor& Descriptor(Pfn pfn);
  const PageDescriptor& Descriptor(Pfn pfn) const;

  bool ValidPfn(Pfn pfn) const { return pfn < num_frames_; }

  // Touches every frame of the arena once so the *host* OS materializes its
  // pages. Benchmarks call this before timing; otherwise the first system
  // measured pays the host's demand-zero faults for the whole simulated
  // physical memory and the comparison is skewed.
  void Prewarm();

  // Fills a frame with zeros.
  void ZeroFrame(Pfn pfn);
  // Copies frame contents (used by copy-on-write resolution).
  void CopyFrame(Pfn dst, Pfn src);

 private:
  PhysMem();
  ~PhysMem();
  PhysMem(const PhysMem&) = delete;
  PhysMem& operator=(const PhysMem&) = delete;

  std::byte* arena_ = nullptr;
  PageDescriptor* descriptors_ = nullptr;
  size_t bytes_ = 0;
  size_t num_frames_ = 0;
};

}  // namespace cortenmm

#endif  // SRC_PMM_PHYS_MEM_H_
