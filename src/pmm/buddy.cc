#include "src/pmm/buddy.h"

#include <cassert>

#include "src/common/stats.h"
#include "src/fault/fault_inject.h"
#include "src/pmm/page_desc.h"
#include "src/pmm/phys_mem.h"

namespace cortenmm {

BuddyAllocator& BuddyAllocator::Instance() {
  static BuddyAllocator buddy;
  return buddy;
}

BuddyAllocator::BuddyAllocator() {
  for (int order = 0; order <= kMaxOrder; ++order) {
    free_heads_[order] = kInvalidPfn;
  }

  PhysMem& mem = PhysMem::Instance();
  total_frames_ = mem.num_frames();

  // Frame 0 stays reserved so PFN 0 can double as a null sentinel in PTEs.
  mem.Descriptor(0).type.store(FrameType::kReserved, std::memory_order_relaxed);

  // Seed the free lists with maximal aligned blocks.
  Pfn pfn = 1;
  while (pfn < total_frames_) {
    int order = kMaxOrder;
    while (order > 0 &&
           (!IsAligned(pfn, 1ull << order) || pfn + (1ull << order) > total_frames_)) {
      --order;
    }
    PageDescriptor& desc = mem.Descriptor(pfn);
    desc.buddy_order = static_cast<uint8_t>(order);
    PushFree(pfn, order);
    free_frames_.fetch_add(1ull << order, std::memory_order_relaxed);
    pfn += 1ull << order;
  }

  // Default watermarks scale with the machine; reclaim or tests may override.
  low_watermark_.store(total_frames_ / 16, std::memory_order_relaxed);
  min_watermark_.store(total_frames_ / 64, std::memory_order_relaxed);
}

void BuddyAllocator::PushFree(Pfn pfn, int order) {
  PhysMem& mem = PhysMem::Instance();
  PageDescriptor& desc = mem.Descriptor(pfn);
  desc.type.store(FrameType::kFree, std::memory_order_relaxed);
  desc.buddy_order = static_cast<uint8_t>(order);
  desc.buddy_free.store(true, std::memory_order_relaxed);
  desc.free_prev = kInvalidPfn;
  desc.free_next = free_heads_[order];
  if (free_heads_[order] != kInvalidPfn) {
    mem.Descriptor(free_heads_[order]).free_prev = pfn;
  }
  free_heads_[order] = pfn;
}

void BuddyAllocator::RemoveFree(Pfn pfn, int order) {
  PhysMem& mem = PhysMem::Instance();
  PageDescriptor& desc = mem.Descriptor(pfn);
  assert(desc.buddy_free.load(std::memory_order_relaxed));
  if (desc.free_prev != kInvalidPfn) {
    mem.Descriptor(desc.free_prev).free_next = desc.free_next;
  } else {
    free_heads_[order] = desc.free_next;
  }
  if (desc.free_next != kInvalidPfn) {
    mem.Descriptor(desc.free_next).free_prev = desc.free_prev;
  }
  desc.buddy_free.store(false, std::memory_order_relaxed);
  desc.free_next = kInvalidPfn;
  desc.free_prev = kInvalidPfn;
}

Pfn BuddyAllocator::PopFree(int order) {
  Pfn head = free_heads_[order];
  if (head != kInvalidPfn) {
    RemoveFree(head, order);
  }
  return head;
}

Result<Pfn> BuddyAllocator::AllocBlockLocked(int order) {
  int found = order;
  while (found <= kMaxOrder && free_heads_[found] == kInvalidPfn) {
    ++found;
  }
  if (found > kMaxOrder) {
    return ErrCode::kNoMem;
  }
  Pfn block = PopFree(found);
  // Split down to the requested order, returning upper halves to free lists.
  while (found > order) {
    --found;
    Pfn upper_half = block + (1ull << found);
    PushFree(upper_half, found);
  }
  PhysMem::Instance().Descriptor(block).buddy_order = static_cast<uint8_t>(order);
  free_frames_.fetch_sub(1ull << order, std::memory_order_relaxed);
  return block;
}

void BuddyAllocator::FreeBlockLocked(Pfn pfn, int order) {
  PhysMem& mem = PhysMem::Instance();
  // The freed→kFree transition happens here, under lock_: typing the frames
  // free before holding the lock would open a window where they are marked
  // free but still reachable (and not yet on any free list). Every frame of
  // the run is retyped, not just the head — a tail frame that kept its old
  // type (kAnon, say) would read as live-but-unreferenced to the well-
  // formedness checker's stranded-run scan.
  for (uint64_t f = 0; f < (1ull << order); ++f) {
    mem.Descriptor(pfn + f).type.store(FrameType::kFree, std::memory_order_relaxed);
  }
  free_frames_.fetch_add(1ull << order, std::memory_order_relaxed);
  // Coalesce with the buddy while possible.
  while (order < kMaxOrder) {
    Pfn buddy = pfn ^ (1ull << order);
    if (buddy == 0 || buddy >= total_frames_) {
      break;
    }
    PageDescriptor& buddy_desc = mem.Descriptor(buddy);
    if (!buddy_desc.buddy_free.load(std::memory_order_relaxed) ||
        buddy_desc.buddy_order != order) {
      break;
    }
    RemoveFree(buddy, order);
    pfn = pfn < buddy ? pfn : buddy;
    ++order;
  }
  PushFree(pfn, order);
}

Result<Pfn> BuddyAllocator::AllocBlock(int order) {
  assert(order >= 0 && order <= kMaxOrder);
  if (FaultInjector::Instance().ShouldFail(FaultSite::kBuddyAllocBlock)) {
    return ErrCode::kNoMem;
  }
  Result<Pfn> result = [&] {
    SpinGuard guard(lock_);
    return AllocBlockLocked(order);
  }();
  if (result.ok()) {
    // Reset every frame, not just the head: each descriptor in the run must
    // carry live type/refcount state or the run cannot be reclaimed
    // frame-by-frame after a split.
    for (uint64_t f = 0; f < (1ull << order); ++f) {
      PhysMem::Instance().Descriptor(*result + f).ResetForAlloc(FrameType::kKernel);
    }
    CountEvent(Counter::kFramesAllocated, 1ull << order);
    NotePressure();
  }
  return result;
}

Result<Pfn> BuddyAllocator::AllocHugeRun() {
  // Same injection site as AllocBlock: chaos schedules that starve block
  // allocation starve huge fault-in too, which is exactly the fallback
  // ladder the policy layer must survive.
  if (FaultInjector::Instance().ShouldFail(FaultSite::kBuddyAllocBlock)) {
    CountEvent(Counter::kHugeAllocFailures);
    return ErrCode::kNoMem;
  }
  PhysMem& mem = PhysMem::Instance();
  CpuCache& cache = cpu_caches_[CurrentCpu()].value;
  Pfn head = kInvalidPfn;
  {
    SpinGuard guard(cache.lock);
    if (!cache.huge_runs.empty()) {
      head = cache.huge_runs.back();
      cache.huge_runs.pop_back();
    }
  }
  if (head != kInvalidPfn) {
    CountEvent(Counter::kHugeCacheHits);
  } else {
    Result<Pfn> r = [&] {
      SpinGuard guard(lock_);
      return AllocBlockLocked(static_cast<int>(kHugeOrder));
    }();
    if (!r.ok()) {
      CountEvent(Counter::kHugeAllocFailures);
      return r;
    }
    head = *r;
  }
  for (uint64_t f = 0; f < (1ull << kHugeOrder); ++f) {
    mem.Descriptor(head + f).ResetForAlloc(FrameType::kKernel);
  }
  CountEvent(Counter::kHugeAllocs);
  CountEvent(Counter::kFramesAllocated, 1ull << kHugeOrder);
  NotePressure();
  return head;
}

void BuddyAllocator::FreeHugeRun(Pfn head) {
  assert(IsAligned(head, 1ull << kHugeOrder));
  CountEvent(Counter::kHugeFrees);
  CountEvent(Counter::kFramesFreed, 1ull << kHugeOrder);
  CpuCache& cache = cpu_caches_[CurrentCpu()].value;
  {
    SpinGuard guard(cache.lock);
    if (cache.huge_runs.size() < kHugeCacheMax) {
      // Parked, not free — and the WHOLE run is typed kCached, so no tail
      // frame keeps a live-looking type while sitting in the cache.
      for (uint64_t f = 0; f < (1ull << kHugeOrder); ++f) {
        PhysMem::Instance().Descriptor(head + f).type.store(FrameType::kCached,
                                                            std::memory_order_relaxed);
      }
      cache.huge_runs.push_back(head);
      return;
    }
  }
  SpinGuard guard(lock_);
  FreeBlockLocked(head, static_cast<int>(kHugeOrder));
}

void BuddyAllocator::FreeBlock(Pfn pfn, int order) {
  assert(order >= 0 && order <= kMaxOrder);
  CountEvent(Counter::kFramesFreed, 1ull << order);
  SpinGuard guard(lock_);
  FreeBlockLocked(pfn, order);
}

Result<Pfn> BuddyAllocator::AllocFrame() {
  if (FaultInjector::Instance().ShouldFail(FaultSite::kBuddyAllocFrame)) {
    return ErrCode::kNoMem;
  }
  CpuCache& cache = cpu_caches_[CurrentCpu()].value;
  {
    SpinGuard guard(cache.lock);
    if (!cache.frames.empty()) {
      Pfn pfn = cache.frames.back();
      cache.frames.pop_back();
      PhysMem::Instance().Descriptor(pfn).ResetForAlloc(FrameType::kKernel);
      CountEvent(Counter::kFramesAllocated);
      NotePressure();
      return pfn;
    }
  }
  // Refill the cache in one batch, then retry.
  std::vector<Pfn> batch;
  batch.reserve(kCacheBatch);
  {
    SpinGuard guard(lock_);
    for (int i = 0; i < kCacheBatch; ++i) {
      Result<Pfn> r = AllocBlockLocked(0);
      if (!r.ok()) {
        break;
      }
      batch.push_back(*r);
    }
  }
  if (batch.empty()) {
    return ErrCode::kNoMem;
  }
  Pfn pfn = batch.back();
  batch.pop_back();
  {
    SpinGuard guard(cache.lock);
    cache.frames.insert(cache.frames.end(), batch.begin(), batch.end());
  }
  PhysMem::Instance().Descriptor(pfn).ResetForAlloc(FrameType::kKernel);
  CountEvent(Counter::kFramesAllocated);
  NotePressure();
  return pfn;
}

Result<Pfn> BuddyAllocator::AllocZeroedFrame() {
  Result<Pfn> r = AllocFrame();
  if (r.ok()) {
    PhysMem::Instance().ZeroFrame(*r);
  }
  return r;
}

void BuddyAllocator::FreeFrame(Pfn pfn) {
  CountEvent(Counter::kFramesFreed);
  CpuCache& cache = cpu_caches_[CurrentCpu()].value;
  {
    SpinGuard guard(cache.lock);
    if (cache.frames.size() < kCacheMax) {
      // Parked, not free: the frame is typed under the cache lock so the
      // transition is atomic with becoming reachable from the cache, and as
      // kCached (not kFree) so the leak checker can tell the difference.
      PhysMem::Instance().Descriptor(pfn).type.store(FrameType::kCached,
                                                     std::memory_order_relaxed);
      cache.frames.push_back(pfn);
      return;
    }
  }
  SpinGuard guard(lock_);
  FreeBlockLocked(pfn, 0);
}

void BuddyAllocator::FlushCpuCaches() {
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    CpuCache& cache = cpu_caches_[cpu].value;
    std::vector<Pfn> drained;
    std::vector<Pfn> drained_huge;
    {
      SpinGuard guard(cache.lock);
      drained.swap(cache.frames);
      drained_huge.swap(cache.huge_runs);
    }
    if (!drained.empty() || !drained_huge.empty()) {
      SpinGuard guard(lock_);
      for (Pfn pfn : drained) {
        FreeBlockLocked(pfn, 0);
      }
      for (Pfn head : drained_huge) {
        FreeBlockLocked(head, static_cast<int>(kHugeOrder));
      }
    }
  }
}

}  // namespace cortenmm
