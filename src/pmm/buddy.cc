#include "src/pmm/buddy.h"

#include <cassert>
#include <sstream>

#include "src/common/stats.h"
#include "src/fault/fault_inject.h"
#include "src/obs/telemetry.h"
#include "src/pmm/page_desc.h"
#include "src/pmm/phys_mem.h"

namespace cortenmm {

namespace {
// Magazine-occupancy histogram sample tick, 1-in-32 like the lock sampler but
// on its own counter so it never perturbs the acquisition-sampling cadence.
thread_local uint32_t mag_occupancy_tick = 0;
}  // namespace

// --- BuddyArena --------------------------------------------------------------

BuddyArena::BuddyArena(BuddyAllocator* router, int node, Pfn base,
                       uint64_t frames)
    : router_(router), node_(node), base_(base), frames_(frames) {
  assert(IsAligned(base_, 1ull << kMaxOrder));
  for (int order = 0; order <= kMaxOrder; ++order) {
    free_heads_[order] = kInvalidPfn;
  }
  cpu_mags_ = std::make_unique<CacheAligned<CpuMags>[]>(kMaxCpus);

  PhysMem& mem = PhysMem::Instance();
  const Pfn limit = base_ + frames_;

  // Frame 0 stays reserved so PFN 0 can double as a null sentinel in PTEs.
  Pfn pfn = base_;
  if (pfn == 0) {
    mem.Descriptor(0).type.store(FrameType::kReserved, std::memory_order_relaxed);
    pfn = 1;
  }

  // Seed the free lists with maximal aligned blocks. Arena bases are
  // kMaxOrder-aligned, so absolute PFN alignment and arena-relative
  // alignment coincide for every order we hand out.
  while (pfn < limit) {
    int order = kMaxOrder;
    while (order > 0 &&
           (!IsAligned(pfn, 1ull << order) || pfn + (1ull << order) > limit)) {
      --order;
    }
    PageDescriptor& desc = mem.Descriptor(pfn);
    desc.buddy_order = static_cast<uint8_t>(order);
    PushFree(pfn, order);
    free_frames_.fetch_add(1ull << order, std::memory_order_relaxed);
    pfn += 1ull << order;
  }
}

bool BuddyArena::MagazinesEnabled() const { return router_->MagazinesEnabled(); }

void BuddyArena::PushFree(Pfn pfn, int order) {
  PhysMem& mem = PhysMem::Instance();
  PageDescriptor& desc = mem.Descriptor(pfn);
  desc.type.store(FrameType::kFree, std::memory_order_relaxed);
  desc.buddy_order = static_cast<uint8_t>(order);
  desc.buddy_free.store(true, std::memory_order_relaxed);
  desc.free_prev = kInvalidPfn;
  desc.free_next = free_heads_[order];
  if (free_heads_[order] != kInvalidPfn) {
    mem.Descriptor(free_heads_[order]).free_prev = pfn;
  }
  free_heads_[order] = pfn;
}

void BuddyArena::RemoveFree(Pfn pfn, int order) {
  PhysMem& mem = PhysMem::Instance();
  PageDescriptor& desc = mem.Descriptor(pfn);
  assert(desc.buddy_free.load(std::memory_order_relaxed));
  if (desc.free_prev != kInvalidPfn) {
    mem.Descriptor(desc.free_prev).free_next = desc.free_next;
  } else {
    free_heads_[order] = desc.free_next;
  }
  if (desc.free_next != kInvalidPfn) {
    mem.Descriptor(desc.free_next).free_prev = desc.free_prev;
  }
  desc.buddy_free.store(false, std::memory_order_relaxed);
  desc.free_next = kInvalidPfn;
  desc.free_prev = kInvalidPfn;
}

Pfn BuddyArena::PopFree(int order) {
  Pfn head = free_heads_[order];
  if (head != kInvalidPfn) {
    RemoveFree(head, order);
  }
  return head;
}

Result<Pfn> BuddyArena::AllocBlockLocked(int order) {
  int found = order;
  while (found <= kMaxOrder && free_heads_[found] == kInvalidPfn) {
    ++found;
  }
  if (found > kMaxOrder) {
    return ErrCode::kNoMem;
  }
  Pfn block = PopFree(found);
  // Split down to the requested order, returning upper halves to free lists.
  while (found > order) {
    --found;
    Pfn upper_half = block + (1ull << found);
    PushFree(upper_half, found);
  }
  PhysMem::Instance().Descriptor(block).buddy_order = static_cast<uint8_t>(order);
  free_frames_.fetch_sub(1ull << order, std::memory_order_relaxed);
  return block;
}

void BuddyArena::FreeBlockLocked(Pfn pfn, int order) {
  PhysMem& mem = PhysMem::Instance();
  assert(pfn >= base_ && pfn < base_ + frames_);
  // A block on a free list is never pre-zeroed: split/coalesce would leave
  // the flag on the wrong head otherwise.
  mem.Descriptor(pfn).zeroed.store(false, std::memory_order_relaxed);
  // The freed→kFree transition happens here, under lock_: typing the frames
  // free before holding the lock would open a window where they are marked
  // free but still reachable (and not yet on any free list). Every frame of
  // the run is retyped, not just the head — a tail frame that kept its old
  // type (kAnon, say) would read as live-but-unreferenced to the well-
  // formedness checker's stranded-run scan.
  for (uint64_t f = 0; f < (1ull << order); ++f) {
    mem.Descriptor(pfn + f).type.store(FrameType::kFree, std::memory_order_relaxed);
  }
  free_frames_.fetch_add(1ull << order, std::memory_order_relaxed);
  // Coalesce with the buddy while possible. The buddy must live in THIS
  // arena: node boundaries are kMaxOrder-aligned so the XOR never crosses
  // one, but the guard keeps frame 0 and the arena edges out.
  while (order < kMaxOrder) {
    Pfn buddy = pfn ^ (1ull << order);
    if (buddy == 0 || buddy < base_ || buddy >= base_ + frames_) {
      break;
    }
    PageDescriptor& buddy_desc = mem.Descriptor(buddy);
    if (!buddy_desc.buddy_free.load(std::memory_order_relaxed) ||
        buddy_desc.buddy_order != order) {
      break;
    }
    RemoveFree(buddy, order);
    pfn = pfn < buddy ? pfn : buddy;
    ++order;
  }
  PushFree(pfn, order);
}

void BuddyArena::FlushMagazineLocked(const Magazine& mag, int order) {
  // Parked blocks are accounted allocated, so FreeBlockLocked's per-block
  // fetch_add is exactly the batch-boundary counter update.
  for (uint32_t b = 0; b < mag.count; ++b) {
    FreeBlockLocked(mag.pfns[b], order);
  }
}

void BuddyArena::PushDepotOrFlush(int order, const Magazine& mag) {
  if (mag.count == 0) {
    return;
  }
  CountEvent(Counter::kMagFlushes);
  bool pushed = false;
  {
    Depot& depot = depots_[order];
    SpinGuard guard(depot.lock);
    if (depot.clean.size() + depot.dirty.size() < DepotMaxMags(order)) {
      depot.dirty.push_back(mag);
      pushed = true;
    }
  }
  if (pushed) {
    // A dirty magazine just became scrubbable; wake the pre-scrubber.
    router_->FireScrubHook();
    return;
  }
  // Depot full: return the whole magazine under one arena-lock acquisition.
  CountEvent(Counter::kBuddyLockAcquisitions);
  SpinGuard guard(lock_);
  FlushMagazineLocked(mag, order);
}

Result<Pfn> BuddyArena::AllocRaw(int order, bool* prezeroed, bool* mag_hit) {
  PhysMem& mem = PhysMem::Instance();
  if (prezeroed) {
    *prezeroed = false;
  }
  if (mag_hit) {
    *mag_hit = false;
  }
  if (!MagazinesEnabled()) {
    CountEvent(Counter::kBuddyLockAcquisitions);
    SpinGuard guard(lock_);
    return AllocBlockLocked(order);
  }
  const uint32_t cap = MagCapacity(order);
  CpuMags& cm = cpu_mags_[CurrentCpu()].value;
  Pfn pfn = kInvalidPfn;
  uint32_t occupancy = 0;
  {
    SpinGuard guard(cm.lock);
    Magazine& mag = cm.mags[order];
    if (mag.count > 0) {
      pfn = mag.pfns[--mag.count];
      occupancy = mag.count;
    }
  }
  if (pfn != kInvalidPfn) {
    CountEvent(Counter::kMagHits);
    if (mag_hit) {
      *mag_hit = true;
    }
    if ((++mag_occupancy_tick & 31u) == 0) {
      Telemetry::Instance().RecordBatch(BatchStat::kMagOccupancy, occupancy);
    }
  } else {
    // Magazine empty: swap in a whole one from the depot, or build one under
    // a single arena-lock acquisition.
    if (FaultInjector::Instance().ShouldFail(FaultSite::kMagazineRefill)) {
      return ErrCode::kNoMem;
    }
    Magazine full;
    bool from_depot = false;
    {
      Depot& depot = depots_[order];
      SpinGuard guard(depot.lock);
      if (!depot.clean.empty()) {
        full = depot.clean.back();
        depot.clean.pop_back();
        from_depot = true;
      } else if (!depot.dirty.empty()) {
        full = depot.dirty.back();
        depot.dirty.pop_back();
        from_depot = true;
      }
    }
    if (!from_depot) {
      CountEvent(Counter::kBuddyLockAcquisitions);
      {
        SpinGuard guard(lock_);
        while (full.count < cap) {
          Result<Pfn> r = AllocBlockLocked(order);
          if (!r.ok()) {
            break;
          }
          full.pfns[full.count++] = *r;
        }
      }
      if (full.count == 0) {
        return ErrCode::kNoMem;
      }
      // Retype outside lock_ — nothing else can reach these blocks yet.
      for (uint32_t b = 0; b < full.count; ++b) {
        for (uint64_t f = 0; f < (1ull << order); ++f) {
          mem.Descriptor(full.pfns[b] + f)
              .type.store(FrameType::kCached, std::memory_order_relaxed);
        }
      }
    }
    CountEvent(Counter::kMagRefills);
    pfn = full.pfns[--full.count];
    if (full.count > 0) {
      SpinGuard guard(cm.lock);
      Magazine& mag = cm.mags[order];
      // A thread sharing this CPU id may have refilled meanwhile; merge what
      // fits and spill the rest.
      while (full.count > 0 && mag.count < cap) {
        mag.pfns[mag.count++] = full.pfns[--full.count];
      }
    }
    if (full.count > 0) {
      PushDepotOrFlush(order, full);
    }
  }
  // Consume the pre-scrub flag before the caller resets the descriptor.
  // Load-then-store, not exchange: the block is exclusively ours once it
  // leaves the magazine, so no atomic RMW is needed; the acquire load pairs
  // with the scrubber's release store to make the zeroed bytes visible.
  // Weak-memory audit (PR 9): TSO-safe — message passing, not store
  // buffering: the scrubber's zeroing stores drain FIFO-before its flag
  // store, and this side only loads. Model-checked by MakePrezeroLitmus
  // (src/verif/litmus_model.cc); PrezeroVariant::kFlagBeforeZero keeps the
  // flag-first counterexample as the regression.
  PageDescriptor& head = mem.Descriptor(pfn);
  if (head.zeroed.load(std::memory_order_acquire)) {
    head.zeroed.store(false, std::memory_order_relaxed);
    if (prezeroed) {
      *prezeroed = true;
    }
  }
  // No free_frames_ update: parked blocks are accounted allocated, so the
  // counter moved when the magazine was filled, not per block.
  return pfn;
}

void BuddyArena::FreeRaw(Pfn pfn, int order) {
  PhysMem& mem = PhysMem::Instance();
  // Whatever the caller did to the contents, they are dirty now.
  mem.Descriptor(pfn).zeroed.store(false, std::memory_order_relaxed);
  if (!MagazinesEnabled()) {
    CountEvent(Counter::kBuddyLockAcquisitions);
    SpinGuard guard(lock_);
    FreeBlockLocked(pfn, order);
    return;
  }
  CpuMags& cm = cpu_mags_[CurrentCpu()].value;
  Magazine overflow;
  {
    SpinGuard guard(cm.lock);
    Magazine& mag = cm.mags[order];
    if (mag.count >= MagCapacity(order)) {
      overflow = mag;
      mag.count = 0;
    }
    // Parked, not free: the WHOLE block is typed under the magazine lock so
    // the transition is atomic with becoming reachable from the magazine, and
    // as kCached (not kFree) so the leak checker can tell the difference.
    for (uint64_t f = 0; f < (1ull << order); ++f) {
      mem.Descriptor(pfn + f).type.store(FrameType::kCached,
                                         std::memory_order_relaxed);
    }
    mag.pfns[mag.count++] = pfn;
  }
  // No free_frames_ update: parking keeps the block accounted allocated until
  // a flush returns it to the free lists (batch-boundary accounting).
  if (overflow.count > 0) {
    PushDepotOrFlush(order, overflow);
  }
}

void BuddyArena::FlushCpuCaches() {
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    CpuMags& cm = cpu_mags_[cpu].value;
    Magazine taken[kMaxOrder + 1];
    bool any = false;
    {
      SpinGuard guard(cm.lock);
      for (int order = 0; order <= kMaxOrder; ++order) {
        if (cm.mags[order].count > 0) {
          taken[order] = cm.mags[order];
          cm.mags[order].count = 0;
          any = true;
        }
      }
    }
    if (any) {
      CountEvent(Counter::kBuddyLockAcquisitions);
      SpinGuard guard(lock_);
      for (int order = 0; order <= kMaxOrder; ++order) {
        FlushMagazineLocked(taken[order], order);
      }
    }
  }
  for (int order = 0; order <= kMaxOrder; ++order) {
    Depot& depot = depots_[order];
    std::vector<Magazine> all;
    {
      SpinGuard guard(depot.lock);
      all.swap(depot.dirty);
      all.insert(all.end(), depot.clean.begin(), depot.clean.end());
      depot.clean.clear();
    }
    if (!all.empty()) {
      CountEvent(Counter::kBuddyLockAcquisitions);
      SpinGuard guard(lock_);
      for (const Magazine& mag : all) {
        FlushMagazineLocked(mag, order);
      }
    }
  }
}

uint64_t BuddyArena::ScrubBatch(uint64_t max_frames) {
  PhysMem& mem = PhysMem::Instance();
  uint64_t zeroed = 0;
  for (int order = 0; order <= kMaxOrder && zeroed < max_frames; ++order) {
    Depot& depot = depots_[order];
    for (;;) {
      Magazine mag;
      {
        SpinGuard guard(depot.lock);
        if (depot.dirty.empty()) {
          break;
        }
        mag = depot.dirty.back();
        depot.dirty.pop_back();
      }
      // The magazine is off every shelf: the scrubber owns its blocks
      // exclusively while zeroing, so no lock is held across the memsets.
      for (uint32_t b = 0; b < mag.count; ++b) {
        PageDescriptor& head = mem.Descriptor(mag.pfns[b]);
        if (head.zeroed.load(std::memory_order_relaxed)) {
          continue;  // Clean-shelf leftover that cycled back: still zero.
        }
        for (uint64_t f = 0; f < (1ull << order); ++f) {
          mem.ZeroFrame(mag.pfns[b] + f);
        }
        head.zeroed.store(true, std::memory_order_release);
        zeroed += 1ull << order;
      }
      {
        SpinGuard guard(depot.lock);
        depot.clean.push_back(mag);
      }
      if (zeroed >= max_frames) {
        break;
      }
    }
  }
  return zeroed;
}

uint64_t BuddyArena::CountMisplacedFreeFrames() {
  PhysMem& mem = PhysMem::Instance();
  uint64_t misplaced = 0;
  SpinGuard guard(lock_);
  for (int order = 0; order <= kMaxOrder; ++order) {
    for (Pfn pfn = free_heads_[order]; pfn != kInvalidPfn;
         pfn = mem.Descriptor(pfn).free_next) {
      if (pfn < base_ || pfn >= base_ + frames_) {
        misplaced += 1ull << order;
      }
    }
  }
  return misplaced;
}

BuddyArena::DepotStats BuddyArena::GetDepotStats() {
  DepotStats s;
  for (int order = 0; order <= kMaxOrder; ++order) {
    Depot& depot = depots_[order];
    SpinGuard guard(depot.lock);
    s.clean_mags += depot.clean.size();
    s.dirty_mags += depot.dirty.size();
    for (const Magazine& m : depot.clean) {
      s.clean_frames += uint64_t(m.count) << order;
    }
    for (const Magazine& m : depot.dirty) {
      s.dirty_frames += uint64_t(m.count) << order;
    }
  }
  return s;
}

// --- BuddyAllocator (per-node router) ----------------------------------------

BuddyAllocator& BuddyAllocator::Instance() {
  static BuddyAllocator buddy;
  return buddy;
}

BuddyAllocator::BuddyAllocator() {
  PhysMem& mem = PhysMem::Instance();
  total_frames_ = mem.num_frames();

  num_nodes_ = NodeTopology::Instance().nodes();
  // Arena boundaries must be kMaxOrder-aligned so buddy XOR math never
  // crosses a node. The last node absorbs the rounding remainder. A machine
  // too small to give every node an aligned slice degrades to one arena.
  frames_per_node_ =
      (total_frames_ / num_nodes_) & ~((1ull << kMaxOrder) - 1);
  if (frames_per_node_ == 0) {
    num_nodes_ = 1;
    frames_per_node_ = total_frames_;
  }
  for (int n = 0; n < num_nodes_; ++n) {
    Pfn base = static_cast<Pfn>(n) * frames_per_node_;
    uint64_t frames =
        n == num_nodes_ - 1 ? total_frames_ - base : frames_per_node_;
    arenas_[n] = std::make_unique<BuddyArena>(this, n, base, frames);
  }

  // Default watermarks scale with the machine; reclaim or tests may override.
  low_watermark_.store(total_frames_ / 16, std::memory_order_relaxed);
  min_watermark_.store(total_frames_ / 64, std::memory_order_relaxed);

  Telemetry::Instance().AddJsonSection(
      "faultpath", [] { return BuddyAllocator::Instance().DumpFaultpathJson(); });
  Telemetry::Instance().AddJsonSection(
      "numa", [] { return BuddyAllocator::Instance().DumpNumaJson(); });
}

Result<Pfn> BuddyAllocator::RouteAlloc(int order, bool* prezeroed,
                                       bool* mag_hit) {
  int home = NodeTopology::Instance().NodeOfCpu(CurrentCpu());
  if (home >= num_nodes_) {
    home = num_nodes_ - 1;  // Degenerate-arena fallback (tiny machines).
  }
  Result<Pfn> r = arenas_[home]->AllocRaw(order, prezeroed, mag_hit);
  if (r.ok()) {
    CountEvent(Counter::kNumaLocalAllocs);
    return r;
  }
  if (num_nodes_ == 1) {
    return r;
  }
  // Home arena exhausted: walk the remote arenas nearest-first.
  CountEvent(Counter::kNumaSpills);
  int count = 0;
  const int* spill = NodeTopology::Instance().SpillOrder(home, &count);
  for (int i = 0; i < count; ++i) {
    if (spill[i] >= num_nodes_) {
      continue;
    }
    r = arenas_[spill[i]]->AllocRaw(order, prezeroed, mag_hit);
    if (r.ok()) {
      CountEvent(Counter::kNumaRemoteAllocs);
      return r;
    }
  }
  return ErrCode::kNoMem;
}

void BuddyAllocator::RouteFree(Pfn pfn, int order) {
  // Always the frame's HOME arena: a frame allocated remotely still returns
  // to the arena its PFN belongs to, so arenas cannot bleed into each other.
  arenas_[NodeOfPfn(pfn)]->FreeRaw(pfn, order);
}

Result<Pfn> BuddyAllocator::AllocBlock(int order, FrameType type) {
  assert(order >= 0 && order <= kMaxOrder);
  if (FaultInjector::Instance().ShouldFail(FaultSite::kBuddyAllocBlock)) {
    return ErrCode::kNoMem;
  }
  Result<Pfn> result = RouteAlloc(order, nullptr, nullptr);
  if (result.ok()) {
    // Reset every frame, not just the head: each descriptor in the run must
    // carry live type/refcount state or the run cannot be reclaimed
    // frame-by-frame after a split.
    for (uint64_t f = 0; f < (1ull << order); ++f) {
      PhysMem::Instance().Descriptor(*result + f).ResetForAlloc(type);
    }
    CountEvent(Counter::kFramesAllocated, 1ull << order);
    NotePressure();
  }
  return result;
}

void BuddyAllocator::FreeBlock(Pfn pfn, int order) {
  assert(order >= 0 && order <= kMaxOrder);
  CountEvent(Counter::kFramesFreed, 1ull << order);
  RouteFree(pfn, order);
}

Result<Pfn> BuddyAllocator::AllocHugeRun(bool* prezeroed, FrameType type) {
  // Same injection site as AllocBlock: chaos schedules that starve block
  // allocation starve huge fault-in too, which is exactly the fallback
  // ladder the policy layer must survive.
  if (FaultInjector::Instance().ShouldFail(FaultSite::kBuddyAllocBlock)) {
    CountEvent(Counter::kHugeAllocFailures);
    return ErrCode::kNoMem;
  }
  bool was_zeroed = false;
  bool mag_hit = false;
  Result<Pfn> r = RouteAlloc(static_cast<int>(kHugeOrder), &was_zeroed, &mag_hit);
  if (!r.ok()) {
    CountEvent(Counter::kHugeAllocFailures);
    return r;
  }
  if (mag_hit) {
    CountEvent(Counter::kHugeCacheHits);
  }
  PhysMem& mem = PhysMem::Instance();
  for (uint64_t f = 0; f < (1ull << kHugeOrder); ++f) {
    mem.Descriptor(*r + f).ResetForAlloc(type);
  }
  if (prezeroed) {
    *prezeroed = was_zeroed;
    if (was_zeroed) {
      CountEvent(Counter::kPrezeroHits, 1ull << kHugeOrder);
    }
  }
  CountEvent(Counter::kHugeAllocs);
  CountEvent(Counter::kFramesAllocated, 1ull << kHugeOrder);
  NotePressure();
  return r;
}

void BuddyAllocator::FreeHugeRun(Pfn head) {
  assert(IsAligned(head, 1ull << kHugeOrder));
  CountEvent(Counter::kHugeFrees);
  CountEvent(Counter::kFramesFreed, 1ull << kHugeOrder);
  RouteFree(head, static_cast<int>(kHugeOrder));
}

Result<Pfn> BuddyAllocator::AllocFrame(FrameType type) {
  if (FaultInjector::Instance().ShouldFail(FaultSite::kBuddyAllocFrame)) {
    return ErrCode::kNoMem;
  }
  Result<Pfn> r = RouteAlloc(0, nullptr, nullptr);
  if (r.ok()) {
    PhysMem::Instance().Descriptor(*r).ResetForAlloc(type);
    CountEvent(Counter::kFramesAllocated);
    NotePressure();
  }
  return r;
}

Result<Pfn> BuddyAllocator::AllocZeroedFrame(FrameType type) {
  if (FaultInjector::Instance().ShouldFail(FaultSite::kBuddyAllocFrame)) {
    return ErrCode::kNoMem;
  }
  bool was_zeroed = false;
  Result<Pfn> r = RouteAlloc(0, &was_zeroed, nullptr);
  if (!r.ok()) {
    return r;
  }
  PhysMem::Instance().Descriptor(*r).ResetForAlloc(type);
  if (was_zeroed) {
    // The pre-scrubber already zeroed this frame off the critical path.
    CountEvent(Counter::kPrezeroHits);
  } else {
    PhysMem::Instance().ZeroFrame(*r);
  }
  CountEvent(Counter::kFramesAllocated);
  NotePressure();
  return r;
}

void BuddyAllocator::FreeFrame(Pfn pfn) {
  CountEvent(Counter::kFramesFreed);
  RouteFree(pfn, 0);
}

void BuddyAllocator::SetMagazinesEnabled(bool enabled) {
  // Toggling is a quiesced operation (benches, tests): a racing free that
  // sampled the old value may still park one block, which the next flush
  // collects — nothing is lost, only deferred.
  bool was = magazines_enabled_.exchange(enabled, std::memory_order_acq_rel);
  if (was && !enabled) {
    FlushCpuCaches();
  }
}

void BuddyAllocator::FlushCpuCaches() {
  for (int n = 0; n < num_nodes_; ++n) {
    arenas_[n]->FlushCpuCaches();
  }
}

void BuddyAllocator::DrainMagazines() {
  CountEvent(Counter::kMagDrains);
  FlushCpuCaches();
}

uint64_t BuddyAllocator::ScrubBatch(uint64_t max_frames) {
  if (FaultInjector::Instance().ShouldFail(FaultSite::kPreScrub)) {
    // Graceful degradation: the frames stay on the dirty shelf and
    // demand-zero faults fall back to inline zeroing — nothing to roll back.
    FaultInjector::NoteSurvived();
    return 0;
  }
  uint64_t zeroed = 0;
  for (int n = 0; n < num_nodes_ && zeroed < max_frames; ++n) {
    zeroed += arenas_[n]->ScrubBatch(max_frames - zeroed);
  }
  if (zeroed > 0) {
    CountEvent(Counter::kPrescrubFramesZeroed, zeroed);
  }
  return zeroed;
}

uint64_t BuddyAllocator::CountMisplacedFreeFrames() {
  uint64_t misplaced = 0;
  for (int n = 0; n < num_nodes_; ++n) {
    misplaced += arenas_[n]->CountMisplacedFreeFrames();
  }
  return misplaced;
}

std::string BuddyAllocator::DumpFaultpathJson() {
  BuddyArena::DepotStats total;
  for (int n = 0; n < num_nodes_; ++n) {
    BuddyArena::DepotStats s = arenas_[n]->GetDepotStats();
    total.clean_mags += s.clean_mags;
    total.dirty_mags += s.dirty_mags;
    total.clean_frames += s.clean_frames;
    total.dirty_frames += s.dirty_frames;
  }
  const StatsDomain& stats = GlobalStats();
  std::ostringstream os;
  os << "{\"magazines_enabled\":" << (MagazinesEnabled() ? 1 : 0)
     << ",\"mag_hits\":" << stats.Total(Counter::kMagHits)
     << ",\"mag_refills\":" << stats.Total(Counter::kMagRefills)
     << ",\"mag_flushes\":" << stats.Total(Counter::kMagFlushes)
     << ",\"mag_drains\":" << stats.Total(Counter::kMagDrains)
     << ",\"prezero_hits\":" << stats.Total(Counter::kPrezeroHits)
     << ",\"prescrub_frames_zeroed\":" << stats.Total(Counter::kPrescrubFramesZeroed)
     << ",\"fault_around_mapped\":" << stats.Total(Counter::kFaultAroundMapped)
     << ",\"buddy_lock_acquisitions\":" << stats.Total(Counter::kBuddyLockAcquisitions)
     << ",\"depot_clean_mags\":" << total.clean_mags
     << ",\"depot_dirty_mags\":" << total.dirty_mags
     << ",\"depot_clean_frames\":" << total.clean_frames
     << ",\"depot_dirty_frames\":" << total.dirty_frames << "}";
  return os.str();
}

std::string BuddyAllocator::DumpNumaJson() {
  const StatsDomain& stats = GlobalStats();
  std::ostringstream os;
  os << "{\"nodes\":" << num_nodes_
     << ",\"frames_per_node\":" << frames_per_node_
     << ",\"numa_local_allocs\":" << stats.Total(Counter::kNumaLocalAllocs)
     << ",\"numa_remote_allocs\":" << stats.Total(Counter::kNumaRemoteAllocs)
     << ",\"numa_spills\":" << stats.Total(Counter::kNumaSpills)
     << ",\"numa_remote_accesses\":" << stats.Total(Counter::kNumaRemoteAccesses)
     << ",\"cna_batched_handoffs\":" << stats.Total(Counter::kCnaBatchedHandoffs)
     << ",\"cna_secondary_enqueues\":" << stats.Total(Counter::kCnaSecondaryEnqueues)
     << ",\"cna_secondary_flushes\":" << stats.Total(Counter::kCnaSecondaryFlushes)
     << ",\"node_free_frames\":[";
  for (int n = 0; n < num_nodes_; ++n) {
    os << (n ? "," : "") << arenas_[n]->FreeFrameCount();
  }
  os << "],\"node_total_frames\":[";
  for (int n = 0; n < num_nodes_; ++n) {
    os << (n ? "," : "") << arenas_[n]->frames();
  }
  os << "]}";
  return os.str();
}

}  // namespace cortenmm
