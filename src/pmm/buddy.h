// Binary buddy allocator over the simulated physical memory, following the
// Linux design the paper adopts (§4.5 "Physical memory management"): power-of-
// two blocks with split/coalesce, free-list links stored in page descriptors.
//
// The hot allocation paths never touch the global free lists in steady state:
// every order has a slab-style per-CPU *magazine* (a bounded stack of parked
// blocks), backed by a global per-order *depot* of full magazines. A magazine
// miss swaps one whole magazine with the depot; only a depot miss takes the
// global buddy lock, and then it refills an entire magazine under ONE
// acquisition. Freed blocks park in the magazine and spill — again a whole
// magazine at a time — to the depot, where the background pre-scrubber zeroes
// them so demand-zero faults can skip the inline memset (ScrubBatch /
// PageDescriptor::zeroed).
//
// Accounting: parked blocks count as ALLOCATED, and free_frames_ moves only
// at magazine-batch boundaries (refill subtracts a whole magazine, flush adds
// one back) — the same reason Linux folds NR_FREE_PAGES through per-CPU
// vmstat deltas: a global counter RMW per allocation is the allocator's worst
// shared-write hot spot once the lock itself is gone. The watermarks
// therefore see parked frames as consumed (conservative: pressure fires a
// magazine's worth early, and kswapd's DrainMagazines visibly raises the free
// count). Parked frames are typed FrameType::kCached so the leak checker can
// tell a parked frame from a genuinely free or leaked one.
#ifndef SRC_PMM_BUDDY_H_
#define SRC_PMM_BUDDY_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/cpu.h"
#include "src/common/result.h"
#include "src/common/types.h"
#include "src/pmm/page_desc.h"
#include "src/sync/spinlock.h"

namespace cortenmm {

class BuddyAllocator {
 public:
  static constexpr int kMaxOrder = 10;  // Up to 4 MiB blocks.
  // Slots in a magazine; the per-order capacity (MagCapacity) never exceeds
  // this. 64 order-0 frames per refill matches the old cache batch x2.
  static constexpr uint32_t kMagSlots = 64;

  static BuddyAllocator& Instance();

  // Allocates a 2^order-frame block; returns the first PFN. |type| is what
  // every descriptor in the block is reset to — callers that know the final
  // type pass it here so the fault path resets each descriptor exactly once
  // instead of kKernel-then-retype.
  Result<Pfn> AllocBlock(int order, FrameType type = FrameType::kKernel);
  void FreeBlock(Pfn pfn, int order);

  // Single-frame fast path through the per-CPU magazines. AllocZeroedFrame
  // consumes a pre-scrubbed frame when one is available (skipping the inline
  // memset) and zeroes inline otherwise.
  Result<Pfn> AllocFrame(FrameType type = FrameType::kKernel);
  Result<Pfn> AllocZeroedFrame(FrameType type = FrameType::kKernel);
  void FreeFrame(Pfn pfn);

  // Order-kHugeOrder (2 MiB) run fast path through the same magazine layer.
  // Failure means fragmentation or exhaustion — the caller's cue to fall back
  // to 4 KiB pages. |prezeroed| (optional) reports whether the whole run is
  // already zero, letting the caller skip its 512-frame zero loop.
  Result<Pfn> AllocHugeRun(bool* prezeroed = nullptr,
                           FrameType type = FrameType::kKernel);
  void FreeHugeRun(Pfn head);

  uint64_t FreeFrameCount() const { return free_frames_.load(std::memory_order_relaxed); }
  uint64_t TotalFrameCount() const { return total_frames_; }

  // --- Watermarks (reclaim integration) ------------------------------------
  // Linux-style zone watermarks over the free-frame count. Defaults derive
  // from the total at construction (low = total/16, min = total/64); the
  // reclaim subsystem or a test may override them. Allocations never *fail*
  // at a watermark — the watermarks only drive the pressure hook and the
  // policy decisions (kswapd wake, fault throttling, THP suppression) made by
  // the layers above pmm.
  void SetWatermarks(uint64_t low_frames, uint64_t min_frames) {
    low_watermark_.store(low_frames, std::memory_order_relaxed);
    min_watermark_.store(min_frames, std::memory_order_relaxed);
  }
  uint64_t LowWatermark() const { return low_watermark_.load(std::memory_order_relaxed); }
  uint64_t MinWatermark() const { return min_watermark_.load(std::memory_order_relaxed); }
  bool BelowLow() const { return FreeFrameCount() < LowWatermark(); }
  bool BelowMin() const { return FreeFrameCount() < MinWatermark(); }

  // Invoked (outside all buddy locks) after any allocation that leaves the
  // free count under the low watermark. pmm stays ignorant of reclaim: the
  // reclaim subsystem installs its kswapd wake here. Must be cheap,
  // non-blocking, and safe to call concurrently from any thread.
  using PressureHook = void (*)();
  void SetPressureHook(PressureHook hook) {
    pressure_hook_.store(hook, std::memory_order_release);
  }

  // --- Magazine layer -------------------------------------------------------
  // Kill switch for the whole magazine/depot layer (benches ablate against
  // the direct global-lock path; reclaim never needs it). Disabling flushes
  // everything parked back to the free lists first.
  void SetMagazinesEnabled(bool enabled);
  bool MagazinesEnabled() const {
    return magazines_enabled_.load(std::memory_order_acquire);
  }

  // Returns every parked block — per-CPU magazines and depot shelves — to the
  // global free lists, so no frame is stranded in a cache. Used by the leak
  // checker and by reclaim under watermark pressure (DrainMagazines counts
  // the pressure-driven case).
  void FlushCpuCaches();
  void DrainMagazines();

  // --- Pre-scrub integration -------------------------------------------------
  // Zeroes up to |max_frames| frames' worth of dirty depot magazines (whole
  // magazines at a time, owned exclusively while scrubbing) and moves them to
  // the clean shelf with their head descriptors' `zeroed` flag set. Returns
  // the number of frames zeroed; 0 means no dirty magazines (or an injected
  // kPreScrub fault — frames stay dirty, faults fall back to inline zeroing).
  uint64_t ScrubBatch(uint64_t max_frames);

  // Fired (outside all buddy locks) whenever a dirty magazine lands in the
  // depot — the pre-scrubber installs its wakeup here.
  using ScrubHook = void (*)();
  void SetScrubHook(ScrubHook hook) {
    scrub_hook_.store(hook, std::memory_order_release);
  }

  // "faultpath" telemetry block: magazine/prezero counters plus current depot
  // occupancy. Registered with Telemetry at construction.
  std::string DumpFaultpathJson();

 private:
  BuddyAllocator();
  BuddyAllocator(const BuddyAllocator&) = delete;
  BuddyAllocator& operator=(const BuddyAllocator&) = delete;

  // A bounded stack of parked 2^order blocks. Moves by value between the
  // per-CPU slots and the depot shelves so no two locks are ever held at
  // once (lock order would otherwise be cpu -> depot -> global).
  struct Magazine {
    uint32_t count = 0;
    Pfn pfns[kMagSlots];
  };

  struct CpuMags {
    SpinLock lock;  // Normally only touched by its own CPU; the lock makes
                    // flushes and CPU-id collisions safe.
    Magazine mags[kMaxOrder + 1];
  };

  struct Depot {
    SpinLock lock;
    std::vector<Magazine> clean;  // Every block pre-zeroed (head zeroed set).
    std::vector<Magazine> dirty;
  };

  // Per-order magazine capacity: deep for order 0 (anon pages + PT pages are
  // the fault path), shallow for huge runs (2 runs = 4 MiB parked per CPU,
  // matching the old huge cache), modest in between.
  static constexpr uint32_t MagCapacity(int order) {
    return order == 0 ? kMagSlots
           : order >= static_cast<int>(kHugeOrder) ? 2
                                                   : 8;
  }
  // Depot bound (clean + dirty shelves together), in magazines. The order-0
  // shelf is deep (128 mags = 32 MiB parked on a 1 GiB arena): the corridor
  // between depot-empty (a global-lock refill) and depot-full (a global-lock
  // flush) must absorb a whole multi-CPU allocation burst in each direction.
  static constexpr uint32_t DepotMaxMags(int order) {
    return order == 0 ? 128 : order >= static_cast<int>(kHugeOrder) ? 4 : 8;
  }

  Result<Pfn> AllocBlockLocked(int order);
  void FreeBlockLocked(Pfn pfn, int order);
  void PushFree(Pfn pfn, int order);
  void RemoveFree(Pfn pfn, int order);
  Pfn PopFree(int order);

  // Magazine plumbing (no locks held by callers).
  Result<Pfn> AllocRaw(int order, bool* prezeroed, bool* mag_hit);
  void FreeRaw(Pfn pfn, int order);
  void PushDepotOrFlush(int order, const Magazine& mag);
  // Returns |mag|'s blocks to the free lists (re-counting them free).
  void FlushMagazineLocked(const Magazine& mag, int order);

  // Fires the pressure hook when the free count has dropped under the low
  // watermark. Called at the tail of every successful allocation path.
  void NotePressure() {
    if (FreeFrameCount() < low_watermark_.load(std::memory_order_relaxed)) {
      if (PressureHook hook = pressure_hook_.load(std::memory_order_acquire)) {
        hook();
      }
    }
  }

  SpinLock lock_;
  Pfn free_heads_[kMaxOrder + 1];
  std::atomic<uint64_t> free_frames_{0};
  uint64_t total_frames_ = 0;
  std::atomic<uint64_t> low_watermark_{0};
  std::atomic<uint64_t> min_watermark_{0};
  std::atomic<PressureHook> pressure_hook_{nullptr};
  std::atomic<ScrubHook> scrub_hook_{nullptr};
  std::atomic<bool> magazines_enabled_{true};
  Depot depots_[kMaxOrder + 1];
  CacheAligned<CpuMags> cpu_mags_[kMaxCpus];
};

}  // namespace cortenmm

#endif  // SRC_PMM_BUDDY_H_
