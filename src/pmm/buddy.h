// Binary buddy allocation over the simulated physical memory, following the
// Linux design the paper adopts (§4.5 "Physical memory management"): power-of-
// two blocks with split/coalesce, free-list links stored in page descriptors.
//
// NUMA layout (PR 10): physical memory is partitioned into one `BuddyArena`
// per NUMA node — contiguous, kMaxOrder-aligned PFN ranges, so a frame's home
// node is derivable from its PFN alone (NodeOfPfn). Each arena is a complete
// allocator: its own free lists and lock, its own per-order depots, its own
// per-CPU magazines. The public `BuddyAllocator` is a thin router: an
// allocation tries the caller's home-node arena first and walks the
// topology's nearest-first spill order on exhaustion (numa_local_allocs /
// numa_remote_allocs / numa_spills); a free routes by the frame's PFN to its
// HOME arena, so frames structurally cannot leak across nodes — the
// wf_checker's frame-on-home-arena-freelist invariant
// (CountMisplacedFreeFrames) pins that.
//
// The hot allocation paths never touch an arena's free lists in steady
// state: every order has a slab-style per-CPU *magazine* (a bounded stack of
// parked blocks), backed by the arena's per-order *depot* of full magazines.
// A magazine miss swaps one whole magazine with the depot; only a depot miss
// takes the arena's buddy lock, and then it refills an entire magazine under
// ONE acquisition. Freed blocks park in the magazine and spill — again a
// whole magazine at a time — to the depot, where the background pre-scrubber
// zeroes them so demand-zero faults can skip the inline memset (ScrubBatch /
// PageDescriptor::zeroed).
//
// Accounting: parked blocks count as ALLOCATED, and each arena's free_frames_
// moves only at magazine-batch boundaries (refill subtracts a whole magazine,
// flush adds one back) — the same reason Linux folds NR_FREE_PAGES through
// per-CPU vmstat deltas: a global counter RMW per allocation is the
// allocator's worst shared-write hot spot once the lock itself is gone. The
// watermarks (kept GLOBAL, over the summed free count, so reclaim and test
// semantics are node-count-independent) therefore see parked frames as
// consumed. Parked frames are typed FrameType::kCached so the leak checker
// can tell a parked frame from a genuinely free or leaked one.
#ifndef SRC_PMM_BUDDY_H_
#define SRC_PMM_BUDDY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/cpu.h"
#include "src/common/result.h"
#include "src/common/topology.h"
#include "src/common/types.h"
#include "src/pmm/page_desc.h"
#include "src/sync/spinlock.h"

namespace cortenmm {

class BuddyAllocator;

// One NUMA node's slice of physical memory: a self-contained buddy allocator
// (free lists + depots + per-CPU magazines) over [base, base+frames). Only
// the BuddyAllocator router constructs and calls these.
class BuddyArena {
 public:
  static constexpr int kMaxOrder = 10;  // Up to 4 MiB blocks.
  static constexpr uint32_t kMagSlots = 64;

  BuddyArena(BuddyAllocator* router, int node, Pfn base, uint64_t frames);
  BuddyArena(const BuddyArena&) = delete;
  BuddyArena& operator=(const BuddyArena&) = delete;

  int node() const { return node_; }
  Pfn base() const { return base_; }
  uint64_t frames() const { return frames_; }
  uint64_t FreeFrameCount() const {
    return free_frames_.load(std::memory_order_relaxed);
  }

  // Magazine-first allocation/free (no descriptor reset, no counters beyond
  // the magazine ones — the router layers policy on top).
  Result<Pfn> AllocRaw(int order, bool* prezeroed, bool* mag_hit);
  void FreeRaw(Pfn pfn, int order);

  void FlushCpuCaches();
  uint64_t ScrubBatch(uint64_t max_frames);

  // Free-list walk (under the arena lock): counts chained frames whose PFN
  // falls outside [base, base+frames) — always 0 unless routing is broken.
  uint64_t CountMisplacedFreeFrames();

  struct DepotStats {
    uint64_t clean_mags = 0, dirty_mags = 0;
    uint64_t clean_frames = 0, dirty_frames = 0;
  };
  DepotStats GetDepotStats();

 private:
  // A bounded stack of parked 2^order blocks. Moves by value between the
  // per-CPU slots and the depot shelves so no two locks are ever held at
  // once (lock order would otherwise be cpu -> depot -> arena).
  struct Magazine {
    uint32_t count = 0;
    Pfn pfns[kMagSlots];
  };

  struct CpuMags {
    SpinLock lock;  // Normally only touched by its own CPU; the lock makes
                    // flushes and CPU-id collisions safe.
    Magazine mags[kMaxOrder + 1];
  };

  struct Depot {
    SpinLock lock;
    std::vector<Magazine> clean;  // Every block pre-zeroed (head zeroed set).
    std::vector<Magazine> dirty;
  };

  // Per-order magazine capacity: deep for order 0 (anon pages + PT pages are
  // the fault path), shallow for huge runs (2 runs = 4 MiB parked per CPU,
  // matching the old huge cache), modest in between.
  static constexpr uint32_t MagCapacity(int order) {
    return order == 0 ? kMagSlots
           : order >= static_cast<int>(kHugeOrder) ? 2
                                                   : 8;
  }
  // Depot bound (clean + dirty shelves together), in magazines. The order-0
  // shelf is deep (128 mags = 32 MiB parked per node): the corridor between
  // depot-empty (an arena-lock refill) and depot-full (an arena-lock flush)
  // must absorb a whole multi-CPU allocation burst in each direction.
  static constexpr uint32_t DepotMaxMags(int order) {
    return order == 0 ? 128 : order >= static_cast<int>(kHugeOrder) ? 4 : 8;
  }

  Result<Pfn> AllocBlockLocked(int order);
  void FreeBlockLocked(Pfn pfn, int order);
  void PushFree(Pfn pfn, int order);
  void RemoveFree(Pfn pfn, int order);
  Pfn PopFree(int order);

  void PushDepotOrFlush(int order, const Magazine& mag);
  // Returns |mag|'s blocks to the free lists (re-counting them free).
  void FlushMagazineLocked(const Magazine& mag, int order);

  bool MagazinesEnabled() const;

  BuddyAllocator* router_;
  int node_;
  Pfn base_ = 0;
  uint64_t frames_ = 0;

  SpinLock lock_;
  Pfn free_heads_[kMaxOrder + 1];
  std::atomic<uint64_t> free_frames_{0};
  Depot depots_[kMaxOrder + 1];
  std::unique_ptr<CacheAligned<CpuMags>[]> cpu_mags_;  // [kMaxCpus]
};

// The process-wide physical allocator: routes to per-node arenas with a
// local-first / nearest-remote-fallback policy. Public API is node-agnostic —
// callers that want placement control get it implicitly by binding their
// thread to a CPU (the home node follows from the CPU id).
class BuddyAllocator {
 public:
  static constexpr int kMaxOrder = BuddyArena::kMaxOrder;
  static constexpr uint32_t kMagSlots = BuddyArena::kMagSlots;

  static BuddyAllocator& Instance();

  // Allocates a 2^order-frame block; returns the first PFN. |type| is what
  // every descriptor in the block is reset to — callers that know the final
  // type pass it here so the fault path resets each descriptor exactly once
  // instead of kKernel-then-retype.
  Result<Pfn> AllocBlock(int order, FrameType type = FrameType::kKernel);
  void FreeBlock(Pfn pfn, int order);

  // Single-frame fast path through the per-CPU magazines. AllocZeroedFrame
  // consumes a pre-scrubbed frame when one is available (skipping the inline
  // memset) and zeroes inline otherwise.
  Result<Pfn> AllocFrame(FrameType type = FrameType::kKernel);
  Result<Pfn> AllocZeroedFrame(FrameType type = FrameType::kKernel);
  void FreeFrame(Pfn pfn);

  // Order-kHugeOrder (2 MiB) run fast path through the same magazine layer.
  // Failure means fragmentation or exhaustion — the caller's cue to fall back
  // to 4 KiB pages. |prezeroed| (optional) reports whether the whole run is
  // already zero, letting the caller skip its 512-frame zero loop.
  Result<Pfn> AllocHugeRun(bool* prezeroed = nullptr,
                           FrameType type = FrameType::kKernel);
  void FreeHugeRun(Pfn head);

  uint64_t FreeFrameCount() const {
    uint64_t sum = 0;
    for (int n = 0; n < num_nodes_; ++n) {
      sum += arenas_[n]->FreeFrameCount();
    }
    return sum;
  }
  uint64_t TotalFrameCount() const { return total_frames_; }

  // --- NUMA topology over PFN space ----------------------------------------
  int NumNodes() const { return num_nodes_; }
  // A frame's home node, derivable from the PFN alone (arenas are contiguous
  // kMaxOrder-aligned ranges).
  int NodeOfPfn(Pfn pfn) const {
    int node = static_cast<int>(pfn / frames_per_node_);
    return node < num_nodes_ ? node : num_nodes_ - 1;
  }
  void NodePfnRange(int node, Pfn* begin, Pfn* end) const {
    *begin = arenas_[node]->base();
    *end = arenas_[node]->base() + arenas_[node]->frames();
  }
  uint64_t NodeFreeFrameCount(int node) const {
    return arenas_[node]->FreeFrameCount();
  }
  // Sums each arena's free-list walk; nonzero means a frame is chained on a
  // foreign node's free list (the invariant wf_checker enforces).
  uint64_t CountMisplacedFreeFrames();

  // --- Watermarks (reclaim integration) ------------------------------------
  // Linux-style zone watermarks over the GLOBAL free-frame count (summed
  // across arenas — reclaim targets and test semantics stay independent of
  // the node count). Defaults derive from the total at construction
  // (low = total/16, min = total/64); the reclaim subsystem or a test may
  // override them. Allocations never *fail* at a watermark — the watermarks
  // only drive the pressure hook and the policy decisions (kswapd wake,
  // fault throttling, THP suppression) made by the layers above pmm.
  void SetWatermarks(uint64_t low_frames, uint64_t min_frames) {
    low_watermark_.store(low_frames, std::memory_order_relaxed);
    min_watermark_.store(min_frames, std::memory_order_relaxed);
  }
  uint64_t LowWatermark() const { return low_watermark_.load(std::memory_order_relaxed); }
  uint64_t MinWatermark() const { return min_watermark_.load(std::memory_order_relaxed); }
  bool BelowLow() const { return FreeFrameCount() < LowWatermark(); }
  bool BelowMin() const { return FreeFrameCount() < MinWatermark(); }

  // Invoked (outside all buddy locks) after any allocation that leaves the
  // free count under the low watermark. pmm stays ignorant of reclaim: the
  // reclaim subsystem installs its kswapd wake here. Must be cheap,
  // non-blocking, and safe to call concurrently from any thread.
  using PressureHook = void (*)();
  void SetPressureHook(PressureHook hook) {
    pressure_hook_.store(hook, std::memory_order_release);
  }

  // --- Magazine layer -------------------------------------------------------
  // Kill switch for the whole magazine/depot layer (benches ablate against
  // the direct arena-lock path; reclaim never needs it). Disabling flushes
  // everything parked back to the free lists first.
  void SetMagazinesEnabled(bool enabled);
  bool MagazinesEnabled() const {
    return magazines_enabled_.load(std::memory_order_acquire);
  }

  // Returns every parked block — per-CPU magazines and depot shelves, every
  // arena — to the free lists, so no frame is stranded in a cache. Used by
  // the leak checker and by reclaim under watermark pressure (DrainMagazines
  // counts the pressure-driven case).
  void FlushCpuCaches();
  void DrainMagazines();

  // --- Pre-scrub integration -------------------------------------------------
  // Zeroes up to |max_frames| frames' worth of dirty depot magazines (whole
  // magazines at a time, owned exclusively while scrubbing) and moves them to
  // the clean shelf with their head descriptors' `zeroed` flag set. Returns
  // the number of frames zeroed; 0 means no dirty magazines (or an injected
  // kPreScrub fault — frames stay dirty, faults fall back to inline zeroing).
  // Round-robins across arenas so no node's shelf starves.
  uint64_t ScrubBatch(uint64_t max_frames);

  // Fired (outside all buddy locks) whenever a dirty magazine lands in a
  // depot — the pre-scrubber installs its wakeup here.
  using ScrubHook = void (*)();
  void SetScrubHook(ScrubHook hook) {
    scrub_hook_.store(hook, std::memory_order_release);
  }
  void FireScrubHook() {
    if (ScrubHook hook = scrub_hook_.load(std::memory_order_acquire)) {
      hook();
    }
  }

  // "faultpath" telemetry block: magazine/prezero counters plus current depot
  // occupancy (summed across arenas). "numa" block: per-node free frames and
  // the local/remote/spill + CNA counters. Both registered at construction.
  std::string DumpFaultpathJson();
  std::string DumpNumaJson();

 private:
  BuddyAllocator();
  BuddyAllocator(const BuddyAllocator&) = delete;
  BuddyAllocator& operator=(const BuddyAllocator&) = delete;

  // Local-first, nearest-remote-fallback. Counts numa_{local,remote}_allocs
  // and numa_spills.
  Result<Pfn> RouteAlloc(int order, bool* prezeroed, bool* mag_hit);
  // Routes by the frame's PFN to its home arena.
  void RouteFree(Pfn pfn, int order);

  // Fires the pressure hook when the free count has dropped under the low
  // watermark. Called at the tail of every successful allocation path.
  void NotePressure() {
    if (FreeFrameCount() < low_watermark_.load(std::memory_order_relaxed)) {
      if (PressureHook hook = pressure_hook_.load(std::memory_order_acquire)) {
        hook();
      }
    }
  }

  int num_nodes_ = 1;
  uint64_t frames_per_node_ = 0;
  uint64_t total_frames_ = 0;
  std::atomic<uint64_t> low_watermark_{0};
  std::atomic<uint64_t> min_watermark_{0};
  std::atomic<PressureHook> pressure_hook_{nullptr};
  std::atomic<ScrubHook> scrub_hook_{nullptr};
  std::atomic<bool> magazines_enabled_{true};
  std::unique_ptr<BuddyArena> arenas_[kMaxNodes];

  friend class BuddyArena;
};

}  // namespace cortenmm

#endif  // SRC_PMM_BUDDY_H_
