// Binary buddy allocator over the simulated physical memory, following the
// Linux design the paper adopts (§4.5 "Physical memory management"): power-of-
// two blocks with split/coalesce, free-list links stored in page descriptors,
// plus per-CPU order-0 frame caches so hot single-frame allocation (PT pages,
// anonymous pages) does not contend on the global lists.
#ifndef SRC_PMM_BUDDY_H_
#define SRC_PMM_BUDDY_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/cpu.h"
#include "src/common/result.h"
#include "src/common/types.h"
#include "src/sync/spinlock.h"

namespace cortenmm {

class BuddyAllocator {
 public:
  static constexpr int kMaxOrder = 10;  // Up to 4 MiB blocks.

  static BuddyAllocator& Instance();

  // Allocates a 2^order-frame block; returns the first PFN.
  Result<Pfn> AllocBlock(int order);
  void FreeBlock(Pfn pfn, int order);

  // Single-frame fast path through the per-CPU cache.
  Result<Pfn> AllocFrame();
  Result<Pfn> AllocZeroedFrame();
  void FreeFrame(Pfn pfn);

  // Order-kHugeOrder (2 MiB) run fast path through a separate per-CPU cache
  // of whole runs, so huge fault-in does not contend on the global lists any
  // more than base-page fault-in does. Failure means fragmentation or
  // exhaustion — the caller's cue to fall back to 4 KiB pages.
  Result<Pfn> AllocHugeRun();
  void FreeHugeRun(Pfn head);

  uint64_t FreeFrameCount() const { return free_frames_.load(std::memory_order_relaxed); }
  uint64_t TotalFrameCount() const { return total_frames_; }

  // --- Watermarks (reclaim integration) ------------------------------------
  // Linux-style zone watermarks over the free-frame count. Defaults derive
  // from the total at construction (low = total/16, min = total/64); the
  // reclaim subsystem or a test may override them. Allocations never *fail*
  // at a watermark — the watermarks only drive the pressure hook and the
  // policy decisions (kswapd wake, fault throttling, THP suppression) made by
  // the layers above pmm.
  void SetWatermarks(uint64_t low_frames, uint64_t min_frames) {
    low_watermark_.store(low_frames, std::memory_order_relaxed);
    min_watermark_.store(min_frames, std::memory_order_relaxed);
  }
  uint64_t LowWatermark() const { return low_watermark_.load(std::memory_order_relaxed); }
  uint64_t MinWatermark() const { return min_watermark_.load(std::memory_order_relaxed); }
  bool BelowLow() const { return FreeFrameCount() < LowWatermark(); }
  bool BelowMin() const { return FreeFrameCount() < MinWatermark(); }

  // Invoked (outside all buddy locks) after any allocation that leaves the
  // free count under the low watermark. pmm stays ignorant of reclaim: the
  // reclaim subsystem installs its kswapd wake here. Must be cheap,
  // non-blocking, and safe to call concurrently from any thread.
  using PressureHook = void (*)();
  void SetPressureHook(PressureHook hook) {
    pressure_hook_.store(hook, std::memory_order_release);
  }

  // Returns all per-CPU cached frames to the global lists (for accounting in
  // tests and memory-overhead benches).
  void FlushCpuCaches();

 private:
  static constexpr int kCacheBatch = 32;
  static constexpr int kCacheMax = 64;
  static constexpr int kHugeCacheMax = 2;  // Runs parked per CPU (4 MiB).

  BuddyAllocator();
  BuddyAllocator(const BuddyAllocator&) = delete;
  BuddyAllocator& operator=(const BuddyAllocator&) = delete;

  Result<Pfn> AllocBlockLocked(int order);
  void FreeBlockLocked(Pfn pfn, int order);
  void PushFree(Pfn pfn, int order);
  void RemoveFree(Pfn pfn, int order);
  Pfn PopFree(int order);

  struct CpuCache {
    SpinLock lock;  // A cache is normally only touched by its own CPU; the
                    // lock makes FlushCpuCaches and CPU-id collisions safe.
    std::vector<Pfn> frames;
    std::vector<Pfn> huge_runs;  // Heads of parked order-kHugeOrder runs.
  };

  // Fires the pressure hook when the free count has dropped under the low
  // watermark. Called at the tail of every successful allocation path.
  void NotePressure() {
    if (FreeFrameCount() < low_watermark_.load(std::memory_order_relaxed)) {
      if (PressureHook hook = pressure_hook_.load(std::memory_order_acquire)) {
        hook();
      }
    }
  }

  SpinLock lock_;
  Pfn free_heads_[kMaxOrder + 1];
  std::atomic<uint64_t> free_frames_{0};
  uint64_t total_frames_ = 0;
  std::atomic<uint64_t> low_watermark_{0};
  std::atomic<uint64_t> min_watermark_{0};
  std::atomic<PressureHook> pressure_hook_{nullptr};
  CacheAligned<CpuCache> cpu_caches_[kMaxCpus];
};

}  // namespace cortenmm

#endif  // SRC_PMM_BUDDY_H_
