// Page descriptors: one per physical frame, allocated contiguously at boot and
// indexed by PFN — exactly the paper's Figure 3 layout. For PT pages the
// descriptor carries the locks both locking protocols use, the `stale` flag
// CortenMM_adv needs, and the lazily-allocated per-PTE metadata array that
// stores the state advanced memory semantics need outside the MMU (§3.3).
#ifndef SRC_PMM_PAGE_DESC_H_
#define SRC_PMM_PAGE_DESC_H_

#include <atomic>
#include <cstdint>

#include "src/common/cpu.h"
#include "src/common/types.h"
#include "src/sync/bravo.h"
#include "src/sync/cna_lock.h"
#include "src/sync/spinlock.h"

namespace cortenmm {

enum class FrameType : uint8_t {
  kFree = 0,     // On a buddy free list.
  kReserved,     // Never allocatable (frame 0 etc.).
  kAnon,         // Anonymous user data page.
  kFileCache,    // Page-cache page of a simulated file.
  kPageTable,    // A PT page; PT-specific fields are live.
  kSlab,         // Backs the slab allocator.
  kKernel,       // Other kernel allocation (NR logs, swap buffers, ...).
  kCached,       // Parked in a per-CPU buddy cache: freed but not yet on a
                 // free list. Distinct from kFree so the leak checker can
                 // tell a cached frame from a genuinely free one.
};

// Per-PTE metadata entry: 8 bytes packed, one per PTE slot of a PT page,
// indexed by PTE offset (paper §3.3). Encodes the Status of the virtual pages
// the slot covers when that state is not representable in the hardware PTE
// (virtually-allocated, swapped, file-backed, ...). A meta entry on a
// *non-leaf* slot marks the slot's whole aligned span with a uniform status.
struct PteMeta {
  uint8_t tag = 0;     // StatusTag (see src/core/status.h); 0 = none.
  uint8_t perm = 0;    // Perm bits.
  uint16_t aux16 = 0;  // File id / swap device id.
  uint32_t aux32 = 0;  // Page offset within file / block number.

  bool empty() const { return tag == 0; }
  void Clear() { tag = 0; perm = 0; aux16 = 0; aux32 = 0; }
};
static_assert(sizeof(PteMeta) == 8);

// The metadata array hangs off the PT page's descriptor and is allocated on
// demand (it is exactly one frame: 512 entries x 8 B = 4 KiB).
struct PteMetaArray {
  PteMeta entries[kPtesPerPage];
};
static_assert(sizeof(PteMetaArray) == kPageSize);

// Cache-line aligned so two descriptors never share a line: the fault path
// hammers refcount/mapcount/young on its own frame while neighbouring frames'
// descriptors are being written by frees and the reclaim clock on other CPUs.
struct alignas(kCacheLineSize) PageDescriptor {
  // --- Identity / allocator state -----------------------------------------
  std::atomic<FrameType> type{FrameType::kFree};
  uint8_t buddy_order = 0;              // Order of the block this frame heads.
  std::atomic<bool> buddy_free{false};  // Head of a free buddy block.
  Pfn free_next = kInvalidPfn;          // Buddy free-list links.
  Pfn free_prev = kInvalidPfn;

  // --- Shared refcounting ---------------------------------------------------
  // Number of owners (address spaces / caches) holding the frame.
  std::atomic<uint32_t> refcount{0};
  // Number of PTEs (across address spaces) mapping this frame; drives the
  // COW "only mapper left" fast path in the paper's Figure 8 (map_count()).
  std::atomic<uint32_t> mapcount{0};

  // --- PT-page fields (valid while type == kPageTable) ----------------------
  uint8_t pt_level = 0;                // 1 = leaf PT page, kPtLevels = root.
  std::atomic<bool> stale{false};      // Set by CortenMM_adv when unmapped.
  std::atomic<uint16_t> present_ptes{0};  // Populated-entry count, for pruning.
  CnaLock cna;                         // CortenMM_adv exclusive NUMA-aware lock.
  BravoRwLock rw;                      // CortenMM_rw BRAVO-pfq lock.
  std::atomic<PteMetaArray*> meta{nullptr};  // Lazy per-PTE metadata array.

  // --- Reverse mapping (valid for kAnon / kFileCache) ------------------------
  // Anonymous: owner = AddrSpace*, owner_key = mapping VA.
  // File cache: owner = SimFile*, owner_key = page index within the file.
  SpinLock rmap_lock;
  void* owner = nullptr;
  uint64_t owner_key = 0;

  // --- Reclaim clock state (valid for kAnon) --------------------------------
  // Second-chance referenced bit: set on (re)allocation and on every software
  // fault that touches the frame; the reclaim clock hand clears it on the
  // first pass and only evicts frames it finds cold on the second.
  std::atomic<bool> young{true};

  // --- Pre-scrub state (valid on the HEAD frame of a parked block) ----------
  // True iff the whole block's contents are all-zero while it sits parked in
  // a magazine or depot shelf. Set only by the pre-scrubber (which owns the
  // block exclusively while zeroing; release store), consumed with an acquire
  // load + relaxed store on the allocation path (the block is exclusively the
  // allocator's once popped — no RMW needed), and cleared on every free/flush
  // entry. Deliberately NOT touched by ResetForAlloc: the consumer reads it
  // before resetting.
  std::atomic<bool> zeroed{false};

  void ResetForAlloc(FrameType t) {
    type.store(t, std::memory_order_relaxed);
    refcount.store(1, std::memory_order_relaxed);
    mapcount.store(0, std::memory_order_relaxed);
    stale.store(false, std::memory_order_relaxed);
    present_ptes.store(0, std::memory_order_relaxed);
    pt_level = 0;
    owner = nullptr;
    owner_key = 0;
    young.store(true, std::memory_order_relaxed);
  }
};

}  // namespace cortenmm

#endif  // SRC_PMM_PAGE_DESC_H_
