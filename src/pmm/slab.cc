#include "src/pmm/slab.h"

#include <cassert>

#include "src/fault/fault_inject.h"
#include "src/pmm/buddy.h"
#include "src/pmm/page_desc.h"
#include "src/pmm/phys_mem.h"

namespace cortenmm {

SlabCache::SlabCache(size_t object_size, const char* name)
    : name_(name),
      object_size_(AlignUp(object_size < sizeof(FreeObject) ? sizeof(FreeObject) : object_size,
                           alignof(std::max_align_t))),
      objects_per_slab_(kPageSize / object_size_) {
  assert(object_size_ <= kPageSize / 2);
  assert(objects_per_slab_ >= 2);
  // Touch the allocator singletons now: a static SlabCache's destructor
  // returns frames to them, so they must be constructed first (and therefore
  // destroyed last).
  BuddyAllocator::Instance();
  PhysMem::Instance();
}

SlabCache::~SlabCache() {
  for (Pfn pfn : slabs_) {
    BuddyAllocator::Instance().FreeFrame(pfn);
  }
}

bool SlabCache::GrowLocked() {
  Result<Pfn> frame = BuddyAllocator::Instance().AllocFrame();
  if (!frame.ok()) {
    return false;
  }
  PhysMem& mem = PhysMem::Instance();
  mem.Descriptor(*frame).type.store(FrameType::kSlab, std::memory_order_relaxed);
  slabs_.push_back(*frame);
  ++slab_frames_;
  std::byte* base = mem.FrameData(*frame);
  for (size_t i = 0; i < objects_per_slab_; ++i) {
    auto* obj = reinterpret_cast<FreeObject*>(base + i * object_size_);
    obj->next = free_list_;
    free_list_ = obj;
  }
  return true;
}

void* SlabCache::Alloc() {
  if (FaultInjector::Instance().ShouldFail(FaultSite::kSlabAlloc)) {
    return nullptr;
  }
  Magazine& mag = magazines_[CurrentCpu()].value;
  {
    SpinGuard guard(mag.lock);
    if (!mag.objects.empty()) {
      void* obj = mag.objects.back();
      mag.objects.pop_back();
      return obj;
    }
  }
  // Refill a batch from the global freelist.
  std::vector<void*> batch;
  batch.reserve(kMagazineBatch);
  {
    SpinGuard guard(lock_);
    for (size_t i = 0; i < kMagazineBatch; ++i) {
      if (free_list_ == nullptr && !GrowLocked()) {
        break;
      }
      if (free_list_ == nullptr) {
        break;
      }
      batch.push_back(free_list_);
      free_list_ = free_list_->next;
    }
  }
  if (batch.empty()) {
    return nullptr;
  }
  void* obj = batch.back();
  batch.pop_back();
  if (!batch.empty()) {
    SpinGuard guard(mag.lock);
    mag.objects.insert(mag.objects.end(), batch.begin(), batch.end());
  }
  return obj;
}

void SlabCache::Free(void* obj) {
  Magazine& mag = magazines_[CurrentCpu()].value;
  {
    SpinGuard guard(mag.lock);
    if (mag.objects.size() < kMagazineMax) {
      mag.objects.push_back(obj);
      return;
    }
  }
  SpinGuard guard(lock_);
  auto* node = static_cast<FreeObject*>(obj);
  node->next = free_list_;
  free_list_ = node;
}

}  // namespace cortenmm
