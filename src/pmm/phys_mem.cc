#include "src/pmm/phys_mem.h"

#include <sys/mman.h>

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <new>

#include "src/pmm/page_desc.h"

namespace cortenmm {
namespace {

size_t g_configured_bytes = 0;

size_t DefaultBytes() {
  if (const char* env = std::getenv("CORTENMM_PHYS_MB")) {
    long mb = std::atol(env);
    if (mb > 0) {
      return static_cast<size_t>(mb) << 20;
    }
  }
  return size_t{1024} << 20;  // 1 GiB
}

}  // namespace

void PhysMem::Configure(size_t bytes) { g_configured_bytes = bytes; }

PhysMem& PhysMem::Instance() {
  static PhysMem mem;
  return mem;
}

PhysMem::PhysMem() {
  bytes_ = AlignUp(g_configured_bytes != 0 ? g_configured_bytes : DefaultBytes(), kPageSize);
  num_frames_ = bytes_ >> kPageBits;

  // NORESERVE + demand zero: untouched simulated frames cost no host memory.
  void* mapping = mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  assert(mapping != MAP_FAILED);
  arena_ = static_cast<std::byte*>(mapping);
#ifdef MADV_NOHUGEPAGE
  // Opt out of transparent huge pages: background THP collapse right after a
  // burst of frame writes perturbs benchmark timing unpredictably, and frame
  // access locality in the simulated MM bears no relation to host THP gains.
  madvise(arena_, bytes_, MADV_NOHUGEPAGE);
#endif
#ifdef MADV_UNMERGEABLE
  // Also opt out of KSM: the MM zero-fills frames constantly; same-page
  // merging would turn first writes into copy-on-write breaks.
  madvise(arena_, bytes_, MADV_UNMERGEABLE);
#endif

  descriptors_ = new PageDescriptor[num_frames_];
}

PhysMem::~PhysMem() {
  delete[] descriptors_;
  if (arena_ != nullptr) {
    munmap(arena_, bytes_);
  }
}

PageDescriptor& PhysMem::Descriptor(Pfn pfn) {
  assert(pfn < num_frames_);
  return descriptors_[pfn];
}

const PageDescriptor& PhysMem::Descriptor(Pfn pfn) const {
  assert(pfn < num_frames_);
  return descriptors_[pfn];
}

void PhysMem::Prewarm() {
  for (size_t page = 0; page < num_frames_; ++page) {
    // One write per host page is enough to materialize it.
    arena_[page << kPageBits] = std::byte{0};
  }
  // The descriptor array is as large as tens of MB; materialize it too.
  auto* desc_bytes = reinterpret_cast<volatile char*>(descriptors_);
  for (size_t off = 0; off < num_frames_ * sizeof(PageDescriptor); off += kPageSize) {
    (void)desc_bytes[off];
  }
}

void PhysMem::ZeroFrame(Pfn pfn) { std::memset(FrameData(pfn), 0, kPageSize); }

void PhysMem::CopyFrame(Pfn dst, Pfn src) {
  std::memcpy(FrameData(dst), FrameData(src), kPageSize);
}

}  // namespace cortenmm
