#include "src/reclaim/reclaim.h"

#include <chrono>
#include <sstream>

#include "src/common/cpu.h"
#include "src/common/stats.h"
#include "src/core/vm_space.h"
#include "src/obs/telemetry.h"
#include "src/pmm/buddy.h"
#include "src/pmm/page_desc.h"
#include "src/pmm/phys_mem.h"

namespace cortenmm {

ReclaimSystem& ReclaimSystem::Instance() {
  static ReclaimSystem* system = new ReclaimSystem();  // Never destroyed.
  return *system;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

namespace {
void PressureHookTrampoline() { ReclaimSystem::Instance().Wake(); }
void ScrubHookTrampoline() { ReclaimSystem::Instance().WakeScrubber(); }
}  // namespace

void ReclaimSystem::Start(const ReclaimConfig& config) {
  if (running_.load(std::memory_order_acquire)) {
    return;
  }
  config_ = config;
  stop_.store(false, std::memory_order_relaxed);
  wake_pending_.store(false, std::memory_order_relaxed);
  scrub_pending_.store(false, std::memory_order_relaxed);

  BuddyAllocator& buddy = BuddyAllocator::Instance();
  if (config_.low_watermark != 0 || config_.min_watermark != 0) {
    uint64_t low = config_.low_watermark != 0 ? config_.low_watermark
                                              : buddy.LowWatermark();
    uint64_t min = config_.min_watermark != 0 ? config_.min_watermark
                                              : buddy.MinWatermark();
    buddy.SetWatermarks(low, min);
  }

  int groups = (OnlineCpuCount() + config_.cpus_per_group - 1) /
               (config_.cpus_per_group > 0 ? config_.cpus_per_group : 1);
  if (groups < 1) {
    groups = 1;
  }
  // One kswapd per CPU group, each adopted by a NUMA node round-robin: with
  // the default 8-CPU groups and 2 nodes, every node gets its own daemons
  // sweeping its own arena's PFN range (node-local reclaim), while the wake
  // machinery and watermarks stay shared.
  const int nodes = buddy.NumNodes();
  for (int g = 0; g < groups; ++g) {
    daemons_.emplace_back([this, g, nodes] { DaemonLoop(g % nodes); });
  }

  if (config_.prescrub) {
    scrubber_ = std::thread([this] { ScrubberLoop(); });
    buddy.SetScrubHook(&ScrubHookTrampoline);
  }

  running_.store(true, std::memory_order_release);
  SetPressureGovernor(this);
  buddy.SetPressureHook(&PressureHookTrampoline);
  Telemetry::Instance().AddJsonSection(
      "reclaim", [] { return ReclaimSystem::Instance().DumpJson(); });
}

void ReclaimSystem::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  // Unhook first so no new governor calls or wakes start after this point.
  BuddyAllocator::Instance().SetPressureHook(nullptr);
  BuddyAllocator::Instance().SetScrubHook(nullptr);
  SetPressureGovernor(nullptr);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    std::lock_guard<std::mutex> scrub_lock(scrub_mu_);
    stop_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  scrub_cv_.notify_all();
  for (std::thread& daemon : daemons_) {
    daemon.join();
  }
  daemons_.clear();
  if (scrubber_.joinable()) {
    scrubber_.join();
  }
  // Spaces destroyed after Stop() no longer call OnSpaceDestroying, so the
  // registry must not outlive this run. Wait out in-flight pins (a concurrent
  // direct reclaimer may still hold one), then drop every entry.
  {
    std::unique_lock<std::mutex> lock(registry_mu_);
    for (auto& [space, tenant] : tenants_) {
      registry_cv_.wait(lock, [&] { return tenant->pins == 0; });
    }
    tenants_.clear();
  }
  running_.store(false, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Tenant registry
// ---------------------------------------------------------------------------

void ReclaimSystem::OnSpaceCreated(VmSpace* space) {
  auto tenant = std::make_shared<Tenant>();
  tenant->vm = space;
  std::lock_guard<std::mutex> lock(registry_mu_);
  tenants_[&space->addr_space()] = std::move(tenant);
}

void ReclaimSystem::OnSpaceDestroying(VmSpace* space) {
  std::unique_lock<std::mutex> lock(registry_mu_);
  auto it = tenants_.find(&space->addr_space());
  if (it == tenants_.end()) {
    return;
  }
  std::shared_ptr<Tenant> tenant = std::move(it->second);
  tenants_.erase(it);
  // After the erase no reclaimer can take a NEW pin; wait out existing ones
  // so ~VmSpace never races an in-flight SwapOut on this space.
  registry_cv_.wait(lock, [&] { return tenant->pins == 0; });
}

std::shared_ptr<ReclaimSystem::Tenant> ReclaimSystem::Pin(AddrSpace* owner) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = tenants_.find(owner);
  if (it == tenants_.end()) {
    return nullptr;
  }
  ++it->second->pins;
  return it->second;
}

void ReclaimSystem::Unpin(const std::shared_ptr<Tenant>& tenant) {
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    --tenant->pins;
  }
  registry_cv_.notify_all();
}

void ReclaimSystem::SetResidentLimit(VmSpace* space, uint64_t limit_pages) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = tenants_.find(&space->addr_space());
  if (it != tenants_.end()) {
    it->second->limit_pages.store(limit_pages, std::memory_order_relaxed);
  }
}

uint64_t ReclaimSystem::ResidentLimit(VmSpace* space) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = tenants_.find(&space->addr_space());
  return it == tenants_.end()
             ? 0
             : it->second->limit_pages.load(std::memory_order_relaxed);
}

size_t ReclaimSystem::TenantCount() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return tenants_.size();
}

// ---------------------------------------------------------------------------
// The clock
// ---------------------------------------------------------------------------

uint64_t ReclaimSystem::ReclaimPages(uint64_t target_pages, AddrSpace* only,
                                     uint64_t max_scan, int node) {
  PhysMem& mem = PhysMem::Instance();
  uint64_t frames = mem.num_frames();
  if (frames <= 1 || target_pages == 0) {
    return 0;
  }
  // Sweep range: the whole machine (node < 0), or one node's arena with its
  // own clock hand, so node-local daemons evict node-local frames and their
  // hands do not thrash each other's second-chance state.
  Pfn range_begin = 1;
  uint64_t range_frames = frames - 1;
  std::atomic<uint64_t>* hand = &clock_hand_;
  if (node >= 0) {
    Pfn begin, end;
    BuddyAllocator::Instance().NodePfnRange(node, &begin, &end);
    range_begin = begin == 0 ? 1 : begin;  // Frame 0 is reserved.
    range_frames = end - range_begin;
    hand = &node_clock_hands_[node];
  }
  if (range_frames == 0) {
    return 0;
  }
  if (max_scan == 0) {
    // Two full sweeps: the first clears `young` everywhere, the second may
    // evict — the clock's second chance, bounded.
    max_scan = 2 * range_frames;
  }
  uint64_t evicted = 0;
  uint64_t scanned = 0;
  while (evicted < target_pages && scanned < max_scan) {
    Pfn pfn = range_begin +
              (hand->fetch_add(1, std::memory_order_relaxed) % range_frames);
    ++scanned;
    PageDescriptor& desc = mem.Descriptor(pfn);
    if (desc.type.load(std::memory_order_relaxed) != FrameType::kAnon) {
      continue;
    }
    // Only exclusive anon pages are candidates — the same criterion SwapOut
    // re-checks authoritatively under the subtree lock.
    if (desc.mapcount.load(std::memory_order_acquire) != 1 ||
        desc.refcount.load(std::memory_order_acquire) != 1) {
      continue;
    }
    if (desc.young.exchange(false, std::memory_order_relaxed)) {
      continue;  // Second chance: referenced since the last pass.
    }
    AddrSpace* owner;
    Vaddr va;
    {
      SpinGuard guard(desc.rmap_lock);
      owner = static_cast<AddrSpace*>(desc.owner);
      va = desc.owner_key;
    }
    if (owner == nullptr || (only != nullptr && owner != only)) {
      continue;
    }
    std::shared_ptr<Tenant> tenant = Pin(owner);
    if (tenant == nullptr) {
      continue;  // Tenant gone (or never registered); hint is stale.
    }
    // The authoritative eviction: SwapOut revalidates under the subtree lock
    // (splitting a huge leaf first if the hint points into one), so a stale
    // hint is at worst a no-op.
    Result<uint64_t> swapped = tenant->vm->SwapOut(va, kPageSize);
    Unpin(tenant);
    if (swapped.ok() && *swapped > 0) {
      evicted += *swapped;
    }
  }
  CountEvent(Counter::kReclaimScannedFrames, scanned);
  if (evicted > 0) {
    CountEvent(Counter::kReclaimPagesEvicted, evicted);
  }
  return evicted;
}

// ---------------------------------------------------------------------------
// kswapd
// ---------------------------------------------------------------------------

void ReclaimSystem::Wake() {
  if (stop_.load(std::memory_order_acquire)) {
    return;
  }
  if (!wake_pending_.exchange(true, std::memory_order_acq_rel)) {
    CountEvent(Counter::kReclaimWakeups);
    wake_cv_.notify_all();
  }
}

void ReclaimSystem::DaemonLoop(int node) {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (!stop_.load(std::memory_order_acquire)) {
    // Periodic tick besides the explicit wake: a notify that raced the wait
    // is covered, and sustained pressure keeps being worked on.
    wake_cv_.wait_for(lock, std::chrono::milliseconds(20), [this] {
      return stop_.load(std::memory_order_acquire) ||
             wake_pending_.load(std::memory_order_acquire);
    });
    if (stop_.load(std::memory_order_acquire)) {
      break;
    }
    wake_pending_.store(false, std::memory_order_release);
    lock.unlock();
    if (buddy.BelowLow()) {
      // Watermark drain ordering: magazines first, clock second. Frames
      // parked in per-CPU magazines and depot shelves are counted free but
      // only reachable from their own CPU (or a lucky depot swap); under
      // pressure they go back to the global lists — where every CPU, and the
      // buddy's coalescing, can use them — before any page is evicted.
      buddy.DrainMagazines();
    }
    while (!stop_.load(std::memory_order_acquire) && buddy.BelowLow()) {
      // Node-local sweep first; if the home arena yields nothing, help the
      // rest of the machine (global pressure is what woke us, and another
      // node's cold pages are better than a stall).
      uint64_t got = ReclaimPages(config_.bg_batch, nullptr, /*max_scan=*/0,
                                  /*node=*/node);
      if (got == 0) {
        got = ReclaimPages(config_.bg_batch);
      }
      if (got == 0) {
        CountEvent(Counter::kReclaimStalls);
        break;  // Nothing evictable; wait for the next wake/tick.
      }
    }
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// Pre-scrubber
// ---------------------------------------------------------------------------

void ReclaimSystem::WakeScrubber() {
  if (stop_.load(std::memory_order_acquire)) {
    return;
  }
  if (!scrub_pending_.exchange(true, std::memory_order_acq_rel)) {
    scrub_cv_.notify_all();
  }
}

void ReclaimSystem::ScrubberLoop() {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  std::unique_lock<std::mutex> lock(scrub_mu_);
  while (!stop_.load(std::memory_order_acquire)) {
    // Same wake discipline as kswapd: an explicit hook wake (a dirty magazine
    // landed in the depot) plus a periodic tick covering missed notifies.
    scrub_cv_.wait_for(lock, std::chrono::milliseconds(20), [this] {
      return stop_.load(std::memory_order_acquire) ||
             scrub_pending_.load(std::memory_order_acquire);
    });
    if (stop_.load(std::memory_order_acquire)) {
      break;
    }
    scrub_pending_.store(false, std::memory_order_release);
    lock.unlock();
    // Zero until the dirty shelves are empty, in bounded batches so shutdown
    // is never more than one batch away. Don't scrub below the low watermark:
    // kswapd is about to drain these very magazines to the global lists
    // (which discards the zeroed flag), so the memset work would be wasted
    // bandwidth exactly when the machine has none to spare.
    while (!stop_.load(std::memory_order_acquire) && !buddy.BelowLow() &&
           buddy.ScrubBatch(config_.scrub_batch) > 0) {
    }
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// Governor hooks (the fault path's view)
// ---------------------------------------------------------------------------

void ReclaimSystem::BeforeFault(VmSpace* space) {
  // Per-tenant resident limit: reclaim the tenant's own cold pages before the
  // fault grows its RSS further. Bounded scan — a fully-hot working set must
  // not turn every fault into a full PFN sweep.
  std::shared_ptr<Tenant> self = Pin(&space->addr_space());
  if (self != nullptr) {
    uint64_t limit = self->limit_pages.load(std::memory_order_relaxed);
    uint64_t resident = space->addr_space().ResidentPagesFast();
    if (limit != 0 && resident >= limit) {
      CountEvent(Counter::kReclaimLimitHits);
      CountEvent(Counter::kReclaimDirectRuns);
      uint64_t want = resident - limit + 1;
      ReclaimPages(want, &space->addr_space(),
                   /*max_scan=*/2048 + 8 * want);
    }
  }
  if (self != nullptr) {
    Unpin(self);
  }

  // Min-watermark throttle: allocations below MIN would race kswapd to the
  // floor, so the fault trades latency for progress — bounded, so a fault
  // can degrade to slow but never block forever.
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  for (int round = 0; round < config_.max_throttle_rounds && buddy.BelowMin();
       ++round) {
    CountEvent(Counter::kReclaimThrottles);
    Wake();
    uint64_t got = ReclaimPages(config_.direct_batch, nullptr, /*max_scan=*/4096);
    if (got == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(config_.throttle_us));
    }
  }
}

bool ReclaimSystem::OnFaultNoMem(VmSpace* space, int attempt) {
  (void)space;
  if (attempt >= config_.max_fault_retries) {
    return false;
  }
  CountEvent(Counter::kReclaimDirectRuns);
  uint64_t got = ReclaimPages(config_.direct_batch);
  if (got > 0) {
    return true;
  }
  CountEvent(Counter::kReclaimStalls);
  // Nothing evictable. Frames parked in OTHER CPUs' buddy caches are
  // invisible to this CPU's allocation path; flushing them to the global
  // lists may be all the fault needs.
  BuddyAllocator::Instance().FlushCpuCaches();
  // A couple of blind retries also absorb transient failures (a racing freer,
  // an injected allocator fault) without letting a truly-exhausted machine
  // spin forever.
  return attempt < 2 && BuddyAllocator::Instance().FreeFrameCount() > 0;
}

bool ReclaimSystem::AllowHugeFaultIn(VmSpace* space) {
  (void)space;
  return !BuddyAllocator::Instance().BelowLow();
}

uint64_t ReclaimSystem::FaultAroundBudget(VmSpace* space) {
  if (BuddyAllocator::Instance().BelowLow()) {
    return 0;  // No speculation while kswapd is fighting for frames.
  }
  std::shared_ptr<Tenant> tenant = Pin(&space->addr_space());
  if (tenant == nullptr) {
    return ~0ull;
  }
  uint64_t limit = tenant->limit_pages.load(std::memory_order_relaxed);
  uint64_t budget = ~0ull;
  if (limit != 0) {
    // Around-mapped pages count against the tenant's RSS like any others:
    // the budget is the headroom left after the faulting page itself.
    uint64_t resident = space->addr_space().ResidentPagesFast();
    budget = resident + 1 >= limit ? 0 : limit - resident - 1;
  }
  Unpin(tenant);
  return budget;
}

bool ReclaimSystem::OverLimit(VmSpace* space) {
  std::shared_ptr<Tenant> tenant = Pin(&space->addr_space());
  if (tenant == nullptr) {
    return false;
  }
  uint64_t limit = tenant->limit_pages.load(std::memory_order_relaxed);
  bool over = limit != 0 && space->addr_space().ResidentPagesFast() >= limit;
  Unpin(tenant);
  return over;
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

std::string ReclaimSystem::DumpJson() {
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  std::ostringstream os;
  os << "{\"total_frames\":" << buddy.TotalFrameCount()
     << ",\"free_frames\":" << buddy.FreeFrameCount()
     << ",\"low_watermark\":" << buddy.LowWatermark()
     << ",\"min_watermark\":" << buddy.MinWatermark()
     << ",\"below_low\":" << (buddy.BelowLow() ? 1 : 0)
     << ",\"below_min\":" << (buddy.BelowMin() ? 1 : 0)
     << ",\"tenants\":" << TenantCount()
     << ",\"kswapd_threads\":" << daemons_.size()
     << ",\"running\":" << (running() ? 1 : 0) << "}";
  return os.str();
}

}  // namespace cortenmm
