// Memory-pressure survival: kswapd-style background reclaim, a second-chance
// clock over the frame descriptors, and per-tenant resident-set limits.
//
// The machine's operating regime under overcommit (ROADMAP item 2): many
// VmSpaces ("tenants") whose working sets sum past physical memory. This
// subsystem keeps faults succeeding — slowly — instead of surfacing kNoMem:
//
//  * Watermarks. The buddy allocator carries low/min free-frame watermarks
//    (src/pmm). Every allocation that leaves the free count under LOW fires
//    the pressure hook, which wakes the background reclaimers. Under MIN the
//    fault path throttles: it runs direct reclaim and sleeps rather than
//    letting allocations race the reclaimers to the floor.
//
//  * Clock. Eviction candidates come from a global second-chance clock hand
//    sweeping the PFN space. A frame is a candidate when it is exclusive
//    anonymous (type kAnon, mapcount == refcount == 1) and its `young` bit —
//    set at allocation and on every software fault — has already been cleared
//    by a previous pass. The hand only generates *hints*: the authoritative
//    check happens inside VmSpace::SwapOut under the normal RCursor subtree
//    locks, so a stale hint evicts nothing (or harmlessly evicts a page that
//    became cold again) — reclaim is always semantically invisible.
//
//  * kswapd. Start() spawns one background reclaimer per CPU group
//    (cpus_per_group simulated CPUs each, introducing the group notion to
//    src/sim's flat topology). They sleep on a condvar, wake on the pressure
//    hook (or a periodic tick, covering missed wakes), and evict until the
//    free count is back above LOW, via SwapOut + SplitLeaf under the normal
//    lock discipline.
//
//  * Tenants. Every VmSpace registers here on construction (via the
//    MemPressureGovernor hooks in src/core/pressure.h) and deregisters at the
//    START of destruction, spinning out any reclaimer that still holds a pin
//    on it. SetResidentLimit() arms a cgroup-style RSS cap: a fault that
//    finds its tenant over limit first direct-reclaims the tenant's own cold
//    pages (kReclaimLimitHits), and the ring frontend bounces resident-
//    growing submissions for that tenant (kRingLimitRejects).
#ifndef SRC_RECLAIM_RECLAIM_H_
#define SRC_RECLAIM_RECLAIM_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/topology.h"
#include "src/common/types.h"
#include "src/core/pressure.h"

namespace cortenmm {

class AddrSpace;

struct ReclaimConfig {
  // Simulated CPUs per kswapd: Start() spawns ceil(online / cpus_per_group)
  // background reclaimer threads.
  int cpus_per_group = 8;
  // Watermarks in frames; 0 keeps the buddy's defaults (total/16, total/64).
  uint64_t low_watermark = 0;
  uint64_t min_watermark = 0;
  // Eviction target per background scan round.
  uint64_t bg_batch = 64;
  // Eviction target per direct-reclaim pass from a fault path.
  uint64_t direct_batch = 32;
  // A fault retries at most this many times after kNoMem (each retry is
  // preceded by a direct-reclaim pass that made progress).
  int max_fault_retries = 16;
  // Throttle sleep below the min watermark, microseconds per round.
  int throttle_us = 200;
  // Bounded throttle rounds per fault (so a fault cannot sleep forever).
  int max_throttle_rounds = 8;
  // Background pre-scrub: a dedicated daemon zeroes freed frames parked on
  // the buddy depot's dirty shelves (BuddyAllocator::ScrubBatch) so the
  // demand-zero fault path consumes pre-zeroed frames and skips the inline
  // memset. false leaves frames dirty — faults zero inline, as before.
  bool prescrub = true;
  // Frames zeroed per scrubber pass between stop checks.
  uint64_t scrub_batch = 512;
};

class ReclaimSystem : public MemPressureGovernor {
 public:
  static ReclaimSystem& Instance();

  // Installs the watermarks, the buddy pressure hook, and the pressure
  // governor, then spawns the kswapd threads. Tenants register on VmSpace
  // construction from this point on — spaces created before Start() are
  // invisible to reclaim. Idempotent.
  void Start(const ReclaimConfig& config = ReclaimConfig());
  // Joins the kswapd threads, uninstalls the hooks, and empties the tenant
  // registry (waiting out in-flight pins). Idempotent.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Arms a resident-set limit (in pages, 0 = unlimited) for a registered
  // tenant. Faults beyond the limit degrade to direct reclaim of the tenant's
  // own cold pages; ring submissions that would grow the RSS are bounced.
  void SetResidentLimit(VmSpace* space, uint64_t limit_pages);
  uint64_t ResidentLimit(VmSpace* space);

  // One reclaim pass: advance the clock hand until |target_pages| have been
  // evicted, |max_scan| descriptors were examined, or the PFN space yields
  // nothing. |only| restricts eviction to one tenant's pages (the per-tenant
  // limit path). |node| >= 0 scopes the sweep to that NUMA node's PFN range
  // (its own clock hand); -1 sweeps the whole machine. Returns pages evicted.
  // Safe from any thread holding no subtree locks.
  uint64_t ReclaimPages(uint64_t target_pages, AddrSpace* only = nullptr,
                        uint64_t max_scan = 0, int node = -1);

  // Wakes the background reclaimers (the buddy pressure hook target).
  void Wake();

  size_t TenantCount();

  // --- MemPressureGovernor -------------------------------------------------
  void OnSpaceCreated(VmSpace* space) override;
  void OnSpaceDestroying(VmSpace* space) override;
  void BeforeFault(VmSpace* space) override;
  bool OnFaultNoMem(VmSpace* space, int attempt) override;
  bool AllowHugeFaultIn(VmSpace* space) override;
  bool OverLimit(VmSpace* space) override;
  // Fault-around admission: 0 under the low watermark (speculative mappings
  // would immediately deepen the pressure kswapd is fighting), otherwise the
  // tenant's remaining resident headroom (unlimited tenants get ~0ull).
  uint64_t FaultAroundBudget(VmSpace* space) override;

  // Wakes the pre-scrubber (the buddy scrub hook target).
  void WakeScrubber();

  // The telemetry watermark-state block: {"free_frames":...,...}.
  std::string DumpJson();

 private:
  ReclaimSystem() = default;

  struct Tenant {
    VmSpace* vm = nullptr;
    std::atomic<uint64_t> limit_pages{0};
    // Reclaimers pin a tenant while calling into its VmSpace; deregistration
    // waits until every pin is dropped before ~VmSpace proceeds.
    int pins = 0;
  };

  std::shared_ptr<Tenant> Pin(AddrSpace* owner);
  void Unpin(const std::shared_ptr<Tenant>& tenant);
  // Each daemon is a node-local kswapd: it sweeps its home node's PFN range
  // first and falls back to a whole-machine pass only when its node has
  // nothing evictable (the watermarks themselves stay global).
  void DaemonLoop(int node);
  void ScrubberLoop();

  ReclaimConfig config_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> wake_pending_{false};
  std::vector<std::thread> daemons_;

  // Pre-scrubber (one thread; zeroing is memory-bandwidth bound, not
  // CPU bound, so more would only fight the mutators for bandwidth).
  std::mutex scrub_mu_;
  std::condition_variable scrub_cv_;
  std::atomic<bool> scrub_pending_{false};
  std::thread scrubber_;

  std::mutex registry_mu_;
  std::condition_variable registry_cv_;
  std::map<AddrSpace*, std::shared_ptr<Tenant>> tenants_;

  std::atomic<uint64_t> clock_hand_{1};
  // Per-node clock hands for the node-scoped daemon sweeps (indexed by NUMA
  // node id; the global hand above serves direct reclaim and tenant limits).
  std::atomic<uint64_t> node_clock_hands_[kMaxNodes] = {};
};

// RAII Start/Stop for tests and benches.
class ScopedReclaim {
 public:
  explicit ScopedReclaim(const ReclaimConfig& config = ReclaimConfig()) {
    ReclaimSystem::Instance().Start(config);
  }
  ~ScopedReclaim() { ReclaimSystem::Instance().Stop(); }
  ScopedReclaim(const ScopedReclaim&) = delete;
  ScopedReclaim& operator=(const ScopedReclaim&) = delete;
};

}  // namespace cortenmm

#endif  // SRC_RECLAIM_RECLAIM_H_
