#include "src/ring/mm_ring.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "src/common/stats.h"
#include "src/obs/telemetry.h"

namespace cortenmm {

const char* MmOpCodeName(MmOpCode op) {
  switch (op) {
    case MmOpCode::kNop:
      return "nop";
    case MmOpCode::kMmapAnon:
      return "mmap_anon";
    case MmOpCode::kMmapAnonFixed:
      return "mmap_anon_fixed";
    case MmOpCode::kMunmap:
      return "munmap";
    case MmOpCode::kMprotect:
      return "mprotect";
    case MmOpCode::kFault:
      return "fault";
    case MmOpCode::kMmapFilePrivate:
      return "mmap_file_private";
    case MmOpCode::kMmapShared:
      return "mmap_shared";
    case MmOpCode::kMsync:
      return "msync";
    case MmOpCode::kPkeyMprotect:
      return "pkey_mprotect";
    case MmOpCode::kSwapOut:
      return "swap_out";
  }
  return "unknown";
}

MmRing::MmRing(Executor executor)
    : executor_(std::move(executor)), cpus_(std::make_unique<PerCpu[]>(kMaxCpus)) {}

MmRing::~MmRing() {
  // Apply straggler ops so destruction never loses a submitted operation's
  // side effects (their completions die with the ring, but the caller already
  // chose not to reap them).
  if (pending_.load(std::memory_order_acquire) != 0) {
    CnaNode* node = CnaNodePool::Get();
    combiner_lock_.Lock(node);
    Drain();
    combiner_lock_.Unlock(node);
    CnaNodePool::Put(node);
  }
}

bool MmRing::Submit(const MmSqe& sqe) {
  PerCpu& pc = cpus_[CurrentCpu() % kMaxCpus];
  uint32_t tail = pc.sq_tail.load(std::memory_order_relaxed);
  if (tail - pc.cq_head.load(std::memory_order_acquire) >= kDepth) {
    // At the outstanding limit. Unsubmitted ops clear via an inline drain;
    // posted-but-unreaped completions only clear when the caller reaps.
    CombineOnce();
    if (tail - pc.cq_head.load(std::memory_order_acquire) >= kDepth) {
      CountEvent(Counter::kRingFullRejects);
      return false;
    }
  }
  // outstanding < kDepth implies the sq slot at tail % kDepth was consumed by
  // a drain at least kDepth ops ago, so the owner may overwrite it.
  // Weak-memory audit (PR 9): the plain slot copy before the sq_tail release
  // store is TSO-safe — the FIFO store buffer commits the slot bytes before
  // the tail, so a combiner that acquires the new tail reads a whole SQE.
  // Model-checked by MakeRingPublishLitmus (src/verif/litmus_model.cc);
  // RingVariant::kTailBeforeSlot keeps the inverted order as the regression.
  pc.sq[tail % kDepth] = sqe;
  pc.sq_tail.store(tail + 1, std::memory_order_release);
  pending_.fetch_add(1, std::memory_order_release);
  CountEvent(Counter::kRingOpsSubmitted);
  return true;
}

bool MmRing::Reap(MmCqe* out) {
  PerCpu& pc = cpus_[CurrentCpu() % kMaxCpus];
  uint32_t head = pc.cq_head.load(std::memory_order_relaxed);
  if (head == pc.cq_tail.load(std::memory_order_acquire)) {
    return false;
  }
  *out = pc.cq[head % kDepth];
  pc.cq_head.store(head + 1, std::memory_order_release);
  return true;
}

void MmRing::DrainBarrier() {
  PerCpu& pc = cpus_[CurrentCpu() % kMaxCpus];
  // Done when every op this CPU submitted has a posted completion. The loop
  // terminates because our ops are visible in our sq before any CombineOnce
  // below: whichever combiner runs next collects and posts them (or a
  // concurrent combiner already did, which the re-check observes).
  while (pc.cq_tail.load(std::memory_order_acquire) !=
         pc.sq_tail.load(std::memory_order_relaxed)) {
    CombineOnce();
  }
}

uint32_t MmRing::Outstanding() const {
  const PerCpu& pc = cpus_[CurrentCpu() % kMaxCpus];
  return pc.sq_tail.load(std::memory_order_relaxed) -
         pc.cq_head.load(std::memory_order_relaxed);
}

void MmRing::CombineOnce() {
  CnaNode* node = CnaNodePool::Get();
  combiner_lock_.Lock(node);
  // Re-check under the lock: the previous combiner may have executed our ops
  // on our behalf while we waited in the MCS queue (flat combining's win).
  if (pending_.load(std::memory_order_acquire) != 0) {
    Drain();
  }
  combiner_lock_.Unlock(node);
  CnaNodePool::Put(node);
}

void MmRing::PostCompletion(int cpu, const MmCqe& cqe) {
  PerCpu& pc = cpus_[cpu];
  uint32_t tail = pc.cq_tail.load(std::memory_order_relaxed);
  // Never overwrites an unreaped completion: posted-but-unreaped plus
  // still-pending ops total at most kDepth (the Submit-side invariant), and a
  // post consumes one pending op.
  assert(tail - pc.cq_head.load(std::memory_order_acquire) < kDepth);
  pc.cq[tail % kDepth] = cqe;
  pc.cq_tail.store(tail + 1, std::memory_order_release);
  pending_.fetch_sub(1, std::memory_order_release);
  CountEvent(Counter::kRingOpsCompleted);
}

void MmRing::Drain() {
  CountEvent(Counter::kRingDrains);
  auto& telemetry = Telemetry::Instance();

  // Phase 1: collect every CPU's pending SQEs, preserving submission order
  // within each CPU. Consuming sq_head up front bounds this drain: ops
  // submitted after the snapshot wait for the next combiner.
  struct CpuQueue {
    int cpu;
    size_t next = 0;
    std::vector<MmSqe> ops;
  };
  std::vector<CpuQueue> queues;
  size_t total = 0;
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    PerCpu& pc = cpus_[cpu];
    uint32_t head = pc.sq_head.load(std::memory_order_relaxed);
    uint32_t tail = pc.sq_tail.load(std::memory_order_acquire);
    if (head == tail) {
      continue;
    }
    telemetry.RecordBatch(BatchStat::kRingSqDepth, tail - head);
    CpuQueue q;
    q.cpu = cpu;
    q.ops.reserve(tail - head);
    for (; head != tail; ++head) {
      q.ops.push_back(pc.sq[head % kDepth]);
    }
    pc.sq_head.store(tail, std::memory_order_release);
    total += q.ops.size();
    queues.push_back(std::move(q));
  }
  if (total == 0) {
    return;
  }
  telemetry.RecordBatch(BatchStat::kRingOpsPerDrain, total);

  // An op is wave-eligible when it has a well-formed explicit range that does
  // not straddle a subtree boundary; everything else (address-allocating
  // mmaps, file ops, malformed ranges, giant spans) runs as a singleton.
  struct WaveOp {
    uint64_t subtree;  // Bucket key: kSubtreeSpan-aligned region base.
    size_t queue;      // Index into |queues| (owner CPU + fan-out target).
    const MmSqe* sqe;
  };
  std::vector<WaveOp> wave;
  std::vector<MmCqe> group_cqes;
  std::vector<MmSqe> batch;

  // Runs one executor call over |n| ops and fans completions back to |cpu|.
  auto run_group = [&](const MmSqe* const* sqes, size_t n, int cpu) {
    batch.clear();
    group_cqes.assign(n, MmCqe{});
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(*sqes[i]);
      group_cqes[i].user_data = sqes[i]->user_data;
    }
    executor_(batch.data(), group_cqes.data(), n);
    if (n >= 2) {
      CountEvent(Counter::kRingFusedGroupOps, n);
    }
    for (size_t i = 0; i < n; ++i) {
      group_cqes[i].user_data = sqes[i]->user_data;  // Executor must not remap.
      PostCompletion(cpu, group_cqes[i]);
    }
  };

  size_t remaining = total;
  while (remaining > 0) {
    // Phase 2: build a wave — from each CPU queue, the maximal prefix of
    // wave-eligible ops. An ineligible op cuts its CPU's prefix, preserving
    // per-CPU submission order across waves.
    wave.clear();
    for (size_t qi = 0; qi < queues.size(); ++qi) {
      CpuQueue& q = queues[qi];
      while (q.next < q.ops.size()) {
        const MmSqe& sqe = q.ops[q.next];
        VaRange range;
        if (!SqeRange(sqe, &range)) {
          break;
        }
        uint64_t subtree = AlignDown(range.start, kSubtreeSpan);
        if (AlignDown(range.end - 1, kSubtreeSpan) != subtree) {
          break;  // Straddles a subtree boundary: serial.
        }
        wave.push_back(WaveOp{subtree, qi, &sqe});
        ++q.next;
      }
    }

    if (wave.empty()) {
      // Every non-empty queue is blocked on an ineligible head op. Execute
      // one singleton per queue to guarantee progress.
      for (size_t qi = 0; qi < queues.size(); ++qi) {
        CpuQueue& q = queues[qi];
        if (q.next >= q.ops.size()) {
          continue;
        }
        const MmSqe* one = &q.ops[q.next];
        ++q.next;
        run_group(&one, 1, q.cpu);
        --remaining;
      }
      continue;
    }

    // Phase 3: bucket the wave by subtree. stable_sort keeps equal keys in
    // wave order — CPU-major, submission order within a CPU — which is
    // exactly the order a fused bucket must execute in.
    std::stable_sort(wave.begin(), wave.end(),
                     [](const WaveOp& a, const WaveOp& b) { return a.subtree < b.subtree; });

    // Phase 4: one executor call per bucket chunk. Same-CPU ops in a bucket
    // need their completions posted in submission order; CPU-major bucket
    // order plus in-order fan-out below gives that for free. Cross-CPU chunks
    // must fan out per-op to the right CPU, so group by owner within chunks.
    size_t i = 0;
    while (i < wave.size()) {
      size_t j = i;
      while (j < wave.size() && wave[j].subtree == wave[i].subtree &&
             j - i < kMaxFusedOps) {
        ++j;
      }
      // One bucket chunk [i, j). Execute as a single batch, then fan out.
      size_t n = j - i;
      batch.clear();
      group_cqes.assign(n, MmCqe{});
      for (size_t k = 0; k < n; ++k) {
        batch.push_back(*wave[i + k].sqe);
        group_cqes[k].user_data = wave[i + k].sqe->user_data;
      }
      executor_(batch.data(), group_cqes.data(), n);
      if (n >= 2) {
        CountEvent(Counter::kRingFusedGroupOps, n);
      }
      for (size_t k = 0; k < n; ++k) {
        group_cqes[k].user_data = wave[i + k].sqe->user_data;
        PostCompletion(queues[wave[i + k].queue].cpu, group_cqes[k]);
      }
      remaining -= n;
      i = j;
    }
  }
}

}  // namespace cortenmm
