// MmRing — per-CPU submission/completion rings with a flat-combining drain
// (ROADMAP item 4; the throughput frontend of the async batched MM interface).
//
// Shape: every simulated CPU owns a fixed-depth SPSC submission ring (the
// owner thread produces, the combiner consumes) and a completion ring of the
// same depth (the combiner produces, the owner consumes). A drain pass makes
// one thread the combiner — the CNA queue lock from src/sync serializes combiner
// handoff, so waiters enqueue FIFO on their own cache line instead of
// hammering a shared flag — and that thread:
//
//   1. collects every CPU's pending SQEs,
//   2. walks them as per-CPU queues in submission order, taking from each
//      queue the maximal prefix of fusable ops (a wave),
//   3. buckets the wave by lock subtree (the kSubtreeSpan-aligned region
//      whose covering PT page a fused transaction would lock),
//   4. hands each bucket to the backend executor as ONE batch — the Corten
//      backend runs it as one RCursor transaction with one TlbGather flush —
//      and fans the per-op results back out to the submitters' completion
//      rings.
//
// Ordering contract (io_uring discipline): ops submitted from the SAME CPU
// execute in submission order; ops from different CPUs were concurrent at
// submission and may be interleaved arbitrarily — any interleaving the drain
// picks is a valid linearization. The wave construction preserves the
// per-CPU guarantee: an op never executes before an earlier op from its own
// CPU, because a non-fusable op cuts its CPU's wave prefix and fusable ops
// in one wave land either in the same bucket (executed in submission order)
// or in disjoint subtrees (independent by construction).
//
// Backpressure: a CPU may have at most kDepth ops outstanding (submitted but
// not yet reaped). Submit drains inline when the submission ring fills, so
// the only way to hit the limit is to never reap — then Submit returns false
// until the caller consumes completions. Completions are never dropped: the
// completion ring always has room for every outstanding op.
#ifndef SRC_RING_MM_RING_H_
#define SRC_RING_MM_RING_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "src/common/cpu.h"
#include "src/ring/mm_op.h"
#include "src/sync/cna_lock.h"

namespace cortenmm {

class MmRing {
 public:
  // Entries per CPU in each ring (power of two). 64 matches io_uring's
  // default and caps a single CPU's contribution to one drain.
  static constexpr uint32_t kDepth = 64;
  // Two ops fuse only if their joint bounding box stays inside one
  // kSubtreeSpan-aligned region: the region one level-2 PT page covers
  // (1 GiB), so a fused transaction's covering lock never climbs past it.
  static constexpr uint64_t kSubtreeSpan = PtPageSpan(2);
  // Ops per executor call. Past this the gather would fall back to a
  // full-ASID flush anyway and per-op result fan-out starts to dominate.
  static constexpr size_t kMaxFusedOps = 32;

  // The backend: executes |n| ops and writes |n| completions. Groups the
  // drain hands over are either one non-fusable op (n == 1) or a fused
  // bucket whose ops all lie in one subtree region.
  using Executor = std::function<void(const MmSqe* sqes, MmCqe* cqes, size_t n)>;

  explicit MmRing(Executor executor);
  MmRing(const MmRing&) = delete;
  MmRing& operator=(const MmRing&) = delete;
  ~MmRing();

  // Enqueues |sqe| on the calling CPU's submission ring. Returns false when
  // this CPU already has kDepth unreaped completions (backpressure); the op
  // was NOT queued and the caller must Reap before retrying. May drain
  // inline (becoming the combiner) when the submission ring is full.
  bool Submit(const MmSqe& sqe);

  // Pops the oldest completion for the calling CPU. Non-blocking: returns
  // false when no completion is ready (submitted ops may still be pending —
  // DrainBarrier forces them through).
  bool Reap(MmCqe* out);

  // Flat-combining barrier: returns once every op submitted by the calling
  // CPU before this call has a posted completion. The caller either becomes
  // the combiner (draining ALL CPUs' pending ops) or waits in the CNA queue
  // while another combiner executes its ops on its behalf.
  void DrainBarrier();

  // Ops submitted and not yet reaped by the calling CPU.
  uint32_t Outstanding() const;

  // Global count of submitted-but-uncompleted ops (diagnostics; racy).
  uint64_t Pending() const { return pending_.load(std::memory_order_relaxed); }

 private:
  struct alignas(kCacheLineSize) PerCpu {
    // The four free-running 32-bit indices (slot = index % kDepth) are split
    // by WRITER, not by ring: the owner CPU advances sq_tail (produce) and
    // cq_head (reap), the combiner advances sq_head (consume) and cq_tail
    // (complete). Packing them by ring put an owner-written and a combiner-
    // written index on one cache line, so every completion ping-ponged the
    // line the submitter was spinning on — each writer now owns a full line.
    //
    // Submission ring: owner produces at sq_tail, combiner consumes at
    // sq_head. Completion ring: combiner produces at cq_tail, owner consumes
    // at cq_head. sq_tail - cq_head == outstanding ops; keeping it <= kDepth
    // guarantees the combiner always finds a free completion slot.
    std::atomic<uint32_t> sq_tail{0};  // Owner-written.
    std::atomic<uint32_t> cq_head{0};  // Owner-written.
    char owner_pad[kCacheLineSize - 2 * sizeof(std::atomic<uint32_t>)];
    std::atomic<uint32_t> sq_head{0};  // Combiner-written.
    std::atomic<uint32_t> cq_tail{0};  // Combiner-written.
    char combiner_pad[kCacheLineSize - 2 * sizeof(std::atomic<uint32_t>)];
    MmSqe sq[kDepth];
    MmCqe cq[kDepth];
  };

  // Runs one drain pass over every CPU's submission ring. Caller must hold
  // |combiner_lock_|.
  void Drain();
  // Acquires the combiner lock (CNA handoff) and drains if work remains by
  // the time this thread reaches the head of the queue.
  void CombineOnce();
  void PostCompletion(int cpu, const MmCqe& cqe);

  Executor executor_;
  CnaLock combiner_lock_;
  std::atomic<uint64_t> pending_{0};
  // Lazily sized by kMaxCpus; ~2.5 MiB, allocated once per ring frontend.
  std::unique_ptr<PerCpu[]> cpus_;
};

}  // namespace cortenmm

#endif  // SRC_RING_MM_RING_H_
