// Fixed-size operation descriptors for the asynchronous batched MM interface
// (ROADMAP item 4): an io_uring-style vocabulary over the facade's operation
// set. A caller fills an MmSqe (submission queue entry), pushes it through
// MmInterface::Submit, and later reaps an MmCqe (completion queue entry)
// carrying the per-op Status. The descriptor is deliberately flat — no
// owning pointers, trivially copyable — so ring slots can be reused without
// destructor traffic and the combiner can batch-copy groups for fusion.
//
// This header depends only on common/ (plus the SimFile forward declaration
// the facade already uses), so both the facade and the core layer can speak
// MmSqe without a dependency cycle: the ring machinery itself lives in
// mm_ring.h and never includes core or sim headers.
#ifndef SRC_RING_MM_OP_H_
#define SRC_RING_MM_OP_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/common/types.h"

namespace cortenmm {

class SimFile;

// One opcode per facade entry point that makes sense to queue. Fork is
// excluded: it returns a new manager, which a fixed-size completion cannot
// carry, and no storm workload issues fork at ring rates.
enum class MmOpCode : uint8_t {
  kNop = 0,         // Completes immediately with kOk; useful for ring tests.
  kMmapAnon,        // len, perm; allocator-chosen address -> cqe.va.
  kMmapAnonFixed,   // va, len, perm (MAP_FIXED analog) -> cqe.va == va.
  kMunmap,          // va, len.
  kMprotect,        // va, len, perm.
  kFault,           // va, access (software-delivered page fault).
  kMmapFilePrivate, // file, first_page, len, perm -> cqe.va.
  kMmapShared,      // file, first_page, len, perm -> cqe.va.
  kMsync,           // va, len.
  kPkeyMprotect,    // va, len, pkey.
  kSwapOut,         // va, len -> cqe.count = pages evicted.
};

const char* MmOpCodeName(MmOpCode op);

// Submission queue entry. |user_data| is echoed verbatim in the completion,
// like io_uring's cookie: it is how a caller matches completions to requests
// when the drain reorders independent ops.
struct MmSqe {
  MmOpCode op = MmOpCode::kNop;
  Perm perm{};
  Access access = Access::kRead;
  int32_t pkey = 0;
  Vaddr va = 0;
  uint64_t len = 0;
  SimFile* file = nullptr;
  uint32_t first_page = 0;
  uint64_t user_data = 0;
};

// Completion queue entry: the per-op Status of the paper's facade calls.
struct MmCqe {
  uint64_t user_data = 0;
  ErrCode err = ErrCode::kOk;
  Vaddr va = 0;        // Address-producing ops: where the mapping landed.
  uint64_t count = 0;  // kSwapOut: pages evicted.
};

// Ops the drain may fuse into one transaction: they carry an explicit
// page-aligned target range, so the combiner can compute a bounding lock
// range up front. Address-allocating and file-backed ops stay unfused (their
// effective range is unknown or their side effects span other subsystems).
inline bool IsFusableOp(MmOpCode op) {
  switch (op) {
    case MmOpCode::kMmapAnonFixed:
    case MmOpCode::kMunmap:
    case MmOpCode::kMprotect:
    case MmOpCode::kFault:
      return true;
    default:
      return false;
  }
}

// The page-aligned VA range |sqe| operates on. Returns false when the op has
// no well-formed explicit range (not a fusable kind, unaligned base, zero or
// overflowing length) — such ops run as singletons through the synchronous
// path, which owns argument validation.
inline bool SqeRange(const MmSqe& sqe, VaRange* out) {
  if (!IsFusableOp(sqe.op)) {
    return false;
  }
  if (sqe.op == MmOpCode::kFault) {
    Vaddr page = AlignDown(sqe.va, kPageSize);
    *out = VaRange(page, page + kPageSize);
    return page < kVaLimit;
  }
  if (!IsAligned(sqe.va, kPageSize) || sqe.len == 0) {
    return false;
  }
  uint64_t len = AlignUp(sqe.len, kPageSize);
  if (sqe.va + len < sqe.va || sqe.va + len > kVaLimit) {
    return false;
  }
  *out = VaRange(sqe.va, sqe.va + len);
  return true;
}

}  // namespace cortenmm

#endif  // SRC_RING_MM_OP_H_
