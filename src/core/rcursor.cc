// RCursor basic operations (paper Figure 4): Query / Map / Mark / Unmap plus
// the Protect and ForEachStatus extensions. All of them execute under the
// locks the cursor acquired, so the logic here is purely sequential — exactly
// the simplification the paper's transactional interface buys (§5.2).
//
// Data-structure invariants maintained here (checked by verif/wf_checker):
//   I1. A present non-leaf PTE points to a valid PT page of level - 1.
//   I2. A metadata mark occupies only *absent* slots; linking a child under a
//       marked slot pushes the mark down into the child first.
//   I3. present_ptes of a PT page counts its present slots.
#include <cassert>

#include "src/common/stats.h"
#include "src/core/backing.h"
#include "src/core/addr_space.h"
#include "src/pmm/buddy.h"
#include "src/pmm/phys_mem.h"

namespace cortenmm {
namespace {

// Frames spanned by a leaf entry at |level|.
uint64_t LeafFrames(int level) { return PtEntrySpan(level) >> kPageBits; }

}  // namespace

// ---------------------------------------------------------------------------
// Metadata array plumbing
// ---------------------------------------------------------------------------

PteMetaArray* RCursor::MetaArrayOf(Pfn pt_page, bool create) {
  PageDescriptor& desc = PhysMem::Instance().Descriptor(pt_page);
  PteMetaArray* meta = desc.meta.load(std::memory_order_acquire);
  if (meta == nullptr && create) {
    // We hold this PT page's lock, so plain check-then-set is race-free.
    meta = new PteMetaArray();
    desc.meta.store(meta, std::memory_order_release);
    space_->AddMetaBytes(sizeof(PteMetaArray));
  }
  return meta;
}

PteMeta RCursor::LoadMeta(Pfn pt_page, uint64_t index) {
  PteMetaArray* meta = MetaArrayOf(pt_page, /*create=*/false);
  return meta == nullptr ? PteMeta{} : meta->entries[index];
}

void RCursor::StoreMeta(Pfn pt_page, uint64_t index, const PteMeta& meta) {
  if (meta.empty() && MetaArrayOf(pt_page, /*create=*/false) == nullptr) {
    return;  // Clearing a mark that does not exist.
  }
  MetaArrayOf(pt_page, /*create=*/true)->entries[index] = meta;
}

// ---------------------------------------------------------------------------
// Tree surgery helpers
// ---------------------------------------------------------------------------

void RCursor::PushDownMark(Pfn pt_page, int level, uint64_t index, Pfn child) {
  PteMeta parent_meta = LoadMeta(pt_page, index);
  if (parent_meta.empty()) {
    return;
  }
  Status status = DecodeMeta(parent_meta);
  uint64_t pages_per_child_entry = LeafFrames(level - 1);
  PteMetaArray* child_meta = MetaArrayOf(child, /*create=*/true);
  for (uint64_t j = 0; j < kPtesPerPage; ++j) {
    child_meta->entries[j] = EncodeMeta(OffsetStatus(status, j * pages_per_child_entry));
  }
  StoreMeta(pt_page, index, PteMeta{});
}

Result<Pfn> RCursor::SplitLeaf(Pfn pt_page, int level, uint64_t index) {
  PageTable& pt = space_->page_table();
  Pte pte = pt.LoadEntry(pt_page, index);
  assert(level > 1 && PteIsLeaf(pt.arch(), pte, level));
  Pfn head = PtePfn(pt.arch(), pte);
  Perm perm = PtePerm(pt.arch(), pte);

  Result<Pfn> child = pt.AllocPtPage(level - 1);
  if (!child.ok()) {
    return child;
  }
  CountEvent(Counter::kHugeSplits);
  NoteLocked(*child, level - 1);
  uint64_t frames_per_entry = LeafFrames(level - 1);
  for (uint64_t j = 0; j < kPtesPerPage; ++j) {
    pt.StoreEntry(*child, j,
                  MakeLeafPte(pt.arch(), head + j * frames_per_entry, perm, level - 1));
  }
  PhysMem::Instance().Descriptor(*child).present_ptes.store(
      static_cast<uint16_t>(kPtesPerPage), std::memory_order_relaxed);
  // Replace the huge leaf with the table entry; present count is unchanged.
  pt.StoreEntry(pt_page, index, MakeTablePte(pt.arch(), *child));
  return child;
}

Result<Pfn> RCursor::EnsureChild(Pfn pt_page, int level, uint64_t index) {
  PageTable& pt = space_->page_table();
  Pte pte = pt.LoadEntry(pt_page, index);
  if (PteIsPresent(pt.arch(), pte)) {
    if (!PteIsLeaf(pt.arch(), pte, level)) {
      return PtePfn(pt.arch(), pte);
    }
    return SplitLeaf(pt_page, level, index);
  }
  Result<Pfn> child = pt.AllocPtPage(level - 1);
  if (!child.ok()) {
    return child;
  }
  // Born locked (kAdv): the lock must be ours *before* the page becomes
  // reachable, so a lock-free traversal that lands on it blocks until this
  // transaction completes.
  NoteLocked(*child, level - 1);
  PushDownMark(pt_page, level, index, *child);
  pt.StoreEntry(pt_page, index, MakeTablePte(pt.arch(), *child));
  PhysMem::Instance().Descriptor(pt_page).present_ptes.fetch_add(1, std::memory_order_relaxed);
  return *child;
}

// Reserve pass: materialize every PT page the destructive walk over |sub|
// could allocate, before anything is mutated. Allocation only ever happens at
// *partially* covered slots (the two boundary chains of the range, O(levels)):
// a fully covered slot is rewritten in place at this level. EnsureChild and
// SplitLeaf preserve the virtual-memory contents exactly (split leaves map the
// same frames, pushed-down marks encode the same status), so running them
// eagerly is observationally free — and once they have run, the destructive
// pass finds present tables everywhere it would have allocated and cannot fail.
VoidResult RCursor::ReserveIn(Pfn pt_page, int level, Vaddr page_base, VaRange sub,
                              bool for_marks) {
  if (level <= 1) {
    return VoidResult();
  }
  PageTable& pt = space_->page_table();
  uint64_t span = PtEntrySpan(level);
  uint64_t first = (sub.start - page_base) / span;
  uint64_t last = (sub.end - 1 - page_base) / span;
  for (uint64_t i = first; i <= last; ++i) {
    Vaddr entry_va = page_base + i * span;
    VaRange entry_range(entry_va, entry_va + span);
    VaRange inter = sub.Intersect(entry_range);
    if (inter == entry_range) {
      continue;  // Fully covered: handled at this level, never allocates.
    }
    Pte pte = pt.LoadEntry(pt_page, i);
    bool present = PteIsPresent(pt.arch(), pte);
    if (!present && LoadMeta(pt_page, i).empty() && !for_marks) {
      continue;  // Empty slot and the operation will not write marks into it.
    }
    Result<Pfn> child = EnsureChild(pt_page, level, i);
    if (!child.ok()) {
      return child.error();
    }
    VoidResult r = ReserveIn(*child, level - 1, entry_va, inter, for_marks);
    if (!r.ok()) {
      return r;
    }
  }
  return VoidResult();
}

VoidResult RCursor::PrepareSlow(VaRange sub, bool for_marks) {
  if (!sub.IsPageAligned() || sub.empty() || !range_.Contains(sub)) {
    return ErrCode::kInval;
  }
  Vaddr covering_base = AlignDown(range_.start, PtPageSpan(covering_level_));
  return ReserveIn(covering_, covering_level_, covering_base, sub, for_marks);
}

void RCursor::ClearLeaf(Pfn pt_page, int level, uint64_t index, Vaddr va) {
  PageTable& pt = space_->page_table();
  PhysMem& mem = PhysMem::Instance();
  Pte pte = pt.LoadEntry(pt_page, index);
  assert(PteIsPresent(pt.arch(), pte) && PteIsLeaf(pt.arch(), pte, level));
  Pfn head = PtePfn(pt.arch(), pte);
  pt.StoreEntry(pt_page, index, kNullPte);
  mem.Descriptor(pt_page).present_ptes.fetch_sub(1, std::memory_order_relaxed);
  uint64_t frames = LeafFrames(level);
  for (uint64_t f = 0; f < frames; ++f) {
    mem.Descriptor(head + f).mapcount.fetch_sub(1, std::memory_order_acq_rel);
  }
  space_->AddResidentPages(-static_cast<int64_t>(frames));
  // The references are dropped only after the TLB shootdown completes — and
  // the whole leaf is ONE gathered record whatever its order, so a 2 MiB
  // unmap costs one dead-run entry, not 512.
  gather_.AddRun(PageRun(head, static_cast<uint8_t>(kPteIndexBits * (level - 1))));
  pages_touched_ += frames;
  NoteFlush(VaRange(va, va + PtEntrySpan(level)));
}

// ---------------------------------------------------------------------------
// Query
// ---------------------------------------------------------------------------

Status RCursor::Query(Vaddr addr) {
  assert(range_.Contains(addr));
  PageTable& pt = space_->page_table();
  Pfn page = covering_;
  int level = covering_level_;
  for (;;) {
    uint64_t index = PtIndex(addr, level);
    Pte pte = pt.LoadEntry(page, index);
    if (PteIsPresent(pt.arch(), pte)) {
      if (PteIsLeaf(pt.arch(), pte, level)) {
        Vaddr leaf_base = AlignDown(addr, PtEntrySpan(level));
        uint64_t delta = (addr - leaf_base) >> kPageBits;
        return Status::Mapped(PtePfn(pt.arch(), pte) + delta, PtePerm(pt.arch(), pte),
                              static_cast<uint8_t>(level));
      }
      page = PtePfn(pt.arch(), pte);
      --level;
      continue;
    }
    PteMeta meta = LoadMeta(page, index);
    if (meta.empty()) {
      return Status::Invalid();
    }
    Vaddr entry_base = AlignDown(addr, PtEntrySpan(level));
    uint64_t delta = (addr - entry_base) >> kPageBits;
    return OffsetStatus(DecodeMeta(meta), delta);
  }
}

// ---------------------------------------------------------------------------
// Map
// ---------------------------------------------------------------------------

VoidResult RCursor::MapHuge(Vaddr addr, Pfn pfn, Perm perm, int level) {
  uint64_t span = PtEntrySpan(level);
  if (!IsAligned(addr, span) || !range_.Contains(VaRange(addr, addr + span))) {
    return ErrCode::kInval;
  }
  PageTable& pt = space_->page_table();
  PhysMem& mem = PhysMem::Instance();
  Pfn page = covering_;
  int cur_level = covering_level_;
  while (cur_level > level) {
    Result<Pfn> child = EnsureChild(page, cur_level, PtIndex(addr, cur_level));
    if (!child.ok()) {
      return child.error();
    }
    page = *child;
    --cur_level;
  }
  uint64_t index = PtIndex(addr, level);
  Pte old = pt.LoadEntry(page, index);
  if (PteIsPresent(pt.arch(), old)) {
    if (PteIsLeaf(pt.arch(), old, level)) {
      ClearLeaf(page, level, index, addr);
    } else {
      // Replacing a populated subtree: unmap it first.
      UnmapIn(PtePfn(pt.arch(), old), level - 1, addr, VaRange(addr, addr + span));
      RemoveChildTable(page, level, index);
    }
  }
  StoreMeta(page, index, PteMeta{});
  pt.StoreEntry(page, index, MakeLeafPte(pt.arch(), pfn, perm, level));
  mem.Descriptor(page).present_ptes.fetch_add(1, std::memory_order_relaxed);
  uint64_t frames = LeafFrames(level);
  for (uint64_t f = 0; f < frames; ++f) {
    mem.Descriptor(pfn + f).mapcount.fetch_add(1, std::memory_order_acq_rel);
  }
  space_->AddResidentPages(static_cast<int64_t>(frames));
  pages_touched_ += frames;
  // Record the reverse mapping on the head frame (hint; see paper §4.5).
  {
    PageDescriptor& head = mem.Descriptor(pfn);
    SpinGuard guard(head.rmap_lock);
    head.owner = space_;
    head.owner_key = addr;
  }
  return VoidResult();
}

VoidResult RCursor::Map(Vaddr addr, Pfn pfn, Perm perm) {
  if (!IsAligned(addr, kPageSize) || !range_.Contains(addr)) {
    return ErrCode::kInval;
  }
  return MapHuge(addr, pfn, perm, 1);
}

// ---------------------------------------------------------------------------
// CloneInto (fork)
// ---------------------------------------------------------------------------

VoidResult RCursor::CloneSubtree(RCursor& child, Pfn parent_page, Pfn child_page,
                                 int level) {
  PageTable& parent_pt = space_->page_table();
  PageTable& child_pt = child.space_->page_table();
  Arch arch = parent_pt.arch();
  PhysMem& mem = PhysMem::Instance();

  // Copy the metadata array wholesale; swap blocks gain one reference per
  // covered page (fork shares swapped state through block refcounts).
  if (PteMetaArray* parent_meta = MetaArrayOf(parent_page, /*create=*/false)) {
    PteMetaArray* child_meta = child.MetaArrayOf(child_page, /*create=*/true);
    uint64_t pages_per_entry = LeafFrames(level);
    for (uint64_t i = 0; i < kPtesPerPage; ++i) {
      const PteMeta& meta = parent_meta->entries[i];
      child_meta->entries[i] = meta;
      if (static_cast<StatusTag>(meta.tag) == StatusTag::kSwapped) {
        for (uint64_t p = 0; p < pages_per_entry; ++p) {
          SwapDevice::Instance().AddBlockRef(meta.aux32 + static_cast<uint32_t>(p));
        }
      }
    }
  }

  uint16_t present = 0;
  for (uint64_t i = 0; i < kPtesPerPage; ++i) {
    Pte pte = parent_pt.LoadEntry(parent_page, i);
    if (!PteIsPresent(arch, pte)) {
      continue;
    }
    ++present;
    if (PteIsLeaf(arch, pte, level)) {
      Pfn head = PtePfn(arch, pte);
      Perm perm = PtePerm(arch, pte);
      uint64_t frames = LeafFrames(level);
      bool anon = mem.Descriptor(head).type.load(std::memory_order_relaxed) ==
                  FrameType::kAnon;
      Perm child_perm = perm;
      if (anon) {
        // Private page: copy-on-write in both parent and child. Even pages
        // that are currently read-only take the COW mark — a later
        // mprotect(RW) + write must break the sharing, not corrupt the
        // sibling space.
        child_perm = perm.With(Perm::kCow).Without(Perm::kWrite);
        if (!(child_perm == perm)) {
          parent_pt.StoreEntry(parent_page, i, MakeLeafPte(arch, head, child_perm, level));
        }
      }
      child_pt.StoreEntry(child_page, i, MakeLeafPte(arch, head, child_perm, level));
      for (uint64_t f = 0; f < frames; ++f) {
        AddFrameRef(head + f);
        mem.Descriptor(head + f).mapcount.fetch_add(1, std::memory_order_acq_rel);
      }
      child.space_->AddResidentPages(static_cast<int64_t>(frames));
      continue;
    }
    // Table entry: allocate the child's counterpart (born locked in the
    // child's cursor) and recurse. On failure the present count accumulated
    // so far must still be persisted — the caller tears the partial clone
    // down through the normal unmap path, which decrements it per slot.
    Result<Pfn> clone = child_pt.AllocPtPage(level - 1);
    if (!clone.ok()) {
      mem.Descriptor(child_page).present_ptes.store(--present, std::memory_order_relaxed);
      return clone.error();
    }
    child.NoteLocked(*clone, level - 1);
    VoidResult r = CloneSubtree(child, PtePfn(arch, pte), *clone, level - 1);
    child_pt.StoreEntry(child_page, i, MakeTablePte(arch, *clone));
    if (!r.ok()) {
      mem.Descriptor(child_page).present_ptes.store(present, std::memory_order_relaxed);
      return r;
    }
  }
  mem.Descriptor(child_page).present_ptes.store(present, std::memory_order_relaxed);
  return VoidResult();
}

VoidResult RCursor::CloneInto(RCursor& child) {
  if (!(range_ == child.range_) || covering_level_ != child.covering_level_) {
    return ErrCode::kInval;
  }
  VoidResult r = CloneSubtree(child, covering_, child.covering_, covering_level_);
  // Parent pages lost hardware write permission: flush everything once.
  NoteFlush(range_);
  return r;
}

// ---------------------------------------------------------------------------
// Unmap
// ---------------------------------------------------------------------------

void RCursor::UnmapIn(Pfn pt_page, int level, Vaddr page_base, VaRange sub) {
  PageTable& pt = space_->page_table();
  uint64_t span = PtEntrySpan(level);
  uint64_t first = (sub.start - page_base) / span;
  uint64_t last = (sub.end - 1 - page_base) / span;
  for (uint64_t i = first; i <= last; ++i) {
    Vaddr entry_va = page_base + i * span;
    VaRange entry_range(entry_va, entry_va + span);
    VaRange inter = sub.Intersect(entry_range);
    Pte pte = pt.LoadEntry(pt_page, i);
    bool present = PteIsPresent(pt.arch(), pte);
    bool leaf = present && PteIsLeaf(pt.arch(), pte, level);
    if (inter == entry_range) {
      // Slot fully covered: drop whatever is here.
      StoreMeta(pt_page, i, PteMeta{});
      if (leaf) {
        ClearLeaf(pt_page, level, i, entry_va);
      } else if (present) {
        UnmapIn(PtePfn(pt.arch(), pte), level - 1, entry_va, entry_range);
        RemoveChildTable(pt_page, level, i);
      }
      continue;
    }
    // Partial overlap: materialize a child and recurse.
    if (!present && LoadMeta(pt_page, i).empty()) {
      continue;  // Nothing mapped or marked here.
    }
    Result<Pfn> child = EnsureChild(pt_page, level, i);
    if (!child.ok()) {
      // Out of memory while splitting: drop the whole slot instead. This
      // over-unmaps but never leaks or corrupts (kernel OOM-path tradeoff).
      StoreMeta(pt_page, i, PteMeta{});
      if (leaf) {
        ClearLeaf(pt_page, level, i, entry_va);
      }
      continue;
    }
    UnmapIn(*child, level - 1, entry_va, inter);
  }
}

VoidResult RCursor::Unmap(VaRange sub) {
  if (!sub.IsPageAligned() || sub.empty() || !range_.Contains(sub)) {
    return ErrCode::kInval;
  }
  // All-or-nothing: take every allocation up front. If this fails the address
  // space is semantically unchanged and the caller sees kNoMem; afterwards the
  // destructive walk below cannot allocate (its EnsureChild calls find the
  // tables Prepare installed), so it cannot fail part-way.
  VoidResult reserved = Prepare(sub, /*for_marks=*/false);
  if (!reserved.ok()) {
    return reserved;
  }
  Vaddr covering_base = AlignDown(range_.start, PtPageSpan(covering_level_));
  UnmapIn(covering_, covering_level_, covering_base, sub);
  return VoidResult();
}

// ---------------------------------------------------------------------------
// Mark
// ---------------------------------------------------------------------------

VoidResult RCursor::MarkIn(Pfn pt_page, int level, Vaddr page_base, VaRange sub,
                           const Status& status) {
  PageTable& pt = space_->page_table();
  uint64_t span = PtEntrySpan(level);
  uint64_t first = (sub.start - page_base) / span;
  uint64_t last = (sub.end - 1 - page_base) / span;
  for (uint64_t i = first; i <= last; ++i) {
    Vaddr entry_va = page_base + i * span;
    VaRange entry_range(entry_va, entry_va + span);
    VaRange inter = sub.Intersect(entry_range);
    Pte pte = pt.LoadEntry(pt_page, i);
    bool present = PteIsPresent(pt.arch(), pte);
    bool leaf = present && PteIsLeaf(pt.arch(), pte, level);
    if (inter == entry_range) {
      // Whole slot: one mark at this level represents the entire span — the
      // paper's "upper-level PT pages represent large regions" optimization.
      if (leaf) {
        ClearLeaf(pt_page, level, i, entry_va);
      } else if (present) {
        UnmapIn(PtePfn(pt.arch(), pte), level - 1, entry_va, entry_range);
        RemoveChildTable(pt_page, level, i);
      }
      if (status.invalid()) {
        StoreMeta(pt_page, i, PteMeta{});
      } else {
        StoreMeta(pt_page, i,
                  EncodeMeta(OffsetStatus(status, (entry_va - sub.start) >> kPageBits)));
      }
      continue;
    }
    if (!present && LoadMeta(pt_page, i).empty() && status.invalid()) {
      continue;  // Erasing marks from an empty slot: nothing to do.
    }
    Result<Pfn> child = EnsureChild(pt_page, level, i);
    if (!child.ok()) {
      return child.error();  // Unreachable after a successful Prepare.
    }
    VoidResult r = MarkIn(*child, level - 1, entry_va, inter,
                          OffsetStatus(status, (inter.start - sub.start) >> kPageBits));
    if (!r.ok()) {
      return r;
    }
  }
  return VoidResult();
}

VoidResult RCursor::Mark(VaRange sub, const Status& status) {
  if (!sub.IsPageAligned() || sub.empty() || !range_.Contains(sub)) {
    return ErrCode::kInval;
  }
  if (status.mapped()) {
    return ErrCode::kInval;  // Mapped state is created with Map, not Mark.
  }
  // A non-invalid mark writes into empty boundary slots, so those children
  // must be reserved too; erasing (invalid status) skips empty slots.
  VoidResult reserved = Prepare(sub, /*for_marks=*/!status.invalid());
  if (!reserved.ok()) {
    return reserved;
  }
  Vaddr covering_base = AlignDown(range_.start, PtPageSpan(covering_level_));
  return MarkIn(covering_, covering_level_, covering_base, sub, status);
}

// ---------------------------------------------------------------------------
// Protect
// ---------------------------------------------------------------------------

void RCursor::ProtectIn(Pfn pt_page, int level, Vaddr page_base, VaRange sub, Perm perm) {
  PageTable& pt = space_->page_table();
  uint64_t span = PtEntrySpan(level);
  uint64_t first = (sub.start - page_base) / span;
  uint64_t last = (sub.end - 1 - page_base) / span;
  for (uint64_t i = first; i <= last; ++i) {
    Vaddr entry_va = page_base + i * span;
    VaRange entry_range(entry_va, entry_va + span);
    VaRange inter = sub.Intersect(entry_range);
    Pte pte = pt.LoadEntry(pt_page, i);
    bool present = PteIsPresent(pt.arch(), pte);
    bool leaf = present && PteIsLeaf(pt.arch(), pte, level);
    if (leaf && inter != entry_range) {
      // Partial protection of a huge leaf: split, then recurse.
      Result<Pfn> child = SplitLeaf(pt_page, level, i);
      if (!child.ok()) {
        continue;  // OOM: leave old permissions in place on this slot.
      }
      ProtectIn(*child, level - 1, entry_va, inter, perm);
      continue;
    }
    if (leaf) {
      // COW pages stay hardware read-only; the COW mark survives mprotect.
      Perm old = PtePerm(pt.arch(), pte);
      Perm updated = perm;
      if (old.cow()) {
        updated = updated.With(Perm::kCow).Without(Perm::kWrite);
      }
      pt.StoreEntry(pt_page, i,
                    MakeLeafPte(pt.arch(), PtePfn(pt.arch(), pte), updated, level));
      NoteFlush(entry_range);
      continue;
    }
    if (present) {
      ProtectIn(PtePfn(pt.arch(), pte), level - 1, entry_va, inter, perm);
      continue;
    }
    PteMeta meta = LoadMeta(pt_page, i);
    if (meta.empty()) {
      continue;
    }
    if (inter == entry_range) {
      meta.perm = perm.bits;
      StoreMeta(pt_page, i, meta);
    } else {
      Result<Pfn> child = EnsureChild(pt_page, level, i);  // Pushes the mark down.
      if (!child.ok()) {
        continue;
      }
      ProtectIn(*child, level - 1, entry_va, inter, perm);
    }
  }
}

// Intel MPK: tag mapped leaves with a protection key. Virtually-allocated
// marks are not tagged (they carry no hardware bits); pages fault in with key
// 0 and take the key on the next SetPkey, matching pkey_mprotect semantics on
// present pages.
VoidResult RCursor::SetPkey(VaRange sub, int pkey) {
  if (!sub.IsPageAligned() || sub.empty() || !range_.Contains(sub) || pkey < 0 ||
      pkey > 15) {
    return ErrCode::kInval;
  }
  PageTable& pt = space_->page_table();
  if (pt.arch() != Arch::kX86_64) {
    return ErrCode::kInval;  // MPK is an x86-64 feature.
  }
  // Rewrite every present leaf in the range (we hold the covering locks).
  pt.ForEachLeaf(sub, [&](Vaddr va, Pte pte, int level) {
    PageTable::WalkResult walk = pt.Walk(va);
    if (walk.present) {
      pt.StoreEntry(walk.pt_page, walk.index, PteWithPkey(pt.arch(), walk.pte, pkey));
    }
  });
  NoteFlush(sub);
  return VoidResult();
}

VoidResult RCursor::SetLeafPerm(Vaddr addr, Perm perm) {
  if (!IsAligned(addr, kPageSize) || !range_.Contains(addr)) {
    return ErrCode::kInval;
  }
  PageTable& pt = space_->page_table();
  Pfn page = covering_;
  int level = covering_level_;
  for (;;) {
    uint64_t index = PtIndex(addr, level);
    Pte pte = pt.LoadEntry(page, index);
    if (!PteIsPresent(pt.arch(), pte)) {
      return ErrCode::kNoEnt;
    }
    if (PteIsLeaf(pt.arch(), pte, level)) {
      if (level != 1) {
        Result<Pfn> child = SplitLeaf(page, level, index);
        if (!child.ok()) {
          return child.error();
        }
        page = *child;
        --level;
        continue;
      }
      pt.StoreEntry(page, index, MakeLeafPte(pt.arch(), PtePfn(pt.arch(), pte), perm, 1));
      NoteFlush(VaRange(addr, addr + kPageSize));
      return VoidResult();
    }
    page = PtePfn(pt.arch(), pte);
    --level;
  }
}

VoidResult RCursor::Protect(VaRange sub, Perm perm) {
  if (!sub.IsPageAligned() || sub.empty() || !range_.Contains(sub)) {
    return ErrCode::kInval;
  }
  // Reserve the boundary splits up front so no slot is silently skipped on
  // OOM: either every page in |sub| is reprotected or none is.
  VoidResult reserved = Prepare(sub, /*for_marks=*/false);
  if (!reserved.ok()) {
    return reserved;
  }
  Vaddr covering_base = AlignDown(range_.start, PtPageSpan(covering_level_));
  ProtectIn(covering_, covering_level_, covering_base, sub, perm);
  return VoidResult();
}

// ---------------------------------------------------------------------------
// ForEachStatus
// ---------------------------------------------------------------------------

void RCursor::StatusIn(Pfn pt_page, int level, Vaddr page_base, VaRange sub,
                       const std::function<void(VaRange, const Status&)>& visit) {
  PageTable& pt = space_->page_table();
  uint64_t span = PtEntrySpan(level);
  uint64_t first = (sub.start - page_base) / span;
  uint64_t last = (sub.end - 1 - page_base) / span;
  for (uint64_t i = first; i <= last; ++i) {
    Vaddr entry_va = page_base + i * span;
    VaRange entry_range(entry_va, entry_va + span);
    VaRange inter = sub.Intersect(entry_range);
    Pte pte = pt.LoadEntry(pt_page, i);
    if (PteIsPresent(pt.arch(), pte)) {
      if (PteIsLeaf(pt.arch(), pte, level)) {
        uint64_t delta = (inter.start - entry_va) >> kPageBits;
        visit(inter, Status::Mapped(PtePfn(pt.arch(), pte) + delta,
                                    PtePerm(pt.arch(), pte), static_cast<uint8_t>(level)));
      } else {
        StatusIn(PtePfn(pt.arch(), pte), level - 1, entry_va, inter, visit);
      }
      continue;
    }
    PteMeta meta = LoadMeta(pt_page, i);
    if (!meta.empty()) {
      uint64_t delta = (inter.start - entry_va) >> kPageBits;
      visit(inter, OffsetStatus(DecodeMeta(meta), delta));
    }
  }
}

void RCursor::ForEachStatus(VaRange sub,
                            const std::function<void(VaRange, const Status&)>& visit) {
  assert(sub.IsPageAligned() && !sub.empty() && range_.Contains(sub));
  Vaddr covering_base = AlignDown(range_.start, PtPageSpan(covering_level_));
  StatusIn(covering_, covering_level_, covering_base, sub, visit);
}

}  // namespace cortenmm
