#include "src/core/pressure.h"

#include <atomic>

namespace cortenmm {

namespace {
std::atomic<MemPressureGovernor*> g_governor{nullptr};
}  // namespace

MemPressureGovernor* PressureGovernor() {
  return g_governor.load(std::memory_order_acquire);
}

void SetPressureGovernor(MemPressureGovernor* governor) {
  g_governor.store(governor, std::memory_order_release);
}

}  // namespace cortenmm
