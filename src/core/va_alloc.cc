#include "src/core/va_alloc.h"

#include <algorithm>

namespace cortenmm {

VaAllocator::Stripe& VaAllocator::StripeFor(CpuId cpu) {
  int index = per_core_ ? cpu : 0;
  Stripe& stripe = stripes_[index].value;
  if (stripe.limit == 0) {
    SpinGuard guard(stripe.lock);
    if (stripe.limit == 0) {
      if (per_core_) {
        uint64_t stripe_size = (kUserVaCeiling - kUserVaBase) / kMaxCpus;
        stripe.bump = kUserVaBase + static_cast<uint64_t>(index) * stripe_size;
        stripe.limit = stripe.bump + stripe_size;
      } else {
        stripe.bump = kUserVaBase;
        stripe.limit = kUserVaCeiling;
      }
    }
  }
  return stripe;
}

Result<Vaddr> VaAllocator::AllocFrom(Stripe& stripe, uint64_t len, uint64_t align) {
  SpinGuard guard(stripe.lock);
  // First-fit reuse of freed runs keeps long-running munmap/mmap workloads
  // from exhausting the stripe. An aligned request carves its block out of
  // the middle of a run if needed, returning the leading fragment to the
  // list and keeping the trailing remainder in place.
  for (size_t i = 0; i < stripe.free_runs.size(); ++i) {
    FreeRun& run = stripe.free_runs[i];
    Vaddr aligned = AlignUp(run.va, align);
    uint64_t lead = aligned - run.va;
    if (run.len < lead + len) {
      continue;
    }
    uint64_t tail = run.len - lead - len;
    if (lead == 0 && tail == 0) {
      stripe.free_runs[i] = stripe.free_runs.back();
      stripe.free_runs.pop_back();
    } else if (lead == 0) {
      run.va += len;
      run.len = tail;
    } else {
      run.len = lead;
      if (tail != 0) {
        stripe.free_runs.push_back(FreeRun{aligned + len, tail});
      }
    }
    return aligned;
  }
  Vaddr aligned = AlignUp(stripe.bump, align);
  if (aligned + len > stripe.limit || aligned + len < aligned) {
    return ErrCode::kNoSpace;
  }
  if (aligned != stripe.bump) {
    // The alignment gap is still usable address space; remember it.
    stripe.free_runs.push_back(FreeRun{stripe.bump, aligned - stripe.bump});
  }
  stripe.bump = aligned + len;
  return aligned;
}

Result<Vaddr> VaAllocator::Alloc(uint64_t len, uint64_t align) {
  if (len == 0 || align < kPageSize || (align & (align - 1)) != 0) {
    return ErrCode::kInval;
  }
  len = AlignUp(len, kPageSize);
  Stripe& home = StripeFor(CurrentCpu());
  Result<Vaddr> result = AllocFrom(home, len, align);
  if (result.ok() || !per_core_) {
    return result;
  }
  // Home stripe exhausted: steal from any other stripe.
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    Result<Vaddr> stolen = AllocFrom(StripeFor(cpu), len, align);
    if (stolen.ok()) {
      return stolen;
    }
  }
  return ErrCode::kNoSpace;
}

void VaAllocator::Free(Vaddr va, uint64_t len) {
  if (len == 0) {
    return;
  }
  len = AlignUp(len, kPageSize);
  // Return to the owning stripe so per-core reuse stays core-local.
  int index = 0;
  if (per_core_) {
    uint64_t stripe_size = (kUserVaCeiling - kUserVaBase) / kMaxCpus;
    index = static_cast<int>((va - kUserVaBase) / stripe_size);
    if (index < 0 || index >= kMaxCpus) {
      index = 0;
    }
  }
  Stripe& stripe = stripes_[index].value;
  SpinGuard guard(stripe.lock);
  if (stripe.limit == 0) {
    return;  // Freeing into a never-initialized stripe (fixed mapping); drop.
  }
  stripe.free_runs.push_back(FreeRun{va, len});
  // Bounded coalescing keeps the list small without a full sort on every free.
  if (stripe.free_runs.size() > 1024) {
    std::vector<FreeRun>& runs = stripe.free_runs;
    std::sort(runs.begin(), runs.end(),
              [](const FreeRun& a, const FreeRun& b) { return a.va < b.va; });
    std::vector<FreeRun> merged;
    for (const FreeRun& run : runs) {
      if (!merged.empty() && merged.back().va + merged.back().len == run.va) {
        merged.back().len += run.len;
      } else {
        merged.push_back(run);
      }
    }
    runs.swap(merged);
  }
}

}  // namespace cortenmm
