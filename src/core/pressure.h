// The narrow interface through which the core fault path cooperates with the
// memory-pressure/reclaim subsystem (src/reclaim) without depending on it.
//
// Layering: core must not link against reclaim (reclaim drives VmSpace, so the
// dependency points the other way). Instead core publishes this governor
// interface; src/reclaim implements it and installs its singleton at Start().
// With no governor installed (the default — unit tests, benches that predate
// reclaim) every hook is skipped and core behaves exactly as before.
//
// Locking contract: every hook is invoked OUTSIDE any RCursor transaction.
// Implementations may take their own cursors (direct reclaim calls SwapOut,
// which locks the victim range), sleep (throttling), or block briefly on the
// tenant registry — none of which is legal while the caller holds subtree
// locks. HandleFault honors this by running BeforeFault before Lock() and
// OnFaultNoMem after the failed transaction's cursor has been destroyed.
#ifndef SRC_CORE_PRESSURE_H_
#define SRC_CORE_PRESSURE_H_

#include <cstdint>

namespace cortenmm {

class VmSpace;

class MemPressureGovernor {
 public:
  virtual ~MemPressureGovernor() = default;

  // VmSpace lifecycle. OnSpaceCreated registers the space as a tenant (so the
  // reclaim clock can resolve frame owners back to it); OnSpaceDestroying is
  // called at the very START of ~VmSpace — before the teardown transaction —
  // and must not return until no reclaimer can touch the space again.
  virtual void OnSpaceCreated(VmSpace* space) = 0;
  virtual void OnSpaceDestroying(VmSpace* space) = 0;

  // Fault-time admission, called before the fault transaction is opened.
  // Enforces the per-tenant resident limit (direct reclaim of the tenant's
  // own cold pages) and throttles when the machine is under the min
  // watermark. Never fails: pressure degrades faults to slow, not to kNoMem.
  virtual void BeforeFault(VmSpace* space) = 0;

  // A fault transaction failed with kNoMem and its cursor has been unwound.
  // Returns true when reclaim freed memory and the fault should be retried;
  // false when no progress is possible (the kNoMem then surfaces). |attempt|
  // counts prior retries of this same fault.
  virtual bool OnFaultNoMem(VmSpace* space, int attempt) = 0;

  // THP gate: false demotes an eligible 2 MiB fault-in to the 4 KiB ladder
  // (allocating 512 frames under pressure would immediately re-trigger
  // reclaim for a speculative win).
  virtual bool AllowHugeFaultIn(VmSpace* space) = 0;

  // Ring-submission gate: true while the tenant is over its resident limit.
  // The ring frontend bounces resident-growing submissions (backpressure)
  // instead of queueing work the fault path would only throttle.
  virtual bool OverLimit(VmSpace* space) = 0;

  // Fault-around admission, called (like BeforeFault, OUTSIDE the
  // transaction) before a fault that may speculatively map neighbours: the
  // maximum number of EXTRA pages this fault may map beyond the faulting
  // page. The reclaim governor bounds it by the tenant's remaining resident
  // headroom and returns 0 under the low watermark; the default is
  // unlimited so fault-around works without a reclaim subsystem.
  virtual uint64_t FaultAroundBudget(VmSpace* space) {
    (void)space;
    return ~0ull;
  }
};

// Process-wide governor; nullptr when no reclaim subsystem is running.
MemPressureGovernor* PressureGovernor();
void SetPressureGovernor(MemPressureGovernor* governor);

}  // namespace cortenmm

#endif  // SRC_CORE_PRESSURE_H_
