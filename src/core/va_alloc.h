// Virtual-address allocator. The scalable configuration gives each core a
// private stripe of the address space (paper §4.5, following Boyd-Wickizer et
// al.): allocations on different cores never contend. The Fig. 16 ablation
// (adv_base) runs the single-arena variant instead.
#ifndef SRC_CORE_VA_ALLOC_H_
#define SRC_CORE_VA_ALLOC_H_

#include <cstdint>
#include <vector>

#include "src/common/cpu.h"
#include "src/common/result.h"
#include "src/common/types.h"
#include "src/sync/spinlock.h"

namespace cortenmm {

// User VA window managed by the allocator. Starting at 4 GiB keeps the low
// region for fixed mappings in tests/examples.
inline constexpr Vaddr kUserVaBase = 1ull << 32;
inline constexpr Vaddr kUserVaCeiling = 1ull << 46;  // 64 TiB arena.

class VaAllocator {
 public:
  explicit VaAllocator(bool per_core) : per_core_(per_core) {}

  // Returns a range of |len| bytes (rounded up to pages) whose start is
  // |align|-aligned. |align| must be a power of two >= kPageSize; the default
  // is plain page alignment. Huge-page policies pass kHugePageSize so a
  // region's 2 MiB spans line up with level-2 PT slots.
  Result<Vaddr> Alloc(uint64_t len, uint64_t align = kPageSize);
  // Returns the range to the allocator's free list.
  void Free(Vaddr va, uint64_t len);

 private:
  struct FreeRun {
    Vaddr va;
    uint64_t len;
  };
  struct Stripe {
    SpinLock lock;
    Vaddr bump = 0;
    Vaddr limit = 0;
    std::vector<FreeRun> free_runs;
  };

  Stripe& StripeFor(CpuId cpu);
  Result<Vaddr> AllocFrom(Stripe& stripe, uint64_t len, uint64_t align);

  // With per-core allocation, each CPU owns kUserVa window / kMaxCpus; the
  // shared variant uses stripe 0 for everything.
  bool per_core_;
  CacheAligned<Stripe> stripes_[kMaxCpus];
};

}  // namespace cortenmm

#endif  // SRC_CORE_VA_ALLOC_H_
