// Backing objects for advanced memory semantics (paper §4.3, Table 2):
//
//   SimFile     — a simulated file with a page cache; private and shared
//                 file mappings resolve page faults against it, and msync
//                 writes dirty pages back. Shared *anonymous* segments are
//                 kernel-named files with zero-fill content, exactly the
//                 paper's "naming the pages within the kernel".
//   SwapDevice  — a simulated block device for page swapping with per-block
//                 reference counts (blocks are shared after fork).
//
// Reverse mapping: file pages record (SimFile*, page index) in their frame
// descriptor; the file keeps a mapping list of (AddrSpace, va) so the kernel
// can find and unmap every mapping of a page. Reverse mappings are treated as
// hints and every page-table access they trigger goes through the
// transactional interface (paper §4.5 "Reverse mapping").
#ifndef SRC_CORE_BACKING_H_
#define SRC_CORE_BACKING_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/sync/spinlock.h"

namespace cortenmm {

class AddrSpace;

// One mapping of a contiguous run of file pages into an address space.
struct FileMapping {
  AddrSpace* space;
  Vaddr va_base;           // VA of file page |first_page|.
  uint32_t first_page;
  uint32_t page_count;
};

class SimFile {
 public:
  SimFile(uint16_t id, uint64_t size_pages, bool zero_fill);
  ~SimFile();
  SimFile(const SimFile&) = delete;
  SimFile& operator=(const SimFile&) = delete;

  uint16_t id() const { return id_; }
  uint64_t size_pages() const { return size_pages_; }

  // Returns the page-cache frame for the page, faulting it in (deterministic
  // content, or zeros for kernel-named segments) if absent. The returned
  // frame holds the cache's reference; mappers must AddFrameRef their own.
  Result<Pfn> GetPage(uint32_t page_index);

  // Drops a cached page (testing / reclaim).
  void EvictPage(uint32_t page_index);

  // Reverse-mapping bookkeeping.
  void AddMapping(const FileMapping& mapping);
  void RemoveMappings(AddrSpace* space, Vaddr va_base);
  std::vector<FileMapping> MappingsOf(uint32_t page_index);

  // The deterministic byte at a file offset (for content verification).
  static uint8_t ContentByte(uint16_t file_id, uint64_t offset);

  uint64_t cached_pages();

 private:
  void FillPage(Pfn pfn, uint32_t page_index);

  uint16_t id_;
  uint64_t size_pages_;
  bool zero_fill_;

  SpinLock lock_;
  std::unordered_map<uint32_t, Pfn> cache_;
  std::vector<FileMapping> mappings_;
};

class FileRegistry {
 public:
  static FileRegistry& Instance();

  // Creates a file with deterministic content.
  SimFile* CreateFile(uint64_t size_pages);
  // Creates a kernel-named zero-fill segment (shared anonymous backing).
  SimFile* CreateSharedAnonSegment(uint64_t size_pages);
  SimFile* Get(uint16_t id);

 private:
  SpinLock lock_;
  std::vector<std::unique_ptr<SimFile>> files_;
};

class SwapDevice {
 public:
  static SwapDevice& Instance();

  // Allocates a block with refcount 1 and writes |src| (one page) into it.
  Result<uint32_t> WriteNewBlock(const std::byte* src);
  // Reads a block into |dst| (one page).
  VoidResult ReadBlock(uint32_t block, std::byte* dst);
  void AddBlockRef(uint32_t block);
  // Drops a reference; the block is recycled when the last one dies.
  void DropBlockRef(uint32_t block);

  uint64_t blocks_in_use();

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    uint32_t refcount = 0;
  };

  SpinLock lock_;
  std::vector<Block> blocks_;
  std::vector<uint32_t> free_blocks_;
};

}  // namespace cortenmm

#endif  // SRC_CORE_BACKING_H_
