// The memory-management "syscall" layer built on the transactional interface —
// the C++ rendering of the paper's Figure 8. Every entry point locks the
// affected range once and performs the whole operation (checks + state
// changes) atomically inside that transaction.
#ifndef SRC_CORE_VM_SPACE_H_
#define SRC_CORE_VM_SPACE_H_

#include <memory>

#include "src/core/addr_space.h"
#include "src/core/backing.h"
#include "src/ring/mm_op.h"

namespace cortenmm {

// Access (the fault-kind enum) lives in src/common/types.h.

class VmSpace {
 public:
  // Aborts loudly if the page-table root cannot be allocated; use Create for
  // the propagating path.
  explicit VmSpace(const AddrSpace::Options& options);
  // Adopts a pre-created page table (the fallible construction path).
  VmSpace(const AddrSpace::Options& options, PageTable pt);
  // Fallible construction: returns kNoMem instead of aborting when the
  // page-table root cannot be allocated.
  static Result<std::unique_ptr<VmSpace>> Create(const AddrSpace::Options& options);
  ~VmSpace();
  VmSpace(const VmSpace&) = delete;
  VmSpace& operator=(const VmSpace&) = delete;

  AddrSpace& addr_space() { return space_; }
  const AddrSpace& addr_space() const { return space_; }
  Asid asid() const { return space_.asid(); }

  // --- mmap family -----------------------------------------------------------

  // Anonymous private mapping at an allocator-chosen address (on-demand
  // paging: pages materialize on first touch).
  Result<Vaddr> MmapAnon(uint64_t len, Perm perm);
  // Anonymous private mapping at a fixed address (MAP_FIXED analog). Replaces
  // whatever was there.
  VoidResult MmapAnonAt(Vaddr va, uint64_t len, Perm perm);
  // Private file mapping: reads come from the page cache (COW on write).
  Result<Vaddr> MmapFilePrivate(SimFile* file, uint32_t first_page, uint64_t len, Perm perm);
  // Shared mapping of a file or of a kernel-named anonymous segment.
  Result<Vaddr> MmapShared(SimFile* object, uint32_t first_page, uint64_t len, Perm perm);

  VoidResult Munmap(Vaddr va, uint64_t len);
  VoidResult Mprotect(Vaddr va, uint64_t len, Perm perm);
  // Writes dirty pages of shared file mappings back (here: validates the
  // mapping and clears dirty bits; the page cache *is* the file).
  VoidResult Msync(Vaddr va, uint64_t len);

  // Intel MPK: pkey_mprotect(2) analog — tags the mapped pages of the range
  // with |pkey|; the MMU then enforces the space's PKRU on every access.
  VoidResult PkeyMprotect(Vaddr va, uint64_t len, int pkey);

  // --- Faults ------------------------------------------------------------------

  // The page-fault handler (Figure 8). Returns kFault for SEGV.
  VoidResult HandleFault(Vaddr va, Access access);

  // --- Fused batch execution (ROADMAP item 4) --------------------------------

  // Executes |n| ring ops as ONE transaction: one covering lock over the
  // batch's bounding range, all mutations inside it, one TlbGather flush when
  // the cursor unwinds. Ops run in array order, so a batch is observably
  // equivalent to the synchronous call sequence. Returns false — touching
  // nothing — when any op has no explicit fusable range; the caller then
  // falls back to per-op synchronous dispatch.
  bool TryExecuteFused(const MmSqe* sqes, MmCqe* cqes, size_t n);

  // --- Advanced semantics ------------------------------------------------------

  // Evicts resident exclusive anonymous pages in [va, va+len) to the swap
  // device. Returns the number of pages swapped out.
  Result<uint64_t> SwapOut(Vaddr va, uint64_t len);

  // fork(): duplicates every mapping into a new space; private writable pages
  // become copy-on-write in both parent and child (§4.3). Returns nullptr on
  // kNoMem; a partially-cloned child is torn down before returning, so the
  // parent is left exactly as it was (modulo COW-protected PTEs, which are
  // semantically unchanged).
  std::unique_ptr<VmSpace> Fork();

  // Total resident pages currently mapped (for memory accounting).
  uint64_t ResidentPages();

 private:
  // Fault resolution inside an existing transaction (|cursor| must cover the
  // faulting page). The huge-page rung only fires when the cursor also covers
  // the surrounding 2 MiB slot. |around_budget|, when non-null, allows the
  // demand-zero arm to fault-around: map up to *around_budget extra
  // neighbouring pages (decremented in place — a fused batch shares one
  // budget across its faults). The budget must have been obtained OUTSIDE
  // the transaction (MemPressureGovernor::FaultAroundBudget's contract).
  VoidResult HandleFaultLocked(RCursor& cursor, Vaddr page_va, Access access,
                               uint64_t* around_budget = nullptr);
  VoidResult FaultInPage(RCursor& cursor, Vaddr page_va, const Status& status,
                         Access access);
  // Maps up to |budget| additional not-present demand-zero pages around
  // |fault_va| inside the aligned fault-around window (clamped to what
  // |cursor| locked), stopping at the first page whose status differs from
  // the faulting page's. Returns the number mapped.
  uint64_t FaultAround(RCursor& cursor, Vaddr fault_va, const Status& status,
                       uint64_t budget);
  // options().fault_around_pages sanitized: 0 when disabled, otherwise a
  // power of two in [2, 512] — so the window never crosses a 2 MiB slot.
  uint32_t FaultAroundPages() const;
  // Huge-page policy (options().huge_pages): tries to resolve an anon fault by
  // installing a 2 MiB leaf over |huge_range| (which |cursor| must cover).
  // Returns true if the leaf was installed; false means "take the 4 KiB path"
  // — either the slot is not uniformly eligible or the order-9 allocation
  // failed (the fallback ladder's kNoMem rung, counted as huge_fallbacks).
  bool TryHugeFaultIn(RCursor& cursor, VaRange huge_range, const Status& status,
                      Access access);

  AddrSpace space_;
};

}  // namespace cortenmm

#endif  // SRC_CORE_VM_SPACE_H_
