// CortenMM's transactional interface for programming the MMU — the C++
// rendering of the paper's Figure 4.
//
//   AddrSpace::Lock(range) -> RCursor
//
// runs one of the two locking protocols (§4.1):
//
//   kRw  (CortenMM_rw):  hand-over-hand BRAVO-phase-fair *read* locks from the
//        root down to the "covering PT page" (the lowest PT page whose span
//        contains the whole range), which is *write*-locked. Descendants need
//        no locks: any conflicting transaction must pass through the covering
//        page.
//   kAdv (CortenMM_adv): lock-free traversal to the covering PT page inside an
//        RCU read-side critical section, then an MCS lock on the covering page
//        (retrying if it went stale, i.e. raced with an unmap), then a preorder
//        DFS locking every existing descendant. Unmapped PT pages are marked
//        stale and retired to the RCU monitor (Figure 7).
//
// The returned RCursor is the only way to manipulate the page table: any
// combination of Query / Map / Mark / Unmap (plus the Protect extension)
// executes atomically within the locked range. Destroying the cursor flushes
// TLBs for the mutated sub-ranges, disposes of unmapped frames according to
// the shootdown policy, and releases the locks in reverse acquisition order.
#ifndef SRC_CORE_ADDR_SPACE_H_
#define SRC_CORE_ADDR_SPACE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/small_vec.h"

#include "src/common/result.h"
#include "src/common/types.h"
#include "src/core/status.h"
#include "src/core/va_alloc.h"
#include "src/pt/page_table.h"
#include "src/sync/bravo.h"
#include "src/sync/cna_lock.h"
#include "src/tlb/gather.h"
#include "src/tlb/shootdown.h"

namespace cortenmm {

enum class Protocol {
  kRw,   // CortenMM_rw
  kAdv,  // CortenMM_adv
};

const char* ProtocolName(Protocol protocol);

class AddrSpace;

class RCursor {
 public:
  RCursor(RCursor&& other) noexcept;
  RCursor& operator=(RCursor&&) = delete;
  RCursor(const RCursor&) = delete;
  RCursor& operator=(const RCursor&) = delete;

  // Releases all locks (reverse order) and performs the deferred TLB
  // shootdown / frame reclamation for everything this transaction unmapped.
  ~RCursor();

  const VaRange& range() const { return range_; }

  // --- Basic operations (paper Figure 4). All addresses/ranges must be page
  // --- aligned and contained in range(); violations return/assert kInval.

  // Returns the status of the virtual page at |addr|.
  Status Query(Vaddr addr);

  // Maps physical frame |pfn| at |addr| with |perm| (4 KiB leaf). Any prior
  // virtually-allocated mark on the page is consumed. Increments the frame's
  // mapcount and records the reverse mapping.
  VoidResult Map(Vaddr addr, Pfn pfn, Perm perm);

  // Maps a naturally-aligned huge leaf (level 2 = 2 MiB, level 3 = 1 GiB).
  VoidResult MapHuge(Vaddr addr, Pfn pfn, Perm perm, int level);

  // Sets every page in |sub| to the virtually-allocated |status| (which must
  // not be kMapped). Large aligned spans are represented by a single mark on
  // an upper-level slot (§3.3's on-demand PTE creation). Existing mappings in
  // |sub| are unmapped first. Marking kInvalid erases marks only.
  VoidResult Mark(VaRange sub, const Status& status);

  // Unmaps |sub|: clears leaf PTEs and metadata marks, removes fully-covered
  // PT pages (stale + RCU-retire under kAdv), and queues the frames whose
  // last mapping died for reclamation after the TLB shootdown.
  VoidResult Unmap(VaRange sub);

  // Extension: rewrites permissions of every mapped page and every mark in
  // |sub|. COW marks are preserved (hardware write stays off for COW pages).
  VoidResult Protect(VaRange sub, Perm perm);

  // Pre-materializes every PT page a subsequent Mark/Unmap/Protect over |sub|
  // could need (splitting huge leaves and pushing marks down along the
  // partially-covered boundary) without changing the virtual-memory contents
  // of any page — EnsureChild is semantics-preserving. After Prepare succeeds,
  // those operations over |sub| cannot hit kNoMem, which is what makes them
  // all-or-nothing: Mark/Unmap/Protect run it internally before mutating
  // anything, and callers that must order side effects before the mutation
  // (e.g. dropping swap-block refs before a MAP_FIXED replacement) call it
  // explicitly first. |for_marks| additionally materializes children of
  // absent unmarked boundary slots, which a non-invalid Mark writes into.
  // On kNoMem the address space is unchanged except for extra (empty or
  // equivalently-marked) PT pages, which every operation treats identically.
  // Callers are expected to have validated |sub| (the destructive ops do so
  // before calling); the fast path below deliberately skips re-validation.
  VoidResult Prepare(VaRange sub, bool for_marks) {
    // A leaf-level covering page can never allocate: every page-aligned slot
    // under it is fully covered, so the destructive walk only rewrites PTEs
    // and metadata in place. This is the common case for small transactions
    // and keeps the reserve pass off their critical path.
    if (covering_level_ <= 1) {
      return VoidResult();
    }
    return PrepareSlow(sub, for_marks);
  }

  // Intel MPK (x86-64): tags every mapped page in |sub| with protection key
  // |pkey| (0..15). Enforcement happens in the MMU against the space's PKRU.
  VoidResult SetPkey(VaRange sub, int pkey);

  // Rewrites the leaf PTE of the 4 KiB mapped page at |addr| with exactly
  // |perm| (no COW preservation). Used by the page-fault handler to resolve
  // COW in place when this space is the sole mapper, and by fork to demote
  // parent pages to copy-on-write. Refcounts/mapcounts are untouched.
  VoidResult SetLeafPerm(Vaddr addr, Perm perm);

  // fork support: clones every mapping and mark of this cursor's range into
  // |child| (which must cover the same range of a fresh address space) in one
  // page-table-shaped pass: whole PT pages are copied level by level instead
  // of re-walking from the root per page. Private anonymous pages become
  // copy-on-write in *both* spaces; file/shared pages are shared as-is;
  // swap blocks gain a reference. This is the address-space enumeration the
  // paper calls CortenMM's worst case (Figure 20).
  VoidResult CloneInto(RCursor& child);

  // Enumerates the status of |sub| as maximal runs of identical status,
  // invoking visit(run_range, status) for every non-invalid run. Mapped pages
  // are reported page-by-page (their pfn differs).
  void ForEachStatus(VaRange sub,
                     const std::function<void(VaRange, const Status&)>& visit);

  // Number of stale-retry loops the adv protocol took to acquire this cursor.
  int acquire_retries() const { return acquire_retries_; }

 private:
  friend class AddrSpace;

  struct RwPathEntry {
    Pfn pfn;
    BravoRwLock::ReadCookie cookie;
  };
  struct AdvLockedPage {
    Pfn pfn;
    CnaNode* node;
  };

  RCursor(AddrSpace* space, VaRange range);

  // ---

  // Protocol bodies (implemented in addr_space.cc).
  void AcquireRw();
  void AcquireAdv();
  void AdvDfsLockSubtree(Pfn page, int level);
  void Release();

  // --- Op helpers (rcursor.cc) ---
  PteMetaArray* MetaArrayOf(Pfn pt_page, bool create);
  PteMeta LoadMeta(Pfn pt_page, uint64_t index);
  void StoreMeta(Pfn pt_page, uint64_t index, const PteMeta& meta);

  // Ensures the slot |index| of |pt_page| (level |level| > 1) holds a child
  // table, pushing down any metadata mark or splitting any huge leaf.
  Result<Pfn> EnsureChild(Pfn pt_page, int level, uint64_t index);
  // Splits the huge leaf at the slot into a full child table of smaller leaves.
  Result<Pfn> SplitLeaf(Pfn pt_page, int level, uint64_t index);
  // Pushes a metadata mark at (pt_page, index) down into child |child|.
  void PushDownMark(Pfn pt_page, int level, uint64_t index, Pfn child);

  VoidResult CloneSubtree(RCursor& child, Pfn parent_page, Pfn child_page, int level);

  VoidResult PrepareSlow(VaRange sub, bool for_marks);
  VoidResult ReserveIn(Pfn pt_page, int level, Vaddr page_base, VaRange sub,
                       bool for_marks);
  void UnmapIn(Pfn pt_page, int level, Vaddr page_base, VaRange sub);
  VoidResult MarkIn(Pfn pt_page, int level, Vaddr page_base, VaRange sub,
                    const Status& status);
  void ProtectIn(Pfn pt_page, int level, Vaddr page_base, VaRange sub, Perm perm);
  void StatusIn(Pfn pt_page, int level, Vaddr page_base, VaRange sub,
                const std::function<void(VaRange, const Status&)>& visit);

  // Detaches the child PT page at (pt_page, index): clears the PTE, and under
  // kAdv marks the subtree stale, unlocks it and retires it to the RCU
  // monitor; under kRw frees it immediately (readers hold the covering lock).
  void RemoveChildTable(Pfn pt_page, int level, uint64_t index);

  void AdvUnlockAndForget(Pfn pfn);
  void NoteLocked(Pfn pfn, int level);
  void ClearLeaf(Pfn pt_page, int level, uint64_t index, Vaddr va);
  // Records a mutated sub-range for the destructor's shootdown. The gather
  // keeps discrete ranges (coalescing neighbors) instead of one bounding box,
  // so a sparse transaction no longer invalidates everything in between.
  void NoteFlush(VaRange range) { gather_.AddRange(range); }

  AddrSpace* space_;
  VaRange range_;
  bool engaged_ = true;

  Pfn covering_ = kInvalidPfn;
  int covering_level_ = 0;

  // kRw state: read-locked ancestors, in acquisition order.
  SmallVec<RwPathEntry, 4> rw_path_;

  // kAdv state: every locked PT page in acquisition order. MCS nodes come
  // from the per-thread CnaNodePool so their addresses are stable while
  // enqueued and no transaction pays a heap allocation for them.
  SmallVec<AdvLockedPage, 16> adv_locked_;

  // Deferred TLB flush + frame reclamation (mmu_gather-style batch).
  TlbGather gather_;

  int acquire_retries_ = 0;
  // Leaf pages (un)mapped under this cursor; reported to the telemetry trace
  // ring on release as one kPagesTouched event per transaction.
  uint64_t pages_touched_ = 0;
};

class AddrSpace {
 public:
  struct Options {
    Arch arch = Arch::kX86_64;
    Protocol protocol = Protocol::kAdv;
    TlbPolicy tlb_policy = TlbPolicy::kEarlyAck;
    // Per-core virtual address allocator (§4.5 optimization); the Fig. 16
    // ablation adv_base disables it.
    bool per_core_va = true;
    // Transparent huge pages: the fault path installs a 2 MiB leaf when the
    // faulting region is huge-aligned, uniformly virtually-allocated anon,
    // and an order-9 run is available — falling back to 4 KiB on kNoMem.
    bool huge_pages = false;
    // Fault-around: a demand-zero fault also maps up to this many
    // neighbouring not-present pages of the same VMA, in the same
    // transaction, within the aligned window of this many pages around the
    // fault. 0 or 1 disables it (the default — speculative mappings change
    // resident-set accounting, so workloads opt in). Values are rounded down
    // to a power of two and capped at 512 so a window can never cross a
    // 2 MiB slot. Around-mapped pages start with the young bit clear and
    // count against the tenant's resident limit via
    // MemPressureGovernor::FaultAroundBudget.
    uint32_t fault_around_pages = 0;
  };

  // Aborts loudly if the page-table root cannot be allocated; OOM-propagating
  // callers create the PageTable via PageTable::Create and use the second
  // overload.
  explicit AddrSpace(const Options& options);
  // Adopts a pre-created page table (the fallible construction path).
  AddrSpace(const Options& options, PageTable pt);
  ~AddrSpace();
  AddrSpace(const AddrSpace&) = delete;
  AddrSpace& operator=(const AddrSpace&) = delete;

  // The transactional interface (paper Figure 4, L10). The only way to
  // program this address space's MMU state.
  RCursor Lock(VaRange range);

  const Options& options() const { return options_; }
  Asid asid() const { return asid_; }
  PageTable& page_table() { return pt_; }
  const PageTable& page_table() const { return pt_; }

  // Virtual address allocation (per-core when enabled).
  Result<Vaddr> AllocVa(uint64_t len, uint64_t align = kPageSize) {
    return va_alloc_.Alloc(len, align);
  }
  void FreeVa(Vaddr va, uint64_t len) { va_alloc_.Free(va, len); }

  // CPU residency for TLB shootdowns. Read-mostly: the simulated MMU calls
  // this on every access, so avoid the atomic RMW once the bit is set.
  void NoteCpuActive(CpuId cpu) {
    if (!active_cpus_.Test(cpu)) {
      active_cpus_.Set(cpu);
    }
  }
  const CpuMask& active_cpus() const { return active_cpus_; }

  // Submits everything |gather| accumulated as one batched shootdown on the
  // active CPUs (per the configured policy) and resets the gather. The only
  // flush path: cursors gather, then flush on destruction.
  void TlbFlush(TlbGather& gather);

  // Intel MPK: the per-address-space PKRU register (2 bits per key:
  // bit 2k = access-disable, bit 2k+1 = write-disable).
  uint32_t pkru() const { return pkru_.load(std::memory_order_acquire); }
  void set_pkru(uint32_t value) { pkru_.store(value, std::memory_order_release); }
  static constexpr uint32_t PkruAccessDisable(int pkey) { return 1u << (2 * pkey); }
  static constexpr uint32_t PkruWriteDisable(int pkey) { return 1u << (2 * pkey + 1); }

  // Memory-overhead accounting (Figure 22): PT pages and metadata bytes.
  uint64_t PtBytes() const;
  uint64_t MetaBytes() const { return meta_bytes_.load(std::memory_order_relaxed); }
  void AddMetaBytes(int64_t delta) {
    meta_bytes_.fetch_add(static_cast<uint64_t>(delta), std::memory_order_relaxed);
  }

  // Exact resident-set size, maintained by the cursor on every leaf install/
  // clear. O(1), readable without the space's locks — this is what reclaim's
  // per-tenant limit enforcement polls on every fault.
  uint64_t ResidentPagesFast() const {
    return resident_pages_.load(std::memory_order_relaxed);
  }
  void AddResidentPages(int64_t delta) {
    resident_pages_.fetch_add(static_cast<uint64_t>(delta), std::memory_order_relaxed);
  }

 private:
  friend class RCursor;

  Options options_;
  Asid asid_;
  PageTable pt_;
  VaAllocator va_alloc_;
  CpuMask active_cpus_;
  std::atomic<uint32_t> pkru_{0};
  std::atomic<uint64_t> meta_bytes_{0};
  std::atomic<uint64_t> resident_pages_{0};
};

// Drops one reference on a data frame, returning it to the buddy allocator
// when the last owner disappears.
void DropFrameRef(Pfn pfn);
// Adds an owner reference.
void AddFrameRef(Pfn pfn);
// Drops one reference on every frame of |run|. If the whole run dies at once
// (the common case for a huge leaf that was never split or shared) it goes
// back to the buddy as ONE block; frames that die while others survive are
// freed individually. Used as the shootdown RunFreer.
void DropRunRef(PageRun run);

}  // namespace cortenmm

#endif  // SRC_CORE_ADDR_SPACE_H_
