// The Status of a virtual page — the paper's Figure 4 enum. It is the single
// source of truth the transactional interface exposes: a page is either
// invalid, mapped (present in the MMU), or *virtually allocated* in one of
// several flavors whose state lives in the per-PTE metadata array.
#ifndef SRC_CORE_STATUS_H_
#define SRC_CORE_STATUS_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/pmm/page_desc.h"

namespace cortenmm {

enum class StatusTag : uint8_t {
  kInvalid = 0,         // Must stay 0: an empty PteMeta decodes to Invalid.
  kMapped,              // Present leaf PTE; pfn/perm decoded from the MMU.
  kPrivateAnon,         // Virtually allocated, demand-zero on first touch.
  kPrivateFileMapped,   // Virtually allocated, filled from a file on touch.
  kSharedAnon,          // Shared anonymous segment (kernel-named pages).
  kSwapped,             // Contents on a swap block device.
};

const char* StatusTagName(StatusTag tag);

struct Status {
  StatusTag tag = StatusTag::kInvalid;
  Perm perm;

  // kMapped
  Pfn pfn = kInvalidPfn;
  // Level of the leaf PTE backing a kMapped page: 1 = 4 KiB, 2 = 2 MiB.
  // Purely informational — it is NOT part of equality (below), because
  // splitting a huge leaf into 512 identical base leaves must stay
  // observationally invisible through the transactional interface.
  uint8_t level = 1;

  // kPrivateFileMapped / kSharedAnon: backing object id + page offset into it.
  // kSwapped: swap device id + block number.
  uint16_t object_id = 0;
  uint32_t page_offset = 0;

  static Status Invalid() { return Status{}; }

  static Status Mapped(Pfn pfn, Perm perm, uint8_t level = 1) {
    Status s;
    s.tag = StatusTag::kMapped;
    s.pfn = pfn;
    s.perm = perm;
    s.level = level;
    return s;
  }

  static Status PrivateAnon(Perm perm) {
    Status s;
    s.tag = StatusTag::kPrivateAnon;
    s.perm = perm;
    return s;
  }

  static Status PrivateFileMapped(uint16_t file_id, uint32_t page_offset, Perm perm) {
    Status s;
    s.tag = StatusTag::kPrivateFileMapped;
    s.object_id = file_id;
    s.page_offset = page_offset;
    s.perm = perm;
    return s;
  }

  static Status SharedAnon(uint16_t segment_id, uint32_t page_offset, Perm perm) {
    Status s;
    s.tag = StatusTag::kSharedAnon;
    s.object_id = segment_id;
    s.page_offset = page_offset;
    s.perm = perm;
    return s;
  }

  static Status Swapped(uint16_t device_id, uint32_t block, Perm perm) {
    Status s;
    s.tag = StatusTag::kSwapped;
    s.object_id = device_id;
    s.page_offset = block;
    s.perm = perm;
    return s;
  }

  bool invalid() const { return tag == StatusTag::kInvalid; }
  bool mapped() const { return tag == StatusTag::kMapped; }
  // A "virtually allocated" status occupies the metadata array, not the MMU.
  bool virtually_allocated() const {
    return tag != StatusTag::kInvalid && tag != StatusTag::kMapped;
  }

  friend bool operator==(const Status& a, const Status& b) {
    if (a.tag != b.tag || a.perm != b.perm) {
      return false;
    }
    switch (a.tag) {
      case StatusTag::kInvalid:
        return true;
      case StatusTag::kMapped:
        return a.pfn == b.pfn;
      default:
        return a.object_id == b.object_id && a.page_offset == b.page_offset;
    }
  }
};

// Packs a virtually-allocated Status into the 8-byte metadata entry.
// kMapped/kInvalid are never stored: the MMU itself encodes them.
inline PteMeta EncodeMeta(const Status& status) {
  PteMeta meta;
  meta.tag = static_cast<uint8_t>(status.tag);
  meta.perm = status.perm.bits;
  meta.aux16 = status.object_id;
  meta.aux32 = status.page_offset;
  return meta;
}

inline Status DecodeMeta(const PteMeta& meta) {
  Status status;
  status.tag = static_cast<StatusTag>(meta.tag);
  status.perm = Perm(meta.perm);
  status.object_id = meta.aux16;
  status.page_offset = meta.aux32;
  return status;
}

// When a metadata mark placed on a non-leaf slot (covering a large aligned
// span) is pushed down to a smaller span starting |page_delta| pages further,
// offset-bearing statuses advance their page offset accordingly.
inline Status OffsetStatus(const Status& status, uint64_t page_delta) {
  Status s = status;
  switch (s.tag) {
    case StatusTag::kPrivateFileMapped:
    case StatusTag::kSharedAnon:
    case StatusTag::kSwapped:
      s.page_offset += static_cast<uint32_t>(page_delta);
      break;
    default:
      break;
  }
  return s;
}

}  // namespace cortenmm

#endif  // SRC_CORE_STATUS_H_
