#include "src/core/backing.h"

#include <cassert>
#include <cstring>

#include "src/common/stats.h"
#include "src/fault/fault_inject.h"
#include "src/pmm/buddy.h"
#include "src/pmm/page_desc.h"
#include "src/pmm/phys_mem.h"

namespace cortenmm {

// ---------------------------------------------------------------------------
// SimFile
// ---------------------------------------------------------------------------

SimFile::SimFile(uint16_t id, uint64_t size_pages, bool zero_fill)
    : id_(id), size_pages_(size_pages), zero_fill_(zero_fill) {}

SimFile::~SimFile() {
  for (const auto& [index, pfn] : cache_) {
    (void)index;
    PageDescriptor& desc = PhysMem::Instance().Descriptor(pfn);
    if (desc.refcount.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      BuddyAllocator::Instance().FreeFrame(pfn);
    }
  }
}

uint8_t SimFile::ContentByte(uint16_t file_id, uint64_t offset) {
  // Cheap deterministic mix so tests can verify any byte of any file.
  uint64_t x = (static_cast<uint64_t>(file_id) << 48) ^ offset;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 29;
  return static_cast<uint8_t>(x);
}

void SimFile::FillPage(Pfn pfn, uint32_t page_index) {
  std::byte* data = PhysMem::Instance().FrameData(pfn);
  if (zero_fill_) {
    std::memset(data, 0, kPageSize);
    return;
  }
  uint64_t base = static_cast<uint64_t>(page_index) * kPageSize;
  for (uint64_t i = 0; i < kPageSize; ++i) {
    data[i] = static_cast<std::byte>(ContentByte(id_, base + i));
  }
}

Result<Pfn> SimFile::GetPage(uint32_t page_index) {
  if (page_index >= size_pages_) {
    return ErrCode::kInval;
  }
  {
    SpinGuard guard(lock_);
    auto it = cache_.find(page_index);
    if (it != cache_.end()) {
      return it->second;
    }
  }
  Result<Pfn> frame = BuddyAllocator::Instance().AllocFrame();
  if (!frame.ok()) {
    return frame;
  }
  FillPage(*frame, page_index);
  PageDescriptor& desc = PhysMem::Instance().Descriptor(*frame);
  desc.ResetForAlloc(FrameType::kFileCache);
  {
    SpinGuard rmap_guard(desc.rmap_lock);
    desc.owner = this;
    desc.owner_key = page_index;
  }
  SpinGuard guard(lock_);
  auto [it, inserted] = cache_.emplace(page_index, *frame);
  if (!inserted) {
    // Raced with another faulting thread: keep theirs, release ours.
    BuddyAllocator::Instance().FreeFrame(*frame);
    return it->second;
  }
  return *frame;
}

void SimFile::EvictPage(uint32_t page_index) {
  Pfn victim = kInvalidPfn;
  {
    SpinGuard guard(lock_);
    auto it = cache_.find(page_index);
    if (it == cache_.end()) {
      return;
    }
    victim = it->second;
    cache_.erase(it);
  }
  PageDescriptor& desc = PhysMem::Instance().Descriptor(victim);
  if (desc.refcount.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    BuddyAllocator::Instance().FreeFrame(victim);
  }
}

void SimFile::AddMapping(const FileMapping& mapping) {
  SpinGuard guard(lock_);
  mappings_.push_back(mapping);
}

void SimFile::RemoveMappings(AddrSpace* space, Vaddr va_base) {
  SpinGuard guard(lock_);
  size_t keep = 0;
  for (size_t i = 0; i < mappings_.size(); ++i) {
    if (mappings_[i].space == space && mappings_[i].va_base == va_base) {
      continue;
    }
    mappings_[keep++] = mappings_[i];
  }
  mappings_.resize(keep);
}

std::vector<FileMapping> SimFile::MappingsOf(uint32_t page_index) {
  std::vector<FileMapping> hits;
  SpinGuard guard(lock_);
  for (const FileMapping& m : mappings_) {
    if (page_index >= m.first_page && page_index < m.first_page + m.page_count) {
      hits.push_back(m);
    }
  }
  return hits;
}

uint64_t SimFile::cached_pages() {
  SpinGuard guard(lock_);
  return cache_.size();
}

// ---------------------------------------------------------------------------
// FileRegistry
// ---------------------------------------------------------------------------

FileRegistry& FileRegistry::Instance() {
  // The registry's files free page-cache frames when it is destroyed, so the
  // allocator singletons must complete construction first (function-local
  // statics are destroyed in reverse order of construction completion).
  BuddyAllocator::Instance();
  PhysMem::Instance();
  static FileRegistry registry;
  return registry;
}

SimFile* FileRegistry::CreateFile(uint64_t size_pages) {
  SpinGuard guard(lock_);
  uint16_t id = static_cast<uint16_t>(files_.size() + 1);
  files_.push_back(std::make_unique<SimFile>(id, size_pages, /*zero_fill=*/false));
  return files_.back().get();
}

SimFile* FileRegistry::CreateSharedAnonSegment(uint64_t size_pages) {
  SpinGuard guard(lock_);
  uint16_t id = static_cast<uint16_t>(files_.size() + 1);
  files_.push_back(std::make_unique<SimFile>(id, size_pages, /*zero_fill=*/true));
  return files_.back().get();
}

SimFile* FileRegistry::Get(uint16_t id) {
  SpinGuard guard(lock_);
  if (id == 0 || id > files_.size()) {
    return nullptr;
  }
  return files_[id - 1].get();
}

// ---------------------------------------------------------------------------
// SwapDevice
// ---------------------------------------------------------------------------

SwapDevice& SwapDevice::Instance() {
  static SwapDevice device;
  return device;
}

Result<uint32_t> SwapDevice::WriteNewBlock(const std::byte* src) {
  // Injected device-full / write error: the eviction in flight must roll the
  // page back to resident without leaking the frame or a swap block.
  if (FaultInjector::Instance().ShouldFail(FaultSite::kSwapDevWrite)) {
    return ErrCode::kNoSpace;
  }
  SpinGuard guard(lock_);
  uint32_t block;
  if (!free_blocks_.empty()) {
    block = free_blocks_.back();
    free_blocks_.pop_back();
  } else {
    block = static_cast<uint32_t>(blocks_.size());
    blocks_.emplace_back();
  }
  Block& b = blocks_[block];
  if (b.data == nullptr) {
    b.data = std::make_unique<std::byte[]>(kPageSize);
  }
  std::memcpy(b.data.get(), src, kPageSize);
  b.refcount = 1;
  CountEvent(Counter::kSwapOuts);
  return block;
}

VoidResult SwapDevice::ReadBlock(uint32_t block, std::byte* dst) {
  // Injected transient IO error on swap-in: the fault path surfaces a definite
  // status and leaves the swap entry intact so a retry can succeed.
  if (FaultInjector::Instance().ShouldFail(FaultSite::kSwapDevRead)) {
    return ErrCode::kAgain;
  }
  SpinGuard guard(lock_);
  if (block >= blocks_.size() || blocks_[block].refcount == 0) {
    return ErrCode::kInval;
  }
  std::memcpy(dst, blocks_[block].data.get(), kPageSize);
  CountEvent(Counter::kSwapIns);
  return VoidResult();
}

void SwapDevice::AddBlockRef(uint32_t block) {
  SpinGuard guard(lock_);
  assert(block < blocks_.size() && blocks_[block].refcount > 0);
  ++blocks_[block].refcount;
}

void SwapDevice::DropBlockRef(uint32_t block) {
  SpinGuard guard(lock_);
  assert(block < blocks_.size() && blocks_[block].refcount > 0);
  if (--blocks_[block].refcount == 0) {
    free_blocks_.push_back(block);
  }
}

uint64_t SwapDevice::blocks_in_use() {
  SpinGuard guard(lock_);
  uint64_t used = 0;
  for (const Block& b : blocks_) {
    if (b.refcount > 0) {
      ++used;
    }
  }
  return used;
}

}  // namespace cortenmm
