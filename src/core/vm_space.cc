#include "src/core/vm_space.h"

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/stats.h"
#include "src/core/pressure.h"
#include "src/fault/fault_inject.h"
#include "src/obs/telemetry.h"
#include "src/pmm/buddy.h"
#include "src/pmm/phys_mem.h"

namespace cortenmm {
namespace {

// Allocates an anonymous data frame destined for a mapping at |va|. The
// allocator resets the descriptor directly to kAnon (one reset, not
// kKernel-then-anon). The reverse-mapping hint is NOT recorded here:
// Map/MapHuge writes owner/owner_key under the rmap lock when the frame is
// installed, and until then the frame has mapcount 0, which excludes it from
// every rmap consumer (the reclaim clock requires mapcount == 1).
Result<Pfn> AllocAnonFrame(AddrSpace* space, Vaddr va, bool zeroed) {
  (void)space;
  (void)va;
  BuddyAllocator& buddy = BuddyAllocator::Instance();
  return zeroed ? buddy.AllocZeroedFrame(FrameType::kAnon)
                : buddy.AllocFrame(FrameType::kAnon);
}

// Releases the swap blocks referenced by Swapped marks in |range|; called
// before any operation that overwrites marks wholesale (munmap, MAP_FIXED
// replacement, teardown).
void DropSwapRefs(RCursor& cursor, VaRange range) {
  cursor.ForEachStatus(range, [](VaRange run, const Status& status) {
    if (status.tag == StatusTag::kSwapped) {
      for (uint64_t p = 0; p < run.num_pages(); ++p) {
        SwapDevice::Instance().DropBlockRef(status.page_offset + static_cast<uint32_t>(p));
      }
    }
  });
}

}  // namespace

VmSpace::VmSpace(const AddrSpace::Options& options) : space_(options) {
  if (MemPressureGovernor* governor = PressureGovernor()) {
    governor->OnSpaceCreated(this);
  }
}

VmSpace::VmSpace(const AddrSpace::Options& options, PageTable pt)
    : space_(options, std::move(pt)) {
  if (MemPressureGovernor* governor = PressureGovernor()) {
    governor->OnSpaceCreated(this);
  }
}

Result<std::unique_ptr<VmSpace>> VmSpace::Create(const AddrSpace::Options& options) {
  Result<PageTable> pt = PageTable::Create(options.arch);
  if (!pt.ok()) {
    return pt.error();
  }
  return std::unique_ptr<VmSpace>(new VmSpace(options, std::move(*pt)));
}

VmSpace::~VmSpace() {
  // Deregister from the reclaim tenant registry FIRST — before the teardown
  // transaction below takes the whole-space lock. The governor waits out any
  // in-flight reclaimer pinning this space; doing that while holding the
  // whole-space cursor would deadlock against a reclaimer blocked on it.
  if (MemPressureGovernor* governor = PressureGovernor()) {
    governor->OnSpaceDestroying(this);
  }
  // Release swap blocks still referenced by marks; the AddrSpace destructor
  // then tears down the page table itself through the transactional interface.
  VaRange everything(0, kVaLimit);
  RCursor cursor = space_.Lock(everything);
  DropSwapRefs(cursor, everything);
}

// ---------------------------------------------------------------------------
// mmap family (paper Figure 8, do_syscall_mmap)
// ---------------------------------------------------------------------------

Result<Vaddr> VmSpace::MmapAnon(uint64_t len, Perm perm) {
  ScopedOpTimer telemetry_timer(MmOp::kMmap);
  // Under the huge-page policy, regions big enough to hold a 2 MiB leaf are
  // placed on a 2 MiB boundary so their spans line up with level-2 slots —
  // otherwise no fault inside them could ever be huge-eligible.
  uint64_t align =
      (space_.options().huge_pages && len >= kHugePageSize) ? kHugePageSize : kPageSize;
  Result<Vaddr> va = space_.AllocVa(len, align);
  if (!va.ok()) {
    return va;
  }
  VoidResult r = MmapAnonAt(*va, len, perm);
  if (!r.ok()) {
    space_.FreeVa(*va, len);
    return r.error();
  }
  return va;
}

VoidResult VmSpace::MmapAnonAt(Vaddr va, uint64_t len, Perm perm) {
  ScopedOpTimer telemetry_timer(MmOp::kMmap);
  if (!IsAligned(va, kPageSize) || len == 0) {
    return ErrCode::kInval;
  }
  len = AlignUp(len, kPageSize);
  VaRange range(va, va + len);
  RCursor cursor = space_.Lock(range);
  // Reserve every PT page the replacement could need *before* the destructive
  // pass: DropSwapRefs consumes block references, so it must not run while the
  // replacement can still fail. After Prepare, Mark cannot hit kNoMem.
  VoidResult reserved = cursor.Prepare(range, /*for_marks=*/true);
  if (!reserved.ok()) {
    return reserved;
  }
  // MAP_FIXED semantics: whatever was there is replaced atomically — swapped
  // pages being replaced give their blocks back.
  DropSwapRefs(cursor, range);
  return cursor.Mark(range, Status::PrivateAnon(perm));
}

Result<Vaddr> VmSpace::MmapFilePrivate(SimFile* file, uint32_t first_page, uint64_t len,
                                       Perm perm) {
  ScopedOpTimer telemetry_timer(MmOp::kMmapFile);
  if (file == nullptr || len == 0) {
    return ErrCode::kInval;
  }
  len = AlignUp(len, kPageSize);
  Result<Vaddr> va = space_.AllocVa(len);
  if (!va.ok()) {
    return va;
  }
  VaRange range(*va, *va + len);
  {
    RCursor cursor = space_.Lock(range);
    VoidResult r = cursor.Mark(range, Status::PrivateFileMapped(file->id(), first_page, perm));
    if (!r.ok()) {
      space_.FreeVa(*va, len);
      return r.error();
    }
  }
  file->AddMapping(FileMapping{&space_, *va, first_page,
                               static_cast<uint32_t>(len >> kPageBits)});
  return va;
}

Result<Vaddr> VmSpace::MmapShared(SimFile* object, uint32_t first_page, uint64_t len,
                                  Perm perm) {
  ScopedOpTimer telemetry_timer(MmOp::kMmapFile);
  if (object == nullptr || len == 0) {
    return ErrCode::kInval;
  }
  len = AlignUp(len, kPageSize);
  Result<Vaddr> va = space_.AllocVa(len);
  if (!va.ok()) {
    return va;
  }
  VaRange range(*va, *va + len);
  {
    RCursor cursor = space_.Lock(range);
    VoidResult r = cursor.Mark(range, Status::SharedAnon(object->id(), first_page, perm));
    if (!r.ok()) {
      space_.FreeVa(*va, len);
      return r.error();
    }
  }
  object->AddMapping(FileMapping{&space_, *va, first_page,
                                 static_cast<uint32_t>(len >> kPageBits)});
  return va;
}

VoidResult VmSpace::Munmap(Vaddr va, uint64_t len) {
  ScopedOpTimer telemetry_timer(MmOp::kMunmap);
  if (!IsAligned(va, kPageSize) || len == 0) {
    return ErrCode::kInval;
  }
  len = AlignUp(len, kPageSize);
  VaRange range(va, va + len);
  {
    // Figure 8, do_syscall_munmap: one transaction, one Unmap. Reserve the
    // boundary splits first so block references are only dropped once the
    // unmap is guaranteed to go through.
    RCursor cursor = space_.Lock(range);
    VoidResult reserved = cursor.Prepare(range, /*for_marks=*/false);
    if (!reserved.ok()) {
      return reserved;
    }
    DropSwapRefs(cursor, range);  // Swapped pages lose their blocks.
    VoidResult r = cursor.Unmap(range);
    if (!r.ok()) {
      return r;
    }
  }
  space_.FreeVa(va, len);
  return VoidResult();
}

VoidResult VmSpace::Mprotect(Vaddr va, uint64_t len, Perm perm) {
  ScopedOpTimer telemetry_timer(MmOp::kMprotect);
  if (!IsAligned(va, kPageSize) || len == 0) {
    return ErrCode::kInval;
  }
  len = AlignUp(len, kPageSize);
  VaRange range(va, va + len);
  RCursor cursor = space_.Lock(range);
  return cursor.Protect(range, perm);
}

VoidResult VmSpace::Msync(Vaddr va, uint64_t len) {
  ScopedOpTimer telemetry_timer(MmOp::kMsync);
  if (!IsAligned(va, kPageSize) || len == 0) {
    return ErrCode::kInval;
  }
  len = AlignUp(len, kPageSize);
  VaRange range(va, va + len);
  // The simulated page cache *is* the file, so msync only needs to validate
  // that the range is a mapping and clear dirty state by re-protecting.
  RCursor cursor = space_.Lock(range);
  bool any = false;
  cursor.ForEachStatus(range, [&any](VaRange, const Status&) { any = true; });
  return any ? VoidResult() : VoidResult(ErrCode::kNoEnt);
}

VoidResult VmSpace::PkeyMprotect(Vaddr va, uint64_t len, int pkey) {
  ScopedOpTimer telemetry_timer(MmOp::kPkeyMprotect);
  if (!IsAligned(va, kPageSize) || len == 0) {
    return ErrCode::kInval;
  }
  len = AlignUp(len, kPageSize);
  VaRange range(va, va + len);
  RCursor cursor = space_.Lock(range);
  return cursor.SetPkey(range, pkey);
}

// ---------------------------------------------------------------------------
// Page faults (paper Figure 8, page_fault_handler)
// ---------------------------------------------------------------------------

VoidResult VmSpace::FaultInPage(RCursor& cursor, Vaddr page_va, const Status& status,
                                Access access) {
  bool want_write = access == Access::kWrite;
  switch (status.tag) {
    case StatusTag::kPrivateAnon: {
      // Demand-zero fill.
      if ((want_write && !status.perm.write()) ||
          (access == Access::kRead && !status.perm.read()) ||
          (access == Access::kExec && !status.perm.exec())) {
        return ErrCode::kFault;
      }
      Result<Pfn> frame = AllocAnonFrame(&space_, page_va, /*zeroed=*/true);
      if (!frame.ok()) {
        return frame.error();
      }
      CountEvent(Counter::kDemandZeroFills);
      VoidResult mapped = cursor.Map(page_va, *frame, status.perm);
      if (!mapped.ok()) {
        // The frame was never installed; dropping our reference restores the
        // space and the allocator to their pre-fault state.
        DropFrameRef(*frame);
        FaultInjector::NoteRolledBack();
      }
      return mapped;
    }

    case StatusTag::kPrivateFileMapped: {
      SimFile* file = FileRegistry::Instance().Get(status.object_id);
      if (file == nullptr) {
        return ErrCode::kFault;
      }
      Result<Pfn> cached = file->GetPage(status.page_offset);
      if (!cached.ok()) {
        return ErrCode::kFault;
      }
      if (want_write) {
        if (!status.perm.write()) {
          return ErrCode::kFault;
        }
        // Private write: copy the cache page into an exclusive anon frame.
        Result<Pfn> frame = AllocAnonFrame(&space_, page_va, /*zeroed=*/false);
        if (!frame.ok()) {
          return frame.error();
        }
        PhysMem::Instance().CopyFrame(*frame, *cached);
        VoidResult mapped = cursor.Map(page_va, *frame, status.perm);
        if (!mapped.ok()) {
          DropFrameRef(*frame);
          FaultInjector::NoteRolledBack();
        }
        return mapped;
      }
      // Private read: share the cache frame, hardware read-only + COW mark.
      AddFrameRef(*cached);
      Perm cow_perm = status.perm.With(Perm::kCow).Without(Perm::kWrite);
      VoidResult mapped = cursor.Map(page_va, *cached, cow_perm);
      if (!mapped.ok()) {
        DropFrameRef(*cached);
        FaultInjector::NoteRolledBack();
      }
      return mapped;
    }

    case StatusTag::kSharedAnon: {
      SimFile* segment = FileRegistry::Instance().Get(status.object_id);
      if (segment == nullptr) {
        return ErrCode::kFault;
      }
      Result<Pfn> cached = segment->GetPage(status.page_offset);
      if (!cached.ok()) {
        return ErrCode::kFault;
      }
      AddFrameRef(*cached);
      VoidResult mapped = cursor.Map(page_va, *cached, status.perm);
      if (!mapped.ok()) {
        DropFrameRef(*cached);
        FaultInjector::NoteRolledBack();
      }
      return mapped;
    }

    case StatusTag::kSwapped: {
      Result<Pfn> frame = AllocAnonFrame(&space_, page_va, /*zeroed=*/false);
      if (!frame.ok()) {
        return frame.error();
      }
      VoidResult read = SwapDevice::Instance().ReadBlock(
          status.page_offset, PhysMem::Instance().FrameData(*frame));
      if (!read.ok()) {
        DropFrameRef(*frame);
        FaultInjector::NoteRolledBack();
        return read;
      }
      VoidResult mapped = cursor.Map(page_va, *frame, status.perm);
      if (!mapped.ok()) {
        DropFrameRef(*frame);
        FaultInjector::NoteRolledBack();
        return mapped;
      }
      // The Swapped mark was consumed by the map; only now is it safe to give
      // up the block reference it carried (dropping earlier would double-free
      // the block if the map failed and the mark survived).
      SwapDevice::Instance().DropBlockRef(status.page_offset);
      return mapped;
    }

    default:
      return ErrCode::kFault;
  }
}

// Attempts the top rung of the fault-in ladder: one order-9 run backing one
// level-2 leaf over the whole slot. Eligibility is decided inside the
// transaction (so a racing map/munmap cannot invalidate it): every byte of
// the slot must be virtually-allocated private-anon with the faulting
// status's permissions, and nothing in it may already be mapped.
bool VmSpace::TryHugeFaultIn(RCursor& cursor, VaRange huge_range, const Status& status,
                             Access access) {
  if ((access == Access::kWrite && !status.perm.write()) ||
      (access == Access::kRead && !status.perm.read()) ||
      (access == Access::kExec && !status.perm.exec())) {
    return false;  // Not resolvable at any page size; the 4 KiB path SEGVs.
  }
  uint64_t covered = 0;
  bool uniform = true;
  cursor.ForEachStatus(huge_range, [&](VaRange run, const Status& s) {
    if (s.tag == StatusTag::kPrivateAnon && s.perm == status.perm) {
      covered += run.size();
    } else {
      uniform = false;
    }
  });
  if (!uniform || covered != kHugePageSize) {
    return false;
  }
  bool prezeroed = false;
  Result<Pfn> run = BuddyAllocator::Instance().AllocHugeRun(&prezeroed,
                                                            FrameType::kAnon);
  if (!run.ok()) {
    CountEvent(Counter::kHugeFallbacks);
    FaultInjector::NoteSurvived();
    return false;  // Fragmentation/exhaustion: drop to the 4 KiB rung.
  }
  PhysMem& mem = PhysMem::Instance();
  if (!prezeroed) {
    for (uint64_t f = 0; f < (1ull << kHugeOrder); ++f) {
      mem.ZeroFrame(*run + f);
    }
  }
  // No rmap hint here: MapHuge records owner/owner_key when it installs the
  // run (a mapcount-0 frame is invisible to rmap consumers until then).
  VoidResult mapped = cursor.MapHuge(huge_range.start, *run, status.perm, 2);
  if (!mapped.ok()) {
    // The run was never installed; dropping our references returns it to the
    // buddy whole and leaves the space exactly as it was.
    DropRunRef(PageRun(*run, static_cast<uint8_t>(kHugeOrder)));
    FaultInjector::NoteRolledBack();
    CountEvent(Counter::kHugeFallbacks);
    return false;
  }
  CountEvent(Counter::kHugeFaults);
  CountEvent(Counter::kDemandZeroFills, 1ull << kHugeOrder);
  return true;
}

uint32_t VmSpace::FaultAroundPages() const {
  uint32_t v = space_.options().fault_around_pages;
  if (v < 2) {
    return 0;
  }
  if (v > (1u << kHugeOrder)) {
    v = 1u << kHugeOrder;
  }
  while ((v & (v - 1)) != 0) {
    v &= v - 1;  // Round down to a power of two.
  }
  return v;
}

VoidResult VmSpace::HandleFault(Vaddr va, Access access) {
  ScopedOpTimer telemetry_timer(MmOp::kFault);
  // Pressure admission runs before the transaction: the governor may reclaim
  // (taking its own cursors) or sleep, neither legal under subtree locks.
  if (MemPressureGovernor* governor = PressureGovernor()) {
    governor->BeforeFault(this);
  }
  Vaddr page_va = AlignDown(va, kPageSize);
  // The transaction covers the fault-around window when that policy is on,
  // and under the huge-page policy the surrounding 2 MiB slot (a superset of
  // any window — both are power-of-two aligned, the window at most 2 MiB),
  // so an eligible anon fault can install a level-2 leaf — and a write to a
  // huge COW leaf can split it — under the one covering lock.
  bool huge = space_.options().huge_pages;
  uint32_t fa = FaultAroundPages();
  Vaddr lock_base = page_va;
  uint64_t lock_bytes = kPageSize;
  if (fa != 0) {
    lock_bytes = static_cast<uint64_t>(fa) * kPageSize;
    lock_base = AlignDown(page_va, lock_bytes);
  }
  if (huge) {
    lock_base = AlignDown(page_va, kHugePageSize);
    lock_bytes = kHugePageSize;
  }
  VaRange fault_range(lock_base, lock_base + lock_bytes);
  // Fault-around admission, like BeforeFault, runs OUTSIDE the transaction:
  // the governor consults the tenant registry, which is illegal to touch
  // while holding subtree locks.
  uint64_t around_budget = 0;
  if (fa != 0) {
    MemPressureGovernor* governor = PressureGovernor();
    around_budget = governor != nullptr ? governor->FaultAroundBudget(this) : ~0ull;
  }
  for (int attempt = 0;; ++attempt) {
    VoidResult r = [&] {
      RCursor cursor = space_.Lock(fault_range);
      return HandleFaultLocked(cursor, page_va, access, &around_budget);
    }();
    if (r.ok() || r.error() != ErrCode::kNoMem) {
      return r;
    }
    // Allocation failed mid-fault and the transaction rolled back (cursor
    // unwound above). Under a governor, kNoMem degrades to direct reclaim +
    // retry; the error only surfaces once reclaim cannot make progress.
    MemPressureGovernor* governor = PressureGovernor();
    if (governor == nullptr || !governor->OnFaultNoMem(this, attempt)) {
      return r;
    }
  }
}

// Walks outward from the faulting page — nearest neighbours are the
// likeliest next touches — alternating below/above, and stops each direction
// at the first page whose status is not byte-for-byte the faulting page's
// demand-zero status. That single rule enforces every boundary at once: a
// different VMA has a different status, an already-mapped page (including a
// huge leaf, so a window can never eat into a huge run) is kMapped, a
// swapped page is kSwapped. Exhausting |budget| or hitting kNoMem stops the
// whole walk; the primary fault already succeeded, so there is nothing to
// roll back — speculation simply ends early.
uint64_t VmSpace::FaultAround(RCursor& cursor, Vaddr fault_va, const Status& status,
                              uint64_t budget) {
  uint32_t fa = FaultAroundPages();
  if (fa == 0 || budget == 0) {
    return 0;
  }
  const uint64_t window_bytes = static_cast<uint64_t>(fa) * kPageSize;
  Vaddr window_start = AlignDown(fault_va, window_bytes);
  VaRange window(window_start, window_start + window_bytes);
  if (!cursor.range().Contains(window)) {
    return 0;  // A fused batch locked less than the window; skip speculation.
  }
  PhysMem& mem = PhysMem::Instance();
  Vaddr below = fault_va;                // Next candidate is below - kPageSize.
  Vaddr above = fault_va + kPageSize;    // Next candidate is above.
  bool below_open = below > window.start;
  bool above_open = above < window.end;
  uint64_t mapped_count = 0;
  while ((below_open || above_open) && budget > 0) {
    Vaddr va;
    if (above_open && (!below_open || (above - fault_va) <= (fault_va - below))) {
      va = above;
    } else {
      va = below - kPageSize;
    }
    bool is_above = va >= fault_va;
    if (!(cursor.Query(va) == status)) {
      (is_above ? above_open : below_open) = false;
      continue;
    }
    Result<Pfn> frame = AllocAnonFrame(&space_, va, /*zeroed=*/true);
    if (!frame.ok()) {
      FaultInjector::NoteSurvived();  // Speculation ends; the fault succeeded.
      break;
    }
    if (!cursor.Map(va, *frame, status.perm).ok()) {
      DropFrameRef(*frame);
      FaultInjector::NoteRolledBack();
      break;
    }
    // Around-mapped pages were never touched: they start COLD so the reclaim
    // clock can take back wrong guesses on its first pass.
    mem.Descriptor(*frame).young.store(false, std::memory_order_relaxed);
    CountEvent(Counter::kFaultAroundMapped);
    ++mapped_count;
    --budget;
    if (is_above) {
      above += kPageSize;
      above_open = above < window.end;
    } else {
      below = va;
      below_open = below > window.start;
    }
  }
  return mapped_count;
}

VoidResult VmSpace::HandleFaultLocked(RCursor& cursor, Vaddr page_va, Access access,
                                      uint64_t* around_budget) {
  CountEvent(Counter::kPageFaults);
  space_.NoteCpuActive(CurrentCpu());
  Status status = cursor.Query(page_va);

  if (status.mapped()) {
    // Reference for the reclaim clock: software faults are the only access
    // notifications the simulated MMU delivers, so they double as the
    // second-chance "referenced" signal.
    PhysMem::Instance().Descriptor(status.pfn).young.store(true,
                                                           std::memory_order_relaxed);
    Perm perm = status.perm;
    bool want_write = access == Access::kWrite;
    if (want_write && perm.cow()) {
      // Copy-on-write resolution (Figure 8, Status::Mapped arm).
      CountEvent(Counter::kCowFaults);
      PageDescriptor& desc = PhysMem::Instance().Descriptor(status.pfn);
      FrameType type = desc.type.load(std::memory_order_relaxed);
      if (type == FrameType::kAnon &&
          desc.mapcount.load(std::memory_order_acquire) == 1) {
        // Sole mapper: reclaim write access in place ("no need to COW if
        // parent/child has left").
        Perm p = perm.Without(Perm::kCow).With(Perm::kWrite);
        // Rewrite the PTE without disturbing refcounts.
        return cursor.SetLeafPerm(page_va, p);
      }
      // Shared: copy into an exclusive frame.
      Result<Pfn> copy = AllocAnonFrame(&space_, page_va, /*zeroed=*/false);
      if (!copy.ok()) {
        return copy.error();
      }
      PhysMem::Instance().CopyFrame(*copy, status.pfn);
      Perm p = perm.Without(Perm::kCow).With(Perm::kWrite);
      VoidResult mapped = cursor.Map(page_va, *copy, p);  // Unmaps + unrefs the shared frame.
      if (!mapped.ok()) {
        DropFrameRef(*copy);  // Shared frame stays installed; drop only the copy.
        FaultInjector::NoteRolledBack();
      }
      return mapped;
    }
    // Permission check against a mapped page (e.g. a racing thread already
    // resolved this fault: simply return success and let the access retry).
    if ((want_write && !perm.write()) || (access == Access::kExec && !perm.exec()) ||
        (access == Access::kRead && !perm.read())) {
      return ErrCode::kFault;
    }
    // Intel MPK: a protection-key violation is a SEGV (SEGV_PKUERR), not a
    // resolvable fault — the PTE is fine, the thread's PKRU forbids it.
    uint32_t pkru = space_.pkru();
    if (pkru != 0 && access != Access::kExec) {
      PageTable::WalkResult walk = space_.page_table().Walk(page_va);
      if (walk.present) {
        int pkey = PtePkey(space_.options().arch, walk.pte);
        uint32_t bits = (pkru >> (2 * pkey)) & 3;
        if ((bits & 1) || (want_write && (bits & 2))) {
          return ErrCode::kFault;
        }
      }
    }
    return VoidResult();
  }

  if (status.invalid()) {
    return ErrCode::kFault;  // SEGV.
  }
  if (space_.options().huge_pages && status.tag == StatusTag::kPrivateAnon) {
    // Pressure gate: under the low watermark a speculative 512-frame grab
    // would immediately re-trigger reclaim, so the fault demotes to 4 KiB.
    MemPressureGovernor* governor = PressureGovernor();
    if (governor != nullptr && !governor->AllowHugeFaultIn(this)) {
      CountEvent(Counter::kReclaimHugeSuppressed);
    } else {
      Vaddr huge_base = AlignDown(page_va, kHugePageSize);
      VaRange huge_range(huge_base, huge_base + kHugePageSize);
      // A fused batch may have locked less than the 2 MiB slot; the huge rung
      // needs the whole slot under this cursor's covering lock.
      if (cursor.range().Contains(huge_range) &&
          TryHugeFaultIn(cursor, huge_range, status, access)) {
        return VoidResult();
      }
    }
  }
  VoidResult resolved = FaultInPage(cursor, page_va, status, access);
  if (resolved.ok() && status.tag == StatusTag::kPrivateAnon &&
      around_budget != nullptr && *around_budget > 0) {
    // Demand-zero resolved: speculatively map cold neighbours in the same
    // transaction, under the subtree lock this cursor already holds.
    *around_budget -= FaultAround(cursor, page_va, status, *around_budget);
  }
  return resolved;
}

// ---------------------------------------------------------------------------
// Fused batch execution (ROADMAP item 4)
// ---------------------------------------------------------------------------

bool VmSpace::TryExecuteFused(const MmSqe* sqes, MmCqe* cqes, size_t n) {
  if (n == 0) {
    return true;
  }
  // Bounding lock range over every op. Any op without an explicit fusable
  // range makes the whole batch ineligible (the caller dispatches per-op).
  bool huge = space_.options().huge_pages;
  Vaddr lo = kVaLimit;
  Vaddr hi = 0;
  for (size_t i = 0; i < n; ++i) {
    VaRange r;
    if (!SqeRange(sqes[i], &r)) {
      return false;
    }
    if (huge && sqes[i].op == MmOpCode::kFault) {
      // Cover the surrounding 2 MiB slot so the huge fault-in rung stays
      // reachable inside the fused transaction.
      r = VaRange(AlignDown(r.start, kHugePageSize),
                  AlignDown(r.start, kHugePageSize) + kHugePageSize);
    }
    lo = r.start < lo ? r.start : lo;
    hi = r.end > hi ? r.end : hi;
  }
  CountEvent(Counter::kFusedTxns);
  CountEvent(Counter::kFusedTxnOps, n);
  Telemetry::Instance().RecordBatch(BatchStat::kRingOpsPerFusedTxn, n);

  // Munmapped VA blocks go back to the allocator only after the transaction
  // commits (cursor unwound, TLB flushed) — the sync path's ordering. The
  // list is bounded: at kMaxDeferredFreeVa the batch commits early (cursor
  // destroyed, one flush), the blocks are returned, and a fresh transaction
  // picks up the remaining ops, so fleet-scale churn cannot grow it without
  // bound.
  constexpr size_t kMaxDeferredFreeVa = 16;
  std::vector<VaRange> deferred_frees;
  {
    std::optional<RCursor> cursor;
    cursor.emplace(space_.Lock(VaRange(lo, hi)));
    for (size_t i = 0; i < n; ++i) {
      if (deferred_frees.size() >= kMaxDeferredFreeVa) {
        cursor.reset();  // Commit: unwind locks, ONE gathered flush.
        for (const VaRange& freed : deferred_frees) {
          space_.FreeVa(freed.start, freed.size());
        }
        deferred_frees.clear();
        CountEvent(Counter::kFusedVaFlushes);
        cursor.emplace(space_.Lock(VaRange(lo, hi)));
      }
      const MmSqe& sqe = sqes[i];
      MmCqe& cqe = cqes[i];
      cqe.err = ErrCode::kOk;
      cqe.va = 0;
      cqe.count = 0;
      VaRange range(sqe.va, sqe.va + AlignUp(sqe.len, kPageSize));
      switch (sqe.op) {
        case MmOpCode::kMmapAnonFixed: {
          // MAP_FIXED replacement, same reserve-then-replace discipline as
          // MmapAnonAt: after Prepare, the Mark cannot fail.
          VoidResult reserved = cursor->Prepare(range, /*for_marks=*/true);
          if (!reserved.ok()) {
            cqe.err = reserved.error();
            break;
          }
          DropSwapRefs(*cursor, range);
          VoidResult r = cursor->Mark(range, Status::PrivateAnon(sqe.perm));
          if (r.ok()) {
            cqe.va = sqe.va;
          } else {
            cqe.err = r.error();
          }
          break;
        }
        case MmOpCode::kMunmap: {
          VoidResult reserved = cursor->Prepare(range, /*for_marks=*/false);
          if (!reserved.ok()) {
            cqe.err = reserved.error();
            break;
          }
          DropSwapRefs(*cursor, range);
          VoidResult r = cursor->Unmap(range);
          if (r.ok()) {
            deferred_frees.push_back(range);
          } else {
            cqe.err = r.error();
          }
          break;
        }
        case MmOpCode::kMprotect: {
          VoidResult r = cursor->Protect(range, sqe.perm);
          if (!r.ok()) {
            cqe.err = r.error();
          }
          break;
        }
        case MmOpCode::kFault: {
          ScopedOpTimer telemetry_timer(MmOp::kFault);
          VoidResult r =
              HandleFaultLocked(*cursor, AlignDown(sqe.va, kPageSize), sqe.access);
          if (!r.ok()) {
            cqe.err = r.error();
          }
          break;
        }
        default:
          // Unreachable: SqeRange above admits only the four fusable opcodes.
          cqe.err = ErrCode::kInval;
          break;
      }
    }
  }  // Cursor destructor: ONE TlbGather flush covering the whole batch.
  for (const VaRange& range : deferred_frees) {
    space_.FreeVa(range.start, range.size());
  }
  return true;
}

// ---------------------------------------------------------------------------
// Swapping
// ---------------------------------------------------------------------------

Result<uint64_t> VmSpace::SwapOut(Vaddr va, uint64_t len) {
  ScopedOpTimer telemetry_timer(MmOp::kSwapOut);
  if (!IsAligned(va, kPageSize) || len == 0) {
    return ErrCode::kInval;
  }
  len = AlignUp(len, kPageSize);
  VaRange range(va, va + len);
  RCursor cursor = space_.Lock(range);

  struct Victim {
    Vaddr va;
    Pfn pfn;
    Perm perm;
  };
  std::vector<Victim> victims;
  cursor.ForEachStatus(range, [&victims](VaRange run, const Status& status) {
    if (!status.mapped()) {
      return;
    }
    PhysMem& mem = PhysMem::Instance();
    for (uint64_t p = 0; p < run.num_pages(); ++p) {
      Pfn pfn = status.pfn + p;
      PageDescriptor& desc = mem.Descriptor(pfn);
      // Only exclusive anonymous pages are swappable here.
      if (desc.type.load(std::memory_order_relaxed) == FrameType::kAnon &&
          desc.mapcount.load(std::memory_order_acquire) == 1 &&
          desc.refcount.load(std::memory_order_acquire) == 1) {
        victims.push_back(Victim{run.start + (p << kPageBits), pfn, status.perm});
      }
    }
  });

  uint64_t swapped = 0;
  for (const Victim& victim : victims) {
    VaRange page(victim.va, victim.va + kPageSize);
    // Reserve the boundary splits before committing anything: once the swap
    // block is written, the unmap + mark below must not be able to fail.
    if (!cursor.Prepare(page, /*for_marks=*/true).ok()) {
      break;
    }
    Result<uint32_t> block =
        SwapDevice::Instance().WriteNewBlock(PhysMem::Instance().FrameData(victim.pfn));
    if (!block.ok()) {
      // Device full / injected write error: the victim stays resident (the
      // only state change so far is a Prepare split, which is semantically
      // invisible), so no unwind is needed — the eviction simply stops.
      FaultInjector::NoteSurvived();
      break;
    }
    cursor.Unmap(page);
    Perm perm = victim.perm.Without(Perm::kCow);
    cursor.Mark(page, Status::Swapped(0, *block, perm));
    ++swapped;
  }
  return swapped;
}

// ---------------------------------------------------------------------------
// fork (paper §4.3 / Figure 20 workloads)
// ---------------------------------------------------------------------------

std::unique_ptr<VmSpace> VmSpace::Fork() {
  ScopedOpTimer telemetry_timer(MmOp::kFork);
  Result<std::unique_ptr<VmSpace>> child = Create(space_.options());
  if (!child.ok()) {
    FaultInjector::NoteSurvived();
    return nullptr;
  }
  VaRange everything(0, kVaLimit);

  // One transaction over each whole address space; the clone then copies the
  // page table level by level (PT-page-shaped, not page-by-page). The child is
  // private to this thread, so parent-then-child lock order cannot deadlock.
  bool cloned;
  {
    RCursor parent_cursor = space_.Lock(everything);
    RCursor child_cursor = (*child)->space_.Lock(everything);
    cloned = parent_cursor.CloneInto(child_cursor).ok();
  }
  if (!cloned) {
    // Partial clone: destroying the child (after its cursor unlocked) walks
    // its tree through the normal teardown path, returning every frame
    // reference and swap-block reference the clone took. The parent's pages
    // may have gained COW protection, which is semantically invisible.
    child->reset();
    FaultInjector::NoteRolledBack();
    return nullptr;
  }
  return std::move(*child);
}

uint64_t VmSpace::ResidentPages() {
  VaRange everything(0, kVaLimit);
  RCursor cursor = space_.Lock(everything);
  uint64_t pages = 0;
  cursor.ForEachStatus(everything, [&pages](VaRange run, const Status& status) {
    if (status.mapped()) {
      pages += run.num_pages();
    }
  });
  return pages;
}

}  // namespace cortenmm
