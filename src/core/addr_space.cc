// AddrSpace lifecycle and the two locking protocols (paper §4.1, Figures 5-7).
#include "src/core/addr_space.h"

#include <cassert>
#include <utility>

#include "src/common/backoff.h"
#include "src/common/stats.h"
#include "src/fault/fault_inject.h"
#include "src/obs/telemetry.h"
#include "src/pmm/buddy.h"
#include "src/pmm/phys_mem.h"
#include "src/sync/rcu.h"

namespace cortenmm {
namespace {

std::atomic<uint16_t> g_next_asid{1};

// True if, assuming full population, the child PT page under the level-|level|
// page would completely cover |range| (Figure 5 L3 / Figure 6 L5). A range
// that occupies a child's *entire* span stops at the parent instead: whole-
// slot operations (huge-page map, subtree unmap) modify the parent's entry,
// which only the parent's lock protects.
bool ChildShouldCover(int level, VaRange range) {
  if (level <= 1) {
    return false;  // Leaf PT pages have no PT-page children.
  }
  uint64_t child_span = PtPageSpan(level - 1);  // == PtEntrySpan(level)
  Vaddr child_base = AlignDown(range.start, child_span);
  if (AlignDown(range.end - 1, child_span) != child_base) {
    return false;
  }
  return !(range.start == child_base && range.size() == child_span);
}

void RcuFreePtPage(void* page) {
  PageTable::FreePtPage(static_cast<Pfn>(reinterpret_cast<uintptr_t>(page)));
}

}  // namespace

const char* ProtocolName(Protocol protocol) {
  switch (protocol) {
    case Protocol::kRw:
      return "cortenmm-rw";
    case Protocol::kAdv:
      return "cortenmm-adv";
  }
  return "unknown";
}

void AddFrameRef(Pfn pfn) {
  PhysMem::Instance().Descriptor(pfn).refcount.fetch_add(1, std::memory_order_acq_rel);
}

void DropFrameRef(Pfn pfn) {
  PageDescriptor& desc = PhysMem::Instance().Descriptor(pfn);
  if (desc.refcount.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    BuddyAllocator::Instance().FreeFrame(pfn);
  }
}

void DropRunRef(PageRun run) {
  if (run.order == 0) {
    DropFrameRef(run.pfn);
    return;
  }
  if (run.order > kHugeOrder) {
    // Larger-than-huge runs (a hypothetical 1 GiB leaf) have no whole-block
    // free path; fall back to per-frame disposal.
    for (uint64_t f = 0; f < run.num_frames(); ++f) {
      DropFrameRef(run.pfn + f);
    }
    return;
  }
  // One pass over the run's refcounts, remembering which frames died. A
  // never-shared huge leaf dies whole and returns to the buddy as one block;
  // a run that was partially shared (fork COW copied some frames away) frees
  // only its dead frames individually.
  PhysMem& mem = PhysMem::Instance();
  uint64_t dead[(1ull << kHugeOrder) / 64] = {};
  bool all_dead = true;
  bool any_dead = false;
  for (uint64_t f = 0; f < run.num_frames(); ++f) {
    PageDescriptor& desc = mem.Descriptor(run.pfn + f);
    if (desc.refcount.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      dead[f / 64] |= 1ull << (f % 64);
      any_dead = true;
    } else {
      all_dead = false;
    }
  }
  if (all_dead && run.order == kHugeOrder) {
    BuddyAllocator::Instance().FreeHugeRun(run.pfn);
    return;
  }
  if (!any_dead) {
    return;
  }
  for (uint64_t f = 0; f < run.num_frames(); ++f) {
    if (dead[f / 64] & (1ull << (f % 64))) {
      BuddyAllocator::Instance().FreeFrame(run.pfn + f);
    }
  }
}

// ---------------------------------------------------------------------------
// AddrSpace
// ---------------------------------------------------------------------------

AddrSpace::AddrSpace(const Options& options)
    : AddrSpace(options, PageTable(options.arch)) {}

AddrSpace::AddrSpace(const Options& options, PageTable pt)
    : options_(options),
      asid_(g_next_asid.fetch_add(1, std::memory_order_relaxed)),
      pt_(std::move(pt)),
      va_alloc_(options.per_core_va) {}

AddrSpace::~AddrSpace() {
  // Tear down every mapping through the transactional interface, then let the
  // PageTable destructor release the remaining PT pages. Draining the RCU
  // monitor and lazy shootdowns first keeps teardown race-free.
  {
    RCursor cursor = Lock(VaRange(0, kVaLimit));
    cursor.Unmap(VaRange(0, kVaLimit));
  }
  TlbSystem::Instance().DrainAll();
  Rcu::Instance().DrainAll();
  // Invalidate any remaining translations for this ASID everywhere.
  for (CpuId cpu : active_cpus_.ToVector()) {
    TlbSystem::Instance().CpuTlb(cpu).InvalidateAsid(asid_);
  }
}

RCursor AddrSpace::Lock(VaRange range) {
  assert(!range.empty() && range.IsPageAligned() && range.end <= kVaLimit);
  RCursor cursor(this, range);
  if (options_.protocol == Protocol::kRw) {
    cursor.AcquireRw();
  } else {
    cursor.AcquireAdv();
  }
  return cursor;
}

void AddrSpace::TlbFlush(TlbGather& gather) {
  gather.Flush(asid_, active_cpus_, options_.tlb_policy, &DropRunRef);
}

uint64_t AddrSpace::PtBytes() const { return pt_.CountPtPages() * kPageSize; }

// ---------------------------------------------------------------------------
// RCursor: construction / protocols / release
// ---------------------------------------------------------------------------

RCursor::RCursor(AddrSpace* space, VaRange range) : space_(space), range_(range) {}

RCursor::RCursor(RCursor&& other) noexcept
    : space_(other.space_),
      range_(other.range_),
      engaged_(other.engaged_),
      covering_(other.covering_),
      covering_level_(other.covering_level_),
      rw_path_(std::move(other.rw_path_)),
      adv_locked_(std::move(other.adv_locked_)),
      gather_(std::move(other.gather_)),
      acquire_retries_(other.acquire_retries_) {
  other.engaged_ = false;
}

RCursor::~RCursor() {
  if (!engaged_) {
    return;
  }
  // Perform the deferred TLB shootdown before releasing the locks so that no
  // transaction can observe the new page-table state with stale TLB entries
  // still live (paper Figure 8 flushes inside the transaction too). One
  // batched shootdown covers every discrete sub-range this transaction
  // mutated; a transaction that mutated nothing flushes nothing.
  if (!gather_.empty()) {
    space_->TlbFlush(gather_);
  }
  if (pages_touched_ != 0) {
    Telemetry::Instance().Trace(TraceKind::kPagesTouched, pages_touched_,
                                covering_level_);
  }
  Release();
}

// CortenMM_rw (Figure 5): hand-over-hand read locks to the covering PT page,
// which is write-locked.
void RCursor::AcquireRw() {
  // The whole descent (read locks + the covering write lock) is one phase.
  // Sampled: an uncontended acquisition is tens of nanoseconds.
  const bool sampled = AcquireSampler::Sample();
  ScopedPhaseTimer descent_timer(LockPhase::kRwDescent, sampled);
  PageTable& pt = space_->page_table();
  PhysMem& mem = PhysMem::Instance();
  Pfn cur = pt.root();
  int level = kPtLevels;
  for (;;) {
    if (!ChildShouldCover(level, range_)) {
      // |cur| is the lowest PT page covering the whole range: write-lock it.
      mem.Descriptor(cur).rw.WriteLock();
      covering_ = cur;
      covering_level_ = level;
      if (sampled) {
        Telemetry::Instance().Trace(TraceKind::kAcquireEnd, 0, covering_level_);
      }
      return;
    }
    BravoRwLock::ReadCookie cookie = mem.Descriptor(cur).rw.ReadLock();
    Pte pte = pt.LoadEntry(cur, PtIndex(range_.start, level));
    if (PteIsPresent(pt.arch(), pte) && !PteIsLeaf(pt.arch(), pte, level)) {
      rw_path_.push_back(RwPathEntry{cur, cookie});
      cur = PtePfn(pt.arch(), pte);
      --level;
      continue;
    }
    // The covering child does not exist (or is a huge leaf): upgrade |cur|
    // from reader to writer and make it the covering page. |cur| cannot be
    // freed meanwhile — we hold read locks on all its ancestors.
    mem.Descriptor(cur).rw.ReadUnlock(cookie);
    // Chaos: widen the unlocked window of the reader->writer upgrade, where a
    // competing transaction can slip in and change the world under us.
    FaultInjector::Instance().MaybeStall(FaultSite::kRwLockStall);
    mem.Descriptor(cur).rw.WriteLock();
    covering_ = cur;
    covering_level_ = level;
    if (sampled) {
      Telemetry::Instance().Trace(TraceKind::kAcquireEnd, 0, covering_level_);
    }
    return;
  }
}

// CortenMM_adv (Figure 6): lock-free traversal in an RCU read-side critical
// section, MCS-lock the covering page, retry if stale, then DFS-lock all
// existing descendants.
void RCursor::AcquireAdv() {
  PageTable& pt = space_->page_table();
  PhysMem& mem = PhysMem::Instance();
  Rcu& rcu = Rcu::Instance();
  // One sampling decision covers all three phases of this acquisition, so a
  // sampled acquisition contributes to every phase histogram consistently.
  const bool sampled = AcquireSampler::Sample();
  // Stale-retry backoff (DESIGN.md §4.5: every spin loop uses the helper).
  // Under an unmap storm the covering page can go stale repeatedly; spinning
  // right back into the lock queue makes the storm worse.
  SpinBackoff retry_backoff;
  // An acquisition that retries this many times is pathological; count it so
  // telemetry surfaces retry storms instead of them hiding in tail latency.
  constexpr int kRetryStormThreshold = 64;
  for (;;) {  // Retry loop (Figure 6 L2).
    rcu.ReadLock();
    Pfn cur = pt.root();
    int level = kPtLevels;
    {
      ScopedPhaseTimer traversal_timer(LockPhase::kAdvRcuTraversal, sampled);
      while (ChildShouldCover(level, range_)) {
        Pte pte = pt.LoadEntry(cur, PtIndex(range_.start, level));
        if (!PteIsPresent(pt.arch(), pte) || PteIsLeaf(pt.arch(), pte, level)) {
          break;
        }
        cur = PtePfn(pt.arch(), pte);
        --level;
      }
    }
    CnaNode* node = CnaNodePool::Get();
    bool stale;
    {
      ScopedPhaseTimer mcs_timer(LockPhase::kMcsAcquire, sampled);
      // Chaos: widen the window between the lock-free traversal and the MCS
      // acquire — exactly where a concurrent unmap can turn |cur| stale.
      FaultInjector::Instance().MaybeStall(FaultSite::kAdvLockStall);
      mem.Descriptor(cur).cna.Lock(node);
      stale = mem.Descriptor(cur).stale.load(std::memory_order_acquire);
    }
    if (stale) {
      // Raced with an unmap that removed this PT page: retry (Figure 6 L10).
      mem.Descriptor(cur).cna.Unlock(node);
      CnaNodePool::Put(node);
      rcu.ReadUnlock();
      ++acquire_retries_;
      CountEvent(Counter::kLockRetries);
      if (acquire_retries_ == kRetryStormThreshold) {
        CountEvent(Counter::kLockRetryStorms);
      }
      Telemetry::Instance().Trace(TraceKind::kAcquireRetry,
                                  static_cast<uint64_t>(acquire_retries_));
      retry_backoff.Spin();
      continue;
    }
    rcu.ReadUnlock();
    adv_locked_.push_back(AdvLockedPage{cur, node});

    // The traversal stopped where the covering child did not exist (or the
    // world changed since the lock-free walk). Descend hand-over-hand to the
    // *proper* covering level, creating missing PT pages born-locked: locking
    // a high ancestor here would needlessly DFS-lock (and serialize against)
    // every existing subtree below it.
    while (ChildShouldCover(level, range_)) {
      uint64_t index = PtIndex(range_.start, level);
      Pte pte = pt.LoadEntry(cur, index);
      Pfn child;
      if (PteIsPresent(pt.arch(), pte)) {
        if (PteIsLeaf(pt.arch(), pte, level)) {
          break;  // A huge leaf covers the range; ops split it under our lock.
        }
        // The child appeared between the lock-free walk and the lock: take it
        // hand-over-hand (top-down order keeps this deadlock-free). It cannot
        // be stale while we hold its parent.
        child = PtePfn(pt.arch(), pte);
        CnaNode* child_node = CnaNodePool::Get();
        mem.Descriptor(child).cna.Lock(child_node);
        adv_locked_.push_back(AdvLockedPage{child, child_node});
      } else {
        // Create the missing child, locked before it becomes reachable.
        Result<Pfn> created = pt.AllocPtPage(level - 1);
        if (!created.ok()) {
          // OOM: fall back to the coarser covering page — correct, just more
          // serialized. Nothing to unwind.
          FaultInjector::NoteSurvived();
          break;
        }
        child = *created;
        CnaNode* child_node = CnaNodePool::Get();
        mem.Descriptor(child).cna.Lock(child_node);
        adv_locked_.push_back(AdvLockedPage{child, child_node});
        // Push any metadata mark on the slot down before linking (I2).
        PushDownMark(cur, level, index, child);
        pt.StoreEntry(cur, index, MakeTablePte(pt.arch(), child));
        mem.Descriptor(cur).present_ptes.fetch_add(1, std::memory_order_relaxed);
      }
      // Release the ancestor: the transaction's subtree starts at the child.
      AdvUnlockAndForget(cur);
      cur = child;
      --level;
    }

    covering_ = cur;
    covering_level_ = level;
    {
      // Locking phase: preorder DFS over all existing descendants (L17).
      // Only the top-level call is timed — the phase covers the whole DFS.
      ScopedPhaseTimer dfs_timer(LockPhase::kDfsSubtreeLock, sampled);
      AdvDfsLockSubtree(cur, level);
    }
    if (sampled) {
      Telemetry::Instance().Trace(TraceKind::kAcquireEnd,
                                  static_cast<uint64_t>(acquire_retries_),
                                  covering_level_);
    }
    return;
  }
}

void RCursor::AdvDfsLockSubtree(Pfn page, int level) {
  if (level <= 1) {
    return;
  }
  PageTable& pt = space_->page_table();
  PhysMem& mem = PhysMem::Instance();
  // Reading |page|'s slots is safe: we hold |page|'s lock, and removing a
  // child requires holding both the child and |page| (or an ancestor
  // transaction, which would first have to lock our covering page).
  for (uint64_t i = 0; i < kPtesPerPage; ++i) {
    Pte pte = pt.LoadEntry(page, i);
    if (!PteIsPresent(pt.arch(), pte) || PteIsLeaf(pt.arch(), pte, level)) {
      continue;
    }
    Pfn child = PtePfn(pt.arch(), pte);
    CnaNode* node = CnaNodePool::Get();
    mem.Descriptor(child).cna.Lock(node);
    adv_locked_.push_back(AdvLockedPage{child, node});
    AdvDfsLockSubtree(child, level - 1);
  }
}

void RCursor::Release() {
  PhysMem& mem = PhysMem::Instance();
  if (space_->options().protocol == Protocol::kRw) {
    mem.Descriptor(covering_).rw.WriteUnlock();
    for (size_t i = rw_path_.size(); i-- > 0;) {
      mem.Descriptor(rw_path_[i].pfn).rw.ReadUnlock(rw_path_[i].cookie);
    }
    rw_path_.clear();
  } else {
    // Reverse acquisition order (Figure 6 AddrSpace::unlock).
    for (size_t i = adv_locked_.size(); i-- > 0;) {
      mem.Descriptor(adv_locked_[i].pfn).cna.Unlock(adv_locked_[i].node);
      CnaNodePool::Put(adv_locked_[i].node);
    }
    adv_locked_.clear();
  }
  engaged_ = false;
}

// Born-locked registration of a PT page this transaction just created.
void RCursor::NoteLocked(Pfn pfn, int level) {
  (void)level;
  if (space_->options().protocol != Protocol::kAdv) {
    return;  // kRw: descendants of the write-locked covering page need no lock.
  }
  CnaNode* node = CnaNodePool::Get();
  // Uncontended: the page is not yet visible to any traversal... it *is*
  // visible the instant the parent slot is set, but any other transaction
  // reaching it must first lock our covering page, so Lock() cannot block.
  PhysMem::Instance().Descriptor(pfn).cna.Lock(node);
  adv_locked_.push_back(AdvLockedPage{pfn, node});
}

void RCursor::AdvUnlockAndForget(Pfn pfn) {
  // Called while removing a PT page: unlock it and drop it from the locked
  // set so Release() does not touch freed memory.
  for (size_t i = adv_locked_.size(); i-- > 0;) {
    if (adv_locked_[i].pfn == pfn) {
      PhysMem::Instance().Descriptor(pfn).cna.Unlock(adv_locked_[i].node);
      CnaNodePool::Put(adv_locked_[i].node);
      adv_locked_.erase_at(i);
      return;
    }
  }
  assert(false && "unlocking a PT page this cursor does not hold");
}

void RCursor::RemoveChildTable(Pfn pt_page, int level, uint64_t index) {
  PageTable& pt = space_->page_table();
  PhysMem& mem = PhysMem::Instance();
  Pte pte = pt.LoadEntry(pt_page, index);
  assert(PteIsPresent(pt.arch(), pte) && !PteIsLeaf(pt.arch(), pte, level));
  Pfn child = PtePfn(pt.arch(), pte);

  // Atomically detach the subtree: lock-free traversals now either see the
  // old child (still valid until the grace period ends) or nothing (Fig. 7).
  bool detached = pt.CasEntry(pt_page, index, pte, kNullPte);
  assert(detached && "PTE changed under the covering lock");
  (void)detached;
  mem.Descriptor(pt_page).present_ptes.fetch_sub(1, std::memory_order_relaxed);

  if (space_->options().protocol == Protocol::kAdv) {
    // Mark stale + unlock, children before parents (reverse DFS, Fig. 6 L31),
    // then hand the pages to the RCU monitor for deferred reclamation.
    std::vector<std::pair<Pfn, int>> subtree;  // Post-order: children first.
    pt.ForEachPtPagePostOrder(child, level - 1, [&subtree](Pfn pfn, int lvl) {
      subtree.emplace_back(pfn, lvl);
    });
    for (const auto& [pfn, lvl] : subtree) {
      mem.Descriptor(pfn).stale.store(true, std::memory_order_release);
      AdvUnlockAndForget(pfn);
      Rcu::Instance().Retire(reinterpret_cast<void*>(static_cast<uintptr_t>(pfn)),
                             &RcuFreePtPage);
    }
  } else {
    // kRw: no traversal can be inside the subtree (it would hold a read lock
    // on our write-locked covering page), so free immediately.
    pt.ForEachPtPagePostOrder(child, level - 1,
                              [](Pfn pfn, int) { PageTable::FreePtPage(pfn); });
  }
}

}  // namespace cortenmm
