#include "src/obs/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>

#include "src/common/stats.h"
#include "src/fault/fault_inject.h"

namespace cortenmm {

const char* MmOpName(MmOp op) {
  switch (op) {
    case MmOp::kMmap:
      return "mmap";
    case MmOp::kMunmap:
      return "munmap";
    case MmOp::kMprotect:
      return "mprotect";
    case MmOp::kFault:
      return "fault";
    case MmOp::kMmapFile:
      return "mmap_file";
    case MmOp::kMsync:
      return "msync";
    case MmOp::kPkeyMprotect:
      return "pkey_mprotect";
    case MmOp::kSwapOut:
      return "swap_out";
    case MmOp::kFork:
      return "fork";
    case MmOp::kCount:
      break;
  }
  return "unknown";
}

const char* LockPhaseName(LockPhase phase) {
  switch (phase) {
    case LockPhase::kRwDescent:
      return "rw_descent";
    case LockPhase::kAdvRcuTraversal:
      return "adv_rcu_traversal";
    case LockPhase::kMcsAcquire:
      return "mcs_acquire";
    case LockPhase::kDfsSubtreeLock:
      return "dfs_subtree_lock";
    case LockPhase::kShootdownWait:
      return "shootdown_wait";
    case LockPhase::kBravoRevocation:
      return "bravo_revocation";
    case LockPhase::kRcuSynchronize:
      return "rcu_synchronize";
    case LockPhase::kSeqlockWait:
      return "seqlock_wait";
    case LockPhase::kCount:
      break;
  }
  return "unknown";
}

const char* BatchStatName(BatchStat stat) {
  switch (stat) {
    case BatchStat::kShootdownRanges:
      return "shootdown_ranges";
    case BatchStat::kShootdownFrames:
      return "shootdown_frames";
    case BatchStat::kRingSqDepth:
      return "ring_sq_depth";
    case BatchStat::kRingOpsPerDrain:
      return "ring_ops_per_drain";
    case BatchStat::kRingOpsPerFusedTxn:
      return "ring_ops_per_fused_txn";
    case BatchStat::kMagOccupancy:
      return "mag_occupancy";
    case BatchStat::kCount:
      break;
  }
  return "unknown";
}

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kAcquireEnd:
      return "acquire_end";
    case TraceKind::kAcquireRetry:
      return "acquire_retry";
    case TraceKind::kPagesTouched:
      return "pages_touched";
    case TraceKind::kShootdown:
      return "shootdown";
    case TraceKind::kBravoRevoke:
      return "bravo_revoke";
    case TraceKind::kOpEnd:
      return "op_end";
    case TraceKind::kCount:
      break;
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

namespace {

uint64_t SteadyNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if defined(__x86_64__)
// Nanoseconds per TSC tick, measured once over a short busy window. The
// 200 us calibration happens on the first timestamp; subsequent reads are
// one rdtsc + one multiply on the inline path.
double CalibrateTscNsPerTick() {
  uint64_t t0_ns = SteadyNanos();
  uint64_t t0_tsc = __builtin_ia32_rdtsc();
  while (SteadyNanos() - t0_ns < 200 * 1000) {
  }
  uint64_t t1_ns = SteadyNanos();
  uint64_t t1_tsc = __builtin_ia32_rdtsc();
  if (t1_tsc <= t0_tsc) {
    return 0;  // Non-monotonic TSC: fall back to steady_clock.
  }
  return static_cast<double>(t1_ns - t0_ns) / static_cast<double>(t1_tsc - t0_tsc);
}
#endif

}  // namespace

namespace obs_detail {

std::atomic<uint64_t> g_tsc_ns_mul24{0};

uint64_t SlowNowNanos() {
#if defined(__x86_64__)
  static std::once_flag calibrated;
  std::call_once(calibrated, [] {
    double r = CalibrateTscNsPerTick();
    if (r > 0) {
      g_tsc_ns_mul24.store(static_cast<uint64_t>(r * (1 << 24)),
                           std::memory_order_relaxed);
    }
  });
  // Use the same 40.24 fixed-point conversion as the TelemetryNowNanos fast
  // path — not the double ratio it was derived from. The truncated multiplier
  // lags the double by up to ~6e-8 ns/tick, which at boot-scale TSC values is
  // hundreds of microseconds: timestamps from the two formulas would not be
  // mutually monotonic, and trace merging relies on one shared clock.
  uint64_t m = g_tsc_ns_mul24.load(std::memory_order_relaxed);
  if (m != 0) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(__builtin_ia32_rdtsc()) * m) >> 24);
  }
#endif
  return SteadyNanos();
}

}  // namespace obs_detail

#if CORTENMM_TELEMETRY

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

void HistogramSnapshot::Merge(const LatencyHistogram& other) {
  for (int b = 0; b < kLatencyBuckets; ++b) {
    counts[b] += other.BucketCount(b);
  }
  sum_ns += other.SumNanos();
  max_ns = std::max(max_ns, other.MaxNanos());
}

uint64_t HistogramSnapshot::TotalCount() const {
  uint64_t total = 0;
  for (int b = 0; b < kLatencyBuckets; ++b) {
    total += counts[b];
  }
  return total;
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  uint64_t total = TotalCount();
  if (total == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 1.0);
  // The smallest rank such that |rank| samples lie at or below the result.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t cumulative = 0;
  for (int b = 0; b < kLatencyBuckets; ++b) {
    uint64_t n = counts[b];
    if (cumulative + n >= rank) {
      // Interpolate linearly inside the bucket (log-linear buckets: the width
      // is the gap to the next lower bound, not the lower bound itself).
      uint64_t lower = LatencyHistogram::BucketLowerBound(b);
      uint64_t width = LatencyHistogram::BucketLowerBound(b + 1) - lower;
      double frac = n == 0 ? 0
                           : static_cast<double>(rank - cumulative) /
                                 static_cast<double>(n);
      return lower + static_cast<uint64_t>(frac * static_cast<double>(width));
    }
    cumulative += n;
  }
  return max_ns;
}

void LatencyHistogram::Reset() {
  for (int b = 0; b < kBuckets; ++b) {
    counts_[b].store(0, std::memory_order_relaxed);
  }
  sum_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::TotalCount() const {
  uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    total += counts_[b].load(std::memory_order_relaxed);
  }
  return total;
}

// ---------------------------------------------------------------------------
// TraceRing
// ---------------------------------------------------------------------------

TraceRing::~TraceRing() {
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    delete[] cpus_[cpu].value.events.load(std::memory_order_relaxed);
  }
}

TraceEvent* TraceRing::AllocateBuffer(Cpu& c) {
  uint64_t cap = Capacity();
  TraceEvent* buf = new TraceEvent[cap];
  c.cap = cap;
  TraceEvent* expected = nullptr;
  if (c.events.compare_exchange_strong(expected, buf, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
    return buf;
  }
  // A thread sharing this CPU id published first (same capacity — resizes
  // are quiescent-only); use its buffer.
  delete[] buf;
  return expected;
}

void TraceRing::SetCapacity(uint64_t capacity) {
  capacity_.store(std::max<uint64_t>(capacity, 1), std::memory_order_relaxed);
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    Cpu& c = cpus_[cpu].value;
    delete[] c.events.exchange(nullptr, std::memory_order_acq_rel);
    c.cap = 0;
    c.head.store(0, std::memory_order_relaxed);
  }
}

uint64_t TraceRing::Recorded() const {
  uint64_t total = 0;
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    total += cpus_[cpu].value.head.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t TraceRing::Dropped() const {
  uint64_t dropped = 0;
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    const Cpu& c = cpus_[cpu].value;
    uint64_t head = c.head.load(std::memory_order_relaxed);
    if (c.events.load(std::memory_order_acquire) != nullptr && head > c.cap) {
      dropped += head - c.cap;
    }
  }
  return dropped;
}

std::vector<TraceRing::CpuStats> TraceRing::PerCpuStats() const {
  std::vector<CpuStats> stats;
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    const Cpu& c = cpus_[cpu].value;
    uint64_t head = c.head.load(std::memory_order_relaxed);
    if (head == 0 || c.events.load(std::memory_order_acquire) == nullptr) {
      continue;
    }
    CpuStats s;
    s.cpu = cpu;
    s.recorded = head;
    s.dropped = head > c.cap ? head - c.cap : 0;
    stats.push_back(s);
  }
  return stats;
}

std::vector<TraceEvent> TraceRing::MergeSorted() const {
  std::vector<TraceEvent> merged;
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    const Cpu& c = cpus_[cpu].value;
    const TraceEvent* buf = c.events.load(std::memory_order_acquire);
    if (buf == nullptr) {
      continue;
    }
    uint64_t head = c.head.load(std::memory_order_acquire);
    uint64_t live = std::min(head, c.cap);
    for (uint64_t i = head - live; i < head; ++i) {
      merged.push_back(buf[i % c.cap]);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.ns < b.ns; });
  return merged;
}

void TraceRing::Reset() {
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    cpus_[cpu].value.head.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

thread_local int ScopedOpTimer::depth_ = 0;
thread_local uint32_t AcquireSampler::counter_ = 0;

Telemetry& Telemetry::Instance() {
  static Telemetry* telemetry = new Telemetry();  // Leaked: ~7 MB of slots.
  return *telemetry;
}

HistogramSnapshot Telemetry::MergedOp(MmOp op) const {
  HistogramSnapshot merged;
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    merged.Merge(cpus_[cpu].value.ops[static_cast<int>(op)]);
  }
  return merged;
}

HistogramSnapshot Telemetry::MergedPhase(LockPhase phase) const {
  HistogramSnapshot merged;
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    merged.Merge(cpus_[cpu].value.phases[static_cast<int>(phase)]);
  }
  return merged;
}

HistogramSnapshot Telemetry::MergedBatch(BatchStat stat) const {
  HistogramSnapshot merged;
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    merged.Merge(cpus_[cpu].value.batches[static_cast<int>(stat)]);
  }
  return merged;
}

void Telemetry::Reset() {
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    for (auto& h : cpus_[cpu].value.ops) {
      h.Reset();
    }
    for (auto& h : cpus_[cpu].value.phases) {
      h.Reset();
    }
    for (auto& h : cpus_[cpu].value.batches) {
      h.Reset();
    }
  }
  trace_.Reset();
}

namespace {

void AppendHistogramJson(std::ostringstream& os, const char* name,
                         const HistogramSnapshot& h, bool* first) {
  uint64_t count = h.TotalCount();
  if (count == 0) {
    return;
  }
  if (!*first) {
    os << ",";
  }
  *first = false;
  os << "\"" << name << "\":{\"count\":" << count
     << ",\"p50_ns\":" << h.Percentile(0.50) << ",\"p99_ns\":" << h.Percentile(0.99)
     << ",\"mean_ns\":" << (h.sum_ns / count) << ",\"max_ns\":" << h.max_ns
     << "}";
}

// Same shape for value-domain (batch-size) histograms: the sums and maxima
// are sizes, so the keys drop the _ns suffix.
void AppendValueHistogramJson(std::ostringstream& os, const char* name,
                              const HistogramSnapshot& h, bool* first) {
  uint64_t count = h.TotalCount();
  if (count == 0) {
    return;
  }
  if (!*first) {
    os << ",";
  }
  *first = false;
  os << "\"" << name << "\":{\"count\":" << count
     << ",\"p50\":" << h.Percentile(0.50) << ",\"p99\":" << h.Percentile(0.99)
     << ",\"mean\":" << (h.sum_ns / count) << ",\"max\":" << h.max_ns << "}";
}

}  // namespace

void Telemetry::AddJsonSection(const std::string& key,
                               std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(sections_mu_);
  sections_[key] = std::move(provider);
}

std::string Telemetry::DumpJson(const std::string& label) const {
  std::ostringstream os;
  os << "{\"label\":\"" << label << "\",\"ops\":{";
  bool first = true;
  for (int i = 0; i < static_cast<int>(MmOp::kCount); ++i) {
    MmOp op = static_cast<MmOp>(i);
    AppendHistogramJson(os, MmOpName(op), MergedOp(op), &first);
  }
  os << "},\"phases\":{";
  first = true;
  for (int i = 0; i < static_cast<int>(LockPhase::kCount); ++i) {
    LockPhase phase = static_cast<LockPhase>(i);
    AppendHistogramJson(os, LockPhaseName(phase), MergedPhase(phase), &first);
  }
  os << "},\"batches\":{";
  first = true;
  for (int i = 0; i < static_cast<int>(BatchStat::kCount); ++i) {
    BatchStat stat = static_cast<BatchStat>(i);
    AppendValueHistogramJson(os, BatchStatName(stat), MergedBatch(stat), &first);
  }
  os << "},\"counters\":{";
  first = true;
  for (int i = 0; i < static_cast<int>(Counter::kCount); ++i) {
    Counter c = static_cast<Counter>(i);
    uint64_t total = GlobalStats().Total(c);
    if (total == 0) {
      continue;
    }
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\"" << CounterName(c) << "\":" << total;
  }
  uint64_t recorded = trace_.Recorded();
  uint64_t dropped = trace_.Dropped();
  os << "},\"traces\":{\"recorded\":" << recorded << ",\"dropped\":" << dropped
     << ",\"drop_rate\":"
     << (recorded > 0 ? static_cast<double>(dropped) / recorded : 0.0)
     << ",\"per_cpu\":[";
  first = true;
  for (const TraceRing::CpuStats& s : trace_.PerCpuStats()) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"cpu\":" << s.cpu << ",\"recorded\":" << s.recorded
       << ",\"dropped\":" << s.dropped << "}";
  }
  os << "]}";
  {
    std::lock_guard<std::mutex> lock(sections_mu_);
    for (const auto& [key, provider] : sections_) {
      os << ",\"" << key << "\":" << provider();
    }
  }
  // Chaos-mode accounting: per-site injected/survived/rolled-back counters.
  // Omitted entirely when no fault site was ever checked (the common case).
  std::string faults = FaultInjector::Instance().DumpJson();
  if (faults != "{}") {
    os << ",\"faults\":" << faults;
  }
  os << "}";
  return os.str();
}

#endif  // CORTENMM_TELEMETRY

// ---------------------------------------------------------------------------
// BuildConfig
// ---------------------------------------------------------------------------

namespace {

std::map<std::string, std::string>& BuildConfigMap() {
  static std::map<std::string, std::string> config = {
      {"arch", "x86_64"},
      {"protocol", "default"},
      {"telemetry", CORTENMM_TELEMETRY ? "on" : "off"},
      {"faultinj", CORTENMM_FAULTINJ ? "on" : "off"},
      {"page_size_policy", "4k"},
  };
  return config;
}

std::mutex& BuildConfigMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

void BuildConfig::Set(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> guard(BuildConfigMutex());
  BuildConfigMap()[key] = value;
}

std::string BuildConfig::Json() {
  std::lock_guard<std::mutex> guard(BuildConfigMutex());
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [key, value] : BuildConfigMap()) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\"" << key << "\":\"" << value << "\"";
  }
  os << "}";
  return os.str();
}

// ---------------------------------------------------------------------------
// TelemetrySink
// ---------------------------------------------------------------------------

TelemetrySink::TelemetrySink(const std::string& bench_name, uint64_t trace_capacity)
    : bench_name_(bench_name) {
#if CORTENMM_TELEMETRY
  if (trace_capacity > 0) {
    Telemetry::Instance().trace().SetCapacity(trace_capacity);
  }
#else
  (void)trace_capacity;
#endif
}

TelemetrySink::~TelemetrySink() {
  if (!written_) {
    Write();
  }
}

void TelemetrySink::Snapshot(const std::string& label) {
#if CORTENMM_TELEMETRY
  snapshots_.push_back(Telemetry::Instance().DumpJson(label));
  Telemetry::Instance().Reset();
  GlobalStats().Reset();
#else
  (void)label;
#endif
}

std::string TelemetrySink::Write() {
  written_ = true;
  std::string path;
  const char* env = std::getenv("CORTENMM_TELEMETRY_JSON");
  if (env != nullptr && env[0] != '\0') {
    path = env;
  } else {
    path = "BENCH_" + bench_name_ + ".json";
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "telemetry: cannot write %s\n", path.c_str());
    return "";
  }
  std::ostringstream os;
  os << "{\"bench\":\"" << bench_name_ << "\",\"telemetry\":\""
     << (CORTENMM_TELEMETRY ? "enabled" : "disabled")
     << "\",\"build\":" << BuildConfig::Json() << ",\"snapshots\":[";
  for (size_t i = 0; i < snapshots_.size(); ++i) {
    if (i != 0) {
      os << ",";
    }
    os << snapshots_[i];
  }
  os << "]}\n";
  std::string doc = os.str();
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "telemetry: wrote %s (%zu snapshots)\n", path.c_str(),
               snapshots_.size());
  return path;
}

}  // namespace cortenmm
