// Telemetry: the observability layer behind the paper's time-attribution
// figures (14, 16, 17, 20). Three pieces:
//
//   * LatencyHistogram — log2-bucketed nanosecond histograms, one slot per
//     CPU, recording every MM entry point (MmOp) and every lock-protocol
//     phase (LockPhase: rw descent, adv RCU traversal, MCS acquire, DFS
//     subtree lock, TLB shootdown wait, ...). Merging and percentile math
//     happen off the hot path.
//   * TraceRing — a fixed-size per-CPU ring of transaction events (acquire
//     end + retries + covering level, shootdown batch sizes, BRAVO
//     revocations). Writers pay one timestamp and a few relaxed stores; a
//     post-hoc merger sorts all CPUs' events by timestamp.
//   * Telemetry::DumpJson — a JSON snapshot (histogram percentiles, counters,
//     trace accounting) that benches append to BENCH_*.json via TelemetrySink.
//
// Hot-path cost: timestamps use rdtsc where available (calibrated once
// against steady_clock); recording is a relaxed fetch_add on a per-CPU cache
// line. Building with -DCORTENMM_TELEMETRY=0 compiles every probe to a no-op
// with zero data footprint.
#ifndef SRC_OBS_TELEMETRY_H_
#define SRC_OBS_TELEMETRY_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/cpu.h"

#ifndef CORTENMM_TELEMETRY
#define CORTENMM_TELEMETRY 1
#endif

namespace cortenmm {

// MM entry points, one histogram each (the facade's operation set).
enum class MmOp : int {
  kMmap = 0,      // MmapAnon (auto and fixed placement)
  kMunmap,
  kMprotect,
  kFault,         // HandleFault
  kMmapFile,      // MmapFilePrivate / MmapShared
  kMsync,
  kPkeyMprotect,
  kSwapOut,
  kFork,
  kCount,
};

// Lock-protocol and reclamation phases, one histogram each.
enum class LockPhase : int {
  kRwDescent = 0,       // kRw: hand-over-hand BRAVO read descent + covering write lock
  kAdvRcuTraversal,     // kAdv: lock-free traversal inside the RCU read section
  kMcsAcquire,          // kAdv: MCS lock on the covering candidate (incl. stale retries)
  kDfsSubtreeLock,      // kAdv: preorder DFS over existing descendants
  kShootdownWait,       // TLB shootdown issue-to-done (initiator side)
  kBravoRevocation,     // BRAVO writer bias-revocation scan
  kRcuSynchronize,      // RCU grace-period waits
  kSeqlockWait,         // SeqCount::ReadBegin waiting out a writer
  kCount,
};

// Per-batch size distributions (values, not nanoseconds): the log2 histogram
// machinery is reused, so "p50" etc. read as batch sizes.
enum class BatchStat : int {
  kShootdownRanges = 0,  // Discrete ranges per ShootdownBatch (0 = full-ASID).
  kShootdownFrames,      // Dead frames per ShootdownBatch.
  kRingSqDepth,          // Per-CPU submission-ring occupancy at drain collect.
  kRingOpsPerDrain,      // Ops one flat-combining drain pass collected.
  kRingOpsPerFusedTxn,   // Ops fused into one RCursor transaction.
  kMagOccupancy,         // Per-CPU frame-magazine occupancy after a hit.
  kCount,
};

const char* MmOpName(MmOp op);
const char* LockPhaseName(LockPhase phase);
const char* BatchStatName(BatchStat stat);

// Transaction-event kinds recorded in the trace ring.
enum class TraceKind : int {
  kAcquireEnd = 0,  // arg0 = stale retries, arg1 = covering PT level
  kAcquireRetry,    // arg0 = retry ordinal
  kPagesTouched,    // arg0 = pages mutated by the transaction, arg1 = covering level
  kShootdown,       // arg0 = batch size (frames), arg1 = target CPU count
  kBravoRevoke,     // arg0 = scan nanoseconds
  kOpEnd,           // arg0 = MmOp, arg1 = latency ns
  kCount,
};

const char* TraceKindName(TraceKind kind);

namespace obs_detail {
// TSC→ns ratio as 40.24 fixed point (ns = tsc * mul >> 24), 0 until
// calibrated (or forever, when the TSC is unusable): the fast path costs one
// 128-bit multiply and a shift instead of two int<->double conversions. Every
// timestamp — fast or slow path — comes from this one multiplier, so all
// recorded times share a single monotonic clock.
extern std::atomic<uint64_t> g_tsc_ns_mul24;
// Calibrates on first call; steady_clock when the TSC is unusable.
uint64_t SlowNowNanos();
}  // namespace obs_detail

// Monotonic nanoseconds for telemetry timestamps: rdtsc scaled by a
// once-calibrated ratio on x86-64, steady_clock elsewhere. Inline fast path —
// probes call this twice per timed section.
inline uint64_t TelemetryNowNanos() {
#if defined(__x86_64__)
  uint64_t m = obs_detail::g_tsc_ns_mul24.load(std::memory_order_relaxed);
  if (m != 0) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(__builtin_ia32_rdtsc()) * m) >> 24);
  }
#endif
  return obs_detail::SlowNowNanos();
}

// Log-linear bucketing (HdrHistogram style): every power-of-two octave is
// split into kLatencySubBuckets linear sub-buckets, so relative resolution is
// 1/kLatencySubBuckets (12.5%) at any magnitude — enough to resolve a 1.5x
// latency gate, which pure log2 buckets (100% resolution) cannot: two
// distributions whose medians differ by less than 2x can land in the same
// octave and report near-identical interpolated percentiles. Values below
// kLatencySubBuckets get one bucket each (exact). Octave 47 (2^47 ns ≈ 39
// hours) tops out any latency.
inline constexpr int kLatencySubBucketBits = 3;
inline constexpr int kLatencySubBuckets = 1 << kLatencySubBucketBits;
inline constexpr int kLatencyMaxOctave = 47;
inline constexpr int kLatencyBuckets =
    kLatencySubBuckets * (kLatencyMaxOctave - kLatencySubBucketBits) +
    2 * kLatencySubBuckets;

#if CORTENMM_TELEMETRY

class LatencyHistogram;

// A plain (non-atomic) copy of histogram state: what merging per-CPU slots
// produces and what the percentile/reporting math runs on.
struct HistogramSnapshot {
  uint64_t counts[kLatencyBuckets] = {};
  uint64_t sum_ns = 0;
  uint64_t max_ns = 0;

  void Merge(const LatencyHistogram& other);
  uint64_t TotalCount() const;
  // Nanoseconds below which fraction |p| (0 < p <= 1) of samples fall,
  // linearly interpolated inside the winning bucket. 0 if empty.
  uint64_t Percentile(double p) const;
};

// A single log2-bucketed latency histogram. Thread-safe via relaxed atomics;
// intended use is one instance per CPU so contention is nil.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = kLatencyBuckets;

  static int BucketFor(uint64_t ns) {
    if (ns < static_cast<uint64_t>(kLatencySubBuckets)) {
      return static_cast<int>(ns);
    }
    int msb = 63 - __builtin_clzll(ns);
    if (msb > kLatencyMaxOctave) {
      return kBuckets - 1;
    }
    int shift = msb - kLatencySubBucketBits;
    // (ns >> shift) is in [kSub, 2*kSub): the leading bit plus the next
    // kLatencySubBucketBits bits select the sub-bucket within the octave.
    return (shift << kLatencySubBucketBits) + static_cast<int>(ns >> shift);
  }
  static uint64_t BucketLowerBound(int bucket) {
    if (bucket < 2 * kLatencySubBuckets) {
      return static_cast<uint64_t>(bucket);
    }
    int shift = (bucket >> kLatencySubBucketBits) - 1;
    uint64_t sub = static_cast<uint64_t>(bucket) -
                   (static_cast<uint64_t>(shift) << kLatencySubBucketBits);
    return sub << shift;
  }

  void Record(uint64_t ns) {
    counts_[BucketFor(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    uint64_t prev = max_ns_.load(std::memory_order_relaxed);
    while (ns > prev &&
           !max_ns_.compare_exchange_weak(prev, ns, std::memory_order_relaxed)) {
    }
  }

  void Reset();

  uint64_t TotalCount() const;
  uint64_t SumNanos() const { return sum_ns_.load(std::memory_order_relaxed); }
  uint64_t MaxNanos() const { return max_ns_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(int bucket) const {
    return counts_[bucket].load(std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    snap.Merge(*this);
    return snap;
  }
  uint64_t Percentile(double p) const { return Snapshot().Percentile(p); }

 private:
  std::atomic<uint64_t> counts_[kBuckets] = {};
  std::atomic<uint64_t> sum_ns_{0};
  std::atomic<uint64_t> max_ns_{0};
};

// One trace event. 32 bytes so a ring slot is two cache lines per four events.
struct TraceEvent {
  uint64_t ns = 0;       // TelemetryNowNanos() at record time.
  uint32_t cpu = 0;
  TraceKind kind = TraceKind::kAcquireEnd;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
};

// Per-CPU ring with runtime-configurable capacity. Overwrites the oldest
// events when full and counts how many were lost; MergeSorted() returns the
// surviving events of all CPUs ordered by timestamp. Buffers are allocated
// lazily on each CPU's first Record, so idle CPUs cost 0 bytes at any size.
class TraceRing {
 public:
  // Default per-CPU capacity — 16x the original 1024, because the measured
  // >90% drop rate under bench load was first a capacity problem. Benches
  // that need more pass a capacity to TelemetrySink, which lands here via
  // SetCapacity.
  static constexpr uint64_t kCapacity = 16384;  // Per CPU.

  TraceRing() = default;
  ~TraceRing();
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Record(TraceKind kind, uint64_t arg0, uint64_t arg1) {
    Cpu& c = cpus_[CurrentCpu() % kMaxCpus].value;
    TraceEvent* buf = c.events.load(std::memory_order_acquire);
    if (buf == nullptr) {
      buf = AllocateBuffer(c);
    }
    uint64_t slot = c.head.fetch_add(1, std::memory_order_relaxed);
    TraceEvent& e = buf[slot % c.cap];
    e.ns = TelemetryNowNanos();
    e.cpu = static_cast<uint32_t>(CurrentCpu());
    e.kind = kind;
    e.arg0 = arg0;
    e.arg1 = arg1;
  }

  uint64_t Capacity() const { return capacity_.load(std::memory_order_relaxed); }

  // Resizes the per-CPU rings. Quiescent-only (no concurrent Record): frees
  // every existing buffer and zeroes the heads, so each CPU's next Record
  // allocates at the new size. Values are clamped to at least 1.
  void SetCapacity(uint64_t capacity);

  // Total events ever recorded / lost to overwriting, across all CPUs.
  uint64_t Recorded() const;
  uint64_t Dropped() const;

  // Per-CPU accounting — the drop-blindness fix: a ring that silently
  // overwrote 90% of one hot CPU's events is invisible in the all-CPU totals
  // only until you look here.
  struct CpuStats {
    int cpu = 0;
    uint64_t recorded = 0;
    uint64_t dropped = 0;
  };
  // Only CPUs that recorded at least one event.
  std::vector<CpuStats> PerCpuStats() const;

  std::vector<TraceEvent> MergeSorted() const;
  void Reset();

 private:
  struct Cpu {
    std::atomic<uint64_t> head{0};  // Total records; head % cap = next slot.
    std::atomic<TraceEvent*> events{nullptr};  // Lazy buffer of |cap| slots.
    uint64_t cap = 0;  // Valid once events is non-null.
  };

  // Publishes a buffer for |c| (first Record on this CPU). Two threads
  // sharing a CPU id race benignly: CAS picks a winner, the loser frees its
  // attempt and uses the winner's buffer.
  TraceEvent* AllocateBuffer(Cpu& c);

  std::atomic<uint64_t> capacity_{kCapacity};
  CacheAligned<Cpu> cpus_[kMaxCpus];
};

class Telemetry {
 public:
  static Telemetry& Instance();

  void RecordOp(MmOp op, uint64_t ns) {
    cpus_[CurrentCpu() % kMaxCpus].value.ops[static_cast<int>(op)].Record(ns);
  }
  void RecordPhase(LockPhase phase, uint64_t ns) {
    cpus_[CurrentCpu() % kMaxCpus].value.phases[static_cast<int>(phase)].Record(ns);
  }
  void RecordBatch(BatchStat stat, uint64_t size) {
    cpus_[CurrentCpu() % kMaxCpus].value.batches[static_cast<int>(stat)].Record(size);
  }
  void Trace(TraceKind kind, uint64_t arg0 = 0, uint64_t arg1 = 0) {
    trace_.Record(kind, arg0, arg1);
  }

  // Merged (all-CPU) views, for reporting.
  HistogramSnapshot MergedOp(MmOp op) const;
  HistogramSnapshot MergedPhase(LockPhase phase) const;
  HistogramSnapshot MergedBatch(BatchStat stat) const;
  TraceRing& trace() { return trace_; }

  void Reset();

  // Registers (or replaces) an auxiliary JSON section emitted into every
  // DumpJson document under |key|. The provider returns a complete JSON
  // value. This is how subsystems above obs (reclaim's watermark state block)
  // get into the telemetry document without obs depending on them.
  void AddJsonSection(const std::string& key,
                      std::function<std::string()> provider);

  // One JSON snapshot object: {"label": ..., "ops": {...}, "phases": {...},
  // "counters": {...}, "traces": {...}}. Histograms report count/p50/p99/
  // mean/max in nanoseconds; empty histograms are omitted. The "traces"
  // block carries total + per-CPU recorded/dropped counts and the drop rate.
  std::string DumpJson(const std::string& label) const;

 private:
  Telemetry() = default;

  struct Cpu {
    LatencyHistogram ops[static_cast<int>(MmOp::kCount)];
    LatencyHistogram phases[static_cast<int>(LockPhase::kCount)];
    LatencyHistogram batches[static_cast<int>(BatchStat::kCount)];
  };
  CacheAligned<Cpu> cpus_[kMaxCpus];
  TraceRing trace_;
  mutable std::mutex sections_mu_;
  std::map<std::string, std::function<std::string()>> sections_;
};

// RAII probe for an MM entry point.
class ScopedOpTimer {
 public:
  // Only the outermost timer on a thread records: MM entry points delegate to
  // one another (MmapAnon -> fixed-placement helpers, Fork -> mmap paths), and each call
  // through the facade must count as one sample, not one per layer.
  explicit ScopedOpTimer(MmOp op) : op_(op), outermost_(depth_++ == 0) {
    if (outermost_) {
      start_ = TelemetryNowNanos();
    }
  }
  ~ScopedOpTimer() {
    --depth_;
    if (outermost_) {
      Telemetry::Instance().RecordOp(op_, TelemetryNowNanos() - start_);
    }
  }
  ScopedOpTimer(const ScopedOpTimer&) = delete;
  ScopedOpTimer& operator=(const ScopedOpTimer&) = delete;

 private:
  static thread_local int depth_;
  MmOp op_;
  bool outermost_;
  uint64_t start_ = 0;
};

// RAII probe for a lock-protocol phase. |enabled| = false skips both
// timestamps, so sampled call sites pay only the flag check.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(LockPhase phase, bool enabled = true)
      : phase_(phase), enabled_(enabled),
        start_(enabled ? TelemetryNowNanos() : 0) {}
  ~ScopedPhaseTimer() {
    if (enabled_) {
      Telemetry::Instance().RecordPhase(phase_, TelemetryNowNanos() - start_);
    }
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  LockPhase phase_;
  bool enabled_;
  uint64_t start_;
};

// 1-in-kEvery per-thread sampling decision for the acquisition-path probes:
// a lock acquisition is tens of nanoseconds, so timing every one would
// dominate it. The first call on each thread samples, making single-shot
// unit tests deterministic. Heavyweight phases (shootdown, RCU grace
// periods, BRAVO revocation) are recorded unsampled.
class AcquireSampler {
 public:
  static constexpr uint32_t kEvery = 32;
  static bool Sample() { return (counter_++ % kEvery) == 0; }

 private:
  static thread_local uint32_t counter_;
};

#else  // !CORTENMM_TELEMETRY — every probe compiles to nothing.

class LatencyHistogram;

struct HistogramSnapshot {
  void Merge(const LatencyHistogram&) {}
  uint64_t TotalCount() const { return 0; }
  uint64_t Percentile(double) const { return 0; }
};

class LatencyHistogram {
 public:
  static constexpr int kBuckets = kLatencyBuckets;
  static int BucketFor(uint64_t) { return 0; }
  static uint64_t BucketLowerBound(int) { return 0; }
  void Record(uint64_t) {}
  void Reset() {}
  uint64_t TotalCount() const { return 0; }
  uint64_t SumNanos() const { return 0; }
  uint64_t MaxNanos() const { return 0; }
  uint64_t BucketCount(int) const { return 0; }
  HistogramSnapshot Snapshot() const { return {}; }
  uint64_t Percentile(double) const { return 0; }
};

struct TraceEvent {
  uint64_t ns = 0;
  uint32_t cpu = 0;
  TraceKind kind = TraceKind::kAcquireEnd;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
};

class TraceRing {
 public:
  static constexpr uint64_t kCapacity = 0;
  void Record(TraceKind, uint64_t, uint64_t) {}
  uint64_t Capacity() const { return 0; }
  void SetCapacity(uint64_t) {}
  uint64_t Recorded() const { return 0; }
  uint64_t Dropped() const { return 0; }
  struct CpuStats {
    int cpu = 0;
    uint64_t recorded = 0;
    uint64_t dropped = 0;
  };
  std::vector<CpuStats> PerCpuStats() const { return {}; }
  std::vector<TraceEvent> MergeSorted() const { return {}; }
  void Reset() {}
};

class Telemetry {
 public:
  static Telemetry& Instance() {
    static Telemetry t;
    return t;
  }
  void RecordOp(MmOp, uint64_t) {}
  void RecordPhase(LockPhase, uint64_t) {}
  void RecordBatch(BatchStat, uint64_t) {}
  void Trace(TraceKind, uint64_t = 0, uint64_t = 0) {}
  HistogramSnapshot MergedOp(MmOp) const { return {}; }
  HistogramSnapshot MergedPhase(LockPhase) const { return {}; }
  HistogramSnapshot MergedBatch(BatchStat) const { return {}; }
  TraceRing& trace() { return trace_; }
  void Reset() {}
  void AddJsonSection(const std::string&, std::function<std::string()>) {}
  std::string DumpJson(const std::string&) const { return "{}"; }

 private:
  TraceRing trace_;
};

class ScopedOpTimer {
 public:
  explicit ScopedOpTimer(MmOp) {}
};

class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(LockPhase, bool = true) {}
};

class AcquireSampler {
 public:
  static constexpr uint32_t kEvery = 32;
  static bool Sample() { return false; }
};

#endif  // CORTENMM_TELEMETRY

// The build/run configuration block stamped into every telemetry document:
// compile-time flags (telemetry, fault injection) are pre-populated; run-
// dependent keys (arch, protocol, page_size_policy) default conservatively
// and benches override them via Set. Keys emit in sorted order so documents
// diff cleanly across runs.
class BuildConfig {
 public:
  static void Set(const std::string& key, const std::string& value);
  // The whole block as a JSON object, e.g.
  // {"arch":"x86_64","faultinj":"on","page_size_policy":"4k",...}.
  static std::string Json();
};

// Accumulates labelled Telemetry snapshots and writes them as one JSON
// document, so every bench emits a machine-readable BENCH_<name>.json next to
// its stdout tables. The output path defaults to BENCH_<name>.json in the
// working directory; the CORTENMM_TELEMETRY_JSON environment variable
// overrides it. With telemetry compiled out the file records only
// {"telemetry": "disabled"}. Every document carries the BuildConfig block so
// a result can never be mistaken for one produced under different flags.
class TelemetrySink {
 public:
  // |trace_capacity| > 0 resizes the per-CPU trace rings for the bench's
  // lifetime (TraceRing::SetCapacity); 0 keeps the current size. Benches
  // whose smoke output warns about trace drop rates raise this.
  explicit TelemetrySink(const std::string& bench_name,
                         uint64_t trace_capacity = 0);
  ~TelemetrySink();  // Writes the file.

  // Captures the current Telemetry state under |label| and resets it so the
  // next snapshot starts clean.
  void Snapshot(const std::string& label);

  // Writes the document now (also called by the destructor). Returns the
  // path written, empty on failure.
  std::string Write();

 private:
  std::string bench_name_;
  std::vector<std::string> snapshots_;
  bool written_ = false;
};

}  // namespace cortenmm

#endif  // SRC_OBS_TELEMETRY_H_
