// Per-CPU software TLB. The simulated MMU consults it before walking the page
// table; the MM layers must invalidate it on unmap/protect, which is where the
// paper's TLB-shootdown optimizations (§4.5) enter the picture.
//
// The TLB is a small set-associative cache of leaf translations tagged by
// ASID (one per address space). A tiny spin lock per TLB makes remote
// invalidation safe; on real hardware that role is played by IPIs.
#ifndef SRC_TLB_TLB_H_
#define SRC_TLB_TLB_H_

#include <cstdint>
#include <optional>

#include "src/common/types.h"
#include "src/sync/spinlock.h"

namespace cortenmm {

using Asid = uint16_t;

struct TlbEntry {
  bool valid = false;
  Asid asid = 0;
  int level = 1;        // 1 = 4K, 2 = 2M, 3 = 1G translation.
  Vaddr va_base = 0;    // Aligned to the level's span.
  uint64_t pte_raw = 0;
  uint64_t stamp = 0;   // For LRU replacement within a set.
};

class Tlb {
 public:
  static constexpr int kSets = 64;
  static constexpr int kWays = 4;

  // Returns the cached leaf PTE raw value if present.
  std::optional<TlbEntry> Lookup(Asid asid, Vaddr va);
  void Insert(Asid asid, Vaddr va, uint64_t pte_raw, int level);

  void InvalidateRange(Asid asid, VaRange range);
  // Invalidates every entry of |asid| intersecting any of |ranges| in one
  // locked sweep — the per-target cost of a batched shootdown is one pass
  // over the TLB regardless of how many ranges the batch carries.
  void InvalidateRanges(Asid asid, const VaRange* ranges, size_t num_ranges);
  void InvalidateAsid(Asid asid);
  void InvalidateAll();

  uint64_t lookups() const { return lookups_; }
  uint64_t hits() const { return hits_; }

 private:
  static int SetOf(Vaddr va) { return (va >> kPageBits) & (kSets - 1); }

  SpinLock lock_;
  TlbEntry sets_[kSets][kWays];
  uint64_t clock_ = 0;
  uint64_t lookups_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace cortenmm

#endif  // SRC_TLB_TLB_H_
