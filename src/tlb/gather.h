// TlbGather — mmu_gather-style shootdown batching (Linux idiom applied to the
// paper's §4.5 TLB coordination). A transaction that touches several
// non-adjacent pages used to either issue one shootdown per page or collapse
// everything into a bounding box covering untouched memory in between. The
// gather instead accumulates up to kMaxRanges discrete (range, dead-frame)
// records, coalescing adjacent and overlapping ranges as they arrive, and
// submits them all through one TlbSystem::ShootdownBatch — one invalidation
// sweep per target CPU, one LATR entry per batch.
//
// Past kMaxRanges the gather degenerates to a single full-ASID flush (the
// same escape hatch Linux takes when a munmap spans too many VMAs): precision
// no longer pays for itself once the batch would invalidate a large fraction
// of a 256-entry TLB anyway.
//
// Not thread-safe: one gather belongs to one transaction (an RCursor or a
// baseline operation) and is flushed before the transaction publishes.
#ifndef SRC_TLB_GATHER_H_
#define SRC_TLB_GATHER_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "src/common/small_vec.h"
#include "src/common/types.h"
#include "src/tlb/shootdown.h"

namespace cortenmm {

class TlbGather {
 public:
  // Distinct ranges a batch may carry before falling back to a full-ASID
  // flush. Chosen so a transaction unmapping 16 sparse pages still flushes
  // precisely (the ablation workload), while anything larger — e.g. a fork
  // demoting hundreds of leaves to COW — takes the one-sweep fallback.
  static constexpr size_t kMaxRanges = 16;

  TlbGather() = default;
  TlbGather(TlbGather&&) = default;
  TlbGather& operator=(TlbGather&&) = default;
  TlbGather(const TlbGather&) = delete;
  TlbGather& operator=(const TlbGather&) = delete;

  // Records that |range| must be invalidated on flush. Coalesces with any
  // already-gathered range it overlaps or abuts; past kMaxRanges distinct
  // ranges the gather switches to full-ASID mode and stops tracking ranges.
  void AddRange(VaRange range);

  // Records a run whose last mapping died inside a gathered range: one
  // record per dead LEAF, whatever its order — a 2 MiB unmap contributes one
  // order-9 record, not 512 order-0 ones. The run is released (via the freer
  // passed to Flush) only after every target's invalidation — under LATR,
  // only after the last lazy ack.
  void AddRun(PageRun run) {
    assert(run.aligned());
    runs_.push_back(run);
  }

  // Order-0 convenience for the base-page paths.
  void AddFrame(Pfn pfn) { AddRun(PageRun(pfn, 0)); }

  // Submits the accumulated batch as one ShootdownBatch and resets the
  // gather. No-op when nothing was gathered (a read-only or rolled-back
  // transaction flushes nothing).
  void Flush(Asid asid, const CpuMask& mask, TlbPolicy policy, RunFreer freer);

  bool empty() const { return ranges_.empty() && runs_.empty() && !full_flush_; }
  bool full_flush() const { return full_flush_; }
  size_t range_count() const { return ranges_.size(); }
  const VaRange* ranges() const { return ranges_.begin(); }
  size_t run_count() const { return runs_.size(); }
  // Total frames across the gathered runs (reclaim volume, not record count).
  uint64_t frame_count() const {
    uint64_t total = 0;
    for (const PageRun& run : runs_) {
      total += run.num_frames();
    }
    return total;
  }

 private:
  SmallVec<VaRange, kMaxRanges> ranges_;  // Sorted by start, pairwise disjoint.
  std::vector<PageRun> runs_;
  bool full_flush_ = false;
};

}  // namespace cortenmm

#endif  // SRC_TLB_GATHER_H_
