// TLB shootdown engine with the three strategies the paper discusses (§4.5):
//
//  kSync      — the initiator invalidates each active CPU's TLB one after the
//               other and only then frees the unmapped frames (the classic
//               IPI-and-wait protocol).
//  kEarlyAck  — concurrent flush with early acknowledgement [Amit et al.,
//               EuroSys'20]: invalidations of all targets proceed without
//               per-target round trips; frames are freed as soon as all
//               invalidations are issued.
//  kLatr      — lazy shootdown [LATR, ASPLOS'18]: the initiator pushes the
//               (range, frames, target CPUs) record into its per-CPU buffer
//               and returns immediately; each target flushes its own TLB at
//               its next tick (timer interrupt / reschedule analog), and the
//               frames are reclaimed only after the last target acknowledges.
//
// Correctness note mirrored from LATR: until a lazy entry is fully
// acknowledged, its frames are not returned to the allocator, so a stale TLB
// translation can only reach memory that still holds the old (dead) data.
#ifndef SRC_TLB_SHOOTDOWN_H_
#define SRC_TLB_SHOOTDOWN_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/cpu.h"
#include "src/common/types.h"
#include "src/sync/spinlock.h"
#include "src/tlb/tlb.h"

namespace cortenmm {

enum class TlbPolicy {
  kSync,
  kEarlyAck,
  kLatr,
};

const char* TlbPolicyName(TlbPolicy policy);

// A fixed-width CPU set. kMaxCpus bits.
class CpuMask {
 public:
  void Set(CpuId cpu) {
    words_[cpu / 64].fetch_or(1ull << (cpu % 64), std::memory_order_acq_rel);
  }
  bool Test(CpuId cpu) const {
    return words_[cpu / 64].load(std::memory_order_acquire) & (1ull << (cpu % 64));
  }
  // Snapshot of all set CPU ids, bounded by the online count.
  std::vector<CpuId> ToVector() const;

 private:
  std::atomic<uint64_t> words_[kMaxCpus / 64] = {};
};

// Disposes of a dead run once every target has invalidated. Runs, not bare
// frames: a huge unmap hands the shootdown ONE order-9 record, and the freer
// decides whether the run dies whole (back to the buddy as a block) or frame
// by frame (shared frames with surviving references).
using RunFreer = void (*)(PageRun);

class TlbSystem {
 public:
  static TlbSystem& Instance();

  Tlb& CpuTlb(CpuId cpu) { return tlbs_[cpu].value; }

  // Invalidates |range| of |asid| on every CPU in |mask| according to
  // |policy|, then disposes of |runs| via |freer| (possibly deferred).
  // |runs| may be empty (e.g. mprotect). Thin wrapper over ShootdownBatch
  // with a single range.
  void Shootdown(Asid asid, VaRange range, const CpuMask& mask, TlbPolicy policy,
                 std::vector<PageRun> runs, RunFreer freer);

  // Batched shootdown (the TlbGather submission path): invalidates all
  // |num_ranges| ranges of |asid| — or the whole ASID when |full_asid| — on
  // every CPU in |mask| with ONE invalidation sweep per target and, under
  // kLatr, one deferred entry for the whole batch. Counts as a single
  // kTlbShootdowns event however many ranges the batch carries.
  void ShootdownBatch(Asid asid, const VaRange* ranges, size_t num_ranges, bool full_asid,
                      const CpuMask& mask, TlbPolicy policy, std::vector<PageRun> runs,
                      RunFreer freer);

  // The target-side pump: drains lazy shootdown entries addressed to |cpu|.
  // The simulated MMU calls this periodically (timer-tick analog).
  void Tick(CpuId cpu);

  // Drains every pending lazy entry on all CPUs (benchmark phase boundaries,
  // address-space teardown).
  void DrainAll();

  uint64_t pending_latr_entries() const {
    return pending_latr_.load(std::memory_order_relaxed);
  }

 private:
  struct LatrEntry {
    Asid asid;
    std::vector<VaRange> ranges;  // Empty when full_asid.
    bool full_asid = false;
    std::vector<PageRun> runs;  // Dead runs held until the last lazy ack.
    RunFreer freer;
    std::vector<CpuId> targets;
    std::atomic<uint32_t> remaining{0};
    std::atomic<uint64_t> acked_mask[kMaxCpus / 64] = {};

    bool TryAck(CpuId cpu);
    // Whether |cpu| already flushed and acknowledged this entry. Tick checks
    // this before invalidating so each target flushes each entry exactly once.
    bool HasAcked(CpuId cpu) const;
  };

  struct LatrBuffer {
    SpinLock lock;
    std::vector<LatrEntry*> entries;
  };

  void FinishEntry(LatrEntry* entry);

  CacheAligned<Tlb> tlbs_[kMaxCpus];
  CacheAligned<LatrBuffer> latr_[kMaxCpus];
  std::atomic<uint64_t> pending_latr_{0};
};

}  // namespace cortenmm

#endif  // SRC_TLB_SHOOTDOWN_H_
