#include "src/tlb/shootdown.h"

#include <cassert>

#include "src/common/stats.h"
#include "src/fault/fault_inject.h"
#include "src/obs/telemetry.h"

namespace cortenmm {

const char* TlbPolicyName(TlbPolicy policy) {
  switch (policy) {
    case TlbPolicy::kSync:
      return "sync";
    case TlbPolicy::kEarlyAck:
      return "early-ack";
    case TlbPolicy::kLatr:
      return "latr";
  }
  return "unknown";
}

std::vector<CpuId> CpuMask::ToVector() const {
  std::vector<CpuId> cpus;
  for (int word = 0; word < kMaxCpus / 64; ++word) {
    uint64_t bits = words_[word].load(std::memory_order_acquire);
    while (bits != 0) {
      int bit = __builtin_ctzll(bits);
      cpus.push_back(word * 64 + bit);
      bits &= bits - 1;
    }
  }
  return cpus;
}

TlbSystem& TlbSystem::Instance() {
  static TlbSystem system;
  return system;
}

// Weak-memory audit (PR 9): the publish/tick/ack protocol is TSO-safe as
// written, model-checked by MakeLatrLitmus (src/verif/litmus_model.cc).
// Entries are published and scanned under the per-CPU buffer spinlock, whose
// Lock() is an RMW — the initiator's buffered entry stores must commit before
// its lock-release store (FIFO), so a target that acquires the lock sees a
// fully-written entry. TryAck/HasAcked are an RMW and an acquire load on the
// same word, so an ack is visible to every later tick; removing the HasAcked
// skip re-invalidates acked entries (the LatrVariant::kNoHasAckedCheck litmus
// regression), and the fetch_sub on `remaining` orders FinishEntry after both
// flushes.
bool TlbSystem::LatrEntry::TryAck(CpuId cpu) {
  uint64_t bit = 1ull << (cpu % 64);
  uint64_t prev = acked_mask[cpu / 64].fetch_or(bit, std::memory_order_acq_rel);
  if (prev & bit) {
    return false;  // Already acknowledged.
  }
  return remaining.fetch_sub(1, std::memory_order_acq_rel) == 1;  // Last ack?
}

bool TlbSystem::LatrEntry::HasAcked(CpuId cpu) const {
  return acked_mask[cpu / 64].load(std::memory_order_acquire) & (1ull << (cpu % 64));
}

namespace {

// Weighted frame count of a batch: an order-9 record is one RECORD but 512
// frames of reclaim, and the telemetry reports reclaim volume.
uint64_t TotalFrames(const std::vector<PageRun>& runs) {
  uint64_t total = 0;
  for (const PageRun& run : runs) {
    total += run.num_frames();
  }
  return total;
}

}  // namespace

void TlbSystem::FinishEntry(LatrEntry* entry) {
  if (entry->freer != nullptr) {
    for (const PageRun& run : entry->runs) {
      entry->freer(run);
    }
  }
  pending_latr_.fetch_sub(1, std::memory_order_relaxed);
  delete entry;
}

void TlbSystem::Shootdown(Asid asid, VaRange range, const CpuMask& mask, TlbPolicy policy,
                          std::vector<PageRun> runs, RunFreer freer) {
  ShootdownBatch(asid, &range, 1, /*full_asid=*/false, mask, policy, std::move(runs),
                 freer);
}

void TlbSystem::ShootdownBatch(Asid asid, const VaRange* ranges, size_t num_ranges,
                               bool full_asid, const CpuMask& mask, TlbPolicy policy,
                               std::vector<PageRun> runs, RunFreer freer) {
  if (num_ranges == 0 && !full_asid) {
    // Run-only batch: nothing was ever visible in a TLB, dispose directly.
    if (freer != nullptr) {
      for (const PageRun& run : runs) {
        freer(run);
      }
    }
    return;
  }
  // The whole batch is one shootdown event — that is the point of gathering.
  CountEvent(Counter::kTlbShootdowns);
  // Initiator-side wait: for kSync/kEarlyAck this covers the full remote
  // invalidation sweep; for kLatr only the local flush + buffer publish.
  ScopedPhaseTimer telemetry_timer(LockPhase::kShootdownWait);
  CpuId self = CurrentCpu();
  std::vector<CpuId> targets = mask.ToVector();
  uint64_t total_frames = TotalFrames(runs);
  Telemetry::Instance().Trace(TraceKind::kShootdown, total_frames, targets.size());
  Telemetry::Instance().RecordBatch(BatchStat::kShootdownRanges,
                                    full_asid ? 0 : num_ranges);
  Telemetry::Instance().RecordBatch(BatchStat::kShootdownFrames, total_frames);

  // One pass over a target's TLB covers every range in the batch (or the
  // whole ASID once the gather fell back).
  auto invalidate = [&](CpuId cpu) {
    if (full_asid) {
      CpuTlb(cpu).InvalidateAsid(asid);
    } else {
      CpuTlb(cpu).InvalidateRanges(asid, ranges, num_ranges);
    }
  };

  if (policy == TlbPolicy::kLatr) {
    // Flush locally now; defer remote flushes and frame reclamation.
    invalidate(self);
    std::vector<CpuId> remote;
    for (CpuId cpu : targets) {
      if (cpu != self) {
        remote.push_back(cpu);
      }
    }
    if (remote.empty()) {
      if (freer != nullptr) {
        for (const PageRun& run : runs) {
          freer(run);
        }
      }
      return;
    }
    // One deferred entry for the whole batch: each target acks once however
    // many ranges the transaction gathered.
    auto* entry = new LatrEntry;
    entry->asid = asid;
    entry->full_asid = full_asid;
    if (!full_asid) {
      entry->ranges.assign(ranges, ranges + num_ranges);
    }
    entry->runs = std::move(runs);
    entry->freer = freer;
    entry->targets = std::move(remote);
    entry->remaining.store(static_cast<uint32_t>(entry->targets.size()),
                           std::memory_order_relaxed);
    pending_latr_.fetch_add(1, std::memory_order_relaxed);
    LatrBuffer& buffer = latr_[self].value;
    SpinGuard guard(buffer.lock);
    buffer.entries.push_back(entry);
    return;
  }

  // Synchronous variants: the initiator invalidates every target inline.
  // kSync models the serial IPI round-trip protocol: one target at a time,
  // with the "wait for ack" expressed by completing each invalidation before
  // starting the next. kEarlyAck issues all invalidations in one sweep (the
  // remote flush work overlaps; the initiator does not serialize on acks).
  if (policy == TlbPolicy::kSync) {
    for (CpuId cpu : targets) {
      // Chaos: a straggler target delays before servicing the invalidation
      // IPI, so the initiator's serial ack wait stretches.
      FaultInjector::Instance().MaybeStall(FaultSite::kShootdownStraggler);
      invalidate(cpu);
      // Serial ack round trip: a full acquire/release per target is already
      // enforced by the per-TLB lock; nothing further to model.
    }
  } else {  // kEarlyAck
    for (CpuId cpu : targets) {
      FaultInjector::Instance().MaybeStall(FaultSite::kShootdownStraggler);
      invalidate(cpu);
    }
  }
  if (!mask.Test(self)) {
    invalidate(self);
  }
  if (freer != nullptr) {
    for (const PageRun& run : runs) {
      freer(run);
    }
  }
}

void TlbSystem::Tick(CpuId cpu) {
  // Scan every CPU's lazy buffer for entries addressed to |cpu| (LATR: "each
  // CPU checks other CPUs' buffers and flushes the relevant TLB entries").
  int limit = OnlineCpuCount();
  for (int origin = 0; origin < limit && origin < kMaxCpus; ++origin) {
    LatrBuffer& buffer = latr_[origin].value;
    std::vector<LatrEntry*> finished;
    {
      SpinGuard guard(buffer.lock);
      size_t keep = 0;
      for (size_t i = 0; i < buffer.entries.size(); ++i) {
        LatrEntry* entry = buffer.entries[i];
        bool is_target = false;
        for (CpuId t : entry->targets) {
          if (t == cpu) {
            is_target = true;
            break;
          }
        }
        bool done = false;
        // An already-acked target must not re-flush: the entry only lingers
        // in the buffer because some OTHER target's ack is still outstanding.
        if (is_target && !entry->HasAcked(cpu)) {
          // Chaos: a lazy-TLB straggler acks an entry late (LATR's whole bet
          // is that this is tolerable; the chaos suite verifies it).
          FaultInjector::Instance().MaybeStall(FaultSite::kShootdownStraggler);
          if (entry->full_asid) {
            CpuTlb(cpu).InvalidateAsid(entry->asid);
          } else {
            CpuTlb(cpu).InvalidateRanges(entry->asid, entry->ranges.data(),
                                         entry->ranges.size());
          }
          CountEvent(Counter::kTlbLazyFlushes);
          done = entry->TryAck(cpu);
        }
        if (done) {
          finished.push_back(entry);
        } else {
          buffer.entries[keep++] = entry;
        }
      }
      buffer.entries.resize(keep);
    }
    for (LatrEntry* entry : finished) {
      FinishEntry(entry);
    }
  }
}

void TlbSystem::DrainAll() {
  int limit = OnlineCpuCount();
  for (int cpu = 0; cpu < limit && cpu < kMaxCpus; ++cpu) {
    Tick(cpu);
  }
}

}  // namespace cortenmm
