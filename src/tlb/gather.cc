#include "src/tlb/gather.h"

#include <algorithm>

#include "src/common/stats.h"

namespace cortenmm {

void TlbGather::AddRange(VaRange range) {
  if (range.empty()) {
    return;
  }
  CountEvent(Counter::kTlbRangesGathered);
  if (full_flush_) {
    return;  // Already degraded; a full-ASID flush covers everything.
  }
  // Absorb every gathered range that overlaps or abuts the incoming one.
  // Adjacency check: half-open ranges [a,b) and [b,c) merge, hence <=.
  size_t i = 0;
  while (i < ranges_.size()) {
    const VaRange& r = ranges_[i];
    if (r.start <= range.end && range.start <= r.end) {
      range = VaRange(std::min(r.start, range.start), std::max(r.end, range.end));
      ranges_.erase_at(i);
      CountEvent(Counter::kTlbRangesCoalesced);
    } else {
      ++i;
    }
  }
  if (ranges_.size() == kMaxRanges) {
    // A 17th distinct range: batching each precisely costs more sweep work
    // than nuking the ASID. Drop the records and remember only the mode.
    full_flush_ = true;
    ranges_.clear();
    CountEvent(Counter::kTlbFullFlushFallbacks);
    return;
  }
  // Insert keeping the list sorted by start (N <= 16, bubble is fine).
  ranges_.push_back(range);
  for (size_t j = ranges_.size() - 1; j > 0 && ranges_[j - 1].start > ranges_[j].start; --j) {
    std::swap(ranges_[j - 1], ranges_[j]);
  }
}

void TlbGather::Flush(Asid asid, const CpuMask& mask, TlbPolicy policy, RunFreer freer) {
  if (empty()) {
    return;
  }
  TlbSystem::Instance().ShootdownBatch(asid, ranges_.begin(), ranges_.size(), full_flush_,
                                       mask, policy, std::move(runs_), freer);
  ranges_.clear();
  runs_.clear();
  full_flush_ = false;
}

}  // namespace cortenmm
