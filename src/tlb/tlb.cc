#include "src/tlb/tlb.h"

namespace cortenmm {
namespace {

bool EntryCovers(const TlbEntry& entry, Asid asid, Vaddr va) {
  if (!entry.valid || entry.asid != asid) {
    return false;
  }
  uint64_t span = PtEntrySpan(entry.level);
  return va >= entry.va_base && va < entry.va_base + span;
}

bool EntryIntersects(const TlbEntry& entry, Asid asid, VaRange range) {
  if (!entry.valid || entry.asid != asid) {
    return false;
  }
  uint64_t span = PtEntrySpan(entry.level);
  return VaRange(entry.va_base, entry.va_base + span).Overlaps(range);
}

}  // namespace

std::optional<TlbEntry> Tlb::Lookup(Asid asid, Vaddr va) {
  SpinGuard guard(lock_);
  ++lookups_;
  TlbEntry* set = sets_[SetOf(va)];
  for (int way = 0; way < kWays; ++way) {
    if (EntryCovers(set[way], asid, va)) {
      set[way].stamp = ++clock_;
      ++hits_;
      return set[way];
    }
  }
  // Huge-page translations for |va| may live in the set of their base page.
  // A second probe keyed by the 2M/1G base covers them.
  for (int level = 2; level <= 3; ++level) {
    Vaddr base = AlignDown(va, PtEntrySpan(level));
    TlbEntry* hset = sets_[SetOf(base)];
    for (int way = 0; way < kWays; ++way) {
      if (hset[way].valid && hset[way].level == level && EntryCovers(hset[way], asid, va)) {
        hset[way].stamp = ++clock_;
        ++hits_;
        return hset[way];
      }
    }
  }
  return std::nullopt;
}

void Tlb::Insert(Asid asid, Vaddr va, uint64_t pte_raw, int level) {
  Vaddr base = AlignDown(va, PtEntrySpan(level));
  SpinGuard guard(lock_);
  TlbEntry* set = sets_[SetOf(base)];
  int victim = 0;
  for (int way = 0; way < kWays; ++way) {
    if (!set[way].valid) {
      victim = way;
      break;
    }
    if (set[way].stamp < set[victim].stamp) {
      victim = way;
    }
  }
  set[victim] = TlbEntry{true, asid, level, base, pte_raw, ++clock_};
}

void Tlb::InvalidateRange(Asid asid, VaRange range) {
  SpinGuard guard(lock_);
  for (auto& set : sets_) {
    for (auto& entry : set) {
      if (EntryIntersects(entry, asid, range)) {
        entry.valid = false;
      }
    }
  }
}

void Tlb::InvalidateRanges(Asid asid, const VaRange* ranges, size_t num_ranges) {
  SpinGuard guard(lock_);
  for (auto& set : sets_) {
    for (auto& entry : set) {
      for (size_t i = 0; i < num_ranges; ++i) {
        if (EntryIntersects(entry, asid, ranges[i])) {
          entry.valid = false;
          break;
        }
      }
    }
  }
}

void Tlb::InvalidateAsid(Asid asid) {
  SpinGuard guard(lock_);
  for (auto& set : sets_) {
    for (auto& entry : set) {
      if (entry.valid && entry.asid == asid) {
        entry.valid = false;
      }
    }
  }
}

void Tlb::InvalidateAll() {
  SpinGuard guard(lock_);
  for (auto& set : sets_) {
    for (auto& entry : set) {
      entry.valid = false;
    }
  }
}

}  // namespace cortenmm
