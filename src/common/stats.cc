#include "src/common/stats.h"

#include <sstream>

namespace cortenmm {

const char* CounterName(Counter c) {
  switch (c) {
    case Counter::kPageFaults:
      return "page_faults";
    case Counter::kCowFaults:
      return "cow_faults";
    case Counter::kDemandZeroFills:
      return "demand_zero_fills";
    case Counter::kTlbMisses:
      return "tlb_misses";
    case Counter::kTlbShootdowns:
      return "tlb_shootdowns";
    case Counter::kTlbLazyFlushes:
      return "tlb_lazy_flushes";
    case Counter::kTlbRangesGathered:
      return "tlb_ranges_gathered";
    case Counter::kTlbRangesCoalesced:
      return "tlb_ranges_coalesced";
    case Counter::kTlbFullFlushFallbacks:
      return "tlb_full_flush_fallbacks";
    case Counter::kPtPagesAllocated:
      return "pt_pages_allocated";
    case Counter::kPtPagesFreed:
      return "pt_pages_freed";
    case Counter::kFramesAllocated:
      return "frames_allocated";
    case Counter::kFramesFreed:
      return "frames_freed";
    case Counter::kRcuRetired:
      return "rcu_retired";
    case Counter::kRcuFreed:
      return "rcu_freed";
    case Counter::kLockRetries:
      return "lock_retries";
    case Counter::kLockRetryStorms:
      return "lock_retry_storms";
    case Counter::kBravoSlowdowns:
      return "bravo_slowdowns";
    case Counter::kVmaSplits:
      return "vma_splits";
    case Counter::kVmaMerges:
      return "vma_merges";
    case Counter::kSwapOuts:
      return "swap_outs";
    case Counter::kSwapIns:
      return "swap_ins";
    case Counter::kHugeFaults:
      return "huge_faults";
    case Counter::kHugeSplits:
      return "huge_splits";
    case Counter::kHugeFallbacks:
      return "huge_fallbacks";
    case Counter::kHugeAllocs:
      return "huge_allocs";
    case Counter::kHugeFrees:
      return "huge_frees";
    case Counter::kHugeCacheHits:
      return "huge_cache_hits";
    case Counter::kHugeAllocFailures:
      return "huge_alloc_failures";
    case Counter::kRingOpsSubmitted:
      return "ring_ops_submitted";
    case Counter::kRingOpsCompleted:
      return "ring_ops_completed";
    case Counter::kRingDrains:
      return "ring_drains";
    case Counter::kRingFusedGroupOps:
      return "ring_fused_group_ops";
    case Counter::kRingFullRejects:
      return "ring_full_rejects";
    case Counter::kFusedTxns:
      return "fused_txns";
    case Counter::kFusedTxnOps:
      return "fused_txn_ops";
    case Counter::kFusedVaFlushes:
      return "fused_va_flushes";
    case Counter::kReclaimPagesEvicted:
      return "reclaim_pages_evicted";
    case Counter::kReclaimWakeups:
      return "reclaim_wakeups";
    case Counter::kReclaimScannedFrames:
      return "reclaim_scanned_frames";
    case Counter::kReclaimDirectRuns:
      return "reclaim_direct_runs";
    case Counter::kReclaimThrottles:
      return "reclaim_throttles";
    case Counter::kReclaimStalls:
      return "reclaim_stalls";
    case Counter::kReclaimLimitHits:
      return "reclaim_limit_hits";
    case Counter::kReclaimHugeSuppressed:
      return "reclaim_huge_suppressed";
    case Counter::kRingLimitRejects:
      return "ring_limit_rejects";
    case Counter::kMagHits:
      return "mag_hits";
    case Counter::kMagRefills:
      return "mag_refills";
    case Counter::kMagFlushes:
      return "mag_flushes";
    case Counter::kMagDrains:
      return "mag_drains";
    case Counter::kPrezeroHits:
      return "prezero_hits";
    case Counter::kPrescrubFramesZeroed:
      return "prescrub_frames_zeroed";
    case Counter::kFaultAroundMapped:
      return "fault_around_mapped";
    case Counter::kBuddyLockAcquisitions:
      return "buddy_lock_acquisitions";
    case Counter::kNumaLocalAllocs:
      return "numa_local_allocs";
    case Counter::kNumaRemoteAllocs:
      return "numa_remote_allocs";
    case Counter::kNumaSpills:
      return "numa_spills";
    case Counter::kNumaRemoteAccesses:
      return "numa_remote_accesses";
    case Counter::kCnaBatchedHandoffs:
      return "cna_batched_handoffs";
    case Counter::kCnaSecondaryEnqueues:
      return "cna_secondary_enqueues";
    case Counter::kCnaSecondaryFlushes:
      return "cna_secondary_flushes";
    case Counter::kModelStatesExplored:
      return "model_states_explored";
    case Counter::kModelTransitions:
      return "model_transitions";
    case Counter::kLitmusTsoOnlyStates:
      return "litmus_tso_only_states";
    case Counter::kCount:
      break;
  }
  return "unknown";
}

std::string StatsDomain::Report() const {
  std::ostringstream os;
  for (int i = 0; i < static_cast<int>(Counter::kCount); ++i) {
    Counter c = static_cast<Counter>(i);
    uint64_t total = Total(c);
    if (total != 0) {
      os << "  " << CounterName(c) << " = " << total << "\n";
    }
  }
  return os.str();
}

StatsDomain& GlobalStats() {
  static StatsDomain domain;
  return domain;
}

}  // namespace cortenmm
