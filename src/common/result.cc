#include "src/common/result.h"

#include <cstdio>
#include <cstdlib>

namespace cortenmm {

namespace internal {

void ResultValueFatal(ErrCode err) {
  std::fprintf(stderr, "cortenmm: Result::value() on error %s\n", ErrCodeName(err));
  std::abort();
}

void ResultOkFatal() {
  std::fprintf(stderr, "cortenmm: Result constructed from ErrCode::kOk\n");
  std::abort();
}

}  // namespace internal

const char* ErrCodeName(ErrCode code) {
  switch (code) {
    case ErrCode::kOk:
      return "OK";
    case ErrCode::kNoMem:
      return "NOMEM";
    case ErrCode::kInval:
      return "INVAL";
    case ErrCode::kExist:
      return "EXIST";
    case ErrCode::kNoEnt:
      return "NOENT";
    case ErrCode::kFault:
      return "FAULT";
    case ErrCode::kAgain:
      return "AGAIN";
    case ErrCode::kBusy:
      return "BUSY";
    case ErrCode::kNoSpace:
      return "NOSPACE";
    case ErrCode::kUnsupported:
      return "UNSUPPORTED";
  }
  return "UNKNOWN";
}

}  // namespace cortenmm
