// A small expected-like result type used across the MM. We avoid exceptions
// in all hot paths (kernel-style code); fallible operations return
// Result<T> / ErrCode and callers must check.
#ifndef SRC_COMMON_RESULT_H_
#define SRC_COMMON_RESULT_H_

#include <utility>

namespace cortenmm {

enum class ErrCode {
  kOk = 0,
  kNoMem,      // out of physical frames / kernel heap
  kInval,      // bad arguments (unaligned, out of range)
  kExist,      // mapping already exists where MAP_FIXED-like semantics forbid it
  kNoEnt,      // no mapping at the given address
  kFault,      // access violation (SEGV)
  kAgain,      // transient failure; retry
  kBusy,       // resource busy
  kNoSpace,    // virtual address space exhausted
  kUnsupported,  // the manager does not implement this operation (Table 2)
};

const char* ErrCodeName(ErrCode code);

namespace internal {
// Aborts with a diagnostic. Always-on (not assert): a missed kNoMem check
// must fail loudly in release builds too, never read uninitialized storage.
// The cold attribute keeps the abort call out of the hot text so the
// accessor check costs one predicted-not-taken branch per dereference.
[[noreturn]] [[gnu::cold]] void ResultValueFatal(ErrCode err);
[[noreturn]] [[gnu::cold]] void ResultOkFatal();

inline void CheckOk(ErrCode err) {
  if (__builtin_expect(err != ErrCode::kOk, 0)) {
    ResultValueFatal(err);
  }
}
}  // namespace internal

template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites terse: `return value;` / `return ErrCode::kNoMem;`.
  Result(T value) : err_(ErrCode::kOk), value_(std::move(value)) {}
  Result(ErrCode err) : err_(err) {
    if (err == ErrCode::kOk) {
      internal::ResultOkFatal();
    }
  }

  bool ok() const { return err_ == ErrCode::kOk; }
  ErrCode error() const { return err_; }

  T& value() {
    internal::CheckOk(err_);
    return value_;
  }
  const T& value() const {
    internal::CheckOk(err_);
    return value_;
  }
  T value_or(T fallback) const { return ok() ? value_ : fallback; }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  ErrCode err_;
  T value_{};
};

template <>
class Result<void> {
 public:
  Result() : err_(ErrCode::kOk) {}
  Result(ErrCode err) : err_(err) {}

  bool ok() const { return err_ == ErrCode::kOk; }
  ErrCode error() const { return err_; }

 private:
  ErrCode err_;
};

using VoidResult = Result<void>;

}  // namespace cortenmm

#endif  // SRC_COMMON_RESULT_H_
