#include "src/common/cpu.h"

#include <atomic>
#include <cassert>

namespace cortenmm {
namespace {

std::atomic<int> g_next_auto_cpu{0};
std::atomic<int> g_online_count{1};

void NoteCpu(CpuId cpu) {
  int seen = g_online_count.load(std::memory_order_relaxed);
  while (cpu + 1 > seen &&
         !g_online_count.compare_exchange_weak(seen, cpu + 1, std::memory_order_relaxed)) {
  }
}

}  // namespace

namespace cpu_detail {

thread_local CpuId tls_cpu = -1;

CpuId AssignAutoCpu() {
  CpuId cpu = g_next_auto_cpu.fetch_add(1, std::memory_order_relaxed) % kMaxCpus;
  tls_cpu = cpu;
  NoteCpu(cpu);
  return cpu;
}

}  // namespace cpu_detail

void BindThisThreadToCpu(CpuId cpu) {
  assert(cpu >= 0 && cpu < kMaxCpus);
  cpu_detail::tls_cpu = cpu;
  NoteCpu(cpu);
}

int OnlineCpuCount() { return g_online_count.load(std::memory_order_relaxed); }

}  // namespace cortenmm
