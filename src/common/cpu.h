// Simulated-CPU identity. Each OS thread participating in the simulation is
// bound to a logical CPU id; per-CPU data structures (TLBs, RCU slots,
// per-CPU allocator caches, LATR buffers) are indexed by it.
//
// Threads that never bind explicitly get a unique auto-assigned CPU, so unit
// tests can ignore the machinery entirely.
#ifndef SRC_COMMON_CPU_H_
#define SRC_COMMON_CPU_H_

#include <cstdint>

namespace cortenmm {

inline constexpr int kMaxCpus = 512;

using CpuId = int;

// Binds the calling thread to |cpu| for the remainder of its life (or until
// rebound). |cpu| must be in [0, kMaxCpus).
void BindThisThreadToCpu(CpuId cpu);

namespace cpu_detail {
extern thread_local CpuId tls_cpu;  // -1 until bound or auto-assigned.
CpuId AssignAutoCpu();
}  // namespace cpu_detail

// Returns the calling thread's CPU id, auto-assigning one if unbound. Inline
// fast path: per-CPU hot paths (stats, telemetry) call this per event.
inline CpuId CurrentCpu() {
  CpuId cpu = cpu_detail::tls_cpu;
  return cpu >= 0 ? cpu : cpu_detail::AssignAutoCpu();
}

// Highest CPU id ever observed + 1; used to bound scans over per-CPU state.
int OnlineCpuCount();

// A cache-line sized/aligned wrapper to keep per-CPU slots from false sharing.
inline constexpr int kCacheLineSize = 64;

template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};
};

}  // namespace cortenmm

#endif  // SRC_COMMON_CPU_H_
