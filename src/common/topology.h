// Simulated NUMA node topology. The paper's 384-core EPYC testbed is a
// 2-socket machine; this maps the simulated CPUs onto N nodes with an
// asymmetric access-cost matrix so every layer that would feel cross-socket
// traffic (buddy arenas, magazines, reclaim daemons, the software MMU's
// memory charges, the CNA lock) can ask "which node am I on?" and "how far is
// that frame?".
//
// CPUs map to nodes in contiguous blocks (CPUs [0, cpus_per_node) are node 0,
// the next block node 1, ...), mirroring how benches bind worker thread t to
// CPU t: a workload using the first K CPUs stays on node 0 unless it opts
// into striping. With nodes=1 the topology is degenerate — every cost is
// local and every layer above must collapse to the flat pre-NUMA behavior
// (CI runs a CORTENMM_NODES=1 leg to pin that).
#ifndef SRC_COMMON_TOPOLOGY_H_
#define SRC_COMMON_TOPOLOGY_H_

#include <cstdint>

#include "src/common/cpu.h"

namespace cortenmm {

inline constexpr int kMaxNodes = 8;

class NodeTopology {
 public:
  // Must be called before Instance() to override the node count
  // (env CORTENMM_NODES, default 2). No-op afterwards.
  static void Configure(int nodes);

  static NodeTopology& Instance();

  int nodes() const { return nodes_; }
  int cpus_per_node() const { return cpus_per_node_; }

  int NodeOfCpu(CpuId cpu) const {
    int node = cpu / cpus_per_node_;
    return node < nodes_ ? node : nodes_ - 1;
  }
  CpuId FirstCpuOfNode(int node) const { return node * cpus_per_node_; }

  // Access cost in simulated cycles (arbitrary units; local ~= an L2 hit).
  // The matrix is asymmetric like real socket interconnects (upstream and
  // downstream links are provisioned differently): cost(0->1) != cost(1->0).
  uint32_t AccessCost(int from, int to) const { return cost_[from][to]; }
  uint32_t LocalCost() const { return kLocalCost; }

  // Spin iterations the software MMU charges per remote load/store, derived
  // from the cost delta over a local access. Zero when from == to.
  uint32_t RemotePenaltySpins(int from, int to) const {
    return cost_[from][to] - kLocalCost;
  }

  // Nodes ordered by access cost from |from| (nearest first, |from| itself
  // excluded) — the allocation spill order for remote fallback.
  const int* SpillOrder(int from, int* count) const {
    *count = nodes_ - 1;
    return spill_order_[from];
  }

 private:
  static constexpr uint32_t kLocalCost = 10;

  explicit NodeTopology(int nodes);
  NodeTopology(const NodeTopology&) = delete;
  NodeTopology& operator=(const NodeTopology&) = delete;

  int nodes_ = 1;
  int cpus_per_node_ = kMaxCpus;
  uint32_t cost_[kMaxNodes][kMaxNodes] = {};
  int spill_order_[kMaxNodes][kMaxNodes] = {};
};

// The calling thread's home node (auto-assigning a CPU if unbound).
inline int CurrentNode() {
  return NodeTopology::Instance().NodeOfCpu(CurrentCpu());
}

}  // namespace cortenmm

#endif  // SRC_COMMON_TOPOLOGY_H_
