// Core address/page types shared by every subsystem.
//
// The simulated machine is a 48-bit virtual / 52-bit physical x86-64-like
// machine with 4 KiB base pages and a 4-level radix page table (512 entries
// per level). RISC-V Sv48 shares the same geometry, which is exactly the
// observation CortenMM builds on (§3.2 of the paper).
#ifndef SRC_COMMON_TYPES_H_
#define SRC_COMMON_TYPES_H_

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace cortenmm {

using Vaddr = uint64_t;  // Virtual address.
using Paddr = uint64_t;  // Physical address.
using Pfn = uint64_t;    // Physical frame number (Paddr >> kPageBits).

inline constexpr uint64_t kPageBits = 12;
inline constexpr uint64_t kPageSize = 1ull << kPageBits;          // 4 KiB
inline constexpr uint64_t kPteIndexBits = 9;
inline constexpr uint64_t kPtesPerPage = 1ull << kPteIndexBits;   // 512
inline constexpr int kPtLevels = 4;                               // 4-level radix tree
inline constexpr uint64_t kVaBits = kPageBits + kPtLevels * kPteIndexBits;  // 48
inline constexpr Vaddr kVaLimit = 1ull << kVaBits;                // 256 TiB

// An entry at level L (1 = leaf level, kPtLevels = root level) spans this
// many bytes of virtual address space. A PT *page* at level L spans
// EntrySpan(L) * 512.
constexpr uint64_t PtEntrySpan(int level) {
  return kPageSize << (kPteIndexBits * (level - 1));
}

constexpr uint64_t PtPageSpan(int level) { return PtEntrySpan(level) * kPtesPerPage; }

// Index into the level-L page table page for |va|.
constexpr uint64_t PtIndex(Vaddr va, int level) {
  return (va >> (kPageBits + kPteIndexBits * (level - 1))) & (kPtesPerPage - 1);
}

constexpr uint64_t AlignDown(uint64_t x, uint64_t a) { return x & ~(a - 1); }
constexpr uint64_t AlignUp(uint64_t x, uint64_t a) { return (x + a - 1) & ~(a - 1); }
constexpr bool IsAligned(uint64_t x, uint64_t a) { return (x & (a - 1)) == 0; }

inline constexpr Pfn kInvalidPfn = ~0ull;

// A 2 MiB leaf (level-2 PTE) covers 2^kHugeOrder base frames.
inline constexpr uint64_t kHugeOrder = kPteIndexBits;               // 9
inline constexpr uint64_t kHugePageSize = kPageSize << kHugeOrder;  // 2 MiB

// A naturally-aligned run of 2^order physical frames starting at |pfn|.
// Order 0 is a single 4 KiB frame; order kHugeOrder backs a 2 MiB leaf.
// This is the unit the policy layers, the gather, and the reclaim path
// speak once the MM stops assuming "page == 4 KiB frame".
struct PageRun {
  Pfn pfn = kInvalidPfn;
  uint8_t order = 0;

  constexpr PageRun() = default;
  constexpr PageRun(Pfn p, uint8_t o) : pfn(p), order(o) {}

  constexpr uint64_t num_frames() const { return 1ull << order; }
  constexpr uint64_t num_bytes() const { return kPageSize << order; }
  constexpr bool aligned() const { return IsAligned(pfn, num_frames()); }
  friend constexpr bool operator==(const PageRun&, const PageRun&) = default;
};

// A half-open virtual address range [start, end).
struct VaRange {
  Vaddr start = 0;
  Vaddr end = 0;

  constexpr VaRange() = default;
  constexpr VaRange(Vaddr s, Vaddr e) : start(s), end(e) {}

  constexpr uint64_t size() const { return end - start; }
  constexpr bool empty() const { return end <= start; }
  constexpr bool Contains(Vaddr va) const { return va >= start && va < end; }
  constexpr bool Contains(const VaRange& o) const { return o.start >= start && o.end <= end; }
  constexpr bool Overlaps(const VaRange& o) const { return start < o.end && o.start < end; }
  constexpr VaRange Intersect(const VaRange& o) const {
    Vaddr s = start > o.start ? start : o.start;
    Vaddr e = end < o.end ? end : o.end;
    return e > s ? VaRange(s, e) : VaRange(s, s);
  }
  constexpr bool IsPageAligned() const {
    return IsAligned(start, kPageSize) && IsAligned(end, kPageSize);
  }
  constexpr uint64_t num_pages() const { return size() >> kPageBits; }
  friend constexpr bool operator==(const VaRange&, const VaRange&) = default;
};

// The kind of access a memory reference performs — what a page fault reports.
// Lives here (not in the core layer) because the MM facade and the simulated
// MMU both speak it without otherwise depending on core headers.
enum class Access : uint8_t {
  kRead,
  kWrite,
  kExec,
};

// Access permissions for a virtual page. These are *semantic* permissions;
// the arch PTE codec translates them to hardware bits.
struct Perm {
  // Bit values are stable: they are what gets packed into per-PTE metadata.
  static constexpr uint8_t kRead = 1 << 0;
  static constexpr uint8_t kWrite = 1 << 1;
  static constexpr uint8_t kExec = 1 << 2;
  static constexpr uint8_t kUser = 1 << 3;
  // Software bit: the page is logically writable but currently mapped
  // read-only because it is shared copy-on-write (paper §4.3).
  static constexpr uint8_t kCow = 1 << 4;

  uint8_t bits = 0;

  constexpr Perm() = default;
  constexpr explicit Perm(uint8_t b) : bits(b) {}

  constexpr bool read() const { return bits & kRead; }
  constexpr bool write() const { return bits & kWrite; }
  constexpr bool exec() const { return bits & kExec; }
  constexpr bool user() const { return bits & kUser; }
  constexpr bool cow() const { return bits & kCow; }

  constexpr Perm With(uint8_t b) const { return Perm(static_cast<uint8_t>(bits | b)); }
  constexpr Perm Without(uint8_t b) const { return Perm(static_cast<uint8_t>(bits & ~b)); }
  friend constexpr bool operator==(const Perm&, const Perm&) = default;

  static constexpr Perm R() { return Perm(kRead | kUser); }
  static constexpr Perm RW() { return Perm(kRead | kWrite | kUser); }
  static constexpr Perm RX() { return Perm(kRead | kExec | kUser); }
  static constexpr Perm RWX() { return Perm(kRead | kWrite | kExec | kUser); }
};

// The one permission-vs-access predicate every fault handler must use, so the
// facade-wide HandleFault contract (kOk iff the mapping allows |access|,
// kFault otherwise) has a single definition to diverge from.
constexpr bool PermAllowsAccess(Perm perm, Access access) {
  switch (access) {
    case Access::kRead:
      return perm.read();
    case Access::kWrite:
      return perm.write();
    case Access::kExec:
      return perm.exec();
  }
  return false;
}

}  // namespace cortenmm

#endif  // SRC_COMMON_TYPES_H_
