#include "src/common/topology.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace cortenmm {

namespace {
int g_configured_nodes = 0;  // 0 = unset; resolved on first Instance().
}  // namespace

void NodeTopology::Configure(int nodes) {
  assert(nodes >= 1 && nodes <= kMaxNodes);
  g_configured_nodes = nodes;
}

NodeTopology& NodeTopology::Instance() {
  static NodeTopology topo([] {
    int nodes = g_configured_nodes;
    if (nodes == 0) {
      if (const char* env = std::getenv("CORTENMM_NODES")) {
        nodes = std::atoi(env);
      }
    }
    if (nodes < 1) {
      nodes = 2;  // The paper's testbed is a 2-socket EPYC.
    }
    return std::min(nodes, kMaxNodes);
  }());
  return topo;
}

NodeTopology::NodeTopology(int nodes) : nodes_(nodes) {
  cpus_per_node_ = kMaxCpus / nodes_;  // Remainder CPUs fold into the last node.

  // Asymmetric cost matrix: local accesses cost kLocalCost; a remote hop
  // costs a base interconnect penalty plus a per-hop distance term, with +1
  // on the "uphill" direction (higher node -> lower node) so no two directed
  // edges are equal — real socket fabrics are never perfectly symmetric, and
  // the asymmetry keeps the spill order total (no arbitrary tie-breaks).
  for (int from = 0; from < nodes_; ++from) {
    for (int to = 0; to < nodes_; ++to) {
      if (from == to) {
        cost_[from][to] = kLocalCost;
      } else {
        uint32_t hops = static_cast<uint32_t>(from < to ? to - from : from - to);
        cost_[from][to] = 24 + 4 * (hops - 1) + (from > to ? 1 : 0);
      }
    }
  }

  // Spill order: remote nodes sorted nearest-first by directed cost.
  for (int from = 0; from < nodes_; ++from) {
    int count = 0;
    for (int to = 0; to < nodes_; ++to) {
      if (to != from) {
        spill_order_[from][count++] = to;
      }
    }
    int* order = spill_order_[from];
    std::sort(order, order + count, [&](int a, int b) {
      return cost_[from][a] < cost_[from][b];
    });
  }
}

}  // namespace cortenmm
