// A vector with inline storage for the first N elements, for hot-path
// containers that are almost always tiny (an RCursor's lock path, its dead
// frame list). Only supports trivially-copyable T — enough for the MM's use
// and what makes the inline buffer safely movable.
#ifndef SRC_COMMON_SMALL_VEC_H_
#define SRC_COMMON_SMALL_VEC_H_

#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <type_traits>
#include <utility>

namespace cortenmm {

template <typename T, size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  SmallVec() = default;

  SmallVec(SmallVec&& other) noexcept { MoveFrom(std::move(other)); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  ~SmallVec() { Reset(); }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      Grow();
    }
    data_[size_++] = value;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
  }

  void clear() { size_ = 0; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  // Removes the element at index i, shifting the tail down (stable order).
  void erase_at(size_t i) {
    assert(i < size_);
    std::memmove(data_ + i, data_ + i + 1, (size_ - i - 1) * sizeof(T));
    --size_;
  }

 private:
  void Grow() {
    size_t new_capacity = capacity_ * 2;
    T* heap = static_cast<T*>(std::malloc(new_capacity * sizeof(T)));
    std::memcpy(heap, data_, size_ * sizeof(T));
    if (data_ != inline_) {
      std::free(data_);
    }
    data_ = heap;
    capacity_ = new_capacity;
  }

  void Reset() {
    if (data_ != inline_) {
      std::free(data_);
    }
    data_ = inline_;
    capacity_ = N;
    size_ = 0;
  }

  void MoveFrom(SmallVec&& other) {
    if (other.data_ == other.inline_) {
      std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
      data_ = inline_;
      capacity_ = N;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_;
      other.capacity_ = N;
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  T inline_[N];
  T* data_ = inline_;
  size_t capacity_ = N;
  size_t size_ = 0;
};

}  // namespace cortenmm

#endif  // SRC_COMMON_SMALL_VEC_H_
