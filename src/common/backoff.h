// Bounded spin-then-yield backoff. The evaluation machine may have far fewer
// hardware threads than simulated CPUs, so unbounded spinning would livelock;
// every spin loop in the repository uses this helper (DESIGN.md §4.5).
#ifndef SRC_COMMON_BACKOFF_H_
#define SRC_COMMON_BACKOFF_H_

#include <thread>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace cortenmm {

inline void CpuRelax() {
#if defined(__x86_64__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

class SpinBackoff {
 public:
  void Spin() {
    if (spins_ < kSpinLimit) {
      ++spins_;
      CpuRelax();
    } else {
      std::this_thread::yield();
    }
  }

  void Reset() { spins_ = 0; }

 private:
  static constexpr int kSpinLimit = 64;
  int spins_ = 0;
};

}  // namespace cortenmm

#endif  // SRC_COMMON_BACKOFF_H_
